# Developer entry points. `make check` is the tier-1 gate: build, vet,
# and the full test suite must pass before merging.

GO ?= go

.PHONY: build test race vet bench bench-baseline check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel engine, fleet runner, and searcher fan-out are exercised
# under the race detector here; slow but mandatory for concurrency changes.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the committed benchmark baseline. Review the diff before
# committing: ns/op moves with the host, allocs/op should not.
bench-baseline:
	$(GO) run ./cmd/bench -o BENCH_core.json -benchtime 1s

check: build vet test
