# Developer entry points. `make check` is the tier-1 gate: build, vet,
# and the full test suite must pass before merging.

GO ?= go

.PHONY: build test race vet bench bench-baseline bench-diff check fuzz

# Per-target budget for `make fuzz` (the CI smoke job uses the default).
FUZZTIME ?= 30s

# Per-package test deadlines, far below go test's 10-minute default: the
# scrape layer's deadline/backoff/breaker tests finish in seconds, so a
# hung-target regression (a lost context deadline, an unbounded retry)
# fails the suite fast instead of stalling CI.
TESTTIMEOUT ?= 120s
RACETIMEOUT ?= 300s

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TESTTIMEOUT) ./...

# The parallel engine, fleet runner, searcher fan-out, and the scrape
# layer's fan-out/breaker paths are exercised under the race detector
# here; slow but mandatory for concurrency changes.
race:
	$(GO) test -race -timeout $(RACETIMEOUT) ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the committed benchmark baseline. Review the diff before
# committing: ns/op moves with the host, allocs/op should not.
bench-baseline:
	$(GO) run ./cmd/bench -o BENCH_core.json -benchtime 1s

# Gate allocs/op against the committed baseline: any benchmark allocating
# more per op than BENCH_core.json records fails the target. ns/op is
# host-dependent and deliberately not gated, so a short benchtime suffices.
bench-diff:
	$(GO) run ./cmd/bench -diff BENCH_core.json -benchtime 100ms

# Fuzz the untrusted-input decoders (the tracefile reader and the WAL
# record decoder), the streaming-vs-exact KCD equivalence, and the
# incident transition-sequence replayer. Each target gets $(FUZZTIME).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/tracefile
	$(GO) test -run '^$$' -fuzz FuzzDecodeRecord -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzStreamKCD -fuzztime $(FUZZTIME) ./internal/correlate
	$(GO) test -run '^$$' -fuzz FuzzRestore -fuzztime $(FUZZTIME) ./internal/incident
	$(GO) test -run '^$$' -fuzz FuzzPromParse -fuzztime $(FUZZTIME) ./internal/scrape

check: build vet test
