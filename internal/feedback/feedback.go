// Package feedback implements DBCatcher's online feedback module (§III-A,
// §III-D): DBAs mark the judgment records produced by the streaming
// detection module; when the detection performance computed from recent
// records falls below the activation criterion (75% F-Measure in §IV-D3),
// the adaptive threshold learning policy re-fits the thresholds from those
// records.
package feedback

import (
	"fmt"
	"sync"

	"dbcatcher/internal/mathx"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
)

// Record is one DBA-marked judgment record: what the detector said about a
// window and what the DBA decided was true.
type Record struct {
	// Start and Size identify the judged window.
	Start, Size int
	// Predicted is the detector's verdict (true = abnormal).
	Predicted bool
	// Actual is the DBA's marking.
	Actual bool
}

// Journal receives every appended record for durable storage (the WAL in
// internal/store implements it). JournalRecord is called with the store's
// mutex held, in append order; implementations must not call back into the
// Store.
type Journal interface {
	JournalRecord(Record)
}

// Store keeps the most recent judgment records in a bounded ring. It is
// safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	recs     []Record
	head     int
	size     int
	appended int
	journal  Journal
}

// NewStore returns a store holding up to capacity records.
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		panic("feedback: store capacity must be positive")
	}
	return &Store{recs: make([]Record, capacity)}
}

// NewStoreFrom returns a store preloaded with previously persisted records
// (oldest first, e.g. recovered from a snapshot + WAL replay); only the
// most recent capacity records are kept. Preloading does not journal.
func NewStoreFrom(capacity int, recs []Record) *Store {
	s := NewStore(capacity)
	if len(recs) > capacity {
		recs = recs[len(recs)-capacity:]
	}
	for _, r := range recs {
		s.add(r)
	}
	return s
}

// SetJournal attaches (or, with nil, detaches) the durable journal. Attach
// it before streaming starts; records appended earlier are not replayed
// into it.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// Add appends a record, evicting the oldest when full, and journals it.
func (s *Store) Add(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.add(r)
	if s.journal != nil {
		s.journal.JournalRecord(r)
	}
}

func (s *Store) add(r Record) {
	s.appended++
	if s.size < len(s.recs) {
		s.recs[(s.head+s.size)%len(s.recs)] = r
		s.size++
		return
	}
	s.recs[s.head] = r
	s.head = (s.head + 1) % len(s.recs)
}

// Appended returns the number of records ever added to the store
// (including preloads and records since evicted). The monotone counter
// lets the relearning supervisor measure label arrival between attempts
// without being confused by ring eviction.
func (s *Store) Appended() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Recent returns up to n of the most recent records, oldest first.
func (s *Store) Recent(n int) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.size {
		n = s.size
	}
	out := make([]Record, n)
	start := s.size - n
	for i := 0; i < n; i++ {
		out[i] = s.recs[(s.head+start+i)%len(s.recs)]
	}
	return out
}

// Snapshot returns all stored records, oldest first (the persistence
// layer's point-in-time capture).
func (s *Store) Snapshot() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, s.size)
	for i := 0; i < s.size; i++ {
		out[i] = s.recs[(s.head+i)%len(s.recs)]
	}
	return out
}

// Split partitions the stored records into a training set and a held-out
// validation set, oldest first within each. The holdout receives
// floor(ratio * Len()) records — at least one when 0 < ratio and at least
// two records exist — chosen by a seeded Fisher-Yates permutation, so the
// split is deterministic for a given (contents, seed) pair and the two
// slices are always disjoint. Both slices are copies; mutating them never
// touches the ring.
func (s *Store) Split(ratio float64, seed uint64) (train, holdout []Record) {
	all := s.Snapshot()
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	h := int(ratio * float64(len(all)))
	if h == 0 && ratio > 0 && len(all) >= 2 {
		h = 1
	}
	if h == 0 {
		return all, nil
	}
	if h >= len(all) {
		return nil, all
	}
	held := make([]bool, len(all))
	for _, i := range mathx.NewRNG(seed).Perm(len(all))[:h] {
		held[i] = true
	}
	train = make([]Record, 0, len(all)-h)
	holdout = make([]Record, 0, h)
	for i, r := range all {
		if held[i] {
			holdout = append(holdout, r)
		} else {
			train = append(train, r)
		}
	}
	return train, holdout
}

// Corrections counts the DBA corrections — records whose marking
// contradicts the detector's verdict — among the n most recent records.
func (s *Store) Corrections(n int) int {
	c := 0
	for _, r := range s.Recent(n) {
		if r.Predicted != r.Actual {
			c++
		}
	}
	return c
}

// Confusion scores the n most recent records.
func (s *Store) Confusion(n int) metrics.Confusion {
	var c metrics.Confusion
	for _, r := range s.Recent(n) {
		c.Add(r.Predicted, r.Actual)
	}
	return c
}

// FMeasure returns the F-Measure over the n most recent records.
func (s *Store) FMeasure(n int) float64 { return s.Confusion(n).FMeasure() }

// Policy decides when the adaptive threshold learning is activated.
type Policy struct {
	// Criterion is the minimum acceptable F-Measure (§IV-D3 uses 75%).
	Criterion float64
	// MinRecords is the number of recent records required before the
	// policy judges performance at all.
	MinRecords int
	// Window is how many recent records the F-Measure covers; 0 means
	// MinRecords.
	Window int
}

// DefaultPolicy returns the paper's setting: retrain when F drops below
// 75%, judged over the last 200 records once at least 50 exist.
func DefaultPolicy() Policy {
	return Policy{Criterion: 0.75, MinRecords: 50, Window: 200}
}

// ShouldRetrain reports whether recent performance violates the criterion.
func (p Policy) ShouldRetrain(s *Store) bool {
	if s.Len() < p.MinRecords {
		return false
	}
	w := p.Window
	if w == 0 {
		w = p.MinRecords
	}
	return s.FMeasure(w) < p.Criterion
}

// Learner re-fits thresholds from labelled samples using a configured
// search policy (the GA by default).
type Learner struct {
	// Searcher is the optimization policy; nil means the default GA.
	Searcher thresholds.Searcher
	// Flex is the window configuration used during fitness evaluation.
	Flex window.FlexConfig
	// Workers fans each fitness evaluation out across the labelled
	// samples (every per-unit detection pass is independent): <= 0 uses
	// GOMAXPROCS, 1 keeps the serial walk. Leave it at 1 when the
	// Searcher evaluates genomes in parallel itself — one axis suffices.
	Workers int
}

// Relearn runs the search over the samples and returns the new thresholds
// with their fitness. q is the KPI count.
func (l Learner) Relearn(q int, samples []thresholds.Sample) (window.Thresholds, float64, error) {
	if len(samples) == 0 {
		return window.Thresholds{}, 0, fmt.Errorf("feedback: no samples to relearn from")
	}
	searcher := l.Searcher
	if searcher == nil {
		searcher = thresholds.GA{}
	}
	flex := l.Flex
	if flex == (window.FlexConfig{}) {
		flex = window.DefaultFlexConfig()
	}
	fitness := thresholds.ParallelDetectorFitness(samples, flex, l.Workers)
	res := searcher.Search(q, fitness)
	if err := res.Best.Validate(q); err != nil {
		return window.Thresholds{}, 0, err
	}
	return res.Best, res.Fitness, nil
}
