package feedback

import (
	"reflect"
	"testing"
)

func fillStore(cap, n int) *Store {
	s := NewStore(cap)
	for i := 0; i < n; i++ {
		s.Add(Record{Start: i, Size: 20, Predicted: i%3 == 0, Actual: i%2 == 0})
	}
	return s
}

func TestSplitDeterministicDisjointOrdered(t *testing.T) {
	s := fillStore(64, 40)
	train1, hold1 := s.Split(0.3, 11)
	train2, hold2 := s.Split(0.3, 11)
	if !reflect.DeepEqual(train1, train2) || !reflect.DeepEqual(hold1, hold2) {
		t.Fatal("same ratio+seed must produce the same split")
	}
	if len(train1)+len(hold1) != 40 {
		t.Fatalf("split sizes %d+%d != 40", len(train1), len(hold1))
	}
	if len(hold1) != 12 { // floor(0.3 * 40)
		t.Fatalf("holdout size %d, want 12", len(hold1))
	}
	// Disjoint (Start values are unique here) and order-preserving: both
	// halves must be strictly increasing subsequences of the snapshot.
	seen := map[int]bool{}
	for _, half := range [][]Record{train1, hold1} {
		last := -1
		for _, r := range half {
			if seen[r.Start] {
				t.Fatalf("record %d appears in both halves", r.Start)
			}
			seen[r.Start] = true
			if r.Start <= last {
				t.Fatalf("half not order-preserving: %d after %d", r.Start, last)
			}
			last = r.Start
		}
	}
	// A different seed should draw a different holdout (40 choose 12 makes
	// a collision effectively impossible).
	_, hold3 := s.Split(0.3, 12)
	if reflect.DeepEqual(hold1, hold3) {
		t.Fatal("different seeds drew the identical holdout")
	}
}

func TestSplitAfterEviction(t *testing.T) {
	// Overfill a small ring: the split must draw only from the retained
	// records, never the evicted prefix.
	s := fillStore(8, 20)
	train, hold := s.Split(0.25, 5)
	if len(train)+len(hold) != 8 {
		t.Fatalf("split sizes %d+%d != 8 retained", len(train), len(hold))
	}
	if len(hold) != 2 {
		t.Fatalf("holdout size %d, want 2", len(hold))
	}
	for _, half := range [][]Record{train, hold} {
		for _, r := range half {
			if r.Start < 12 {
				t.Fatalf("evicted record %d surfaced in split", r.Start)
			}
		}
	}
}

func TestSplitEdgeRatios(t *testing.T) {
	s := fillStore(16, 10)
	if train, hold := s.Split(0, 1); len(train) != 10 || hold != nil {
		t.Fatalf("ratio 0: %d/%d", len(train), len(hold))
	}
	if train, hold := s.Split(-2, 1); len(train) != 10 || hold != nil {
		t.Fatalf("negative ratio clamps to 0: %d/%d", len(train), len(hold))
	}
	if train, hold := s.Split(1, 1); train != nil || len(hold) != 10 {
		t.Fatalf("ratio 1: %d/%d", len(train), len(hold))
	}
	if train, hold := s.Split(5, 1); train != nil || len(hold) != 10 {
		t.Fatalf("ratio > 1 clamps to 1: %d/%d", len(train), len(hold))
	}
	// A tiny positive ratio still holds out at least one record when two
	// or more exist, so the holdout fitness is never vacuously empty.
	if _, hold := s.Split(0.01, 1); len(hold) != 1 {
		t.Fatalf("tiny ratio holdout %d, want 1", len(hold))
	}
	empty := NewStore(4)
	if train, hold := empty.Split(0.5, 1); len(train) != 0 || len(hold) != 0 {
		t.Fatalf("empty store split: %v/%v", train, hold)
	}
	one := fillStore(4, 1)
	if train, hold := one.Split(0.3, 1); len(train) != 1 || hold != nil {
		t.Fatalf("single record must stay in train: %d/%d", len(train), len(hold))
	}
}

func TestAppendedCountsEvicted(t *testing.T) {
	s := fillStore(4, 10)
	if s.Appended() != 10 {
		t.Fatalf("Appended = %d, want 10", s.Appended())
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	pre := NewStoreFrom(4, []Record{{Start: 1}, {Start: 2}})
	if pre.Appended() != 2 {
		t.Fatalf("preloaded Appended = %d, want 2", pre.Appended())
	}
}

func TestCorrections(t *testing.T) {
	s := NewStore(16)
	// 3 corrections (Predicted != Actual) in the last 5 records.
	for _, r := range []Record{
		{Predicted: true, Actual: false},
		{Predicted: true, Actual: true},
		{Predicted: false, Actual: true},
		{Predicted: false, Actual: false},
		{Predicted: true, Actual: false},
	} {
		s.Add(r)
	}
	if got := s.Corrections(5); got != 3 {
		t.Fatalf("Corrections(5) = %d, want 3", got)
	}
	if got := s.Corrections(1); got != 1 {
		t.Fatalf("Corrections(1) = %d, want 1", got)
	}
	if got := s.Corrections(99); got != 3 {
		t.Fatalf("Corrections(99) = %d, want 3", got)
	}
	if got := s.Corrections(0); got != 0 {
		t.Fatalf("Corrections(0) = %d, want 0", got)
	}
}
