package feedback

import (
	"sync"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/workload"
)

func TestStoreRingBehaviour(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Add(Record{Start: i})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	recent := s.Recent(3)
	if recent[0].Start != 2 || recent[2].Start != 4 {
		t.Fatalf("Recent = %+v", recent)
	}
	if got := s.Recent(99); len(got) != 3 {
		t.Fatalf("Recent over-len = %d", len(got))
	}
}

func TestStorePanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(0)
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(Record{Predicted: true, Actual: true})
				s.FMeasure(10)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreFMeasure(t *testing.T) {
	s := NewStore(10)
	// 3 TP, 1 FP, 1 FN, 1 TN -> P=0.75, R=0.75, F=0.75.
	s.Add(Record{Predicted: true, Actual: true})
	s.Add(Record{Predicted: true, Actual: true})
	s.Add(Record{Predicted: true, Actual: true})
	s.Add(Record{Predicted: true, Actual: false})
	s.Add(Record{Predicted: false, Actual: true})
	s.Add(Record{Predicted: false, Actual: false})
	if got := s.FMeasure(6); got != 0.75 {
		t.Fatalf("F = %v", got)
	}
}

func TestPolicyActivation(t *testing.T) {
	p := Policy{Criterion: 0.75, MinRecords: 4, Window: 4}
	s := NewStore(10)
	// Too few records: never retrain.
	s.Add(Record{Predicted: true, Actual: false})
	if p.ShouldRetrain(s) {
		t.Fatal("should not retrain before MinRecords")
	}
	// Fill with bad performance.
	for i := 0; i < 4; i++ {
		s.Add(Record{Predicted: true, Actual: false})
	}
	if !p.ShouldRetrain(s) {
		t.Fatal("should retrain on bad recent performance")
	}
	// Now good performance pushes F above the criterion.
	for i := 0; i < 4; i++ {
		s.Add(Record{Predicted: true, Actual: true})
	}
	if p.ShouldRetrain(s) {
		t.Fatal("should not retrain when recent records are good")
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.Criterion != 0.75 {
		t.Fatalf("criterion = %v, want 0.75 (§IV-D3)", p.Criterion)
	}
}

func TestLearnerRelearn(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 500, Seed: 20, Profile: workload.SysbenchI,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
		Ticks: 500, Databases: 5, TargetRatio: 0.06,
	}, mathx.NewRNG(21))
	labels, err := anomaly.Inject(u, events, mathx.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	samples := []thresholds.Sample{{
		Provider: detect.NewCachedProvider(detect.NewProvider(u.Series, nil, nil)),
		Labels:   labels,
	}}
	l := Learner{Searcher: thresholds.GA{Seed: 23, Population: 8, Generations: 4}}
	th, fit, err := l.Relearn(14, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Alpha) != 14 {
		t.Fatalf("learned %d alphas", len(th.Alpha))
	}
	if fit <= 0 {
		t.Fatalf("learned fitness %v", fit)
	}
}

func TestLearnerRelearnNoSamples(t *testing.T) {
	l := Learner{}
	if _, _, err := l.Relearn(14, nil); err == nil {
		t.Fatal("no samples should error")
	}
}
