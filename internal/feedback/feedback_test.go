package feedback

import (
	"sync"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/workload"
)

func TestStoreRingBehaviour(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Add(Record{Start: i})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	recent := s.Recent(3)
	if recent[0].Start != 2 || recent[2].Start != 4 {
		t.Fatalf("Recent = %+v", recent)
	}
	if got := s.Recent(99); len(got) != 3 {
		t.Fatalf("Recent over-len = %d", len(got))
	}
}

func TestStorePanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(0)
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(Record{Predicted: true, Actual: true})
				s.FMeasure(10)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreFMeasure(t *testing.T) {
	s := NewStore(10)
	// 3 TP, 1 FP, 1 FN, 1 TN -> P=0.75, R=0.75, F=0.75.
	s.Add(Record{Predicted: true, Actual: true})
	s.Add(Record{Predicted: true, Actual: true})
	s.Add(Record{Predicted: true, Actual: true})
	s.Add(Record{Predicted: true, Actual: false})
	s.Add(Record{Predicted: false, Actual: true})
	s.Add(Record{Predicted: false, Actual: false})
	if got := s.FMeasure(6); got != 0.75 {
		t.Fatalf("F = %v", got)
	}
}

func TestPolicyActivation(t *testing.T) {
	p := Policy{Criterion: 0.75, MinRecords: 4, Window: 4}
	s := NewStore(10)
	// Too few records: never retrain.
	s.Add(Record{Predicted: true, Actual: false})
	if p.ShouldRetrain(s) {
		t.Fatal("should not retrain before MinRecords")
	}
	// Fill with bad performance.
	for i := 0; i < 4; i++ {
		s.Add(Record{Predicted: true, Actual: false})
	}
	if !p.ShouldRetrain(s) {
		t.Fatal("should retrain on bad recent performance")
	}
	// Now good performance pushes F above the criterion.
	for i := 0; i < 4; i++ {
		s.Add(Record{Predicted: true, Actual: true})
	}
	if p.ShouldRetrain(s) {
		t.Fatal("should not retrain when recent records are good")
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.Criterion != 0.75 {
		t.Fatalf("criterion = %v, want 0.75 (§IV-D3)", p.Criterion)
	}
}

func TestLearnerRelearn(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 500, Seed: 20, Profile: workload.SysbenchI,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
		Ticks: 500, Databases: 5, TargetRatio: 0.06,
	}, mathx.NewRNG(21))
	labels, err := anomaly.Inject(u, events, mathx.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	samples := []thresholds.Sample{{
		Provider: detect.NewCachedProvider(detect.NewProvider(u.Series, nil, nil)),
		Labels:   labels,
	}}
	l := Learner{Searcher: thresholds.GA{Seed: 23, Population: 8, Generations: 4}}
	th, fit, err := l.Relearn(14, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Alpha) != 14 {
		t.Fatalf("learned %d alphas", len(th.Alpha))
	}
	if fit <= 0 {
		t.Fatalf("learned fitness %v", fit)
	}
}

func TestLearnerRelearnNoSamples(t *testing.T) {
	l := Learner{}
	if _, _, err := l.Relearn(14, nil); err == nil {
		t.Fatal("no samples should error")
	}
}

// --- Eviction boundary and persistence-integration tests ---

func TestStoreCapacityOne(t *testing.T) {
	s := NewStore(1)
	if got := s.Snapshot(); len(got) != 0 {
		t.Fatalf("empty store snapshot = %v", got)
	}
	for i := 0; i < 4; i++ {
		s.Add(Record{Start: i})
		if s.Len() != 1 {
			t.Fatalf("after add %d: Len = %d", i, s.Len())
		}
		recent := s.Recent(5)
		if len(recent) != 1 || recent[0].Start != i {
			t.Fatalf("after add %d: Recent = %v", i, recent)
		}
		snap := s.Snapshot()
		if len(snap) != 1 || snap[0].Start != i {
			t.Fatalf("after add %d: Snapshot = %v", i, snap)
		}
	}
}

func TestStoreWraparoundOrdering(t *testing.T) {
	s := NewStore(4)
	// Push enough to wrap several times; the ring must always surface the
	// newest 4 in append order.
	for i := 0; i < 11; i++ {
		s.Add(Record{Start: i, Predicted: i%2 == 0})
		want := i + 1
		if want > 4 {
			want = 4
		}
		snap := s.Snapshot()
		if len(snap) != want {
			t.Fatalf("after add %d: %d records, want %d", i, len(snap), want)
		}
		for j, r := range snap {
			if r.Start != i-want+1+j {
				t.Fatalf("after add %d: snapshot order %v", i, snap)
			}
		}
	}
	// Recent(n) is the suffix of Snapshot().
	recent := s.Recent(2)
	if len(recent) != 2 || recent[0].Start != 9 || recent[1].Start != 10 {
		t.Fatalf("Recent(2) = %v", recent)
	}
}

func TestNewStoreFromTruncatesToCapacity(t *testing.T) {
	recs := make([]Record, 7)
	for i := range recs {
		recs[i] = Record{Start: i}
	}
	s := NewStoreFrom(3, recs)
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0].Start != 4 || snap[2].Start != 6 {
		t.Fatalf("preload kept %v, want the newest 3", snap)
	}
	// Preloading under capacity keeps everything.
	s2 := NewStoreFrom(10, recs[:2])
	if got := s2.Snapshot(); len(got) != 2 || got[0].Start != 0 {
		t.Fatalf("under-capacity preload = %v", got)
	}
	// A preloaded store keeps accepting appends with correct eviction.
	s.Add(Record{Start: 99})
	snap = s.Snapshot()
	if len(snap) != 3 || snap[2].Start != 99 || snap[0].Start != 5 {
		t.Fatalf("append after preload = %v", snap)
	}
}

// captureJournal records journaled entries; it must see every Add exactly
// once, in order, and nothing from preloads.
type captureJournal struct {
	mu   sync.Mutex
	recs []Record
}

func (j *captureJournal) JournalRecord(r Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, r)
}

func TestStoreJournalSeesAppendsNotPreloads(t *testing.T) {
	j := &captureJournal{}
	s := NewStoreFrom(2, []Record{{Start: 100}, {Start: 101}})
	s.SetJournal(j)
	for i := 0; i < 5; i++ {
		s.Add(Record{Start: i})
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.recs) != 5 {
		t.Fatalf("journal saw %d records, want 5", len(j.recs))
	}
	for i, r := range j.recs {
		if r.Start != i {
			t.Fatalf("journal order: %v", j.recs)
		}
	}
}

// Concurrent Append/Snapshot/Recent must be race-free (run under -race) and
// every snapshot must be internally consistent: monotonically increasing
// Start values with no gaps larger than the writer's progress allows.
func TestStoreConcurrentAppendSnapshot(t *testing.T) {
	s := NewStore(8)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := s.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Start != snap[i-1].Start+1 {
					t.Errorf("torn snapshot: %v", snap)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = s.Recent(3)
			_ = s.Len()
		}
	}()
	for i := 0; i < 5000; i++ {
		s.Add(Record{Start: i})
	}
	close(done)
	wg.Wait()
}
