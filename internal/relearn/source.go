package relearn

import (
	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
)

// SampleSource materializes a labelled fitness sample from one DBA
// judgment record. Implementations must be safe for concurrent use: the
// retrain goroutine calls Sample while the live feeder keeps pushing.
type SampleSource interface {
	// Sample returns the record's labelled sample, or false when the
	// record's window can no longer be materialized (evicted from the
	// retained history, or too short to judge).
	Sample(rec feedback.Record) (thresholds.Sample, bool)
}

// SeriesSource materializes samples from a fully retained unit series
// (replay and simulation modes, where the whole stream is in memory).
type SeriesSource struct {
	U *timeseries.UnitSeries
	// Flex bounds the per-sample span; zero value means the default.
	Flex window.FlexConfig
}

// Sample implements SampleSource.
func (s SeriesSource) Sample(rec feedback.Record) (thresholds.Sample, bool) {
	flex := s.Flex
	if flex == (window.FlexConfig{}) {
		flex = window.DefaultFlexConfig()
	}
	end := rec.Start + flex.MaxWindow()
	if end > s.U.Len() {
		end = s.U.Len()
	}
	if rec.Start < 0 || end-rec.Start < flex.Initial {
		return thresholds.Sample{}, false
	}
	sliced, err := s.U.SliceRange(rec.Start, end)
	if err != nil {
		return thresholds.Sample{}, false
	}
	return labelled(sliced, rec, end-rec.Start), true
}

// MonitorSource materializes samples from the live monitor's bounded
// rings; records whose windows have been evicted are dropped (the ring
// only covers the flex config's maximum span, so in live mode only the
// freshest records remain materializable).
type MonitorSource struct {
	Proc *monitor.Processor
	// Flex bounds the per-sample span; zero value means the default.
	Flex window.FlexConfig
}

// Sample implements SampleSource.
func (m MonitorSource) Sample(rec feedback.Record) (thresholds.Sample, bool) {
	flex := m.Flex
	if flex == (window.FlexConfig{}) {
		flex = window.DefaultFlexConfig()
	}
	span := flex.MaxWindow()
	if t := m.Proc.Ticks(); rec.Start+span > t {
		span = t - rec.Start
	}
	if span < flex.Initial {
		return thresholds.Sample{}, false
	}
	u, err := m.Proc.Window(rec.Start, span)
	if err != nil {
		return thresholds.Sample{}, false
	}
	return labelled(u, rec, span), true
}

// labelled pairs a rebased window with its ground truth: the ticks the DBA
// actually judged ([0, rec.Size) after rebasing) carry the marking, the
// context beyond them is unlabelled. The provider is cached so that every
// genome evaluation after the first reuses the correlation matrices.
func labelled(u *timeseries.UnitSeries, rec feedback.Record, n int) thresholds.Sample {
	labels := anomaly.NewLabels(n)
	for i := 0; i < rec.Size && i < n; i++ {
		labels.Point[i] = rec.Actual
	}
	return thresholds.Sample{
		Provider: detect.NewCachedProvider(detect.NewProvider(u, nil, nil)),
		Labels:   labels,
	}
}

// Materialize converts judgment records into fitness samples, dropping
// records whose windows can no longer be recovered. It reports how many
// records were dropped.
func Materialize(src SampleSource, recs []feedback.Record) (samples []thresholds.Sample, dropped int) {
	samples = make([]thresholds.Sample, 0, len(recs))
	for _, r := range recs {
		if s, ok := src.Sample(r); ok {
			samples = append(samples, s)
		} else {
			dropped++
		}
	}
	return samples, dropped
}
