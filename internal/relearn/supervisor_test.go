package relearn_test

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/relearn"
	"dbcatcher/internal/store"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// The shared fixture: one simulated unit with injected anomalies and the
// judgment records a DBA reviewing the offline detector's verdicts would
// produce. Built once; every test treats it as read-only.
var (
	fixtureOnce sync.Once
	fixtureUnit *cluster.Unit
	fixtureRecs []feedback.Record
	fixtureErr  error
)

func fixture(t *testing.T) (*cluster.Unit, []feedback.Record) {
	t.Helper()
	fixtureOnce.Do(func() {
		u, err := cluster.Simulate(cluster.Config{
			Name: "relearn", Databases: 5, Ticks: 1200, Seed: 41,
			Profile: workload.TencentIrregular,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
			Ticks: 1200, Databases: 5, TargetRatio: 0.1,
		}, mathx.NewRNG(42))
		labels, err := anomaly.Inject(u, events, mathx.NewRNG(43))
		if err != nil {
			fixtureErr = err
			return
		}
		verdicts, _, err := detect.Run(u.Series, detect.Config{
			Thresholds: window.DefaultThresholds(kpi.Count),
		})
		if err != nil {
			fixtureErr = err
			return
		}
		truePos := 0
		for _, v := range verdicts {
			actual := false
			for tick := v.Start; tick < v.Start+v.Size && tick < len(labels.Point); tick++ {
				if labels.Point[tick] {
					actual = true
					break
				}
			}
			if v.Abnormal && actual {
				truePos++
			}
			fixtureRecs = append(fixtureRecs, feedback.Record{
				Start: v.Start, Size: v.Size, Predicted: v.Abnormal, Actual: actual,
			})
		}
		fixtureUnit = u
		if len(fixtureRecs) < 15 || truePos < 3 {
			fixtureErr = fmt.Errorf("weak fixture: %d records, %d true positives", len(fixtureRecs), truePos)
		}
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureUnit, fixtureRecs
}

func newOnline(t *testing.T) *monitor.Online {
	t.Helper()
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// feed replays the unit through the judge, observing every push exactly
// like the daemon's feeder loop does.
func feed(t *testing.T, o *monitor.Online, u *cluster.Unit, sup *relearn.Supervisor) []*monitor.Verdict {
	t.Helper()
	sample := make([][]float64, u.Series.KPIs)
	for k := range sample {
		sample[k] = make([]float64, u.Series.Databases)
	}
	var out []*monitor.Verdict
	for tick := 0; tick < u.Series.Len(); tick++ {
		for k := 0; k < u.Series.KPIs; k++ {
			for d := 0; d < u.Series.Databases; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		v, err := o.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if sup != nil {
			sup.ObserveVerdict(v)
		}
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

// fakeSearcher turns a closure into a ContextSearcher for fault injection.
type fakeSearcher struct {
	name string
	fn   func(ctx context.Context, q int, fit thresholds.Fitness) (thresholds.Result, error)
}

func (f fakeSearcher) Name() string { return f.name }
func (f fakeSearcher) Search(q int, fit thresholds.Fitness) thresholds.Result {
	r, _ := f.fn(context.Background(), q, fit)
	return r
}
func (f fakeSearcher) SearchContext(ctx context.Context, q int, fit thresholds.Fitness) (thresholds.Result, error) {
	return f.fn(ctx, q, fit)
}

// eventLog is a Recorder capturing lifecycle events for assertions.
type eventLog struct {
	mu  sync.Mutex
	evs []relearn.Event
}

func (l *eventLog) RecordRelearn(ev relearn.Event) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) kinds() []relearn.EventKind {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]relearn.EventKind, len(l.evs))
	for i, ev := range l.evs {
		out[i] = ev.Kind
	}
	return out
}

func (l *eventLog) has(k relearn.EventKind) bool {
	for _, got := range l.kinds() {
		if got == k {
			return true
		}
	}
	return false
}

// waitState polls until the supervisor reaches one of the wanted states.
func waitState(t *testing.T, sup *relearn.Supervisor, want ...string) relearn.Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := sup.Status()
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("supervisor stuck in %q waiting for %v", sup.Status().State, want)
	return relearn.Status{}
}

// alwaysFire marks every database abnormal every round (scores can never
// reach alpha = 2); neverFire can never mark anything (scores are >= -1).
func alwaysFire() window.Thresholds {
	th := window.Thresholds{Alpha: make([]float64, kpi.Count), Theta: 0, MaxTolerance: 0}
	for i := range th.Alpha {
		th.Alpha[i] = 2
	}
	return th
}

func neverFire() window.Thresholds {
	th := window.Thresholds{Alpha: make([]float64, kpi.Count), Theta: 0.25, MaxTolerance: 2}
	for i := range th.Alpha {
		th.Alpha[i] = -2
	}
	return th
}

func testConfig(s thresholds.ContextSearcher) relearn.Config {
	return relearn.Config{
		Q: kpi.Count, Searcher: s, Deadline: 5 * time.Second,
		CooldownTicks: 1, ShadowTicks: 30, MinRecords: 10,
		HoldoutRatio: 0.4, Seed: 99,
		// Auto triggers are off unless a test turns one on: each test
		// drives exactly one attempt so the assertions stay exact.
		Drift:  relearn.DriftConfig{Lambda: 1e9},
		Policy: feedback.Policy{Criterion: 0.75, MinRecords: 1 << 30, Window: 200},
	}
}

// TestFaultInjectionMatrix is the acceptance gate: a panicking,
// deadline-exceeding, regressing, or NaN-producing retrain must leave the
// live thresholds bit-identical, resolve to a failed/rejected attempt, and
// leave the verdict stream byte-for-byte equal to a run with no supervisor
// at all.
func TestFaultInjectionMatrix(t *testing.T) {
	u, recs := fixture(t)
	reference := feed(t, newOnline(t), u, nil)

	cases := []struct {
		name     string
		searcher fakeSearcher
		deadline time.Duration
		wantKind relearn.EventKind
		wantErr  string
	}{
		{
			name: "panic",
			searcher: fakeSearcher{name: "panic", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
				panic("kaboom")
			}},
			wantKind: relearn.EventFailed,
			wantErr:  "retrain panic",
		},
		{
			name: "deadline",
			searcher: fakeSearcher{name: "deadline", fn: func(ctx context.Context, _ int, _ thresholds.Fitness) (thresholds.Result, error) {
				<-ctx.Done()
				return thresholds.Result{}, ctx.Err()
			}},
			deadline: 50 * time.Millisecond,
			wantKind: relearn.EventFailed,
			wantErr:  "search aborted",
		},
		{
			name: "regressing",
			searcher: fakeSearcher{name: "regressing", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
				return thresholds.Result{Best: neverFire(), Fitness: 1}, nil
			}},
			wantKind: relearn.EventRejected,
			wantErr:  "regresses baseline",
		},
		{
			name: "nan",
			searcher: fakeSearcher{name: "nan", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
				th := window.DefaultThresholds(kpi.Count)
				th.Theta = math.NaN()
				return thresholds.Result{Best: th, Fitness: 1}, nil
			}},
			wantKind: relearn.EventRejected,
			wantErr:  "non-finite",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			online := newOnline(t)
			fb := feedback.NewStoreFrom(256, recs)
			cfg := testConfig(tc.searcher)
			if tc.deadline > 0 {
				cfg.Deadline = tc.deadline
			}
			sup := relearn.NewSupervisor(cfg, online, fb, relearn.SeriesSource{U: u.Series})
			defer sup.Stop()
			log := &eventLog{}
			sup.SetRecorder(log)

			before := online.Thresholds()
			if err := sup.TriggerManual(); err != nil {
				t.Fatal(err)
			}
			st := waitState(t, sup, "idle")
			if st.Attempts != 1 {
				t.Fatalf("attempts = %d", st.Attempts)
			}
			switch tc.wantKind {
			case relearn.EventFailed:
				if st.Failures != 1 || st.Rejections != 0 {
					t.Fatalf("failures/rejections = %d/%d, want 1/0", st.Failures, st.Rejections)
				}
			case relearn.EventRejected:
				if st.Rejections != 1 || st.Failures != 0 {
					t.Fatalf("failures/rejections = %d/%d, want 0/1", st.Failures, st.Rejections)
				}
			}
			if !strings.Contains(st.LastError, tc.wantErr) {
				t.Fatalf("last error %q does not mention %q", st.LastError, tc.wantErr)
			}
			if !log.has(relearn.EventStarted) || !log.has(tc.wantKind) {
				t.Fatalf("event kinds %v missing started/%v", log.kinds(), tc.wantKind)
			}
			if got := online.Thresholds(); !reflect.DeepEqual(got, before) {
				t.Fatalf("live thresholds changed: %+v -> %+v", before, got)
			}

			// Detection must be unperturbed: the verdict stream with the
			// failed retrain in flight is pinned to the no-relearn stream.
			verdicts := feed(t, online, u, sup)
			if len(verdicts) != len(reference) {
				t.Fatalf("verdict count %d, reference %d", len(verdicts), len(reference))
			}
			for i := range verdicts {
				if !reflect.DeepEqual(*verdicts[i], *reference[i]) {
					t.Fatalf("verdict %d diverged:\n  got  %+v\n  want %+v", i, *verdicts[i], *reference[i])
				}
			}
			if got := online.Thresholds(); !reflect.DeepEqual(got, before) {
				t.Fatalf("live thresholds changed during replay: %+v", got)
			}
		})
	}
}

// TestShadowRollbackOnFlipBudget drives the one dangerous path: a candidate
// that *passes* holdout validation (the feedback records all claim
// anomalies, so an always-firing candidate scores perfectly) but disagrees
// with the live judge on live traffic. The shadow gate must catch it and
// roll back without ever touching the live thresholds.
func TestShadowRollbackOnFlipBudget(t *testing.T) {
	u, recs := fixture(t)
	poisoned := make([]feedback.Record, len(recs))
	for i, r := range recs {
		r.Actual = true
		r.Predicted = false
		poisoned[i] = r
	}
	online := newOnline(t)
	fb := feedback.NewStoreFrom(256, poisoned)
	searcher := fakeSearcher{name: "hostile", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
		return thresholds.Result{Best: alwaysFire(), Fitness: 1}, nil
	}}
	sup := relearn.NewSupervisor(testConfig(searcher), online, fb, relearn.SeriesSource{U: u.Series})
	defer sup.Stop()
	log := &eventLog{}
	sup.SetRecorder(log)

	before := online.Thresholds()
	if err := sup.TriggerManual(); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, sup, "shadowing"); st.Attempts != 1 {
		t.Fatalf("attempts = %d", st.Attempts)
	}
	feed(t, online, u, sup)
	st := sup.Status()
	if st.State != "idle" || st.Rollbacks != 1 || st.Promotions != 0 {
		t.Fatalf("status after rollback: %+v", st)
	}
	if !strings.Contains(st.LastError, "over budget") {
		t.Fatalf("last error %q", st.LastError)
	}
	if !log.has(relearn.EventShadowing) || !log.has(relearn.EventRolledBack) {
		t.Fatalf("event kinds %v", log.kinds())
	}
	if got := online.Thresholds(); !reflect.DeepEqual(got, before) {
		t.Fatalf("rollback touched live thresholds: %+v", got)
	}
	if online.ShadowStatus().Active {
		t.Fatal("shadow still active after rollback")
	}
}

// TestPromotionSurvivesCrashRecovery drives the happy path end to end with
// a real durable store attached: candidate accepted, shadow clean, swap
// journaled and snapshotted — a reopen recovers exactly the promoted set
// plus the full lifecycle event trail.
func TestPromotionSurvivesCrashRecovery(t *testing.T) {
	u, recs := fixture(t)
	dir := t.TempDir()
	st, rec, err := store.Open(dir, store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	online := newOnline(t)
	fb := feedback.NewStoreFrom(256, recs)
	pers := store.NewPersister(st, rec, fb, 1)
	online.SetPersister(pers)

	cand := window.DefaultThresholds(kpi.Count)
	cand.Theta = 0.26
	searcher := fakeSearcher{name: "good", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
		return thresholds.Result{Best: cand.Clone(), Fitness: 1}, nil
	}}
	cfg := testConfig(searcher)
	cfg.Epsilon = 0.2 // the candidate is a near-identical set; promotion is the subject here
	sup := relearn.NewSupervisor(cfg, online, fb, relearn.SeriesSource{U: u.Series})
	sup.SetRecorder(pers)

	if err := sup.TriggerManual(); err != nil {
		t.Fatal(err)
	}
	waitState(t, sup, "shadowing")
	feed(t, online, u, sup)
	status := sup.Status()
	if status.Promotions != 1 || status.State != "idle" {
		t.Fatalf("status after promotion: %+v", status)
	}
	if got := online.Thresholds(); !reflect.DeepEqual(got, cand) {
		t.Fatalf("live thresholds %+v, want promoted %+v", got, cand)
	}
	sup.Stop()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the swap must recover whole — the promoted set, never a torn
	// intermediate — along with the journaled lifecycle.
	st2, rec2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	th := rec2.LatestThresholds()
	if th == nil {
		t.Fatal("no thresholds recovered")
	}
	if !reflect.DeepEqual(*th, cand) {
		t.Fatalf("recovered thresholds %+v, want %+v", *th, cand)
	}
	evs := rec2.RelearnEvents()
	if len(evs) == 0 {
		t.Fatal("no relearn events recovered")
	}
	var sawStarted, sawShadowing, sawPromoted bool
	for _, ev := range evs {
		switch relearn.EventKind(ev.Event) {
		case relearn.EventStarted:
			sawStarted = true
		case relearn.EventShadowing:
			sawShadowing = true
		case relearn.EventPromoted:
			sawPromoted = true
			if ev.FlipRate != 0 {
				t.Fatalf("promoted flip rate %v, want 0", ev.FlipRate)
			}
		}
	}
	if !sawStarted || !sawShadowing || !sawPromoted {
		t.Fatalf("recovered event trail incomplete: %+v", evs)
	}
}

// TestStopDuringActiveRetrain is the lifecycle/leak gate: stopping the
// supervisor mid-search must cancel the search promptly, join the retrain
// goroutine, and leave the supervisor inert — the daemon's SIGTERM path.
func TestStopDuringActiveRetrain(t *testing.T) {
	u, recs := fixture(t)
	online := newOnline(t)
	fb := feedback.NewStoreFrom(256, recs)
	sawCancel := make(chan struct{})
	searcher := fakeSearcher{name: "blocking", fn: func(ctx context.Context, _ int, _ thresholds.Fitness) (thresholds.Result, error) {
		<-ctx.Done()
		close(sawCancel)
		return thresholds.Result{}, ctx.Err()
	}}
	cfg := testConfig(searcher)
	cfg.Deadline = time.Minute // only Stop's cancellation can end the search
	sup := relearn.NewSupervisor(cfg, online, fb, relearn.SeriesSource{U: u.Series})
	if err := sup.TriggerManual(); err != nil {
		t.Fatal(err)
	}
	if st := sup.Status(); st.State != "searching" {
		t.Fatalf("state %q, want searching", st.State)
	}

	stopped := make(chan struct{})
	go func() {
		sup.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not join the retrain goroutine")
	}
	select {
	case <-sawCancel:
	default:
		t.Fatal("search never observed cancellation")
	}
	if err := sup.TriggerManual(); err == nil {
		t.Fatal("stopped supervisor accepted a trigger")
	}
	sup.ObserveVerdict(&monitor.Verdict{Tick: 1, MeanCorr: 0.5}) // must be inert, not panic
	sup.Stop()                                                   // idempotent
}

// TestDriftTriggerStartsAttempt feeds the supervisor a fabricated verdict
// stream whose correlation collapses and expects the Page-Hinkley alarm to
// start an attempt on its own.
func TestDriftTriggerStartsAttempt(t *testing.T) {
	u, recs := fixture(t)
	online := newOnline(t)
	fb := feedback.NewStoreFrom(256, recs)
	searcher := fakeSearcher{name: "instant", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
		return thresholds.Result{Best: neverFire()}, nil
	}}
	cfg := testConfig(searcher)
	cfg.Drift = relearn.DriftConfig{Delta: 0.005, Lambda: 0.05, Warmup: 5}
	cfg.MinCorrections = 1000 // isolate the drift trigger
	sup := relearn.NewSupervisor(cfg, online, fb, relearn.SeriesSource{U: u.Series})
	defer sup.Stop()
	log := &eventLog{}
	sup.SetRecorder(log)

	tick := 0
	for i := 0; i < 10; i++ {
		tick++
		sup.ObserveVerdict(&monitor.Verdict{Tick: tick, MeanCorr: 0.9})
	}
	for i := 0; i < 50 && !log.has(relearn.EventStarted); i++ {
		tick++
		sup.ObserveVerdict(&monitor.Verdict{Tick: tick, MeanCorr: 0.1})
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.evs) == 0 || log.evs[0].Kind != relearn.EventStarted || log.evs[0].Reason != "drift" {
		t.Fatalf("events %+v, want a drift-started attempt", log.evs)
	}
}

// TestCorrectionsTriggerStartsAttempt: enough accumulated DBA corrections
// alone must start an attempt, with the drift signal quiet.
func TestCorrectionsTriggerStartsAttempt(t *testing.T) {
	u, recs := fixture(t)
	corrected := make([]feedback.Record, len(recs))
	for i, r := range recs {
		r.Actual = !r.Predicted // every record is a correction
		corrected[i] = r
	}
	online := newOnline(t)
	fb := feedback.NewStoreFrom(256, corrected)
	searcher := fakeSearcher{name: "instant", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
		return thresholds.Result{Best: neverFire()}, nil
	}}
	cfg := testConfig(searcher)
	cfg.MinCorrections = 5
	sup := relearn.NewSupervisor(cfg, online, fb, relearn.SeriesSource{U: u.Series})
	defer sup.Stop()
	log := &eventLog{}
	sup.SetRecorder(log)

	sup.ObserveVerdict(&monitor.Verdict{Tick: 1, MeanCorr: 0.9})
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.evs) == 0 || log.evs[0].Kind != relearn.EventStarted || log.evs[0].Reason != "corrections" {
		t.Fatalf("events %+v, want a corrections-started attempt", log.evs)
	}
}

// TestManualTriggerRefusals pins the 409 conditions the API surfaces.
func TestManualTriggerRefusals(t *testing.T) {
	u, recs := fixture(t)
	online := newOnline(t)

	starved := feedback.NewStore(8)
	supStarved := relearn.NewSupervisor(testConfig(fakeSearcher{name: "x", fn: func(context.Context, int, thresholds.Fitness) (thresholds.Result, error) {
		return thresholds.Result{}, nil
	}}), online, starved, relearn.SeriesSource{U: u.Series})
	defer supStarved.Stop()
	if err := supStarved.TriggerManual(); err == nil {
		t.Fatal("trigger with too few records accepted")
	}

	fb := feedback.NewStoreFrom(256, recs)
	blocking := fakeSearcher{name: "blocking", fn: func(ctx context.Context, _ int, _ thresholds.Fitness) (thresholds.Result, error) {
		<-ctx.Done()
		return thresholds.Result{}, ctx.Err()
	}}
	sup := relearn.NewSupervisor(testConfig(blocking), online, fb, relearn.SeriesSource{U: u.Series})
	defer sup.Stop()
	if err := sup.TriggerManual(); err != nil {
		t.Fatal(err)
	}
	if err := sup.TriggerManual(); err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("second trigger err = %v, want in-flight refusal", err)
	}
}
