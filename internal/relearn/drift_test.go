package relearn

import (
	"math"
	"testing"

	"dbcatcher/internal/mathx"
)

func TestPageHinkleyStationaryStreamNeverAlarms(t *testing.T) {
	p := NewPageHinkley(DriftConfig{})
	rng := mathx.NewRNG(3)
	for i := 0; i < 5000; i++ {
		if p.Observe(0.3 + 0.01*rng.Norm()) {
			t.Fatalf("alarm on stationary noise at observation %d", i)
		}
	}
}

func TestPageHinkleyAlarmsOnMeanShift(t *testing.T) {
	p := NewPageHinkley(DriftConfig{})
	rng := mathx.NewRNG(4)
	for i := 0; i < 200; i++ {
		if p.Observe(0.3 + 0.01*rng.Norm()) {
			t.Fatal("premature alarm before the shift")
		}
	}
	alarmed := -1
	for i := 0; i < 200; i++ {
		if p.Observe(0.5 + 0.01*rng.Norm()) {
			alarmed = i
			break
		}
	}
	if alarmed < 0 {
		t.Fatal("no alarm after a 0.2 mean shift over 200 observations")
	}
	// The alarm resets the test: the statistic starts over and the shifted
	// level alone (now the new normal) must not re-alarm immediately.
	if p.Stat() != 0 {
		t.Fatalf("post-alarm statistic %v, want 0", p.Stat())
	}
	for i := 0; i < 100; i++ {
		if p.Observe(0.5+0.01*rng.Norm()) && i < 30 {
			t.Fatalf("re-alarm %d observations after reset, inside warmup", i)
		}
	}
}

func TestPageHinkleyWarmupSuppressesAlarms(t *testing.T) {
	p := NewPageHinkley(DriftConfig{Warmup: 50, Lambda: 0.01})
	// A violent oscillation would alarm instantly without the warm-up gate.
	for i := 0; i < 50; i++ {
		if p.Observe(float64(i % 2)) {
			t.Fatalf("alarm during warmup at observation %d", i)
		}
	}
}

func TestPageHinkleyIgnoresNaN(t *testing.T) {
	p := NewPageHinkley(DriftConfig{Warmup: 5})
	for i := 0; i < 100; i++ {
		if p.Observe(math.NaN()) {
			t.Fatal("NaN observation alarmed")
		}
	}
	if p.Stat() != 0 {
		t.Fatalf("NaN observations moved the statistic: %v", p.Stat())
	}
	// NaNs must not count toward the warm-up either: five real values after
	// a NaN flood are still inside the warm-up window.
	for i := 0; i < 5; i++ {
		if p.Observe(10) {
			t.Fatal("alarm inside warmup after NaN flood")
		}
	}
}
