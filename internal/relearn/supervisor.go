package relearn

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"dbcatcher/internal/feedback"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
)

// State names the supervisor's lifecycle phase.
type State int

const (
	// Idle: no retrain in flight; triggers are being watched.
	Idle State = iota
	// Searching: a deadline-bounded search goroutine is running.
	Searching
	// Shadowing: a validated candidate is being compared against the live
	// thresholds on live traffic.
	Shadowing
)

func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Searching:
		return "searching"
	case Shadowing:
		return "shadowing"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// EventKind labels a relearn lifecycle transition.
type EventKind uint8

const (
	// EventStarted: an attempt began (Reason names the trigger).
	EventStarted EventKind = iota + 1
	// EventFailed: the attempt died — panic, deadline, or no samples.
	EventFailed
	// EventRejected: the search finished but the candidate failed holdout
	// validation (regression beyond ε, non-finite, or invalid).
	EventRejected
	// EventShadowing: the candidate passed holdout validation and entered
	// the shadow comparison.
	EventShadowing
	// EventPromoted: the shadow comparison passed; the candidate is live.
	EventPromoted
	// EventRolledBack: the shadow flip rate blew the budget; the candidate
	// was discarded and the live thresholds stand untouched.
	EventRolledBack
)

func (k EventKind) String() string {
	switch k {
	case EventStarted:
		return "started"
	case EventFailed:
		return "failed"
	case EventRejected:
		return "rejected"
	case EventShadowing:
		return "shadowing"
	case EventPromoted:
		return "promoted"
	case EventRolledBack:
		return "rolled_back"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one relearn lifecycle transition, emitted to the Recorder (the
// durable store journals them as WAL records).
type Event struct {
	Kind EventKind
	// Tick is the collection tick at which the transition was observed.
	Tick int
	// Attempt numbers the retrain attempt, starting at 1.
	Attempt int
	// TrainRecords and HoldoutRecords count the materialized samples.
	TrainRecords, HoldoutRecords int
	// Fitness is the candidate's holdout fitness, Baseline the live
	// thresholds' (meaningful for rejected/shadowing events).
	Fitness, Baseline float64
	// FlipRate is the shadow comparison's verdict-flip rate (meaningful
	// for promoted/rolled-back events).
	FlipRate float64
	// Reason is the trigger name (started) or the failure cause.
	Reason string
}

// Recorder receives lifecycle events. Calls arrive from the supervisor's
// goroutines without the supervisor lock held; implementations must be
// safe for concurrent use and must not call back into the Supervisor.
type Recorder interface {
	RecordRelearn(Event)
}

// Config tunes the supervisor. The zero value works: every field defaults
// to the documented value.
type Config struct {
	// Q is the KPI count of the judged unit (required).
	Q int
	// Flex is the window configuration for fitness evaluation; zero value
	// means the default.
	Flex window.FlexConfig
	// Searcher runs the optimization; nil means the default GA (whose
	// population/generation budget bounds the work per attempt even
	// without the deadline).
	Searcher thresholds.ContextSearcher
	// Deadline bounds one search's wall-clock time (default 30s).
	Deadline time.Duration
	// CooldownTicks is the minimum collection-tick gap between attempts
	// (default 200). Consecutive failures back it off exponentially, up
	// to 8x.
	CooldownTicks int
	// ShadowTicks is how many live ticks a validated candidate is
	// shadow-judged before promotion (default 100).
	ShadowTicks int
	// FlipBudget is the maximum tolerated verdict-flip rate during
	// shadowing (default 0.2); above it the candidate is rolled back.
	FlipBudget float64
	// Epsilon is the tolerated holdout-fitness regression (default 0.02):
	// candidates scoring below baseline-Epsilon are rejected.
	Epsilon float64
	// HoldoutRatio is the fraction of judgment records held out for
	// validation (default 0.3).
	HoldoutRatio float64
	// MinRecords gates any attempt (default: the feedback policy's 50).
	MinRecords int
	// MinCorrections is the accumulated-DBA-corrections trigger: retrain
	// when at least this many corrections arrived since the last attempt
	// (default 10).
	MinCorrections int
	// Drift tunes the Page-Hinkley test on the correlation distance.
	Drift DriftConfig
	// Policy is the F-Measure activation criterion (zero value means the
	// paper's 75%-over-200-records default).
	Policy feedback.Policy
	// Seed drives the holdout split and the default searcher.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 200
	}
	if c.ShadowTicks <= 0 {
		c.ShadowTicks = 100
	}
	if c.FlipBudget <= 0 {
		c.FlipBudget = 0.2
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.02
	}
	if c.HoldoutRatio <= 0 {
		c.HoldoutRatio = 0.3
	}
	if c.Policy == (feedback.Policy{}) {
		c.Policy = feedback.DefaultPolicy()
	}
	if c.MinRecords <= 0 {
		c.MinRecords = c.Policy.MinRecords
	}
	if c.MinCorrections <= 0 {
		c.MinCorrections = 10
	}
	if c.Searcher == nil {
		c.Searcher = thresholds.GA{Seed: c.Seed}
	}
	if c.Flex == (window.FlexConfig{}) {
		c.Flex = window.DefaultFlexConfig()
	}
	return c
}

// Supervisor is the drift-triggered relearning loop. It is driven entirely
// by ObserveVerdict — one call per verdict the online judge emits — plus
// the optional TriggerManual; the only goroutine it owns is the
// single-flight retrain worker. All failure modes of that worker (panic,
// deadline, bad candidate) resolve to the live thresholds standing
// untouched.
//
// Lock ordering: the supervisor's mutex is taken strictly before the
// online judge's (the judge never calls the supervisor), so the two can
// never deadlock.
type Supervisor struct {
	cfg    Config
	online *monitor.Online
	fb     *feedback.Store
	src    SampleSource
	rec    Recorder

	mu           sync.Mutex
	state        State
	closed       bool
	attempt      int
	promotions   int
	rollbacks    int
	rejections   int
	failures     int
	consec       int // consecutive non-promoted attempts, for backoff
	lastEndTick  int
	lastAppended int
	manual       bool
	driftAlarm   bool
	driftAlarms  int
	lastErr      string
	cancel       context.CancelFunc
	wg           sync.WaitGroup

	drift *PageHinkley
}

// NewSupervisor wires the loop to a live judge, the feedback store, and a
// sample source. Attach a Recorder with SetRecorder before streaming if
// lifecycle events should be journaled.
func NewSupervisor(cfg Config, online *monitor.Online, fb *feedback.Store, src SampleSource) *Supervisor {
	cfg = cfg.withDefaults()
	return &Supervisor{
		cfg:    cfg,
		online: online,
		fb:     fb,
		src:    src,
		drift:  NewPageHinkley(cfg.Drift),
	}
}

// SetRecorder attaches (or with nil detaches) the lifecycle-event sink.
func (s *Supervisor) SetRecorder(r Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = r
}

// ObserveVerdict advances the supervisor by one verdict: it feeds the
// drift test, decides an in-flight shadow comparison, and fires a retrain
// when a trigger condition holds. Call it after every Push that returned a
// verdict. It never blocks on the search itself.
func (s *Supervisor) ObserveVerdict(v *monitor.Verdict) {
	if v == nil {
		return
	}
	var evs []Event
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if !math.IsNaN(v.MeanCorr) && s.drift.Observe(1-v.MeanCorr) {
		s.driftAlarm = true
		s.driftAlarms++
	}
	switch s.state {
	case Shadowing:
		if ev, ok := s.decideShadowLocked(v.Tick); ok {
			evs = append(evs, ev)
		}
	case Idle:
		if s.eligibleLocked(v.Tick) {
			if reason := s.triggerLocked(); reason != "" {
				evs = append(evs, s.startLocked(v.Tick, reason))
			}
		}
	}
	s.mu.Unlock()
	s.emit(evs...)
}

// TriggerManual starts an attempt immediately (bypassing cooldown and
// trigger conditions, not the record minimum). It fails when an attempt is
// already in flight or the supervisor is stopped.
func (s *Supervisor) TriggerManual() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("relearn: supervisor stopped")
	}
	if s.state != Idle {
		s.mu.Unlock()
		return fmt.Errorf("relearn: attempt %d already in flight (%s)", s.attempt, s.state)
	}
	if n := s.fb.Len(); n < s.cfg.MinRecords {
		s.mu.Unlock()
		return fmt.Errorf("relearn: %d judgment records, need %d", n, s.cfg.MinRecords)
	}
	ev := s.startLocked(s.online.Processor().Ticks(), "manual")
	s.mu.Unlock()
	s.emit(ev)
	return nil
}

// Stop cancels any in-flight search, joins the retrain goroutine, and
// abandons any shadow comparison. Safe to call more than once; after Stop
// the supervisor ignores verdicts and refuses triggers.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	s.closed = true
	if s.cancel != nil {
		s.cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.online.StopShadow()
}

// Status is a point-in-time snapshot for the status API.
type Status struct {
	State            string  `json:"state"`
	Attempts         int     `json:"attempts"`
	Promotions       int     `json:"promotions"`
	Rollbacks        int     `json:"rollbacks"`
	Rejections       int     `json:"rejections"`
	Failures         int     `json:"failures"`
	DriftAlarms      int     `json:"drift_alarms"`
	DriftStat        float64 `json:"drift_stat"`
	DriftPending     bool    `json:"drift_pending"`
	Records          int     `json:"records"`
	NextEligibleTick int     `json:"next_eligible_tick"`
	LastError        string  `json:"last_error,omitempty"`
	ShadowRounds     int     `json:"shadow_rounds,omitempty"`
	ShadowFlips      int     `json:"shadow_flips,omitempty"`
	ShadowTicksLeft  int     `json:"shadow_ticks_left,omitempty"`
}

// Status snapshots the supervisor.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		State:            s.state.String(),
		Attempts:         s.attempt,
		Promotions:       s.promotions,
		Rollbacks:        s.rollbacks,
		Rejections:       s.rejections,
		Failures:         s.failures,
		DriftAlarms:      s.driftAlarms,
		DriftStat:        s.drift.Stat(),
		DriftPending:     s.driftAlarm,
		Records:          s.fb.Len(),
		NextEligibleTick: s.nextEligibleLocked(),
		LastError:        s.lastErr,
	}
	if s.state == Shadowing {
		sh := s.online.ShadowStatus()
		st.ShadowRounds = sh.Rounds
		st.ShadowFlips = sh.Flips
		if left := sh.TargetTicks - sh.TicksElapsed; left > 0 {
			st.ShadowTicksLeft = left
		}
	}
	return st
}

// nextEligibleLocked is the first tick at which an automatic attempt may
// start: the cooldown after the previous attempt, backed off exponentially
// (capped at 8x) while attempts keep failing.
func (s *Supervisor) nextEligibleLocked() int {
	if s.attempt == 0 {
		return 0
	}
	backoff := 1 << s.consec
	if backoff > 8 {
		backoff = 8
	}
	return s.lastEndTick + s.cfg.CooldownTicks*backoff
}

func (s *Supervisor) eligibleLocked(tick int) bool {
	return s.fb.Len() >= s.cfg.MinRecords && tick >= s.nextEligibleLocked()
}

// triggerLocked names the trigger condition that holds, or "" when none
// does: a pending drift alarm, enough accumulated DBA corrections since
// the last attempt, or the paper's F-Measure activation criterion.
func (s *Supervisor) triggerLocked() string {
	if s.manual {
		s.manual = false
		return "manual"
	}
	if s.driftAlarm {
		return "drift"
	}
	if n := s.fb.Appended() - s.lastAppended; n > 0 && s.fb.Corrections(n) >= s.cfg.MinCorrections {
		return "corrections"
	}
	if s.cfg.Policy.ShouldRetrain(s.fb) {
		return "fmeasure"
	}
	return ""
}

// startLocked launches the single-flight retrain goroutine.
func (s *Supervisor) startLocked(tick int, reason string) Event {
	s.attempt++
	s.state = Searching
	s.driftAlarm = false
	s.lastAppended = s.fb.Appended()
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	attempt := s.attempt
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		ev, cand := s.runSearch(ctx, attempt)
		s.finish(ev, cand)
	}()
	return Event{Kind: EventStarted, Tick: tick, Attempt: attempt, Reason: reason}
}

// runSearch is the isolated retrain body: split, materialize, search under
// deadline, validate on the holdout. It never touches the live thresholds
// and converts its own panics into failure events.
func (s *Supervisor) runSearch(ctx context.Context, attempt int) (ev Event, cand window.Thresholds) {
	ev = Event{Kind: EventFailed, Attempt: attempt}
	defer func() {
		if r := recover(); r != nil {
			ev.Kind = EventFailed
			ev.Reason = fmt.Sprintf("retrain panic: %v", r)
			cand = window.Thresholds{}
		}
	}()

	train, holdout := s.fb.Split(s.cfg.HoldoutRatio, s.cfg.Seed+uint64(attempt))
	trainSamples, trainDropped := Materialize(s.src, train)
	holdSamples, holdDropped := Materialize(s.src, holdout)
	ev.TrainRecords, ev.HoldoutRecords = len(trainSamples), len(holdSamples)
	if len(trainSamples) == 0 || len(holdSamples) == 0 {
		ev.Reason = fmt.Sprintf("no materializable samples (%d train / %d holdout dropped)", trainDropped, holdDropped)
		return ev, window.Thresholds{}
	}
	searchFit := thresholds.DetectorFitness(trainSamples, s.cfg.Flex)
	holdFit := thresholds.DetectorFitness(holdSamples, s.cfg.Flex)
	ev.Baseline = holdFit(s.online.Thresholds())

	sctx, scancel := context.WithTimeout(ctx, s.cfg.Deadline)
	defer scancel()
	res, err := s.cfg.Searcher.SearchContext(sctx, s.cfg.Q, searchFit)
	if err != nil {
		ev.Reason = fmt.Sprintf("search aborted: %v", err)
		return ev, window.Thresholds{}
	}
	cand = res.Best
	if err := cand.Validate(s.cfg.Q); err != nil {
		ev.Kind = EventRejected
		ev.Reason = fmt.Sprintf("invalid candidate: %v", err)
		return ev, window.Thresholds{}
	}
	if !finiteThresholds(cand) {
		ev.Kind = EventRejected
		ev.Reason = "candidate has non-finite parameters"
		return ev, window.Thresholds{}
	}
	ev.Fitness = holdFit(cand)
	if math.IsNaN(ev.Fitness) || ev.Fitness < ev.Baseline-s.cfg.Epsilon {
		ev.Kind = EventRejected
		ev.Reason = fmt.Sprintf("holdout fitness %.4f regresses baseline %.4f beyond epsilon %.4f", ev.Fitness, ev.Baseline, s.cfg.Epsilon)
		return ev, window.Thresholds{}
	}
	ev.Kind = EventShadowing
	ev.Reason = ""
	return ev, cand
}

// finish lands the retrain goroutine's outcome: a validated candidate
// enters the shadow comparison; everything else returns the supervisor to
// idle with the live thresholds untouched.
func (s *Supervisor) finish(ev Event, cand window.Thresholds) {
	s.mu.Lock()
	ev.Tick = s.online.Processor().Ticks()
	s.cancel = nil
	if s.closed {
		// Shutdown raced the retrain: drop the outcome without starting a
		// shadow comparison nobody will decide.
		s.state = Idle
		s.mu.Unlock()
		return
	}
	switch ev.Kind {
	case EventShadowing:
		if err := s.online.StartShadow(cand, s.cfg.ShadowTicks); err != nil {
			ev.Kind = EventFailed
			ev.Reason = fmt.Sprintf("start shadow: %v", err)
			s.failLocked(ev)
		} else {
			s.state = Shadowing
			s.lastErr = ""
		}
	case EventRejected:
		s.rejections++
		s.failLocked(ev)
	default:
		s.failures++
		s.failLocked(ev)
	}
	s.mu.Unlock()
	s.emit(ev)
}

func (s *Supervisor) failLocked(ev Event) {
	s.state = Idle
	s.consec++
	s.lastEndTick = ev.Tick
	s.lastErr = ev.Reason
}

// decideShadowLocked resolves a finished shadow comparison: within the
// flip budget the candidate is promoted atomically (validation, swap, and
// persistence under the judge mutex); beyond it the candidate is discarded
// — the live thresholds were never modified, so the rollback is complete
// the moment the shadow is dropped.
func (s *Supervisor) decideShadowLocked(tick int) (Event, bool) {
	sh := s.online.ShadowStatus()
	if !sh.Active {
		// Shadow withdrawn externally; no penalty, back to watching.
		s.state = Idle
		s.lastEndTick = tick
		return Event{}, false
	}
	if !sh.Done {
		return Event{}, false
	}
	ev := Event{Tick: tick, Attempt: s.attempt, FlipRate: sh.FlipRate()}
	if sh.FlipRate() <= s.cfg.FlipBudget {
		if err := s.online.PromoteShadow(); err != nil {
			ev.Kind = EventFailed
			ev.Reason = fmt.Sprintf("promote: %v", err)
			s.failures++
			s.failLocked(ev)
			return ev, true
		}
		ev.Kind = EventPromoted
		s.promotions++
		s.consec = 0
		s.state = Idle
		s.lastEndTick = tick
		s.lastErr = ""
		return ev, true
	}
	s.online.StopShadow()
	ev.Kind = EventRolledBack
	ev.Reason = fmt.Sprintf("flip rate %.3f over budget %.3f", sh.FlipRate(), s.cfg.FlipBudget)
	s.rollbacks++
	s.failLocked(ev)
	return ev, true
}

func (s *Supervisor) emit(evs ...Event) {
	s.mu.Lock()
	rec := s.rec
	s.mu.Unlock()
	if rec == nil {
		return
	}
	for _, ev := range evs {
		rec.RecordRelearn(ev)
	}
}

func finiteThresholds(t window.Thresholds) bool {
	for _, a := range t.Alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return false
		}
	}
	return !math.IsNaN(t.Theta) && !math.IsInf(t.Theta, 0)
}
