// Package relearn closes DBCatcher's adaptation loop online: a supervised
// background relearning service that watches the live correlation-distance
// stream and the DBA feedback store for drift, re-fits the judgment
// thresholds (Algorithm 2) in an isolated, deadline-bounded goroutine,
// validates candidates on held-out judgment records, shadow-judges the
// survivors against live traffic, and promotes or rolls back atomically —
// so a bad, slow, or crashing retrain can never degrade live detection.
package relearn

import "math"

// DriftConfig tunes the Page-Hinkley change test on the correlation
// distance stream (1 - mean pairwise correlation per resolved round).
type DriftConfig struct {
	// Delta is the magnitude tolerance: deviations below it do not
	// accumulate (default 0.005).
	Delta float64
	// Lambda is the alarm threshold on the accumulated deviation
	// (default 0.15).
	Lambda float64
	// Warmup is the number of observations consumed before the test may
	// alarm, letting the running mean settle (default 30).
	Warmup int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Delta == 0 {
		c.Delta = 0.005
	}
	if c.Lambda == 0 {
		c.Lambda = 0.15
	}
	if c.Warmup == 0 {
		c.Warmup = 30
	}
	return c
}

// PageHinkley detects a sustained upward shift in a stream's mean — here,
// the correlation distance rising as workload drift decouples previously
// correlated databases. It maintains the cumulative deviation of each
// observation from the running mean (minus the tolerance Delta) and alarms
// when the cumulation climbs more than Lambda above its historical
// minimum. Not safe for concurrent use; the Supervisor serializes access.
type PageHinkley struct {
	cfg  DriftConfig
	n    int
	mean float64
	cum  float64
	min  float64
}

// NewPageHinkley returns a drift test; zero config fields take defaults.
func NewPageHinkley(cfg DriftConfig) *PageHinkley {
	return &PageHinkley{cfg: cfg.withDefaults()}
}

// Observe feeds one value and reports whether the test alarms. NaN values
// (skipped rounds measure nothing) are ignored. An alarm resets the test,
// so consecutive alarms require the shift to re-accumulate from scratch.
func (p *PageHinkley) Observe(x float64) bool {
	if math.IsNaN(x) {
		return false
	}
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.cum += x - p.mean - p.cfg.Delta
	if p.cum < p.min {
		p.min = p.cum
	}
	if p.n <= p.cfg.Warmup {
		return false
	}
	if p.cum-p.min > p.cfg.Lambda {
		p.Reset()
		return true
	}
	return false
}

// Reset clears the accumulated state (also applied after every alarm).
func (p *PageHinkley) Reset() {
	p.n, p.mean, p.cum, p.min = 0, 0, 0, 0
}

// Stat returns the current test statistic (the accumulated deviation above
// its minimum), for status reporting; an alarm fires when it exceeds
// Lambda.
func (p *PageHinkley) Stat() float64 { return p.cum - p.min }
