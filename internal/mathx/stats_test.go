package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesBatch(t *testing.T) {
	rng := NewRNG(7)
	v := make([]float64, 1000)
	var w Welford
	for i := range v {
		v[i] = rng.NormMeanStd(3, 2)
		w.Add(v[i])
	}
	if w.N() != 1000 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-Mean(v)) > 1e-9 {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(v))
	}
	if math.Abs(w.Variance()-Variance(v)) > 1e-9 {
		t.Errorf("Welford var %v != batch %v", w.Variance(), Variance(v))
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestWelfordSampleVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4} {
		w.Add(x)
	}
	// Sample variance of {1,2,3,4} is 5/3.
	if math.Abs(w.SampleVariance()-5.0/3.0) > 1e-12 {
		t.Fatalf("SampleVariance = %v", w.SampleVariance())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Add(10); got != 10 {
		t.Fatalf("first Add = %v, want seed value", got)
	}
	if got := e.Add(0); got != 5 {
		t.Fatalf("second Add = %v, want 5", got)
	}
	if e.Value() != 5 {
		t.Fatalf("Value = %v", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEWMA(0)
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(x, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	if !EqualApprox(got, want, 1e-12) {
		t.Fatalf("MovingAverage = %v, want %v", got, want)
	}
	if got := MovingAverage(x, 1); !EqualApprox(got, x, 0) {
		t.Fatalf("width 1 should copy, got %v", got)
	}
}

func TestMovingAveragePreservesMeanProperty(t *testing.T) {
	f := func(raw []float64, w uint8) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				v = append(v, x)
			}
		}
		if len(v) < 3 {
			return true
		}
		width := int(w%7)*2 + 1 // odd widths 1..13
		out := MovingAverage(v, width)
		min, max := MinMax(v)
		for _, x := range out {
			if x < min-1e-9 || x > max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9, 16})
	if !EqualApprox(got, []float64{3, 5, 7}, 0) {
		t.Fatalf("Diff = %v", got)
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("Diff of short slice should be nil")
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.1, 0.2, 0.6, 0.9, -1, 2}, 2, 0, 1)
	// Bins [0,0.5) and [0.5,1]; out-of-range clamps.
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("Histogram = %v", counts)
	}
	if Histogram(nil, 0, 0, 1) != nil {
		t.Fatal("bad args should return nil")
	}
}
