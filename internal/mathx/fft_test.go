package mathx

import (
	"math"
	"math/cmplx"
	"testing"
)

// naiveDFT is the O(n²) reference used to validate the FFT implementations.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * cmplx.Rect(1, ang)
		}
	}
	return out
}

func complexApproxEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := NewRNG(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Norm(), rng.Norm())
		}
		want := naiveDFT(x)
		got := FFT(Clone2(x))
		if !complexApproxEqual(got, want, 1e-8*float64(n)) {
			t.Fatalf("FFT(n=%d) mismatch", n)
		}
	}
}

// Clone2 copies a complex slice (test helper).
func Clone2(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	return out
}

func TestFFTAnyMatchesNaiveDFT(t *testing.T) {
	rng := NewRNG(2)
	for _, n := range []int{1, 3, 5, 7, 12, 33, 100, 127} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Norm(), rng.Norm())
		}
		want := naiveDFT(x)
		got := FFTAny(x)
		if !complexApproxEqual(got, want, 1e-7*float64(n)) {
			t.Fatalf("FFTAny(n=%d) mismatch", n)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := NewRNG(3)
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.Norm(), rng.Norm())
	}
	orig := Clone2(x)
	IFFT(FFT(x))
	if !complexApproxEqual(x, orig, 1e-9) {
		t.Fatal("IFFT(FFT(x)) != x")
	}
}

func TestRealFFTRoundTrip(t *testing.T) {
	rng := NewRNG(4)
	for _, n := range []int{8, 17, 50, 128} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Norm()
		}
		back := RealIFFT(RealFFT(x))
		if !EqualApprox(back, x, 1e-8) {
			t.Fatalf("RealFFT round trip failed for n=%d", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func naiveCrossCorr(a, b []float64) []float64 {
	na, nb := len(a), len(b)
	out := make([]float64, na+nb-1)
	for k := -(nb - 1); k <= na-1; k++ {
		var s float64
		for i := 0; i < nb; i++ {
			j := i + k
			if j >= 0 && j < na {
				s += a[j] * b[i]
			}
		}
		out[k+nb-1] = s
	}
	return out
}

func TestCrossCorrelateFFTMatchesNaive(t *testing.T) {
	rng := NewRNG(5)
	for _, sz := range [][2]int{{4, 4}, {8, 5}, {20, 20}, {33, 7}} {
		a := make([]float64, sz[0])
		b := make([]float64, sz[1])
		for i := range a {
			a[i] = rng.Norm()
		}
		for i := range b {
			b[i] = rng.Norm()
		}
		want := naiveCrossCorr(a, b)
		got := CrossCorrelateFFT(a, b)
		if !EqualApprox(got, want, 1e-8) {
			t.Fatalf("cross-correlation mismatch for sizes %v:\n got %v\nwant %v", sz, got, want)
		}
	}
}

// TestCrossCorrelateFFTIntoMatchesAllocating: the scratch-reusing variant
// must be bit-identical to the allocating one (same FFT plan, same op
// order), warm calls must not allocate, and stale scratch contents from a
// larger previous call must never leak into a smaller one.
func TestCrossCorrelateFFTIntoMatchesAllocating(t *testing.T) {
	rng := NewRNG(9)
	scratch := NewFFTScratch()
	sizes := [][2]int{{33, 7}, {4, 4}, {20, 20}, {8, 5}, {64, 64}, {5, 3}}
	for _, sz := range sizes {
		a := make([]float64, sz[0])
		b := make([]float64, sz[1])
		for i := range a {
			a[i] = rng.Norm()
		}
		for i := range b {
			b[i] = rng.Norm()
		}
		want := CrossCorrelateFFT(a, b)
		got := CrossCorrelateFFTInto(a, b, scratch)
		if len(got) != len(want) {
			t.Fatalf("sizes %v: length %d, want %d", sz, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sizes %v: index %d: %v != %v (want bit-identical)", sz, i, got[i], want[i])
			}
		}
	}
	a := make([]float64, 48)
	b := make([]float64, 48)
	for i := range a {
		a[i] = rng.Norm()
		b[i] = rng.Norm()
	}
	CrossCorrelateFFTInto(a, b, scratch) // warm for this size
	if allocs := testing.AllocsPerRun(10, func() {
		CrossCorrelateFFTInto(a, b, scratch)
	}); allocs != 0 {
		t.Fatalf("warm CrossCorrelateFFTInto allocates %.1f/op, want 0", allocs)
	}
}

func TestPeriodogramPeak(t *testing.T) {
	// A pure sinusoid with 8 cycles over 128 samples must peak at bin 8.
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	p := Periodogram(x)
	if got := ArgMax(p[1:]) + 1; got != 8 {
		t.Fatalf("periodogram peak at bin %d, want 8", got)
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// Period-16 sine: autocorrelation at lag 16 should be close to 1.
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	ac := Autocorrelation(x, 32)
	if math.Abs(ac[0]-1) > 1e-9 {
		t.Fatalf("ac[0] = %v, want 1", ac[0])
	}
	if ac[16] < 0.9 {
		t.Fatalf("ac[16] = %v, want close to 1", ac[16])
	}
	if ac[8] > -0.9 {
		t.Fatalf("ac[8] = %v, want close to -1 (anti-phase)", ac[8])
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	ac := Autocorrelation([]float64{3, 3, 3, 3}, 2)
	for _, v := range ac {
		if v != 0 {
			t.Fatalf("constant series autocorrelation = %v, want zeros", ac)
		}
	}
}
