// Package mathx provides the numerical substrate shared by every other
// package in the repository: vector and matrix helpers, a fast Fourier
// transform, online statistics, and a deterministic random source.
//
// Everything is implemented with the standard library only. The package is
// deliberately small-surface: callers pass and receive plain []float64 and
// the few concrete types defined here.
package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned by binary vector operations whose operands
// have different lengths.
var ErrLengthMismatch = errors.New("mathx: vector length mismatch")

// Dot returns the inner product of a and b. It panics if the lengths differ;
// use DotChecked when the lengths come from untrusted input.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// DotChecked is Dot with an error instead of a panic.
func DotChecked(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	return Dot(a, b), nil
}

// Norm2 returns the Euclidean (L2) norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v (dividing by n, not n-1),
// or 0 for slices shorter than 2.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 { return math.Sqrt(Variance(v)) }

// MinMax returns the minimum and maximum of v. For an empty slice it
// returns (0, 0).
func MinMax(v []float64) (min, max float64) {
	if len(v) == 0 {
		return 0, 0
	}
	min, max = v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Scale multiplies every element of v by k in place and returns v.
func Scale(v []float64, k float64) []float64 {
	for i := range v {
		v[i] *= k
	}
	return v
}

// AddScaled computes dst[i] += k*src[i] in place and returns dst.
func AddScaled(dst []float64, k float64, src []float64) []float64 {
	if len(dst) != len(src) {
		panic(ErrLengthMismatch)
	}
	for i := range dst {
		dst[i] += k * src[i]
	}
	return dst
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrLengthMismatch)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Median returns the median of v without modifying it. It returns 0 for an
// empty slice.
func Median(v []float64) float64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	tmp := Clone(v)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MAD returns the median absolute deviation of v (scaled by 1.4826 so that
// it estimates the standard deviation for Gaussian data).
func MAD(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Median(v)
	dev := make([]float64, len(v))
	for i, x := range v {
		dev[i] = math.Abs(x - m)
	}
	return 1.4826 * Median(dev)
}

// Quantile returns the q-quantile (0 <= q <= 1) of v using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Quantile(v []float64, q float64) float64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	tmp := Clone(v)
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// Normalize rescales v into [0, 1] using min-max scaling (paper Eq. 1) and
// returns a new slice. A constant series maps to all zeros.
func Normalize(v []float64) []float64 {
	return NormalizeInto(make([]float64, len(v)), v)
}

// NormalizeInto is Normalize writing into a caller-owned buffer of the same
// length, so hot paths can rescale without allocating. It returns dst.
func NormalizeInto(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		panic(ErrLengthMismatch)
	}
	min, max := MinMax(src)
	span := max - min
	if span == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, x := range src {
		dst[i] = (x - min) / span
	}
	return dst
}

// ZScore standardizes v to zero mean and unit variance, returning a new
// slice. A constant series maps to all zeros.
func ZScore(v []float64) []float64 {
	out := make([]float64, len(v))
	m, sd := Mean(v), Std(v)
	if sd == 0 {
		return out
	}
	for i, x := range v {
		out[i] = (x - m) / sd
	}
	return out
}

// ArgMax returns the index of the largest element, or -1 for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	idx := 0
	for i, x := range v {
		if x > v[idx] {
			idx = i
		}
	}
	return idx
}

// ArgMin returns the index of the smallest element, or -1 for an empty slice.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	idx := 0
	for i, x := range v {
		if x < v[idx] {
			idx = i
		}
	}
	return idx
}

// Sum returns the sum of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// EqualApprox reports whether a and b have the same length and differ by at
// most tol element-wise.
func EqualApprox(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
