package mathx

import "math/cmplx"

import "math"

// FFT computes the in-place radix-2 Cooley-Tukey fast Fourier transform of
// x. The length of x must be a power of two; use FFTAny for arbitrary
// lengths. The input slice is modified and returned.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	if n&(n-1) != 0 {
		panic("mathx: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly stages.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	return x
}

// IFFT computes the in-place inverse FFT of x (power-of-two length).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	// Conjugate, forward transform, conjugate, scale.
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * complex(inv, 0)
	}
	return x
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFTAny computes the DFT of x for any length using Bluestein's algorithm
// (chirp-z transform) backed by the power-of-two FFT. The input slice is not
// modified; a new slice is returned.
func FFTAny(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		return FFT(out)
	}
	// Bluestein: X_k = b*_k * (a ⊛ b)_k with a_j = x_j b*_j,
	// b_j = exp(iπ j² / n).
	m := NextPow2(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	chirp := make([]complex128, n)
	for j := 0; j < n; j++ {
		// Reduce j² mod 2n before the trig call to keep the angle small.
		jj := int64(j) * int64(j) % int64(2*n)
		chirp[j] = cmplx.Rect(1, math.Pi*float64(jj)/float64(n))
	}
	for j := 0; j < n; j++ {
		a[j] = x[j] * cmplx.Conj(chirp[j])
		b[j] = chirp[j]
		if j != 0 {
			b[m-j] = chirp[j]
		}
	}
	FFT(a)
	FFT(b)
	for i := range a {
		a[i] *= b[i]
	}
	IFFT(a)
	out := make([]complex128, n)
	for j := 0; j < n; j++ {
		out[j] = a[j] * cmplx.Conj(chirp[j])
	}
	return out
}

// RealFFT computes the DFT of a real-valued signal of any length and returns
// the complex spectrum.
func RealFFT(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFTAny(c)
}

// RealIFFT inverts a spectrum produced by RealFFT and returns the real part
// of the reconstruction.
func RealIFFT(spec []complex128) []float64 {
	n := len(spec)
	if n == 0 {
		return nil
	}
	var c []complex128
	if n&(n-1) == 0 {
		c = make([]complex128, n)
		copy(c, spec)
		IFFT(c)
	} else {
		// IDFT via conjugation + forward Bluestein transform.
		tmp := make([]complex128, n)
		for i, v := range spec {
			tmp[i] = cmplx.Conj(v)
		}
		fw := FFTAny(tmp)
		c = make([]complex128, n)
		inv := 1 / float64(n)
		for i, v := range fw {
			c[i] = cmplx.Conj(v) * complex(inv, 0)
		}
	}
	out := make([]float64, n)
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// CrossCorrelateFFT returns the linear cross-correlation r[k] =
// sum_i a[i+k]*b[i] for k in [-(len(b)-1), len(a)-1], computed with FFTs in
// O(n log n). The result slice has length len(a)+len(b)-1 and index
// k + len(b) - 1 holds lag k.
func CrossCorrelateFFT(a, b []float64) []float64 {
	// A transient scratch is never reused, so handing its output buffer to
	// the caller is safe.
	return CrossCorrelateFFTInto(a, b, nil)
}

// FFTScratch holds the reusable frequency-domain and output buffers of an
// FFT cross-correlation, so steady-state delay scans allocate nothing once
// the buffers have grown to the working size. The zero value is ready to
// use. Not safe for concurrent use.
type FFTScratch struct {
	fa, fb []complex128
	out    []float64
}

// NewFFTScratch returns an empty scratch; buffers grow on first use.
func NewFFTScratch() *FFTScratch { return &FFTScratch{} }

// grow sizes the buffers for an m-point transform with a total-length
// correlation output, zeroing the frequency-domain staging area.
func (s *FFTScratch) grow(m, total int) {
	if cap(s.fa) < m {
		s.fa = make([]complex128, m)
		s.fb = make([]complex128, m)
	}
	s.fa = s.fa[:m]
	s.fb = s.fb[:m]
	for i := range s.fa {
		s.fa[i] = 0
		s.fb[i] = 0
	}
	if cap(s.out) < total {
		s.out = make([]float64, total)
	}
	s.out = s.out[:total]
}

// CrossCorrelateFFTInto is CrossCorrelateFFT computing through caller-owned
// scratch buffers: with a reused FFTScratch the pass performs no
// allocations. A nil scratch allocates a transient one. The returned slice
// aliases the scratch and is only valid until its next use. Results are
// bit-identical to CrossCorrelateFFT.
func CrossCorrelateFFTInto(a, b []float64, s *FFTScratch) []float64 {
	na, nb := len(a), len(b)
	if na == 0 || nb == 0 {
		return nil
	}
	if s == nil {
		s = NewFFTScratch()
	}
	total := na + nb - 1
	m := NextPow2(total)
	s.grow(m, total)
	fa, fb := s.fa, s.fb
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	// Reverse b to turn convolution into correlation.
	for i, v := range b {
		fb[nb-1-i] = complex(v, 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := s.out
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// Periodogram returns the power spectrum |X_k|²/n of a real signal for
// k in [0, n/2].
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	spec := RealFFT(x)
	half := n/2 + 1
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}

// Autocorrelation returns the normalized autocorrelation of x for lags
// 0..maxLag. r[0] is always 1 unless the series is constant (then all
// zeros).
func Autocorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	m := Mean(x)
	centered := make([]float64, n)
	for i, v := range x {
		centered[i] = v - m
	}
	var denom float64
	for _, v := range centered {
		denom += v * v
	}
	out := make([]float64, maxLag+1)
	if denom == 0 {
		return out
	}
	full := CrossCorrelateFFT(centered, centered)
	// Lag k lives at index k + n - 1.
	for k := 0; k <= maxLag; k++ {
		out[k] = full[k+n-1] / denom
	}
	return out
}
