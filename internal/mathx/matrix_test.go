package mathx

import (
	"math"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatal("Set/At broken")
	}
	if got := m.Row(1); !EqualApprox(got, []float64{0, 3, 0}, 0) {
		t.Fatalf("Row = %v", got)
	}
	if got := m.Col(2); !EqualApprox(got, []float64{2, 0}, 0) {
		t.Fatalf("Col = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec([]float64{1, 1})
	if !EqualApprox(got, []float64{3, 7}, 0) {
		t.Fatalf("MulVec = %v", got)
	}
	gotT := m.TMulVec([]float64{1, 1})
	if !EqualApprox(gotT, []float64{4, 6}, 0) {
		t.Fatalf("TMulVec = %v", gotT)
	}
}

func TestMatrixMulAndTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	for i := 0; i < 6; i++ {
		a.Data[i] = float64(i + 1) // [1 2 3; 4 5 6]
	}
	b := a.Transpose()
	if b.Rows != 3 || b.Cols != 2 || b.At(2, 1) != 6 {
		t.Fatalf("Transpose wrong: %v", b)
	}
	p := a.Mul(b) // 2x2: [[14,32],[32,77]]
	if p.At(0, 0) != 14 || p.At(0, 1) != 32 || p.At(1, 0) != 32 || p.At(1, 1) != 77 {
		t.Fatalf("Mul = %v", p)
	}
}

func TestSolveCholesky(t *testing.T) {
	// A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := SolveCholesky(a, []float64{6, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(x, []float64{1, 1}, 1e-10) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveCholeskySingular(t *testing.T) {
	a := NewMatrix(2, 2) // all zeros
	if _, err := SolveCholesky(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	// y = 2*x0 - 3*x1 with noiseless design.
	rng := NewRNG(11)
	n, p := 50, 2
	a := NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.Norm(), rng.Norm()
		a.Set(i, 0, x0)
		a.Set(i, 1, x1)
		y[i] = 2*x0 - 3*x1
	}
	coef, err := LeastSquares(a, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-2) > 1e-4 || math.Abs(coef[1]+3) > 1e-4 {
		t.Fatalf("coef = %v, want [2, -3]", coef)
	}
}
