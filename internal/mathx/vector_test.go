package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotChecked(t *testing.T) {
	if _, err := DotChecked([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
	v, err := DotChecked([]float64{2}, []float64{3})
	if err != nil || v != 6 {
		t.Fatalf("DotChecked = %v, %v", v, err)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(v); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(v); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Std(v); got != 2 {
		t.Errorf("Std = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty slice stats should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatalf("MinMax(nil) = %v, %v", min, max)
	}
}

func TestNormalizeRange(t *testing.T) {
	out := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	if !EqualApprox(out, want, 1e-12) {
		t.Fatalf("Normalize = %v, want %v", out, want)
	}
}

func TestNormalizeConstant(t *testing.T) {
	out := Normalize([]float64{5, 5, 5})
	if !EqualApprox(out, []float64{0, 0, 0}, 0) {
		t.Fatalf("constant series should normalize to zeros, got %v", out)
	}
}

func TestNormalizePropertyBounds(t *testing.T) {
	f := func(v []float64) bool {
		for i := range v {
			// Keep magnitudes where max-min cannot overflow; KPI data is
			// nowhere near float64 extremes.
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) || math.Abs(v[i]) > 1e150 {
				v[i] = 0
			}
		}
		out := Normalize(v)
		for _, x := range out {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
		}
		return len(out) == len(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZScore(t *testing.T) {
	out := ZScore([]float64{1, 2, 3, 4, 5})
	if math.Abs(Mean(out)) > 1e-12 {
		t.Errorf("ZScore mean = %v, want 0", Mean(out))
	}
	if math.Abs(Std(out)-1) > 1e-12 {
		t.Errorf("ZScore std = %v, want 1", Std(out))
	}
	if got := ZScore([]float64{2, 2}); !EqualApprox(got, []float64{0, 0}, 0) {
		t.Errorf("constant ZScore = %v", got)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	v := []float64{9, 1, 5, 3, 7}
	if got := Median(v); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if got := Quantile(v, 0); got != 1 {
		t.Errorf("Q0 = %v, want 1", got)
	}
	if got := Quantile(v, 1); got != 9 {
		t.Errorf("Q1 = %v, want 9", got)
	}
	if got := Quantile(v, 0.5); got != 5 {
		t.Errorf("Q0.5 = %v, want 5", got)
	}
}

func TestMAD(t *testing.T) {
	// For {1,1,2,2,4,6,9}: median 2, abs devs {1,1,0,0,2,4,7}, median dev 1.
	got := MAD([]float64{1, 1, 2, 2, 4, 6, 9})
	if math.Abs(got-1.4826) > 1e-9 {
		t.Fatalf("MAD = %v, want 1.4826", got)
	}
}

func TestArgMinMax(t *testing.T) {
	v := []float64{3, 9, -2, 9}
	if got := ArgMax(v); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first max)", got)
	}
	if got := ArgMin(v); got != 2 {
		t.Errorf("ArgMin = %d, want 2", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("empty ArgMax/ArgMin should be -1")
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := Add(a, b); !EqualApprox(got, []float64{4, 7}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !EqualApprox(got, []float64{2, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	c := Clone(a)
	Scale(c, 2)
	if !EqualApprox(c, []float64{2, 4}, 0) {
		t.Errorf("Scale = %v", c)
	}
	d := Clone(a)
	AddScaled(d, 10, b)
	if !EqualApprox(d, []float64{31, 52}, 0) {
		t.Errorf("AddScaled = %v", d)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestSum(t *testing.T) {
	if Sum([]float64{1, 2, 3.5}) != 6.5 {
		t.Fatal("Sum wrong")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		prev := Quantile(v, 0)
		for q := 0.1; q <= 1.0001; q += 0.1 {
			cur := Quantile(v, q)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
