package mathx

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64-seeded xoshiro256**). Every stochastic component in the
// repository takes an *RNG so that experiments are reproducible from a
// single seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value. Distinct seeds
// yield independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r, keyed by id. Use it to
// give parallel components uncorrelated streams.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormMeanStd returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponential variate with the given rate λ.
func (r *RNG) Exp(lambda float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}

// Poisson returns a Poisson variate with mean lambda (Knuth's method for
// small lambda, normal approximation above 30 for speed).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := r.NormMeanStd(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n.
func (r *RNG) Sample(n, k int) []int {
	if k > n {
		panic("mathx: Sample k > n")
	}
	return r.Perm(n)[:k]
}
