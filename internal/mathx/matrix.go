package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mathx: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(ErrLengthMismatch)
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// TMulVec returns mᵀ·v.
func (m *Matrix) TMulVec(v []float64) []float64 {
	if len(v) != m.Rows {
		panic(ErrLengthMismatch)
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		vi := v[i]
		for j, x := range row {
			out[j] += x * vi
		}
	}
	return out
}

// Mul returns m·other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(ErrLengthMismatch)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			orow := other.Row(k)
			dst := out.Row(i)
			for j, b := range orow {
				dst[j] += a * b
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("mathx: singular matrix")

// SolveCholesky solves A·x = b for symmetric positive-definite A using a
// Cholesky factorization. A is not modified.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, ErrLengthMismatch
	}
	// Factor A = L·Lᵀ.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 1e-14 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ via the regularized normal equations
// (AᵀA + λI)x = Aᵀb with a tiny ridge λ for numerical stability.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, ErrLengthMismatch
	}
	at := a.Transpose()
	ata := at.Mul(a)
	// Ridge scaled to the trace keeps conditioning reasonable without
	// visibly biasing the solution.
	var trace float64
	for i := 0; i < ata.Rows; i++ {
		trace += ata.At(i, i)
	}
	lambda := 1e-10 * (trace + 1)
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb := a.TMulVec(b)
	return SolveCholesky(ata, atb)
}
