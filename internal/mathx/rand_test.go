package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should produce same stream")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(4)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bin %d frequency %v too far from 0.1", b, frac)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Norm())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v", w.Mean())
	}
	if math.Abs(w.Std()-1) > 0.02 {
		t.Fatalf("normal std = %v", w.Std())
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(6)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Exp(2))
	}
	if math.Abs(w.Mean()-0.5) > 0.02 {
		t.Fatalf("exp(2) mean = %v, want 0.5", w.Mean())
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(7)
	for _, lambda := range []float64{0.5, 3, 50} {
		var w Welford
		for i := 0; i < 50000; i++ {
			w.Add(float64(r.Poisson(lambda)))
		}
		if math.Abs(w.Mean()-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, w.Mean())
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Fatal("poisson(0) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSample(t *testing.T) {
	r := NewRNG(9)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample len = %d", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
}

func TestRange(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collide %d times", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(12)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}
