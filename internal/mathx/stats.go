package mathx

import "math"

// Welford accumulates a running mean and variance in a single pass using
// Welford's algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations seen so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the running sample variance (n-1 denominator).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// EWMA is an exponentially weighted moving average. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("mathx: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds x into the average and returns the updated value.
func (e *EWMA) Add(x float64) float64 {
	if !e.started {
		e.value = x
		e.started = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// MovingAverage smooths x with a centered window of the given odd width,
// shrinking the window at the boundaries. width <= 1 returns a copy.
func MovingAverage(x []float64, width int) []float64 {
	n := len(x)
	out := make([]float64, n)
	if width <= 1 {
		copy(out, x)
		return out
	}
	half := width / 2
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// Diff returns the first difference x[i+1]-x[i] (length len(x)-1).
func Diff(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for i := range out {
		out[i] = x[i+1] - x[i]
	}
	return out
}

// Histogram bins v into nbins equal-width buckets over [min, max] and
// returns the counts. Values outside the range clamp to the end bins.
func Histogram(v []float64, nbins int, min, max float64) []int {
	if nbins <= 0 || max <= min {
		return nil
	}
	counts := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range v {
		idx := int((x - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	return counts
}
