package tracefile

import (
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary text to the CSV trace parser: it must never
// panic, and any successfully parsed trace must validate.
func FuzzRead(f *testing.F) {
	f.Add(header() + "\n0,0," + zeros() + "\n")
	f.Add("tick,database\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			return
		}
		u, err := Read(strings.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("parsed trace fails validation: %v", err)
		}
	})
}
