// Package tracefile reads and writes unit KPI series as CSV, the
// integration path for real monitoring exports (the paper points to the
// Tencent Cloud "get KPI time series" API [32]; any system that can dump
// per-database KPI samples to CSV can feed this detector).
//
// Format: a header row, then one row per (tick, database):
//
//	tick,database,<kpi name>,<kpi name>,...
//	0,0,123.4,...
//	0,1,119.8,...
//	1,0,125.0,...
//
// Rows must cover every database for every tick, in any order. KPI columns
// are matched by Table II display name; unknown columns are rejected so
// typos fail loudly.
package tracefile

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"dbcatcher/internal/kpi"
	"dbcatcher/internal/timeseries"
)

// Write serializes the unit series as CSV.
func Write(w io.Writer, u *timeseries.UnitSeries) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	if u.KPIs != kpi.Count {
		return fmt.Errorf("tracefile: unit has %d KPIs, want the standard %d", u.KPIs, kpi.Count)
	}
	cw := csv.NewWriter(w)
	header := []string{"tick", "database"}
	for _, k := range kpi.All() {
		header = append(header, k.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	row := make([]string, len(header))
	for t := 0; t < u.Len(); t++ {
		for d := 0; d < u.Databases; d++ {
			row[0] = strconv.Itoa(t)
			row[1] = strconv.Itoa(d)
			for k := 0; k < kpi.Count; k++ {
				row[2+k] = strconv.FormatFloat(u.Data[k][d].At(t), 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("tracefile: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile is Write to a file path.
func WriteFile(path string, u *timeseries.UnitSeries) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	defer f.Close()
	if err := Write(f, u); err != nil {
		return err
	}
	return f.Sync()
}

// Read parses a CSV trace into a unit series named `name`.
func Read(r io.Reader, name string) (*timeseries.UnitSeries, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tracefile: header: %w", err)
	}
	cols, err := mapHeader(header)
	if err != nil {
		return nil, err
	}
	type cell struct {
		tick, db int
		values   []float64
	}
	var cells []cell
	maxTick, maxDB := -1, -1
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tracefile: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("tracefile: line %d: %d fields, want %d", line, len(rec), len(header))
		}
		tick, err := strconv.Atoi(rec[0])
		if err != nil || tick < 0 {
			return nil, fmt.Errorf("tracefile: line %d: bad tick %q", line, rec[0])
		}
		db, err := strconv.Atoi(rec[1])
		if err != nil || db < 0 {
			return nil, fmt.Errorf("tracefile: line %d: bad database %q", line, rec[1])
		}
		values := make([]float64, kpi.Count)
		for col, k := range cols {
			v, err := strconv.ParseFloat(rec[col], 64)
			if err != nil {
				return nil, fmt.Errorf("tracefile: line %d: bad value %q for %s", line, rec[col], k)
			}
			values[k] = v
		}
		cells = append(cells, cell{tick: tick, db: db, values: values})
		if tick > maxTick {
			maxTick = tick
		}
		if db > maxDB {
			maxDB = db
		}
	}
	if maxTick < 0 {
		return nil, fmt.Errorf("tracefile: empty trace")
	}
	ticks, dbs := maxTick+1, maxDB+1
	if len(cells) != ticks*dbs {
		return nil, fmt.Errorf("tracefile: %d rows do not cover %d ticks x %d databases", len(cells), ticks, dbs)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].tick != cells[j].tick {
			return cells[i].tick < cells[j].tick
		}
		return cells[i].db < cells[j].db
	})
	// Detect duplicates after sorting.
	for i := 1; i < len(cells); i++ {
		if cells[i].tick == cells[i-1].tick && cells[i].db == cells[i-1].db {
			return nil, fmt.Errorf("tracefile: duplicate row for tick %d database %d", cells[i].tick, cells[i].db)
		}
	}
	u := timeseries.NewUnitSeries(name, kpi.Count, dbs)
	for _, c := range cells {
		for k := 0; k < kpi.Count; k++ {
			u.Data[k][c.db].Append(c.values[k])
		}
	}
	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	return u, nil
}

// ReadFile is Read from a file path.
func ReadFile(path, name string) (*timeseries.UnitSeries, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	defer f.Close()
	return Read(f, name)
}

// mapHeader resolves KPI columns by display name.
func mapHeader(header []string) (map[int]kpi.KPI, error) {
	if len(header) < 3 || header[0] != "tick" || header[1] != "database" {
		return nil, fmt.Errorf("tracefile: header must start with tick,database")
	}
	byName := make(map[string]kpi.KPI, kpi.Count)
	for _, k := range kpi.All() {
		byName[k.String()] = k
	}
	cols := make(map[int]kpi.KPI)
	seen := make(map[kpi.KPI]bool)
	for i := 2; i < len(header); i++ {
		k, ok := byName[header[i]]
		if !ok {
			return nil, fmt.Errorf("tracefile: unknown KPI column %q", header[i])
		}
		if seen[k] {
			return nil, fmt.Errorf("tracefile: duplicate KPI column %q", header[i])
		}
		seen[k] = true
		cols[i] = k
	}
	if len(cols) != kpi.Count {
		return nil, fmt.Errorf("tracefile: %d KPI columns, want all %d Table II indicators", len(cols), kpi.Count)
	}
	return cols, nil
}
