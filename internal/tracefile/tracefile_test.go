package tracefile

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/kpi"
)

func simUnit(t *testing.T) *cluster.Unit {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{Name: "trace", Ticks: 50, Seed: 1, Databases: 3})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestRoundTrip(t *testing.T) {
	u := simUnit(t)
	var buf bytes.Buffer
	if err := Write(&buf, u.Series); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, "trace")
	if err != nil {
		t.Fatal(err)
	}
	if back.Databases != 3 || back.Len() != 50 {
		t.Fatalf("shape = %d dbs, %d ticks", back.Databases, back.Len())
	}
	for k := 0; k < kpi.Count; k++ {
		for d := 0; d < 3; d++ {
			a := u.Series.Data[k][d].Values
			b := back.Data[k][d].Values
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("kpi %d db %d tick %d: %v != %v", k, d, i, a[i], b[i])
				}
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	u := simUnit(t)
	path := filepath.Join(t.TempDir(), "unit.csv")
	if err := WriteFile(path, u.Series); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, "x")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 {
		t.Fatal("file round trip lost data")
	}
}

func TestReadShuffledRows(t *testing.T) {
	// Rows in arbitrary order must still assemble correctly.
	csvData := header() + "\n" +
		"1,0," + zeros() + "\n" +
		"0,1," + zeros() + "\n" +
		"1,1," + zeros() + "\n" +
		"0,0," + zeros() + "\n"
	u, err := Read(strings.NewReader(csvData), "s")
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 || u.Databases != 2 {
		t.Fatalf("shape = %d ticks, %d dbs", u.Len(), u.Databases)
	}
}

func header() string {
	cols := []string{"tick", "database"}
	for _, k := range kpi.All() {
		cols = append(cols, k.String())
	}
	return strings.Join(cols, ",")
}

func zeros() string {
	return strings.TrimSuffix(strings.Repeat("0,", kpi.Count), ",")
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":          header() + "\n",
		"unknown column": "tick,database,Nope\n0,0,1\n",
		"missing kpis":   "tick,database,CPU Utilization\n0,0,1\n",
		"bad tick":       header() + "\nx,0," + zeros() + "\n",
		"bad db":         header() + "\n0,-1," + zeros() + "\n",
		"bad value":      header() + "\n0,0," + strings.Replace(zeros(), "0", "abc", 1) + "\n",
		"incomplete": header() + "\n0,0," + zeros() + "\n0,1," + zeros() + "\n" +
			"1,0," + zeros() + "\n", // missing (1,1)
		"duplicate":  header() + "\n0,0," + zeros() + "\n0,0," + zeros() + "\n",
		"bad header": "a,b,c\n",
	}
	for name, data := range cases {
		if _, err := Read(strings.NewReader(data), "x"); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteRejectsNonStandardLayout(t *testing.T) {
	u := simUnit(t)
	u.Series.KPIs = 3
	u.Series.Data = u.Series.Data[:3]
	var buf bytes.Buffer
	if err := Write(&buf, u.Series); err == nil {
		t.Fatal("non-14-KPI layout should be rejected")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.csv"), "x"); err == nil {
		t.Fatal("missing file should error")
	}
}
