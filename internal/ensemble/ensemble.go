// Package ensemble combines DBCatcher with a conventional per-series
// detector — the paper's future-work direction #1 ("How can we combine
// existing anomaly detection methods to provide better anomaly detection
// services?") and its own observation that "DBCatcher complements existing
// methods" (§V).
//
// The division of labour follows the paper's stated blind spots:
// correlation measurement cannot see an anomaly that hits every database
// simultaneously (UKPIC is preserved) or one that does not break UKPIC at
// all. A per-series detector has no such blind spot, but is weaker on the
// single-database deviations DBCatcher excels at. The Hybrid method ORs
// the two verdicts at window granularity.
package ensemble

import (
	"fmt"
	"time"

	"dbcatcher/internal/baselines"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/metrics"
)

// Hybrid runs DBCatcher and a univariate fallback side by side and
// declares a window abnormal when either does. It implements
// baselines.Method so the experiment harness can compare it directly.
type Hybrid struct {
	// Catcher is the correlation-based detector; nil means the standard
	// DBCatcher configuration.
	Catcher *baselines.DBCatcherMethod
	// Fallback is the per-series detector; nil means the SR baseline.
	Fallback baselines.Method

	ready bool
}

// NewHybrid returns DBCatcher + SR, the cheapest complementary pairing.
func NewHybrid() *Hybrid { return &Hybrid{} }

// Name implements baselines.Method.
func (h *Hybrid) Name() string {
	return fmt.Sprintf("Hybrid(DBCatcher+%s)", h.fallback().Name())
}

func (h *Hybrid) catcher() *baselines.DBCatcherMethod {
	if h.Catcher == nil {
		h.Catcher = baselines.NewDBCatcherMethod()
	}
	return h.Catcher
}

func (h *Hybrid) fallback() baselines.Method {
	if h.Fallback == nil {
		h.Fallback = baselines.NewSRMethod()
	}
	return h.Fallback
}

// Train implements baselines.Method: both components train on the same
// split.
func (h *Hybrid) Train(train []*dataset.UnitData, seed uint64) (baselines.TrainInfo, error) {
	start := time.Now()
	ci, err := h.catcher().Train(train, seed)
	if err != nil {
		return baselines.TrainInfo{}, err
	}
	if _, err := h.fallback().Train(train, seed+1); err != nil {
		return baselines.TrainInfo{}, err
	}
	h.ready = true
	return baselines.TrainInfo{
		Duration:   time.Since(start),
		BestF:      ci.BestF,
		WindowSize: ci.WindowSize,
	}, nil
}

// Evaluate implements baselines.Method: a window is abnormal when either
// component flags any part of it. The two components use different window
// tilings, so the union is computed on the tick axis.
func (h *Hybrid) Evaluate(test []*dataset.UnitData) (baselines.Result, error) {
	if !h.ready {
		return baselines.Result{}, fmt.Errorf("ensemble: not trained")
	}
	var c metrics.Confusion
	var sizeSum float64
	var sizeN int
	for _, u := range test {
		catcherTicks, verdicts, err := h.catcherTicks(u)
		if err != nil {
			return baselines.Result{}, err
		}
		fallbackTicks, err := h.fallbackTicks(u)
		if err != nil {
			return baselines.Result{}, err
		}
		// Judge on DBCatcher's windows (they set the efficiency story);
		// a window is predicted abnormal when either component marked any
		// of its ticks.
		for _, v := range verdicts {
			predicted := false
			actual := false
			for t := v.Start; t < v.Start+v.Size; t++ {
				if catcherTicks[t] || fallbackTicks[t] {
					predicted = true
				}
				if u.Labels.Point[t] {
					actual = true
				}
			}
			c.Add(predicted, actual)
			sizeSum += float64(v.Size)
			sizeN++
		}
	}
	avg := 0.0
	if sizeN > 0 {
		avg = sizeSum / float64(sizeN)
	}
	return baselines.Result{Confusion: c, AvgWindowSize: avg}, nil
}

// catcherTicks runs DBCatcher and expands its abnormal windows to ticks.
func (h *Hybrid) catcherTicks(u *dataset.UnitData) ([]bool, []detect.Verdict, error) {
	verdicts, _, err := detect.Run(u.Unit.Series, detect.Config{
		Thresholds: h.catcher().Thresholds(),
	})
	if err != nil {
		return nil, nil, err
	}
	ticks := make([]bool, u.Unit.Series.Len())
	for _, v := range verdicts {
		if !v.Abnormal {
			continue
		}
		for t := v.Start; t < v.Start+v.Size && t < len(ticks); t++ {
			ticks[t] = true
		}
	}
	return ticks, verdicts, nil
}

// fallbackTicks asks the fallback method for per-tick abnormal flags.
func (h *Hybrid) fallbackTicks(u *dataset.UnitData) ([]bool, error) {
	return baselines.AbnormalTicks(h.fallback(), u)
}
