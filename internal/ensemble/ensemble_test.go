package ensemble

import (
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/baselines"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/workload"
)

// outageDataset builds units whose anomalies are exclusively unit-wide
// outages — the blind spot the paper concedes for correlation measurement.
func outageDataset(t *testing.T, units, ticks int, seed uint64) []*dataset.UnitData {
	t.Helper()
	var out []*dataset.UnitData
	rng := mathx.NewRNG(seed)
	for i := 0; i < units; i++ {
		u, err := cluster.Simulate(cluster.Config{
			Name: "outage", Ticks: ticks, Seed: rng.Uint64(),
			Profile: workload.TencentIrregular, FluctuationRate: 1e-9,
		})
		if err != nil {
			t.Fatal(err)
		}
		events := []anomaly.Event{
			{Type: anomaly.UnitOutage, Start: ticks / 3, Length: 40, Magnitude: 0.9},
			{Type: anomaly.UnitOutage, Start: 2 * ticks / 3, Length: 40, Magnitude: 0.85},
		}
		labels, err := anomaly.Inject(u, events, rng)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, &dataset.UnitData{Unit: u, Labels: labels, Profile: workload.TencentIrregular})
	}
	return out
}

// standardTrain builds a conventional single-database-anomaly training
// split: thresholds are learned under normal conditions, as deployed.
func standardTrain(t *testing.T, seed uint64) []*dataset.UnitData {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Family: dataset.Tencent, Units: 4, Ticks: 600, Seed: seed, AnomalyRatio: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Units
}

// TestUnitOutagePreservesUKPIC documents the paper's stated limitation:
// a simultaneous all-database anomaly leaves correlation intact, so pure
// DBCatcher misses it.
func TestUnitOutageIsDBCatcherBlindSpot(t *testing.T) {
	train := standardTrain(t, 1)
	test := outageDataset(t, 3, 600, 2)
	catcher := baselines.NewDBCatcherMethod()
	if _, err := catcher.Train(train, 1); err != nil {
		t.Fatal(err)
	}
	res, err := catcher.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Recall() > 0.34 {
		t.Fatalf("DBCatcher recall on unit-wide outages = %v; expected near-blindness (§V limitation)",
			res.Confusion.Recall())
	}
}

// TestHybridCoversTheBlindSpot: the ensemble's per-series fallback catches
// what correlation measurement cannot.
func TestHybridCoversTheBlindSpot(t *testing.T) {
	train := standardTrain(t, 3)
	test := outageDataset(t, 3, 600, 4)

	catcher := baselines.NewDBCatcherMethod()
	if _, err := catcher.Train(train, 1); err != nil {
		t.Fatal(err)
	}
	pure, err := catcher.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}

	hybrid := NewHybrid()
	if _, err := hybrid.Train(train, 1); err != nil {
		t.Fatal(err)
	}
	combined, err := hybrid.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Confusion.Recall() <= pure.Confusion.Recall() {
		t.Fatalf("hybrid recall %v should exceed pure DBCatcher %v on unit-wide outages",
			combined.Confusion.Recall(), pure.Confusion.Recall())
	}
	if combined.Confusion.Recall() < 0.5 {
		t.Fatalf("hybrid recall %v too low; fallback should catch outages", combined.Confusion.Recall())
	}
	// The hybrid keeps DBCatcher's efficiency (window ~20, not ~80).
	if combined.AvgWindowSize > 45 {
		t.Fatalf("hybrid window %v lost DBCatcher's efficiency", combined.AvgWindowSize)
	}
}

func TestHybridRequiresTraining(t *testing.T) {
	h := NewHybrid()
	if _, err := h.Evaluate(nil); err == nil {
		t.Fatal("Evaluate before Train should fail")
	}
	if h.Name() == "" {
		t.Fatal("empty name")
	}
}

// TestHybridKeepsSingleDBPerformance: on the paper's standard single-
// database anomalies, the hybrid must not be materially worse than pure
// DBCatcher (the OR can add fallback false positives, but recall only
// grows).
func TestHybridKeepsSingleDBPerformance(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Family: dataset.Sysbench, Units: 4, Ticks: 800, Seed: 9, AnomalyRatio: 0.06,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.5)
	if err != nil {
		t.Fatal(err)
	}
	catcher := baselines.NewDBCatcherMethod()
	if _, err := catcher.Train(train.Units, 2); err != nil {
		t.Fatal(err)
	}
	pure, err := catcher.Evaluate(test.Units)
	if err != nil {
		t.Fatal(err)
	}
	hybrid := NewHybrid()
	if _, err := hybrid.Train(train.Units, 2); err != nil {
		t.Fatal(err)
	}
	combined, err := hybrid.Evaluate(test.Units)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Confusion.Recall() < pure.Confusion.Recall()-1e-9 {
		t.Fatalf("OR-combination lowered recall: %v < %v",
			combined.Confusion.Recall(), pure.Confusion.Recall())
	}
}
