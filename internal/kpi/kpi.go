// Package kpi enumerates the 14 key performance indicators that exhibit the
// Unit KPI Correlation (UKPIC) phenomenon in the DBCatcher paper (Table II),
// together with their correlation type: P-R means the indicator correlates
// between the primary and its replicas, R-R between replicas.
package kpi

import "fmt"

// KPI identifies one of the monitored key performance indicators.
type KPI int

// The 14 indicators of Table II, in the paper's order.
const (
	ComInsert KPI = iota
	ComUpdate
	CPUUtilization
	BufferPoolReadRequests
	InnodbDataWrites
	InnodbDataWritten
	InnodbRowsDeleted
	InnodbRowsInserted
	InnodbRowsRead
	InnodbRowsUpdated
	RequestsPerSecond
	TotalRequests
	RealCapacity
	TransactionsPerSecond

	numKPIs
)

// Count is the number of monitored indicators (the paper's Q).
const Count = int(numKPIs)

// CorrType describes which database roles an indicator correlates across.
type CorrType int

const (
	// RR: the indicator correlates among replica databases only.
	RR CorrType = iota
	// PRRR: the indicator correlates both primary-replica and
	// replica-replica.
	PRRR
)

var names = [Count]string{
	"Com Insert",
	"Com Update",
	"CPU Utilization",
	"BufferPool Read Requests",
	"Innodb Data Writes",
	"Innodb Data Written",
	"Innodb Rows Deleted",
	"Innodb Rows Inserted",
	"Innodb Rows Read",
	"Innodb Rows Updated",
	"Requests Per Second",
	"Total Requests",
	"Real Capacity",
	"Transactions Per Second",
}

// corrTypes reproduces the Correlation Type column of Table II.
var corrTypes = [Count]CorrType{
	ComInsert:              RR,
	ComUpdate:              RR,
	CPUUtilization:         PRRR,
	BufferPoolReadRequests: PRRR,
	InnodbDataWrites:       PRRR,
	InnodbDataWritten:      PRRR,
	InnodbRowsDeleted:      RR,
	InnodbRowsInserted:     RR,
	InnodbRowsRead:         PRRR,
	InnodbRowsUpdated:      PRRR,
	RequestsPerSecond:      PRRR,
	TotalRequests:          PRRR,
	RealCapacity:           PRRR,
	TransactionsPerSecond:  RR,
}

// Valid reports whether k names one of the 14 indicators.
func (k KPI) Valid() bool { return k >= 0 && k < numKPIs }

// String returns the indicator's display name as printed in Table II.
func (k KPI) String() string {
	if !k.Valid() {
		return fmt.Sprintf("KPI(%d)", int(k))
	}
	return names[k]
}

// Correlation returns the indicator's correlation type from Table II.
func (k KPI) Correlation() CorrType {
	if !k.Valid() {
		panic(fmt.Sprintf("kpi: invalid KPI %d", int(k)))
	}
	return corrTypes[k]
}

// String renders the correlation type in the paper's notation.
func (c CorrType) String() string {
	switch c {
	case RR:
		return "R-R"
	case PRRR:
		return "P-R, R-R"
	default:
		return fmt.Sprintf("CorrType(%d)", int(c))
	}
}

// All returns every indicator in Table II order.
func All() []KPI {
	out := make([]KPI, Count)
	for i := range out {
		out[i] = KPI(i)
	}
	return out
}

// WriteKPIs lists the indicators driven by write traffic; they receive the
// unit's write demand in the simulator, the rest receive read demand or a
// blend.
func WriteKPIs() []KPI {
	return []KPI{ComInsert, ComUpdate, InnodbDataWrites, InnodbDataWritten,
		InnodbRowsDeleted, InnodbRowsInserted, InnodbRowsUpdated}
}
