package kpi

import "testing"

func TestCount(t *testing.T) {
	if Count != 14 {
		t.Fatalf("Count = %d, want 14 (Table II)", Count)
	}
	if len(All()) != 14 {
		t.Fatalf("All() has %d entries", len(All()))
	}
}

func TestNamesMatchTableII(t *testing.T) {
	want := map[KPI]string{
		ComInsert:              "Com Insert",
		CPUUtilization:         "CPU Utilization",
		RequestsPerSecond:      "Requests Per Second",
		RealCapacity:           "Real Capacity",
		TransactionsPerSecond:  "Transactions Per Second",
		BufferPoolReadRequests: "BufferPool Read Requests",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
}

func TestCorrelationTypes(t *testing.T) {
	// Spot-check Table II rows.
	rr := []KPI{ComInsert, ComUpdate, InnodbRowsDeleted, InnodbRowsInserted, TransactionsPerSecond}
	for _, k := range rr {
		if k.Correlation() != RR {
			t.Errorf("%v should be R-R", k)
		}
	}
	both := []KPI{CPUUtilization, BufferPoolReadRequests, InnodbDataWrites,
		InnodbDataWritten, InnodbRowsRead, InnodbRowsUpdated,
		RequestsPerSecond, TotalRequests, RealCapacity}
	for _, k := range both {
		if k.Correlation() != PRRR {
			t.Errorf("%v should be P-R, R-R", k)
		}
	}
}

func TestCorrTypeString(t *testing.T) {
	if RR.String() != "R-R" {
		t.Errorf("RR = %q", RR.String())
	}
	if PRRR.String() != "P-R, R-R" {
		t.Errorf("PRRR = %q", PRRR.String())
	}
}

func TestInvalidKPI(t *testing.T) {
	bad := KPI(99)
	if bad.Valid() {
		t.Fatal("KPI(99) should be invalid")
	}
	if bad.String() != "KPI(99)" {
		t.Fatalf("invalid String = %q", bad.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Correlation on invalid KPI should panic")
		}
	}()
	bad.Correlation()
}

func TestWriteKPIsAreValid(t *testing.T) {
	for _, k := range WriteKPIs() {
		if !k.Valid() {
			t.Errorf("invalid write KPI %d", int(k))
		}
	}
	if len(WriteKPIs()) != 7 {
		t.Fatalf("WriteKPIs len = %d", len(WriteKPIs()))
	}
}
