package scrape

import (
	"fmt"
	"math"
)

// Assembler transposes per-database scrape results into the monitor's
// sample[kpi][db] ingestion layout. Its backing storage is reused across
// rounds, so warm assembly is allocation-free — the scrape path adds no
// per-tick garbage on top of the zero-alloc correlation engine.
//
// Assembler is not safe for concurrent use; the scraper owns one and calls
// it after the round fan-out has joined.
type Assembler struct {
	kpis, dbs int
	rows      [][]float64
}

// NewAssembler allocates an assembler for a kpis × dbs unit.
func NewAssembler(kpis, dbs int) *Assembler {
	if kpis <= 0 || dbs <= 0 {
		panic("scrape: non-positive assembler shape")
	}
	a := &Assembler{kpis: kpis, dbs: dbs}
	a.rows = make([][]float64, kpis)
	for k := range a.rows {
		a.rows[k] = make([]float64, dbs)
	}
	return a
}

// Assemble builds the sample for one round. vecs must have one entry per
// database: vecs[d] is database d's KPI vector (length kpis), or nil when
// the target was missing, late, broken, or stale by the deadline — its
// column becomes NaN gaps for the degraded-ingestion path. The returned
// sample aliases the assembler's reusable storage; ingest it before the
// next call.
func (a *Assembler) Assemble(vecs [][]float64) ([][]float64, error) {
	if len(vecs) != a.dbs {
		return nil, fmt.Errorf("scrape: assemble got %d targets, want %d", len(vecs), a.dbs)
	}
	for d, vec := range vecs {
		if vec != nil && len(vec) != a.kpis {
			return nil, fmt.Errorf("scrape: target %d vector has %d KPIs, want %d", d, len(vec), a.kpis)
		}
	}
	for k := 0; k < a.kpis; k++ {
		row := a.rows[k]
		for d := 0; d < a.dbs; d++ {
			if vec := vecs[d]; vec != nil {
				row[d] = vec[k]
			} else {
				row[d] = math.NaN()
			}
		}
	}
	return a.rows, nil
}
