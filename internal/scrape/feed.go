package scrape

import (
	"fmt"
	"math"
	"sync"
)

// Feed is the bridge between a unit's collection source and its exporters:
// Publish installs the current tick's sample (in the collector's
// sample[kpi][db] layout, possibly nil or ragged), and each per-database
// exporter handler reads its column back out. A wholly-dropped tick is
// published as all-NaN so targets still advance their tick — the scraper
// sees fresh responses carrying no usable data, exactly what the
// in-process path records as a missed tick.
//
// Feed is safe for concurrent use: the publisher goroutine advances ticks
// while HTTP handlers serve scrapes.
type Feed struct {
	mu   sync.RWMutex
	kpis int
	dbs  int
	tick int         // last published tick, -1 before the first Publish
	cols [][]float64 // cols[d][k]: per-database KPI vectors
}

// NewFeed allocates a feed for a kpis × dbs unit.
func NewFeed(kpis, dbs int) *Feed {
	if kpis <= 0 || dbs <= 0 {
		panic("scrape: non-positive feed shape")
	}
	f := &Feed{kpis: kpis, dbs: dbs, tick: -1}
	f.cols = make([][]float64, dbs)
	for d := range f.cols {
		f.cols[d] = make([]float64, kpis)
	}
	return f
}

// Shape returns the feed's KPI and database counts.
func (f *Feed) Shape() (kpis, dbs int) { return f.kpis, f.dbs }

// Publish installs the sample for tick. The sample follows the collector's
// degraded delivery contract: nil means the whole tick was lost, missing or
// truncated rows lose their cells, NaN cells are lost points. Oversized
// samples are a pipeline bug and error.
func (f *Feed) Publish(tick int, sample [][]float64) error {
	if len(sample) > f.kpis {
		return fmt.Errorf("scrape: publish got %d KPI rows, want at most %d", len(sample), f.kpis)
	}
	for k, row := range sample {
		if len(row) > f.dbs {
			return fmt.Errorf("scrape: publish KPI %d row has %d databases, want at most %d", k, len(row), f.dbs)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for d := 0; d < f.dbs; d++ {
		col := f.cols[d]
		for k := 0; k < f.kpis; k++ {
			v := math.NaN()
			if k < len(sample) && d < len(sample[k]) {
				v = sample[k][d]
			}
			col[k] = v
		}
	}
	f.tick = tick
	return nil
}

// Read copies database db's current vector into dst (which must hold kpis
// values) and returns the published tick. ok is false before the first
// Publish.
func (f *Feed) Read(db int, dst []float64) (tick int, ok bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if db < 0 || db >= f.dbs || f.tick < 0 {
		return 0, false
	}
	copy(dst, f.cols[db])
	return f.tick, true
}
