package scrape

import (
	"math"
	"testing"
)

func TestPayloadRoundTrip(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1, -2.5, 3e-17, 1e300, -0.0},
		{math.NaN(), 42.42424242424242, math.NaN()},
		{0.1, 0.2, 0.30000000000000004, math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	for i, vals := range cases {
		in := Payload{Tick: 1234 + i, DB: i, Values: vals}
		body := appendPayload(nil, &in)
		var out Payload
		if err := parsePayload(body, &out); err != nil {
			t.Fatalf("case %d: parse: %v\nbody: %s", i, err, body)
		}
		if out.Tick != in.Tick || out.DB != in.DB || len(out.Values) != len(in.Values) {
			t.Fatalf("case %d: header mismatch: %+v vs %+v", i, out, in)
		}
		for j := range vals {
			a, b := vals[j], out.Values[j]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("case %d value %d: %v -> %v (not bit-exact)", i, j, a, b)
			}
		}
	}
}

func TestPayloadReusesValues(t *testing.T) {
	body := appendPayload(nil, &Payload{Tick: 1, DB: 0, Values: []float64{1, 2, 3}})
	p := Payload{Values: make([]float64, 0, 8)}
	backing := p.Values[:cap(p.Values)]
	if err := parsePayload(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != 3 || &p.Values[0] != &backing[0] {
		t.Fatal("parse did not reuse the values backing array")
	}
}

func TestPayloadRejectsGarbage(t *testing.T) {
	good := string(appendPayload(nil, &Payload{Tick: 7, DB: 2, Values: []float64{1, 2}}))
	bad := []string{
		"",
		"<<<this is not json at all>>>",
		`{"tick":7}`,
		`{"db":2,"tick":7,"values":[1,2]}`, // wrong field order for the strict parser
		`{"tick":7,"db":2,"values":[1,2]`,  // truncated
		`{"tick":7,"db":2,"values":[1,"x"]}`,
		`{"tick":7,"db":2,"values":[1,2]}trailing`,
		good[:len(good)/2],
	}
	var p Payload
	for _, b := range bad {
		if err := parsePayload([]byte(b), &p); err == nil {
			t.Errorf("parse accepted %q", b)
		}
	}
	// Whitespace variants of the canonical shape are fine.
	if err := parsePayload([]byte(" {\"tick\": 7 , \"db\": 2 , \"values\": [ 1 , null ] } \n"), &p); err != nil {
		t.Fatalf("whitespace variant rejected: %v", err)
	}
	if p.Tick != 7 || p.DB != 2 || len(p.Values) != 2 || !math.IsNaN(p.Values[1]) {
		t.Fatalf("whitespace variant parsed wrong: %+v", p)
	}
}
