// Package scrape turns the in-process collection path into a real network
// monitoring pipeline: every database in a unit becomes an HTTP scrape
// target serving its current-tick KPI vector as JSON (the exporter), and a
// per-round, deadline-driven fan-out (the scraper) collects whatever
// arrived in time, assembles a possibly-partial sample, and hands it to the
// monitor's degraded-ingestion path. Slow, dead, or garbage-emitting
// targets degrade the sample — never the detection loop: per-target retries
// back off exponentially, a circuit breaker stops hammering dead targets,
// and anything missing by the tick deadline becomes NaN gaps that the
// gap-tolerant judgment already knows how to absorb.
package scrape

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
)

// Payload is the wire format one scrape target serves: the exporter's
// current collection tick and the database's KPI vector in KPI-id order.
// Cells the collector lost are null on the wire and NaN in memory.
type Payload struct {
	Tick   int       `json:"tick"`
	DB     int       `json:"db"`
	Values []float64 `json:"values"`
}

// appendPayload renders p as JSON. Values round-trip exactly: floats are
// encoded with strconv's shortest round-trip form and NaN becomes null
// (encoding/json refuses NaN, and a lossy float encoding would break the
// scrape path's bit-identicality with in-process collection).
func appendPayload(b []byte, p *Payload) []byte {
	b = append(b, `{"tick":`...)
	b = strconv.AppendInt(b, int64(p.Tick), 10)
	b = append(b, `,"db":`...)
	b = strconv.AppendInt(b, int64(p.DB), 10)
	b = append(b, `,"values":[`...)
	for i, v := range p.Values {
		if i > 0 {
			b = append(b, ',')
		}
		if math.IsNaN(v) {
			b = append(b, `null`...)
		} else {
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
	}
	b = append(b, `]}`...)
	b = append(b, '\n')
	return b
}

// parsePayload decodes a scrape response body into p, reusing p.Values'
// backing storage. It is a strict hand-rolled parser for exactly the shape
// appendPayload emits (with arbitrary JSON whitespace): anything else —
// truncated bodies, garbage, wrong field types — errors rather than
// producing a half-filled vector.
func parsePayload(body []byte, p *Payload) error {
	d := &payloadParser{buf: body}
	if err := d.parse(p); err != nil {
		return err
	}
	d.skipSpace()
	if d.pos != len(d.buf) {
		return fmt.Errorf("scrape: trailing data after payload")
	}
	return nil
}

type payloadParser struct {
	buf []byte
	pos int
}

func (d *payloadParser) skipSpace() {
	for d.pos < len(d.buf) {
		switch d.buf[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

func (d *payloadParser) expect(c byte) error {
	d.skipSpace()
	if d.pos >= len(d.buf) || d.buf[d.pos] != c {
		return fmt.Errorf("scrape: malformed payload at byte %d (want %q)", d.pos, c)
	}
	d.pos++
	return nil
}

// literal consumes the exact bytes s (no whitespace inside).
func (d *payloadParser) literal(s string) error {
	if d.pos+len(s) > len(d.buf) || string(d.buf[d.pos:d.pos+len(s)]) != s {
		return fmt.Errorf("scrape: malformed payload at byte %d (want %s)", d.pos, s)
	}
	d.pos += len(s)
	return nil
}

// number consumes a JSON number and returns its float value.
func (d *payloadParser) number() (float64, error) {
	d.skipSpace()
	start := d.pos
	for d.pos < len(d.buf) {
		switch c := d.buf[d.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			d.pos++
		default:
			goto done
		}
	}
done:
	if d.pos == start {
		return 0, fmt.Errorf("scrape: malformed payload at byte %d (want number)", d.pos)
	}
	v, err := strconv.ParseFloat(string(d.buf[start:d.pos]), 64)
	if err != nil {
		return 0, fmt.Errorf("scrape: bad number %q in payload", d.buf[start:d.pos])
	}
	return v, nil
}

func (d *payloadParser) key(name string) error {
	if err := d.expect('"'); err != nil {
		return err
	}
	if err := d.literal(name); err != nil {
		return err
	}
	if err := d.literal(`"`); err != nil {
		return err
	}
	return d.expect(':')
}

func (d *payloadParser) parse(p *Payload) error {
	if err := d.expect('{'); err != nil {
		return err
	}
	if err := d.key("tick"); err != nil {
		return err
	}
	tick, err := d.number()
	if err != nil {
		return err
	}
	p.Tick = int(tick)
	if err := d.expect(','); err != nil {
		return err
	}
	if err := d.key("db"); err != nil {
		return err
	}
	db, err := d.number()
	if err != nil {
		return err
	}
	p.DB = int(db)
	if err := d.expect(','); err != nil {
		return err
	}
	if err := d.key("values"); err != nil {
		return err
	}
	if err := d.expect('['); err != nil {
		return err
	}
	p.Values = p.Values[:0]
	d.skipSpace()
	if d.pos < len(d.buf) && d.buf[d.pos] == ']' {
		d.pos++
		return d.expect('}')
	}
	for {
		d.skipSpace()
		if bytes.HasPrefix(d.buf[d.pos:], []byte("null")) {
			d.pos += 4
			p.Values = append(p.Values, math.NaN())
		} else {
			v, err := d.number()
			if err != nil {
				return err
			}
			p.Values = append(p.Values, v)
		}
		d.skipSpace()
		if d.pos >= len(d.buf) {
			return fmt.Errorf("scrape: truncated payload")
		}
		switch d.buf[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			return d.expect('}')
		default:
			return fmt.Errorf("scrape: malformed payload at byte %d", d.pos)
		}
	}
}
