package scrape

import (
	"fmt"
	"math"
	"strconv"
)

// Format selects a scrape target's wire exposition. The JSON payload is the
// bespoke in-house format; FormatProm is the Prometheus text exposition a
// real cloud exporter would serve. Both carry exactly the same information
// (tick, database id, KPI vector) and both parsers are strict: a healthy
// scrape decodes to bit-identical vectors regardless of format.
type Format int

const (
	// FormatJSON scrapes the bespoke JSON payload (the default).
	FormatJSON Format = iota
	// FormatProm scrapes the Prometheus text exposition.
	FormatProm
)

// String names the format (also the -scrape-format flag spelling).
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatProm:
		return "prom"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat parses a Format name.
func ParseFormat(s string) (Format, error) {
	for f := FormatJSON; f <= FormatProm; f++ {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("scrape: unknown scrape format %q", s)
}

// contentType is the response Content-Type the exporter serves for the
// format; accept is what the scraper asks for (content negotiation).
func (f Format) contentType() string {
	if f == FormatProm {
		return promContentType
	}
	return "application/json"
}

const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// AppendBody renders p in format f onto b (reusing b's backing storage) and
// returns the extended slice. The single dispatch point the exporter — and
// cmd/bench, which measures the wire paths from outside the package —
// renders through.
func AppendBody(b []byte, p *Payload, f Format) []byte {
	if f == FormatProm {
		return appendProm(b, p)
	}
	return appendPayload(b, p)
}

// ParseBody decodes body in format f into p, reusing p.Values' backing
// storage. Both formats apply the same strict reject-trailing-garbage
// discipline; a healthy body decodes to bit-identical vectors either way.
func ParseBody(body []byte, p *Payload, f Format) error {
	if f == FormatProm {
		return parseProm(body, p)
	}
	return parsePayload(body, p)
}

// accept is the Accept header the scraper sends to negotiate the format.
func (f Format) accept() string {
	if f == FormatProm {
		return "text/plain;version=0.0.4"
	}
	return "application/json"
}

// Prometheus series names of the exposition. Every KPI cell is one
// dbcatcher_kpi sample keyed by its KPI index, and dbcatcher_tick carries
// the exporter's collection tick so staleness detection works identically
// to the JSON path.
const (
	promTickSeries = "dbcatcher_tick"
	promKPISeries  = "dbcatcher_kpi"
)

// appendProm renders p as Prometheus text exposition. Floats use strconv's
// shortest round-trip form and NaN cells are emitted as the NaN literal —
// the exposition-format spelling of the JSON payload's null — so the prom
// path stays bit-identical to the JSON path.
func appendProm(b []byte, p *Payload) []byte {
	b = append(b, "# TYPE "+promTickSeries+" gauge\n"...)
	b = append(b, promTickSeries+`{db="`...)
	b = strconv.AppendInt(b, int64(p.DB), 10)
	b = append(b, `"} `...)
	b = strconv.AppendInt(b, int64(p.Tick), 10)
	b = append(b, '\n')
	b = append(b, "# TYPE "+promKPISeries+" gauge\n"...)
	for i, v := range p.Values {
		b = append(b, promKPISeries+`{db="`...)
		b = strconv.AppendInt(b, int64(p.DB), 10)
		b = append(b, `",kpi="`...)
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, `"} `...)
		if math.IsNaN(v) {
			b = append(b, `NaN`...)
		} else {
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
		b = append(b, '\n')
	}
	return b
}

// parseProm decodes a Prometheus text-exposition body into p, reusing
// p.Values' backing storage. It applies the same strict discipline as
// parsePayload: exactly one dbcatcher_tick sample, dbcatcher_kpi samples in
// strictly increasing kpi order starting at 0 (so duplicate, out-of-order,
// or missing series are rejected, not silently absorbed), one consistent db
// label, finite or NaN values only, and nothing else but comments and blank
// lines. Truncation mid-line, mid-label, or mid-number errors rather than
// yielding a half-filled vector.
func parseProm(body []byte, p *Payload) error {
	d := promParser{buf: body}
	return d.parse(p)
}

type promParser struct {
	buf []byte
	pos int
}

func (d *promParser) parse(p *Payload) error {
	p.Values = p.Values[:0]
	p.Tick, p.DB = 0, -1
	tickSeen := false
	for d.pos < len(d.buf) {
		c := d.buf[d.pos]
		switch {
		case c == '\n':
			d.pos++
		case c == '#':
			d.skipLine()
		default:
			if err := d.sample(p, &tickSeen); err != nil {
				return err
			}
		}
	}
	if !tickSeen {
		return fmt.Errorf("scrape: exposition missing %s series", promTickSeries)
	}
	if len(p.Values) == 0 {
		return fmt.Errorf("scrape: exposition carries no %s series", promKPISeries)
	}
	return nil
}

// skipLine consumes through the next newline (or EOF: a comment needs no
// terminator to be ignorable).
func (d *promParser) skipLine() {
	for d.pos < len(d.buf) && d.buf[d.pos] != '\n' {
		d.pos++
	}
	if d.pos < len(d.buf) {
		d.pos++
	}
}

// sample parses one metric line. The exposition grammar accepted is exactly
// what appendProm emits: name{labels} value\n with single spaces and no
// timestamps.
func (d *promParser) sample(p *Payload, tickSeen *bool) error {
	start := d.pos
	for d.pos < len(d.buf) && d.buf[d.pos] != '{' && d.buf[d.pos] != '\n' {
		d.pos++
	}
	if d.pos >= len(d.buf) || d.buf[d.pos] != '{' {
		return fmt.Errorf("scrape: malformed exposition at byte %d (metric without labels)", start)
	}
	name := d.buf[start:d.pos]
	d.pos++ // consume '{'
	switch string(name) {
	case promTickSeries:
		if *tickSeen {
			return fmt.Errorf("scrape: duplicate %s series", promTickSeries)
		}
		db, err := d.label("db")
		if err != nil {
			return err
		}
		if err := d.closeLabels(); err != nil {
			return err
		}
		if err := d.setDB(p, db); err != nil {
			return err
		}
		tick, err := d.intValue()
		if err != nil {
			return err
		}
		p.Tick = tick
		*tickSeen = true
		return nil
	case promKPISeries:
		db, err := d.label("db")
		if err != nil {
			return err
		}
		if d.pos >= len(d.buf) || d.buf[d.pos] != ',' {
			return fmt.Errorf("scrape: malformed exposition at byte %d (want kpi label)", d.pos)
		}
		d.pos++
		id, err := d.label("kpi")
		if err != nil {
			return err
		}
		if err := d.closeLabels(); err != nil {
			return err
		}
		if err := d.setDB(p, db); err != nil {
			return err
		}
		if id != len(p.Values) {
			return fmt.Errorf("scrape: duplicate, missing, or out-of-order %s series (kpi %d, want %d)",
				promKPISeries, id, len(p.Values))
		}
		v, err := d.floatValue()
		if err != nil {
			return err
		}
		p.Values = append(p.Values, v)
		return nil
	}
	return fmt.Errorf("scrape: unknown series %q in exposition", name)
}

// label consumes name="<digits>" and returns the integer label value.
func (d *promParser) label(name string) (int, error) {
	if d.pos+len(name)+2 > len(d.buf) ||
		string(d.buf[d.pos:d.pos+len(name)]) != name ||
		d.buf[d.pos+len(name)] != '=' || d.buf[d.pos+len(name)+1] != '"' {
		return 0, fmt.Errorf("scrape: malformed exposition at byte %d (want %s label)", d.pos, name)
	}
	d.pos += len(name) + 2
	return d.digits()
}

// closeLabels consumes `"} ` — the end of a label set and the single space
// before the value.
func (d *promParser) closeLabels() error {
	if d.pos+2 > len(d.buf) || d.buf[d.pos] != '}' || d.buf[d.pos+1] != ' ' {
		return fmt.Errorf("scrape: malformed exposition at byte %d (want \"} \")", d.pos)
	}
	d.pos += 2
	return nil
}

// digits consumes an unsigned decimal integer followed by a closing quote.
func (d *promParser) digits() (int, error) {
	start := d.pos
	n := 0
	for d.pos < len(d.buf) {
		c := d.buf[d.pos]
		if c < '0' || c > '9' {
			break
		}
		if n > (1<<53)/10 {
			return 0, fmt.Errorf("scrape: label value overflow at byte %d", start)
		}
		n = n*10 + int(c-'0')
		d.pos++
	}
	if d.pos == start {
		return 0, fmt.Errorf("scrape: malformed exposition at byte %d (want digits)", d.pos)
	}
	if d.pos >= len(d.buf) || d.buf[d.pos] != '"' {
		return 0, fmt.Errorf("scrape: malformed exposition at byte %d (unterminated label)", d.pos)
	}
	d.pos++
	return n, nil
}

// setDB pins the payload's database id from a sample's db label; every
// sample in one exposition must agree.
func (d *promParser) setDB(p *Payload, db int) error {
	if p.DB == -1 {
		p.DB = db
		return nil
	}
	if p.DB != db {
		return fmt.Errorf("scrape: exposition mixes databases %d and %d", p.DB, db)
	}
	return nil
}

// intValue consumes an unsigned integer value token and its newline.
func (d *promParser) intValue() (int, error) {
	start := d.pos
	n := 0
	for d.pos < len(d.buf) && d.buf[d.pos] != '\n' {
		c := d.buf[d.pos]
		if c < '0' || c > '9' || n > (1<<53)/10 {
			return 0, fmt.Errorf("scrape: bad tick value at byte %d", start)
		}
		n = n*10 + int(c-'0')
		d.pos++
	}
	if d.pos == start {
		return 0, fmt.Errorf("scrape: truncated exposition (missing tick value)")
	}
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("scrape: truncated exposition (sample without newline)")
	}
	d.pos++ // consume '\n'
	return n, nil
}

// floatValue consumes a float value token and its newline. NaN is a legal
// gap marker (the exposition spelling of the JSON payload's null); ±Inf and
// anything strconv rejects are errors.
func (d *promParser) floatValue() (float64, error) {
	start := d.pos
	for d.pos < len(d.buf) && d.buf[d.pos] != '\n' {
		d.pos++
	}
	if d.pos == start {
		return 0, fmt.Errorf("scrape: truncated exposition (missing value)")
	}
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("scrape: truncated exposition (sample without newline)")
	}
	tok := d.buf[start:d.pos]
	d.pos++ // consume '\n'
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, fmt.Errorf("scrape: bad value %q in exposition", tok)
	}
	if math.IsInf(v, 0) {
		return 0, fmt.Errorf("scrape: non-finite value %q in exposition", tok)
	}
	return v, nil
}
