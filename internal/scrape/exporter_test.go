package scrape

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newExporterServer(t *testing.T, kpis, dbs int) (*Feed, *Exporter, *httptest.Server) {
	t.Helper()
	feed := NewFeed(kpis, dbs)
	exp := NewExporter(feed)
	ts := httptest.NewServer(exp.Handler())
	t.Cleanup(ts.Close)
	return feed, exp, ts
}

func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func TestExporterServesPublishedTick(t *testing.T) {
	feed, _, ts := newExporterServer(t, 3, 2)

	// Before the first publish: 503.
	resp, _, err := get(t, ts.URL+"/db/0/kpis")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish = %v, %v", resp.StatusCode, err)
	}

	sample := [][]float64{{1, 2}, {3, 4}, {5, math.NaN()}}
	if err := feed.Publish(9, sample); err != nil {
		t.Fatal(err)
	}
	for db, want := range [][]float64{{1, 3, 5}, {2, 4, math.NaN()}} {
		resp, body, err := get(t, ts.URL+"/db/"+string(rune('0'+db))+"/kpis")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("db %d: %v, %v", db, resp.StatusCode, err)
		}
		var p Payload
		if err := parsePayload(body, &p); err != nil {
			t.Fatalf("db %d: %v", db, err)
		}
		if p.Tick != 9 || p.DB != db || len(p.Values) != 3 {
			t.Fatalf("db %d payload = %+v", db, p)
		}
		for k, v := range want {
			if math.IsNaN(v) != math.IsNaN(p.Values[k]) || (!math.IsNaN(v) && v != p.Values[k]) {
				t.Fatalf("db %d kpi %d = %v, want %v", db, k, p.Values[k], v)
			}
		}
	}

	// Unknown database: 404.
	resp, _, _ = get(t, ts.URL+"/db/7/kpis")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown db = %d", resp.StatusCode)
	}
}

func TestExporterPublishShapes(t *testing.T) {
	feed := NewFeed(2, 3)
	// nil sample (wholly-dropped tick): all NaN, tick advances.
	if err := feed.Publish(4, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	tick, ok := feed.Read(1, dst)
	if !ok || tick != 4 || !math.IsNaN(dst[0]) || !math.IsNaN(dst[1]) {
		t.Fatalf("dropped tick read = %d %v %v", tick, ok, dst)
	}
	// Truncated rows lose trailing cells only.
	if err := feed.Publish(5, [][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if tick, ok = feed.Read(2, dst); !ok || tick != 5 || !math.IsNaN(dst[0]) {
		t.Fatalf("truncated row read = %d %v %v", tick, ok, dst)
	}
	if _, ok = feed.Read(0, dst); !ok || dst[0] != 1 || !math.IsNaN(dst[1]) {
		t.Fatalf("partial KPI read = %v", dst)
	}
	// Oversized samples are pipeline bugs.
	if err := feed.Publish(6, [][]float64{{1, 2, 3, 4}}); err == nil {
		t.Fatal("oversized row accepted")
	}
	if err := feed.Publish(6, [][]float64{{1}, {1}, {1}}); err == nil {
		t.Fatal("excess KPI rows accepted")
	}
}

func TestExporterFaults(t *testing.T) {
	feed, exp, ts := newExporterServer(t, 2, 1)
	if err := feed.Publish(1, [][]float64{{10}, {20}}); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/db/0/kpis"

	// 5xx.
	if err := exp.SetFault(0, Fault{Mode: Fault5xx}); err != nil {
		t.Fatal(err)
	}
	resp, _, err := get(t, url)
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("5xx fault = %v, %v", resp, err)
	}

	// Garbage: 200 but unparseable.
	exp.SetFault(0, Fault{Mode: FaultGarbage})
	resp, body, err := get(t, url)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage fault = %v, %v", resp, err)
	}
	var p Payload
	if err := parsePayload(body, &p); err == nil {
		t.Fatal("garbage body parsed")
	}

	// Truncate: client sees a broken body.
	exp.SetFault(0, Fault{Mode: FaultTruncate})
	if _, body, err = get(t, url); err == nil {
		if err2 := parsePayload(body, &p); err2 == nil {
			t.Fatal("truncated body parsed cleanly")
		}
	}

	// Drop: transport-level error, no response.
	exp.SetFault(0, Fault{Mode: FaultDrop})
	if resp, _, err := get(t, url); err == nil && resp.StatusCode == http.StatusOK {
		t.Fatal("dropped connection produced a 200")
	}

	// Flap: alternate success / 500.
	exp.SetFault(0, Fault{Mode: FaultFlap})
	codes := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		resp, _, err := get(t, url)
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, resp.StatusCode)
	}
	ok5xx, ok200 := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusInternalServerError:
			ok5xx++
		}
	}
	if ok200 != 2 || ok5xx != 2 {
		t.Fatalf("flap codes = %v", codes)
	}

	// Count-bounded fault clears itself.
	exp.SetFault(0, Fault{Mode: Fault5xx, Count: 2})
	for i := 0; i < 2; i++ {
		if resp, _, _ := get(t, url); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("bounded fault request %d = %d", i, resp.StatusCode)
		}
	}
	if resp, _, _ := get(t, url); resp.StatusCode != http.StatusOK {
		t.Fatalf("fault did not clear after count: %d", resp.StatusCode)
	}

	// Stale: tick frozen at install time even as the feed advances.
	exp.SetFault(0, Fault{Mode: FaultStale})
	_, body, _ = get(t, url)
	if err := parsePayload(body, &p); err != nil || p.Tick != 1 {
		t.Fatalf("stale capture = %+v, %v", p, err)
	}
	feed.Publish(2, [][]float64{{11}, {21}})
	_, body, _ = get(t, url)
	if err := parsePayload(body, &p); err != nil || p.Tick != 1 || p.Values[0] != 10 {
		t.Fatalf("stale fault served fresh data: %+v, %v", p, err)
	}
	exp.SetFault(0, Fault{})
	_, body, _ = get(t, url)
	if err := parsePayload(body, &p); err != nil || p.Tick != 2 || p.Values[0] != 11 {
		t.Fatalf("cleared stale fault still frozen: %+v, %v", p, err)
	}

	if err := exp.SetFault(5, Fault{Mode: Fault5xx}); err == nil {
		t.Fatal("out-of-range fault target accepted")
	}
}

func TestParseFaultMode(t *testing.T) {
	for m := FaultNone; m <= FaultStale; m++ {
		got, err := ParseFaultMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseFaultMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseFaultMode("explode"); err == nil {
		t.Error("unknown mode accepted")
	}
	if !strings.Contains(FaultMode(99).String(), "99") {
		t.Error("out-of-range mode String")
	}
}
