package scrape

import (
	"math"
	"testing"
)

// FuzzPromParse feeds arbitrary bytes to the exposition parser: it must
// never panic, and anything it accepts must re-render and re-parse to the
// same payload bit for bit (the round-trip property the bit-identicality
// guarantee rests on).
func FuzzPromParse(f *testing.F) {
	healthy := appendProm(nil, &Payload{Tick: 3, DB: 1, Values: []float64{1.5, math.NaN(), -7e3}})
	f.Add(healthy)
	f.Add(healthy[:len(healthy)/2])                                    // mid-metric truncation
	f.Add(append(append([]byte{}, healthy...), healthy...))            // duplicate series
	f.Add([]byte("dbcatcher_tick{db=\"0\"} 1\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} +Inf\n"))
	f.Add([]byte("dbcatcher_tick{db=\"0\"} 1\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} NaN\n"))
	f.Add([]byte("# comment only\n"))
	f.Add(appendPayload(nil, &Payload{Tick: 3, DB: 1, Values: []float64{1, 2}}))
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > maxBodySize {
			return
		}
		var p Payload
		if err := parseProm(body, &p); err != nil {
			return
		}
		if p.DB < 0 || p.Tick < 0 || len(p.Values) == 0 {
			t.Fatalf("accepted payload out of range: %+v", p)
		}
		again := appendProm(nil, &p)
		var q Payload
		if err := parseProm(again, &q); err != nil {
			t.Fatalf("re-render does not re-parse: %v\n%s", err, again)
		}
		if q.Tick != p.Tick || q.DB != p.DB || len(q.Values) != len(p.Values) {
			t.Fatalf("round trip shape changed: %+v -> %+v", p, q)
		}
		for i := range p.Values {
			if math.Float64bits(q.Values[i]) != math.Float64bits(p.Values[i]) {
				t.Fatalf("value %d changed: %v -> %v", i, p.Values[i], q.Values[i])
			}
		}
	})
}
