package scrape

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testPipe wires feed → exporter → httptest server → scraper, with a
// per-database request counter so tests can assert how often a target was
// actually contacted.
type testPipe struct {
	feed *Feed
	exp  *Exporter
	ts   *httptest.Server
	s    *Scraper
	reqs []atomic.Int64
}

func newTestPipe(t *testing.T, kpis, dbs int, mod func(*Config)) *testPipe {
	t.Helper()
	p := &testPipe{feed: NewFeed(kpis, dbs), reqs: make([]atomic.Int64, dbs)}
	p.exp = NewExporter(p.feed)
	inner := p.exp.Handler()
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if parts := strings.Split(r.URL.Path, "/"); len(parts) == 4 && parts[1] == "db" {
			for d := 0; d < dbs; d++ {
				if parts[2] == string(rune('0'+d)) {
					p.reqs[d].Add(1)
				}
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(p.ts.Close)
	cfg := Config{
		Targets:           SelfTargets(p.ts.URL, dbs),
		KPIs:              kpis,
		RoundTimeout:      2 * time.Second,
		TryTimeout:        500 * time.Millisecond,
		MaxAttempts:       3,
		BackoffBase:       time.Millisecond,
		BackoffMax:        4 * time.Millisecond,
		BreakerFailures:   2,
		BreakerOpenRounds: 3,
		StaleRounds:       2,
		JitterSeed:        1,
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.s = s
	return p
}

func (p *testPipe) publish(t *testing.T, tick int, sample [][]float64) {
	t.Helper()
	if err := p.feed.Publish(tick, sample); err != nil {
		t.Fatal(err)
	}
}

func (p *testPipe) round(t *testing.T) ([][]float64, RoundReport) {
	t.Helper()
	sample, rep, err := p.s.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sample, rep
}

func sampleFor(kpis, dbs, tick int) [][]float64 {
	s := make([][]float64, kpis)
	for k := range s {
		s[k] = make([]float64, dbs)
		for d := range s[k] {
			s[k][d] = float64(tick*100+k*10+d) + 0.25
		}
	}
	return s
}

func sameCell(a, b float64) bool {
	return math.IsNaN(a) == math.IsNaN(b) && (math.IsNaN(a) || a == b)
}

func TestScraperHealthyRoundBitExact(t *testing.T) {
	p := newTestPipe(t, 3, 2, nil)
	want := [][]float64{{1.5, 2.5}, {-3e-9, 4e12}, {math.NaN(), 0.1}}
	p.publish(t, 0, want)
	got, rep := p.round(t)
	if rep.Arrived != 2 || rep.Missing != 0 || rep.Late {
		t.Fatalf("report = %+v", rep)
	}
	for k := range want {
		for d := range want[k] {
			if !sameCell(want[k][d], got[k][d]) {
				t.Fatalf("cell [%d][%d] = %v, want %v", k, d, got[k][d], want[k][d])
			}
		}
	}
	h := p.s.Health()
	if h.Rounds != 1 || h.CompleteRounds != 1 || h.Targets[0].Successes != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestScraperRetriesTransientFailure(t *testing.T) {
	p := newTestPipe(t, 2, 2, nil)
	p.publish(t, 0, sampleFor(2, 2, 0))
	// The first two requests to db 0 fail; the third attempt succeeds
	// inside the same round.
	if err := p.exp.SetFault(0, Fault{Mode: Fault5xx, Count: 2}); err != nil {
		t.Fatal(err)
	}
	got, rep := p.round(t)
	if rep.Arrived != 2 || rep.Missing != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if math.IsNaN(got[0][0]) {
		t.Fatal("retried target still missing")
	}
	h := p.s.Health()
	if h.Targets[0].Retries != 2 || h.Targets[0].Successes != 1 {
		t.Fatalf("target 0 health = %+v", h.Targets[0])
	}
	if h.Targets[0].ConsecutiveFailures != 0 {
		t.Fatal("in-round retry success must clear consecutive failures")
	}
}

func TestScraperGarbageIsFailure(t *testing.T) {
	p := newTestPipe(t, 2, 2, nil)
	p.publish(t, 0, sampleFor(2, 2, 0))
	p.exp.SetFault(1, Fault{Mode: FaultGarbage})
	got, rep := p.round(t)
	if rep.Arrived != 1 || rep.Missing != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !math.IsNaN(got[0][1]) || !math.IsNaN(got[1][1]) {
		t.Fatal("garbage target column not NaN")
	}
	if h := p.s.Health(); h.Targets[1].Failures != 1 || h.Targets[1].LastError == "" {
		t.Fatalf("target 1 health = %+v", h.Targets[1])
	}
}

// The full breaker lifecycle, round by round: closed → failures → open
// (skips, no requests on the wire) → half-open probe → re-open → probe
// succeeds → closed. Request counts prove the breaker stops hammering.
func TestScraperBreakerLifecycle(t *testing.T) {
	p := newTestPipe(t, 2, 2, nil)
	p.exp.SetFault(1, Fault{Mode: Fault5xx}) // permanent until cleared

	states := make([]string, 0, 10)
	for round := 0; round < 10; round++ {
		if round == 9 {
			p.exp.SetFault(1, Fault{}) // heal before the second probe
		}
		p.publish(t, round, sampleFor(2, 2, round))
		_, rep := p.round(t)
		if rep.Arrived < 1 {
			t.Fatalf("round %d: healthy target missing too: %+v", round, rep)
		}
		states = append(states, p.s.Health().Targets[1].Breaker)
	}
	// Rounds 0-1 fail closed (trip at the end of round 1), 2-4 skipped
	// open, 5 probes and fails (re-open), 6-8 skipped, 9 probes and heals.
	want := []string{"closed", "open", "open", "open", "open", "open", "open", "open", "open", "closed"}
	for i, w := range want {
		if states[i] != w {
			t.Fatalf("breaker after round %d = %q, want %q (all: %v)", i, states[i], w, states)
		}
	}
	h := p.s.Health().Targets[1]
	if h.BreakerTrips != 2 || h.Probes != 2 || h.SkippedRounds != 6 {
		t.Fatalf("breaker stats = %+v", h)
	}
	// Wire truth: 3 attempts in each of rounds 0-1, 1 probe in rounds 5
	// and 9 — 8 requests total instead of 10 rounds × 3 attempts.
	if got := p.reqs[1].Load(); got != 8 {
		t.Fatalf("dead target received %d requests, want 8", got)
	}
	// The healthy peer is untouched by its neighbour's breaker.
	if got := p.reqs[0].Load(); got != 10 {
		t.Fatalf("healthy target received %d requests, want 10", got)
	}
}

func TestScraperHangHitsDeadlineNotForever(t *testing.T) {
	p := newTestPipe(t, 2, 2, func(c *Config) {
		c.RoundTimeout = 300 * time.Millisecond
		c.TryTimeout = 50 * time.Millisecond
		c.MaxAttempts = 2
	})
	p.publish(t, 0, sampleFor(2, 2, 0))
	p.exp.SetFault(0, Fault{Mode: FaultHang})
	start := time.Now()
	got, rep := p.round(t)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hung target stalled the round for %v", d)
	}
	if rep.Arrived != 1 || rep.Missing != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !math.IsNaN(got[0][0]) || math.IsNaN(got[0][1]) {
		t.Fatal("hang column shape wrong")
	}
	if h := p.s.Health().Targets[0]; h.Timeouts < 1 {
		t.Fatalf("timeouts not counted: %+v", h)
	}
}

func TestScraperStaleTargetMarkedDown(t *testing.T) {
	p := newTestPipe(t, 2, 2, nil)
	p.publish(t, 0, sampleFor(2, 2, 0))
	p.round(t) // round 0: fresh, lastTick 0
	p.exp.SetFault(0, Fault{Mode: FaultStale})
	p.publish(t, 1, sampleFor(2, 2, 1))
	p.round(t) // round 1: captures tick 1, still fresh
	p.publish(t, 2, sampleFor(2, 2, 2))
	got, _ := p.round(t) // round 2: frozen at tick 1, tolerated once
	if math.IsNaN(got[0][0]) {
		t.Fatal("first stale round should still deliver (re-served values)")
	}
	if got[0][0] != sampleFor(2, 2, 1)[0][0] {
		t.Fatalf("stale round served %v, want tick-1 value", got[0][0])
	}
	p.publish(t, 3, sampleFor(2, 2, 3))
	got, rep := p.round(t) // round 3: stale beyond budget → marked down
	if !math.IsNaN(got[0][0]) || rep.Missing != 1 {
		t.Fatalf("stale target not marked down: %v %+v", got[0][0], rep)
	}
	h := p.s.Health().Targets[0]
	if h.StaleDrops != 1 || h.BreakerTrips != 0 {
		t.Fatalf("stale accounting = %+v (breaker must not trip on staleness)", h)
	}
	// Recovery: the tick advances again and the target comes back.
	p.exp.SetFault(0, Fault{})
	p.publish(t, 4, sampleFor(2, 2, 4))
	got, rep = p.round(t)
	if math.IsNaN(got[0][0]) || rep.Missing != 0 {
		t.Fatalf("recovered stale target still down: %+v", rep)
	}
}

func TestAssemblerShapesAndZeroAlloc(t *testing.T) {
	asm := NewAssembler(3, 2)
	vecs := [][]float64{{1, 2, 3}, nil}
	got, err := asm.Assemble(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 1 || got[2][0] != 3 || !math.IsNaN(got[0][1]) || !math.IsNaN(got[2][1]) {
		t.Fatalf("assembled = %v", got)
	}
	if _, err := asm.Assemble([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("wrong target count accepted")
	}
	if _, err := asm.Assemble([][]float64{{1}, {2}}); err == nil {
		t.Fatal("short vector accepted")
	}
	// The warm assembly path is allocation-free (the scrape analogue of
	// the zero-alloc KCD contract; asserted in BENCH_core.json too).
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := asm.Assemble(vecs); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Assemble allocates %v per op, want 0", allocs)
	}
}

func TestScraperConfigValidation(t *testing.T) {
	if _, err := New(Config{KPIs: 3}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := New(Config{Targets: []string{"http://x"}}); err == nil {
		t.Fatal("zero KPIs accepted")
	}
	if got := SelfTargets("http://h:1", 2); got[1] != "http://h:1/db/1/kpis" {
		t.Fatalf("SelfTargets = %v", got)
	}
}
