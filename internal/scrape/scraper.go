package scrape

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"dbcatcher/internal/mathx"
)

// BreakerState is a target's circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed: the target is scraped normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: recent rounds all failed; the target is skipped (its
	// column reads NaN) instead of being hammered with doomed requests.
	BreakerOpen
	// BreakerHalfOpen: the open interval elapsed; this round sends a
	// single no-retry probe. Success closes the breaker, failure re-opens.
	BreakerHalfOpen
)

// String names the state as surfaced in /api/status.
func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(b))
}

// Config tunes the scraper. Zero fields take the documented defaults.
type Config struct {
	// Targets maps database index to its scrape URL (see SelfTargets).
	Targets []string
	// KPIs is the expected vector length; shorter or longer payloads are
	// rejected as garbage.
	KPIs int

	// Format selects the wire exposition every target is scraped in
	// (default FormatJSON). The scraper negotiates it via the Accept
	// header and parses the response with the matching strict parser.
	Format Format
	// Formats optionally overrides the format per target; when non-nil it
	// must name one format per Targets entry.
	Formats []Format

	// RoundTimeout is the collection deadline per tick: whatever has not
	// arrived when it expires is assembled as NaN gaps. Default 2s.
	RoundTimeout time.Duration
	// TryTimeout bounds one HTTP attempt. Default RoundTimeout/4.
	TryTimeout time.Duration
	// MaxAttempts bounds attempts per target per round (first try plus
	// retries). Default 3.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential retry backoff;
	// each retry sleeps a jittered duration in [d/2, d) where d doubles
	// from BackoffBase up to BackoffMax. Defaults 10ms and 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed makes the backoff jitter deterministic for tests.
	JitterSeed uint64
	// Concurrency bounds the fan-out (default: all targets at once, capped
	// at 16).
	Concurrency int

	// BreakerFailures is the consecutive failed rounds after which a
	// target's breaker opens. Default 3.
	BreakerFailures int
	// BreakerOpenRounds is how many rounds an open breaker skips before
	// sending its half-open probe. Default 5.
	BreakerOpenRounds int
	// StaleRounds is the consecutive rounds a target may re-serve the same
	// tick before it is considered down and its column marked NaN (feeding
	// the monitor's auto-deactivation budget). Default 3.
	StaleRounds int

	// Client overrides the HTTP client (tests inject transports). The
	// default client disables keep-alive pooling limits suitable for a
	// handful of loopback targets.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 2 * time.Second
	}
	if c.TryTimeout <= 0 {
		c.TryTimeout = c.RoundTimeout / 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.Concurrency <= 0 {
		c.Concurrency = len(c.Targets)
		if c.Concurrency > 16 {
			c.Concurrency = 16
		}
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerOpenRounds <= 0 {
		c.BreakerOpenRounds = 5
	}
	if c.StaleRounds <= 0 {
		c.StaleRounds = 3
	}
	return c
}

// SelfTargets builds the target list for an exporter serving a dbs-wide
// unit at base (e.g. "http://127.0.0.1:9101").
func SelfTargets(base string, dbs int) []string {
	out := make([]string, dbs)
	for d := range out {
		out[d] = fmt.Sprintf("%s/db/%d/kpis", base, d)
	}
	return out
}

// maxBodySize caps a scrape response; anything larger is garbage.
const maxBodySize = 1 << 20

// action is a target's role in one round, decided by the breaker.
type action int

const (
	actScrape action = iota // closed: full attempt budget
	actProbe                // half-open: one attempt, no retries
	actSkip                 // open: no request at all
)

// targetState is one scrape target's breaker position, staleness tracking,
// cumulative stats, and per-round scratch. Long-lived fields are guarded by
// the scraper mutex; scratch fields are owned by the target's round
// goroutine.
type targetState struct {
	url    string
	db     int
	format Format

	state       BreakerState
	consecFails int
	openUntil   int // first round index allowed to probe
	lastTick    int
	staleStreak int

	scrapes, successes, failures int
	retries, timeouts            int
	trips, probes, skips         int
	staleDrops                   int
	lastErr                      string

	// Round scratch (goroutine-owned while a round is in flight).
	rng     *mathx.RNG
	payload Payload
	body    []byte
	vec     []float64
	res     fetchResult
}

// fetchResult carries one round's outcome from a target goroutine back to
// the apply phase.
type fetchResult struct {
	ok       bool
	tick     int
	retries  int
	timeouts int
	err      string
}

// RoundReport summarizes one collection round.
type RoundReport struct {
	// Round is the zero-based round index.
	Round int
	// Arrived counts targets that delivered a usable fresh-enough vector.
	Arrived int
	// Missing counts NaN columns (failures, breaker skips, stale drops).
	Missing int
	// Skipped counts breaker-open targets that were not contacted at all.
	Skipped int
	// Late reports that the round deadline expired before every target
	// resolved.
	Late bool
}

// TargetHealth is one target's externally visible scrape state.
type TargetHealth struct {
	URL                 string `json:"url"`
	DB                  int    `json:"db"`
	Format              string `json:"format"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	Scrapes             int    `json:"scrapes"`
	Successes           int    `json:"successes"`
	Failures            int    `json:"failures"`
	Retries             int    `json:"retries"`
	Timeouts            int    `json:"timeouts"`
	BreakerTrips        int    `json:"breakerTrips"`
	Probes              int    `json:"probes"`
	SkippedRounds       int    `json:"skippedRounds"`
	StaleDrops          int    `json:"staleDrops"`
	LastTick            int    `json:"lastTick"`
	LastError           string `json:"lastError,omitempty"`
}

// Health is the scraper's externally visible state, embedded as the
// "scrape" block of /api/status.
type Health struct {
	Rounds         int            `json:"rounds"`
	CompleteRounds int            `json:"completeRounds"`
	PartialRounds  int            `json:"partialRounds"`
	LateRounds     int            `json:"lateRounds"`
	Targets        []TargetHealth `json:"targets"`
}

// Scraper is the per-round, deadline-driven KPI collection fan-out. One
// goroutine calls Round per tick; Health may be called concurrently from
// serving handlers.
type Scraper struct {
	cfg    Config
	client *http.Client

	mu      sync.Mutex
	targets []*targetState
	rounds  int
	late    int
	partial int
	full    int

	asm  *Assembler
	vecs [][]float64
	acts []action
	sem  chan struct{}
}

// New validates the config and builds a scraper.
func New(cfg Config) (*Scraper, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("scrape: no targets")
	}
	if cfg.KPIs <= 0 {
		return nil, fmt.Errorf("scrape: non-positive KPI count %d", cfg.KPIs)
	}
	if cfg.Format < FormatJSON || cfg.Format > FormatProm {
		return nil, fmt.Errorf("scrape: invalid format %d", int(cfg.Format))
	}
	if cfg.Formats != nil && len(cfg.Formats) != len(cfg.Targets) {
		return nil, fmt.Errorf("scrape: %d per-target formats for %d targets",
			len(cfg.Formats), len(cfg.Targets))
	}
	for _, f := range cfg.Formats {
		if f < FormatJSON || f > FormatProm {
			return nil, fmt.Errorf("scrape: invalid format %d", int(f))
		}
	}
	cfg = cfg.withDefaults()
	s := &Scraper{cfg: cfg, client: cfg.Client}
	if s.client == nil {
		s.client = &http.Client{}
	}
	root := mathx.NewRNG(cfg.JitterSeed).Split(0x5c4a)
	s.targets = make([]*targetState, len(cfg.Targets))
	for d, url := range cfg.Targets {
		format := cfg.Format
		if cfg.Formats != nil {
			format = cfg.Formats[d]
		}
		s.targets[d] = &targetState{
			url:      url,
			db:       d,
			format:   format,
			lastTick: -1,
			rng:      root.Split(uint64(d)),
			vec:      make([]float64, cfg.KPIs),
		}
	}
	s.asm = NewAssembler(cfg.KPIs, len(cfg.Targets))
	s.vecs = make([][]float64, len(cfg.Targets))
	s.acts = make([]action, len(cfg.Targets))
	s.sem = make(chan struct{}, cfg.Concurrency)
	return s, nil
}

// Targets returns the configured target count (the unit's database count).
func (s *Scraper) Targets() int { return len(s.targets) }

// Round runs one collection round: fan out over every target under the
// round deadline, retry transient failures with backoff, honor the
// per-target breakers, and assemble whatever arrived into the monitor's
// sample[kpi][db] layout (missing targets as NaN columns). The returned
// sample aliases reusable storage; ingest it before the next Round.
//
// Round never fails on collection problems — they degrade the sample. The
// error is non-nil only for context cancellation of the parent ctx.
func (s *Scraper) Round(ctx context.Context) ([][]float64, RoundReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, RoundReport{}, err
	}
	s.mu.Lock()
	round := s.rounds
	for i, t := range s.targets {
		switch t.state {
		case BreakerOpen:
			if round >= t.openUntil {
				t.state = BreakerHalfOpen
				s.acts[i] = actProbe
			} else {
				s.acts[i] = actSkip
			}
		case BreakerHalfOpen:
			s.acts[i] = actProbe
		default:
			s.acts[i] = actScrape
		}
	}
	s.mu.Unlock()

	rctx, cancel := context.WithTimeout(ctx, s.cfg.RoundTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i, t := range s.targets {
		if s.acts[i] == actSkip {
			t.res = fetchResult{}
			continue
		}
		wg.Add(1)
		go func(t *targetState, probe bool) {
			defer wg.Done()
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
			attempts := s.cfg.MaxAttempts
			if probe {
				attempts = 1
			}
			t.res = s.scrapeTarget(rctx, t, attempts)
		}(t, s.acts[i] == actProbe)
	}
	wg.Wait()
	late := rctx.Err() != nil

	rep := RoundReport{Round: round, Late: late}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, t := range s.targets {
		if s.acts[i] == actSkip {
			t.skips++
			s.vecs[i] = nil
			rep.Skipped++
			rep.Missing++
			continue
		}
		s.vecs[i] = s.applyResult(t, round, s.acts[i] == actProbe)
		if s.vecs[i] == nil {
			rep.Missing++
		} else {
			rep.Arrived++
		}
	}
	s.rounds++
	if late {
		s.late++
	}
	if rep.Missing == 0 {
		s.full++
	} else {
		s.partial++
	}
	sample, err := s.asm.Assemble(s.vecs)
	if err != nil {
		return nil, rep, err
	}
	return sample, rep, nil
}

// applyResult folds one target's round outcome into its breaker, staleness,
// and stats (caller holds the scraper mutex), returning the vector to
// assemble (nil = NaN column).
func (s *Scraper) applyResult(t *targetState, round int, probe bool) []float64 {
	r := &t.res
	t.scrapes++
	t.retries += r.retries
	t.timeouts += r.timeouts
	if probe {
		t.probes++
	}
	if !r.ok {
		t.failures++
		t.consecFails++
		t.lastErr = r.err
		if probe || (t.state == BreakerClosed && t.consecFails >= s.cfg.BreakerFailures) {
			if t.state != BreakerOpen {
				t.trips++
			}
			t.state = BreakerOpen
			t.openUntil = round + 1 + s.cfg.BreakerOpenRounds
		}
		return nil
	}
	t.successes++
	t.consecFails = 0
	t.lastErr = ""
	t.state = BreakerClosed
	if r.tick == t.lastTick {
		// The target answers but its clock is frozen. Re-served values are
		// tolerated briefly (a slow publisher), then the target is treated
		// as down so the gap budget can bench its database.
		t.staleStreak++
		if t.staleStreak >= s.cfg.StaleRounds {
			t.staleDrops++
			return nil
		}
	} else {
		t.lastTick = r.tick
		t.staleStreak = 0
	}
	return t.vec
}

// scrapeTarget runs one target's attempt loop for a round. It touches only
// the target's goroutine-owned scratch.
func (s *Scraper) scrapeTarget(ctx context.Context, t *targetState, attempts int) fetchResult {
	var res fetchResult
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if !s.backoff(ctx, t, attempt) {
				return res // round deadline consumed the retry budget
			}
			res.retries++
		}
		err := s.fetch(ctx, t)
		if err == nil {
			res.ok = true
			res.tick = t.payload.Tick
			res.err = ""
			return res
		}
		if isTimeout(err) {
			res.timeouts++
		}
		res.err = err.Error()
		if ctx.Err() != nil {
			return res
		}
	}
	return res
}

// backoff sleeps the jittered exponential delay for the given retry
// attempt; false means the round deadline expired first.
func (s *Scraper) backoff(ctx context.Context, t *targetState, attempt int) bool {
	d := s.cfg.BackoffBase << (attempt - 1)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	half := d / 2
	d = half + time.Duration(t.rng.Float64()*float64(half))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// fetch performs one HTTP attempt and decodes the payload into t.payload /
// t.vec.
func (s *Scraper) fetch(ctx context.Context, t *targetState) error {
	tctx, cancel := context.WithTimeout(ctx, s.cfg.TryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, t.url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", t.format.accept())
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodySize))
		return fmt.Errorf("scrape: %s returned status %d", t.url, resp.StatusCode)
	}
	t.body, err = appendReadAll(t.body[:0], io.LimitReader(resp.Body, maxBodySize))
	if err != nil {
		return fmt.Errorf("scrape: reading %s: %w", t.url, err)
	}
	if err = ParseBody(t.body, &t.payload, t.format); err != nil {
		return err
	}
	if t.payload.DB != t.db {
		return fmt.Errorf("scrape: %s identifies as db %d, want %d", t.url, t.payload.DB, t.db)
	}
	if len(t.payload.Values) != s.cfg.KPIs {
		return fmt.Errorf("scrape: %s served %d KPIs, want %d", t.url, len(t.payload.Values), s.cfg.KPIs)
	}
	copy(t.vec, t.payload.Values)
	return nil
}

// Health snapshots the scraper's state for /api/status.
func (s *Scraper) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Rounds:         s.rounds,
		CompleteRounds: s.full,
		PartialRounds:  s.partial,
		LateRounds:     s.late,
		Targets:        make([]TargetHealth, len(s.targets)),
	}
	for i, t := range s.targets {
		h.Targets[i] = TargetHealth{
			URL:                 t.url,
			DB:                  t.db,
			Format:              t.format.String(),
			Breaker:             t.state.String(),
			ConsecutiveFailures: t.consecFails,
			Scrapes:             t.scrapes,
			Successes:           t.successes,
			Failures:            t.failures,
			Retries:             t.retries,
			Timeouts:            t.timeouts,
			BreakerTrips:        t.trips,
			Probes:              t.probes,
			SkippedRounds:       t.skips,
			StaleDrops:          t.staleDrops,
			LastTick:            t.lastTick,
			LastError:           t.lastErr,
		}
	}
	return h
}

// isTimeout classifies an attempt error as deadline-driven.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne interface{ Timeout() bool }
	return errors.As(err, &ne) && ne.Timeout()
}

// appendReadAll reads r to EOF into b's spare capacity, growing as needed —
// io.ReadAll without the fresh allocation per call.
func appendReadAll(b []byte, r io.Reader) ([]byte, error) {
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}
