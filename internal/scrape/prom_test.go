package scrape

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/workload"
)

func TestFormatRoundTrip(t *testing.T) {
	for f := FormatJSON; f <= FormatProm; f++ {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFormat("protobuf"); err == nil {
		t.Fatal("ParseFormat accepted an unknown format")
	}
}

// The exposition must round-trip every vector bit for bit, including NaN
// gaps, subnormals, and extreme exponents — the same bar the JSON payload
// meets.
func TestPromRoundTrip(t *testing.T) {
	in := Payload{Tick: 42, DB: 3, Values: []float64{
		1.5, -3e-9, 4e12, math.NaN(), 0, -0.0, math.SmallestNonzeroFloat64,
		math.MaxFloat64, 0.1, 1.0 / 3.0,
	}}
	body := appendProm(nil, &in)
	var out Payload
	if err := parseProm(body, &out); err != nil {
		t.Fatalf("parseProm: %v\nbody:\n%s", err, body)
	}
	if out.Tick != in.Tick || out.DB != in.DB || len(out.Values) != len(in.Values) {
		t.Fatalf("round trip shape: got %+v", out)
	}
	for i := range in.Values {
		if math.Float64bits(out.Values[i]) != math.Float64bits(in.Values[i]) {
			t.Fatalf("value %d: %v -> %v", i, in.Values[i], out.Values[i])
		}
	}
}

// Comments and blank lines are the only non-sample content the parser
// tolerates.
func TestPromParseSkipsComments(t *testing.T) {
	body := "# HELP dbcatcher_kpi a kpi\n\n" +
		"dbcatcher_tick{db=\"1\"} 7\n" +
		"# trailing comment without newline\n" +
		"dbcatcher_kpi{db=\"1\",kpi=\"0\"} 2.5\n" +
		"# unterminated comment"
	var p Payload
	if err := parseProm([]byte(body), &p); err != nil {
		t.Fatalf("parseProm: %v", err)
	}
	if p.Tick != 7 || p.DB != 1 || len(p.Values) != 1 || p.Values[0] != 2.5 {
		t.Fatalf("parsed %+v", p)
	}
}

// The malformed-exposition corpus: every entry must be rejected loudly —
// no panics, no silently absorbed garbage.
func TestPromParseRejectsCorpus(t *testing.T) {
	valid := string(appendProm(nil, &Payload{Tick: 3, DB: 0, Values: []float64{1, 2}}))
	cases := map[string]string{
		"empty":            "",
		"comments only":    "# nothing here\n",
		"garbage":          "<<<this is not a payload at all>>>",
		"missing tick":     `dbcatcher_kpi{db="0",kpi="0"} 1` + "\n",
		"no kpi series":    `dbcatcher_tick{db="0"} 3` + "\n",
		"duplicate tick":   valid + `dbcatcher_tick{db="0"} 4` + "\n",
		"duplicate series": valid + `dbcatcher_kpi{db="0",kpi="1"} 9` + "\n",
		"out of order":     "dbcatcher_tick{db=\"0\"} 3\ndbcatcher_kpi{db=\"0\",kpi=\"1\"} 1\n",
		"mixed databases":  "dbcatcher_tick{db=\"0\"} 3\ndbcatcher_kpi{db=\"1\",kpi=\"0\"} 1\n",
		"unknown series":   valid + `node_load1{db="0"} 0.5` + "\n",
		"bare metric":      "dbcatcher_tick 3\n",
		"positive inf":     "dbcatcher_tick{db=\"0\"} 3\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} +Inf\n",
		"negative inf":     "dbcatcher_tick{db=\"0\"} 3\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} -Inf\n",
		"word inf":         "dbcatcher_tick{db=\"0\"} 3\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} Inf\n",
		"bad number":       "dbcatcher_tick{db=\"0\"} 3\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} 1..5\n",
		"timestamp":        "dbcatcher_tick{db=\"0\"} 3\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} 1 1700000000\n",
		"float tick":       "dbcatcher_tick{db=\"0\"} 3.5\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} 1\n",
		"negative db":      "dbcatcher_tick{db=\"-1\"} 3\ndbcatcher_kpi{db=\"-1\",kpi=\"0\"} 1\n",
		"label overflow":   "dbcatcher_tick{db=\"99999999999999999999\"} 3\n",
		"unquoted label":   "dbcatcher_tick{db=0} 3\n",
		"missing newline":  strings.TrimSuffix(valid, "\n"),
		"crlf":             "dbcatcher_tick{db=\"0\"} 3\r\ndbcatcher_kpi{db=\"0\",kpi=\"0\"} 1\r\n",
		"json body":        string(appendPayload(nil, &Payload{Tick: 3, DB: 0, Values: []float64{1, 2}})),
		"oversized":        valid + strings.Repeat("x", maxBodySize),
	}
	for name, body := range cases {
		var p Payload
		if err := parseProm([]byte(body), &p); err == nil {
			t.Errorf("%s: parseProm accepted %q", name, body)
		}
	}
}

// Mid-metric truncation: no proper prefix of a healthy exposition may parse
// to the full vector — a cut body is either rejected outright or comes up
// short and is then rejected by the scraper's KPI-count check.
func TestPromParseTruncation(t *testing.T) {
	full := appendProm(nil, &Payload{Tick: 9, DB: 2, Values: []float64{1.25, math.NaN(), -7e3}})
	var ref Payload
	if err := parseProm(full, &ref); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		var p Payload
		if err := parseProm(full[:cut], &p); err == nil && len(p.Values) >= len(ref.Values) {
			t.Fatalf("prefix of %d/%d bytes parsed to a full vector", cut, len(full))
		}
	}
}

// The Prometheus path is held to the same acceptance bar as the JSON path:
// on a healthy feed, scraping the exposition format must yield verdicts
// bit-identical to both the JSON scrape path and the in-process collector.
func TestScrapePromBitIdenticalToJSON(t *testing.T) {
	const ticks = 240
	u := simulateUnit(t, ticks, 29)
	want := runInProcess(t, u)

	dbs := u.Series.Databases
	for f := FormatJSON; f <= FormatProm; f++ {
		p := newTestPipe(t, u.Series.KPIs, dbs, func(cfg *Config) { cfg.Format = f })
		judge := newChaosOnline(t, dbs)
		c, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		var got []*monitor.Verdict
		for tick := 0; ; tick++ {
			sample, ok := c.Next()
			if !ok {
				break
			}
			p.publish(t, tick, sample)
			assembled, rep := p.round(t)
			if rep.Missing != 0 || rep.Skipped != 0 || rep.Late {
				t.Fatalf("%v tick %d: healthy round incomplete: %+v", f, tick, rep)
			}
			v, err := judge.Push(assembled)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				got = append(got, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%v emitted %d verdicts, in-process %d", f, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%v verdict %d differs:\ngot:  %+v\nwant: %+v", f, i, got[i], want[i])
			}
		}
	}
}

// Satellite regression: a target that switches exposition format mid-flight
// must degrade (NaN column) without wedging the round, and must recover the
// moment it speaks the negotiated format again. Exercised in both
// directions.
func TestScraperFormatSwitchDegradesTarget(t *testing.T) {
	for f := FormatJSON; f <= FormatProm; f++ {
		p := newTestPipe(t, 3, 2, func(cfg *Config) {
			cfg.Format = f
			// Keep the breaker out of the way: this test watches the
			// parse-reject path, not breaker hysteresis.
			cfg.BreakerFailures = 5
		})
		for tick := 0; tick < 2; tick++ {
			p.publish(t, tick, sampleFor(3, 2, tick))
			_, rep := p.round(t)
			if rep.Missing != 0 {
				t.Fatalf("%v tick %d: healthy round missing %d", f, tick, rep.Missing)
			}
		}
		// db 1 flips to the other exposition format until cleared (a
		// bounded Count would be burned by in-round retries).
		if err := p.exp.SetFault(1, Fault{Mode: FaultFormatFlip}); err != nil {
			t.Fatal(err)
		}
		for tick := 2; tick < 4; tick++ {
			p.publish(t, tick, sampleFor(3, 2, tick))
			sample, rep := p.round(t)
			if rep.Late {
				t.Fatalf("%v tick %d: format switch wedged the round", f, tick)
			}
			if rep.Arrived != 1 || rep.Missing != 1 {
				t.Fatalf("%v tick %d: report %+v, want 1 arrived 1 missing", f, tick, rep)
			}
			for k := range sample {
				if !math.IsNaN(sample[k][1]) {
					t.Fatalf("%v tick %d: flipped target's column not NaN", f, tick)
				}
				if math.IsNaN(sample[k][0]) {
					t.Fatalf("%v tick %d: healthy target's column is NaN", f, tick)
				}
			}
		}
		// Fault cleared: the target recovers in place.
		if err := p.exp.SetFault(1, Fault{}); err != nil {
			t.Fatal(err)
		}
		p.publish(t, 4, sampleFor(3, 2, 4))
		_, rep := p.round(t)
		if rep.Arrived != 2 || rep.Missing != 0 {
			t.Fatalf("%v recovery report %+v", f, rep)
		}
		h := p.s.Health()
		if h.Targets[1].Failures == 0 || h.Targets[1].LastError != "" {
			t.Fatalf("%v target health %+v", f, h.Targets[1])
		}
	}
}

// The exporter answers each request in its negotiated format, so mixed
// fleets (some targets JSON, some Prometheus) scrape one exporter
// concurrently.
func TestScraperPerTargetFormats(t *testing.T) {
	p := newTestPipe(t, 2, 2, func(cfg *Config) {
		cfg.Formats = []Format{FormatJSON, FormatProm}
	})
	want := sampleFor(2, 2, 0)
	p.publish(t, 0, want)
	got, rep := p.round(t)
	if rep.Arrived != 2 || rep.Missing != 0 {
		t.Fatalf("report %+v", rep)
	}
	for k := range want {
		for d := range want[k] {
			if !sameCell(want[k][d], got[k][d]) {
				t.Fatalf("cell [%d][%d] = %v, want %v", k, d, got[k][d], want[k][d])
			}
		}
	}
	h := p.s.Health()
	if h.Targets[0].Format != "json" || h.Targets[1].Format != "prom" {
		t.Fatalf("health formats %q, %q", h.Targets[0].Format, h.Targets[1].Format)
	}
}

// A stale fault installed under one format must serve the frozen sample in
// whatever format each request negotiates (the freeze captures values, not
// rendered bytes), and the staleness mark-down must fire identically.
func TestPromStaleFault(t *testing.T) {
	p := newTestPipe(t, 2, 2, func(cfg *Config) { cfg.Format = FormatProm })
	p.publish(t, 0, sampleFor(2, 2, 0))
	if _, rep := p.round(t); rep.Missing != 0 {
		t.Fatalf("healthy round missing %d", rep.Missing)
	}
	if err := p.exp.SetFault(1, Fault{Mode: FaultStale}); err != nil {
		t.Fatal(err)
	}
	// StaleRounds is 2 in the test config: the first frozen re-serve is
	// tolerated, the second is dropped.
	sawDrop := false
	for tick := 1; tick <= 3; tick++ {
		p.publish(t, tick, sampleFor(2, 2, tick))
		_, rep := p.round(t)
		if rep.Late {
			t.Fatalf("tick %d: stale fault wedged the round", tick)
		}
		if rep.Missing > 0 {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Fatal("stale prom target was never marked down")
	}
	if h := p.s.Health(); h.Targets[1].StaleDrops == 0 {
		t.Fatalf("target health %+v", h.Targets[1])
	}
}

func TestScraperConfigRejectsBadFormats(t *testing.T) {
	base := Config{Targets: []string{"http://a", "http://b"}, KPIs: 2}
	bad := base
	bad.Format = Format(7)
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted an invalid Format")
	}
	bad = base
	bad.Formats = []Format{FormatProm}
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted a short Formats list")
	}
	bad = base
	bad.Formats = []Format{FormatProm, Format(-1)}
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted an invalid per-target format")
	}
}
