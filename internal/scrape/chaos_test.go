package scrape

import (
	"reflect"
	"testing"
	"time"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func newChaosOnline(t *testing.T, dbs int) *monitor.Online {
	t.Helper()
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Workers:    1,
	}, kpi.Count, dbs)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func simulateUnit(t *testing.T, ticks int, seed uint64) *cluster.Unit {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: ticks, Seed: seed, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// runInProcess is the reference pipeline: the collector feeds the judge
// directly, no network anywhere.
func runInProcess(t *testing.T, u *cluster.Unit) []*monitor.Verdict {
	t.Helper()
	o := newChaosOnline(t, u.Series.Databases)
	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []*monitor.Verdict
	for {
		sample, ok := c.Next()
		if !ok {
			break
		}
		v, err := o.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			verdicts = append(verdicts, v)
		}
	}
	return verdicts
}

// With healthy exporters, routing every sample through HTTP — encode,
// serve, scrape, parse, assemble — must yield verdicts bit-identical to
// the in-process collector. This is the acceptance bar for the scrape
// layer: the network is invisible when it behaves.
func TestScrapeModeBitIdenticalToInProcess(t *testing.T) {
	const ticks = 240
	u := simulateUnit(t, ticks, 29)
	want := runInProcess(t, u)

	dbs := u.Series.Databases
	p := newTestPipe(t, u.Series.KPIs, dbs, nil)
	judge := newChaosOnline(t, dbs)
	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	var got []*monitor.Verdict
	for tick := 0; ; tick++ {
		sample, ok := c.Next()
		if !ok {
			break
		}
		p.publish(t, tick, sample)
		assembled, rep := p.round(t)
		if rep.Missing != 0 || rep.Skipped != 0 || rep.Late {
			t.Fatalf("tick %d: healthy scrape round incomplete: %+v", tick, rep)
		}
		v, err := judge.Push(assembled)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			got = append(got, v)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("scrape mode emitted %d verdicts, in-process %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("verdict %d differs:\nscrape:     %+v\nin-process: %+v", i, got[i], want[i])
		}
	}
	if h := p.s.Health(); h.CompleteRounds != ticks {
		t.Fatalf("complete rounds = %d, want %d", h.CompleteRounds, ticks)
	}
}

// The chaos scenario from the issue: four of five exporters turn hostile
// at once — one hangs, one returns 500s, one serves truncated JSON, one
// flaps — while detection keeps running. Rounds must keep completing via
// the degraded path, breakers must bound the hammering of dead targets,
// and once the faults clear the verdict stream must re-converge with the
// in-process reference bit for bit.
func TestChaosRoundsSurviveFlakyExporters(t *testing.T) {
	const (
		ticks   = 400
		faultAt = 60
		clearAt = 140
	)
	u := simulateUnit(t, ticks, 31)
	want := runInProcess(t, u)

	dbs := u.Series.Databases // 5
	p := newTestPipe(t, u.Series.KPIs, dbs, func(c *Config) {
		c.RoundTimeout = time.Second
		c.TryTimeout = 100 * time.Millisecond
		c.MaxAttempts = 2
		c.BreakerFailures = 2
		c.BreakerOpenRounds = 5
		c.StaleRounds = 3
	})
	judge := newChaosOnline(t, dbs)
	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}

	var got []*monitor.Verdict
	var reqsAtFault, reqsAtClear [2]int64 // db1 (hang), db2 (5xx)
	for tick := 0; ; tick++ {
		switch tick {
		case faultAt:
			reqsAtFault = [2]int64{p.reqs[1].Load(), p.reqs[2].Load()}
			p.exp.SetFault(1, Fault{Mode: FaultHang})
			p.exp.SetFault(2, Fault{Mode: Fault5xx})
			p.exp.SetFault(3, Fault{Mode: FaultTruncate})
			p.exp.SetFault(4, Fault{Mode: FaultFlap})
		case clearAt:
			reqsAtClear = [2]int64{p.reqs[1].Load(), p.reqs[2].Load()}
			for db := 1; db <= 4; db++ {
				p.exp.SetFault(db, Fault{})
			}
		}
		sample, ok := c.Next()
		if !ok {
			break
		}
		p.publish(t, tick, sample)
		assembled, rep := p.round(t)
		// The flap target always recovers within the round's retry
		// budget, and db0 never faults, so even the worst rounds keep at
		// least two live columns — detection is never starved.
		if rep.Arrived < 2 {
			t.Fatalf("tick %d: only %d targets arrived: %+v", tick, rep.Arrived, rep)
		}
		// Outside the fault window (with slack for breaker probe cycles
		// to close), every round is complete again.
		if (tick < faultAt || tick >= clearAt+30) && rep.Arrived != dbs {
			t.Fatalf("tick %d: round incomplete outside fault window: %+v", tick, rep)
		}
		v, err := judge.Push(assembled)
		if err != nil {
			t.Fatalf("tick %d: push: %v", tick, err)
		}
		if v != nil {
			got = append(got, v)
		}
	}

	// No round was ever lost: every one of the 400 ticks was ingested.
	if n := judge.Processor().Ticks(); n != ticks {
		t.Fatalf("judge ingested %d ticks, want %d", n, ticks)
	}
	h := p.s.Health()
	if h.Rounds != ticks {
		t.Fatalf("scraper ran %d rounds, want %d", h.Rounds, ticks)
	}

	// Breaker behaviour per scripted target.
	hang, fivexx, trunc, flap := h.Targets[1], h.Targets[2], h.Targets[3], h.Targets[4]
	if hang.Timeouts < 2 || hang.BreakerTrips < 1 || hang.Probes < 3 || hang.SkippedRounds < 20 {
		t.Fatalf("hang target stats = %+v", hang)
	}
	if fivexx.BreakerTrips < 1 || fivexx.SkippedRounds < 20 {
		t.Fatalf("5xx target stats = %+v", fivexx)
	}
	if trunc.BreakerTrips < 1 || trunc.SkippedRounds < 20 {
		t.Fatalf("truncate target stats = %+v", trunc)
	}
	// The flapping target never fails twice in a row, so its breaker must
	// never trip — it survives on in-round retries alone.
	if flap.BreakerTrips != 0 || flap.Retries < 10 {
		t.Fatalf("flap target stats = %+v", flap)
	}
	for db, th := range h.Targets {
		if th.Breaker != "closed" {
			t.Fatalf("db %d breaker still %q after recovery", db, th.Breaker)
		}
	}
	// Bounded hammering: during the 80 dead rounds the breaker held the
	// hang and 5xx targets to a handful of probe requests instead of
	// rounds × attempts.
	for i, name := range []string{"hang", "5xx"} {
		faultSpan := reqsAtClear[i] - reqsAtFault[i]
		if faultSpan > 30 {
			t.Fatalf("%s target got %d requests across %d dead rounds — breaker not bounding retries", name, faultSpan, clearAt-faultAt)
		}
	}

	// The judge self-healed: the three fully-dead databases were benched
	// by the gap budget and came back after the recover streak.
	mh := judge.Health()
	if mh.Deactivations < 3 || mh.Reactivations < 3 {
		t.Fatalf("monitor health = %+v", mh)
	}
	if mh.DegradedVerdicts == 0 || mh.GapCells == 0 {
		t.Fatalf("no degraded accounting despite chaos: %+v", mh)
	}
	degraded := 0
	for _, v := range got {
		if v.Health == detect.HealthDegraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded verdicts during the fault window")
	}

	// Tail re-convergence: once faults stop and the recover streak has
	// elapsed, verdicts over clean windows are bit-identical to the
	// in-process reference. Compare by window start — both streams tile
	// the same 20-tick grid.
	wantByStart := make(map[int]*monitor.Verdict, len(want))
	for _, v := range want {
		wantByStart[v.Start] = v
	}
	const tailStart = 240
	matched := 0
	for _, v := range got {
		if v.Start < tailStart {
			continue
		}
		ref, ok := wantByStart[v.Start]
		if !ok {
			t.Fatalf("chaos tail verdict start %d missing from reference", v.Start)
		}
		if !reflect.DeepEqual(v, ref) {
			t.Fatalf("tail verdict at start %d differs:\nchaos:     %+v\nreference: %+v", v.Start, v, ref)
		}
		matched++
	}
	if matched < 3 {
		t.Fatalf("only %d tail verdicts matched the reference (want >= 3)", matched)
	}
}
