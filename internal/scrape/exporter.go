package scrape

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// FaultMode is an injectable exporter-side failure, the scrape layer's
// equivalent of workload.FaultPlan: where the fault plan models what the
// collection agents lose, FaultMode models how a scrape target misbehaves
// on the wire.
type FaultMode int

const (
	// FaultNone serves normally.
	FaultNone FaultMode = iota
	// FaultHang never responds; the request parks until the client gives
	// up (exercises per-try timeouts and the round deadline).
	FaultHang
	// Fault5xx answers 500 Internal Server Error.
	Fault5xx
	// FaultTruncate sends a 200 with the first half of the body and stops
	// (exercises the strict payload parsers).
	FaultTruncate
	// FaultGarbage sends a 200 whose body is neither payload format.
	FaultGarbage
	// FaultDrop severs the TCP connection mid-response without a status
	// line (exercises transport-level error handling).
	FaultDrop
	// FaultFlap alternates: every other request succeeds, the rest 500
	// (exercises breaker hysteresis — consecutive-failure counting must
	// not trip on an intermittent target).
	FaultFlap
	// FaultStale serves tick and values frozen at the moment the fault was
	// installed (exercises staleness detection and mark-down).
	FaultStale
	// FaultFormatFlip serves a well-formed response in the *other*
	// exposition format than the one negotiated — a target that switched
	// format mid-flight (exercises the parsers' refusal to silently accept
	// the wrong format: the column degrades, the round never wedges).
	FaultFormatFlip
)

// String names the mode (also the -scrape-fault flag spelling).
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultHang:
		return "hang"
	case Fault5xx:
		return "5xx"
	case FaultTruncate:
		return "truncate"
	case FaultGarbage:
		return "garbage"
	case FaultDrop:
		return "drop"
	case FaultFlap:
		return "flap"
	case FaultStale:
		return "stale"
	case FaultFormatFlip:
		return "format-flip"
	}
	return fmt.Sprintf("FaultMode(%d)", int(m))
}

// ParseFaultMode parses a FaultMode name.
func ParseFaultMode(s string) (FaultMode, error) {
	for m := FaultNone; m <= FaultFormatFlip; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("scrape: unknown fault mode %q", s)
}

// Fault scripts one target's misbehaviour. Count bounds how many requests
// it affects (0 = until cleared).
type Fault struct {
	Mode  FaultMode
	Count int
}

// targetFault is one database's live fault state.
type targetFault struct {
	fault    Fault
	affected int // requests hit so far by the current fault
	requests int // total requests served (drives FaultFlap parity)
	// frozenTick/frozenVals hold the sample captured when a FaultStale was
	// installed; freezing values rather than rendered bytes lets a stale
	// target answer in whichever format each request negotiates.
	frozenTick int
	frozenVals []float64
	// stalePending requests capture of the next healthy sample.
	stalePending bool
}

// Exporter serves a unit's per-database KPI vectors over HTTP: GET
// /db/{db}/kpis returns the database's current-tick sample as the bespoke
// JSON payload or, when the request's Accept header asks for text/plain, as
// Prometheus text exposition. Faults are injectable per target so tests and
// demos can script the full set of real-world scrape failures.
type Exporter struct {
	feed *Feed

	mu     sync.Mutex
	faults []targetFault
	bufs   [][]byte    // per-db response build buffers, reused
	vecs   [][]float64 // per-db Read scratch
}

// NewExporter builds the exporter over a feed.
func NewExporter(feed *Feed) *Exporter {
	kpis, dbs := feed.Shape()
	e := &Exporter{feed: feed}
	e.faults = make([]targetFault, dbs)
	e.bufs = make([][]byte, dbs)
	e.vecs = make([][]float64, dbs)
	for d := range e.vecs {
		e.vecs[d] = make([]float64, kpis)
	}
	return e
}

// SetFault installs (or with Fault{} clears) database db's scripted fault.
func (e *Exporter) SetFault(db int, f Fault) error {
	_, dbs := e.feed.Shape()
	if db < 0 || db >= dbs {
		return fmt.Errorf("scrape: fault targets database %d of %d", db, dbs)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.faults[db] = targetFault{fault: f, stalePending: f.Mode == FaultStale}
	return nil
}

// Handler returns the exporter's routes: one scrape target per database at
// /db/{db}/kpis, plus /healthz.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	mux.HandleFunc("GET /db/{db}/kpis", e.handleKPIs)
	return mux
}

// formatFor resolves a scrape request's negotiated format: asking for
// text/plain (the Prometheus exposition content type) selects FormatProm,
// anything else the JSON payload.
func formatFor(r *http.Request) Format {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		return FormatProm
	}
	return FormatJSON
}

func (e *Exporter) handleKPIs(w http.ResponseWriter, r *http.Request) {
	_, dbs := e.feed.Shape()
	db, err := strconv.Atoi(r.PathValue("db"))
	if err != nil || db < 0 || db >= dbs {
		http.Error(w, "unknown database", http.StatusNotFound)
		return
	}

	e.mu.Lock()
	body, served, mode := e.renderLocked(db, formatFor(r))
	e.mu.Unlock()

	switch mode {
	case FaultHang:
		// Park until the scraper abandons the request; never write.
		<-r.Context().Done()
		return
	case Fault5xx:
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	case FaultGarbage:
		w.Header().Set("Content-Type", served.contentType())
		_, _ = w.Write([]byte("<<<this is not a payload at all>>>"))
		return
	case FaultTruncate:
		w.Header().Set("Content-Type", served.contentType())
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write(body[:len(body)/2])
		// Returning without the rest aborts the response mid-body: the
		// declared Content-Length makes the client see an unexpected EOF.
		panic(http.ErrAbortHandler)
	case FaultDrop:
		panic(http.ErrAbortHandler) // severs the connection, no response
	}

	if body == nil {
		http.Error(w, "no sample published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", served.contentType())
	_, _ = w.Write(body)
}

// renderLocked resolves db's fault for this request and, when the request
// should carry data, renders the response body in the served format. A nil
// body with FaultNone means no tick has been published yet.
func (e *Exporter) renderLocked(db int, f Format) (body []byte, served Format, mode FaultMode) {
	tf := &e.faults[db]
	tf.requests++
	mode = tf.fault.Mode
	if mode != FaultNone {
		tf.affected++
		if tf.fault.Count > 0 && tf.affected > tf.fault.Count {
			*tf = targetFault{requests: tf.requests}
			mode = FaultNone
		}
	}
	if mode == FaultFlap {
		if tf.requests%2 == 1 {
			mode = FaultNone
		} else {
			return nil, f, Fault5xx
		}
	}
	if mode == FaultFormatFlip {
		if f == FormatJSON {
			f = FormatProm
		} else {
			f = FormatJSON
		}
		mode = FaultNone
	}

	tick, ok := e.feed.Read(db, e.vecs[db])
	if !ok {
		return nil, f, mode
	}
	vals := e.vecs[db]
	if mode == FaultStale {
		if tf.stalePending {
			tf.frozenTick = tick
			tf.frozenVals = append(tf.frozenVals[:0], vals...)
			tf.stalePending = false
		}
		tick, vals = tf.frozenTick, tf.frozenVals
		mode = FaultNone
	}
	p := Payload{Tick: tick, DB: db, Values: vals}
	e.bufs[db] = AppendBody(e.bufs[db][:0], &p, f)

	switch mode {
	case FaultNone, FaultTruncate:
		// The handler writes after the lock drops, so it must not hold a
		// buffer a concurrent render could rewrite: copy out.
		return append([]byte(nil), e.bufs[db]...), f, mode
	default:
		return nil, f, mode
	}
}
