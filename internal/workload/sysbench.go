package workload

import (
	"math"

	"dbcatcher/internal/mathx"
)

// SysbenchParams is one cell of the Table IV Sysbench parameter space.
type SysbenchParams struct {
	Tables  int     // 5-20
	Threads int     // 4-64
	Items   int     // rows per table (100000 in the paper)
	Minutes float64 // segment duration, 0.5-1
}

// sysbench models the oltp_read_write benchmark: throughput scales with
// threads (with diminishing returns past the core count), and the demand
// is piecewise-stationary across parameter segments. The irregular variant
// resamples segments uniformly from the Table IV "Sysbench I" grid; the
// periodic variant cycles threads through 4-8-16-32 ("Sysbench II").
type sysbench struct {
	rng      *mathx.RNG
	periodic bool

	segTicks   int // remaining ticks in the current segment
	cur        SysbenchParams
	cycleIdx   int
	perThread  float64 // requests/s contributed per thread at low load
	saturation float64 // thread count where scaling flattens
	writeFrac  float64
	ramp       float64 // 0..1 ramp progress entering a new segment
	prevRate   float64
	noiseStd   float64
}

// sysbenchIICycle is the fixed thread schedule of Sysbench II in Table IV.
var sysbenchIICycle = []int{4, 8, 16, 32}

func newSysbench(rng *mathx.RNG, periodic bool) *sysbench {
	g := &sysbench{
		rng:        rng,
		periodic:   periodic,
		perThread:  rng.Range(60, 120),
		saturation: rng.Range(24, 48),
		writeFrac:  0.25, // oltp_read_write is ~25% writes
		noiseStd:   0.04,
	}
	g.nextSegment()
	g.prevRate = g.rate()
	return g
}

func (g *sysbench) Name() string {
	if g.periodic {
		return "sysbench-periodic"
	}
	return "sysbench-irregular"
}

// nextSegment draws the next parameter cell.
func (g *sysbench) nextSegment() {
	if g.periodic {
		// Sysbench II: tables=10, threads cycle 4-8-16-32, time=0.5 min.
		g.cur = SysbenchParams{
			Tables:  10,
			Threads: sysbenchIICycle[g.cycleIdx%len(sysbenchIICycle)],
			Items:   100000,
			Minutes: 0.5,
		}
		g.cycleIdx++
	} else {
		// Sysbench I: tables 5-20, threads 4-64, time 0.5-1 min.
		g.cur = SysbenchParams{
			Tables:  5 + g.rng.Intn(16),
			Threads: 4 + g.rng.Intn(61),
			Items:   100000,
			Minutes: g.rng.Range(0.5, 1),
		}
	}
	g.segTicks = int(g.cur.Minutes * 60 / 5)
	if g.segTicks < 1 {
		g.segTicks = 1
	}
	g.ramp = 0
}

// rate returns the stationary throughput for the current parameters:
// thread scaling with saturation, slightly reduced by table count (more
// tables -> more cache misses).
func (g *sysbench) rate() float64 {
	th := float64(g.cur.Threads)
	scaling := g.saturation * (1 - math.Exp(-th/g.saturation))
	tableFactor := 1 - 0.005*float64(g.cur.Tables)
	return g.perThread * scaling * tableFactor
}

func (g *sysbench) Next() Demand {
	if g.segTicks <= 0 {
		g.prevRate = g.rate()
		g.nextSegment()
	}
	g.segTicks--
	target := g.rate()
	// Short linear ramp between segments so the series has trends rather
	// than pure steps.
	if g.ramp < 1 {
		g.ramp += 0.34
		if g.ramp > 1 {
			g.ramp = 1
		}
	}
	rate := g.prevRate + (target-g.prevRate)*g.ramp
	rate *= 1 + g.rng.NormMeanStd(0, g.noiseStd)
	if rate < 0 {
		rate = 0
	}
	return Demand{Read: rate * (1 - g.writeFrac), Write: rate * g.writeFrac}
}
