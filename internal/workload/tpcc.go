package workload

import (
	"math"

	"dbcatcher/internal/mathx"
)

// TPCCParams is one cell of the Table IV TPC-C parameter space.
type TPCCParams struct {
	Warehouses int     // 5-20
	Threads    int     // 4-24
	WarmupMin  float64 // 0.5-1
	Minutes    float64 // 0.5-1
}

// tpcc models a TPC-C-style run: a warmup ramp into a plateau per segment,
// ~2/3 of traffic being writes (new-order + payment + delivery dominate
// the mix), and throughput scaling with threads bounded by warehouse
// contention. The irregular variant sweeps the "TPCC I" grid; the periodic
// variant cycles threads 4-8-16-24 ("TPCC II").
type tpcc struct {
	rng      *mathx.RNG
	periodic bool

	cur        TPCCParams
	cycleIdx   int
	warmupLeft int
	segLeft    int
	perThread  float64
	writeFrac  float64
	noiseStd   float64
}

// tpccIICycle is the fixed thread schedule of TPCC II in Table IV.
var tpccIICycle = []int{4, 8, 16, 24}

func newTPCC(rng *mathx.RNG, periodic bool) *tpcc {
	g := &tpcc{
		rng:       rng,
		periodic:  periodic,
		perThread: rng.Range(30, 70),
		// New-order (45%) and payment (43%) are write-heavy; stock-level
		// and order-status are reads. Net write fraction ~0.65.
		writeFrac: 0.65,
		noiseStd:  0.045,
	}
	g.nextSegment()
	return g
}

func (g *tpcc) Name() string {
	if g.periodic {
		return "tpcc-periodic"
	}
	return "tpcc-irregular"
}

func (g *tpcc) nextSegment() {
	if g.periodic {
		// TPCC II: warehouses=10, threads cycle, warmup 0.5, time 0.5.
		g.cur = TPCCParams{
			Warehouses: 10,
			Threads:    tpccIICycle[g.cycleIdx%len(tpccIICycle)],
			WarmupMin:  0.5,
			Minutes:    0.5,
		}
		g.cycleIdx++
	} else {
		// TPCC I: warehouses 5-20, threads 4-24, warmup 0.5-1, time 0.5-1.
		g.cur = TPCCParams{
			Warehouses: 5 + g.rng.Intn(16),
			Threads:    4 + g.rng.Intn(21),
			WarmupMin:  g.rng.Range(0.5, 1),
			Minutes:    g.rng.Range(0.5, 1),
		}
	}
	g.warmupLeft = int(g.cur.WarmupMin * 60 / 5)
	g.segLeft = int(g.cur.Minutes * 60 / 5)
	if g.segLeft < 1 {
		g.segLeft = 1
	}
}

// plateau is the steady-state rate for the current parameters. Threads
// beyond ~2x warehouses contend on warehouse rows and stop scaling.
func (g *tpcc) plateau() float64 {
	th := float64(g.cur.Threads)
	limit := 2 * float64(g.cur.Warehouses)
	eff := limit * (1 - math.Exp(-th/limit))
	return g.perThread * eff
}

func (g *tpcc) Next() Demand {
	if g.segLeft <= 0 {
		g.nextSegment()
	}
	rate := g.plateau()
	if g.warmupLeft > 0 {
		// Linear warmup ramp toward the plateau.
		total := g.cur.WarmupMin * 60 / 5
		progress := 1 - float64(g.warmupLeft)/total
		rate *= 0.3 + 0.7*progress
		g.warmupLeft--
	} else {
		g.segLeft--
	}
	rate *= 1 + g.rng.NormMeanStd(0, g.noiseStd)
	if rate < 0 {
		rate = 0
	}
	return Demand{Read: rate * (1 - g.writeFrac), Write: rate * g.writeFrac}
}
