package workload

import (
	"math"

	"dbcatcher/internal/mathx"
)

// tencent is the production-trace-like demand process. It sums four
// components:
//
//	base      — a constant baseline level,
//	diurnal   — sinusoidal periodicity (dominant in the periodic variant),
//	bursts    — Poisson-arriving flash crowds with exponential decay
//	            (dominant in the irregular variant; see paper Fig. 1),
//	drift     — a slowly mean-reverting AR(1) walk.
type tencent struct {
	rng      *mathx.RNG
	periodic bool

	t          int
	base       float64
	amp        float64 // diurnal amplitude
	period     float64 // diurnal period in ticks
	phase      float64
	burstRate  float64 // Poisson arrival probability per tick
	burstLevel float64 // current burst contribution
	burstDecay float64
	drift      float64
	driftPhi   float64
	driftStd   float64
	writeFrac  float64 // fraction of demand that is writes
	noiseStd   float64
}

func newTencent(rng *mathx.RNG, periodic bool) *tencent {
	g := &tencent{
		rng:        rng,
		periodic:   periodic,
		base:       rng.Range(800, 2000),
		period:     rng.Range(500, 900), // ~40-75 min at 5 s ticks
		phase:      rng.Range(0, 2*math.Pi),
		burstDecay: rng.Range(0.7, 0.92),
		driftPhi:   0.995,
		writeFrac:  rng.Range(0.15, 0.35),
	}
	if periodic {
		g.amp = g.base * rng.Range(0.5, 0.8)
		g.burstRate = 0.002
		g.driftStd = g.base * 0.002
		g.noiseStd = g.base * 0.05
	} else {
		g.amp = g.base * rng.Range(0.15, 0.35)
		g.burstRate = 0.04
		g.driftStd = g.base * 0.025
		g.noiseStd = g.base * 0.06
	}
	return g
}

func (g *tencent) Name() string {
	if g.periodic {
		return "tencent-periodic"
	}
	return "tencent-irregular"
}

func (g *tencent) Next() Demand {
	// Diurnal component.
	diurnal := g.amp * (1 + math.Sin(2*math.Pi*float64(g.t)/g.period+g.phase)) / 2

	// Flash-crowd bursts: a new burst arrives with probability burstRate
	// and raises demand by 0.5x-3x of base, decaying geometrically.
	if g.rng.Bool(g.burstRate) {
		g.burstLevel += g.base * g.rng.Range(0.5, 3)
	}
	g.burstLevel *= g.burstDecay

	// Mean-reverting drift.
	g.drift = g.driftPhi*g.drift + g.rng.NormMeanStd(0, g.driftStd)

	total := g.base + diurnal + g.burstLevel + g.drift + g.rng.NormMeanStd(0, g.noiseStd)
	if total < 0 {
		total = 0
	}
	g.t++
	return Demand{
		Read:  total * (1 - g.writeFrac),
		Write: total * g.writeFrac,
	}
}
