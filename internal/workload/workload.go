// Package workload models the demand processes that drive the cloud
// database unit simulator. A Generator produces, at every 5-second tick,
// the unit-level read and write demand (requests per second) that the load
// balancer then spreads across the databases of a unit.
//
// Three families mirror the paper's datasets (§IV-A):
//
//   - Tencent-like: a mixture of diurnal periodicity, bursty flash crowds,
//     and autoregressive drift, reproducing the "changes more frequently
//     and with greater magnitude" character of production traces.
//   - Sysbench-like: uniform OLTP point queries, parameterized by the
//     thread/table grid of Table IV.
//   - TPCC-like: the TPC-C transaction mix (heavier writes), with warmup
//     ramps, parameterized by the warehouse/thread grid of Table IV.
//
// Each family has an irregular variant (I) built from random parameter
// sweeps and a periodic variant (II) built from cyclic parameter schedules,
// matching how the paper constructs its irregular and periodic datasets.
package workload

import (
	"fmt"

	"dbcatcher/internal/mathx"
)

// Demand is the unit-level offered load during one tick.
type Demand struct {
	// Read is the read requests per second arriving at the unit.
	Read float64
	// Write is the write requests per second (all routed to the primary
	// and replicated to the others).
	Write float64
}

// Generator produces the demand sequence for one unit.
type Generator interface {
	// Next returns the demand for the next tick.
	Next() Demand
	// Name identifies the profile for logs and dataset metadata.
	Name() string
}

// Profile selects one of the six demand families of §IV-A.
type Profile int

const (
	// TencentIrregular mimics irregular production traces (Tencent I).
	TencentIrregular Profile = iota
	// TencentPeriodic mimics diurnal production traces (Tencent II).
	TencentPeriodic
	// SysbenchI is the irregular Sysbench sweep of Table IV.
	SysbenchI
	// SysbenchII is the periodic Sysbench schedule of Table IV.
	SysbenchII
	// TPCCI is the irregular TPC-C sweep of Table IV.
	TPCCI
	// TPCCII is the periodic TPC-C schedule of Table IV.
	TPCCII
)

// String returns the dataset-style name of the profile.
func (p Profile) String() string {
	switch p {
	case TencentIrregular:
		return "Tencent I"
	case TencentPeriodic:
		return "Tencent II"
	case SysbenchI:
		return "Sysbench I"
	case SysbenchII:
		return "Sysbench II"
	case TPCCI:
		return "TPCC I"
	case TPCCII:
		return "TPCC II"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// Periodic reports whether the profile belongs to the periodic (II) group.
func (p Profile) Periodic() bool {
	return p == TencentPeriodic || p == SysbenchII || p == TPCCII
}

// New returns a generator for the profile, seeded from rng.
func New(p Profile, rng *mathx.RNG) Generator {
	switch p {
	case TencentIrregular:
		return newTencent(rng, false)
	case TencentPeriodic:
		return newTencent(rng, true)
	case SysbenchI:
		return newSysbench(rng, false)
	case SysbenchII:
		return newSysbench(rng, true)
	case TPCCI:
		return newTPCC(rng, false)
	case TPCCII:
		return newTPCC(rng, true)
	default:
		panic(fmt.Sprintf("workload: unknown profile %d", int(p)))
	}
}

// DriftGenerator switches from one demand process to another at a fixed
// tick, modelling the user-driven workload drifts of §IV-C3 ("cloud
// database workloads are user-determined and can be changed at any time").
type DriftGenerator struct {
	// Before drives ticks [0, SwitchTick); After drives the rest.
	Before, After Generator
	// SwitchTick is the first tick served by After.
	SwitchTick int
	// BlendTicks linearly cross-fades the two demands around the switch
	// (0 = hard switch).
	BlendTicks int

	tick int
}

// Name implements Generator.
func (g *DriftGenerator) Name() string {
	return g.Before.Name() + "->" + g.After.Name()
}

// Next implements Generator.
func (g *DriftGenerator) Next() Demand {
	t := g.tick
	g.tick++
	switch {
	case t < g.SwitchTick-g.BlendTicks/2:
		return g.Before.Next()
	case t >= g.SwitchTick+g.BlendTicks/2 || g.BlendTicks == 0 && t >= g.SwitchTick:
		return g.After.Next()
	default:
		// Cross-fade: both processes advance; demand interpolates.
		a := g.Before.Next()
		b := g.After.Next()
		span := float64(g.BlendTicks)
		w := (float64(t) - (float64(g.SwitchTick) - span/2)) / span
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		return Demand{
			Read:  (1-w)*a.Read + w*b.Read,
			Write: (1-w)*a.Write + w*b.Write,
		}
	}
}
