package workload

import (
	"testing"

	"dbcatcher/internal/mathx"
)

func collect(g Generator, n int) (reads, writes []float64) {
	reads = make([]float64, n)
	writes = make([]float64, n)
	for i := 0; i < n; i++ {
		d := g.Next()
		reads[i] = d.Read
		writes[i] = d.Write
	}
	return
}

func TestAllProfilesProduceNonNegativeDemand(t *testing.T) {
	for _, p := range []Profile{TencentIrregular, TencentPeriodic, SysbenchI, SysbenchII, TPCCI, TPCCII} {
		g := New(p, mathx.NewRNG(1))
		reads, writes := collect(g, 2000)
		for i := range reads {
			if reads[i] < 0 || writes[i] < 0 {
				t.Fatalf("%v produced negative demand at tick %d", p, i)
			}
		}
		if mathx.Mean(reads) <= 0 {
			t.Fatalf("%v mean read demand is zero", p)
		}
		if mathx.Mean(writes) <= 0 {
			t.Fatalf("%v mean write demand is zero", p)
		}
	}
}

func TestProfileNames(t *testing.T) {
	want := map[Profile]string{
		TencentIrregular: "Tencent I",
		TencentPeriodic:  "Tencent II",
		SysbenchI:        "Sysbench I",
		SysbenchII:       "Sysbench II",
		TPCCI:            "TPCC I",
		TPCCII:           "TPCC II",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), name)
		}
	}
	if Profile(99).String() != "Profile(99)" {
		t.Error("unknown profile String")
	}
}

func TestPeriodicFlag(t *testing.T) {
	if TencentIrregular.Periodic() || SysbenchI.Periodic() || TPCCI.Periodic() {
		t.Error("I profiles must not be periodic")
	}
	if !TencentPeriodic.Periodic() || !SysbenchII.Periodic() || !TPCCII.Periodic() {
		t.Error("II profiles must be periodic")
	}
}

func TestNewPanicsOnUnknownProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Profile(42), mathx.NewRNG(1))
}

func TestDeterministicGivenSeed(t *testing.T) {
	for _, p := range []Profile{TencentIrregular, SysbenchII, TPCCI} {
		a := New(p, mathx.NewRNG(7))
		b := New(p, mathx.NewRNG(7))
		for i := 0; i < 500; i++ {
			da, db := a.Next(), b.Next()
			if da != db {
				t.Fatalf("%v not deterministic at tick %d: %v vs %v", p, i, da, db)
			}
		}
	}
}

func TestTencentPeriodicIsMorePeriodic(t *testing.T) {
	// The periodic variant must carry a much stronger periodic component:
	// compare the max autocorrelation in the plausible period band.
	per, _ := collect(New(TencentPeriodic, mathx.NewRNG(3)), 4000)
	irr, _ := collect(New(TencentIrregular, mathx.NewRNG(3)), 4000)
	peak := func(x []float64) float64 {
		ac := mathx.Autocorrelation(x, 1000)
		best := -1.0
		for lag := 300; lag <= 1000; lag++ {
			if ac[lag] > best {
				best = ac[lag]
			}
		}
		return best
	}
	pp, pi := peak(per), peak(irr)
	if pp < 0.5 {
		t.Fatalf("periodic profile autocorrelation peak = %v, want >= 0.5", pp)
	}
	if pp <= pi {
		t.Fatalf("periodic peak (%v) should exceed irregular peak (%v)", pp, pi)
	}
}

func TestSysbenchThreadScaling(t *testing.T) {
	// More threads must produce more demand (on average), verifying the
	// Table IV parameter has effect.
	rng := mathx.NewRNG(5)
	g := &sysbench{rng: rng, perThread: 100, saturation: 32, writeFrac: 0.25, noiseStd: 0}
	g.cur = SysbenchParams{Tables: 10, Threads: 4, Items: 100000, Minutes: 1}
	low := g.rate()
	g.cur.Threads = 32
	high := g.rate()
	if high <= low {
		t.Fatalf("rate(32 threads)=%v should exceed rate(4)=%v", high, low)
	}
	g.cur.Threads = 64
	higher := g.rate()
	if higher <= high {
		t.Fatal("rate should still grow toward saturation")
	}
	if (higher-high)/high > (high-low)/low {
		t.Fatal("scaling should show diminishing returns")
	}
}

func TestTPCCWriteHeavy(t *testing.T) {
	reads, writes := collect(New(TPCCI, mathx.NewRNG(11)), 1000)
	if mathx.Mean(writes) <= mathx.Mean(reads) {
		t.Fatalf("TPCC should be write-heavy: reads %v writes %v",
			mathx.Mean(reads), mathx.Mean(writes))
	}
	sreads, swrites := collect(New(SysbenchI, mathx.NewRNG(11)), 1000)
	if mathx.Mean(swrites) >= mathx.Mean(sreads) {
		t.Fatal("Sysbench should be read-heavy")
	}
}

func TestSysbenchPeriodicCyclesThreads(t *testing.T) {
	g := newSysbench(mathx.NewRNG(1), true)
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		seen[g.cur.Threads] = true
		g.nextSegment()
	}
	for _, th := range sysbenchIICycle {
		if !seen[th] {
			t.Fatalf("thread level %d never scheduled; seen=%v", th, seen)
		}
	}
	if g.cur.Tables != 10 {
		t.Fatalf("Sysbench II tables = %d, want 10 per Table IV", g.cur.Tables)
	}
}

func TestTPCCWarmupRamps(t *testing.T) {
	g := newTPCC(mathx.NewRNG(2), true)
	g.noiseStd = 0
	first := g.Next()
	var later Demand
	for i := 0; i < 5; i++ {
		later = g.Next()
	}
	if later.Read+later.Write <= first.Read+first.Write {
		t.Fatalf("warmup should ramp up: first=%v later=%v", first, later)
	}
}

func TestTPCCIrregularSweepsGrid(t *testing.T) {
	g := newTPCC(mathx.NewRNG(9), false)
	for i := 0; i < 50; i++ {
		p := g.cur
		if p.Warehouses < 5 || p.Warehouses > 20 {
			t.Fatalf("warehouses %d out of Table IV range", p.Warehouses)
		}
		if p.Threads < 4 || p.Threads > 24 {
			t.Fatalf("threads %d out of Table IV range", p.Threads)
		}
		if p.WarmupMin < 0.5 || p.WarmupMin > 1 || p.Minutes < 0.5 || p.Minutes > 1 {
			t.Fatalf("durations out of Table IV range: %+v", p)
		}
		g.nextSegment()
	}
}

func TestSysbenchIrregularSweepsGrid(t *testing.T) {
	g := newSysbench(mathx.NewRNG(10), false)
	for i := 0; i < 50; i++ {
		p := g.cur
		if p.Tables < 5 || p.Tables > 20 {
			t.Fatalf("tables %d out of range", p.Tables)
		}
		if p.Threads < 4 || p.Threads > 64 {
			t.Fatalf("threads %d out of range", p.Threads)
		}
		if p.Items != 100000 {
			t.Fatalf("items = %d, want 100000", p.Items)
		}
		g.nextSegment()
	}
}

func TestDriftGeneratorSwitches(t *testing.T) {
	// Sysbench (read-heavy) -> TPCC (write-heavy): the write fraction of
	// the demand must flip across the switch.
	g := &DriftGenerator{
		Before:     New(SysbenchI, mathx.NewRNG(1)),
		After:      New(TPCCI, mathx.NewRNG(2)),
		SwitchTick: 300,
	}
	if g.Name() != "sysbench-irregular->tpcc-irregular" {
		t.Fatalf("Name = %q", g.Name())
	}
	var beforeW, beforeR, afterW, afterR float64
	for i := 0; i < 600; i++ {
		d := g.Next()
		if i < 300 {
			beforeR += d.Read
			beforeW += d.Write
		} else if i >= 320 { // settle past warmup
			afterR += d.Read
			afterW += d.Write
		}
	}
	if beforeW/(beforeR+beforeW) > 0.4 {
		t.Fatalf("pre-drift write fraction %v should be read-heavy", beforeW/(beforeR+beforeW))
	}
	if afterW/(afterR+afterW) < 0.5 {
		t.Fatalf("post-drift write fraction %v should be write-heavy", afterW/(afterR+afterW))
	}
}

func TestDriftGeneratorBlends(t *testing.T) {
	g := &DriftGenerator{
		Before:     New(SysbenchII, mathx.NewRNG(3)),
		After:      New(TPCCII, mathx.NewRNG(4)),
		SwitchTick: 100,
		BlendTicks: 20,
	}
	for i := 0; i < 200; i++ {
		d := g.Next()
		if d.Read < 0 || d.Write < 0 {
			t.Fatalf("negative demand at tick %d", i)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	good := FaultPlan{DropTickRate: 0.1, DropCellRate: 0.2, PartialRowRate: 0.3, StaleRate: 0.4,
		Silences: []Silence{{DB: 1, Start: 5, Length: 10}}}
	if err := good.Validate(14, 5); err != nil {
		t.Fatal(err)
	}
	if good.IsZero() {
		t.Fatal("plan with faults reports IsZero")
	}
	if !(FaultPlan{Seed: 42}).IsZero() {
		t.Fatal("seed-only plan must be zero")
	}
	bad := []FaultPlan{
		{DropTickRate: -0.1},
		{DropCellRate: 1.1},
		{Silences: []Silence{{DB: 5, Start: 0, Length: 1}}},
		{Silences: []Silence{{DB: 0, Start: -1, Length: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(14, 5); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	if err := good.Validate(0, 5); err == nil {
		t.Error("zero-KPI shape accepted")
	}
}

func TestSilenceCovers(t *testing.T) {
	s := Silence{DB: 0, Start: 10, Length: 5}
	for _, tc := range []struct {
		t    int
		want bool
	}{{9, false}, {10, true}, {14, true}, {15, false}} {
		if got := s.Covers(tc.t); got != tc.want {
			t.Errorf("Covers(%d) = %v", tc.t, got)
		}
	}
}

func TestInjectorDeterministicAndScheduled(t *testing.T) {
	plan := FaultPlan{Seed: 9, DropTickRate: 0.2, DropCellRate: 0.1, PartialRowRate: 0.1, StaleRate: 0.1,
		Silences: []Silence{{DB: 2, Start: 3, Length: 4}}}
	a, err := plan.NewInjector(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := plan.NewInjector(4, 5)
	sawDrop, sawCut, sawCell, sawStale := false, false, false, false
	for tick := 0; tick < 200; tick++ {
		fa := a.Next()
		fb := b.Next()
		if fa.Dropped != fb.Dropped || fa.Stale != fb.Stale {
			t.Fatalf("tick %d: tick-level divergence", tick)
		}
		sawDrop = sawDrop || fa.Dropped
		sawStale = sawStale || fa.Stale
		for k := 0; k < 4; k++ {
			if fa.RowLen[k] != fb.RowLen[k] {
				t.Fatalf("tick %d: row-length divergence", tick)
			}
			sawCut = sawCut || fa.RowLen[k] < 5
			for d := 0; d < 5; d++ {
				if fa.CellGap[k][d] != fb.CellGap[k][d] {
					t.Fatalf("tick %d: cell divergence", tick)
				}
				sawCell = sawCell || fa.CellGap[k][d]
			}
			// Scheduled silence always gaps its database.
			if tick >= 3 && tick < 7 && !fa.CellGap[k][2] {
				t.Fatalf("tick %d: silence not applied", tick)
			}
		}
	}
	if !sawDrop || !sawCut || !sawCell || !sawStale {
		t.Fatalf("channels unexercised: drop=%v cut=%v cell=%v stale=%v", sawDrop, sawCut, sawCell, sawStale)
	}
	if a.Tick() != 200 {
		t.Fatalf("Tick = %d", a.Tick())
	}
}
