package workload

import (
	"fmt"

	"dbcatcher/internal/mathx"
)

// FaultPlan describes the collector-side delivery faults of a lossy
// monitoring pipeline. Where the demand generators model what the unit
// *does*, a FaultPlan models what the collection agents *fail to deliver*:
// whole ticks dropped on the wire, stale re-deliveries, truncated rows, and
// individual cells lost — plus scheduled silences where one database's
// agent is down entirely. The same plan and seed always produce the same
// fault stream.
type FaultPlan struct {
	// Seed drives the per-tick randomness.
	Seed uint64
	// DropTickRate is the probability that a whole collection tick is lost
	// (the monitor sees nothing for any database that tick).
	DropTickRate float64
	// DropCellRate is the per-(KPI, database) probability that a single
	// cell is lost from an otherwise delivered tick.
	DropCellRate float64
	// PartialRowRate is the per-KPI probability that a row arrives
	// truncated at a random database index (trailing cells lost).
	PartialRowRate float64
	// StaleRate is the probability that a tick is delivered stale: the
	// collector re-sends the previous tick's values instead of fresh ones.
	StaleRate float64
	// Silences schedules whole-database outages: every cell of the silent
	// database is lost for the duration.
	Silences []Silence
}

// Silence is a scheduled whole-database collection outage.
type Silence struct {
	// DB is the silent database.
	DB int
	// Start is the first affected tick; Length the number of ticks.
	Start, Length int
}

// Covers reports whether the silence is in effect at tick t.
func (s Silence) Covers(t int) bool {
	return t >= s.Start && t < s.Start+s.Length
}

// IsZero reports whether the plan injects no faults at all.
func (p FaultPlan) IsZero() bool {
	return p.DropTickRate == 0 && p.DropCellRate == 0 && p.PartialRowRate == 0 &&
		p.StaleRate == 0 && len(p.Silences) == 0
}

// Validate checks rates and silence schedules against the unit shape.
func (p FaultPlan) Validate(kpis, dbs int) error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop-tick", p.DropTickRate},
		{"drop-cell", p.DropCellRate},
		{"partial-row", p.PartialRowRate},
		{"stale", p.StaleRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("workload: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	for i, s := range p.Silences {
		if s.DB < 0 || s.DB >= dbs {
			return fmt.Errorf("workload: silence %d targets database %d of %d", i, s.DB, dbs)
		}
		if s.Start < 0 || s.Length <= 0 {
			return fmt.Errorf("workload: silence %d has empty range [%d, %d)", i, s.Start, s.Start+s.Length)
		}
	}
	if kpis <= 0 || dbs <= 0 {
		return fmt.Errorf("workload: non-positive fault shape %dx%d", kpis, dbs)
	}
	return nil
}

// TickFault is the realized fault pattern for one collection tick. The
// slices are reused between ticks; consume them before the next call.
type TickFault struct {
	// Dropped: the whole tick was lost (everything else is irrelevant).
	Dropped bool
	// Stale: the tick was delivered with the previous tick's values.
	Stale bool
	// RowLen is the delivered length of each KPI row (dbs = complete).
	RowLen []int
	// CellGap marks individually lost cells, CellGap[k][d].
	CellGap [][]bool
}

// Injector materializes a FaultPlan into a deterministic per-tick fault
// stream for a kpis × dbs unit. It is not safe for concurrent use.
type Injector struct {
	plan  FaultPlan
	rng   *mathx.RNG
	kpis  int
	dbs   int
	tick  int
	fault TickFault
}

// NewInjector validates the plan against the shape and returns its fault
// stream.
func (p FaultPlan) NewInjector(kpis, dbs int) (*Injector, error) {
	if err := p.Validate(kpis, dbs); err != nil {
		return nil, err
	}
	in := &Injector{plan: p, rng: mathx.NewRNG(p.Seed).Split(0xfa17), kpis: kpis, dbs: dbs}
	in.fault.RowLen = make([]int, kpis)
	in.fault.CellGap = make([][]bool, kpis)
	for k := range in.fault.CellGap {
		in.fault.CellGap[k] = make([]bool, dbs)
	}
	return in, nil
}

// Tick reports the injector's next tick index (the one the following Next
// call realizes).
func (in *Injector) Tick() int { return in.tick }

// Next realizes the fault pattern for the next tick. The returned struct's
// slices are reused; the caller must apply them before calling Next again.
//
// Per-tick random draws happen in a fixed order regardless of which
// channels are enabled, so enabling one channel does not reshuffle the
// others' schedules across runs.
func (in *Injector) Next() TickFault {
	t := in.tick
	in.tick++
	f := &in.fault
	f.Dropped = in.rng.Bool(in.plan.DropTickRate)
	f.Stale = in.rng.Bool(in.plan.StaleRate)
	for k := 0; k < in.kpis; k++ {
		cut := in.rng.Bool(in.plan.PartialRowRate)
		at := in.rng.Intn(in.dbs)
		if cut {
			f.RowLen[k] = at
		} else {
			f.RowLen[k] = in.dbs
		}
		for d := 0; d < in.dbs; d++ {
			f.CellGap[k][d] = in.rng.Bool(in.plan.DropCellRate)
		}
	}
	for _, s := range in.plan.Silences {
		if !s.Covers(t) {
			continue
		}
		for k := 0; k < in.kpis; k++ {
			f.CellGap[k][s.DB] = true
		}
	}
	return *f
}
