// Package fleet fans per-unit work out over a bounded worker pool. A cloud
// region holds thousands of database units and every unit's judgment round
// is independent, so the detection, dataset-generation, and
// threshold-learning layers all share this one fan-out primitive instead of
// growing private goroutine plumbing.
//
// Determinism: tasks receive their index and results land in index order,
// so a successful fleet pass produces identical output regardless of
// concurrency or scheduling — provided the per-index task is itself
// deterministic and shares no mutable state with its siblings. On failure
// the lowest-indexed error that was recorded before the pool drained is
// returned; which sibling errors also ran may vary with scheduling.
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dbcatcher/internal/detect"
	"dbcatcher/internal/timeseries"
)

// Resolve maps a Concurrency knob to a worker count: values <= 0 use
// GOMAXPROCS, anything else is taken literally (1 = serial).
func Resolve(concurrency int) int {
	if concurrency <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return concurrency
}

// Each runs fn(0), ..., fn(n-1) over a pool of Resolve(concurrency)
// workers and returns the lowest-indexed recorded error, or nil. After a
// task fails, no new tasks are started (in-flight tasks finish).
func Each(n, concurrency int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Resolve(concurrency)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	// Each index is owned by exactly one worker, so errs needs no lock.
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map is Each with one result slot per index: out[i] = fn(i), in input
// order. On error the partial results are discarded.
func Map[T any](n, concurrency int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Each(n, concurrency, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DetectUnits runs the offline detector over many unit series concurrently
// and returns each unit's verdict sequence in input order. When the fleet
// itself fans out, each unit's correlation build is forced serial
// (cfg.Workers = 1) unless the caller pinned a count — coarse per-unit
// parallelism already saturates the cores, and nesting pools would only
// add scheduling overhead.
func DetectUnits(units []*timeseries.UnitSeries, cfg detect.Config, concurrency int) ([][]detect.Verdict, error) {
	if Resolve(concurrency) > 1 && cfg.Workers == 0 {
		cfg.Workers = 1
	}
	return Map(len(units), concurrency, func(i int) ([]detect.Verdict, error) {
		verdicts, _, err := detect.Run(units[i], cfg)
		return verdicts, err
	})
}
