package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, conc := range []int{1, 2, 8} {
		out, err := Map(50, conc, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("conc=%d: out[%d] = %d, want %d", conc, i, v, i*i)
			}
		}
	}
}

func TestEachReportsError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Serial: the first error in index order wins.
	err := Each(20, 1, func(i int) error {
		switch i {
		case 3:
			return errA
		case 11:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("serial err = %v, want %v", err, errA)
	}
	// Parallel with a single failing index: exactly that error surfaces.
	err = Each(20, 4, func(i int) error {
		if i == 7 {
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("parallel err = %v, want %v", err, errA)
	}
}

// TestEachLowestIndexedError pins the documented failure contract under
// concurrent multi-error failure: when several tasks fail, Each returns
// the lowest-indexed error that was recorded before the pool drained.
// Which indices ran varies with scheduling (after a failure no new task
// starts), so the test records them and asserts against the minimum. Run
// under `make race`: the fleet scheduler leans on this online.
func TestEachLowestIndexedError(t *testing.T) {
	const n, workers = 24, 6

	// Barrier variant: the first wave of tasks all fail at the same
	// instant. Index 0 is in that wave, so its error must win.
	taskErr := make([]error, n)
	for i := range taskErr {
		taskErr[i] = fmt.Errorf("task %d failed", i)
	}
	start := make(chan struct{})
	var arrived atomic.Int64
	err := Each(n, workers, func(i int) error {
		if arrived.Add(1) == workers {
			close(start)
		}
		<-start
		return taskErr[i]
	})
	if err != taskErr[0] {
		t.Fatalf("simultaneous failure returned %v, want %v", err, taskErr[0])
	}

	// Free-running variant, repeated: every task fails immediately; the
	// returned error must always be the lowest-indexed task that ran.
	for round := 0; round < 50; round++ {
		ran := make([]atomic.Bool, n)
		err := Each(n, workers, func(i int) error {
			ran[i].Store(true)
			return taskErr[i]
		})
		lowest := -1
		for i := range ran {
			if ran[i].Load() {
				lowest = i
				break
			}
		}
		if lowest == -1 {
			t.Fatal("no task ran")
		}
		if err != taskErr[lowest] {
			t.Fatalf("round %d: returned %v, want lowest recorded %v", round, err, taskErr[lowest])
		}
	}
}

func TestEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	err := Each(40, workers, func(i int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		for j := 0; j < 1000; j++ {
			_ = j * j // give siblings a chance to overlap
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestEachEmptyAndError(t *testing.T) {
	if err := Each(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 must not run tasks: %v", err)
	}
	calls := 0
	if err := Each(5, 1, func(i int) error {
		calls++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	}); err == nil {
		t.Fatal("expected error")
	}
	if calls != 3 {
		t.Fatalf("serial path ran %d tasks after error, want 3", calls)
	}
}
