package fleet

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/scrape"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

const (
	testUnits = 32
	testDBs   = 4
	testTicks = 200
)

func simUnit(t *testing.T, i int) *cluster.Unit {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name:            fmt.Sprintf("unit-%02d", i),
		Ticks:           testTicks,
		Databases:       testDBs,
		Seed:            uint64(41 + i*101),
		Profile:         workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// unitPlan varies collector faults across the fleet: every unit drops
// ticks and cells at its own seed, and every fourth unit also suffers a
// whole-database silence long enough to trip the deactivation budget.
func unitPlan(i int) workload.FaultPlan {
	plan := workload.FaultPlan{
		Seed:         uint64(7 + i),
		DropTickRate: 0.02,
		DropCellRate: 0.01,
	}
	if i%4 == 0 {
		plan.Silences = []workload.Silence{{DB: i % testDBs, Start: 60, Length: 80}}
	}
	return plan
}

func newTestOnline(t *testing.T) *monitor.Online {
	t.Helper()
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Workers:    1,
	}, kpi.Count, testDBs)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// verdictsEqual compares two verdict streams field by field; MeanCorr is
// NaN on skipped rounds, which reflect.DeepEqual would treat as unequal.
func verdictsEqual(t *testing.T, unit int, got, want []*monitor.Verdict) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("unit %d: %d verdicts, want %d", unit, len(got), len(want))
	}
	for k, g := range got {
		w := want[k]
		same := g.Tick == w.Tick && g.Start == w.Start && g.Size == w.Size &&
			g.Abnormal == w.Abnormal && g.AbnormalDB == w.AbnormalDB &&
			g.Expansions == w.Expansions && g.GapCells == w.GapCells &&
			g.Health == w.Health && len(g.States) == len(w.States)
		if same {
			for d := range g.States {
				same = same && g.States[d] == w.States[d]
			}
		}
		if same {
			same = g.MeanCorr == w.MeanCorr || (math.IsNaN(g.MeanCorr) && math.IsNaN(w.MeanCorr))
		}
		if !same {
			t.Fatalf("unit %d verdict %d diverged:\n  fleet %+v\n  solo  %+v", unit, k, g, w)
		}
	}
}

// The tentpole acceptance pin: a 32-unit fleet scheduled through one
// Monitor emits, per unit, the bit-identical verdict stream of 32
// independently run monitor.Online instances — including under injected
// collector faults (dropped ticks, lost cells, whole-database silences).
func TestMonitorMatchesIndependentUnits(t *testing.T) {
	units := make([]*cluster.Unit, testUnits)
	for i := range units {
		units[i] = simUnit(t, i)
	}

	// Reference: each unit alone, fed serially.
	solo := make([][]*monitor.Verdict, testUnits)
	for i, u := range units {
		o := newTestOnline(t)
		c, err := cluster.NewCollector(u.Series, unitPlan(i))
		if err != nil {
			t.Fatal(err)
		}
		for {
			sample, ok := c.Next()
			if !ok {
				break
			}
			v, err := o.Push(sample)
			if err != nil {
				t.Fatalf("solo unit %d: %v", i, err)
			}
			if v != nil {
				solo[i] = append(solo[i], v)
			}
		}
	}

	// Fleet: same units, same fault plans, one scheduler, 4-way pool.
	pushers := make([]Pusher, testUnits)
	collectors := make([]*cluster.Collector, testUnits)
	for i, u := range units {
		pushers[i] = newTestOnline(t)
		c, err := cluster.NewCollector(u.Series, unitPlan(i))
		if err != nil {
			t.Fatal(err)
		}
		collectors[i] = c
	}
	m, err := NewMonitor(pushers, 4)
	if err != nil {
		t.Fatal(err)
	}
	fleet := make([][]*monitor.Verdict, testUnits)
	samples := make([][][]float64, testUnits)
	for tick := 0; tick < testTicks; tick++ {
		for i, c := range collectors {
			sample, ok := c.Next()
			if !ok {
				t.Fatalf("unit %d collector exhausted at tick %d", i, tick)
			}
			samples[i] = sample
		}
		verdicts, err := m.Push(samples)
		if err != nil {
			t.Fatalf("fleet tick %d: %v", tick, err)
		}
		for i, v := range verdicts {
			if v != nil {
				fleet[i] = append(fleet[i], v)
			}
		}
	}
	if m.Ticks() != testTicks {
		t.Fatalf("scheduled %d ticks, want %d", m.Ticks(), testTicks)
	}

	emitted := 0
	for i := range units {
		verdictsEqual(t, i, fleet[i], solo[i])
		emitted += len(fleet[i])
	}
	if emitted == 0 {
		t.Fatal("fleet emitted no verdicts")
	}
}

// A unit failure surfaces as the scheduler's error and discards the round.
func TestMonitorPushErrors(t *testing.T) {
	o := newTestOnline(t)
	m, err := NewMonitor([]Pusher{o}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(nil); err == nil {
		t.Fatal("sample/unit count mismatch accepted")
	}
	if _, err := NewMonitor(nil, 1); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewMonitor([]Pusher{nil}, 1); err == nil {
		t.Fatal("nil unit accepted")
	}
	if err := m.SetScrapers([]*scrape.Scraper{nil, nil}); err == nil {
		t.Fatal("scraper count mismatch accepted")
	}
	if _, _, err := m.ScrapeRound(context.Background()); err == nil {
		t.Fatal("scrape round without scrapers accepted")
	}
}

// Batched scraping: three units behind three exporters, one with a
// permanently failing database. Healthy units' verdict streams stay
// bit-identical to direct in-process pushes; the faulted unit matches a
// reference fed the same NaN-column samples its scraper assembles, and
// its own circuit breaker opens without disturbing its siblings.
func TestMonitorScrapeRound(t *testing.T) {
	const units, ticks = 3, 50
	cfgFlex := window.FlexConfig{Initial: 10, Max: 10, ExhaustState: window.Abnormal}
	newOnline := func() *monitor.Online {
		o, err := monitor.NewOnline(detect.Config{
			Thresholds: window.DefaultThresholds(kpi.Count),
			Flex:       cfgFlex,
			Workers:    1,
		}, kpi.Count, testDBs)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}

	feeds := make([]*scrape.Feed, units)
	scrapers := make([]*scrape.Scraper, units)
	pushers := make([]Pusher, units)
	refs := make([]*monitor.Online, units)
	for i := 0; i < units; i++ {
		feeds[i] = scrape.NewFeed(kpi.Count, testDBs)
		exp := scrape.NewExporter(feeds[i])
		srv := httptest.NewServer(exp.Handler())
		defer srv.Close()
		if i == 1 {
			if err := exp.SetFault(0, scrape.Fault{Mode: scrape.Fault5xx, Count: 1 << 20}); err != nil {
				t.Fatal(err)
			}
		}
		sc, err := scrape.New(scrape.Config{
			Targets:         scrape.SelfTargets(srv.URL, testDBs),
			KPIs:            kpi.Count,
			MaxAttempts:     1,
			BreakerFailures: 2,
			JitterSeed:      99,
		})
		if err != nil {
			t.Fatal(err)
		}
		scrapers[i] = sc
		pushers[i] = newOnline()
		refs[i] = newOnline()
	}
	m, err := NewMonitor(pushers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetScrapers(scrapers); err != nil {
		t.Fatal(err)
	}

	u := simUnit(t, 7)
	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	fleet := make([][]*monitor.Verdict, units)
	ref := make([][]*monitor.Verdict, units)
	nanCol := make([][]float64, kpi.Count)
	for tick := 0; tick < ticks; tick++ {
		sample, ok := c.Next()
		if !ok {
			t.Fatalf("collector exhausted at tick %d", tick)
		}
		for i := 0; i < units; i++ {
			if err := feeds[i].Publish(tick, sample); err != nil {
				t.Fatal(err)
			}
		}
		verdicts, reports, err := m.ScrapeRound(context.Background())
		if err != nil {
			t.Fatalf("scrape round %d: %v", tick, err)
		}
		if len(reports) != units {
			t.Fatalf("%d reports, want %d", len(reports), units)
		}
		for i, v := range verdicts {
			if v != nil {
				fleet[i] = append(fleet[i], v)
			}
		}
		// References: units 0 and 2 see the full sample; unit 1's scraper
		// assembles database 0 as a NaN column every round.
		for k, row := range sample {
			nanCol[k] = append(nanCol[k][:0], row...)
			nanCol[k][0] = math.NaN()
		}
		for i, r := range refs {
			in := sample
			if i == 1 {
				in = nanCol
			}
			v, err := r.Push(in)
			if err != nil {
				t.Fatalf("reference unit %d: %v", i, err)
			}
			if v != nil {
				ref[i] = append(ref[i], v)
			}
		}
	}

	for i := 0; i < units; i++ {
		verdictsEqual(t, i, fleet[i], ref[i])
		if len(fleet[i]) == 0 {
			t.Fatalf("unit %d emitted no verdicts", i)
		}
	}
	// The faulted unit's breaker opened; its siblings' stayed closed.
	h1 := scrapers[1].Health()
	if h1.Targets[0].Breaker == scrape.BreakerClosed.String() {
		t.Fatalf("unit 1 target 0 breaker still closed: %+v", h1.Targets[0])
	}
	for _, i := range []int{0, 2} {
		for d, th := range scrapers[i].Health().Targets {
			if th.Breaker != scrape.BreakerClosed.String() {
				t.Fatalf("healthy unit %d target %d breaker %q", i, d, th.Breaker)
			}
		}
	}
}
