package fleet

import (
	"context"
	"fmt"
	"sync/atomic"

	"dbcatcher/internal/monitor"
	"dbcatcher/internal/scrape"
)

// Pusher is one unit's per-tick ingestion surface. monitor.Online
// implements it directly; server.Server wraps an Online and adds
// verdict-history recording with the same signature. Monitor deliberately
// depends on this interface rather than concrete types so the fleet layer
// stays below the HTTP layer in the import graph.
type Pusher interface {
	Push(sample [][]float64) (*monitor.Verdict, error)
}

// Monitor drives N independent per-unit online judges through lock-step
// collection rounds behind one bounded scheduler. Each tick fans the
// units out over an Each pool: per-unit work (ring ingestion, streaming
// KCD updates, round judgment) runs inside the unit's task, results land
// in unit order, and a unit failure surfaces as Each's lowest-indexed
// recorded error. Units are fully independent — no cross-unit state — so
// a fleet round is bit-identical to running every unit's judge alone,
// regardless of concurrency or scheduling.
//
// Push and ScrapeRound must be called from one scheduler goroutine at a
// time (each unit's judge serializes internally, but the round itself is
// a lock-step batch); Ticks is safe to read concurrently.
type Monitor struct {
	units       []Pusher
	scrapers    []*scrape.Scraper
	concurrency int
	ticks       atomic.Int64
}

// NewMonitor builds a fleet scheduler over units. concurrency follows
// Resolve semantics (<= 0 means GOMAXPROCS).
func NewMonitor(units []Pusher, concurrency int) (*Monitor, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("fleet: no units")
	}
	for i, u := range units {
		if u == nil {
			return nil, fmt.Errorf("fleet: unit %d is nil", i)
		}
	}
	return &Monitor{units: units, concurrency: concurrency}, nil
}

// SetScrapers attaches one scraper per unit for ScrapeRound batching.
// Each unit keeps its own scraper — and with it the per-target circuit
// breakers, retry budgets, and stale markdown state of the scrape layer —
// so a broken exporter only degrades its own unit.
func (m *Monitor) SetScrapers(scrapers []*scrape.Scraper) error {
	if len(scrapers) != len(m.units) {
		return fmt.Errorf("fleet: %d scrapers for %d units", len(scrapers), len(m.units))
	}
	for i, s := range scrapers {
		if s == nil {
			return fmt.Errorf("fleet: scraper %d is nil", i)
		}
	}
	m.scrapers = scrapers
	return nil
}

// Units returns the fleet size.
func (m *Monitor) Units() int { return len(m.units) }

// Ticks returns how many rounds have been scheduled.
func (m *Monitor) Ticks() int { return int(m.ticks.Load()) }

// Push feeds one collection tick to every unit: samples[i] goes to unit i
// (nil marks a missed tick — the unit's degraded-ingestion path handles
// it). Verdicts land in unit order; units with no completed round this
// tick hold nil. On error the partial results are discarded and the
// lowest-indexed unit error is returned.
func (m *Monitor) Push(samples [][][]float64) ([]*monitor.Verdict, error) {
	if len(samples) != len(m.units) {
		return nil, fmt.Errorf("fleet: %d samples for %d units", len(samples), len(m.units))
	}
	m.ticks.Add(1)
	return Map(len(m.units), m.concurrency, func(i int) (*monitor.Verdict, error) {
		return m.units[i].Push(samples[i])
	})
}

// ScrapeRound runs one batched collection round over the wire: every
// unit's scraper fans out to its exporters (bounded by its own scrape
// concurrency and round deadline, reusing its per-target breakers) and
// the assembled sample is pushed into that unit's judge within the same
// task, so a slow unit never blocks its siblings beyond pool capacity.
// Reports land in unit order even when a later stage fails.
func (m *Monitor) ScrapeRound(ctx context.Context) ([]*monitor.Verdict, []scrape.RoundReport, error) {
	if m.scrapers == nil {
		return nil, nil, fmt.Errorf("fleet: no scrapers attached")
	}
	m.ticks.Add(1)
	verdicts := make([]*monitor.Verdict, len(m.units))
	reports := make([]scrape.RoundReport, len(m.units))
	err := Each(len(m.units), m.concurrency, func(i int) error {
		sample, rep, err := m.scrapers[i].Round(ctx)
		reports[i] = rep
		if err != nil {
			return fmt.Errorf("fleet: unit %d scrape: %w", i, err)
		}
		// The sample aliases the scraper's reusable row storage; the judge
		// copies what it keeps during ingestion, so consuming it before the
		// task returns (and the next round reuses the rows) is safe.
		v, err := m.units[i].Push(sample)
		if err != nil {
			return fmt.Errorf("fleet: unit %d push: %w", i, err)
		}
		verdicts[i] = v
		return nil
	})
	if err != nil {
		return nil, reports, err
	}
	return verdicts, reports, nil
}
