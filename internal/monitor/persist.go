// Durable-state hooks for the online judge. The monitor itself stays
// storage-free: it exports and restores a point-in-time PersistentState and
// notifies an optional Persister on the two events that change durable
// state — a verdict resolving and a threshold swap. The storage layer
// (internal/store) implements Persister; with no persister attached the
// detection path is byte-for-byte the in-memory behaviour.
package monitor

import (
	"fmt"
	"math"

	"dbcatcher/internal/window"
)

// Persister receives durability hooks from the online judge. Both hooks run
// synchronously with the judge's mutex held, so implementations must not
// call back into Online methods — locked state access goes through the
// PersistContext instead. Hook latency directly extends Push latency (an
// fsync-per-append policy pays its fsync inside the judgment lock).
type Persister interface {
	// PersistVerdict is invoked for every emitted verdict, including
	// HealthSkipped resync verdicts.
	PersistVerdict(v *Verdict, ctx PersistContext)
	// PersistThresholds is invoked after a threshold swap has been
	// applied, under the same mutex that guards Push — a racing round
	// can never judge with a half-applied set, and the persisted order
	// matches the applied order.
	PersistThresholds(t window.Thresholds, ctx PersistContext)
}

// PersistContext gives a Persister locked access to the judge's state from
// inside a hook (where calling the public, self-locking accessors would
// deadlock). It is only valid for the duration of the hook call.
type PersistContext struct{ o *Online }

// Export captures the judge's full persistent state.
func (c PersistContext) Export() *PersistentState { return c.o.exportLocked() }

// Health snapshots the degraded-mode counters.
func (c PersistContext) Health() HealthStats { return c.o.healthLocked() }

// Tick returns the number of ingested collection ticks.
func (c PersistContext) Tick() int { return c.o.proc.Ticks() }

// SetPersister attaches (or, with nil, detaches) the durability hooks.
// Persistence is strictly opt-in: with no persister the detection path is
// unchanged.
func (o *Online) SetPersister(p Persister) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.persister = p
}

// RingState is one (KPI, database) queue's retained tail. Gap slots store a
// zero value with the mask set (NaN does not survive JSON encoding).
type RingState struct {
	Values []float64 `json:"values"`
	Gaps   []bool    `json:"gaps,omitempty"`
}

// PersistentState is a point-in-time capture of everything the online judge
// needs to resume after a restart: the detection position (round start,
// window size, expansions), the learned thresholds, the degraded-mode
// accounting, and the ring tails covering the in-flight round. It is
// JSON-encodable for snapshot files.
type PersistentState struct {
	KPIs   int               `json:"kpis"`
	DBs    int               `json:"dbs"`
	Flex   window.FlexConfig `json:"flex"`
	Tick   int               `json:"tick"`
	Oldest int               `json:"oldest"`

	RoundStart int `json:"roundStart"`
	FlexSize   int `json:"flexSize"`
	Expansions int `json:"expansions"`
	Primary    int `json:"primary"`

	Thresholds window.Thresholds `json:"thresholds"`
	UserActive []bool            `json:"userActive,omitempty"`

	AutoDown    []bool   `json:"autoDown"`
	SilentHist  [][]bool `json:"silentHist"`
	HistIdx     int      `json:"histIdx"`
	HistFilled  int      `json:"histFilled"`
	SilentCount []int    `json:"silentCount"`
	CleanStreak []int    `json:"cleanStreak"`

	Deactivations    int `json:"deactivations"`
	Reactivations    int `json:"reactivations"`
	DegradedVerdicts int `json:"degradedVerdicts"`
	SkippedRounds    int `json:"skippedRounds"`
	GapCells         int `json:"gapCells"`
	MissedTicks      int `json:"missedTicks"`

	// Rings holds the (KPI, database) tails in row-major order
	// (k*DBs + d), each of length Tick-Oldest.
	Rings []RingState `json:"rings"`
}

// ExportState captures the judge's persistent state. It is safe to call
// concurrently with Push (e.g. for a shutdown snapshot).
func (o *Online) ExportState() *PersistentState {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.exportLocked()
}

func (o *Online) exportLocked() *PersistentState {
	p := o.proc
	p.mu.Lock()
	defer p.mu.Unlock()
	oldest := p.oldestLocked()
	n := p.total - oldest
	st := &PersistentState{
		KPIs:   p.kpis,
		DBs:    p.dbs,
		Flex:   o.cfg.Flex,
		Tick:   p.total,
		Oldest: oldest,

		RoundStart: o.roundStart,
		FlexSize:   o.flex.Size(),
		Expansions: o.expansions,
		Primary:    o.cfg.Primary,

		Thresholds: o.cfg.Thresholds.Clone(),

		AutoDown:    append([]bool(nil), o.autoDown...),
		SilentHist:  make([][]bool, len(o.silentHist)),
		HistIdx:     o.histIdx,
		HistFilled:  o.histFilled,
		SilentCount: append([]int(nil), o.silentCount...),
		CleanStreak: append([]int(nil), o.cleanStreak...),

		Deactivations:    o.deactivations,
		Reactivations:    o.reactivations,
		DegradedVerdicts: o.degradedVerdicts,
		SkippedRounds:    o.skippedRounds,
		GapCells:         p.gapCells,
		MissedTicks:      p.missedTicks,

		Rings: make([]RingState, p.kpis*p.dbs),
	}
	if o.userActive != nil {
		st.UserActive = append([]bool(nil), o.userActive...)
	}
	for i := range o.silentHist {
		st.SilentHist[i] = append([]bool(nil), o.silentHist[i]...)
	}
	for k := 0; k < p.kpis; k++ {
		for d := 0; d < p.dbs; d++ {
			ring := p.rings[k][d]
			rs := RingState{Values: make([]float64, n)}
			for i := 0; i < n; i++ {
				if ring.IsGap(i) {
					if rs.Gaps == nil {
						rs.Gaps = make([]bool, n)
					}
					rs.Gaps[i] = true
					continue
				}
				rs.Values[i] = sanitizeForJSON(ring.At(i))
			}
			st.Rings[k*p.dbs+d] = rs
		}
	}
	return st
}

// RestoreState rebuilds the judge from a previously exported state. The
// state must match the judge's shape and flexible-window configuration;
// detection resumes exactly where the export left off (mid-round exports
// included). Degraded-mode rolling accounting is restored when its budget
// window matches the current configuration and reinitialized (keeping the
// cumulative counters) otherwise.
func (o *Online) RestoreState(st *PersistentState) error {
	if st == nil {
		return fmt.Errorf("monitor: nil persistent state")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	kpis, dbs := o.proc.Shape()
	if st.KPIs != kpis || st.DBs != dbs {
		return fmt.Errorf("monitor: state shape %dx%d, judge is %dx%d", st.KPIs, st.DBs, kpis, dbs)
	}
	if st.Flex != o.cfg.Flex {
		return fmt.Errorf("monitor: state flex config %+v does not match %+v", st.Flex, o.cfg.Flex)
	}
	if err := st.Thresholds.Validate(kpis); err != nil {
		return fmt.Errorf("monitor: state thresholds: %w", err)
	}
	n := st.Tick - st.Oldest
	cap := o.proc.rings[0][0].Cap()
	if n < 0 || n > cap || st.Oldest < 0 {
		return fmt.Errorf("monitor: state retains %d ticks (capacity %d)", n, cap)
	}
	if len(st.Rings) != kpis*dbs {
		return fmt.Errorf("monitor: state has %d rings, want %d", len(st.Rings), kpis*dbs)
	}
	for i, rs := range st.Rings {
		if len(rs.Values) != n || (rs.Gaps != nil && len(rs.Gaps) != n) {
			return fmt.Errorf("monitor: ring %d holds %d values, want %d", i, len(rs.Values), n)
		}
	}
	if st.RoundStart < 0 || st.RoundStart > st.Tick {
		return fmt.Errorf("monitor: state round start %d outside [0, %d]", st.RoundStart, st.Tick)
	}
	if st.UserActive != nil && len(st.UserActive) != dbs {
		return fmt.Errorf("monitor: state active mask has %d entries for %d databases", len(st.UserActive), dbs)
	}
	if err := o.flex.Restore(st.FlexSize); err != nil {
		return fmt.Errorf("monitor: %w", err)
	}

	proc := NewProcessor(kpis, dbs, cap)
	for k := 0; k < kpis; k++ {
		for d := 0; d < dbs; d++ {
			rs := st.Rings[k*dbs+d]
			ring := proc.rings[k][d]
			for i := 0; i < n; i++ {
				if rs.Gaps != nil && rs.Gaps[i] {
					ring.PushGap()
				} else {
					ring.Push(rs.Values[i])
				}
			}
		}
	}
	proc.total = st.Tick
	proc.gapCells = st.GapCells
	proc.missedTicks = st.MissedTicks
	o.proc = proc

	if o.stream != nil {
		// Restored rolling statistics start cold: reset to the restored
		// round start and let the next push replay the retained prefix from
		// the rings (topUpStream). A state whose round start predates the
		// oldest retained tick resynchronizes before any replay happens.
		o.stream.ResetAt(st.RoundStart)
	}

	o.roundStart = st.RoundStart
	o.expansions = st.Expansions
	o.cfg.Primary = st.Primary
	o.cfg.Thresholds = st.Thresholds.Clone()
	o.userActive = nil
	if st.UserActive != nil {
		o.userActive = append([]bool(nil), st.UserActive...)
	}

	o.initDegraded(dbs)
	o.deactivations = st.Deactivations
	o.reactivations = st.Reactivations
	o.degradedVerdicts = st.DegradedVerdicts
	o.skippedRounds = st.SkippedRounds
	if o.degradedShapeMatches(st, dbs) {
		copy(o.autoDown, st.AutoDown)
		for i := range o.silentHist {
			copy(o.silentHist[i], st.SilentHist[i])
		}
		o.histIdx = st.HistIdx
		o.histFilled = st.HistFilled
		copy(o.silentCount, st.SilentCount)
		copy(o.cleanStreak, st.CleanStreak)
	}
	return nil
}

// degradedShapeMatches reports whether the exported rolling accounting fits
// the judge's current DegradedConfig (a SetDegraded between export and
// restore can legitimately change the budget window).
func (o *Online) degradedShapeMatches(st *PersistentState, dbs int) bool {
	if len(st.SilentHist) != len(o.silentHist) ||
		len(st.AutoDown) != dbs || len(st.SilentCount) != dbs || len(st.CleanStreak) != dbs {
		return false
	}
	if st.HistIdx < 0 || st.HistIdx >= len(o.silentHist) ||
		st.HistFilled < 0 || st.HistFilled > len(o.silentHist) {
		return false
	}
	for _, row := range st.SilentHist {
		if len(row) != dbs {
			return false
		}
	}
	return true
}

// sanitizeForJSON guards against non-finite values leaking into a snapshot
// (a gap is the only legitimate NaN source, and those are masked).
func sanitizeForJSON(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
