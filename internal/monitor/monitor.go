// Package monitor implements DBCatcher's data processing module (§III-A):
// per-(KPI, database) queues fed by a collector at 5-second intervals, and
// an online streaming judge that runs the flexible-window detection as
// points arrive, waiting for more data whenever a round is "observable".
//
// Real collectors are lossy: points drop, rows arrive truncated, and whole
// databases go silent mid-round. The monitor therefore runs a degraded-mode
// ingestion layer: missing cells are recorded as explicit gaps (judged
// through the gap-tolerant KCD path), databases whose recent gap ratio
// exceeds a budget are auto-deactivated (and re-activated on recovery), and
// a judgment round that loses its window resynchronizes and reports the
// skipped range instead of wedging.
package monitor

import (
	"fmt"
	"math"
	"sync"

	"dbcatcher/internal/correlate"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
)

// Processor maintains the per-KPI, per-database observation queues. The
// paper's module keeps one queue per KPI per database; Processor uses
// fixed-capacity rings sized to cover the maximum detection window. It is
// safe for concurrent use.
type Processor struct {
	mu          sync.Mutex
	kpis        int
	dbs         int
	rings       [][]*timeseries.Ring
	total       int // points ingested since start
	gapCells    int // cumulative gap cells recorded
	missedTicks int // cumulative wholly-missed ticks
}

// NewProcessor allocates queues for the given shape; capacity is the ring
// depth and must cover the maximum window plus any judgment lag.
func NewProcessor(kpis, dbs, capacity int) *Processor {
	if kpis <= 0 || dbs <= 0 {
		panic("monitor: non-positive shape")
	}
	p := &Processor{kpis: kpis, dbs: dbs}
	p.rings = make([][]*timeseries.Ring, kpis)
	for k := range p.rings {
		p.rings[k] = make([]*timeseries.Ring, dbs)
		for d := range p.rings[k] {
			p.rings[k][d] = timeseries.NewRing(capacity)
		}
	}
	return p
}

// Shape returns the configured KPI and database counts.
func (p *Processor) Shape() (kpis, dbs int) { return p.kpis, p.dbs }

// Ticks returns the number of samples ingested so far.
func (p *Processor) Ticks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Oldest returns the absolute tick index of the oldest retained point (0
// until the rings start evicting).
func (p *Processor) Oldest() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.oldestLocked()
}

func (p *Processor) oldestLocked() int {
	return p.total - p.rings[0][0].Len()
}

// GapStats returns the cumulative count of gap cells recorded and of
// wholly-missed collection ticks.
func (p *Processor) GapStats() (gapCells, missedTicks int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gapCells, p.missedTicks
}

// Ingest adds one collection tick: sample[k][d] is KPI k's value on
// database d. The shape must match exactly; NaN cells are recorded as
// collector gaps. Use IngestDegraded when rows may be missing entirely.
func (p *Processor) Ingest(sample [][]float64) error {
	if len(sample) != p.kpis {
		return fmt.Errorf("monitor: sample has %d KPI rows, want %d", len(sample), p.kpis)
	}
	for k, row := range sample {
		if len(row) != p.dbs {
			return fmt.Errorf("monitor: KPI %d row has %d databases, want %d", k, len(row), p.dbs)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, row := range sample {
		for d, v := range row {
			p.rings[k][d].Push(v)
			if math.IsNaN(v) {
				p.gapCells++
			}
		}
	}
	p.total++
	return nil
}

// IngestDegraded adds one collection tick tolerating delivery faults: a nil
// sample is a wholly-missed tick, missing KPI rows and truncated rows mark
// their absent cells as gaps, and NaN cells are gaps. Oversized samples
// (more rows than KPIs, or rows longer than the database count) still
// error — shape excess is a pipeline bug, not data loss.
//
// It returns the number of gap cells recorded for this tick. When silent is
// non-nil it must have one entry per database; silent[d] is set to whether
// database d delivered no usable cell at all this tick.
func (p *Processor) IngestDegraded(sample [][]float64, silent []bool) (gaps int, err error) {
	if len(sample) > p.kpis {
		return 0, fmt.Errorf("monitor: sample has %d KPI rows, want at most %d", len(sample), p.kpis)
	}
	for k, row := range sample {
		if len(row) > p.dbs {
			return 0, fmt.Errorf("monitor: KPI %d row has %d databases, want at most %d", k, len(row), p.dbs)
		}
	}
	if silent != nil && len(silent) != p.dbs {
		return 0, fmt.Errorf("monitor: silent scratch has %d entries for %d databases", len(silent), p.dbs)
	}
	for d := range silent {
		silent[d] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := 0; k < p.kpis; k++ {
		var row []float64
		if k < len(sample) {
			row = sample[k]
		}
		for d := 0; d < p.dbs; d++ {
			if d < len(row) && !math.IsNaN(row[d]) {
				p.rings[k][d].Push(row[d])
				if silent != nil {
					silent[d] = false
				}
				continue
			}
			p.rings[k][d].PushGap()
			gaps++
		}
	}
	p.gapCells += gaps
	if gaps == p.kpis*p.dbs {
		p.missedTicks++
	}
	p.total++
	return gaps, nil
}

// tickInto copies the cells of absolute tick abs into sample (gap cells
// read NaN). The streaming tier uses it to replay retained ticks into its
// rolling statistics, so pushed values match ring contents bit-for-bit.
func (p *Processor) tickInto(abs int, sample [][]float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	oldest := p.oldestLocked()
	if abs < oldest || abs >= p.total {
		return fmt.Errorf("monitor: tick %d outside retained range [%d, %d)", abs, oldest, p.total)
	}
	i := abs - oldest
	for k := range sample {
		row := sample[k]
		for d := range row {
			row[d] = p.rings[k][d].At(i)
		}
	}
	return nil
}

// WindowStats summarizes collector damage inside a materialized window.
type WindowStats struct {
	// Gaps is the total number of gap cells in the window.
	Gaps int
	// PerDB counts gap cells per database, summed across KPIs.
	PerDB []int
}

// Window materializes the series covering the absolute tick range
// [start, start+size) as a UnitSeries. Gap points read NaN (the
// gap-tolerant correlation path repairs them). It fails when the range has
// been evicted from the rings or has not arrived yet.
func (p *Processor) Window(start, size int) (*timeseries.UnitSeries, error) {
	u, _, err := p.window(start, size, false)
	return u, err
}

// WindowWithStats is Window additionally reporting the gap cells inside the
// materialized range.
func (p *Processor) WindowWithStats(start, size int) (*timeseries.UnitSeries, WindowStats, error) {
	return p.window(start, size, true)
}

func (p *Processor) window(start, size int, wantStats bool) (*timeseries.UnitSeries, WindowStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var stats WindowStats
	if size <= 0 {
		return nil, stats, fmt.Errorf("monitor: non-positive window size %d", size)
	}
	if start+size > p.total {
		return nil, stats, fmt.Errorf("monitor: window [%d, %d) not yet collected (have %d)", start, start+size, p.total)
	}
	oldest := p.oldestLocked()
	if start < oldest {
		return nil, stats, fmt.Errorf("monitor: window start %d evicted (oldest %d)", start, oldest)
	}
	if wantStats {
		stats.PerDB = make([]int, p.dbs)
	}
	u := timeseries.NewUnitSeries("live", p.kpis, p.dbs)
	for k := 0; k < p.kpis; k++ {
		for d := 0; d < p.dbs; d++ {
			ring := p.rings[k][d]
			// Ring index 0 is absolute tick `oldest`.
			vals := make([]float64, size)
			for i := 0; i < size; i++ {
				vals[i] = ring.At(start - oldest + i)
			}
			u.Data[k][d].Values = vals
			if wantStats {
				g := ring.GapsInRange(start-oldest, size)
				stats.Gaps += g
				stats.PerDB[d] += g
			}
		}
	}
	return u, stats, nil
}

// Verdict augments a detection verdict with collection bookkeeping.
type Verdict struct {
	detect.Verdict
	// Tick is the absolute collection tick at which the round completed.
	Tick int
	// GapCells counts the collector gaps inside the judged window (for
	// HealthSkipped verdicts it counts nothing — the range was not judged).
	GapCells int
	// MeanCorr is the mean pairwise correlation score across the round's
	// KPI matrices, over pairs of active databases — the live signal the
	// drift detector watches (a workload shift pushes the whole
	// distribution down long before verdicts flip). NaN for skipped
	// rounds, where nothing was measured.
	MeanCorr float64
}

// DegradedConfig tunes the self-healing behaviour of the online judge.
type DegradedConfig struct {
	// GapBudget is the fraction of silent ticks within BudgetWindow beyond
	// which a database is auto-deactivated. Default 0.5.
	GapBudget float64
	// BudgetWindow is the number of recent ticks over which the gap ratio
	// is evaluated. Default: the flex config's maximum window.
	BudgetWindow int
	// RecoverTicks is the number of consecutive ticks with usable data a
	// deactivated database must deliver before it is re-activated.
	// Default: the flex config's initial window.
	RecoverTicks int
}

func (c DegradedConfig) withDefaults(flex window.FlexConfig) DegradedConfig {
	if c.GapBudget <= 0 {
		c.GapBudget = 0.5
	}
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = flex.MaxWindow()
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = flex.Initial
	}
	return c
}

// HealthStats is a snapshot of the degraded-mode bookkeeping.
type HealthStats struct {
	// GapCells and MissedTicks are cumulative ingestion-side counts.
	GapCells    int
	MissedTicks int
	// Deactivations and Reactivations count automatic mask flips.
	Deactivations int
	Reactivations int
	// DegradedVerdicts and SkippedRounds count downgraded judgment rounds.
	DegradedVerdicts int
	SkippedRounds    int
	// AutoDeactivated marks databases currently benched by the gap budget.
	AutoDeactivated []bool
	// SilentRecent counts each database's silent ticks within the current
	// budget window.
	SilentRecent []int
}

// Online couples a Processor with the streaming judgment loop: push one
// sample per tick and receive a verdict whenever a round resolves. When a
// round is Observable, Online simply waits for Δ more points — the
// "DBCatcher waits for data points" behaviour of §III-C.
//
// Online is safe for concurrent use: threshold/mask mutators may run while
// a feeder goroutine pushes samples.
type Online struct {
	mu         sync.Mutex
	cfg        detect.Config
	dcfg       DegradedConfig
	engine     *correlate.Engine
	proc       *Processor
	flex       *window.Flex
	roundStart int
	expansions int

	// Degraded-mode state: the user-facing activation mask (SetActive),
	// the automatic overlay derived from the gap budget, and the rolling
	// per-database silent-tick accounting behind it.
	userActive  []bool
	autoDown    []bool
	silentHist  [][]bool // ring of per-tick silent flags, BudgetWindow deep
	histIdx     int
	histFilled  int
	silentCount []int // silent ticks per database within silentHist
	cleanStreak []int // consecutive usable ticks per database
	silentTick  []bool
	effActive   []bool

	deactivations    int
	reactivations    int
	degradedVerdicts int
	skippedRounds    int

	// shadow, when non-nil, is a candidate threshold set being compared
	// against the live one on every resolved round (see shadow.go).
	shadow *shadowState

	// persister, when set, receives durable-state hooks (see persist.go).
	persister Persister

	// Streaming tier (cfg.Streaming): the incremental correlation state,
	// reusable matrices and judgment scratch, and the staging row for
	// replaying ring ticks into the stream. The stream always covers a
	// prefix of the current round's window — topped up from the rings one
	// tick per push in steady state, fully replayed after a resync or a
	// state restore (restored rolling stats start cold). See stream.go in
	// internal/correlate for the numerical contract.
	stream       *correlate.Stream
	streamMats   []*correlate.Matrix
	streamJudge  *detect.JudgeScratch
	streamSample [][]float64
}

// NewOnline builds a streaming judge for the given shape. The processor's
// ring capacity is derived from the flex config's worst-case expansion
// sequence, so a live round's window start can never be evicted.
func NewOnline(cfg detect.Config, kpis, dbs int) (*Online, error) {
	if cfg.Flex == (window.FlexConfig{}) {
		cfg.Flex = window.DefaultFlexConfig()
	}
	if err := cfg.Flex.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Thresholds.Validate(kpis); err != nil {
		return nil, err
	}
	flex, err := window.NewFlex(cfg.Flex)
	if err != nil {
		return nil, err
	}
	dcfg := DegradedConfig{}.withDefaults(cfg.Flex)
	o := &Online{
		cfg:  cfg,
		dcfg: dcfg,
		// One engine for the judge's lifetime: its scratch pool makes the
		// steady-state per-tick correlation pass allocation-lean.
		engine: cfg.Engine(),
		proc:   NewProcessor(kpis, dbs, cfg.Flex.MaxWindow()),
		flex:   flex,
	}
	if cfg.Active != nil {
		if len(cfg.Active) != dbs {
			return nil, fmt.Errorf("monitor: active mask has %d entries for %d databases", len(cfg.Active), dbs)
		}
		o.userActive = append([]bool(nil), cfg.Active...)
	}
	if cfg.Streaming && cfg.Measure == nil {
		opts := correlate.DetectionOptions()
		if cfg.KCDOptions != nil {
			opts = *cfg.KCDOptions
		}
		stream, err := correlate.NewStream(kpis, dbs, opts, cfg.Flex.MaxWindow())
		if err != nil {
			return nil, err
		}
		o.stream = stream
		o.streamMats = make([]*correlate.Matrix, kpis)
		for k := range o.streamMats {
			o.streamMats[k] = correlate.NewMatrix(dbs)
		}
		o.streamJudge = detect.NewJudgeScratch()
		back := make([]float64, kpis*dbs)
		o.streamSample = make([][]float64, kpis)
		for k := range o.streamSample {
			o.streamSample[k] = back[k*dbs : (k+1)*dbs]
		}
	}
	o.initDegraded(dbs)
	return o, nil
}

func (o *Online) initDegraded(dbs int) {
	o.autoDown = make([]bool, dbs)
	o.silentHist = make([][]bool, o.dcfg.BudgetWindow)
	for i := range o.silentHist {
		o.silentHist[i] = make([]bool, dbs)
	}
	o.histIdx = 0
	o.histFilled = 0
	o.silentCount = make([]int, dbs)
	o.cleanStreak = make([]int, dbs)
	o.silentTick = make([]bool, dbs)
	o.effActive = make([]bool, dbs)
}

// Processor exposes the underlying queues (for inspection endpoints).
func (o *Online) Processor() *Processor { return o.proc }

// Thresholds returns the active judgment thresholds.
func (o *Online) Thresholds() window.Thresholds {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cfg.Thresholds.Clone()
}

// SetDegraded overrides the self-healing configuration. Zero fields take
// their defaults. It resets the rolling gap accounting, so call it before
// streaming starts.
func (o *Online) SetDegraded(dcfg DegradedConfig) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	dcfg = dcfg.withDefaults(o.cfg.Flex)
	if dcfg.GapBudget >= 1 {
		return fmt.Errorf("monitor: gap budget %v must be below 1", dcfg.GapBudget)
	}
	o.dcfg = dcfg
	_, dbs := o.proc.Shape()
	o.initDegraded(dbs)
	return nil
}

// Health snapshots the degraded-mode counters.
func (o *Online) Health() HealthStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.healthLocked()
}

func (o *Online) healthLocked() HealthStats {
	gapCells, missed := o.proc.GapStats()
	return HealthStats{
		GapCells:         gapCells,
		MissedTicks:      missed,
		Deactivations:    o.deactivations,
		Reactivations:    o.reactivations,
		DegradedVerdicts: o.degradedVerdicts,
		SkippedRounds:    o.skippedRounds,
		AutoDeactivated:  append([]bool(nil), o.autoDown...),
		SilentRecent:     append([]int(nil), o.silentCount...),
	}
}

// SetActive marks which databases currently participate (databases can be
// "flexibly expanded" or reduced, §III-B/§III-C: an unused database does
// not take part in the correlation level calculation and its scores read
// as 0). nil re-activates all databases. The gap budget's automatic
// deactivations overlay this mask.
func (o *Online) SetActive(active []bool) error {
	_, dbs := o.proc.Shape()
	if active != nil && len(active) != dbs {
		return fmt.Errorf("monitor: active mask has %d entries for %d databases", len(active), dbs)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if active == nil {
		o.userActive = nil
		return nil
	}
	o.userActive = append(o.userActive[:0], active...)
	return nil
}

// SetPrimary follows a failover: R-R-typed KPIs are judged among replicas
// only, so the detector must know which database is currently primary.
func (o *Online) SetPrimary(db int) error {
	_, dbs := o.proc.Shape()
	if db < 0 || db >= dbs {
		return fmt.Errorf("monitor: primary %d out of %d databases", db, dbs)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg.Primary = db
	return nil
}

// SetThresholds swaps the judgment thresholds (used by the online feedback
// module after retraining).
func (o *Online) SetThresholds(t window.Thresholds) error {
	kpis, _ := o.proc.Shape()
	if err := t.Validate(kpis); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.setThresholdsLocked(t)
}

func (o *Online) setThresholdsLocked(t window.Thresholds) error {
	o.cfg.Thresholds = t.Clone()
	if o.persister != nil {
		// Persist under the same mutex that guards Push: the durable
		// order of threshold records matches the order rounds saw them.
		o.persister.PersistThresholds(o.cfg.Thresholds.Clone(), PersistContext{o})
	}
	return nil
}

// recordTick folds one tick's per-database silent flags into the rolling
// budget accounting and flips the automatic activation overlay.
func (o *Online) recordTick(silent []bool) {
	_, dbs := o.proc.Shape()
	slot := o.silentHist[o.histIdx]
	for d := 0; d < dbs; d++ {
		if o.histFilled == len(o.silentHist) && slot[d] {
			o.silentCount[d]--
		}
		slot[d] = silent[d]
		if silent[d] {
			o.silentCount[d]++
			o.cleanStreak[d] = 0
		} else {
			o.cleanStreak[d]++
		}
	}
	o.histIdx = (o.histIdx + 1) % len(o.silentHist)
	if o.histFilled < len(o.silentHist) {
		o.histFilled++
	}
	budget := o.dcfg.GapBudget * float64(o.dcfg.BudgetWindow)
	for d := 0; d < dbs; d++ {
		switch {
		case !o.autoDown[d] && float64(o.silentCount[d]) > budget:
			o.autoDown[d] = true
			o.deactivations++
		// Re-activation needs the budget back under threshold too: right
		// after an outage the rolling window still holds the old silent
		// ticks, and a clean streak alone would flap deactivate/reactivate
		// until they age out.
		case o.autoDown[d] && o.cleanStreak[d] >= o.dcfg.RecoverTicks &&
			float64(o.silentCount[d]) <= budget:
			o.autoDown[d] = false
			o.reactivations++
		}
	}
}

// effectiveActive merges the user mask with the automatic overlay. It
// returns nil (all active) when neither masks anything; the returned slice
// is a reused scratch valid until the next call.
func (o *Online) effectiveActive() []bool {
	masked := false
	for d := range o.effActive {
		a := (o.userActive == nil || o.userActive[d]) && !o.autoDown[d]
		o.effActive[d] = a
		if !a {
			masked = true
		}
	}
	if !masked {
		return nil
	}
	return o.effActive
}

func countActive(active []bool, dbs int) int {
	if active == nil {
		return dbs
	}
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	return n
}

// topUpStream advances the streaming correlation state to cover the round
// prefix [roundStart, target) by replaying retained ticks from the rings.
// In steady state the stream already tracks the round and exactly one tick
// (the one that just arrived) is pushed — the O(1) path. After a round
// boundary, a resync, or a state restore the stream's base no longer
// matches the round start, so it is reset and the whole prefix replayed
// (bounded by the window size, and by ring capacity overall).
func (o *Online) topUpStream(target int) error {
	if o.stream.Base() != o.roundStart || o.stream.End() > target {
		o.stream.ResetAt(o.roundStart)
	}
	for abs := o.stream.End(); abs < target; abs++ {
		if err := o.proc.tickInto(abs, o.streamSample); err != nil {
			return err
		}
		if err := o.stream.Push(o.streamSample); err != nil {
			return err
		}
	}
	return nil
}

// skipVerdict emits a HealthSkipped verdict covering [start, start+size)
// and resets the round machinery.
func (o *Online) skipVerdict(start, size int) *Verdict {
	v := &Verdict{Tick: o.proc.Ticks(), MeanCorr: math.NaN()}
	v.Start = start
	v.Size = size
	v.AbnormalDB = -1
	v.Expansions = o.expansions
	v.Health = detect.HealthSkipped
	o.flex.Reset()
	o.expansions = 0
	o.skippedRounds++
	return v
}

// Push ingests one collection tick and, if enough points have accumulated
// to finish the current judgment round, returns its verdict (nil
// otherwise). A nil sample records a wholly-missed collection tick.
//
// Push never wedges: when a collector outage evicts the current round's
// window start, the round is abandoned with a HealthSkipped verdict
// covering the lost range and detection resynchronizes to the oldest
// retained tick; when too few databases remain active to correlate, the
// round is likewise skipped and the stream advances.
func (o *Online) Push(sample [][]float64) (*Verdict, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v, err := o.pushLocked(sample)
	if v != nil && o.persister != nil {
		o.persister.PersistVerdict(v, PersistContext{o})
	}
	return v, err
}

func (o *Online) pushLocked(sample [][]float64) (*Verdict, error) {
	if _, err := o.proc.IngestDegraded(sample, o.silentTick); err != nil {
		return nil, err
	}
	o.recordTick(o.silentTick)
	// Self-heal: a round whose window start fell off the rings (e.g. the
	// feeder outpaced a stalled judge, or ingestion bypassed Push) can
	// never be judged; skip the lost range and resynchronize. The new
	// round starts one past the oldest retained tick: once the rings are
	// full, eviction advances one tick per push, so resyncing to exactly
	// the oldest tick would lose the race and skip forever.
	if oldest := o.proc.Oldest(); o.roundStart < oldest {
		newStart := oldest + 1
		v := o.skipVerdict(o.roundStart, newStart-o.roundStart)
		o.roundStart = newStart
		return v, nil
	}
	size := o.flex.Size()
	if o.stream != nil {
		// Keep the rolling statistics current on every push — the O(1)
		// amortized streaming path — but never past the round's window.
		target := o.roundStart + size
		if t := o.proc.Ticks(); t < target {
			target = t
		}
		if err := o.topUpStream(target); err != nil {
			return nil, err
		}
	}
	if o.proc.Ticks() < o.roundStart+size {
		return nil, nil // detection task blocked until the window fills
	}
	kpis, dbs := o.proc.Shape()
	active := o.effectiveActive()
	if countActive(active, dbs) < 2 {
		// Correlation-based judgment needs at least one peer pair.
		v := o.skipVerdict(o.roundStart, size)
		o.roundStart += size
		return v, nil
	}
	cfg := o.cfg
	cfg.Active = active
	var (
		mats     []*correlate.Matrix
		gapCells int
		states   []window.State
	)
	if o.stream != nil {
		// The top-up above left the stream covering exactly this round's
		// window; score it straight from the rolling statistics.
		gapCells = o.stream.GapCells()
		if err := o.stream.ScoreInto(o.streamMats, active); err != nil {
			return nil, err
		}
		mats = o.streamMats
		states = o.streamJudge.Judge(mats, cfg, kpis, dbs)
	} else {
		u, stats, err := o.proc.WindowWithStats(o.roundStart, size)
		if err != nil {
			return nil, err
		}
		if mats, err = o.engine.BuildMatrices(u, 0, size, active); err != nil {
			return nil, err
		}
		gapCells = stats.Gaps
		states = detect.JudgeMatrices(mats, cfg, kpis, dbs)
	}
	round := detect.RoundState(states)
	final, done := o.flex.Resolve(round)
	if !done {
		o.expansions++
		return nil, nil // window expanded; wait for Δ more points
	}
	exhausted := round == window.Observable && final == o.cfg.Flex.ExhaustState && !o.cfg.Flex.Disabled
	finals := detect.FinalizeStates(states, o.cfg.Flex, exhausted)
	o.observeShadow(mats, finals, cfg, kpis, dbs)
	v := &Verdict{Tick: o.proc.Ticks(), GapCells: gapCells, MeanCorr: meanPairScore(mats, active)}
	v.Start = o.roundStart
	v.Size = size
	v.Expansions = o.expansions
	v.States = finals
	v.AbnormalDB = -1
	for d, s := range finals {
		if s == window.Abnormal {
			v.Abnormal = true
			if v.AbnormalDB == -1 {
				v.AbnormalDB = d
			}
		}
	}
	if gapCells > 0 || anyTrue(o.autoDown) {
		v.Health = detect.HealthDegraded
		o.degradedVerdicts++
	}
	o.roundStart += size
	o.flex.Reset()
	o.expansions = 0
	return v, nil
}

func anyTrue(v []bool) bool {
	for _, b := range v {
		if b {
			return true
		}
	}
	return false
}
