// Package monitor implements DBCatcher's data processing module (§III-A):
// per-(KPI, database) queues fed by a collector at 5-second intervals, and
// an online streaming judge that runs the flexible-window detection as
// points arrive, waiting for more data whenever a round is "observable".
package monitor

import (
	"fmt"
	"sync"

	"dbcatcher/internal/correlate"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/window"
)

// Processor maintains the per-KPI, per-database observation queues. The
// paper's module keeps one queue per KPI per database; Processor uses
// fixed-capacity rings sized to cover the maximum detection window. It is
// safe for concurrent use.
type Processor struct {
	mu    sync.Mutex
	kpis  int
	dbs   int
	rings [][]*timeseries.Ring
	total int // points ingested since start
}

// NewProcessor allocates queues for the given shape; capacity is the ring
// depth and must cover the maximum window plus any judgment lag.
func NewProcessor(kpis, dbs, capacity int) *Processor {
	if kpis <= 0 || dbs <= 0 {
		panic("monitor: non-positive shape")
	}
	p := &Processor{kpis: kpis, dbs: dbs}
	p.rings = make([][]*timeseries.Ring, kpis)
	for k := range p.rings {
		p.rings[k] = make([]*timeseries.Ring, dbs)
		for d := range p.rings[k] {
			p.rings[k][d] = timeseries.NewRing(capacity)
		}
	}
	return p
}

// Shape returns the configured KPI and database counts.
func (p *Processor) Shape() (kpis, dbs int) { return p.kpis, p.dbs }

// Ticks returns the number of samples ingested so far.
func (p *Processor) Ticks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Ingest adds one collection tick: sample[k][d] is KPI k's value on
// database d.
func (p *Processor) Ingest(sample [][]float64) error {
	if len(sample) != p.kpis {
		return fmt.Errorf("monitor: sample has %d KPI rows, want %d", len(sample), p.kpis)
	}
	for k, row := range sample {
		if len(row) != p.dbs {
			return fmt.Errorf("monitor: KPI %d row has %d databases, want %d", k, len(row), p.dbs)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, row := range sample {
		for d, v := range row {
			p.rings[k][d].Push(v)
		}
	}
	p.total++
	return nil
}

// Window materializes the series covering the absolute tick range
// [start, start+size) as a UnitSeries. It fails when the range has been
// evicted from the rings or has not arrived yet.
func (p *Processor) Window(start, size int) (*timeseries.UnitSeries, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if size <= 0 {
		return nil, fmt.Errorf("monitor: non-positive window size %d", size)
	}
	if start+size > p.total {
		return nil, fmt.Errorf("monitor: window [%d, %d) not yet collected (have %d)", start, start+size, p.total)
	}
	oldest := p.total - p.rings[0][0].Len()
	if start < oldest {
		return nil, fmt.Errorf("monitor: window start %d evicted (oldest %d)", start, oldest)
	}
	u := timeseries.NewUnitSeries("live", p.kpis, p.dbs)
	for k := 0; k < p.kpis; k++ {
		for d := 0; d < p.dbs; d++ {
			ring := p.rings[k][d]
			// Ring index 0 is absolute tick `oldest`.
			vals := make([]float64, size)
			for i := 0; i < size; i++ {
				vals[i] = ring.At(start - oldest + i)
			}
			u.Data[k][d].Values = vals
		}
	}
	return u, nil
}

// Verdict augments a detection verdict with collection bookkeeping.
type Verdict struct {
	detect.Verdict
	// Tick is the absolute collection tick at which the round completed.
	Tick int
}

// Online couples a Processor with the streaming judgment loop: push one
// sample per tick and receive a verdict whenever a round resolves. When a
// round is Observable, Online simply waits for Δ more points — the
// "DBCatcher waits for data points" behaviour of §III-C.
type Online struct {
	cfg        detect.Config
	engine     *correlate.Engine
	proc       *Processor
	flex       *window.Flex
	roundStart int
	expansions int
}

// NewOnline builds a streaming judge for the given shape. The processor's
// ring capacity is sized to the maximum window automatically.
func NewOnline(cfg detect.Config, kpis, dbs int) (*Online, error) {
	if cfg.Flex == (window.FlexConfig{}) {
		cfg.Flex = window.DefaultFlexConfig()
	}
	if err := cfg.Flex.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Thresholds.Validate(kpis); err != nil {
		return nil, err
	}
	flex, err := window.NewFlex(cfg.Flex)
	if err != nil {
		return nil, err
	}
	// Capacity: the max window plus one expansion step of slack.
	capacity := cfg.Flex.Max + cfg.Flex.Initial
	return &Online{
		cfg: cfg,
		// One engine for the judge's lifetime: its scratch pool makes the
		// steady-state per-tick correlation pass allocation-lean.
		engine: cfg.Engine(),
		proc:   NewProcessor(kpis, dbs, capacity),
		flex:   flex,
	}, nil
}

// Processor exposes the underlying queues (for inspection endpoints).
func (o *Online) Processor() *Processor { return o.proc }

// Thresholds returns the active judgment thresholds.
func (o *Online) Thresholds() window.Thresholds { return o.cfg.Thresholds.Clone() }

// SetActive marks which databases currently participate (databases can be
// "flexibly expanded" or reduced, §III-B/§III-C: an unused database does
// not take part in the correlation level calculation and its scores read
// as 0). nil re-activates all databases.
func (o *Online) SetActive(active []bool) error {
	_, dbs := o.proc.Shape()
	if active != nil && len(active) != dbs {
		return fmt.Errorf("monitor: active mask has %d entries for %d databases", len(active), dbs)
	}
	if active == nil {
		o.cfg.Active = nil
		return nil
	}
	o.cfg.Active = append([]bool(nil), active...)
	return nil
}

// SetPrimary follows a failover: R-R-typed KPIs are judged among replicas
// only, so the detector must know which database is currently primary.
func (o *Online) SetPrimary(db int) error {
	_, dbs := o.proc.Shape()
	if db < 0 || db >= dbs {
		return fmt.Errorf("monitor: primary %d out of %d databases", db, dbs)
	}
	o.cfg.Primary = db
	return nil
}

// SetThresholds swaps the judgment thresholds (used by the online feedback
// module after retraining).
func (o *Online) SetThresholds(t window.Thresholds) error {
	kpis, _ := o.proc.Shape()
	if err := t.Validate(kpis); err != nil {
		return err
	}
	o.cfg.Thresholds = t.Clone()
	return nil
}

// Push ingests one collection tick and, if enough points have accumulated
// to finish the current judgment round, returns its verdict (nil
// otherwise).
func (o *Online) Push(sample [][]float64) (*Verdict, error) {
	if err := o.proc.Ingest(sample); err != nil {
		return nil, err
	}
	size := o.flex.Size()
	if o.proc.Ticks() < o.roundStart+size {
		return nil, nil // detection task blocked until the window fills
	}
	u, err := o.proc.Window(o.roundStart, size)
	if err != nil {
		return nil, err
	}
	kpis, dbs := o.proc.Shape()
	mats, err := o.engine.BuildMatrices(u, 0, size, o.cfg.Active)
	if err != nil {
		return nil, err
	}
	states := detect.JudgeMatrices(mats, o.cfg, kpis, dbs)
	round := detect.RoundState(states)
	final, done := o.flex.Resolve(round)
	if !done {
		o.expansions++
		return nil, nil // window expanded; wait for Δ more points
	}
	exhausted := round == window.Observable && final == o.cfg.Flex.ExhaustState && !o.cfg.Flex.Disabled
	finals := detect.FinalizeStates(states, o.cfg.Flex, exhausted)
	v := &Verdict{Tick: o.proc.Ticks()}
	v.Start = o.roundStart
	v.Size = size
	v.Expansions = o.expansions
	v.States = finals
	v.AbnormalDB = -1
	for d, s := range finals {
		if s == window.Abnormal {
			v.Abnormal = true
			if v.AbnormalDB == -1 {
				v.AbnormalDB = d
			}
		}
	}
	o.roundStart += size
	o.flex.Reset()
	o.expansions = 0
	return v, nil
}
