package monitor

import (
	"encoding/json"
	"reflect"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func persistTestUnit(t *testing.T, faulty bool) *cluster.Unit {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "p", Ticks: 300, Seed: 91, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty {
		if _, err := anomaly.Inject(u, []anomaly.Event{
			{Type: anomaly.Stall, DB: 1, Start: 140, Length: 30, Magnitude: 0.9},
		}, mathx.NewRNG(3)); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func persistTestOnline(t *testing.T) *Online {
	t.Helper()
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.FlexConfig{Initial: 10, Max: 30, ExhaustState: window.Abnormal},
		Workers:    1,
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// pushRange streams ticks [from, to) of u (with a missed tick every 71)
// and returns the published verdicts.
func pushRange(t *testing.T, o *Online, u *cluster.Unit, from, to int) []*Verdict {
	t.Helper()
	var out []*Verdict
	for tick := from; tick < to; tick++ {
		var sample [][]float64
		if tick%71 != 13 {
			sample = make([][]float64, u.Series.KPIs)
			for k := range sample {
				sample[k] = make([]float64, u.Series.Databases)
				for d := range sample[k] {
					sample[k][d] = u.Series.Data[k][d].At(tick)
				}
			}
		}
		v, err := o.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

// An export taken mid-stream (and round-tripped through JSON, as the
// snapshot file does) must restore into a judge that continues with
// verdicts identical to the uninterrupted original — healthy and faulty
// streams alike.
func TestExportRestoreContinuesIdentically(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		name := map[bool]string{false: "healthy", true: "faulty"}[faulty]
		t.Run(name, func(t *testing.T) {
			u := persistTestUnit(t, faulty)
			ref := persistTestOnline(t)
			refVerdicts := pushRange(t, ref, u, 0, 300)
			if faulty {
				sawAbnormal := false
				for _, v := range refVerdicts {
					sawAbnormal = sawAbnormal || v.Abnormal
				}
				if !sawAbnormal {
					t.Fatal("faulty stream produced no abnormal verdict; test is vacuous")
				}
			}

			// Replay the first half on a second judge, export mid-round,
			// and JSON round-trip the state.
			first := persistTestOnline(t)
			firstVerdicts := pushRange(t, first, u, 0, 157)
			st := first.ExportState()
			buf, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var decoded PersistentState
			if err := json.Unmarshal(buf, &decoded); err != nil {
				t.Fatal(err)
			}

			second := persistTestOnline(t)
			if err := second.RestoreState(&decoded); err != nil {
				t.Fatal(err)
			}
			secondVerdicts := pushRange(t, second, u, 157, 300)

			all := append(verdictPtrsToValues(firstVerdicts), verdictPtrsToValues(secondVerdicts)...)
			want := verdictPtrsToValues(refVerdicts)
			if !reflect.DeepEqual(all, want) {
				t.Fatalf("stitched run diverged:\n got  %+v\n want %+v", all, want)
			}
			gotH, wantH := second.Health(), ref.Health()
			if !reflect.DeepEqual(gotH, wantH) {
				t.Fatalf("health diverged:\n got  %+v\n want %+v", gotH, wantH)
			}
		})
	}
}

func verdictPtrsToValues(vs []*Verdict) []Verdict {
	out := make([]Verdict, len(vs))
	for i, v := range vs {
		out[i] = *v
	}
	return out
}

func TestRestoreStateValidation(t *testing.T) {
	u := persistTestUnit(t, false)
	o := persistTestOnline(t)
	pushRange(t, o, u, 0, 100)
	good := o.ExportState()

	cases := []struct {
		name   string
		mutate func(st *PersistentState)
	}{
		{"shape mismatch", func(st *PersistentState) { st.DBs = 7 }},
		{"flex mismatch", func(st *PersistentState) { st.Flex.Initial = 11 }},
		{"bad thresholds", func(st *PersistentState) { st.Thresholds.Alpha = st.Thresholds.Alpha[:2] }},
		{"over-capacity retention", func(st *PersistentState) { st.Oldest = st.Tick - 1000 }},
		{"negative oldest span", func(st *PersistentState) { st.Oldest = st.Tick + 1 }},
		{"ring count", func(st *PersistentState) { st.Rings = st.Rings[:3] }},
		{"ring length", func(st *PersistentState) { st.Rings[0].Values = st.Rings[0].Values[:1] }},
		{"round start ahead of stream", func(st *PersistentState) { st.RoundStart = st.Tick + 5 }},
		{"negative round start", func(st *PersistentState) { st.RoundStart = -1 }},
		{"active mask length", func(st *PersistentState) { st.UserActive = []bool{true} }},
		{"flex size off-sequence", func(st *PersistentState) { st.FlexSize = 17 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Each case gets a fresh deep copy via JSON.
			buf, err := json.Marshal(good)
			if err != nil {
				t.Fatal(err)
			}
			var st PersistentState
			if err := json.Unmarshal(buf, &st); err != nil {
				t.Fatal(err)
			}
			tc.mutate(&st)
			if err := persistTestOnline(t).RestoreState(&st); err == nil {
				t.Fatal("invalid state accepted")
			}
		})
	}

	if err := persistTestOnline(t).RestoreState(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	// The unmutated export still restores.
	if err := persistTestOnline(t).RestoreState(good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

// A degraded-config change between export and restore keeps the cumulative
// counters but reinitializes the rolling accounting instead of failing.
func TestRestoreStateDegradedShapeMismatch(t *testing.T) {
	u := persistTestUnit(t, false)
	o := persistTestOnline(t)
	pushRange(t, o, u, 0, 100)
	st := o.ExportState()

	o2 := persistTestOnline(t)
	if err := o2.SetDegraded(DegradedConfig{BudgetWindow: 7}); err != nil {
		t.Fatal(err)
	}
	if err := o2.RestoreState(st); err != nil {
		t.Fatalf("restore across a degraded-config change failed: %v", err)
	}
	h := o2.Health()
	if h.GapCells != st.GapCells || h.MissedTicks != st.MissedTicks {
		t.Fatalf("cumulative counters lost: %+v", h)
	}
	if len(h.SilentRecent) != 5 {
		t.Fatalf("rolling accounting not reinitialized: %+v", h.SilentRecent)
	}
}

// recordingPersister exercises the hook contract: PersistContext accessors
// must be usable from inside the hook (where the judge's mutex is held).
type recordingPersister struct {
	verdicts   []Verdict
	ticks      []int
	thresholds []window.Thresholds
	exports    []*PersistentState
}

func (r *recordingPersister) PersistVerdict(v *Verdict, ctx PersistContext) {
	r.verdicts = append(r.verdicts, *v)
	r.ticks = append(r.ticks, ctx.Tick())
	r.exports = append(r.exports, ctx.Export())
	_ = ctx.Health()
}

func (r *recordingPersister) PersistThresholds(t window.Thresholds, ctx PersistContext) {
	r.thresholds = append(r.thresholds, t)
	_ = ctx.Export()
	_ = ctx.Health()
	_ = ctx.Tick()
}

func TestPersisterHooksFireUnderLock(t *testing.T) {
	u := persistTestUnit(t, false)
	o := persistTestOnline(t)
	rec := &recordingPersister{}
	o.SetPersister(rec)

	verdicts := pushRange(t, o, u, 0, 120)
	if len(verdicts) == 0 {
		t.Fatal("no verdicts published")
	}
	if len(rec.verdicts) != len(verdicts) {
		t.Fatalf("hook saw %d verdicts, judge published %d", len(rec.verdicts), len(verdicts))
	}
	for i, v := range verdicts {
		if !reflect.DeepEqual(rec.verdicts[i], *v) {
			t.Fatalf("hook verdict %d diverged", i)
		}
		if rec.ticks[i] != v.Tick {
			t.Fatalf("hook %d saw tick %d, verdict says %d", i, rec.ticks[i], v.Tick)
		}
		if rec.exports[i].Tick != v.Tick {
			t.Fatalf("hook %d export tick %d, want %d", i, rec.exports[i].Tick, v.Tick)
		}
	}

	th := o.Thresholds()
	th.Theta = 0.31
	if err := o.SetThresholds(th); err != nil {
		t.Fatal(err)
	}
	if len(rec.thresholds) != 1 || rec.thresholds[0].Theta != 0.31 {
		t.Fatalf("threshold hook saw %+v", rec.thresholds)
	}

	// Detach: no further hook calls.
	o.SetPersister(nil)
	n := len(rec.verdicts)
	pushRange(t, o, u, 120, 180)
	if len(rec.verdicts) != n {
		t.Fatal("detached persister still invoked")
	}
}

// The export must not alias live judge state: mutating the snapshot later
// cannot corrupt the running judge.
func TestExportStateIsDeepCopy(t *testing.T) {
	u := persistTestUnit(t, false)
	o := persistTestOnline(t)
	pushRange(t, o, u, 0, 50)
	st := o.ExportState()
	st.Thresholds.Alpha[0] = -99
	for i := range st.Rings {
		for j := range st.Rings[i].Values {
			st.Rings[i].Values[j] = -1
		}
	}
	if o.Thresholds().Alpha[0] == -99 {
		t.Fatal("export aliases live thresholds")
	}
	// The judge still resolves rounds identically to a fresh reference.
	got := verdictPtrsToValues(pushRange(t, o, u, 50, 150))
	ref := persistTestOnline(t)
	want := verdictPtrsToValues(pushRange(t, ref, u, 0, 150))
	tail := want[len(want)-len(got):]
	if !reflect.DeepEqual(got, tail) {
		t.Fatalf("judge corrupted by snapshot mutation:\n got  %+v\n want %+v", got, tail)
	}
}
