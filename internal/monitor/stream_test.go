package monitor

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// onlineVerdictsEqual compares two online verdict streams. States and all
// bookkeeping must match exactly; MeanCorr carries the streaming tier's
// documented fast-math bound, so it is compared within tolerance.
func onlineVerdictsEqual(t *testing.T, got, want []*Verdict) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("verdict count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Start != w.Start || g.Size != w.Size || g.Tick != w.Tick ||
			g.Abnormal != w.Abnormal || g.AbnormalDB != w.AbnormalDB ||
			g.Expansions != w.Expansions || g.Health != w.Health ||
			g.GapCells != w.GapCells {
			t.Fatalf("verdict %d: got %+v, want %+v", i, g, w)
		}
		if !reflect.DeepEqual(g.States, w.States) {
			t.Fatalf("verdict %d states: got %v, want %v", i, g.States, w.States)
		}
		switch {
		case math.IsNaN(w.MeanCorr):
			if !math.IsNaN(g.MeanCorr) {
				t.Fatalf("verdict %d MeanCorr %v, want NaN", i, g.MeanCorr)
			}
		case math.Abs(g.MeanCorr-w.MeanCorr) > 1e-9:
			t.Fatalf("verdict %d MeanCorr %v, want %v", i, g.MeanCorr, w.MeanCorr)
		}
	}
}

func streamOnline(t *testing.T, streaming bool) *Online {
	t.Helper()
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Workers:    1,
		Streaming:  streaming,
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestOnlineStreamingMatchesDefault feeds identical clean units — one
// healthy, one with an injected stall — through a default and a streaming
// judge and requires matching verdict streams.
func TestOnlineStreamingMatchesDefault(t *testing.T) {
	for _, inject := range []bool{false, true} {
		name := map[bool]string{false: "healthy", true: "anomalous"}[inject]
		t.Run(name, func(t *testing.T) {
			u, err := cluster.Simulate(cluster.Config{
				Name: "u", Ticks: 420, Seed: 77, Profile: workload.TencentIrregular,
				FluctuationRate: 0.2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if inject {
				if _, err := anomaly.Inject(u, []anomaly.Event{
					{Type: anomaly.Stall, DB: 2, Start: 180, Length: 40, Magnitude: 0.9},
				}, mathx.NewRNG(5)); err != nil {
					t.Fatal(err)
				}
			}
			exact := feedOnline(t, streamOnline(t, false), u)
			streamed := feedOnline(t, streamOnline(t, true), u)
			if len(exact) == 0 {
				t.Fatal("no verdicts")
			}
			onlineVerdictsEqual(t, streamed, exact)
			if inject {
				saw := false
				for _, v := range streamed {
					saw = saw || v.Abnormal
				}
				if !saw {
					t.Fatal("streaming judge missed the injected stall")
				}
			}
		})
	}
}

// TestOnlineStreamingCollectorFaults drives both judges through a lossy
// collector — dropped ticks, lost cells, a long silence that trips the gap
// budget. Gap-bearing windows route through the exact kernel in both tiers,
// so verdicts and health accounting must match.
func TestOnlineStreamingCollectorFaults(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 600, Seed: 91, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := workload.FaultPlan{
		Seed:         13,
		DropTickRate: 0.02,
		DropCellRate: 0.01,
		Silences:     []workload.Silence{{DB: 3, Start: 200, Length: 120}},
	}
	exactJudge := streamOnline(t, false)
	exact, errs := feedCollector(t, exactJudge, u, plan)
	if len(errs) > 0 {
		t.Fatalf("default judge errored: %v", errs[0])
	}
	streamJudge := streamOnline(t, true)
	streamed, errs := feedCollector(t, streamJudge, u, plan)
	if len(errs) > 0 {
		t.Fatalf("streaming judge errored: %v", errs[0])
	}
	onlineVerdictsEqual(t, streamed, exact)
	if !reflect.DeepEqual(streamJudge.Health(), exactJudge.Health()) {
		t.Fatalf("health diverged:\n got  %+v\n want %+v",
			streamJudge.Health(), exactJudge.Health())
	}
}

func streamPersistOnline(t *testing.T) *Online {
	t.Helper()
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.FlexConfig{Initial: 10, Max: 30, ExhaustState: window.Abnormal},
		Workers:    1,
		Streaming:  true,
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestOnlineStreamingExportRestore checks the persistence contract for the
// streaming tier: restored rolling statistics start cold and are rebuilt
// from the restored rings, so a stitched export/restore run is bit-identical
// to the uninterrupted one (the stream always replays ring contents, never
// live samples).
func TestOnlineStreamingExportRestore(t *testing.T) {
	u := persistTestUnit(t, true)
	ref := streamPersistOnline(t)
	refVerdicts := pushRange(t, ref, u, 0, 300)
	if len(refVerdicts) == 0 {
		t.Fatal("no verdicts")
	}

	first := streamPersistOnline(t)
	firstVerdicts := pushRange(t, first, u, 0, 157)
	buf, err := json.Marshal(first.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var decoded PersistentState
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	second := streamPersistOnline(t)
	if err := second.RestoreState(&decoded); err != nil {
		t.Fatal(err)
	}
	secondVerdicts := pushRange(t, second, u, 157, 300)

	all := append(verdictPtrsToValues(firstVerdicts), verdictPtrsToValues(secondVerdicts)...)
	want := verdictPtrsToValues(refVerdicts)
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("stitched streaming run diverged:\n got  %+v\n want %+v", all, want)
	}
}

// TestOnlineStreamingResync forces an eviction-driven resync (feeding the
// processor behind the judge's back) and checks the streaming judge emits
// the skip verdict and recovers onto fresh rolling state.
func TestOnlineStreamingResync(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 400, Seed: 55, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := streamOnline(t, true)
	sample := make([][]float64, u.Series.KPIs)
	for k := range sample {
		sample[k] = make([]float64, u.Series.Databases)
	}
	stage := func(tick int) [][]float64 {
		for k := range sample {
			for d := range sample[k] {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		return sample
	}
	// Bypass the judge for long enough that tick 0 (the pending round
	// start) is evicted from the rings.
	cap := o.proc.rings[0][0].Cap()
	tick := 0
	for ; tick < cap+5; tick++ {
		if _, err := o.proc.IngestDegraded(stage(tick), nil); err != nil {
			t.Fatal(err)
		}
	}
	var verdicts []*Verdict
	for ; tick < 400; tick++ {
		v, err := o.Push(stage(tick))
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			verdicts = append(verdicts, v)
		}
	}
	if len(verdicts) < 2 {
		t.Fatalf("want a skip verdict plus judged rounds, got %d verdicts", len(verdicts))
	}
	if verdicts[0].Health != detect.HealthSkipped {
		t.Fatalf("first verdict after eviction %+v, want HealthSkipped", verdicts[0])
	}
	for _, v := range verdicts[1:] {
		if v.Health == detect.HealthSkipped {
			t.Fatalf("streaming judge kept skipping after resync: %+v", v)
		}
	}
}
