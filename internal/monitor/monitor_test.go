package monitor

import (
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func TestProcessorIngestAndWindow(t *testing.T) {
	p := NewProcessor(2, 3, 10)
	if k, d := p.Shape(); k != 2 || d != 3 {
		t.Fatal("shape wrong")
	}
	for i := 0; i < 5; i++ {
		sample := [][]float64{
			{float64(i), float64(i + 10), float64(i + 20)},
			{float64(i + 30), float64(i + 40), float64(i + 50)},
		}
		if err := p.Ingest(sample); err != nil {
			t.Fatal(err)
		}
	}
	if p.Ticks() != 5 {
		t.Fatalf("Ticks = %d", p.Ticks())
	}
	u, err := p.Window(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Series(0, 0).At(0) != 1 || u.Series(1, 2).At(2) != 53 {
		t.Fatalf("window values wrong: %v / %v", u.Series(0, 0).Values, u.Series(1, 2).Values)
	}
}

func TestProcessorIngestValidation(t *testing.T) {
	p := NewProcessor(2, 2, 4)
	if err := p.Ingest([][]float64{{1, 2}}); err == nil {
		t.Fatal("short sample should fail")
	}
	if err := p.Ingest([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged sample should fail")
	}
}

func TestProcessorWindowErrors(t *testing.T) {
	p := NewProcessor(1, 1, 4)
	for i := 0; i < 8; i++ {
		p.Ingest([][]float64{{float64(i)}})
	}
	// Only ticks 4..7 remain.
	if _, err := p.Window(2, 3); err == nil {
		t.Fatal("evicted window should fail")
	}
	if _, err := p.Window(6, 5); err == nil {
		t.Fatal("future window should fail")
	}
	if _, err := p.Window(5, 0); err == nil {
		t.Fatal("zero size should fail")
	}
	u, err := p.Window(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.Series(0, 0).At(0) != 4 {
		t.Fatal("oldest retained value wrong")
	}
}

// feedOnline streams a simulated unit through the online judge and
// collects verdicts.
func feedOnline(t *testing.T, o *Online, u *cluster.Unit) []*Verdict {
	t.Helper()
	n := u.Series.Len()
	var verdicts []*Verdict
	sample := make([][]float64, u.Series.KPIs)
	for k := range sample {
		sample[k] = make([]float64, u.Series.Databases)
	}
	for tick := 0; tick < n; tick++ {
		for k := 0; k < u.Series.KPIs; k++ {
			for d := 0; d < u.Series.Databases; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		v, err := o.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			verdicts = append(verdicts, v)
		}
	}
	return verdicts
}

func TestOnlineMatchesOfflineOnHealthyUnit(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 400, Seed: 31, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}
	o, err := NewOnline(cfg, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	online := feedOnline(t, o, u)
	offline, _, err := detect.Run(u.Series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(online) != len(offline) {
		t.Fatalf("online %d verdicts vs offline %d", len(online), len(offline))
	}
	for i := range online {
		if online[i].Start != offline[i].Start || online[i].Size != offline[i].Size {
			t.Fatalf("verdict %d window mismatch: online [%d,%d) offline [%d,%d)",
				i, online[i].Start, online[i].Size, offline[i].Start, offline[i].Size)
		}
		if online[i].Abnormal != offline[i].Abnormal {
			t.Fatalf("verdict %d disagreement at window %d", i, online[i].Start)
		}
	}
}

func TestOnlineDetectsAnomalyAsItStreams(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 300, Seed: 32, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anomaly.Inject(u, []anomaly.Event{
		{Type: anomaly.Stall, DB: 3, Start: 120, Length: 40, Magnitude: 0.9},
	}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	o, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := feedOnline(t, o, u)
	found := false
	for _, v := range verdicts {
		if v.Abnormal && v.Start < 160 && v.Start+v.Size > 120 {
			found = true
			if v.AbnormalDB != 3 {
				t.Errorf("flagged db %d, want 3", v.AbnormalDB)
			}
			// The verdict must land promptly: at the tick the window
			// completed, not later.
			if v.Tick != v.Start+v.Size {
				t.Errorf("verdict tick %d, want %d", v.Tick, v.Start+v.Size)
			}
		}
	}
	if !found {
		t.Fatal("online judge missed the stall")
	}
}

func TestOnlineSetThresholds(t *testing.T) {
	o, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	th := o.Thresholds()
	th.Alpha[0] = 0.77
	if err := o.SetThresholds(th); err != nil {
		t.Fatal(err)
	}
	if o.Thresholds().Alpha[0] != 0.77 {
		t.Fatal("thresholds not swapped")
	}
	bad := th.Clone()
	bad.Alpha = bad.Alpha[:2]
	if err := o.SetThresholds(bad); err == nil {
		t.Fatal("invalid thresholds should be rejected")
	}
}

func TestNewOnlineValidation(t *testing.T) {
	if _, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(3)}, kpi.Count, 5); err == nil {
		t.Fatal("threshold/KPI mismatch should fail")
	}
	bad := detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.FlexConfig{Initial: 50, Max: 10},
	}
	if _, err := NewOnline(bad, kpi.Count, 5); err == nil {
		t.Fatal("invalid flex should fail")
	}
}

func TestNewProcessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProcessor(0, 5, 10)
}

func TestOnlineSetPrimaryFollowsFailover(t *testing.T) {
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetPrimary(3); err != nil {
		t.Fatal(err)
	}
	if err := o.SetPrimary(7); err == nil {
		t.Fatal("out-of-range primary should be rejected")
	}
	if err := o.SetPrimary(-1); err == nil {
		t.Fatal("negative primary should be rejected")
	}
}

func TestOnlineSetActiveExcludesDatabase(t *testing.T) {
	// A garbage database is ignored once deactivated, even while its data
	// keeps flowing.
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 200, Seed: 41, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wreck db4 completely.
	for k := 0; k < kpi.Count; k++ {
		vals := u.Series.Data[k][4].Values
		for i := range vals {
			vals[i] = float64((i*7 + k) % 13)
		}
	}
	o, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetActive([]bool{true, true, true, true, false}); err != nil {
		t.Fatal(err)
	}
	for _, v := range feedOnline(t, o, u) {
		if v.States[4] == window.Abnormal {
			t.Fatal("deactivated database was judged abnormal")
		}
	}
	// Validation.
	if err := o.SetActive([]bool{true}); err == nil {
		t.Fatal("wrong-length mask should be rejected")
	}
	if err := o.SetActive(nil); err != nil {
		t.Fatal(err)
	}
}
