package monitor

import (
	"math"
	"sync"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func TestProcessorIngestAndWindow(t *testing.T) {
	p := NewProcessor(2, 3, 10)
	if k, d := p.Shape(); k != 2 || d != 3 {
		t.Fatal("shape wrong")
	}
	for i := 0; i < 5; i++ {
		sample := [][]float64{
			{float64(i), float64(i + 10), float64(i + 20)},
			{float64(i + 30), float64(i + 40), float64(i + 50)},
		}
		if err := p.Ingest(sample); err != nil {
			t.Fatal(err)
		}
	}
	if p.Ticks() != 5 {
		t.Fatalf("Ticks = %d", p.Ticks())
	}
	u, err := p.Window(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Series(0, 0).At(0) != 1 || u.Series(1, 2).At(2) != 53 {
		t.Fatalf("window values wrong: %v / %v", u.Series(0, 0).Values, u.Series(1, 2).Values)
	}
}

func TestProcessorIngestValidation(t *testing.T) {
	p := NewProcessor(2, 2, 4)
	if err := p.Ingest([][]float64{{1, 2}}); err == nil {
		t.Fatal("short sample should fail")
	}
	if err := p.Ingest([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged sample should fail")
	}
}

func TestProcessorWindowErrors(t *testing.T) {
	p := NewProcessor(1, 1, 4)
	for i := 0; i < 8; i++ {
		p.Ingest([][]float64{{float64(i)}})
	}
	// Only ticks 4..7 remain.
	if _, err := p.Window(2, 3); err == nil {
		t.Fatal("evicted window should fail")
	}
	if _, err := p.Window(6, 5); err == nil {
		t.Fatal("future window should fail")
	}
	if _, err := p.Window(5, 0); err == nil {
		t.Fatal("zero size should fail")
	}
	u, err := p.Window(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.Series(0, 0).At(0) != 4 {
		t.Fatal("oldest retained value wrong")
	}
}

// feedOnline streams a simulated unit through the online judge and
// collects verdicts.
func feedOnline(t *testing.T, o *Online, u *cluster.Unit) []*Verdict {
	t.Helper()
	n := u.Series.Len()
	var verdicts []*Verdict
	sample := make([][]float64, u.Series.KPIs)
	for k := range sample {
		sample[k] = make([]float64, u.Series.Databases)
	}
	for tick := 0; tick < n; tick++ {
		for k := 0; k < u.Series.KPIs; k++ {
			for d := 0; d < u.Series.Databases; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		v, err := o.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			verdicts = append(verdicts, v)
		}
	}
	return verdicts
}

func TestOnlineMatchesOfflineOnHealthyUnit(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 400, Seed: 31, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}
	o, err := NewOnline(cfg, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	online := feedOnline(t, o, u)
	offline, _, err := detect.Run(u.Series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(online) != len(offline) {
		t.Fatalf("online %d verdicts vs offline %d", len(online), len(offline))
	}
	for i := range online {
		if online[i].Start != offline[i].Start || online[i].Size != offline[i].Size {
			t.Fatalf("verdict %d window mismatch: online [%d,%d) offline [%d,%d)",
				i, online[i].Start, online[i].Size, offline[i].Start, offline[i].Size)
		}
		if online[i].Abnormal != offline[i].Abnormal {
			t.Fatalf("verdict %d disagreement at window %d", i, online[i].Start)
		}
	}
}

func TestOnlineDetectsAnomalyAsItStreams(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 300, Seed: 32, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anomaly.Inject(u, []anomaly.Event{
		{Type: anomaly.Stall, DB: 3, Start: 120, Length: 40, Magnitude: 0.9},
	}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	o, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := feedOnline(t, o, u)
	found := false
	for _, v := range verdicts {
		if v.Abnormal && v.Start < 160 && v.Start+v.Size > 120 {
			found = true
			if v.AbnormalDB != 3 {
				t.Errorf("flagged db %d, want 3", v.AbnormalDB)
			}
			// The verdict must land promptly: at the tick the window
			// completed, not later.
			if v.Tick != v.Start+v.Size {
				t.Errorf("verdict tick %d, want %d", v.Tick, v.Start+v.Size)
			}
		}
	}
	if !found {
		t.Fatal("online judge missed the stall")
	}
}

func TestOnlineSetThresholds(t *testing.T) {
	o, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	th := o.Thresholds()
	th.Alpha[0] = 0.77
	if err := o.SetThresholds(th); err != nil {
		t.Fatal(err)
	}
	if o.Thresholds().Alpha[0] != 0.77 {
		t.Fatal("thresholds not swapped")
	}
	bad := th.Clone()
	bad.Alpha = bad.Alpha[:2]
	if err := o.SetThresholds(bad); err == nil {
		t.Fatal("invalid thresholds should be rejected")
	}
}

func TestNewOnlineValidation(t *testing.T) {
	if _, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(3)}, kpi.Count, 5); err == nil {
		t.Fatal("threshold/KPI mismatch should fail")
	}
	bad := detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.FlexConfig{Initial: 50, Max: 10},
	}
	if _, err := NewOnline(bad, kpi.Count, 5); err == nil {
		t.Fatal("invalid flex should fail")
	}
}

func TestNewProcessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProcessor(0, 5, 10)
}

func TestOnlineSetPrimaryFollowsFailover(t *testing.T) {
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetPrimary(3); err != nil {
		t.Fatal(err)
	}
	if err := o.SetPrimary(7); err == nil {
		t.Fatal("out-of-range primary should be rejected")
	}
	if err := o.SetPrimary(-1); err == nil {
		t.Fatal("negative primary should be rejected")
	}
}

func TestOnlineSetActiveExcludesDatabase(t *testing.T) {
	// A garbage database is ignored once deactivated, even while its data
	// keeps flowing.
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 200, Seed: 41, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wreck db4 completely.
	for k := 0; k < kpi.Count; k++ {
		vals := u.Series.Data[k][4].Values
		for i := range vals {
			vals[i] = float64((i*7 + k) % 13)
		}
	}
	o, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetActive([]bool{true, true, true, true, false}); err != nil {
		t.Fatal(err)
	}
	for _, v := range feedOnline(t, o, u) {
		if v.States[4] == window.Abnormal {
			t.Fatal("deactivated database was judged abnormal")
		}
	}
	// Validation.
	if err := o.SetActive([]bool{true}); err == nil {
		t.Fatal("wrong-length mask should be rejected")
	}
	if err := o.SetActive(nil); err != nil {
		t.Fatal(err)
	}
}

// --- Degraded-mode ingestion and self-healing tests ---

func TestProcessorWindowBoundaries(t *testing.T) {
	// Empty processor: nothing collected yet.
	p := NewProcessor(1, 1, 4)
	if _, err := p.Window(0, 1); err == nil {
		t.Fatal("window on empty processor should fail")
	}
	for i := 0; i < 9; i++ { // ticks 0..8, capacity 4: ticks 5..8 retained
		if err := p.Ingest([][]float64{{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Oldest(); got != 5 {
		t.Fatalf("Oldest = %d, want 5", got)
	}
	// First-evicted tick: start one below oldest must fail.
	if _, err := p.Window(4, 2); err == nil {
		t.Fatal("window starting at first-evicted tick should fail")
	}
	// Exact fit: the full retained range is readable.
	u, err := p.Window(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.Series(0, 0).At(0) != 5 || u.Series(0, 0).At(3) != 8 {
		t.Fatalf("exact-fit window = %v", u.Series(0, 0).Values)
	}
	// One past the newest tick must fail.
	if _, err := p.Window(6, 4); err == nil {
		t.Fatal("window past newest tick should fail")
	}
}

func TestProcessorIngestDegraded(t *testing.T) {
	p := NewProcessor(3, 2, 8)
	silent := make([]bool, 2)

	// Complete tick: no gaps, nobody silent.
	gaps, err := p.IngestDegraded([][]float64{{1, 2}, {3, 4}, {5, 6}}, silent)
	if err != nil || gaps != 0 {
		t.Fatalf("complete tick: gaps=%d err=%v", gaps, err)
	}
	if silent[0] || silent[1] {
		t.Fatal("complete tick marked a database silent")
	}

	// Partial delivery: KPI row 1 truncated to one cell, KPI row 2 missing,
	// and a NaN cell on KPI 0.
	gaps, err = p.IngestDegraded([][]float64{{math.NaN(), 20}, {30}}, silent)
	if err != nil {
		t.Fatal(err)
	}
	if gaps != 4 { // (0,0) NaN, (1,1) truncated, (2,0) and (2,1) missing row
		t.Fatalf("partial tick gaps = %d, want 4", gaps)
	}
	if silent[0] || silent[1] {
		t.Fatal("databases with some usable cells marked silent")
	}

	// Wholly-missed tick.
	gaps, err = p.IngestDegraded(nil, silent)
	if err != nil || gaps != 6 {
		t.Fatalf("missed tick: gaps=%d err=%v", gaps, err)
	}
	if !silent[0] || !silent[1] {
		t.Fatal("missed tick must mark every database silent")
	}
	if gapCells, missed := p.GapStats(); gapCells != 10 || missed != 1 {
		t.Fatalf("GapStats = (%d, %d), want (10, 1)", gapCells, missed)
	}
	if p.Ticks() != 3 {
		t.Fatalf("Ticks = %d", p.Ticks())
	}

	// Window stats see the damage.
	u, stats, err := p.WindowWithStats(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gaps != 10 {
		t.Fatalf("window gaps = %d, want 10", stats.Gaps)
	}
	if stats.PerDB[0] != 5 || stats.PerDB[1] != 5 {
		t.Fatalf("per-db gaps = %v", stats.PerDB)
	}
	if !math.IsNaN(u.Series(2, 0).At(1)) {
		t.Fatal("gap cell must materialize as NaN")
	}
	if u.Series(0, 1).At(1) != 20 {
		t.Fatal("delivered cell lost")
	}

	// Shape excess is still an error, not data loss.
	if _, err := p.IngestDegraded([][]float64{{1, 2, 3}}, silent); err == nil {
		t.Fatal("over-long row must be rejected")
	}
	if _, err := p.IngestDegraded([][]float64{{1}, {1}, {1}, {1}}, silent); err == nil {
		t.Fatal("too many KPI rows must be rejected")
	}
	if _, err := p.IngestDegraded(nil, make([]bool, 5)); err == nil {
		t.Fatal("wrong-length silent scratch must be rejected")
	}
}

// scriptedMeasure returns level-2 scores for windows whose first value is
// below 0.5 and level-3 scores otherwise, letting tests force Observable
// rounds deterministically.
func scriptedMeasure(x, _ []float64) float64 {
	if x[0] < 0.5 {
		return 0.5 // inside [alpha-theta, alpha) for the default 0.65/0.25
	}
	return 0.9
}

// The ring capacity derived from the flex config must survive a round that
// expands all the way to the maximum window, with no eviction and no slack.
func TestOnlineCapacityCoversMaxExpansion(t *testing.T) {
	flex := window.FlexConfig{Initial: 4, Delta: 3, Max: 10, ExhaustState: window.Abnormal}
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(2),
		Flex:       flex,
		Measure:    scriptedMeasure,
		Workers:    1,
	}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Processor().rings[0][0].Cap(); got != flex.MaxWindow() {
		t.Fatalf("ring capacity = %d, want MaxWindow %d", got, flex.MaxWindow())
	}
	// KPI 0 windows start at 0 (level-2 scores) -> every db observable ->
	// the window expands 4 -> 7 -> 10 and exhausts at the derived maximum.
	sample := [][]float64{{0, 0, 0}, {1, 1, 1}}
	var verdicts []*Verdict
	for tick := 0; tick < 20; tick++ {
		v, err := o.Push(sample)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if v != nil {
			verdicts = append(verdicts, v)
		}
	}
	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %d, want 2 full-expansion rounds in 20 ticks", len(verdicts))
	}
	for i, v := range verdicts {
		if v.Size != flex.MaxWindow() || v.Expansions != 2 {
			t.Fatalf("verdict %d: size=%d expansions=%d, want %d/2", i, v.Size, v.Expansions, flex.MaxWindow())
		}
		if !v.Abnormal || v.Health != detect.HealthOK {
			t.Fatalf("verdict %d: exhaust state lost (%+v)", i, v.Verdict)
		}
	}
	if verdicts[1].Start != flex.MaxWindow() {
		t.Fatalf("round 2 start = %d", verdicts[1].Start)
	}
}

// A collector outage that outruns the rings must not wedge Push: the lost
// range is skipped once and detection resynchronizes.
func TestOnlineResyncAfterEviction(t *testing.T) {
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(2),
		Workers:    1,
	}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sample := [][]float64{{1, 1}, {2, 2}}
	for i := 0; i < 5; i++ {
		if _, err := o.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	// Bypass Push (a restarted judge, or ingestion behind its back) until
	// tick 0 is long evicted.
	for i := 0; i < 100; i++ {
		if err := o.Processor().Ingest(sample); err != nil {
			t.Fatal(err)
		}
	}
	cap := o.Processor().rings[0][0].Cap()
	v, err := o.Push(sample)
	if err != nil {
		t.Fatalf("push after eviction errored: %v", err)
	}
	if v == nil || v.Health != detect.HealthSkipped {
		t.Fatalf("expected a skipped verdict, got %+v", v)
	}
	wantSkip := 106 - cap + 1 // one past the oldest retained tick after 106 ingests
	if v.Start != 0 || v.Size != wantSkip {
		t.Fatalf("skipped range [%d, %d), want [0, %d)", v.Start, v.Start+v.Size, wantSkip)
	}
	// The judge must now make progress without ever erroring again.
	var judged int
	for i := 0; i < 100; i++ {
		v, err := o.Push(sample)
		if err != nil {
			t.Fatalf("post-resync push %d errored: %v", i, err)
		}
		if v != nil {
			if v.Health == detect.HealthSkipped {
				t.Fatalf("second skip without a new outage: %+v", v)
			}
			judged++
		}
	}
	if judged == 0 {
		t.Fatal("no judged rounds after resync")
	}
	if h := o.Health(); h.SkippedRounds != 1 {
		t.Fatalf("SkippedRounds = %d, want 1", h.SkippedRounds)
	}
}

// Mutators must be safe against a concurrent feeder (run under -race).
func TestOnlineMutatorsRaceWithPush(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 300, Seed: 77, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Workers:    1,
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		th := o.Thresholds()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			th.Theta = 0.2 + 0.001*float64(i%50)
			if err := o.SetThresholds(th); err != nil {
				t.Error(err)
				return
			}
			_ = o.Thresholds()
		}
	}()
	go func() {
		defer wg.Done()
		masks := [][]bool{nil, {true, true, true, true, false}, {true, true, true, true, true}}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := o.SetActive(masks[i%len(masks)]); err != nil {
				t.Error(err)
				return
			}
			_ = o.Health()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := o.SetPrimary(i % 5); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	feedOnline(t, o, u)
	close(done)
	wg.Wait()
}
