package monitor

import (
	"math"
	"reflect"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func shadowUnit(t *testing.T) *cluster.Unit {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "shadow", Ticks: 200, Seed: 17, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func newShadowOnline(t *testing.T) *Online {
	t.Helper()
	o, err := NewOnline(detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestShadowIdenticalThresholdsNeverFlip(t *testing.T) {
	u := shadowUnit(t)
	o := newShadowOnline(t)
	if err := o.StartShadow(o.Thresholds(), 100); err != nil {
		t.Fatal(err)
	}
	feedOnline(t, o, u)
	st := o.ShadowStatus()
	if !st.Active {
		t.Fatal("shadow should still be active")
	}
	if st.Rounds == 0 {
		t.Fatal("no rounds compared over 200 ticks")
	}
	if st.Flips != 0 || st.FlipRate() != 0 {
		t.Fatalf("identical thresholds flipped %d/%d rounds", st.Flips, st.Rounds)
	}
	if !st.Done {
		t.Fatalf("200 ticks past a 100-tick target should be Done: %+v", st)
	}
	if st.TicksElapsed < st.TargetTicks {
		t.Fatalf("elapsed %d < target %d", st.TicksElapsed, st.TargetTicks)
	}
}

func TestShadowHostileThresholdsFlip(t *testing.T) {
	u := shadowUnit(t)
	o := newShadowOnline(t)
	// Alpha = 1 marks every pair abnormal (scores are < 1), so the shadow
	// disagrees with the live judge on essentially every healthy round.
	hostile := window.Thresholds{Alpha: make([]float64, kpi.Count), Theta: 0, MaxTolerance: 0}
	for i := range hostile.Alpha {
		hostile.Alpha[i] = 1
	}
	if err := o.StartShadow(hostile, 50); err != nil {
		t.Fatal(err)
	}
	feedOnline(t, o, u)
	st := o.ShadowStatus()
	if st.Rounds == 0 || st.Flips == 0 {
		t.Fatalf("hostile shadow should flip: %d/%d", st.Flips, st.Rounds)
	}
	if st.FlipRate() < 0.5 {
		t.Fatalf("flip rate %.3f, want most rounds flipped", st.FlipRate())
	}
}

func TestShadowPromoteSwapsAtomically(t *testing.T) {
	u := shadowUnit(t)
	o := newShadowOnline(t)
	before := o.Thresholds()
	cand := before.Clone()
	cand.Theta = 0.27
	if err := o.StartShadow(cand, 60); err != nil {
		t.Fatal(err)
	}
	feedOnline(t, o, u)
	if err := o.PromoteShadow(); err != nil {
		t.Fatal(err)
	}
	if got := o.Thresholds(); !reflect.DeepEqual(got, cand) {
		t.Fatalf("promoted thresholds %+v, want %+v", got, cand)
	}
	if o.ShadowStatus().Active {
		t.Fatal("promotion must end the comparison")
	}
	if err := o.PromoteShadow(); err == nil {
		t.Fatal("second promote without a shadow should fail")
	}
}

func TestShadowStopDiscardsCandidate(t *testing.T) {
	o := newShadowOnline(t)
	before := o.Thresholds()
	cand := before.Clone()
	cand.Theta = 0.12
	if err := o.StartShadow(cand, 10); err != nil {
		t.Fatal(err)
	}
	o.StopShadow()
	if o.ShadowStatus().Active {
		t.Fatal("stopped shadow still active")
	}
	if got := o.Thresholds(); !reflect.DeepEqual(got, before) {
		t.Fatalf("rollback touched live thresholds: %+v", got)
	}
	o.StopShadow() // idempotent
}

func TestShadowStartValidates(t *testing.T) {
	o := newShadowOnline(t)
	if err := o.StartShadow(window.Thresholds{}, 10); err == nil {
		t.Fatal("empty thresholds accepted")
	}
	if err := o.StartShadow(o.Thresholds(), 0); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestVerdictMeanCorrPopulated(t *testing.T) {
	u := shadowUnit(t)
	o := newShadowOnline(t)
	verdicts := feedOnline(t, o, u)
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	for _, v := range verdicts {
		if v.Health == detect.HealthSkipped {
			if !math.IsNaN(v.MeanCorr) {
				t.Fatalf("skipped round MeanCorr = %v, want NaN", v.MeanCorr)
			}
			continue
		}
		if math.IsNaN(v.MeanCorr) || v.MeanCorr < -1 || v.MeanCorr > 1 {
			t.Fatalf("MeanCorr out of range: %v", v.MeanCorr)
		}
	}
}
