package monitor

import (
	"fmt"
	"math"

	"dbcatcher/internal/correlate"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/window"
)

// Shadow judging: before a retrained threshold set is promoted, the online
// judge replays every resolved round against both the live and the
// candidate thresholds on the same correlation matrices and counts the
// rounds whose per-database final states differ ("flips"). The correlation
// measurement — the expensive, allocation-sensitive part — runs once; only
// the cheap level-mapping is repeated, so shadowing costs one extra
// JudgeMatrices pass per resolved round and nothing at all on
// non-resolving ticks. The relearning supervisor promotes the candidate
// only if the flip rate stays within budget, and discards it otherwise —
// the live thresholds are never touched until promotion, so rollback is
// simply forgetting the candidate.
//
// One approximation is inherent: the shadow cannot drive window expansion
// (the live thresholds own the flex loop), so a shadow round still
// Observable when the live round resolves is finalized under the exhaust
// policy — the same resolution the live judge would reach at the end of
// its expansion budget.

// shadowState tracks one candidate threshold set under comparison.
type shadowState struct {
	thresholds window.Thresholds
	startTick  int
	target     int // ticks the comparison should cover
	rounds     int // resolved rounds compared
	flips      int // rounds with any per-DB final-state difference
}

// ShadowStatus is a snapshot of an in-flight shadow comparison.
type ShadowStatus struct {
	// Active reports whether a candidate is currently shadowed.
	Active bool
	// Thresholds is the shadowed candidate (a clone; zero when inactive).
	Thresholds window.Thresholds
	// StartTick is the collection tick at which shadowing began.
	StartTick int
	// TargetTicks is the tick span the comparison should cover.
	TargetTicks int
	// TicksElapsed counts collection ticks since StartTick.
	TicksElapsed int
	// Rounds counts resolved judgment rounds compared so far.
	Rounds int
	// Flips counts compared rounds whose final states differed.
	Flips int
	// Done reports whether the comparison has covered its target span and
	// seen at least one resolved round.
	Done bool
}

// FlipRate returns Flips/Rounds, or 0 before any round resolved.
func (s ShadowStatus) FlipRate() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.Flips) / float64(s.Rounds)
}

// StartShadow begins shadow-judging the candidate thresholds alongside the
// live set for at least targetTicks collection ticks. A shadow already in
// flight is replaced. The candidate must validate against the judge's KPI
// count.
func (o *Online) StartShadow(t window.Thresholds, targetTicks int) error {
	kpis, _ := o.proc.Shape()
	if err := t.Validate(kpis); err != nil {
		return err
	}
	if targetTicks <= 0 {
		return fmt.Errorf("monitor: shadow target %d must be positive", targetTicks)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.shadow = &shadowState{
		thresholds: t.Clone(),
		startTick:  o.proc.Ticks(),
		target:     targetTicks,
	}
	return nil
}

// ShadowStatus snapshots the in-flight comparison; Active is false when no
// shadow is running.
func (o *Online) ShadowStatus() ShadowStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shadow == nil {
		return ShadowStatus{}
	}
	s := o.shadow
	elapsed := o.proc.Ticks() - s.startTick
	return ShadowStatus{
		Active:       true,
		Thresholds:   s.thresholds.Clone(),
		StartTick:    s.startTick,
		TargetTicks:  s.target,
		TicksElapsed: elapsed,
		Rounds:       s.rounds,
		Flips:        s.flips,
		Done:         elapsed >= s.target && s.rounds >= 1,
	}
}

// StopShadow abandons the in-flight comparison (auto-rollback: the live
// thresholds were never touched, so discarding the candidate is the whole
// rollback).
func (o *Online) StopShadow() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.shadow = nil
}

// PromoteShadow atomically swaps the shadowed candidate in as the live
// thresholds — validation, swap, and persistence all under the judge mutex,
// exactly like SetThresholds — and ends the comparison. It fails when no
// shadow is active.
func (o *Online) PromoteShadow() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shadow == nil {
		return fmt.Errorf("monitor: no shadow candidate to promote")
	}
	t := o.shadow.thresholds
	o.shadow = nil
	return o.setThresholdsLocked(t)
}

// observeShadow judges the resolved round's matrices under the shadow
// thresholds and records whether any database's final state flipped.
// Called from pushLocked with the mutex held, after the live finals are
// known; cfg already carries this round's effective active mask.
func (o *Online) observeShadow(mats []*correlate.Matrix, liveFinals []window.State, cfg detect.Config, kpis, dbs int) {
	if o.shadow == nil {
		return
	}
	cfg.Thresholds = o.shadow.thresholds
	states := detect.JudgeMatrices(mats, cfg, kpis, dbs)
	round := detect.RoundState(states)
	// The shadow cannot expand the window, so an Observable shadow round
	// resolves under the exhaust policy (see the package comment above).
	finals := detect.FinalizeStates(states, o.cfg.Flex, round == window.Observable)
	o.shadow.rounds++
	for d := range finals {
		if finals[d] != liveFinals[d] {
			o.shadow.flips++
			return
		}
	}
}

// meanPairScore averages the pairwise correlation scores across all KPI
// matrices over pairs of active databases. It allocates nothing. NaN when
// no active pair exists.
func meanPairScore(mats []*correlate.Matrix, active []bool) float64 {
	sum, n := 0.0, 0
	for _, m := range mats {
		if m == nil {
			continue
		}
		for i := 0; i < m.N; i++ {
			if active != nil && !active[i] {
				continue
			}
			for j := i + 1; j < m.N; j++ {
				if active != nil && !active[j] {
					continue
				}
				sum += m.At(i, j)
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
