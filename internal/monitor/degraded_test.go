package monitor

import (
	"strings"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// feedCollector streams a unit through the online judge via a lossy
// collector, collecting verdicts and every error (with the tick it
// occurred at).
func feedCollector(t *testing.T, o *Online, u *cluster.Unit, plan workload.FaultPlan) ([]*Verdict, []error) {
	t.Helper()
	c, err := cluster.NewCollector(u.Series, plan)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []*Verdict
	var errs []error
	for {
		sample, ok := c.Next()
		if !ok {
			break
		}
		v, err := o.Push(sample)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if v != nil {
			verdicts = append(verdicts, v)
		}
	}
	return verdicts, errs
}

func newDegradedOnline(t *testing.T) *Online {
	t.Helper()
	o, err := NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Workers:    1,
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// The end-to-end degraded-mode scenario: a lossy collector drops whole
// ticks, loses individual cells, and silences one database far beyond the
// deactivation budget. The detector must keep advancing (no repeated
// eviction errors), downgrade damaged rounds, bench the silent database,
// and bring it back once its collection recovers.
func TestOnlineEndToEndCollectorFaults(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 600, Seed: 91, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := newDegradedOnline(t)
	// Default budget: BudgetWindow 60, GapBudget 0.5 -> a database silent
	// for more than 30 of the last 60 ticks is benched; 20 clean ticks
	// re-activate it. db3 goes silent for 120 ticks (4x the budget).
	plan := workload.FaultPlan{
		Seed:         13,
		DropTickRate: 0.02,
		DropCellRate: 0.01,
		Silences:     []workload.Silence{{DB: 3, Start: 200, Length: 120}},
	}
	verdicts, errs := feedCollector(t, o, u, plan)
	if len(errs) > 0 {
		t.Fatalf("push errors under faults: %d, first: %v", len(errs), errs[0])
	}
	if len(verdicts) == 0 {
		t.Fatal("no verdicts under faults")
	}

	degraded, skipped := 0, 0
	misjudgedSilentDB := 0
	for _, v := range verdicts {
		switch v.Health {
		case detect.HealthDegraded:
			degraded++
		case detect.HealthSkipped:
			skipped++
		}
		// Once db3 has been benched, a silent database must not be blamed:
		// windows fully inside the deactivated span read healthy for it.
		if v.Start >= 260 && v.Start+v.Size <= 320 && len(v.States) == 5 &&
			v.States[3] == window.Abnormal {
			misjudgedSilentDB++
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded verdicts despite gap faults")
	}
	if misjudgedSilentDB > 0 {
		t.Fatalf("%d verdicts blamed the benched silent database", misjudgedSilentDB)
	}

	h := o.Health()
	if h.GapCells == 0 || h.MissedTicks == 0 {
		t.Fatalf("gap accounting empty: %+v", h)
	}
	// Exactly one bench/recover cycle for the single scheduled silence:
	// re-activation waits for the rolling budget to clear, so the overlay
	// must not flap while the outage ages out of the window.
	if h.Deactivations != 1 {
		t.Fatalf("want exactly 1 deactivation for one silence, got %+v", h)
	}
	if h.Reactivations != 1 {
		t.Fatalf("want exactly 1 re-activation, got %+v", h)
	}
	for d, down := range h.AutoDeactivated {
		if down {
			t.Fatalf("db%d still benched at end of run: %+v", d, h)
		}
	}
	if h.DegradedVerdicts != degraded {
		t.Fatalf("degraded counter %d != %d observed", h.DegradedVerdicts, degraded)
	}
}

// When every database goes silent, too few peers remain to correlate: the
// judge must emit skipped verdicts and keep advancing, then recover.
func TestOnlineSkipsWhenTooFewActive(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 400, Seed: 92, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := newDegradedOnline(t)
	plan := workload.FaultPlan{Seed: 17}
	for d := 0; d < 4; d++ { // 4 of 5 databases silent for 140 ticks
		plan.Silences = append(plan.Silences, workload.Silence{DB: d, Start: 150, Length: 140})
	}
	verdicts, errs := feedCollector(t, o, u, plan)
	if len(errs) > 0 {
		t.Fatalf("push errors: %v", errs[0])
	}
	skipped := 0
	var lastTick int
	for _, v := range verdicts {
		if v.Health == detect.HealthSkipped {
			skipped++
		}
		lastTick = v.Tick
	}
	if skipped == 0 {
		t.Fatal("no skipped rounds while the unit was down to one database")
	}
	if h := o.Health(); h.SkippedRounds != skipped {
		t.Fatalf("SkippedRounds = %d, observed %d", h.SkippedRounds, skipped)
	}
	// Detection resumed after the outage: judged verdicts near the end.
	if lastTick < 380 {
		t.Fatalf("last verdict at tick %d; judge did not keep up", lastTick)
	}
	tail := verdicts[len(verdicts)-1]
	if tail.Health == detect.HealthSkipped {
		t.Fatal("stream still skipping after full recovery")
	}
}

// A fault-free collector run must be bit-identical to feeding the series
// directly: the degraded-mode machinery may not perturb the clean path.
func TestOnlineFaultFreeCollectorBitIdentical(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 400, Seed: 31, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}
	direct := newDegradedOnline(t)
	viaCollector := newDegradedOnline(t)
	want := feedOnline(t, direct, u)
	got, errs := feedCollector(t, viaCollector, u, workload.FaultPlan{})
	if len(errs) > 0 {
		t.Fatalf("fault-free collector errored: %v", errs[0])
	}
	if len(got) != len(want) {
		t.Fatalf("verdict count %d != %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Start != w.Start || g.Size != w.Size || g.Tick != w.Tick ||
			g.Abnormal != w.Abnormal || g.AbnormalDB != w.AbnormalDB ||
			g.Expansions != w.Expansions || g.Health != detect.HealthOK ||
			g.GapCells != 0 {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, g, w)
		}
		for d := range g.States {
			if g.States[d] != w.States[d] {
				t.Fatalf("verdict %d state %d diverged", i, d)
			}
		}
	}
	if h := viaCollector.Health(); h.GapCells != 0 || h.MissedTicks != 0 ||
		h.Deactivations != 0 || h.DegradedVerdicts != 0 || h.SkippedRounds != 0 {
		t.Fatalf("clean run dirtied the health counters: %+v", h)
	}
}

// The original wedge: Push must never return the same eviction error twice
// in a row — in fact it no longer returns eviction errors at all.
func TestOnlineNeverRepeatsEvictionError(t *testing.T) {
	o := newDegradedOnline(t)
	sample := make([][]float64, kpi.Count)
	for k := range sample {
		sample[k] = make([]float64, 5)
		for d := range sample[k] {
			sample[k][d] = float64(k + d)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := o.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	// Outage: 500 ticks ingested behind the judge's back.
	for i := 0; i < 500; i++ {
		if err := o.Processor().Ingest(sample); err != nil {
			t.Fatal(err)
		}
	}
	var prevErr string
	for i := 0; i < 200; i++ {
		_, err := o.Push(sample)
		if err != nil {
			if prevErr != "" && err.Error() == prevErr {
				t.Fatalf("push %d repeated the same error: %v", i, err)
			}
			if !strings.Contains(err.Error(), "evicted") {
				t.Fatalf("unexpected error class: %v", err)
			}
			prevErr = err.Error()
			continue
		}
		prevErr = ""
	}
	if h := o.Health(); h.SkippedRounds == 0 {
		t.Fatal("outage produced no skipped round")
	}
}
