package cluster

import (
	"fmt"

	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/workload"
)

// Role distinguishes the primary database from replicas within a unit.
type Role int

const (
	// Primary executes writes from clients and replicates them.
	Primary Role = iota
	// Replica serves reads and applies the replication stream.
	Replica
)

// String names the role.
func (r Role) String() string {
	if r == Primary {
		return "primary"
	}
	return "replica"
}

// Config describes one simulated unit.
type Config struct {
	// Name labels the unit in series names and results.
	Name string
	// Databases is the number of databases in the unit. Index 0 is the
	// primary, the rest are replicas (the paper's experimental units have
	// one primary + four replicas).
	Databases int
	// Ticks is the number of 5-second data points to generate.
	Ticks int
	// Profile selects the demand process.
	Profile workload.Profile
	// Seed makes the unit reproducible.
	Seed uint64
	// MaxCollectDelay is the largest per-database collection delay, in
	// ticks. Each database draws a fixed delay in [0, MaxCollectDelay],
	// modelling the point-in-time delays of §II-D. Default 2.
	MaxCollectDelay int
	// FluctuationRate is the per-tick probability that a database starts a
	// benign temporal fluctuation (§II-D): a 1-3 point blip on a few KPIs
	// that is NOT an anomaly. Default 0.004.
	FluctuationRate float64
	// Balancer overrides the read-traffic balancer; nil means a healthy
	// UniformBalancer with 2% jitter.
	Balancer Balancer
	// Failover, when non-nil, promotes a replica to primary mid-run
	// (§II-A: "a replica instance is selected as the new primary instance
	// and request processing continues as before").
	Failover *Failover
}

// Failover describes a mid-run primary switch.
type Failover struct {
	// Tick at which the switch happens.
	Tick int
	// NewPrimary is the database promoted to primary.
	NewPrimary int
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "unit"
	}
	if c.Databases == 0 {
		c.Databases = 5
	}
	if c.MaxCollectDelay == 0 {
		c.MaxCollectDelay = 2
	}
	if c.FluctuationRate == 0 {
		c.FluctuationRate = 0.004
	}
	return c
}

// Unit is a simulated cloud-database unit together with its generated
// multivariate series.
type Unit struct {
	Config Config
	// Series is the generated KPI × database layout.
	Series *timeseries.UnitSeries
	// Roles records each database's *initial* role (index 0 is Primary);
	// use PrimaryAt for the role at a given tick when a failover is
	// configured.
	Roles []Role
	// Delays records the fixed per-database collection delay in ticks.
	Delays []int
}

// PrimaryAt returns the primary database index at the given tick,
// accounting for a configured failover.
func (u *Unit) PrimaryAt(tick int) int {
	if f := u.Config.Failover; f != nil && tick >= f.Tick {
		return f.NewPrimary
	}
	return 0
}

// Simulate generates the unit's KPI series. The same Config (including
// Seed) always yields identical output.
func Simulate(cfg Config) (*Unit, error) {
	cfg = cfg.withDefaults()
	if cfg.Databases < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 databases, got %d", cfg.Databases)
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("cluster: non-positive tick count %d", cfg.Ticks)
	}
	if f := cfg.Failover; f != nil {
		if f.NewPrimary <= 0 || f.NewPrimary >= cfg.Databases {
			return nil, fmt.Errorf("cluster: failover target %d is not a replica of %d databases", f.NewPrimary, cfg.Databases)
		}
		if f.Tick < 0 || f.Tick >= cfg.Ticks {
			return nil, fmt.Errorf("cluster: failover tick %d outside run of %d ticks", f.Tick, cfg.Ticks)
		}
	}
	rng := mathx.NewRNG(cfg.Seed)
	gen := workload.New(cfg.Profile, rng.Split(1))
	bal := cfg.Balancer
	if bal == nil {
		bal = NewUniformBalancer(cfg.Databases, 0.02, rng.Split(2))
	}

	u := &Unit{
		Config: cfg,
		Series: timeseries.NewUnitSeries(cfg.Name, kpi.Count, cfg.Databases),
		Roles:  make([]Role, cfg.Databases),
		Delays: make([]int, cfg.Databases),
	}
	dbs := make([]*dbSynth, cfg.Databases)
	for d := 0; d < cfg.Databases; d++ {
		role := Replica
		if d == 0 {
			role = Primary
		}
		u.Roles[d] = role
		delay := rng.Intn(cfg.MaxCollectDelay + 1)
		u.Delays[d] = delay
		dbs[d] = newDBSynth(role, delay, rng.Split(uint64(10+d)))
	}

	// History of demands so delayed databases observe past ticks. Warm it
	// up so tick 0 has history to look back into.
	hist := newDemandHistory(cfg.MaxCollectDelay + 1)
	for i := 0; i <= cfg.MaxCollectDelay; i++ {
		hist.push(gen.Next(), bal.Shares(0))
	}

	for t := 0; t < cfg.Ticks; t++ {
		if f := cfg.Failover; f != nil && t == f.Tick {
			// Promote: the old primary demotes to replica; the target
			// starts carrying the primary's client-side statement load.
			dbs[0].role = Replica
			dbs[0].ownStmt = 0
			dbs[f.NewPrimary].role = Primary
		}
		hist.push(gen.Next(), bal.Shares(t))
		for d, db := range dbs {
			demand, shares := hist.lookback(db.delay)
			row := db.tick(demand, shares[d], cfg.FluctuationRate)
			for k := 0; k < kpi.Count; k++ {
				u.Series.Data[k][d].Append(row[k])
			}
		}
	}
	for k := 0; k < kpi.Count; k++ {
		for d := 0; d < cfg.Databases; d++ {
			s := u.Series.Data[k][d]
			s.Name = fmt.Sprintf("%s/db%d/%s", cfg.Name, d, kpi.KPI(k))
		}
	}
	return u, nil
}

// demandHistory is a short ring of recent (demand, shares) pairs used to
// implement per-database collection delays.
type demandHistory struct {
	demands [][2]float64 // read, write
	shares  [][]float64
	size    int
	next    int
	filled  int
}

func newDemandHistory(size int) *demandHistory {
	return &demandHistory{
		demands: make([][2]float64, size),
		shares:  make([][]float64, size),
		size:    size,
	}
}

func (h *demandHistory) push(d workload.Demand, shares []float64) {
	h.demands[h.next] = [2]float64{d.Read, d.Write}
	h.shares[h.next] = mathx.Clone(shares)
	h.next = (h.next + 1) % h.size
	if h.filled < h.size {
		h.filled++
	}
}

// lookback returns the demand and shares from `delay` ticks ago (0 = the
// most recent push).
func (h *demandHistory) lookback(delay int) (workload.Demand, []float64) {
	if delay >= h.filled {
		delay = h.filled - 1
	}
	idx := (h.next - 1 - delay + 2*h.size) % h.size
	d := h.demands[idx]
	return workload.Demand{Read: d[0], Write: d[1]}, h.shares[idx]
}
