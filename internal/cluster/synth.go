package cluster

import (
	"math"

	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/workload"
)

// dbSynth turns the unit demand into one database's 14 KPI observations.
// Each database has its own multiplicative gains (absolute values differ
// between databases — Fig. 3a), an AR(1) measurement-noise channel per
// KPI, and a benign-fluctuation process. Replicas share the replication
// stream, so their write-counter KPIs track each other (R-R correlation);
// the primary's statement counters carry an extra independent component
// from client-side execution, which weakens P-R correlation exactly for
// the R-R-typed KPIs of Table II.
type dbSynth struct {
	role  Role
	delay int
	rng   *mathx.RNG

	gain      [kpi.Count]float64 // per-KPI multiplicative gain
	noise     [kpi.Count]float64 // AR(1) noise state
	noisePhi  float64
	noiseStd  float64
	capacity  float64 // CPU saturation scale (requests/s at ~63% util)
	capBytes  float64 // accumulated Real Capacity in MB
	ownStmt   float64 // primary-only AR(1) statement overhead state
	fluctLeft int     // remaining ticks of the active benign fluctuation
	fluctGain float64
	fluctKPIs []int
}

// Per-request resource factors shared by all databases of a unit (the
// transaction mix is unit-wide; §II-B reason 2).
const (
	bufferPoolPagesPerRead = 48
	rowsReadPerRead        = 22
	rowsPerWrite           = 3.2
	dataWritesPerWrite     = 1.8  // fsync-ish IOPS per write
	bytesPerWrite          = 5200 // bytes written per write request
	insertFrac             = 0.38
	updateFrac             = 0.42
	deleteFrac             = 0.08
	txnPerWrite            = 0.55
	cpuPerRead             = 1.0
	cpuPerWrite            = 2.6
)

func newDBSynth(role Role, delay int, rng *mathx.RNG) *dbSynth {
	s := &dbSynth{
		role:     role,
		delay:    delay,
		rng:      rng,
		noisePhi: 0.6,
		noiseStd: 0.01,
		capacity: rng.Range(5000, 7000),
		capBytes: rng.Range(8000, 12000),
	}
	for k := range s.gain {
		s.gain[k] = rng.Range(0.8, 1.25)
	}
	return s
}

// tick produces the KPI row for one data point given the (possibly
// delayed) unit demand and this database's read share.
func (s *dbSynth) tick(d workload.Demand, share float64, fluctuationRate float64) [kpi.Count]float64 {
	r := d.Read * share // this database's read req/s
	w := d.Write        // replication delivers all writes everywhere

	// Primary-only extra statement activity (ad-hoc client statements,
	// DDL, etc). A slow AR(1) process around ~25% of the write level.
	if s.role == Primary {
		s.ownStmt = 0.98*s.ownStmt + s.rng.NormMeanStd(0, 0.06*w+1)
	}
	own := math.Abs(s.ownStmt)

	// Benign temporal fluctuation lifecycle. Fluctuations are *minor*
	// deviations at individual points (§II-D) — strong enough to depress a
	// short window's correlation into the "slight deviation" band, never
	// into extreme deviation. The flexible window absorbs them.
	if s.fluctLeft == 0 && s.rng.Bool(fluctuationRate) {
		s.fluctLeft = 1 + s.rng.Intn(3)
		s.fluctGain = s.rng.Range(1.15, 1.5)
		// A maintenance task touches CPU plus one random KPI. Real
		// Capacity is a storage level no short task moves.
		other := s.rng.Intn(kpi.Count)
		for other == int(kpi.RealCapacity) {
			other = s.rng.Intn(kpi.Count)
		}
		s.fluctKPIs = []int{int(kpi.CPUUtilization), other}
	}

	var row [kpi.Count]float64
	handledWrites := w // executes (primary) or applies (replica) all writes

	row[kpi.RequestsPerSecond] = r + handledWrites
	row[kpi.TotalRequests] = (r + handledWrites) * 5 // per 5 s interval
	row[kpi.BufferPoolReadRequests] = r * bufferPoolPagesPerRead
	row[kpi.InnodbRowsRead] = r * rowsReadPerRead
	row[kpi.InnodbRowsUpdated] = w * updateFrac * rowsPerWrite
	row[kpi.InnodbDataWrites] = w * dataWritesPerWrite
	row[kpi.InnodbDataWritten] = w * bytesPerWrite

	// R-R KPIs: statement counters; the primary adds its own component.
	row[kpi.ComInsert] = w*insertFrac + ownShare(s.role, own, insertFrac)
	row[kpi.ComUpdate] = w*updateFrac + ownShare(s.role, own, updateFrac)
	row[kpi.InnodbRowsInserted] = w*insertFrac*rowsPerWrite + ownShare(s.role, own, insertFrac*rowsPerWrite)
	row[kpi.InnodbRowsDeleted] = w*deleteFrac*rowsPerWrite + ownShare(s.role, own, deleteFrac*rowsPerWrite)
	row[kpi.TransactionsPerSecond] = w*txnPerWrite + ownShare(s.role, own, txnPerWrite)

	// CPU saturates toward 100%.
	load := r*cpuPerRead + w*cpuPerWrite
	row[kpi.CPUUtilization] = 100 * (1 - math.Exp(-load/s.capacity))

	// Real Capacity integrates net written bytes (MB) and grows slowly.
	s.capBytes += w * bytesPerWrite * 5 / 1e6 * s.rng.Range(0.9, 1.1)
	row[kpi.RealCapacity] = s.capBytes

	// Apply per-DB gain and AR(1) multiplicative noise. Two exceptions:
	// Real Capacity is a cumulative level (noising the level would drown
	// its within-window trend — its randomness lives in the increment
	// above), and CPU utilization saturates (multiplicative noise on a
	// compressed level would drown the compressed signal), so CPU gets a
	// small additive measurement error instead.
	for k := range row {
		switch k {
		case int(kpi.RealCapacity):
			row[k] *= s.gain[k]
		case int(kpi.CPUUtilization):
			s.noise[k] = s.noisePhi*s.noise[k] + s.rng.NormMeanStd(0, s.noiseStd)
			// Jitter shrinks toward both saturation (100%) and idle (0%),
			// as real utilization sampling does.
			headroom := row[k]
			if 100-row[k] < headroom {
				headroom = 100 - row[k]
			}
			row[k] += 0.5 * headroom * s.noise[k]
		default:
			s.noise[k] = s.noisePhi*s.noise[k] + s.rng.NormMeanStd(0, s.noiseStd)
			factor := s.gain[k] * (1 + s.noise[k])
			if factor < 0 {
				factor = 0
			}
			row[k] *= factor
		}
	}

	// Benign fluctuation distorts its chosen KPIs for a few ticks.
	if s.fluctLeft > 0 {
		for _, k := range s.fluctKPIs {
			row[k] *= s.fluctGain
		}
		s.fluctLeft--
	}

	// Physical bounds.
	if row[kpi.CPUUtilization] > 100 {
		row[kpi.CPUUtilization] = 100
	}
	for k := range row {
		if row[k] < 0 {
			row[k] = 0
		}
	}
	return row
}

// ownShare returns the primary's extra statement contribution for an
// R-R-typed KPI; replicas contribute nothing.
func ownShare(role Role, own, scale float64) float64 {
	if role != Primary {
		return 0
	}
	return own * scale * 4
}
