// Package cluster simulates a cloud-database unit (Fig. 2 of the paper):
// one primary database and several replicas behind a load balancer, each
// emitting the 14 KPI time series of Table II at 5-second ticks.
//
// The simulator is the substitution for the paper's production traces (see
// DESIGN.md): all databases of a unit are driven by a shared unit-level
// demand process, individually distorted by per-database gains, collection
// delays, measurement noise, and benign temporal fluctuations. This
// reproduces the UKPIC phenomenon — correlated trends with point-in-time
// delays — that DBCatcher exploits, and the role split (primary vs
// replica) reproduces the P-R vs R-R correlation types of Table II.
package cluster

import "dbcatcher/internal/mathx"

// Balancer decides each database's share of the unit's read traffic at
// every tick. Shares are non-negative and sum to 1.
type Balancer interface {
	// Shares returns the read-traffic fraction per database for tick t.
	// The returned slice may be reused between calls.
	Shares(t int) []float64
}

// UniformBalancer spreads reads evenly with small per-tick jitter,
// modelling a healthy load-balancing module ("the number of SQLs processed
// by each database is similar", §II-B).
type UniformBalancer struct {
	rng    *mathx.RNG
	n      int
	jitter float64
	buf    []float64
}

// NewUniformBalancer returns a balancer over n databases whose per-tick
// shares deviate from 1/n by a relative jitter (e.g. 0.05 for ±5%).
func NewUniformBalancer(n int, jitter float64, rng *mathx.RNG) *UniformBalancer {
	return &UniformBalancer{rng: rng, n: n, jitter: jitter, buf: make([]float64, n)}
}

// Shares implements Balancer.
func (b *UniformBalancer) Shares(int) []float64 {
	var sum float64
	for i := range b.buf {
		w := 1 + b.rng.NormMeanStd(0, b.jitter)
		if w < 0.01 {
			w = 0.01
		}
		b.buf[i] = w
		sum += w
	}
	for i := range b.buf {
		b.buf[i] /= sum
	}
	return b.buf
}

// WeightedBalancer applies fixed relative weights (capacity-aware routing)
// with jitter. It generalizes UniformBalancer.
type WeightedBalancer struct {
	rng     *mathx.RNG
	weights []float64
	jitter  float64
	buf     []float64
}

// NewWeightedBalancer returns a balancer using the given positive weights.
func NewWeightedBalancer(weights []float64, jitter float64, rng *mathx.RNG) *WeightedBalancer {
	w := mathx.Clone(weights)
	return &WeightedBalancer{rng: rng, weights: w, jitter: jitter, buf: make([]float64, len(w))}
}

// Shares implements Balancer.
func (b *WeightedBalancer) Shares(int) []float64 {
	var sum float64
	for i, base := range b.weights {
		w := base * (1 + b.rng.NormMeanStd(0, b.jitter))
		if w < 0.001 {
			w = 0.001
		}
		b.buf[i] = w
		sum += w
	}
	for i := range b.buf {
		b.buf[i] /= sum
	}
	return b.buf
}

// DefectiveBalancer reproduces the Fig. 4 incident: from StartTick on, a
// defective strategy maps an excessive fraction of SQL to one target
// database, starving the others. Before StartTick it behaves uniformly.
type DefectiveBalancer struct {
	inner     Balancer
	Target    int
	StartTick int
	// Skew is the extra share routed to Target (0.3 means the target gets
	// its fair share plus 30 points of everyone else's traffic).
	Skew float64
	buf  []float64
}

// NewDefectiveBalancer wraps inner and skews traffic toward target after
// startTick.
func NewDefectiveBalancer(inner Balancer, target, startTick int, skew float64) *DefectiveBalancer {
	return &DefectiveBalancer{inner: inner, Target: target, StartTick: startTick, Skew: skew}
}

// Shares implements Balancer.
func (b *DefectiveBalancer) Shares(t int) []float64 {
	base := b.inner.Shares(t)
	if t < b.StartTick {
		return base
	}
	if b.buf == nil {
		b.buf = make([]float64, len(base))
	}
	// Take Skew proportionally from everyone and give it to the target.
	for i, s := range base {
		b.buf[i] = s * (1 - b.Skew)
	}
	b.buf[b.Target] += b.Skew
	return b.buf
}
