package cluster

import (
	"testing"

	"dbcatcher/internal/correlate"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/workload"
)

func simulateTest(t *testing.T, cfg Config) *Unit {
	t.Helper()
	u, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Series.Validate(); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSimulateShape(t *testing.T) {
	u := simulateTest(t, Config{Name: "u0", Ticks: 200, Seed: 1})
	if u.Series.KPIs != kpi.Count {
		t.Fatalf("KPIs = %d, want %d", u.Series.KPIs, kpi.Count)
	}
	if u.Series.Databases != 5 {
		t.Fatalf("Databases = %d, want default 5", u.Series.Databases)
	}
	if u.Series.Len() != 200 {
		t.Fatalf("Len = %d, want 200", u.Series.Len())
	}
	if u.Roles[0] != Primary || u.Roles[1] != Replica {
		t.Fatal("role assignment wrong")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{Name: "u", Ticks: 300, Seed: 42, Profile: workload.TencentIrregular}
	a := simulateTest(t, cfg)
	b := simulateTest(t, cfg)
	for k := 0; k < kpi.Count; k++ {
		for d := 0; d < 5; d++ {
			if !mathx.EqualApprox(a.Series.Data[k][d].Values, b.Series.Data[k][d].Values, 0) {
				t.Fatalf("KPI %d db %d differs between identical seeds", k, d)
			}
		}
	}
	c := simulateTest(t, Config{Name: "u", Ticks: 300, Seed: 43, Profile: workload.TencentIrregular})
	if mathx.EqualApprox(a.Series.Data[0][0].Values, c.Series.Data[0][0].Values, 0) {
		t.Fatal("different seeds produced identical series")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Config{Databases: 1, Ticks: 10}); err == nil {
		t.Fatal("1 database should be rejected")
	}
	if _, err := Simulate(Config{Ticks: 0}); err == nil {
		t.Fatal("0 ticks should be rejected")
	}
}

// TestUKPICEmerges is the core fidelity check: on a healthy unit, the same
// KPI correlates across databases (replica-replica for all KPIs, and
// primary-replica for the PRRR-typed KPIs), reproducing Fig. 3.
func TestUKPICEmerges(t *testing.T) {
	u := simulateTest(t, Config{Name: "u", Ticks: 600, Seed: 7, Profile: workload.TencentIrregular})
	opts := correlate.DefaultOptions()
	window := 60
	// Average KCD over several windows to smooth noise.
	avgKCD := func(k, d1, d2 int) float64 {
		var sum float64
		count := 0
		for start := 0; start+window <= 600; start += window {
			w1, _ := u.Series.Data[k][d1].Window(start, window)
			w2, _ := u.Series.Data[k][d2].Window(start, window)
			sum += correlate.KCD(w1, w2, opts)
			count++
		}
		return sum / float64(count)
	}
	for _, k := range kpi.All() {
		rr := avgKCD(int(k), 1, 2) // replica-replica
		if rr < 0.75 {
			t.Errorf("%v: R-R KCD = %.3f, want >= 0.75 (UKPIC)", k, rr)
		}
		pr := avgKCD(int(k), 0, 1) // primary-replica
		if k.Correlation() == kpi.PRRR && pr < 0.7 {
			t.Errorf("%v: P-R KCD = %.3f, want >= 0.7 for PRRR KPI", k, pr)
		}
	}
}

// TestRoleSplitWeakensPRForRRKPIs checks that R-R-typed KPIs correlate
// more strongly replica-replica than primary-replica, which is what makes
// them R-R in Table II.
func TestRoleSplitWeakensPRForRRKPIs(t *testing.T) {
	opts := correlate.DefaultOptions()
	window := 60
	var prSum, rrSum float64
	var n int
	for seed := uint64(0); seed < 5; seed++ {
		u := simulateTest(t, Config{Name: "u", Ticks: 600, Seed: 100 + seed, Profile: workload.TencentIrregular})
		for _, k := range []kpi.KPI{kpi.ComInsert, kpi.ComUpdate, kpi.TransactionsPerSecond} {
			for start := 0; start+window <= 600; start += window {
				p, _ := u.Series.Data[k][0].Window(start, window)
				r1, _ := u.Series.Data[k][1].Window(start, window)
				r2, _ := u.Series.Data[k][2].Window(start, window)
				prSum += correlate.KCD(p, r1, opts)
				rrSum += correlate.KCD(r1, r2, opts)
				n++
			}
		}
	}
	pr, rr := prSum/float64(n), rrSum/float64(n)
	if rr <= pr {
		t.Fatalf("R-R KCD (%.3f) should exceed P-R KCD (%.3f) for R-R-typed KPIs", rr, pr)
	}
}

func TestCPUBounded(t *testing.T) {
	u := simulateTest(t, Config{Name: "u", Ticks: 500, Seed: 3, Profile: workload.TPCCI})
	for d := 0; d < 5; d++ {
		for _, v := range u.Series.Data[kpi.CPUUtilization][d].Values {
			if v < 0 || v > 100 {
				t.Fatalf("CPU out of [0,100]: %v", v)
			}
		}
	}
}

func TestRealCapacityMonotoneTrend(t *testing.T) {
	u := simulateTest(t, Config{Name: "u", Ticks: 400, Seed: 4})
	for d := 0; d < 5; d++ {
		vals := u.Series.Data[kpi.RealCapacity][d].Values
		if vals[len(vals)-1] <= vals[0] {
			t.Fatalf("db %d Real Capacity did not grow: %v -> %v", d, vals[0], vals[len(vals)-1])
		}
	}
}

func TestDelaysWithinBound(t *testing.T) {
	u := simulateTest(t, Config{Name: "u", Ticks: 50, Seed: 5, MaxCollectDelay: 2})
	for d, delay := range u.Delays {
		if delay < 0 || delay > 2 {
			t.Fatalf("db %d delay %d out of [0,2]", d, delay)
		}
	}
}

func TestUniformBalancerShares(t *testing.T) {
	b := NewUniformBalancer(4, 0.05, mathx.NewRNG(1))
	for t0 := 0; t0 < 100; t0++ {
		s := b.Shares(t0)
		var sum float64
		for _, v := range s {
			if v <= 0 {
				t.Fatalf("non-positive share %v", v)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("shares sum %v != 1", sum)
		}
	}
}

func TestWeightedBalancer(t *testing.T) {
	b := NewWeightedBalancer([]float64{3, 1}, 0, mathx.NewRNG(1))
	s := b.Shares(0)
	if s[0] < 0.7 || s[0] > 0.8 {
		t.Fatalf("weighted share = %v, want ~0.75", s[0])
	}
}

func TestDefectiveBalancerSkews(t *testing.T) {
	inner := NewUniformBalancer(5, 0, mathx.NewRNG(1))
	b := NewDefectiveBalancer(inner, 2, 10, 0.4)
	before := mathx.Clone(b.Shares(5))
	after := mathx.Clone(b.Shares(20))
	if before[2] > 0.3 {
		t.Fatalf("before start tick, share should be fair: %v", before)
	}
	if after[2] < 0.5 {
		t.Fatalf("after start tick, target share = %v, want > 0.5", after[2])
	}
	var sum float64
	for _, v := range after {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("defective shares sum %v", sum)
	}
}

func TestFailoverValidation(t *testing.T) {
	bad := []Config{
		{Ticks: 100, Failover: &Failover{Tick: 50, NewPrimary: 0}},  // target is primary
		{Ticks: 100, Failover: &Failover{Tick: 50, NewPrimary: 9}},  // target out of range
		{Ticks: 100, Failover: &Failover{Tick: 200, NewPrimary: 2}}, // tick out of range
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestFailoverMovesRoleSplit(t *testing.T) {
	// After failover, the R-R-typed statement counters should decorrelate
	// from replicas on the NEW primary, not the old one.
	cfg := Config{
		Name: "fo", Ticks: 1200, Seed: 77, Profile: workload.TencentIrregular,
		Failover: &Failover{Tick: 600, NewPrimary: 2},
	}
	u := simulateTest(t, cfg)
	if u.PrimaryAt(0) != 0 || u.PrimaryAt(599) != 0 {
		t.Fatal("primary before failover should be db0")
	}
	if u.PrimaryAt(600) != 2 || u.PrimaryAt(1199) != 2 {
		t.Fatal("primary after failover should be db2")
	}
	opts := correlate.DefaultOptions()
	avg := func(k kpi.KPI, d1, d2, lo, hi int) float64 {
		var sum float64
		n := 0
		for start := lo; start+60 <= hi; start += 60 {
			w1, _ := u.Series.Data[k][d1].Window(start, 60)
			w2, _ := u.Series.Data[k][d2].Window(start, 60)
			sum += correlate.KCD(w1, w2, opts)
			n++
		}
		return sum / float64(n)
	}
	k := kpi.ComInsert
	// Before: db0 is primary -> weak against replicas; db2 is a replica ->
	// strong against other replicas.
	if pr := avg(k, 0, 1, 100, 600); pr > 0.85 {
		t.Errorf("pre-failover P-R score %v unexpectedly high", pr)
	}
	if rr := avg(k, 2, 3, 100, 600); rr < 0.85 {
		t.Errorf("pre-failover R-R score %v unexpectedly low", rr)
	}
	// After (skip a settling margin): roles flip.
	if rr := avg(k, 0, 1, 700, 1200); rr < 0.85 {
		t.Errorf("post-failover old primary should correlate with replicas: %v", rr)
	}
	if pr := avg(k, 2, 3, 700, 1200); pr > 0.85 {
		t.Errorf("post-failover new primary should decorrelate: %v", pr)
	}
}
