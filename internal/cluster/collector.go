package cluster

import (
	"math"

	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/workload"
)

// Collector replays a unit's generated series tick by tick through a
// workload.FaultPlan, producing what a lossy collection pipeline actually
// delivers to the monitor: nil samples for dropped ticks, truncated KPI
// rows, NaN cells for lost points, stale re-deliveries, and scheduled
// whole-database silences. With a zero plan the delivered stream is exactly
// the generated series.
//
// Collector is not safe for concurrent use.
type Collector struct {
	u    *timeseries.UnitSeries
	inj  *workload.Injector
	tick int
	rows [][]float64 // full-width backing storage, re-sliced per tick
	out  [][]float64
}

// NewCollector builds a faulty delivery stream over the unit series.
func NewCollector(u *timeseries.UnitSeries, plan workload.FaultPlan) (*Collector, error) {
	inj, err := plan.NewInjector(u.KPIs, u.Databases)
	if err != nil {
		return nil, err
	}
	c := &Collector{u: u, inj: inj}
	c.rows = make([][]float64, u.KPIs)
	c.out = make([][]float64, u.KPIs)
	for k := range c.rows {
		c.rows[k] = make([]float64, u.Databases)
	}
	return c, nil
}

// Tick returns the next tick Next will deliver.
func (c *Collector) Tick() int { return c.tick }

// Next delivers the next collection tick. ok is false once the series is
// exhausted. A nil sample with ok=true is a wholly-dropped tick. The
// returned rows are reused between calls; ingest them before calling Next
// again.
func (c *Collector) Next() (sample [][]float64, ok bool) {
	if c.tick >= c.u.Len() {
		return nil, false
	}
	f := c.inj.Next()
	t := c.tick
	c.tick++
	if f.Dropped {
		return nil, true
	}
	src := t
	if f.Stale && t > 0 {
		src = t - 1
	}
	for k := 0; k < c.u.KPIs; k++ {
		row := c.rows[k][:f.RowLen[k]]
		for d := range row {
			if f.CellGap[k][d] {
				row[d] = math.NaN()
			} else {
				row[d] = c.u.Data[k][d].At(src)
			}
		}
		c.out[k] = row
	}
	return c.out, true
}
