package cluster

import (
	"math"
	"testing"

	"dbcatcher/internal/workload"
)

func simulateSmall(t *testing.T, ticks int) *Unit {
	t.Helper()
	u, err := Simulate(Config{Name: "u", Ticks: ticks, Seed: 7, Profile: workload.TencentIrregular})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestCollectorZeroPlanPassthrough(t *testing.T) {
	u := simulateSmall(t, 50)
	c, err := NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 50; tick++ {
		sample, ok := c.Next()
		if !ok || sample == nil {
			t.Fatalf("tick %d: dropped or exhausted under zero plan", tick)
		}
		for k := 0; k < u.Series.KPIs; k++ {
			if len(sample[k]) != u.Series.Databases {
				t.Fatalf("tick %d KPI %d truncated to %d", tick, k, len(sample[k]))
			}
			for d := 0; d < u.Series.Databases; d++ {
				if sample[k][d] != u.Series.Data[k][d].At(tick) {
					t.Fatalf("tick %d cell (%d,%d) altered", tick, k, d)
				}
			}
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("collector must exhaust after the series ends")
	}
}

func TestCollectorDeterministic(t *testing.T) {
	u := simulateSmall(t, 120)
	plan := workload.FaultPlan{
		Seed: 5, DropTickRate: 0.1, DropCellRate: 0.05, PartialRowRate: 0.05, StaleRate: 0.05,
		Silences: []workload.Silence{{DB: 2, Start: 30, Length: 20}},
	}
	c1, err := NewCollector(u.Series, plan)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := NewCollector(u.Series, plan)
	for tick := 0; tick < 120; tick++ {
		s1, ok1 := c1.Next()
		s2, ok2 := c2.Next()
		if ok1 != ok2 || (s1 == nil) != (s2 == nil) {
			t.Fatalf("tick %d: delivery divergence", tick)
		}
		if s1 == nil {
			continue
		}
		for k := range s1 {
			if len(s1[k]) != len(s2[k]) {
				t.Fatalf("tick %d KPI %d row length divergence", tick, k)
			}
			for d := range s1[k] {
				a, b := s1[k][d], s2[k][d]
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("tick %d cell (%d,%d) divergence", tick, k, d)
				}
			}
		}
	}
}

func TestCollectorFaultChannels(t *testing.T) {
	u := simulateSmall(t, 300)
	plan := workload.FaultPlan{
		Seed: 11, DropTickRate: 0.2, DropCellRate: 0.1, PartialRowRate: 0.1,
		Silences: []workload.Silence{{DB: 3, Start: 100, Length: 50}},
	}
	c, err := NewCollector(u.Series, plan)
	if err != nil {
		t.Fatal(err)
	}
	drops, nanCells, shortRows := 0, 0, 0
	for tick := 0; tick < 300; tick++ {
		sample, ok := c.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		if sample == nil {
			drops++
			continue
		}
		silent := tick >= 100 && tick < 150
		for k := range sample {
			if len(sample[k]) < u.Series.Databases {
				shortRows++
			}
			for d, v := range sample[k] {
				if math.IsNaN(v) {
					nanCells++
				} else if silent && d == 3 {
					t.Fatalf("tick %d: silenced db3 delivered a value", tick)
				}
			}
		}
	}
	if drops < 30 || drops > 100 {
		t.Fatalf("dropped ticks = %d, want around 60", drops)
	}
	if nanCells == 0 {
		t.Fatal("no NaN cells despite cell drops and a silence")
	}
	if shortRows == 0 {
		t.Fatal("no truncated rows despite partial-row faults")
	}
}

func TestCollectorStaleDelivery(t *testing.T) {
	u := simulateSmall(t, 200)
	c, err := NewCollector(u.Series, workload.FaultPlan{Seed: 3, StaleRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	stale := 0
	for tick := 0; tick < 200; tick++ {
		sample, ok := c.Next()
		if !ok || sample == nil {
			t.Fatal("stale-only plan must deliver every tick")
		}
		// A stale tick matches the previous tick's values on every cell.
		if tick > 0 && sample[0][0] == u.Series.Data[0][0].At(tick-1) &&
			sample[0][0] != u.Series.Data[0][0].At(tick) {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("no stale deliveries observed at 30% rate")
	}
}

func TestCollectorRejectsBadPlan(t *testing.T) {
	u := simulateSmall(t, 10)
	if _, err := NewCollector(u.Series, workload.FaultPlan{DropTickRate: 1.5}); err == nil {
		t.Fatal("rate above 1 must be rejected")
	}
	if _, err := NewCollector(u.Series, workload.FaultPlan{
		Silences: []workload.Silence{{DB: 9, Start: 0, Length: 5}},
	}); err == nil {
		t.Fatal("out-of-range silence target must be rejected")
	}
	if _, err := NewCollector(u.Series, workload.FaultPlan{
		Silences: []workload.Silence{{DB: 1, Start: 0, Length: 0}},
	}); err == nil {
		t.Fatal("empty silence must be rejected")
	}
}
