package baselines

import (
	"time"

	"dbcatcher/internal/dataset"
	"dbcatcher/internal/mathx"
)

// Multivariate adapts a MultiScorer (OmniAnomaly, JumpStarter) to the
// Method interface. The scorer sees each database's 14-KPI multivariate
// series (the per-instance deployment of these systems); the unit's single
// score dimension takes the per-tick maximum across databases, and window
// judgment uses a plain threshold (k-of-M with M = 1).
type Multivariate struct {
	// Label is the method name in tables.
	Label string
	// Build constructs a fresh scorer for a training run.
	Build func(seed uint64) MultiScorer

	scorer MultiScorer
	best   params
	ready  bool
}

// Name implements Method.
func (m *Multivariate) Name() string { return m.Label }

// Train implements Method: fit the model on pooled training data, then
// search the decision rule.
func (m *Multivariate) Train(train []*dataset.UnitData, seed uint64) (TrainInfo, error) {
	start := time.Now()
	rng := mathx.NewRNG(seed)
	m.scorer = m.Build(seed)
	if len(train) > 0 {
		// Fit on one representative database's multivariate series; the
		// demand process is shared unit-wide, so any healthy database is
		// representative.
		u := train[rng.Intn(len(train))]
		d := 0
		if u.Unit.Series.Databases > 1 {
			d = 1 // prefer a replica; the primary carries extra components
		}
		m.scorer.Fit(dbMatrix(u, d))
	}
	scores := m.scoreUnits(train)
	p, f := searchParams(scores, 1, rng)
	m.best = p
	m.ready = true
	return TrainInfo{Duration: time.Since(start), BestF: f, WindowSize: p.windowSize}, nil
}

// Evaluate implements Method.
func (m *Multivariate) Evaluate(test []*dataset.UnitData) (Result, error) {
	if !m.ready {
		return Result{}, errNotTrained
	}
	scores := m.scoreUnits(test)
	c := judgeAll(scores, m.best)
	return Result{Confusion: c, AvgWindowSize: float64(m.best.windowSize)}, nil
}

// dbMatrix extracts database d's KPI-by-time matrix.
func dbMatrix(u *dataset.UnitData, d int) [][]float64 {
	kpis := u.Unit.Series.KPIs
	out := make([][]float64, kpis)
	for k := 0; k < kpis; k++ {
		out[k] = u.Unit.Series.Data[k][d].Values
	}
	return out
}

// scoreUnits runs the scorer per database and reduces to one dimension by
// the per-tick maximum.
func (m *Multivariate) scoreUnits(units []*dataset.UnitData) []unitScores {
	out := make([]unitScores, len(units))
	for i, u := range units {
		n := u.Unit.Series.Len()
		dim := make([]float64, n)
		for d := 0; d < u.Unit.Series.Databases; d++ {
			s := normalizeScores(m.scorer.ScoresMulti(dbMatrix(u, d)))
			for t, v := range s {
				if v > dim[t] {
					dim[t] = v
				}
			}
		}
		out[i] = unitScores{dims: [][]float64{dim}, labels: u.Labels}
	}
	return out
}

// NewOmniAnomalyMethod builds the OmniAnomaly baseline as a Method.
func NewOmniAnomalyMethod() *Multivariate {
	return &Multivariate{
		Label: "OmniAnomaly",
		Build: func(seed uint64) MultiScorer { return NewOmniAnomaly(seed) },
	}
}

// NewJumpStarterMethod builds the JumpStarter baseline as a Method.
func NewJumpStarterMethod() *Multivariate {
	return &Multivariate{
		Label: "JumpStarter",
		Build: func(seed uint64) MultiScorer { return NewJumpStarter(seed) },
	}
}

// markTicks implements the ensemble tick-marking hook.
func (m *Multivariate) markTicks(u *dataset.UnitData) ([]bool, error) {
	if !m.ready {
		return nil, errNotTrained
	}
	scores := m.scoreUnits([]*dataset.UnitData{u})
	return markWindowTicks(scores[0], m.best, u.Unit.Series.Len()), nil
}
