package baselines

import (
	"math"

	"dbcatcher/internal/mathx"
)

// OmniAnomaly implements a reduced-scale version of the OmniAnomaly
// baseline [15]: a GRU encodes a multivariate window into a stochastic
// latent (variational autoencoder with diagonal Gaussian), a decoder
// reconstructs the window's last observation, and the anomaly score of a
// time step is its reconstruction error under the learned model.
type OmniAnomaly struct {
	// Window is the sequence length T fed to the GRU (default 12).
	Window int
	// Hidden is the GRU state size (default 12).
	Hidden int
	// Latent is the VAE latent size (default 4).
	Latent int
	// Epochs over the sampled training windows (default 2).
	Epochs int
	// SamplesPerEpoch caps the windows drawn per epoch (default 1500).
	SamplesPerEpoch int
	// LearningRate for SGD (default 0.01).
	LearningRate float64
	// KLWeight scales the KL term (default 0.05).
	KLWeight float64
	// Seed drives initialization and sampling.
	Seed uint64

	enc     *gru
	mu, lv  *dense // latent heads
	dec1    *dense // latent -> hidden (tanh)
	dec2    *dense // hidden -> D
	dims    int
	means   []float64 // per-dim normalization
	stds    []float64
	trained bool
}

// NewOmniAnomaly returns an untrained model with default hyperparameters.
func NewOmniAnomaly(seed uint64) *OmniAnomaly {
	return &OmniAnomaly{
		Window:          12,
		Hidden:          12,
		Latent:          4,
		Epochs:          2,
		SamplesPerEpoch: 1500,
		LearningRate:    0.01,
		KLWeight:        0.05,
		Seed:            seed,
	}
}

// Name implements MultiScorer.
func (m *OmniAnomaly) Name() string { return "OmniAnomaly" }

// Fit trains the GRU-VAE on the multivariate series (rows = dims).
func (m *OmniAnomaly) Fit(x [][]float64) {
	if len(x) == 0 || len(x[0]) <= m.Window {
		return
	}
	rng := mathx.NewRNG(m.Seed)
	m.dims = len(x)
	m.fitNormalization(x)
	norm := m.normalize(x)

	m.enc = newGRU(m.dims, m.Hidden, rng.Split(1))
	m.mu = newDense(m.Hidden, m.Latent, rng.Split(2))
	m.lv = newDense(m.Hidden, m.Latent, rng.Split(3))
	m.dec1 = newDense(m.Latent, m.Hidden, rng.Split(4))
	m.dec2 = newDense(m.Hidden, m.dims, rng.Split(5))

	n := len(norm[0])
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for s := 0; s < m.SamplesPerEpoch; s++ {
			start := rng.Intn(n - m.Window)
			m.trainWindow(norm, start, rng)
		}
	}
	m.trained = true
}

func (m *OmniAnomaly) fitNormalization(x [][]float64) {
	m.means = make([]float64, len(x))
	m.stds = make([]float64, len(x))
	for d, row := range x {
		m.means[d] = mathx.Mean(row)
		m.stds[d] = mathx.Std(row)
		if m.stds[d] == 0 {
			m.stds[d] = 1
		}
	}
}

// normalizeSelf z-scores each dimension by its own statistics.
func normalizeSelf(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for d, row := range x {
		mean := mathx.Mean(row)
		std := mathx.Std(row)
		if std == 0 {
			std = 1
		}
		o := make([]float64, len(row))
		for i, v := range row {
			o[i] = (v - mean) / std
		}
		out[d] = o
	}
	return out
}

func (m *OmniAnomaly) normalize(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for d, row := range x {
		o := make([]float64, len(row))
		for i, v := range row {
			o[i] = (v - m.means[d]) / m.stds[d]
		}
		out[d] = o
	}
	return out
}

// column extracts time step t as a D-vector.
func column(x [][]float64, t int) []float64 {
	out := make([]float64, len(x))
	for d := range x {
		out[d] = x[d][t]
	}
	return out
}

// encode runs the GRU over the window and returns the step caches and the
// final hidden state.
func (m *OmniAnomaly) encode(x [][]float64, start int) ([]*gruStep, []float64) {
	h := make([]float64, m.Hidden)
	steps := make([]*gruStep, m.Window)
	for t := 0; t < m.Window; t++ {
		var s *gruStep
		h, s = m.enc.step(column(x, start+t), h)
		steps[t] = s
	}
	return steps, h
}

// trainWindow runs one SGD step on the window starting at `start`.
func (m *OmniAnomaly) trainWindow(x [][]float64, start int, rng *mathx.RNG) {
	steps, hT := m.encode(x, start)
	mu := m.mu.forward(hT)
	lv := m.lv.forward(hT)
	// Clamp log-variance for stability.
	for i := range lv {
		lv[i] = mathx.Clamp(lv[i], -6, 6)
	}
	eps := make([]float64, m.Latent)
	z := make([]float64, m.Latent)
	for i := range z {
		eps[i] = rng.Norm()
		z[i] = mu[i] + math.Exp(lv[i]/2)*eps[i]
	}
	// Decode.
	hid := m.dec1.forward(z)
	act := make([]float64, len(hid))
	for i, v := range hid {
		act[i] = math.Tanh(v)
	}
	recon := m.dec2.forward(act)
	target := column(x, start+m.Window-1)

	// Gradients: L = 0.5*||recon - target||² + β*KL.
	dRecon := make([]float64, m.dims)
	for i := range dRecon {
		dRecon[i] = recon[i] - target[i]
	}
	dAct := m.dec2.backward(act, dRecon)
	dHid := make([]float64, len(hid))
	for i := range dHid {
		dHid[i] = dtanh(act[i]) * dAct[i]
	}
	dZ := m.dec1.backward(z, dHid)
	// Reparameterization: dmu = dz; dlv = dz * eps * exp(lv/2) / 2.
	dMu := make([]float64, m.Latent)
	dLv := make([]float64, m.Latent)
	for i := range dMu {
		dMu[i] = dZ[i]
		dLv[i] = dZ[i] * eps[i] * math.Exp(lv[i]/2) / 2
	}
	// KL(N(mu, sigma) || N(0, 1)) = 0.5*sum(mu² + e^lv - lv - 1).
	for i := range dMu {
		dMu[i] += m.KLWeight * mu[i]
		dLv[i] += m.KLWeight * 0.5 * (math.Exp(lv[i]) - 1)
	}
	dhT := m.mu.backward(hT, dMu)
	dhT2 := m.lv.backward(hT, dLv)
	for i := range dhT {
		dhT[i] += dhT2[i]
	}
	// BPTT through the GRU.
	dh := dhT
	for t := m.Window - 1; t >= 0; t-- {
		dh = m.enc.backStep(steps[t], dh)
	}
	lr := m.LearningRate
	m.enc.stepParams(lr)
	m.mu.step(lr)
	m.lv.step(lr)
	m.dec1.step(lr)
	m.dec2.step(lr)
}

// reconstructLast returns the deterministic (z = mu) reconstruction of the
// last point of the window starting at `start`.
func (m *OmniAnomaly) reconstructLast(x [][]float64, start int) []float64 {
	_, hT := m.encode(x, start)
	mu := m.mu.forward(hT)
	hid := m.dec1.forward(mu)
	for i, v := range hid {
		hid[i] = math.Tanh(v)
	}
	return m.dec2.forward(hid)
}

// ScoresMulti implements MultiScorer: per-step mean squared
// reconstruction error of the normalized observation.
func (m *OmniAnomaly) ScoresMulti(x [][]float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	n := len(x[0])
	out := make([]float64, n)
	if !m.trained || len(x) != m.dims || n < m.Window {
		return out
	}
	// Normalize with the *input's* own statistics: units differ in scale
	// and gain, and the model should judge shape, not level.
	norm := normalizeSelf(x)
	for t := m.Window - 1; t < n; t++ {
		start := t - m.Window + 1
		recon := m.reconstructLast(norm, start)
		target := column(norm, t)
		var err float64
		for d := range target {
			diff := recon[d] - target[d]
			err += diff * diff
		}
		out[t] = err / float64(m.dims)
	}
	for t := 0; t < m.Window-1; t++ {
		out[t] = out[m.Window-1]
	}
	return out
}
