package baselines

import (
	"math"
	"testing"

	"dbcatcher/internal/mathx"
)

// spikySeries builds a smooth sine with injected spikes at the given
// indices.
func spikySeries(n int, spikes ...int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/40)
	}
	for _, s := range spikes {
		x[s] *= 3
	}
	return x
}

// assertSpikesRank checks that the injected spike points receive higher
// scores than the typical point.
func assertSpikesRank(t *testing.T, name string, scores []float64, spikes []int) {
	t.Helper()
	med := mathx.Median(scores)
	for _, s := range spikes {
		if scores[s] <= med {
			t.Errorf("%s: spike at %d scored %v, median %v", name, s, scores[s], med)
		}
	}
	// Spikes should be among the top scores.
	top := mathx.Quantile(scores, 0.95)
	hits := 0
	for _, s := range spikes {
		if scores[s] >= top {
			hits++
		}
	}
	if hits == 0 {
		t.Errorf("%s: no spike reached the top-5%% scores", name)
	}
}

func TestFFTDetectorFindsSpikes(t *testing.T) {
	spikes := []int{100, 201, 333}
	x := spikySeries(512, spikes...)
	scores := FFTDetector{}.Scores(x)
	if len(scores) != 512 {
		t.Fatalf("score length %d", len(scores))
	}
	assertSpikesRank(t, "FFT", scores, spikes)
}

func TestSRDetectorFindsSpikes(t *testing.T) {
	spikes := []int{80, 222, 400}
	x := spikySeries(512, spikes...)
	scores := SRDetector{}.Scores(x)
	assertSpikesRank(t, "SR", scores, spikes)
}

func TestScorersHandleDegenerateInput(t *testing.T) {
	for _, s := range []PointScorer{FFTDetector{}, SRDetector{}, NewSRCNN(1)} {
		if got := s.Scores(nil); got != nil {
			t.Errorf("%s: nil input should give nil", s.Name())
		}
		short := s.Scores([]float64{1, 2, 3})
		if len(short) != 3 {
			t.Errorf("%s: short input length mismatch", s.Name())
		}
		constant := s.Scores(make([]float64, 64))
		for _, v := range constant {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: NaN/Inf on constant input", s.Name())
			}
		}
	}
}

func TestNormalizeScores(t *testing.T) {
	s := normalizeScores([]float64{1, 1, 1, 1, 10})
	for i := 0; i < 4; i++ {
		if s[i] != 0 {
			t.Fatalf("typical point score %v, want 0", s[i])
		}
	}
	if s[4] <= 0 {
		t.Fatal("outlier should score positive")
	}
	if got := normalizeScores(nil); len(got) != 0 {
		t.Fatal("empty input")
	}
}

func TestSRCNNTrainsAndDetects(t *testing.T) {
	// Train on smooth series; SR-CNN must then rank injected spikes high.
	rng := mathx.NewRNG(5)
	var normal [][]float64
	for i := 0; i < 6; i++ {
		x := make([]float64, 300)
		for j := range x {
			x[j] = 20 + 5*math.Sin(2*math.Pi*float64(j)/50) + rng.Norm()*0.3
		}
		normal = append(normal, x)
	}
	m := NewSRCNN(7)
	m.Fit(normal)
	if !m.ready {
		t.Fatal("model not ready after Fit")
	}
	spikes := []int{120, 240}
	x := spikySeries(400, spikes...)
	scores := m.Scores(x)
	assertSpikesRank(t, "SR-CNN", scores, spikes)
}

func TestSRCNNUnfittedFallsBack(t *testing.T) {
	m := NewSRCNN(1)
	spikes := []int{100}
	scores := m.Scores(spikySeries(256, spikes...))
	assertSpikesRank(t, "SR-CNN-unfitted", scores, spikes)
}

func TestExtrapolate(t *testing.T) {
	// A rising line extrapolates upward.
	x := []float64{1, 2, 3, 4, 5, 6, 7}
	if got := extrapolate(x); got <= 7 {
		t.Fatalf("extrapolate = %v, want > 7", got)
	}
	if got := extrapolate([]float64{5}); got != 5 {
		t.Fatalf("short series extrapolation = %v", got)
	}
}

func TestWaveletDetectorFindsSpikes(t *testing.T) {
	spikes := []int{90, 260, 410}
	x := spikySeries(512, spikes...)
	scores := WaveletDetector{}.Scores(x)
	if len(scores) != 512 {
		t.Fatalf("score length %d", len(scores))
	}
	assertSpikesRank(t, "Wavelet", scores, spikes)
}

func TestWaveletDegenerate(t *testing.T) {
	w := WaveletDetector{}
	if w.Scores(nil) != nil {
		t.Fatal("nil input")
	}
	short := w.Scores([]float64{1, 2, 3})
	if len(short) != 3 {
		t.Fatal("short input length")
	}
	// Non-power-of-two length must work via padding.
	odd := w.Scores(spikySeries(300, 150))
	if len(odd) != 300 {
		t.Fatal("odd-length input")
	}
}

func TestRRCFFindsSpikes(t *testing.T) {
	spikes := []int{120, 300}
	x := spikySeries(512, spikes...)
	scores := NewRRCF(3).Scores(x)
	if len(scores) != 512 {
		t.Fatalf("score length %d", len(scores))
	}
	assertSpikesRank(t, "RRCF", scores, spikes)
}

func TestRRCFDegenerate(t *testing.T) {
	r := NewRRCF(1)
	short := r.Scores([]float64{1, 2, 3})
	for _, v := range short {
		if v != 0 {
			t.Fatal("too-short input should score zero")
		}
	}
	constant := r.Scores(make([]float64, 128))
	for _, v := range constant {
		if v != 0 {
			t.Fatal("constant input should score zero")
		}
	}
}

func TestRRCFTreeInvariants(t *testing.T) {
	rng := mathx.NewRNG(5)
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{rng.Norm(), rng.Norm(), rng.Norm()}
	}
	root := buildRC(pts, rng)
	var walk func(n *rcNode) int
	walk = func(n *rcNode) int {
		if n.left == nil {
			if n.point == nil {
				t.Fatal("leaf without point")
			}
			return n.size
		}
		got := walk(n.left) + walk(n.right)
		if got != n.size {
			t.Fatalf("size mismatch: %d children vs %d recorded", got, n.size)
		}
		// Bounding box contains children's boxes.
		for j := range n.lo {
			if n.left.lo[j] < n.lo[j] || n.right.hi[j] > n.hi[j] {
				t.Fatal("child box escapes parent box")
			}
		}
		return got
	}
	if walk(root) != 64 {
		t.Fatal("tree lost points")
	}
}

func TestRRCFOutlierHasHighCoDisp(t *testing.T) {
	rng := mathx.NewRNG(6)
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{rng.Norm(), rng.Norm()}
	}
	root := buildRC(pts, rng)
	inlier := coDisp(root, []float64{0, 0})
	outlier := coDisp(root, []float64{50, 50})
	if outlier <= inlier {
		t.Fatalf("outlier CoDisp %v should exceed inlier %v", outlier, inlier)
	}
}
