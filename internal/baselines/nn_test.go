package baselines

import (
	"math"
	"testing"

	"dbcatcher/internal/mathx"
)

func TestDenseForwardBackwardGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(1)
	d := newDense(3, 2, rng)
	x := []float64{0.5, -1, 2}
	// Loss = sum(y²)/2; analytic gradient vs numeric.
	y := d.forward(x)
	dy := mathx.Clone(y)
	dx := d.backward(x, dy)
	const eps = 1e-6
	loss := func() float64 {
		out := d.forward(x)
		var s float64
		for _, v := range out {
			s += v * v / 2
		}
		return s
	}
	// Check weight gradients.
	for i := range d.w {
		orig := d.w[i]
		d.w[i] = orig + eps
		up := loss()
		d.w[i] = orig - eps
		down := loss()
		d.w[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-d.gw[i]) > 1e-4 {
			t.Fatalf("dense weight grad %d: analytic %v numeric %v", i, d.gw[i], num)
		}
	}
	// Check input gradients.
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-4 {
			t.Fatalf("dense input grad %d: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

func TestConv1dGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(2)
	c := newConv1d(3, 2, rng)
	x := []float64{0.1, -0.4, 0.8, 1.2, -0.7}
	out := c.forward(x)
	dout := make([][]float64, len(out))
	for f := range out {
		dout[f] = mathx.Clone(out[f])
	}
	dx := c.backward(x, dout)
	loss := func() float64 {
		o := c.forward(x)
		var s float64
		for _, row := range o {
			for _, v := range row {
				s += v * v / 2
			}
		}
		return s
	}
	const eps = 1e-6
	for i := range c.w {
		orig := c.w[i]
		c.w[i] = orig + eps
		up := loss()
		c.w[i] = orig - eps
		down := loss()
		c.w[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-c.gw[i]) > 1e-4 {
			t.Fatalf("conv weight grad %d: analytic %v numeric %v", i, c.gw[i], num)
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-4 {
			t.Fatalf("conv input grad %d: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

// TestGRUGradientCheck verifies the BPTT implementation numerically: loss
// is sum(h_T²)/2 over a 3-step sequence.
func TestGRUGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(3)
	g := newGRU(2, 3, rng)
	xs := [][]float64{{0.5, -1}, {0.2, 0.7}, {-0.3, 0.1}}

	run := func() ([]float64, []*gruStep) {
		h := make([]float64, 3)
		steps := make([]*gruStep, len(xs))
		for i, x := range xs {
			var s *gruStep
			h, s = g.step(x, h)
			steps[i] = s
		}
		return h, steps
	}
	loss := func() float64 {
		h, _ := run()
		var s float64
		for _, v := range h {
			s += v * v / 2
		}
		return s
	}

	h, steps := run()
	dh := mathx.Clone(h)
	for i := len(steps) - 1; i >= 0; i-- {
		dh = g.backStep(steps[i], dh)
	}

	check := func(name string, w, gw []float64) {
		const eps = 1e-6
		for i := range w {
			orig := w[i]
			w[i] = orig + eps
			up := loss()
			w[i] = orig - eps
			down := loss()
			w[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-gw[i]) > 1e-4 {
				t.Fatalf("%s grad %d: analytic %v numeric %v", name, i, gw[i], num)
			}
		}
	}
	check("wz", g.wz, g.gwz)
	check("uz", g.uz, g.guz)
	check("bz", g.bz, g.gbz)
	check("wr", g.wr, g.gwr)
	check("ur", g.ur, g.gur)
	check("br", g.br, g.gbr)
	check("wh", g.wh, g.gwh)
	check("uh", g.uh, g.guh)
	check("bh", g.bh, g.gbh)
}

func TestDenseTrainingReducesLoss(t *testing.T) {
	// Fit y = 2x with a single dense layer.
	rng := mathx.NewRNG(4)
	d := newDense(1, 1, rng)
	for i := 0; i < 500; i++ {
		x := []float64{rng.Range(-1, 1)}
		target := 2 * x[0]
		y := d.forward(x)
		dy := []float64{y[0] - target}
		d.backward(x, dy)
		d.step(0.1)
	}
	if math.Abs(d.w[0]-2) > 0.05 {
		t.Fatalf("learned weight %v, want ~2", d.w[0])
	}
}
