package baselines

import (
	"dbcatcher/internal/mathx"
)

// RRCF implements the Robust Random Cut Forest baseline of the related
// work [39]: an ensemble of random-cut trees over shingled observations;
// a point's anomaly score is its average collusive displacement (CoDisp)
// across trees — how much tree mass an attacker would displace by
// "colluding" the point's subtree away.
type RRCF struct {
	// Trees in the forest (default 24).
	Trees int
	// SampleSize per tree (default 128).
	SampleSize int
	// Shingle is the sliding-window embedding width (default 4).
	Shingle int
	// Seed drives sampling and cuts.
	Seed uint64
}

// NewRRCF returns a forest with default hyperparameters.
func NewRRCF(seed uint64) *RRCF {
	return &RRCF{Trees: 24, SampleSize: 128, Shingle: 4, Seed: seed}
}

// Name implements PointScorer.
func (r *RRCF) Name() string { return "RRCF" }

// rcNode is one node of a random cut tree.
type rcNode struct {
	// Leaf payload.
	point []float64
	// Internal split.
	dim         int
	cut         float64
	left, right *rcNode
	// Bounding box and subtree size.
	lo, hi []float64
	size   int
}

// Scores implements PointScorer.
func (r *RRCF) Scores(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n < r.shingle()*4 {
		return out
	}
	rng := mathx.NewRNG(r.Seed)
	sh := r.shingle()
	points := make([][]float64, n-sh+1)
	for i := range points {
		points[i] = x[i : i+sh]
	}
	trees := r.trees()
	sample := r.sampleSize()
	if sample > len(points) {
		sample = len(points)
	}
	sums := make([]float64, len(points))
	for t := 0; t < trees; t++ {
		idx := rng.Sample(len(points), sample)
		pts := make([][]float64, sample)
		for i, j := range idx {
			pts[i] = points[j]
		}
		root := buildRC(pts, rng)
		for i, p := range points {
			sums[i] += coDisp(root, p)
		}
	}
	// A shingle's score lands on its last point (the newest observation).
	scores := make([]float64, len(points))
	inv := 1 / float64(trees)
	for i := range scores {
		scores[i] = sums[i] * inv
	}
	scores = normalizeScores(scores)
	for i, s := range scores {
		out[i+sh-1] = s
	}
	// Leading points reuse the first shingle's score.
	for i := 0; i < sh-1; i++ {
		out[i] = out[sh-1]
	}
	return out
}

func (r *RRCF) shingle() int {
	if r.Shingle <= 0 {
		return 4
	}
	return r.Shingle
}

func (r *RRCF) trees() int {
	if r.Trees <= 0 {
		return 24
	}
	return r.Trees
}

func (r *RRCF) sampleSize() int {
	if r.SampleSize <= 0 {
		return 128
	}
	return r.SampleSize
}

// buildRC recursively builds a random cut tree: the cut dimension is drawn
// proportionally to the bounding-box side lengths and the cut position
// uniformly within the box (the RRCF construction).
func buildRC(points [][]float64, rng *mathx.RNG) *rcNode {
	node := &rcNode{size: len(points)}
	node.lo, node.hi = boundingBox(points)
	if len(points) == 1 {
		node.point = points[0]
		return node
	}
	dim, cut, ok := randomCut(node.lo, node.hi, rng)
	if !ok {
		// All points identical: collapse to a weighted leaf.
		node.point = points[0]
		return node
	}
	var left, right [][]float64
	for _, p := range points {
		if p[dim] <= cut {
			left = append(left, p)
		} else {
			right = append(right, p)
		}
	}
	// A uniform cut inside the box always separates at least one point,
	// but guard against degenerate float behaviour.
	if len(left) == 0 || len(right) == 0 {
		node.point = points[0]
		return node
	}
	node.dim = dim
	node.cut = cut
	node.left = buildRC(left, rng)
	node.right = buildRC(right, rng)
	return node
}

func boundingBox(points [][]float64) (lo, hi []float64) {
	d := len(points[0])
	lo = append([]float64(nil), points[0]...)
	hi = append([]float64(nil), points[0]...)
	for _, p := range points[1:] {
		for j := 0; j < d; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	return lo, hi
}

// randomCut draws (dimension, position) proportional to side lengths.
func randomCut(lo, hi []float64, rng *mathx.RNG) (int, float64, bool) {
	total := 0.0
	for j := range lo {
		total += hi[j] - lo[j]
	}
	if total == 0 {
		return 0, 0, false
	}
	u := rng.Float64() * total
	for j := range lo {
		side := hi[j] - lo[j]
		if u < side {
			return j, lo[j] + u, true
		}
		u -= side
	}
	return len(lo) - 1, hi[len(lo)-1], true
}

// coDisp simulates inserting p into the tree and returns the collusive
// displacement: the maximum, over ancestors of the insertion point, of
// sibling-subtree size divided by the size of the subtree being displaced.
func coDisp(root *rcNode, p []float64) float64 {
	best := 0.0
	node := root
	displaced := 1 // the colluding subtree starts as just p
	for node.left != nil {
		var sibling *rcNode
		var next *rcNode
		if p[node.dim] <= node.cut {
			next, sibling = node.left, node.right
		} else {
			next, sibling = node.right, node.left
		}
		// If p falls outside the child's bounding box, RRCF would have cut
		// p off here with high probability: the displacement is the whole
		// subtree below.
		if outsideBox(next, p) {
			disp := float64(next.size) / float64(displaced)
			if disp > best {
				best = disp
			}
		}
		disp := float64(sibling.size) / float64(displaced)
		if disp > best {
			best = disp
		}
		displaced += sibling.size
		node = next
	}
	return best
}

func outsideBox(n *rcNode, p []float64) bool {
	for j := range p {
		if p[j] < n.lo[j] || p[j] > n.hi[j] {
			return true
		}
	}
	return false
}

// NewRRCFMethod builds the RRCF baseline as a Method (available for
// extended comparisons beyond the paper's five).
func NewRRCFMethod() *Univariate {
	return &Univariate{
		Label: "RRCF",
		Build: func(seed uint64) PointScorer { return NewRRCF(seed) },
	}
}
