package baselines

import (
	"math"

	"dbcatcher/internal/mathx"
)

// Small neural-network primitives shared by the SR-CNN and OmniAnomaly
// baselines. These are deliberately minimal: plain float64 slices, manual
// backprop, SGD — enough to train the reduced-scale models the comparison
// needs, with gradient-checked correctness (see nn_test.go).

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func dsigmoid(y float64) float64 { return y * (1 - y) } // y = sigmoid(x)

func dtanh(y float64) float64 { return 1 - y*y } // y = tanh(x)

// xavier initializes a weight slice with scaled uniform noise.
func xavier(w []float64, fanIn, fanOut int, rng *mathx.RNG) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = rng.Range(-limit, limit)
	}
}

// dense is a fully connected layer y = W·x + b.
type dense struct {
	in, out int
	w       []float64 // out x in, row-major
	b       []float64
	gw      []float64
	gb      []float64
}

func newDense(in, out int, rng *mathx.RNG) *dense {
	d := &dense{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	xavier(d.w, in, out, rng)
	return d
}

func (d *dense) forward(x []float64) []float64 {
	y := make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		sum := d.b[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
	return y
}

// backward accumulates gradients given upstream dL/dy and returns dL/dx.
func (d *dense) backward(x, dy []float64) []float64 {
	dx := make([]float64, d.in)
	for o := 0; o < d.out; o++ {
		g := dy[o]
		d.gb[o] += g
		row := d.w[o*d.in : (o+1)*d.in]
		grow := d.gw[o*d.in : (o+1)*d.in]
		for i, xi := range x {
			grow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

func (d *dense) step(lr float64) {
	for i := range d.w {
		d.w[i] -= lr * d.gw[i]
		d.gw[i] = 0
	}
	for i := range d.b {
		d.b[i] -= lr * d.gb[i]
		d.gb[i] = 0
	}
}

// conv1d is a 1-D valid convolution with F filters of width K over a
// single input channel.
type conv1d struct {
	k, filters int
	w          []float64 // filters x k
	b          []float64
	gw         []float64
	gb         []float64
}

func newConv1d(k, filters int, rng *mathx.RNG) *conv1d {
	c := &conv1d{
		k: k, filters: filters,
		w:  make([]float64, k*filters),
		b:  make([]float64, filters),
		gw: make([]float64, k*filters),
		gb: make([]float64, filters),
	}
	xavier(c.w, k, filters, rng)
	return c
}

// forward returns [filters][outLen] activations with outLen = len(x)-k+1.
func (c *conv1d) forward(x []float64) [][]float64 {
	outLen := len(x) - c.k + 1
	if outLen < 1 {
		return nil
	}
	out := make([][]float64, c.filters)
	for f := 0; f < c.filters; f++ {
		kern := c.w[f*c.k : (f+1)*c.k]
		row := make([]float64, outLen)
		for t := 0; t < outLen; t++ {
			sum := c.b[f]
			for j := 0; j < c.k; j++ {
				sum += kern[j] * x[t+j]
			}
			row[t] = sum
		}
		out[f] = row
	}
	return out
}

// backward accumulates gradients from upstream dL/dout and returns dL/dx.
func (c *conv1d) backward(x []float64, dout [][]float64) []float64 {
	dx := make([]float64, len(x))
	outLen := len(x) - c.k + 1
	for f := 0; f < c.filters; f++ {
		kern := c.w[f*c.k : (f+1)*c.k]
		gker := c.gw[f*c.k : (f+1)*c.k]
		for t := 0; t < outLen; t++ {
			g := dout[f][t]
			if g == 0 {
				continue
			}
			c.gb[f] += g
			for j := 0; j < c.k; j++ {
				gker[j] += g * x[t+j]
				dx[t+j] += g * kern[j]
			}
		}
	}
	return dx
}

func (c *conv1d) step(lr float64) {
	for i := range c.w {
		c.w[i] -= lr * c.gw[i]
		c.gw[i] = 0
	}
	for i := range c.b {
		c.b[i] -= lr * c.gb[i]
		c.gb[i] = 0
	}
}
