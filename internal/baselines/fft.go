package baselines

import (
	"math"

	"dbcatcher/internal/mathx"
)

// FFTDetector implements the FFT baseline [7]: the series is decomposed
// into frequency components, the low-frequency part is kept as the local
// trend, and each point's anomaly score is its deviation from that trend
// relative to the robust deviation scale — "the degree of difference
// between time series points and surrounding points".
type FFTDetector struct {
	// KeepFraction of the lowest frequencies forms the trend estimate
	// (default 0.1).
	KeepFraction float64
}

// Name implements PointScorer.
func (f FFTDetector) Name() string { return "FFT" }

// Scores implements PointScorer.
func (f FFTDetector) Scores(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n < 8 {
		return make([]float64, n)
	}
	keep := f.KeepFraction
	if keep <= 0 {
		keep = 0.1
	}
	spec := mathx.RealFFT(x)
	// Zero all but the lowest `cut` frequency bins (and their conjugate
	// mirrors) to obtain a smooth trend.
	cut := int(keep * float64(n) / 2)
	if cut < 1 {
		cut = 1
	}
	for k := cut + 1; k < n-cut; k++ {
		spec[k] = 0
	}
	trend := mathx.RealIFFT(spec)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = math.Abs(x[i] - trend[i])
	}
	return normalizeScores(resid)
}
