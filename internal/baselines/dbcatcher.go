package baselines

import (
	"time"

	"dbcatcher/internal/correlate"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
)

// DBCatcherMethod adapts the full DBCatcher pipeline to the Method
// interface so the experiment harness treats it uniformly with the
// baselines: training runs the adaptive threshold learning (GA by
// default) over the training units; evaluation runs the streaming
// detector with the learned thresholds.
type DBCatcherMethod struct {
	// Flex configures the flexible window; zero value means the default
	// W=20, W_M=60.
	Flex window.FlexConfig
	// Measure overrides the correlation measure (Table X ablations); nil
	// means KCD.
	Measure correlate.Measure
	// Searcher overrides the threshold learner; nil means the GA.
	Searcher thresholds.Searcher

	learned window.Thresholds
	ready   bool
}

// NewDBCatcherMethod returns the standard configuration (AMM-KCD).
func NewDBCatcherMethod() *DBCatcherMethod { return &DBCatcherMethod{} }

// Name implements Method.
func (m *DBCatcherMethod) Name() string { return "DBCatcher" }

func (m *DBCatcherMethod) flex() window.FlexConfig {
	if m.Flex == (window.FlexConfig{}) {
		return window.DefaultFlexConfig()
	}
	return m.Flex
}

// Train implements Method: learn thresholds on the training units via the
// adaptive threshold policy, with correlation matrices memoized across
// fitness evaluations.
func (m *DBCatcherMethod) Train(train []*dataset.UnitData, seed uint64) (TrainInfo, error) {
	start := time.Now()
	var samples []thresholds.Sample
	var q int
	for _, u := range train {
		q = u.Unit.Series.KPIs
		samples = append(samples, thresholds.Sample{
			Provider: detect.NewCachedProvider(detect.NewProvider(u.Unit.Series, m.Measure, nil)),
			Labels:   u.Labels,
		})
	}
	searcher := m.Searcher
	if searcher == nil {
		searcher = thresholds.GA{Seed: seed}
	}
	fitness := thresholds.DetectorFitness(samples, m.flex())
	res := searcher.Search(q, fitness)
	if err := res.Best.Validate(q); err != nil {
		return TrainInfo{}, err
	}
	m.learned = res.Best
	m.ready = true
	return TrainInfo{
		Duration:   time.Since(start),
		BestF:      res.Fitness,
		WindowSize: m.flex().Initial,
	}, nil
}

// Evaluate implements Method.
func (m *DBCatcherMethod) Evaluate(test []*dataset.UnitData) (Result, error) {
	if !m.ready {
		return Result{}, errNotTrained
	}
	var c metrics.Confusion
	var sizeSum float64
	var verdictCount int
	for _, u := range test {
		verdicts, _, err := detect.Run(u.Unit.Series, detect.Config{
			Thresholds: m.learned,
			Flex:       m.flex(),
			Measure:    m.Measure,
		})
		if err != nil {
			return Result{}, err
		}
		part, err := detect.Evaluate(verdicts, u.Labels)
		if err != nil {
			return Result{}, err
		}
		c.Merge(part)
		for _, v := range verdicts {
			sizeSum += float64(v.Size)
			verdictCount++
		}
	}
	avg := 0.0
	if verdictCount > 0 {
		avg = sizeSum / float64(verdictCount)
	}
	return Result{Confusion: c, AvgWindowSize: avg}, nil
}

// Thresholds returns the learned judgment parameters (after Train).
func (m *DBCatcherMethod) Thresholds() window.Thresholds { return m.learned.Clone() }
