package baselines

import (
	"time"

	"dbcatcher/internal/correlate"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/fleet"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
)

// DBCatcherMethod adapts the full DBCatcher pipeline to the Method
// interface so the experiment harness treats it uniformly with the
// baselines: training runs the adaptive threshold learning (GA by
// default) over the training units; evaluation runs the streaming
// detector with the learned thresholds.
type DBCatcherMethod struct {
	// Flex configures the flexible window; zero value means the default
	// W=20, W_M=60.
	Flex window.FlexConfig
	// Measure overrides the correlation measure (Table X ablations); nil
	// means KCD.
	Measure correlate.Measure
	// Searcher overrides the threshold learner; nil means the GA.
	Searcher thresholds.Searcher
	// Concurrency fans the per-unit work out during training (fitness
	// evaluation across labelled units) and evaluation (detection across
	// test units): <= 0 uses GOMAXPROCS, 1 forces serial. Results are
	// identical at any setting.
	Concurrency int

	learned window.Thresholds
	ready   bool
}

// NewDBCatcherMethod returns the standard configuration (AMM-KCD).
func NewDBCatcherMethod() *DBCatcherMethod { return &DBCatcherMethod{} }

// Name implements Method.
func (m *DBCatcherMethod) Name() string { return "DBCatcher" }

func (m *DBCatcherMethod) flex() window.FlexConfig {
	if m.Flex == (window.FlexConfig{}) {
		return window.DefaultFlexConfig()
	}
	return m.Flex
}

// Train implements Method: learn thresholds on the training units via the
// adaptive threshold policy, with correlation matrices memoized across
// fitness evaluations.
func (m *DBCatcherMethod) Train(train []*dataset.UnitData, seed uint64) (TrainInfo, error) {
	start := time.Now()
	var samples []thresholds.Sample
	var q int
	for _, u := range train {
		q = u.Unit.Series.KPIs
		samples = append(samples, thresholds.Sample{
			Provider: detect.NewCachedProvider(detect.NewProvider(u.Unit.Series, m.Measure, nil)),
			Labels:   u.Labels,
		})
	}
	searcher := m.Searcher
	if searcher == nil {
		// The default GA evaluates genomes serially; the parallel axis is
		// the per-unit fan-out inside each fitness evaluation.
		searcher = thresholds.GA{Seed: seed}
	}
	fitness := thresholds.ParallelDetectorFitness(samples, m.flex(), m.Concurrency)
	res := searcher.Search(q, fitness)
	if err := res.Best.Validate(q); err != nil {
		return TrainInfo{}, err
	}
	m.learned = res.Best
	m.ready = true
	return TrainInfo{
		Duration:   time.Since(start),
		BestF:      res.Fitness,
		WindowSize: m.flex().Initial,
	}, nil
}

// Evaluate implements Method.
func (m *DBCatcherMethod) Evaluate(test []*dataset.UnitData) (Result, error) {
	if !m.ready {
		return Result{}, errNotTrained
	}
	cfg := detect.Config{
		Thresholds: m.learned,
		Flex:       m.flex(),
		Measure:    m.Measure,
	}
	if fleet.Resolve(m.Concurrency) > 1 {
		// The fan-out across units is the parallel axis; keep each unit's
		// correlation build serial rather than nesting pools.
		cfg.Workers = 1
	}
	type unitEval struct {
		c       metrics.Confusion
		sizeSum float64
		n       int
	}
	evals, err := fleet.Map(len(test), m.Concurrency, func(i int) (unitEval, error) {
		verdicts, _, err := detect.Run(test[i].Unit.Series, cfg)
		if err != nil {
			return unitEval{}, err
		}
		part, err := detect.Evaluate(verdicts, test[i].Labels)
		if err != nil {
			return unitEval{}, err
		}
		e := unitEval{c: part}
		for _, v := range verdicts {
			e.sizeSum += float64(v.Size)
			e.n++
		}
		return e, nil
	})
	if err != nil {
		return Result{}, err
	}
	var c metrics.Confusion
	var sizeSum float64
	var verdictCount int
	for _, e := range evals {
		c.Merge(e.c)
		sizeSum += e.sizeSum
		verdictCount += e.n
	}
	avg := 0.0
	if verdictCount > 0 {
		avg = sizeSum / float64(verdictCount)
	}
	return Result{Confusion: c, AvgWindowSize: avg}, nil
}

// Thresholds returns the learned judgment parameters (after Train).
func (m *DBCatcherMethod) Thresholds() window.Thresholds { return m.learned.Clone() }
