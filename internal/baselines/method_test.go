package baselines

import (
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/mathx"
)

// tinyDataset builds a small labelled train/test pair quickly.
func tinyDataset(t *testing.T, seed uint64) (train, test []*dataset.UnitData) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Family: dataset.Sysbench,
		Units:  5,
		Ticks:  800,
		Seed:   seed,
		// Higher ratio so the tiny dataset carries enough positives.
		AnomalyRatio: 0.06,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, te, err := ds.Split(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Units, te.Units
}

func TestJudgeUnitRule(t *testing.T) {
	labels := anomaly.NewLabels(40)
	for i := 20; i < 30; i++ {
		labels.Point[i] = true
	}
	dims := [][]float64{
		make([]float64, 40),
		make([]float64, 40),
	}
	dims[0][25] = 10 // hot point in the abnormal window
	dims[1][5] = 10  // hot point in a healthy window
	us := unitScores{dims: dims, labels: labels}

	// k=1: both windows flagged -> 1 TP, 1 FP.
	c := judgeUnit(us, params{tau: 5, windowSize: 20, kOfM: 1})
	if c.TP != 1 || c.FP != 1 {
		t.Fatalf("k=1 confusion = %+v", c)
	}
	// k=2: no window has 2 hot dims -> 0 predicted.
	c = judgeUnit(us, params{tau: 5, windowSize: 20, kOfM: 2})
	if c.TP != 0 || c.FP != 0 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("k=2 confusion = %+v", c)
	}
}

func TestSearchParamsFindsSeparatingRule(t *testing.T) {
	// Construct scores where anomalies are perfectly separable at tau=5,
	// window 20.
	labels := anomaly.NewLabels(200)
	dims := [][]float64{make([]float64, 200)}
	for i := 100; i < 120; i++ {
		labels.Point[i] = true
		dims[0][i] = 10
	}
	us := []unitScores{{dims: dims, labels: labels}}
	p, f := searchParams(us, 1, newTestRNG())
	if f < 0.99 {
		t.Fatalf("search best F = %v, want ~1", f)
	}
	if p.tau <= 0 || p.tau >= 10 {
		t.Fatalf("tau = %v out of separating band", p.tau)
	}
}

func TestStatisticalMethodsEndToEnd(t *testing.T) {
	train, test := tinyDataset(t, 1)
	for _, m := range []Method{NewFFTMethod(), NewSRMethod()} {
		info, err := m.Train(train, 1)
		if err != nil {
			t.Fatalf("%s train: %v", m.Name(), err)
		}
		if info.WindowSize < 15 || info.WindowSize > 100 {
			t.Fatalf("%s window size %d outside grid", m.Name(), info.WindowSize)
		}
		if info.BestF <= 0 {
			t.Fatalf("%s training F = %v", m.Name(), info.BestF)
		}
		res, err := m.Evaluate(test)
		if err != nil {
			t.Fatal(err)
		}
		if res.Confusion.Total() == 0 {
			t.Fatalf("%s produced no windows", m.Name())
		}
	}
}

func TestMethodsRequireTraining(t *testing.T) {
	_, test := tinyDataset(t, 2)
	for _, m := range []Method{NewFFTMethod(), NewOmniAnomalyMethod(), NewDBCatcherMethod()} {
		if _, err := m.Evaluate(test); err == nil {
			t.Fatalf("%s: Evaluate before Train should fail", m.Name())
		}
	}
}

func TestDBCatcherMethodOutperformsOnTinyData(t *testing.T) {
	train, test := tinyDataset(t, 3)
	m := NewDBCatcherMethod()
	info, err := m.Train(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.BestF <= 0.3 {
		t.Fatalf("DBCatcher training F = %v suspiciously low", info.BestF)
	}
	if len(m.Thresholds().Alpha) == 0 {
		t.Fatal("no learned thresholds")
	}
	res, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.FMeasure() <= 0.3 {
		t.Fatalf("DBCatcher test F = %v", res.Confusion.FMeasure())
	}
	if res.Confusion.Recall() <= 0.2 {
		t.Fatalf("DBCatcher test recall = %v", res.Confusion.Recall())
	}
	// Efficiency: the paper's headline — DBCatcher needs ~20-point
	// windows.
	if res.AvgWindowSize > 45 {
		t.Fatalf("DBCatcher avg window %v too large", res.AvgWindowSize)
	}
}

func TestMultivariateMethodsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("deep baselines are slow")
	}
	train, test := tinyDataset(t, 4)
	for _, m := range []Method{NewJumpStarterMethod(), NewOmniAnomalyMethod()} {
		info, err := m.Train(train, 4)
		if err != nil {
			t.Fatalf("%s train: %v", m.Name(), err)
		}
		res, err := m.Evaluate(test)
		if err != nil {
			t.Fatal(err)
		}
		if res.Confusion.Total() == 0 {
			t.Fatalf("%s produced no windows", m.Name())
		}
		_ = info
	}
}

func TestSRCNNMethodEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("SR-CNN training is slow")
	}
	train, test := tinyDataset(t, 5)
	m := NewSRCNNMethod()
	if _, err := m.Train(train, 5); err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() == 0 {
		t.Fatal("no windows judged")
	}
}

// newTestRNG returns a deterministic RNG for tests.
func newTestRNG() *mathx.RNG { return mathx.NewRNG(99) }

func TestSearchParamsPrefersSmallerWindowOnTies(t *testing.T) {
	// All-zero scores with no anomalies: every rule scores F=0, so the
	// search should keep the first (smallest) window size.
	labels := anomaly.NewLabels(400)
	us := []unitScores{{dims: [][]float64{make([]float64, 400)}, labels: labels}}
	p, _ := searchParams(us, 1, newTestRNG())
	if p.windowSize != windowSizeGrid[0] {
		t.Fatalf("tie-break window = %d, want %d", p.windowSize, windowSizeGrid[0])
	}
}

func TestFFTKeepFraction(t *testing.T) {
	// A larger keep fraction tracks the signal more closely, shrinking
	// residuals on smooth input.
	x := spikySeries(512)
	loose := FFTDetector{KeepFraction: 0.02}.Scores(x)
	// Raw residual magnitude isn't directly comparable post-normalization;
	// instead verify scores stay finite and the detector is configurable.
	if len(loose) != 512 {
		t.Fatal("length mismatch")
	}
	tight := FFTDetector{KeepFraction: 0.5}.Scores(x)
	if len(tight) != 512 {
		t.Fatal("length mismatch")
	}
}
