package baselines

import (
	"time"

	"dbcatcher/internal/dataset"
	"dbcatcher/internal/mathx"
)

// Univariate adapts a PointScorer (FFT, SR, SR-CNN) to the Method
// interface using the paper's protocol for univariate detectors: the same
// KPI's series across the unit's databases form one dimension (scored per
// database, aggregated by max), and the k-of-M rule over the M = 14 KPI
// dimensions declares a window abnormal (§IV-B).
type Univariate struct {
	// Label is the method name in tables.
	Label string
	// Build constructs a fresh scorer for a training run; the scorer may
	// be stateful (SR-CNN trains a CNN).
	Build func(seed uint64) PointScorer
	// FitNormal, when non-nil, receives presumed-normal training series
	// so the scorer can fit itself (SR-CNN's synthetic-injection
	// training).
	FitNormal func(scorer PointScorer, normal [][]float64)

	scorer PointScorer
	best   params
	ready  bool
}

// Name implements Method.
func (m *Univariate) Name() string { return m.Label }

// Train implements Method.
func (m *Univariate) Train(train []*dataset.UnitData, seed uint64) (TrainInfo, error) {
	start := time.Now()
	rng := mathx.NewRNG(seed)
	m.scorer = m.Build(seed)
	if m.FitNormal != nil {
		m.FitNormal(m.scorer, normalSeries(train, 40, rng))
	}
	scores := m.scoreUnits(train)
	p, f := searchParams(scores, 3, rng)
	m.best = p
	m.ready = true
	return TrainInfo{Duration: time.Since(start), BestF: f, WindowSize: p.windowSize}, nil
}

// Evaluate implements Method.
func (m *Univariate) Evaluate(test []*dataset.UnitData) (Result, error) {
	if !m.ready {
		return Result{}, errNotTrained
	}
	scores := m.scoreUnits(test)
	c := judgeAll(scores, m.best)
	return Result{Confusion: c, AvgWindowSize: float64(m.best.windowSize)}, nil
}

// scoreUnits computes the per-KPI dimension scores of every unit: each
// database's series is scored independently and the dimension takes the
// per-tick maximum across databases.
func (m *Univariate) scoreUnits(units []*dataset.UnitData) []unitScores {
	out := make([]unitScores, len(units))
	for i, u := range units {
		kpis := u.Unit.Series.KPIs
		dbs := u.Unit.Series.Databases
		n := u.Unit.Series.Len()
		dims := make([][]float64, kpis)
		for k := 0; k < kpis; k++ {
			dim := make([]float64, n)
			for d := 0; d < dbs; d++ {
				s := m.scorer.Scores(u.Unit.Series.Data[k][d].Values)
				for t, v := range s {
					if v > dim[t] {
						dim[t] = v
					}
				}
			}
			dims[k] = dim
		}
		out[i] = unitScores{dims: dims, labels: u.Labels}
	}
	return out
}

// normalSeries samples up to maxSeries healthy series fragments from the
// training units for scorer self-fitting.
func normalSeries(train []*dataset.UnitData, maxSeries int, rng *mathx.RNG) [][]float64 {
	var out [][]float64
	for len(out) < maxSeries && len(train) > 0 {
		u := train[rng.Intn(len(train))]
		k := rng.Intn(u.Unit.Series.KPIs)
		d := rng.Intn(u.Unit.Series.Databases)
		out = append(out, u.Unit.Series.Data[k][d].Values)
	}
	return out
}

// NewFFTMethod builds the FFT baseline as a Method.
func NewFFTMethod() *Univariate {
	return &Univariate{
		Label: "FFT",
		Build: func(uint64) PointScorer { return FFTDetector{} },
	}
}

// NewSRMethod builds the Spectral Residual baseline as a Method.
func NewSRMethod() *Univariate {
	return &Univariate{
		Label: "SR",
		Build: func(uint64) PointScorer { return SRDetector{} },
	}
}

// NewSRCNNMethod builds the SR-CNN baseline as a Method.
func NewSRCNNMethod() *Univariate {
	return &Univariate{
		Label: "SR-CNN",
		Build: func(seed uint64) PointScorer { return NewSRCNN(seed) },
		FitNormal: func(s PointScorer, normal [][]float64) {
			s.(*SRCNN).Fit(normal)
		},
	}
}

// markTicks implements the ensemble tick-marking hook.
func (m *Univariate) markTicks(u *dataset.UnitData) ([]bool, error) {
	if !m.ready {
		return nil, errNotTrained
	}
	scores := m.scoreUnits([]*dataset.UnitData{u})
	return markWindowTicks(scores[0], m.best, u.Unit.Series.Len()), nil
}
