package baselines

import (
	"math"
	"math/cmplx"

	"dbcatcher/internal/mathx"
)

// SRDetector implements the Spectral Residual saliency method [8] as used
// for time series by Ren et al.: the spectral residual of the log
// amplitude spectrum highlights "salient" points, and the score compares
// the saliency map against its local average.
type SRDetector struct {
	// AvgWindow is the width of the spectral mean filter (default 3).
	AvgWindow int
	// LocalWindow is the width of the saliency-map local average used in
	// the final score (default 21).
	LocalWindow int
	// EstimatedPoints extends the series tail before the transform, as the
	// SR paper does, to stabilize the last points (default 5).
	EstimatedPoints int
}

// Name implements PointScorer.
func (s SRDetector) Name() string { return "SR" }

// Scores implements PointScorer.
func (s SRDetector) Scores(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n < 8 {
		return make([]float64, n)
	}
	avgW := s.AvgWindow
	if avgW <= 0 {
		avgW = 3
	}
	localW := s.LocalWindow
	if localW <= 0 {
		localW = 21
	}
	est := s.EstimatedPoints
	if est <= 0 {
		est = 5
	}

	// Tail extension: append `est` copies of an extrapolated point.
	work := make([]float64, 0, n+est)
	work = append(work, x...)
	extrap := extrapolate(x)
	for i := 0; i < est; i++ {
		work = append(work, extrap)
	}

	m := len(work)
	spec := mathx.RealFFT(work)
	amp := make([]float64, m)
	phase := make([]float64, m)
	logAmp := make([]float64, m)
	for i, c := range spec {
		amp[i] = cmplx.Abs(c)
		phase[i] = cmplx.Phase(c)
		logAmp[i] = math.Log(amp[i] + 1e-12)
	}
	avgLog := mathx.MovingAverage(logAmp, avgW)
	// Spectral residual -> back to the time domain with original phase.
	recon := make([]complex128, m)
	for i := range recon {
		r := math.Exp(logAmp[i] - avgLog[i])
		recon[i] = cmplx.Rect(r, phase[i])
	}
	sal := mathx.RealIFFT(recon)
	saliency := make([]float64, m)
	for i, v := range sal {
		saliency[i] = math.Abs(v)
	}
	saliency = saliency[:n]

	// Final score: relative deviation from the local saliency average.
	local := mathx.MovingAverage(saliency, localW)
	out := make([]float64, n)
	for i := range out {
		denom := local[i]
		if denom <= 1e-12 {
			denom = 1e-12
		}
		v := (saliency[i] - local[i]) / denom
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// extrapolate estimates the next value from the gradient of the last few
// points (the SR paper's tail handling).
func extrapolate(x []float64) float64 {
	n := len(x)
	m := 5
	if n < m+1 {
		return x[n-1]
	}
	// Average gradient from the last point to each of the m before it.
	var grad float64
	last := x[n-1]
	for i := 1; i <= m; i++ {
		grad += (last - x[n-1-i]) / float64(i)
	}
	grad /= float64(m)
	return last + grad
}

// Saliency exposes the raw SR saliency map (SR-CNN trains on it).
func (s SRDetector) Saliency(x []float64) []float64 {
	n := len(x)
	if n < 8 {
		return make([]float64, n)
	}
	// Reuse Scores' internals up to the saliency map by recomputing; the
	// duplicate cost is negligible next to training.
	est := s.EstimatedPoints
	if est <= 0 {
		est = 5
	}
	avgW := s.AvgWindow
	if avgW <= 0 {
		avgW = 3
	}
	work := make([]float64, 0, n+est)
	work = append(work, x...)
	extrap := extrapolate(x)
	for i := 0; i < est; i++ {
		work = append(work, extrap)
	}
	m := len(work)
	spec := mathx.RealFFT(work)
	logAmp := make([]float64, m)
	phase := make([]float64, m)
	for i, c := range spec {
		logAmp[i] = math.Log(cmplx.Abs(c) + 1e-12)
		phase[i] = cmplx.Phase(c)
	}
	avgLog := mathx.MovingAverage(logAmp, avgW)
	recon := make([]complex128, m)
	for i := range recon {
		recon[i] = cmplx.Rect(math.Exp(logAmp[i]-avgLog[i]), phase[i])
	}
	sal := mathx.RealIFFT(recon)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Abs(sal[i])
	}
	return out
}
