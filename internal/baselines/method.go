package baselines

import (
	"fmt"
	"time"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/metrics"
)

// Method is the uniform contract every compared approach (the five
// baselines and DBCatcher itself) implements for the experiment harness:
// fit on a labelled training split, then judge a test split into
// window-level verdicts (§IV-B protocol).
type Method interface {
	// Name labels the method in tables.
	Name() string
	// Train fits the method (model parameters and/or thresholds and
	// window size) on the training units.
	Train(train []*dataset.UnitData, seed uint64) (TrainInfo, error)
	// Evaluate judges the test units with the trained parameters.
	Evaluate(test []*dataset.UnitData) (Result, error)
}

// TrainInfo reports what training produced.
type TrainInfo struct {
	// Duration is the wall-clock training time (Table VI / Table IX).
	Duration time.Duration
	// BestF is the F-Measure achieved on the training split.
	BestF float64
	// WindowSize is the selected detection window (Table V / VII / VIII).
	WindowSize int
}

// Result reports test-split performance.
type Result struct {
	Confusion metrics.Confusion
	// AvgWindowSize is the mean points consumed per verdict.
	AvgWindowSize float64
}

// unitScores holds one unit's per-dimension anomaly scores plus truth.
type unitScores struct {
	dims   [][]float64 // [dim][tick]
	labels *anomaly.Labels
}

// params is the searched decision rule: a window is declared abnormal when
// at least kOfM dimensions contain a point whose score exceeds tau.
type params struct {
	tau        float64
	windowSize int
	kOfM       int
}

// windowSizeGrid is the searched Window-Size space; the paper's reported
// best sizes (Tables V, VII, VIII) fall inside it.
var windowSizeGrid = []int{15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100}

// tauQuantiles seed threshold candidates from the pooled score
// distribution.
var tauQuantiles = []float64{0.90, 0.95, 0.97, 0.98, 0.99, 0.995, 0.999}

// searchParams random-searches the decision rule for the best training
// F-Measure, mirroring §IV-B: "Each method uses the training set to
// randomly search thresholds and Window-size for which the optimal
// F-Measure can be obtained".
func searchParams(units []unitScores, maxK int, rng *mathx.RNG) (params, float64) {
	// Pool scores for quantile-based threshold candidates.
	var pooled []float64
	for _, u := range units {
		for _, dim := range u.dims {
			pooled = append(pooled, dim...)
		}
	}
	var taus []float64
	for _, q := range tauQuantiles {
		taus = append(taus, scoreQuantile(pooled, q))
	}
	best := params{tau: taus[0], windowSize: windowSizeGrid[0], kOfM: 1}
	bestF := -1.0
	for _, ws := range windowSizeGrid {
		for _, tau := range taus {
			for k := 1; k <= maxK; k++ {
				p := params{tau: tau, windowSize: ws, kOfM: k}
				f := judgeAll(units, p).FMeasure()
				// Ties favour the smaller window (higher efficiency at
				// equal performance), matching how Table V reads.
				if f > bestF+1e-12 {
					bestF = f
					best = p
				}
			}
		}
	}
	// Jittered random restarts around the best threshold.
	for i := 0; i < 20; i++ {
		p := best
		p.tau *= rng.Range(0.8, 1.25)
		if f := judgeAll(units, p).FMeasure(); f > bestF+1e-12 {
			bestF = f
			best = p
		}
	}
	return best, bestF
}

// judgeAll applies the rule to every unit and merges the confusions.
func judgeAll(units []unitScores, p params) metrics.Confusion {
	var c metrics.Confusion
	for _, u := range units {
		c.Merge(judgeUnit(u, p))
	}
	return c
}

// judgeUnit tiles the unit into non-overlapping windows and applies the
// k-of-M rule; a window's truth is whether it contains a labelled tick.
func judgeUnit(u unitScores, p params) metrics.Confusion {
	var c metrics.Confusion
	if len(u.dims) == 0 {
		return c
	}
	n := len(u.dims[0])
	for start := 0; start+p.windowSize <= n; start += p.windowSize {
		hot := 0
		for _, dim := range u.dims {
			for t := start; t < start+p.windowSize; t++ {
				if dim[t] > p.tau {
					hot++
					break
				}
			}
		}
		predicted := hot >= p.kOfM
		actual := false
		for t := start; t < start+p.windowSize; t++ {
			if u.labels.Point[t] {
				actual = true
				break
			}
		}
		c.Add(predicted, actual)
	}
	return c
}

// errNotTrained is returned when Evaluate precedes Train.
var errNotTrained = fmt.Errorf("baselines: method not trained")

// tickMarker is implemented by methods that can expose per-tick abnormal
// flags for a single unit (used by the ensemble package).
type tickMarker interface {
	markTicks(u *dataset.UnitData) ([]bool, error)
}

// AbnormalTicks returns the method's per-tick abnormal flags for one unit
// under its trained decision rule: every tick of a flagged window is
// marked. The method must have been trained.
func AbnormalTicks(m Method, u *dataset.UnitData) ([]bool, error) {
	tm, ok := m.(tickMarker)
	if !ok {
		return nil, fmt.Errorf("baselines: %s cannot mark ticks", m.Name())
	}
	return tm.markTicks(u)
}

// markWindowTicks applies the rule to one unit's scores and expands
// flagged windows onto the tick axis.
func markWindowTicks(us unitScores, p params, n int) []bool {
	out := make([]bool, n)
	if len(us.dims) == 0 {
		return out
	}
	for start := 0; start+p.windowSize <= n; start += p.windowSize {
		hot := 0
		for _, dim := range us.dims {
			for t := start; t < start+p.windowSize; t++ {
				if dim[t] > p.tau {
					hot++
					break
				}
			}
		}
		if hot >= p.kOfM {
			for t := start; t < start+p.windowSize; t++ {
				out[t] = true
			}
		}
	}
	return out
}
