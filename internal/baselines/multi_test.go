package baselines

import (
	"math"
	"testing"

	"dbcatcher/internal/mathx"
)

// makeMultivariate builds a D-dim series with shared sinusoidal structure
// and an anomalous stretch [aStart, aEnd) where the trend is replaced by a
// flat outlier level on every dimension.
func makeMultivariate(d, n, aStart, aEnd int, seed uint64) [][]float64 {
	rng := mathx.NewRNG(seed)
	out := make([][]float64, d)
	for dim := 0; dim < d; dim++ {
		gain := rng.Range(0.8, 1.2)
		row := make([]float64, n)
		for t := 0; t < n; t++ {
			row[t] = gain * (10 + 4*math.Sin(2*math.Pi*float64(t)/24) + 0.2*rng.Norm())
			if t >= aStart && t < aEnd {
				row[t] = gain * 25 * (1 + 0.05*rng.Norm())
			}
		}
		out[dim] = row
	}
	return out
}

func meanScore(s []float64, lo, hi int) float64 {
	return mathx.Mean(s[lo:hi])
}

func TestOmniAnomalyLearnsNormalPattern(t *testing.T) {
	d, n := 4, 600
	train := makeMultivariate(d, n, n, n, 1) // no anomaly
	m := NewOmniAnomaly(2)
	m.SamplesPerEpoch = 800
	m.Fit(train)
	if !m.trained {
		t.Fatal("not trained")
	}
	test := makeMultivariate(d, 400, 200, 230, 3)
	scores := m.ScoresMulti(test)
	if len(scores) != 400 {
		t.Fatalf("score length %d", len(scores))
	}
	anomalous := meanScore(scores, 205, 230)
	normal := meanScore(scores, 50, 180)
	if anomalous <= 2*normal {
		t.Fatalf("anomalous mean score %v should clearly exceed normal %v", anomalous, normal)
	}
}

func TestOmniAnomalyUntrainedReturnsZeros(t *testing.T) {
	m := NewOmniAnomaly(1)
	s := m.ScoresMulti(makeMultivariate(3, 100, 100, 100, 4))
	for _, v := range s {
		if v != 0 {
			t.Fatal("untrained model should return zeros")
		}
	}
	if m.ScoresMulti(nil) != nil {
		t.Fatal("nil input should give nil")
	}
}

func TestOmniAnomalyTrainingReducesReconstructionError(t *testing.T) {
	d, n := 3, 500
	data := makeMultivariate(d, n, n, n, 5)
	m := NewOmniAnomaly(6)
	m.SamplesPerEpoch = 50
	m.Epochs = 1
	m.Fit(data)
	early := mathx.Mean(m.ScoresMulti(data))

	m2 := NewOmniAnomaly(6)
	m2.SamplesPerEpoch = 1500
	m2.Epochs = 3
	m2.Fit(data)
	late := mathx.Mean(m2.ScoresMulti(data))
	if late >= early {
		t.Fatalf("more training should reduce error: %v -> %v", early, late)
	}
}

func TestJumpStarterReconstruction(t *testing.T) {
	j := NewJumpStarter(7)
	test := makeMultivariate(4, 384, 200, 220, 8)
	j.Fit(nil)
	scores := j.ScoresMulti(test)
	if len(scores) != 384 {
		t.Fatalf("score length %d", len(scores))
	}
	anomalous := meanScore(scores, 203, 218)
	normal := meanScore(scores, 20, 180)
	if anomalous <= 1.5*normal {
		t.Fatalf("anomalous mean %v should exceed normal %v", anomalous, normal)
	}
}

func TestJumpStarterSmoothSignalLowResidual(t *testing.T) {
	// A smooth signal is sparse in DCT: reconstruction from 40% samples
	// should be near-exact.
	j := NewJumpStarter(9)
	j.ensureBasis()
	n := j.Window
	win := make([]float64, n)
	for i := range win {
		win[i] = 5 + 2*math.Cos(2*math.Pi*float64(i)/float64(n))
	}
	rng := mathx.NewRNG(10)
	recon := j.reconstruct(win, rng)
	for i := range win {
		if math.Abs(win[i]-recon[i]) > 0.2 {
			t.Fatalf("smooth reconstruction off at %d: %v vs %v", i, win[i], recon[i])
		}
	}
}

func TestJumpStarterOutlierResistantSampling(t *testing.T) {
	// A window with a huge outlier: the outlier must not be sampled, so
	// the reconstruction stays near the clean signal and the outlier's
	// residual is large.
	j := NewJumpStarter(11)
	j.ensureBasis()
	n := j.Window
	win := make([]float64, n)
	for i := range win {
		win[i] = 10.0
	}
	win[n/2] = 1000
	rng := mathx.NewRNG(12)
	recon := j.reconstruct(win, rng)
	if math.Abs(recon[n/2]-10) > 5 {
		t.Fatalf("reconstruction should ignore the outlier, got %v", recon[n/2])
	}
}

func TestJumpStarterDegenerate(t *testing.T) {
	j := NewJumpStarter(13)
	if j.ScoresMulti(nil) != nil {
		t.Fatal("nil input")
	}
	// Shorter than one window: zero scores, no panic.
	short := [][]float64{make([]float64, 10)}
	s := j.ScoresMulti(short)
	for _, v := range s {
		if v != 0 {
			t.Fatal("short input should score zero")
		}
	}
}

func TestDCTBasisOrthonormal(t *testing.T) {
	j := NewJumpStarter(14)
	j.Window = 16
	j.ensureBasis()
	b := j.basis
	// Columns must be orthonormal: BᵀB = I.
	for i := 0; i < 16; i++ {
		for k := i; k < 16; k++ {
			var dot float64
			for t := 0; t < 16; t++ {
				dot += b.At(t, i) * b.At(t, k)
			}
			want := 0.0
			if i == k {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("basis columns %d,%d dot = %v, want %v", i, k, dot, want)
			}
		}
	}
}
