// Package baselines implements from-scratch versions of the five anomaly
// detection methods DBCatcher is compared against (§IV-A4): FFT [7],
// Spectral Residual [8], SR-CNN [14], OmniAnomaly [15] (GRU + variational
// autoencoder), and JumpStarter [16] (compressed-sensing reconstruction),
// together with the paper's evaluation protocol: per-KPI concatenation
// across databases, the k-of-M multivariate rule, and random search over
// thresholds and window size on the training split (§IV-B).
//
// The deep baselines are faithful algorithmically but necessarily reduced
// in scale (stdlib-only Go, no GPU); see DESIGN.md for the substitution
// rationale. The comparisons in the experiment harness depend on relative
// shape, which survives the scale-down.
package baselines

import (
	"dbcatcher/internal/mathx"
)

// PointScorer assigns an anomaly score to every point of a univariate
// series; higher means more anomalous. Implementations must tolerate short
// or constant inputs.
type PointScorer interface {
	// Name identifies the scorer in tables.
	Name() string
	// Scores returns one score per input point.
	Scores(x []float64) []float64
}

// MultiScorer assigns an anomaly score to every time step of a
// multivariate series (rows = dimensions, columns = time).
type MultiScorer interface {
	Name() string
	// ScoresMulti returns one score per column of x.
	ScoresMulti(x [][]float64) []float64
	// Fit trains on (presumed mostly normal) data before scoring.
	Fit(x [][]float64)
}

// normalizeScores rescales scores robustly to a comparable range using the
// median and MAD, then clamps negatives to zero: a score is "how many
// robust standard deviations above typical".
func normalizeScores(s []float64) []float64 {
	out := make([]float64, len(s))
	if len(s) == 0 {
		return out
	}
	med := mathx.Median(s)
	mad := mathx.MAD(s)
	if mad == 0 {
		mad = 1e-9
	}
	for i, v := range s {
		z := (v - med) / mad
		if z < 0 {
			z = 0
		}
		out[i] = z
	}
	return out
}

// movingQuantileThreshold is a helper: the q-quantile of scores, used by
// the random-search trainer to seed threshold candidates.
func scoreQuantile(s []float64, q float64) float64 {
	return mathx.Quantile(s, q)
}
