package baselines

import (
	"math"

	"dbcatcher/internal/mathx"
)

// gru is a single-layer gated recurrent unit with manual BPTT, used by the
// OmniAnomaly baseline. Dimensions: input D, hidden H.
type gru struct {
	d, h int
	// Parameter blocks, each gate has input weights W (h x d), recurrent
	// weights U (h x h), and bias b (h).
	wz, uz, bz []float64
	wr, ur, br []float64
	wh, uh, bh []float64
	// Gradients.
	gwz, guz, gbz []float64
	gwr, gur, gbr []float64
	gwh, guh, gbh []float64
}

func newGRU(d, h int, rng *mathx.RNG) *gru {
	g := &gru{d: d, h: h}
	alloc := func(n int) []float64 { return make([]float64, n) }
	g.wz, g.uz, g.bz = alloc(h*d), alloc(h*h), alloc(h)
	g.wr, g.ur, g.br = alloc(h*d), alloc(h*h), alloc(h)
	g.wh, g.uh, g.bh = alloc(h*d), alloc(h*h), alloc(h)
	for _, w := range [][]float64{g.wz, g.wr, g.wh} {
		xavier(w, d, h, rng)
	}
	for _, u := range [][]float64{g.uz, g.ur, g.uh} {
		xavier(u, h, h, rng)
	}
	g.gwz, g.guz, g.gbz = alloc(h*d), alloc(h*h), alloc(h)
	g.gwr, g.gur, g.gbr = alloc(h*d), alloc(h*h), alloc(h)
	g.gwh, g.guh, g.gbh = alloc(h*d), alloc(h*h), alloc(h)
	return g
}

// gruStep caches one step's intermediates for backprop.
type gruStep struct {
	x, hPrev        []float64
	z, r, hCand, hT []float64
}

// matVec computes y = M·v where M is rows x cols row-major.
func matVec(m []float64, rows, cols int, v []float64) []float64 {
	out := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := m[r*cols : (r+1)*cols]
		var s float64
		for c, vc := range v {
			s += row[c] * vc
		}
		out[r] = s
	}
	return out
}

// step runs one forward step, returning the new hidden state and a cache.
func (g *gru) step(x, hPrev []float64) ([]float64, *gruStep) {
	z := matVec(g.wz, g.h, g.d, x)
	r := matVec(g.wr, g.h, g.d, x)
	uzh := matVec(g.uz, g.h, g.h, hPrev)
	urh := matVec(g.ur, g.h, g.h, hPrev)
	for i := 0; i < g.h; i++ {
		z[i] = sigmoid(z[i] + uzh[i] + g.bz[i])
		r[i] = sigmoid(r[i] + urh[i] + g.br[i])
	}
	rh := make([]float64, g.h)
	for i := range rh {
		rh[i] = r[i] * hPrev[i]
	}
	hc := matVec(g.wh, g.h, g.d, x)
	uhr := matVec(g.uh, g.h, g.h, rh)
	for i := 0; i < g.h; i++ {
		hc[i] = math.Tanh(hc[i] + uhr[i] + g.bh[i])
	}
	hT := make([]float64, g.h)
	for i := 0; i < g.h; i++ {
		hT[i] = (1-z[i])*hPrev[i] + z[i]*hc[i]
	}
	return hT, &gruStep{x: x, hPrev: hPrev, z: z, r: r, hCand: hc, hT: hT}
}

// backStep consumes dL/dh_t and accumulates parameter gradients, returning
// dL/dh_{t-1} (gradient w.r.t. the input x is not needed by the VAE).
func (g *gru) backStep(s *gruStep, dh []float64) []float64 {
	h := g.h
	dhPrev := make([]float64, h)
	dz := make([]float64, h)
	dhc := make([]float64, h)
	for i := 0; i < h; i++ {
		dz[i] = (s.hCand[i] - s.hPrev[i]) * dh[i]
		dhc[i] = s.z[i] * dh[i]
		dhPrev[i] += (1 - s.z[i]) * dh[i]
	}
	// Candidate path through tanh.
	daH := make([]float64, h)
	for i := 0; i < h; i++ {
		daH[i] = dtanh(s.hCand[i]) * dhc[i]
	}
	rh := make([]float64, h)
	for i := 0; i < h; i++ {
		rh[i] = s.r[i] * s.hPrev[i]
	}
	accumOuter(g.gwh, daH, s.x)
	accumOuter(g.guh, daH, rh)
	accumVec(g.gbh, daH)
	dRH := tMatVec(g.uh, h, h, daH)
	dr := make([]float64, h)
	for i := 0; i < h; i++ {
		dr[i] = s.hPrev[i] * dRH[i]
		dhPrev[i] += s.r[i] * dRH[i]
	}
	// Update gate path.
	daZ := make([]float64, h)
	for i := 0; i < h; i++ {
		daZ[i] = dsigmoid(s.z[i]) * dz[i]
	}
	accumOuter(g.gwz, daZ, s.x)
	accumOuter(g.guz, daZ, s.hPrev)
	accumVec(g.gbz, daZ)
	addTMatVec(dhPrev, g.uz, h, h, daZ)
	// Reset gate path.
	daR := make([]float64, h)
	for i := 0; i < h; i++ {
		daR[i] = dsigmoid(s.r[i]) * dr[i]
	}
	accumOuter(g.gwr, daR, s.x)
	accumOuter(g.gur, daR, s.hPrev)
	accumVec(g.gbr, daR)
	addTMatVec(dhPrev, g.ur, h, h, daR)
	return dhPrev
}

// stepParams applies SGD and clears gradients.
func (g *gru) stepParams(lr float64) {
	apply := func(w, gw []float64) {
		for i := range w {
			w[i] -= lr * clip(gw[i])
			gw[i] = 0
		}
	}
	apply(g.wz, g.gwz)
	apply(g.uz, g.guz)
	apply(g.bz, g.gbz)
	apply(g.wr, g.gwr)
	apply(g.ur, g.gur)
	apply(g.br, g.gbr)
	apply(g.wh, g.gwh)
	apply(g.uh, g.guh)
	apply(g.bh, g.gbh)
}

// clip bounds a gradient component to stabilize BPTT.
func clip(g float64) float64 { return mathx.Clamp(g, -5, 5) }

// accumOuter adds dv ⊗ x into the rows x cols gradient block.
func accumOuter(gw, dv, x []float64) {
	cols := len(x)
	for r, d := range dv {
		if d == 0 {
			continue
		}
		row := gw[r*cols : (r+1)*cols]
		for c, xc := range x {
			row[c] += d * xc
		}
	}
}

func accumVec(gb, dv []float64) {
	for i, d := range dv {
		gb[i] += d
	}
}

// tMatVec computes Mᵀ·v for a rows x cols matrix.
func tMatVec(m []float64, rows, cols int, v []float64) []float64 {
	out := make([]float64, cols)
	addTMatVec(out, m, rows, cols, v)
	return out
}

func addTMatVec(dst, m []float64, rows, cols int, v []float64) {
	for r := 0; r < rows; r++ {
		vr := v[r]
		if vr == 0 {
			continue
		}
		row := m[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			dst[c] += row[c] * vr
		}
	}
}
