package baselines

import (
	"math"

	"dbcatcher/internal/mathx"
)

// WaveletDetector implements the wavelet-analysis baseline of the related
// work [38]: a multi-level Haar discrete wavelet transform decomposes the
// series, and a point's anomaly score aggregates the magnitude of the
// detail (high-frequency) coefficients covering it at the finest levels —
// sharp local changes concentrate energy there.
type WaveletDetector struct {
	// Levels of decomposition whose details contribute to the score
	// (default 3).
	Levels int
}

// Name implements PointScorer.
func (w WaveletDetector) Name() string { return "Wavelet" }

// Scores implements PointScorer.
func (w WaveletDetector) Scores(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	levels := w.Levels
	if levels <= 0 {
		levels = 3
	}
	if n < 8 {
		return make([]float64, n)
	}
	// Pad to a power of two by edge replication.
	m := mathx.NextPow2(n)
	work := make([]float64, m)
	copy(work, x)
	for i := n; i < m; i++ {
		work[i] = x[n-1]
	}
	score := make([]float64, n)
	// Iterative Haar: at each level, approximations halve; detail d_i =
	// (a_{2i} - a_{2i+1})/sqrt(2) covers a block of 2^level input points.
	approx := work
	blk := 1
	for lv := 0; lv < levels && len(approx) >= 2; lv++ {
		half := len(approx) / 2
		next := make([]float64, half)
		detail := make([]float64, half)
		for i := 0; i < half; i++ {
			a, b := approx[2*i], approx[2*i+1]
			next[i] = (a + b) / math.Sqrt2
			detail[i] = (a - b) / math.Sqrt2
		}
		blk *= 2
		// Robust-normalize this level's details, then splat each block's
		// magnitude onto the points it covers, weighting finer levels more.
		normed := normalizeScores(absAll(detail))
		weight := 1 / float64(lv+1)
		for i, v := range normed {
			lo := i * blk
			hi := lo + blk
			if hi > n {
				hi = n
			}
			for p := lo; p < hi && p < n; p++ {
				score[p] += weight * v
			}
		}
		approx = next
	}
	return score
}

func absAll(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Abs(x)
	}
	return out
}

// NewWaveletMethod builds the wavelet baseline as a Method (available for
// extended comparisons beyond the paper's five).
func NewWaveletMethod() *Univariate {
	return &Univariate{
		Label: "Wavelet",
		Build: func(uint64) PointScorer { return WaveletDetector{} },
	}
}
