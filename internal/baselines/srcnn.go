package baselines

import (
	"dbcatcher/internal/mathx"
)

// SRCNN implements the SR-CNN baseline [14]: the Spectral Residual
// saliency map is fed to a small 1-D convolutional network that was
// trained, as in the original paper, on *synthetically injected* anomalies
// over presumed-normal data — no manual labels are consumed.
//
// Architecture (reduced scale): saliency window (width W) -> conv1d(K
// kernels of width 7) -> ReLU -> dense -> sigmoid. The output is the
// probability that the window's center point is anomalous.
type SRCNN struct {
	// Window is the saliency context width (odd; default 31).
	Window int
	// Filters is the convolution filter count (default 8).
	Filters int
	// Epochs over the synthetic training set (default 3).
	Epochs int
	// LearningRate for SGD (default 0.05).
	LearningRate float64
	// InjectionRate is the fraction of synthetic anomaly points during
	// training (default 0.05).
	InjectionRate float64
	// Seed drives initialization, injection, and shuffling.
	Seed uint64

	sr    SRDetector
	conv  *conv1d
	out   *dense
	ready bool
}

// NewSRCNN returns an untrained model with default hyperparameters.
func NewSRCNN(seed uint64) *SRCNN {
	return &SRCNN{
		Window:        31,
		Filters:       8,
		Epochs:        3,
		LearningRate:  0.05,
		InjectionRate: 0.05,
		Seed:          seed,
	}
}

// Name implements PointScorer.
func (m *SRCNN) Name() string { return "SR-CNN" }

// Fit trains the CNN on the given normal series with synthetic anomaly
// injection (the SR-CNN training protocol).
func (m *SRCNN) Fit(normal [][]float64) {
	rng := mathx.NewRNG(m.Seed)
	m.conv = newConv1d(7, m.Filters, rng.Split(1))
	convOut := m.Window - 7 + 1
	m.out = newDense(m.Filters*convOut, 1, rng.Split(2))

	type example struct {
		window []float64
		label  float64
	}
	var examples []example
	for _, series := range normal {
		if len(series) < m.Window*2 {
			continue
		}
		// Inject synthetic spikes: x_i <- (local mean + 2*std) * (1+noise).
		injected := mathx.Clone(series)
		labels := make([]float64, len(series))
		mean := mathx.Mean(series)
		std := mathx.Std(series)
		for i := range injected {
			if rng.Bool(m.InjectionRate) {
				injected[i] = mean + (2+rng.Float64()*2)*std*(1+0.3*rng.Norm())
				labels[i] = 1
			}
		}
		sal := normalizeScores(m.sr.Saliency(injected))
		half := m.Window / 2
		for i := half; i < len(sal)-half; i++ {
			// Subsample negatives to balance classes.
			if labels[i] == 0 && !rng.Bool(2*m.InjectionRate) {
				continue
			}
			examples = append(examples, example{
				window: sal[i-half : i+half+1],
				label:  labels[i],
			})
		}
	}
	if len(examples) == 0 {
		m.ready = true
		return
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(examples), func(i, j int) {
			examples[i], examples[j] = examples[j], examples[i]
		})
		for _, ex := range examples {
			m.trainStep(ex.window, ex.label)
		}
	}
	m.ready = true
}

// trainStep runs one SGD step with binary cross-entropy loss.
func (m *SRCNN) trainStep(win []float64, label float64) {
	conv := m.conv.forward(win)
	relu, flat := m.flatten(conv)
	logit := m.out.forward(flat)
	p := sigmoid(logit[0])
	// dL/dlogit for BCE.
	dlogit := []float64{p - label}
	dflat := m.out.backward(flat, dlogit)
	dconv := m.unflatten(dflat, relu)
	m.conv.backward(win, dconv)
	m.out.step(m.LearningRate)
	m.conv.step(m.LearningRate)
}

// flatten applies ReLU and flattens the conv activations. It returns the
// relu mask (post-activation values) and the flat vector.
func (m *SRCNN) flatten(conv [][]float64) ([][]float64, []float64) {
	relu := make([][]float64, len(conv))
	flat := make([]float64, 0, len(conv)*len(conv[0]))
	for f, row := range conv {
		r := make([]float64, len(row))
		for i, v := range row {
			if v > 0 {
				r[i] = v
			}
		}
		relu[f] = r
		flat = append(flat, r...)
	}
	return relu, flat
}

// unflatten routes flat gradients back through the ReLU.
func (m *SRCNN) unflatten(dflat []float64, relu [][]float64) [][]float64 {
	dconv := make([][]float64, len(relu))
	idx := 0
	for f, row := range relu {
		dr := make([]float64, len(row))
		for i := range row {
			if row[i] > 0 {
				dr[i] = dflat[idx]
			}
			idx++
		}
		dconv[f] = dr
	}
	return dconv
}

// Scores implements PointScorer. An unfitted model falls back to plain SR
// saliency scores.
func (m *SRCNN) Scores(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	sal := normalizeScores(m.sr.Saliency(x))
	if !m.ready || m.conv == nil || n < m.Window {
		return sal
	}
	out := make([]float64, n)
	half := m.Window / 2
	for i := half; i < n-half; i++ {
		conv := m.conv.forward(sal[i-half : i+half+1])
		_, flat := m.flatten(conv)
		out[i] = sigmoid(m.out.forward(flat)[0])
	}
	// Edge points reuse the nearest interior score.
	for i := 0; i < half; i++ {
		out[i] = out[half]
	}
	for i := n - half; i < n; i++ {
		out[i] = out[n-half-1]
	}
	return out
}
