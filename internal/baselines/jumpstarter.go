package baselines

import (
	"math"

	"dbcatcher/internal/mathx"
)

// JumpStarter implements a reduced-scale version of the JumpStarter
// baseline [16]: per window, an outlier-resistant random sample of points
// is taken from each dimension, the full window is reconstructed from the
// samples by compressed sensing (orthogonal matching pursuit over a DCT
// dictionary), and a point's anomaly score is its reconstruction residual.
// Points that compressed sensing cannot explain from the sampled majority
// are anomalous.
type JumpStarter struct {
	// Window is the reconstruction window length (default 64).
	Window int
	// SampleFraction of points kept per window (default 0.4).
	SampleFraction float64
	// Sparsity is the OMP atom budget (default 6).
	Sparsity int
	// OutlierZ is the robust z-score beyond which a sampled point is
	// rejected as an outlier (default 3).
	OutlierZ float64
	// Seed drives the sampling.
	Seed uint64

	basis     *mathx.Matrix // Window x Window DCT dictionary
	basisSize int
}

// NewJumpStarter returns a detector with default hyperparameters.
func NewJumpStarter(seed uint64) *JumpStarter {
	return &JumpStarter{
		Window:         64,
		SampleFraction: 0.4,
		Sparsity:       6,
		OutlierZ:       3,
		Seed:           seed,
	}
}

// Name implements MultiScorer.
func (j *JumpStarter) Name() string { return "JumpStarter" }

// Fit implements MultiScorer. JumpStarter's selling point is requiring no
// training ("jump-starting" detection); Fit only prepares the dictionary.
func (j *JumpStarter) Fit([][]float64) { j.ensureBasis() }

func (j *JumpStarter) ensureBasis() {
	if j.Window <= 0 {
		j.Window = 64
	}
	if j.basis != nil && j.basisSize == j.Window {
		return
	}
	n := j.Window
	b := mathx.NewMatrix(n, n)
	for k := 0; k < n; k++ {
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		for t := 0; t < n; t++ {
			b.Set(t, k, scale*math.Cos(math.Pi*float64(k)*(float64(t)+0.5)/float64(n)))
		}
	}
	j.basis = b
	j.basisSize = n
}

// ScoresMulti implements MultiScorer: the mean normalized reconstruction
// residual across dimensions, per time step.
func (j *JumpStarter) ScoresMulti(x [][]float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	j.ensureBasis()
	n := len(x[0])
	out := make([]float64, n)
	rng := mathx.NewRNG(j.Seed)
	for _, dim := range x {
		scores := j.scoreDim(dim, rng)
		for i, s := range scores {
			out[i] += s
		}
	}
	inv := 1 / float64(len(x))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// scoreDim reconstructs one dimension window by window.
func (j *JumpStarter) scoreDim(x []float64, rng *mathx.RNG) []float64 {
	n := len(x)
	out := make([]float64, n)
	w := j.Window
	if n < w {
		return out
	}
	scale := mathx.MAD(x)
	if scale == 0 {
		scale = 1e-9
	}
	for start := 0; start+w <= n; start += w {
		win := x[start : start+w]
		recon := j.reconstruct(win, rng)
		for i := range win {
			out[start+i] = math.Abs(win[i]-recon[i]) / scale
		}
	}
	// Trailing partial window: reuse the last full window's tail scores.
	for i := (n / w) * w; i < n; i++ {
		out[i] = out[i-w]
	}
	return out
}

// reconstruct samples the window outlier-resistantly and solves OMP.
func (j *JumpStarter) reconstruct(win []float64, rng *mathx.RNG) []float64 {
	w := len(win)
	m := int(j.SampleFraction * float64(w))
	if m < j.Sparsity*2 {
		m = j.Sparsity * 2
	}
	if m > w {
		m = w
	}
	// Outlier-resistant sampling: draw uniformly, reject samples whose
	// robust z-score is extreme (they would poison the reconstruction).
	med := mathx.Median(win)
	mad := mathx.MAD(win)
	if mad == 0 {
		mad = 1e-9
	}
	idx := make([]int, 0, m)
	perm := rng.Perm(w)
	for _, i := range perm {
		if math.Abs(win[i]-med)/mad > j.OutlierZ {
			continue
		}
		idx = append(idx, i)
		if len(idx) == m {
			break
		}
	}
	if len(idx) < j.Sparsity {
		// Window is mostly outliers; fall back to the median everywhere.
		flat := make([]float64, w)
		for i := range flat {
			flat[i] = med
		}
		return flat
	}
	coef := j.omp(win, idx)
	return j.basis.MulVec(coef)
}

// omp runs orthogonal matching pursuit: select atoms of the sampled
// dictionary that best explain the sampled values, then solve least
// squares on the selected support.
func (j *JumpStarter) omp(win []float64, idx []int) []float64 {
	w := len(win)
	y := make([]float64, len(idx))
	for i, t := range idx {
		y[i] = win[t]
	}
	// Sampled dictionary: rows = samples, cols = atoms.
	a := mathx.NewMatrix(len(idx), w)
	for i, t := range idx {
		copy(a.Row(i), j.basis.Row(t))
	}
	resid := mathx.Clone(y)
	support := make([]int, 0, j.Sparsity)
	inSupport := make(map[int]bool)
	var coefOnSupport []float64
	for it := 0; it < j.Sparsity; it++ {
		// Pick the atom most correlated with the residual.
		best, bestAbs := -1, 0.0
		for atom := 0; atom < w; atom++ {
			if inSupport[atom] {
				continue
			}
			var dot float64
			for i := range idx {
				dot += a.At(i, atom) * resid[i]
			}
			if ab := math.Abs(dot); ab > bestAbs {
				bestAbs = ab
				best = atom
			}
		}
		if best == -1 || bestAbs < 1e-12 {
			break
		}
		support = append(support, best)
		inSupport[best] = true
		// Least squares on the support.
		sub := mathx.NewMatrix(len(idx), len(support))
		for i := range idx {
			for c, atom := range support {
				sub.Set(i, c, a.At(i, atom))
			}
		}
		c, err := mathx.LeastSquares(sub, y)
		if err != nil {
			break
		}
		coefOnSupport = c
		// Update residual.
		approx := sub.MulVec(c)
		for i := range resid {
			resid[i] = y[i] - approx[i]
		}
	}
	coef := make([]float64, w)
	for c, atom := range support {
		if coefOnSupport != nil && c < len(coefOnSupport) {
			coef[atom] = coefOnSupport[c]
		}
	}
	return coef
}
