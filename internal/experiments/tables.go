package experiments

import (
	"fmt"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/workload"
)

// TableII reproduces the indicator/correlation-type table, augmented with
// the *measured* average P-R and R-R KCD on a healthy simulated unit —
// evidence that the simulator exhibits the UKPIC phenomenon per Table II.
func TableII(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	u, err := cluster.Simulate(cluster.Config{
		Name: "tableII", Ticks: 1200, Seed: cfg.Seed,
		Profile: workload.TencentIrregular,
	})
	if err != nil {
		return nil, err
	}
	opts := correlate.DetectionOptions()
	window := 60
	avg := func(k, d1, d2 int) float64 {
		var sum float64
		n := 0
		for start := 0; start+window <= u.Series.Len(); start += window {
			w1, err := u.Series.Data[k][d1].Window(start, window)
			if err != nil {
				return 0
			}
			w2, _ := u.Series.Data[k][d2].Window(start, window)
			sum += correlate.KCD(w1, w2, opts)
			n++
		}
		return sum / float64(n)
	}
	t := &Table{
		Title:   "Table II — indicators, correlation type, and measured KCD",
		Columns: []string{"Indicator Name", "Correlation Type", "measured P-R", "measured R-R"},
	}
	for _, k := range kpi.All() {
		pr := avg(int(k), 0, 1)
		rr := avg(int(k), 1, 2)
		t.AddRow(k.String(), k.Correlation().String(),
			fmt.Sprintf("%.3f", pr), fmt.Sprintf("%.3f", rr))
	}
	t.Notes = append(t.Notes,
		"P-R typed KPIs should show high scores in both columns; R-R typed KPIs only in the R-R column")
	return t, nil
}

// TableIII reproduces the dataset statistics table at the configured
// scale.
func TableIII(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Table III — statistical information of different datasets",
		Columns: []string{"Dataset", "No. of Units", "No. of Dimensions", "Total Points", "Anomal Points", "Abnormal Ratio"},
	}
	for i, f := range []dataset.Family{dataset.Tencent, dataset.Sysbench, dataset.TPCC} {
		cfg.logf("generating %s dataset...", f)
		ds, err := cfg.generate(f, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		s := ds.Stats()
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.Units),
			fmt.Sprintf("%d", s.Dimensions),
			fmt.Sprintf("%d", s.TotalPoints),
			fmt.Sprintf("%d", s.AnomalPoints),
			pct(s.AbnormalRatio))
	}
	t.Notes = append(t.Notes,
		"paper ratios: Tencent 3.11%, Sysbench 4.21%, TPCC 4.06% (unit counts scale with -scale)")
	return t, nil
}

// Figure3 reproduces the UKPIC illustration: the pairwise correlation
// matrix of a five-database unit, with the upper triangle showing
// "BufferPool Read Requests" and the lower triangle "Innodb Data Writes"
// (Fig. 3b).
func Figure3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	u, err := cluster.Simulate(cluster.Config{
		Name: "fig3", Ticks: 600, Seed: cfg.Seed,
		Profile: workload.TencentIrregular,
	})
	if err != nil {
		return nil, err
	}
	measure := correlate.KCDMeasure(correlate.DetectionOptions())
	mats, err := correlate.BuildMatrices(u.Series, 0, 600, nil, measure)
	if err != nil {
		return nil, err
	}
	upper := mats[kpi.BufferPoolReadRequests]
	lower := mats[kpi.InnodbDataWrites]
	t := &Table{
		Title:   "Figure 3(b) — correlation scores (upper: BufferPool Read Requests, lower: Innodb Data Writes)",
		Columns: []string{"", "D1", "D2", "D3", "D4", "D5"},
	}
	for i := 0; i < 5; i++ {
		row := []string{fmt.Sprintf("D%d", i+1)}
		for j := 0; j < 5; j++ {
			switch {
			case i == j:
				row = append(row, "1.00")
			case i < j:
				row = append(row, fmt.Sprintf("%.2f", upper.At(i, j)))
			default:
				row = append(row, fmt.Sprintf("%.2f", lower.At(i, j)))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "strong off-diagonal scores = the UKPIC phenomenon of §II-B")
	return t, nil
}

// Figure5 reproduces the temporal-fluctuation illustration: the KCD of a
// window containing a short benign fluctuation, as the window grows. Short
// windows see a depressed score; longer windows dilute the fluctuation.
// Scores are averaged over many injected fluctuations.
func Figure5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	opts := correlate.DetectionOptions()
	widths := []int{12, 24, 36, 48, 60}
	sums := make([]float64, len(widths))
	const events = 30
	rng := mathx.NewRNG(cfg.Seed)
	for ev := 0; ev < events; ev++ {
		u, err := cluster.Simulate(cluster.Config{
			Name: "fig5", Ticks: 300, Seed: rng.Uint64(),
			Profile:         workload.TencentIrregular,
			FluctuationRate: 1e-9,
		})
		if err != nil {
			return nil, err
		}
		// Inject a 3-point fluctuation ending at tick `end` on db1's RPS.
		end := 100 + rng.Intn(150)
		vals := u.Series.Data[kpi.RequestsPerSecond][1].Values
		for i := end - 3; i < end; i++ {
			vals[i] *= rng.Range(1.8, 2.6)
		}
		for wi, w := range widths {
			start := end - w
			w1, err := u.Series.Data[kpi.RequestsPerSecond][1].Window(start, w)
			if err != nil {
				return nil, err
			}
			w2, _ := u.Series.Data[kpi.RequestsPerSecond][2].Window(start, w)
			sums[wi] += correlate.KCD(w1, w2, opts)
		}
	}
	t := &Table{
		Title:   "Figure 5 — effect of window length on the correlation score around a temporal fluctuation",
		Columns: []string{"window (points)", "window (seconds)", "mean KCD(D1, D2)"},
	}
	for wi, w := range widths {
		t.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%d", w*5), fmt.Sprintf("%.3f", sums[wi]/events))
	}
	t.Notes = append(t.Notes,
		"the score recovers as the window grows — the motivation for flexible time window observation (§III-C)")
	return t, nil
}

// unitKCDTrend supports Figure 3(a): the normalized RPS trends of the five
// databases (exported for the examples).
func unitKCDTrend(u *cluster.Unit, k kpi.KPI) [][]float64 {
	out := make([][]float64, u.Series.Databases)
	for d := range out {
		out[d] = mathx.Normalize(u.Series.Data[k][d].Values)
	}
	return out
}
