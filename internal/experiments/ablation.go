package experiments

import (
	"fmt"
	"time"

	"dbcatcher/internal/baselines"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
)

// TableX reproduces the correlation-measurement ablation: MM-Pearson,
// MM-DTW, and MM-KCD run DBCatcher with the flexible window disabled and
// the respective measure; AMM-KCD is the full system.
func TableX(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	variants := []struct {
		name     string
		measure  correlate.Measure
		flexible bool
	}{
		{"MM-Pearson", correlate.PearsonMeasure(), false},
		{"MM-DTW", correlate.DTWMeasure(-1), false}, // unconstrained warping, as criticized in §IV-D1
		{"MM-KCD", correlate.KCDMeasure(correlate.DetectionOptions()), false},
		{"AMM-KCD", correlate.KCDMeasure(correlate.DetectionOptions()), true},
	}
	t := &Table{
		Title:   "Table X — F-Measure of correlation measurement methods combined with MM",
		Columns: []string{"Model", "Tencent", "Sysbench", "TPCC"},
	}
	results := make(map[string]map[string]float64)
	for _, v := range variants {
		results[v.name] = make(map[string]float64)
	}
	for fi, family := range []dataset.Family{dataset.Tencent, dataset.Sysbench, dataset.TPCC} {
		fsum := make(map[string]float64)
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + uint64(fi*100+run+11)
			cfg.logf("[Table X] %s run %d/%d...", family, run+1, cfg.Runs)
			ds, err := cfg.generate(family, seed)
			if err != nil {
				return nil, err
			}
			train, test, err := ds.Split(0.5)
			if err != nil {
				return nil, err
			}
			for _, v := range variants {
				flex := window.DefaultFlexConfig()
				flex.Disabled = !v.flexible
				m := &baselines.DBCatcherMethod{Flex: flex, Measure: v.measure, Concurrency: cfg.Concurrency}
				if _, err := m.Train(train.Units, seed); err != nil {
					return nil, err
				}
				r, err := m.Evaluate(test.Units)
				if err != nil {
					return nil, err
				}
				fsum[v.name] += r.Confusion.FMeasure()
			}
		}
		for _, v := range variants {
			results[v.name][family.String()] = fsum[v.name] / float64(cfg.Runs)
		}
	}
	for _, v := range variants {
		t.AddRow(v.name,
			pct(results[v.name]["Tencent"]),
			pct(results[v.name]["Sysbench"]),
			pct(results[v.name]["TPCC"]))
	}
	t.Notes = append(t.Notes,
		"paper shape: MM-KCD > MM-Pearson > MM-DTW, and AMM-KCD (flexible window) > MM-KCD")
	return t, nil
}

// Figure11 compares the three threshold search policies (GA, SAA, random
// search) on the same fitness landscape: F-Measure from relearning
// thresholds on recent labelled records, averaged across datasets and
// runs.
func Figure11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Figure 11 — threshold search policies (mean F-Measure)",
		Columns: []string{"Dataset", "GA", "SAA", "Random"},
	}
	// Each policy runs with its default budget, as the paper compares the
	// policies as configured rather than evaluation-matched.
	searchers := func(seed uint64) []thresholds.Searcher {
		return []thresholds.Searcher{
			thresholds.GA{Seed: seed},
			thresholds.SAA{Seed: seed},
			thresholds.Random{Seed: seed},
		}
	}
	for fi, family := range []dataset.Family{dataset.Tencent, dataset.Sysbench, dataset.TPCC} {
		sums := map[string]float64{}
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + uint64(fi*100+run+31)
			cfg.logf("[Figure 11] %s run %d/%d...", family, run+1, cfg.Runs)
			ds, err := cfg.generate(family, seed)
			if err != nil {
				return nil, err
			}
			train, test, err := ds.Split(0.5)
			if err != nil {
				return nil, err
			}
			var samples []thresholds.Sample
			for _, u := range train.Units {
				samples = append(samples, thresholds.Sample{
					Provider: detect.NewCachedProvider(detect.NewProvider(u.Unit.Series, nil, nil)),
					Labels:   u.Labels,
				})
			}
			fitness := thresholds.DetectorFitness(samples, window.DefaultFlexConfig())
			for _, s := range searchers(seed) {
				res := s.Search(kpi.Count, fitness)
				// Evaluate the found thresholds on the *test* half: the
				// figure reports achieved detection performance.
				var c metrics.Confusion
				for _, u := range test.Units {
					verdicts, _, err := detect.Run(u.Unit.Series, detect.Config{
						Thresholds: res.Best,
						Flex:       window.DefaultFlexConfig(),
					})
					if err != nil {
						return nil, err
					}
					part, err := detect.Evaluate(verdicts, u.Labels)
					if err != nil {
						return nil, err
					}
					c.Merge(part)
				}
				sums[s.Name()] += c.FMeasure()
			}
		}
		t.AddRow(family.String(),
			pct(sums["GA"]/float64(cfg.Runs)),
			pct(sums["SAA"]/float64(cfg.Runs)),
			pct(sums["Random"]/float64(cfg.Runs)))
	}
	t.Notes = append(t.Notes, "paper shape: GA achieves the best F-Measure")
	return t, nil
}

// ComponentTime reproduces §IV-D4: the per-component time split of online
// detection across many units, and the 100 MB / 120 h extrapolation.
func ComponentTime(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	unitCount := 10
	ticks := 1200
	if cfg.Scale >= 1 {
		unitCount = 50
		ticks = 2592
	}
	cfg.logf("[Component time] simulating %d units x %d ticks...", unitCount, ticks)
	rng := mathx.NewRNG(cfg.Seed)
	var total detect.Timing
	points := 0
	start := time.Now()
	for i := 0; i < unitCount; i++ {
		u, err := cluster.Simulate(cluster.Config{
			Name:  fmt.Sprintf("ct-unit%d", i),
			Ticks: ticks,
			Seed:  rng.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		_, timing, err := detect.Run(u.Series, detect.Config{
			Thresholds: window.DefaultThresholds(kpi.Count),
		})
		if err != nil {
			return nil, err
		}
		total.Correlation += timing.Correlation
		total.Window += timing.Window
		points += ticks * 5 * kpi.Count
	}
	elapsed := time.Since(start)
	// The paper's reference load is "a 100M dataset, corresponding to the
	// amount of data for 120 hours of KPI data points" (§IV-D4). At ~8
	// bytes per stored float that is 12.5M points.
	const bytesPerPoint = 8.0
	paperPoints := int(100e6 / bytesPerPoint)
	rate := float64(points) / total.Total().Seconds()
	projected := float64(paperPoints) / rate

	t := &Table{
		Title:   "Component computation time (§IV-D4)",
		Columns: []string{"metric", "value"},
	}
	corrFrac := float64(total.Correlation) / float64(total.Total())
	t.AddRow("correlation measurement share", pct(corrFrac))
	t.AddRow("flexible window share", pct(1-corrFrac))
	t.AddRow("points processed", fmt.Sprintf("%d", points))
	t.AddRow("detection throughput", fmt.Sprintf("%.0f points/s", rate))
	t.AddRow("projected time for the 100 MB / 120 h load (paper: 42 s)",
		fmt.Sprintf("%.2f s (%.0f MB, %d points)", projected,
			float64(paperPoints)*bytesPerPoint/1e6, paperPoints))
	t.AddRow("wall clock (incl. simulation)", fmt.Sprintf("%.1f s", elapsed.Seconds()))
	t.Notes = append(t.Notes,
		"paper: correlation 70%, window 30%, 42 s for the 100 MB load")
	return t, nil
}
