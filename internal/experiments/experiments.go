// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) against the simulated datasets. Each experiment is a
// function returning a Table that renders in the paper's layout; the
// cmd/experiments binary and the repository benchmarks drive them.
//
// Scale: the paper's datasets (Table III) hold 0.6-5.5M points and its
// deep baselines trained for up to 4589 s. The default experiment scale is
// reduced so the full suite runs in minutes; Config.Scale raises it toward
// paper size. Ratios (anomaly %, 60/40 irregular/periodic, 50/50
// train/test) are preserved at every scale.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"dbcatcher/internal/dataset"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies dataset size toward the paper's (1.0 = paper's
	// Table III shape: 100/50/50 units x 2592 ticks). The default 0 means
	// the quick scale (8/6/6 units x 1200 ticks).
	Scale float64
	// Runs is the number of repeated runs for mean/min/max statistics
	// (the paper uses 20; default 3).
	Runs int
	// Seed drives all randomness.
	Seed uint64
	// Concurrency bounds the per-unit fan-out during dataset generation
	// and DBCatcher training/evaluation: <= 0 uses GOMAXPROCS, 1 forces
	// serial. Tables are identical at any setting.
	Concurrency int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// datasetShape returns the unit count and tick count for a family at the
// configured scale.
func (c Config) datasetShape(f dataset.Family) (units, ticks int) {
	if c.Scale >= 1 {
		return f.DefaultUnits(), int(2592 * c.Scale)
	}
	// Quick scale: enough units for stable statistics, short series.
	units = 8
	if f == dataset.Tencent {
		units = 10
	}
	ticks = 1200
	if c.Scale > 0 {
		units = int(float64(units) + c.Scale*float64(f.DefaultUnits()-units))
		ticks = int(1200 + c.Scale*(2592-1200))
	}
	return units, ticks
}

// generate builds one family's dataset at the configured scale.
func (c Config) generate(f dataset.Family, seed uint64) (*dataset.Dataset, error) {
	units, ticks := c.datasetShape(f)
	return dataset.Generate(dataset.Config{
		Family:      f,
		Units:       units,
		Ticks:       ticks,
		Seed:        seed,
		Concurrency: c.Concurrency,
	})
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes holds caption-style commentary (paper-vs-measured remarks).
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render lays the table out as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// CSV renders the table as RFC-4180 CSV (title and notes become comment
// lines) for downstream plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	w := csv.NewWriter(&b)
	_ = w.Write(t.Columns)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
