package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tab.AddRow("x", "y")
	tab.Notes = append(tab.Notes, "hello")
	out := tab.Render()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "bbbb") ||
		!strings.Contains(out, "note: hello") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Runs != 3 || cfg.Seed != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestDatasetShapeScales(t *testing.T) {
	quick := Config{}.withDefaults()
	u, ticks := quick.datasetShape(0) // Tencent
	if u != 10 || ticks != 1200 {
		t.Fatalf("quick shape = %d, %d", u, ticks)
	}
	full := Config{Scale: 1}.withDefaults()
	u, ticks = full.datasetShape(0)
	if u != 100 || ticks != 2592 {
		t.Fatalf("full shape = %d, %d", u, ticks)
	}
}

func TestRegistryRejectsUnknown(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestNamesCoverRegistry(t *testing.T) {
	if len(Names()) < 11 {
		t.Fatalf("names = %v", Names())
	}
}

// TestTableIIUKPICShape asserts the core validation: R-R typed KPIs have
// high measured R-R correlation and clearly lower P-R correlation, while
// P-R typed KPIs are high in both columns.
func TestTableIIUKPICShape(t *testing.T) {
	tab, err := TableII(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 14 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		pr := parseF(t, row[2])
		rr := parseF(t, row[3])
		if rr < 0.75 {
			t.Errorf("%s: measured R-R %.3f too low", row[0], rr)
		}
		if row[1] == "R-R" && pr > rr-0.2 {
			t.Errorf("%s: R-R typed KPI should have weak P-R (pr=%.3f rr=%.3f)", row[0], pr, rr)
		}
		if row[1] == "P-R, R-R" && pr < 0.7 {
			t.Errorf("%s: PRRR typed KPI should have strong P-R (%.3f)", row[0], pr)
		}
	}
}

// TestFigure3MatrixShape asserts the UKPIC matrices are strongly
// correlated off-diagonal.
func TestFigure3MatrixShape(t *testing.T) {
	tab, err := Figure3(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		for j := 1; j < len(row); j++ {
			v := parseF(t, row[j])
			if v < 0.7 {
				t.Errorf("matrix[%d][%d] = %.2f, want >= 0.7 (UKPIC)", i, j-1, v)
			}
		}
	}
}

// TestFigure5Recovers asserts the fluctuation dilution: the largest window
// scores clearly above the smallest.
func TestFigure5Recovers(t *testing.T) {
	tab, err := Figure5(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tab.Rows[0][2])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][2])
	if last <= first {
		t.Fatalf("score should recover with window growth: %.3f -> %.3f", first, last)
	}
}

// TestTableIIIRatios asserts the generated datasets land near the paper's
// abnormal ratios.
func TestTableIIIRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is moderately slow")
	}
	tab, err := TableIII(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3.11, 4.21, 4.06}
	for i, row := range tab.Rows {
		ratio := parsePct(t, row[5])
		if ratio < want[i]-1.5 || ratio > want[i]+1.5 {
			t.Errorf("%s ratio %.2f%%, want near %.2f%%", row[0], ratio, want[i])
		}
	}
}

// TestFigure8Shape is the headline integration test: at quick scale with
// one run, DBCatcher must (a) produce a competitive F-Measure and (b) use
// a far smaller window than every baseline.
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is slow")
	}
	_, tv, _, res, err := Figure8(Config{Runs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, ds := range res.Datasets {
		dbc := res.Stats["DBCatcher"][ds].Runs
		bestBaseline := 0.0
		for _, m := range methodNames {
			if m == "DBCatcher" {
				continue
			}
			if f := res.Stats[m][ds].Runs.FMeasure.Mean; f > bestBaseline {
				bestBaseline = f
			}
		}
		if dbc.FMeasure.Mean >= bestBaseline {
			wins++
		}
		// Efficiency: DBCatcher's window must be small, and smaller than
		// most baselines' (a single quick run lets one baseline
		// occasionally land on a small grid point).
		if dbc.AvgWindowSize >= 45 {
			t.Errorf("%s: DBCatcher window %.0f too large", ds, dbc.AvgWindowSize)
		}
		larger := 0
		for _, m := range methodNames {
			if m == "DBCatcher" {
				continue
			}
			if res.Stats[m][ds].Runs.AvgWindowSize > dbc.AvgWindowSize {
				larger++
			}
		}
		if larger < 4 {
			t.Errorf("%s: only %d/5 baselines use a larger window than DBCatcher", ds, larger)
		}
	}
	// The paper has DBCatcher winning on all three; a single quick run is
	// noisy, so require at least two of three.
	if wins < 2 {
		t.Errorf("DBCatcher won only %d/3 datasets", wins)
	}
	if len(tv.Rows) != len(methodNames) {
		t.Errorf("Table V rows = %d", len(tv.Rows))
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	return parseF(t, strings.TrimSuffix(strings.TrimSpace(s), "%"))
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("x", "1")
	tab.Notes = append(tab.Notes, "n")
	out := tab.CSV()
	if !strings.Contains(out, "# T\n") || !strings.Contains(out, "a,b\n") ||
		!strings.Contains(out, "x,1\n") || !strings.Contains(out, "# n\n") {
		t.Fatalf("CSV:\n%s", out)
	}
}

// TestScenariosMatrix runs the hostile-scenario matrix once at the quick
// scale: five rows in fixed order, every row covered by a pinned floor,
// and the floor check itself passing at the default seed.
func TestScenariosMatrix(t *testing.T) {
	tab, err := CheckScenarios(Config{Runs: 1})
	if err != nil {
		t.Fatalf("floor check: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row %v vs columns %v", row, tab.Columns)
		}
		if _, ok := ScenarioFloors[row[0]]; !ok {
			t.Errorf("scenario %q has no floor", row[0])
		}
		if f := parsePct(t, row[7]); f <= 0 {
			t.Errorf("%s: zero F-measure", row[0])
		}
	}
	if len(tab.Notes) != 6 {
		t.Fatalf("notes = %d", len(tab.Notes))
	}
}
