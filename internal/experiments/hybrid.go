package experiments

import (
	"fmt"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/baselines"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/ensemble"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/workload"
)

// Hybrid is an extension experiment quantifying the paper's §V discussion:
// on standard single-database anomalies the Hybrid (DBCatcher + SR)
// matches pure DBCatcher, and on unit-wide outages — where UKPIC is
// preserved and correlation measurement is blind — only the Hybrid
// detects anything.
func Hybrid(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Hybrid ensemble (extension) — pure DBCatcher vs DBCatcher+SR",
		Columns: []string{"Scenario", "DBCatcher recall", "Hybrid recall", "DBCatcher F", "Hybrid F"},
	}
	type agg struct{ pr, hr, pf, hf float64 }
	var std, out agg
	for run := 0; run < cfg.Runs; run++ {
		seed := cfg.Seed + uint64(run*13+71)
		cfg.logf("[Hybrid] run %d/%d...", run+1, cfg.Runs)
		ds, err := dataset.Generate(dataset.Config{
			Family: dataset.Tencent, Units: 6, Ticks: 1000, Seed: seed, AnomalyRatio: 0.04,
		})
		if err != nil {
			return nil, err
		}
		train, test, err := ds.Split(0.5)
		if err != nil {
			return nil, err
		}
		pure := baselines.NewDBCatcherMethod()
		pure.Concurrency = cfg.Concurrency
		if _, err := pure.Train(train.Units, seed); err != nil {
			return nil, err
		}
		hyb := ensemble.NewHybrid()
		if _, err := hyb.Train(train.Units, seed); err != nil {
			return nil, err
		}
		// Scenario 1: standard single-database anomalies.
		pres, err := pure.Evaluate(test.Units)
		if err != nil {
			return nil, err
		}
		hres, err := hyb.Evaluate(test.Units)
		if err != nil {
			return nil, err
		}
		std.pr += pres.Confusion.Recall()
		std.hr += hres.Confusion.Recall()
		std.pf += pres.Confusion.FMeasure()
		std.hf += hres.Confusion.FMeasure()

		// Scenario 2: unit-wide outages (the §V blind spot).
		outUnits, err := outageUnits(3, 600, seed+500)
		if err != nil {
			return nil, err
		}
		pres, err = pure.Evaluate(outUnits)
		if err != nil {
			return nil, err
		}
		hres, err = hyb.Evaluate(outUnits)
		if err != nil {
			return nil, err
		}
		out.pr += pres.Confusion.Recall()
		out.hr += hres.Confusion.Recall()
		out.pf += pres.Confusion.FMeasure()
		out.hf += hres.Confusion.FMeasure()
	}
	n := float64(cfg.Runs)
	t.AddRow("single-db anomalies", pct(std.pr/n), pct(std.hr/n), pct(std.pf/n), pct(std.hf/n))
	t.AddRow("unit-wide outages", pct(out.pr/n), pct(out.hr/n), pct(out.pf/n), pct(out.hf/n))
	t.Notes = append(t.Notes,
		"§V: correlation measurement is blind to simultaneous all-database anomalies; the per-series fallback covers it",
		"the union trades precision for recall — the paper's framing (\"complements existing methods\"), not a free win")
	return t, nil
}

// outageUnits builds test units whose only anomalies are unit-wide.
func outageUnits(count, ticks int, seed uint64) ([]*dataset.UnitData, error) {
	rng := mathx.NewRNG(seed)
	var out []*dataset.UnitData
	for i := 0; i < count; i++ {
		u, err := cluster.Simulate(cluster.Config{
			Name: fmt.Sprintf("outage-%d", i), Ticks: ticks, Seed: rng.Uint64(),
			Profile: workload.TencentIrregular, FluctuationRate: 1e-9,
		})
		if err != nil {
			return nil, err
		}
		labels, err := anomaly.Inject(u, []anomaly.Event{
			{Type: anomaly.UnitOutage, Start: ticks / 3, Length: 40, Magnitude: 0.9},
			{Type: anomaly.UnitOutage, Start: 2 * ticks / 3, Length: 40, Magnitude: 0.85},
		}, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, &dataset.UnitData{Unit: u, Labels: labels, Profile: workload.TencentIrregular})
	}
	return out, nil
}
