package experiments

import (
	"fmt"

	"dbcatcher/internal/baselines"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/detect"
)

// Diagnosis is an extension beyond the paper's tables: because DBCatcher's
// verdict names the deviating database (the k-of-M baselines only flag the
// unit), we can measure *localization* accuracy — among true-positive
// windows, how often the flagged database matches the injected one. This
// quantifies the root-cause head start the case studies (§V) describe
// qualitatively.
func Diagnosis(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Diagnosis accuracy (extension) — flagged database vs injected database",
		Columns: []string{"Dataset", "diagnosis accuracy", "TP windows"},
	}
	for fi, family := range []dataset.Family{dataset.Tencent, dataset.Sysbench, dataset.TPCC} {
		var accSum float64
		var tpTotal int
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + uint64(fi*100+run+51)
			cfg.logf("[Diagnosis] %s run %d/%d...", family, run+1, cfg.Runs)
			ds, err := cfg.generate(family, seed)
			if err != nil {
				return nil, err
			}
			train, test, err := ds.Split(0.5)
			if err != nil {
				return nil, err
			}
			m := baselines.NewDBCatcherMethod()
			m.Concurrency = cfg.Concurrency
			if _, err := m.Train(train.Units, seed); err != nil {
				return nil, err
			}
			var correct, total int
			for _, u := range test.Units {
				verdicts, _, err := detect.Run(u.Unit.Series, detect.Config{
					Thresholds: m.Thresholds(),
				})
				if err != nil {
					return nil, err
				}
				for _, v := range verdicts {
					if !v.Abnormal {
						continue
					}
					truth := -1
					for tk := v.Start; tk < v.Start+v.Size; tk++ {
						if u.Labels.DB[tk] >= 0 {
							truth = u.Labels.DB[tk]
							break
						}
					}
					if truth == -1 {
						continue // false positive: no diagnosis case
					}
					total++
					if v.AbnormalDB == truth {
						correct++
					}
				}
			}
			if total > 0 {
				accSum += float64(correct) / float64(total)
			}
			tpTotal += total
		}
		t.AddRow(family.String(), pct(accSum/float64(cfg.Runs)), fmt.Sprintf("%d", tpTotal))
	}
	t.Notes = append(t.Notes,
		"random guessing over 5 databases would score 20%; the baselines cannot localize at all")
	return t, nil
}
