package experiments

import (
	"fmt"
	"strings"
)

// Run executes the named experiment and returns its tables. Valid names
// are listed by Names(); "all" runs everything in paper order.
func Run(name string, cfg Config) ([]*Table, error) {
	switch strings.ToLower(name) {
	case "tableii":
		t, err := TableII(cfg)
		return one(t, err)
	case "tableiii":
		t, err := TableIII(cfg)
		return one(t, err)
	case "figure3":
		t, err := Figure3(cfg)
		return one(t, err)
	case "figure5":
		t, err := Figure5(cfg)
		return one(t, err)
	case "figure8", "tablev", "tablevi":
		fig, tv, tvi, _, err := Figure8(cfg)
		if err != nil {
			return nil, err
		}
		return []*Table{fig, tv, tvi}, nil
	case "figure9", "tablevii":
		fig, tvii, _, err := Figure9(cfg)
		if err != nil {
			return nil, err
		}
		return []*Table{fig, tvii}, nil
	case "figure10", "tableviii":
		fig, tviii, _, err := Figure10(cfg)
		if err != nil {
			return nil, err
		}
		return []*Table{fig, tviii}, nil
	case "tableix":
		t, err := TableIX(cfg)
		return one(t, err)
	case "tablex":
		t, err := TableX(cfg)
		return one(t, err)
	case "figure11":
		t, err := Figure11(cfg)
		return one(t, err)
	case "componenttime":
		t, err := ComponentTime(cfg)
		return one(t, err)
	case "diagnosis":
		t, err := Diagnosis(cfg)
		return one(t, err)
	case "hybrid":
		t, err := Hybrid(cfg)
		return one(t, err)
	case "scenarios":
		t, err := Scenarios(cfg)
		return one(t, err)
	case "all":
		var out []*Table
		for _, n := range Names() {
			if n == "all" {
				continue
			}
			tables, err := Run(n, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", n, err)
			}
			out = append(out, tables...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
}

func one(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Names lists the runnable experiments in paper order.
func Names() []string {
	names := []string{
		"tableII", "tableIII", "figure3", "figure5",
		"figure8", "figure9", "figure10",
		"tableIX", "tableX", "figure11", "componenttime", "diagnosis",
		"hybrid", "scenarios", "all",
	}
	return names
}
