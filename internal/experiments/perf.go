package experiments

import (
	"fmt"
	"time"

	"dbcatcher/internal/baselines"
	"dbcatcher/internal/dataset"
	"dbcatcher/internal/metrics"
)

// methodSet builds fresh instances of all six compared methods.
func methodSet(concurrency int) []baselines.Method {
	dbc := baselines.NewDBCatcherMethod()
	dbc.Concurrency = concurrency
	return []baselines.Method{
		baselines.NewFFTMethod(),
		baselines.NewSRMethod(),
		baselines.NewSRCNNMethod(),
		baselines.NewOmniAnomalyMethod(),
		baselines.NewJumpStarterMethod(),
		dbc,
	}
}

// methodNames lists the comparison order used in every table.
var methodNames = []string{"FFT", "SR", "SR-CNN", "OmniAnomaly", "JumpStarter", "DBCatcher"}

// MethodStats aggregates one method's repeated runs on one dataset.
type MethodStats struct {
	Method  string
	Dataset string
	Runs    metrics.RunStats
}

// PerfResults holds a full comparison campaign: per method, per dataset.
type PerfResults struct {
	// Stats[method][dataset] in methodNames x dataset order.
	Stats map[string]map[string]MethodStats
	// Datasets preserves column order.
	Datasets []string
}

// splitKind selects which subset of each dataset a campaign evaluates.
type splitKind int

const (
	splitMixed splitKind = iota
	splitIrregular
	splitPeriodic
)

// runCampaign evaluates every method on every dataset family, repeated
// cfg.Runs times with distinct seeds, on the requested subset.
func runCampaign(cfg Config, kind splitKind) (*PerfResults, error) {
	cfg = cfg.withDefaults()
	res := &PerfResults{Stats: make(map[string]map[string]MethodStats)}
	for _, name := range methodNames {
		res.Stats[name] = make(map[string]MethodStats)
	}
	for fi, family := range []dataset.Family{dataset.Tencent, dataset.Sysbench, dataset.TPCC} {
		dsName := datasetLabel(family, kind)
		res.Datasets = append(res.Datasets, dsName)
		confusions := make(map[string][]metrics.Confusion)
		windows := make(map[string][]float64)
		trainSecs := make(map[string][]float64)
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + uint64(fi*1000+run*37+1)
			cfg.logf("[%s] run %d/%d: generating dataset...", dsName, run+1, cfg.Runs)
			ds, err := cfg.generate(family, seed)
			if err != nil {
				return nil, err
			}
			ds = selectSplit(ds, kind)
			if len(ds.Units) < 2 {
				return nil, fmt.Errorf("experiments: %s subset too small (%d units)", dsName, len(ds.Units))
			}
			train, test, err := ds.Split(0.5)
			if err != nil {
				return nil, err
			}
			for _, m := range methodSet(cfg.Concurrency) {
				cfg.logf("[%s] run %d/%d: %s...", dsName, run+1, cfg.Runs, m.Name())
				info, err := m.Train(train.Units, seed)
				if err != nil {
					return nil, fmt.Errorf("%s train: %w", m.Name(), err)
				}
				r, err := m.Evaluate(test.Units)
				if err != nil {
					return nil, fmt.Errorf("%s evaluate: %w", m.Name(), err)
				}
				confusions[m.Name()] = append(confusions[m.Name()], r.Confusion)
				windows[m.Name()] = append(windows[m.Name()], r.AvgWindowSize)
				trainSecs[m.Name()] = append(trainSecs[m.Name()], info.Duration.Seconds())
			}
		}
		for _, name := range methodNames {
			res.Stats[name][dsName] = MethodStats{
				Method:  name,
				Dataset: dsName,
				Runs:    metrics.CollectRuns(confusions[name], windows[name], trainSecs[name]),
			}
		}
	}
	return res, nil
}

func datasetLabel(f dataset.Family, kind splitKind) string {
	switch kind {
	case splitIrregular:
		return f.String() + " I"
	case splitPeriodic:
		return f.String() + " II"
	default:
		return f.String()
	}
}

// selectSplit reduces a dataset to the requested subset. The irregular and
// periodic subsets use the period detector on short series when it is
// confident and the generation profile otherwise — the paper classifies
// with RobustPeriod; at quick scale series are too short for reliable
// spectral classification, so the ground-truth profile stands in.
func selectSplit(ds *dataset.Dataset, kind splitKind) *dataset.Dataset {
	switch kind {
	case splitIrregular:
		irr, _ := ds.SplitByProfile()
		return irr
	case splitPeriodic:
		_, per := ds.SplitByProfile()
		return per
	default:
		return ds
	}
}

// figureTable renders a campaign as a Fig. 8/9/10-style table: one block
// of Precision/Recall/F-Measure (mean, min, max) per method and dataset.
func figureTable(title string, res *PerfResults) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"Dataset", "Model", "Precision", "Recall", "F-Measure", "F min", "F max"},
	}
	for _, ds := range res.Datasets {
		for _, m := range methodNames {
			s := res.Stats[m][ds].Runs
			t.AddRow(ds, m,
				pct(s.Precision.Mean), pct(s.Recall.Mean), pct(s.FMeasure.Mean),
				pct(s.FMeasure.Min), pct(s.FMeasure.Max))
		}
	}
	return t
}

// windowTable renders a campaign as a Table V/VII/VIII-style window-size
// table.
func windowTable(title string, res *PerfResults) *Table {
	t := &Table{Title: title, Columns: append([]string{"Model"}, res.Datasets...)}
	for _, m := range methodNames {
		row := []string{m}
		for _, ds := range res.Datasets {
			row = append(row, fmt.Sprintf("%.0f", res.Stats[m][ds].Runs.AvgWindowSize))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "smaller Window-Size = higher detection efficiency (§IV-A3)")
	return t
}

// trainTimeTable renders a campaign as a Table VI-style training-time
// table.
func trainTimeTable(title string, res *PerfResults) *Table {
	t := &Table{Title: title, Columns: append([]string{"Model"}, res.Datasets...)}
	for _, m := range methodNames {
		row := []string{m}
		for _, ds := range res.Datasets {
			row = append(row, fmt.Sprintf("%.2fs", res.Stats[m][ds].Runs.TrainSeconds))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"absolute times are machine-dependent; the ordering (FFT/SR < DBCatcher < deep baselines) is the paper's Table VI shape")
	return t
}

// Figure8 runs the mixed-dataset comparison and returns (figure table,
// Table V, Table VI, raw results).
func Figure8(cfg Config) (*Table, *Table, *Table, *PerfResults, error) {
	res, err := runCampaign(cfg, splitMixed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fig := figureTable("Figure 8 — performance on mixed datasets (mean over runs)", res)
	tv := windowTable("Table V — average Window-Size at best F-Measure (mixed)", res)
	tvi := trainTimeTable("Table VI — training time (mixed)", res)
	return fig, tv, tvi, res, nil
}

// Figure9 runs the irregular-dataset comparison (figure + Table VII).
func Figure9(cfg Config) (*Table, *Table, *PerfResults, error) {
	res, err := runCampaign(cfg, splitIrregular)
	if err != nil {
		return nil, nil, nil, err
	}
	fig := figureTable("Figure 9 — performance on irregular datasets", res)
	tvii := windowTable("Table VII — Window-Size on irregular datasets", res)
	return fig, tvii, res, nil
}

// Figure10 runs the periodic-dataset comparison (figure + Table VIII).
func Figure10(cfg Config) (*Table, *Table, *PerfResults, error) {
	res, err := runCampaign(cfg, splitPeriodic)
	if err != nil {
		return nil, nil, nil, err
	}
	fig := figureTable("Figure 10 — performance on periodic datasets", res)
	tviii := windowTable("Table VIII — Window-Size on periodic datasets", res)
	return fig, tviii, res, nil
}

// TableIX measures retraining time under workload drift: each method is
// trained on the source family, the workload drifts to the target family,
// and the retraining wall-clock on the target's training split is
// reported.
func TableIX(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	drifts := []struct {
		label          string
		source, target dataset.Family
	}{
		{"T-S", dataset.Tencent, dataset.Sysbench},
		{"T-C", dataset.Tencent, dataset.TPCC},
		{"S-C", dataset.Sysbench, dataset.TPCC},
	}
	t := &Table{
		Title:   "Table IX — retraining time when workload drifts",
		Columns: []string{"Model", "T-S", "T-C", "S-C"},
	}
	times := make(map[string]map[string]float64)
	for _, name := range methodNames {
		times[name] = make(map[string]float64)
	}
	for di, d := range drifts {
		seed := cfg.Seed + uint64(di+7)
		cfg.logf("[Table IX] drift %s...", d.label)
		src, err := cfg.generate(d.source, seed)
		if err != nil {
			return nil, err
		}
		srcTrain, _, err := src.Split(0.5)
		if err != nil {
			return nil, err
		}
		tgt, err := cfg.generate(d.target, seed+100)
		if err != nil {
			return nil, err
		}
		tgtTrain, _, err := tgt.Split(0.5)
		if err != nil {
			return nil, err
		}
		for _, m := range methodSet(cfg.Concurrency) {
			// Initial fit on the source workload.
			if _, err := m.Train(srcTrain.Units, seed); err != nil {
				return nil, err
			}
			// Drift: retrain on the target workload.
			start := time.Now()
			if _, err := m.Train(tgtTrain.Units, seed+1); err != nil {
				return nil, err
			}
			times[m.Name()][d.label] = time.Since(start).Seconds()
		}
	}
	for _, name := range methodNames {
		t.AddRow(name,
			fmt.Sprintf("%.2fs", times[name]["T-S"]),
			fmt.Sprintf("%.2fs", times[name]["T-C"]),
			fmt.Sprintf("%.2fs", times[name]["S-C"]))
	}
	t.Notes = append(t.Notes,
		"T-S: Tencent->Sysbench, T-C: Tencent->TPCC, S-C: Sysbench->TPCC; the paper's shape is FFT/SR < DBCatcher << deep baselines")
	return t, nil
}
