package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"dbcatcher/internal/metrics"
	"dbcatcher/internal/scenario"
)

// ScenarioFloors pins the minimum merged F-measure each hostile scenario
// must clear under `experiments -run scenarios -check`. The floors are
// regression tripwires calibrated to the default seed at the quick scale
// (CI runs exactly that); scores vary substantially across seeds, so a
// floor is a "the detector still works on the pinned stream" check, not a
// distribution-wide guarantee — see EXPERIMENTS.md for measured spreads.
// Rolling-restart's floor is deliberately low: restart silences provably
// cost precision today (every false alarm there fires on a degraded-health
// window), and the floor records that honestly instead of hiding the
// scenario.
var ScenarioFloors = map[string]float64{
	"noisy-neighbor":    0.55,
	"failover-storm":    0.50,
	"rolling-restart":   0.25,
	"network-partition": 0.60,
	"slow-burn-cascade": 0.45,
}

// scenarioTicks maps the experiment scale onto a scenario stream length:
// 800 ticks at the quick scale, the paper's 2592 at scale 1.
func (c Config) scenarioTicks() int {
	if c.Scale >= 1 {
		return int(2592 * c.Scale)
	}
	t := 800
	if c.Scale > 0 {
		t = int(800 + c.Scale*(2592-800))
	}
	return t
}

// Scenarios runs the hostile-scenario matrix — every scripted failure
// story streamed through the online judge over cfg.Runs seeds — and
// reports the merged confusion per scenario.
func Scenarios(cfg Config) (*Table, error) {
	t, _, err := scenarioMatrix(cfg)
	return t, err
}

// CheckScenarios runs the matrix and additionally enforces ScenarioFloors,
// returning the rendered table alongside an error naming every scenario
// whose merged F-measure fell below its floor.
func CheckScenarios(cfg Config) (*Table, error) {
	t, results, err := scenarioMatrix(cfg)
	if err != nil {
		return nil, err
	}
	var breaches []string
	for _, r := range results {
		floor, ok := ScenarioFloors[r.Name]
		if !ok {
			breaches = append(breaches, fmt.Sprintf("%s: no floor pinned", r.Name))
			continue
		}
		if f := r.Confusion.FMeasure(); f < floor {
			breaches = append(breaches, fmt.Sprintf("%s: F=%.3f below floor %.2f", r.Name, f, floor))
		}
	}
	if len(breaches) > 0 {
		return t, fmt.Errorf("scenarios: %s", strings.Join(breaches, "; "))
	}
	return t, nil
}

func scenarioMatrix(cfg Config) (*Table, []scenario.Result, error) {
	cfg = cfg.withDefaults()
	ticks := cfg.scenarioTicks()
	t := &Table{
		Title: fmt.Sprintf("Hostile-scenario matrix (%d ticks, %d runs merged)", ticks, cfg.Runs),
		Columns: []string{
			"Scenario", "TP", "FP", "TN", "FN",
			"Precision", "Recall", "F-Measure", "Degraded",
		},
	}
	var results []scenario.Result
	for _, s := range scenario.All() {
		merged := scenario.Result{Name: s.Name}
		var conf metrics.Confusion
		for r := 0; r < cfg.Runs; r++ {
			cfg.logf("scenarios: %s run %d/%d", s.Name, r+1, cfg.Runs)
			res, err := s.Run(scenario.Config{
				Ticks:   ticks,
				Workers: cfg.Concurrency,
			}, cfg.Seed+uint64(r))
			if err != nil {
				return nil, nil, fmt.Errorf("scenarios: %s: %w", s.Name, err)
			}
			conf.Merge(res.Confusion)
			merged.Verdicts += res.Verdicts
			merged.Degraded += res.Degraded
			merged.Skipped += res.Skipped
		}
		merged.Confusion = conf
		results = append(results, merged)
		t.AddRow(s.Name,
			strconv.Itoa(conf.TP), strconv.Itoa(conf.FP),
			strconv.Itoa(conf.TN), strconv.Itoa(conf.FN),
			pct(conf.Precision()), pct(conf.Recall()), pct(conf.FMeasure()),
			strconv.Itoa(merged.Degraded),
		)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s", s.Name, s.Truth))
	}
	t.Notes = append(t.Notes,
		"rolling-restart falls short of its own truth today: every false alarm fires inside a restart silence and carries degraded health, so operators see \"alarm on missing data\", not a clean page — the matrix records the gap instead of tuning it away")
	return t, results, nil
}
