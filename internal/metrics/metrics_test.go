package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	c.Add(true, true)   // TP
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestMetricsKnownValues(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2, TN: 88}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); got != 0.8 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.FMeasure(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("F = %v", got)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.FMeasure() != 0 {
		t.Fatal("empty confusion should give 0 metrics")
	}
	onlyTN := Confusion{TN: 5}
	if onlyTN.FMeasure() != 0 {
		t.Fatal("TN-only F should be 0")
	}
}

func TestMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestFMeasureBoundsProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		fm := c.FMeasure()
		if fm < 0 || fm > 1 || math.IsNaN(fm) {
			return false
		}
		// F is bounded by both precision and recall from above only when
		// both are nonzero; in general min <= F <= max.
		p, r := c.Precision(), c.Recall()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return fm >= lo-1e-12 && fm <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 0.7, 0.6})
	if math.Abs(s.Mean-0.6) > 1e-12 || s.Min != 0.5 || s.Max != 0.7 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
}

func TestCollectRuns(t *testing.T) {
	confs := []Confusion{
		{TP: 8, FP: 2, FN: 2, TN: 88},
		{TP: 6, FP: 4, FN: 4, TN: 86},
	}
	rs := CollectRuns(confs, []float64{20, 24}, []float64{1.5, 2.5})
	if rs.FMeasure.N != 2 {
		t.Fatalf("runs = %d", rs.FMeasure.N)
	}
	if rs.Precision.Max != 0.8 || rs.Precision.Min != 0.6 {
		t.Fatalf("precision summary = %+v", rs.Precision)
	}
	if rs.AvgWindowSize != 22 {
		t.Fatalf("avg window = %v", rs.AvgWindowSize)
	}
	if rs.TrainSeconds != 2 {
		t.Fatalf("train seconds = %v", rs.TrainSeconds)
	}
}
