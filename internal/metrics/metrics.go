// Package metrics implements the evaluation protocol of §IV-A3: confusion
// counting over detection windows, precision / recall / F-measure, and the
// Window-Size efficiency metric.
package metrics

import (
	"fmt"
	"math"
)

// Confusion accumulates window-level detection outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add folds one (predictedAbnormal, actuallyAbnormal) pair.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Merge adds another confusion's counts.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of counted windows.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP), or 0 when nothing was predicted abnormal.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when nothing was actually abnormal.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FMeasure returns the harmonic mean of precision and recall.
func (c Confusion) FMeasure() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the confusion compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.3f R=%.3f F=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.FMeasure())
}

// Summary aggregates repeated evaluation runs (the paper reports mean,
// maximum, and minimum over 20 runs).
type Summary struct {
	Mean, Min, Max float64
	N              int
}

// Summarize reduces a slice of metric values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(values)}
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	return s
}

// RunStats collects the three performance metrics plus the efficiency
// metric across repeated runs.
type RunStats struct {
	Precision, Recall, FMeasure Summary
	// AvgWindowSize is the mean Window-Size across runs (the efficiency
	// metric of §IV-A3: the points required per detection).
	AvgWindowSize float64
	// TrainSeconds is the mean wall-clock training time across runs.
	TrainSeconds float64
}

// CollectRuns reduces per-run confusions and window sizes into RunStats.
func CollectRuns(confusions []Confusion, windowSizes []float64, trainSeconds []float64) RunStats {
	p := make([]float64, len(confusions))
	r := make([]float64, len(confusions))
	f := make([]float64, len(confusions))
	for i, c := range confusions {
		p[i] = c.Precision()
		r[i] = c.Recall()
		f[i] = c.FMeasure()
	}
	var rs RunStats
	rs.Precision = Summarize(p)
	rs.Recall = Summarize(r)
	rs.FMeasure = Summarize(f)
	if len(windowSizes) > 0 {
		var sum float64
		for _, w := range windowSizes {
			sum += w
		}
		rs.AvgWindowSize = sum / float64(len(windowSizes))
	}
	if len(trainSeconds) > 0 {
		var sum float64
		for _, t := range trainSeconds {
			sum += t
		}
		rs.TrainSeconds = sum / float64(len(trainSeconds))
	}
	return rs
}
