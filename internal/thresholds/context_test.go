package thresholds

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dbcatcher/internal/window"
)

// contextSearchers are every policy that implements ContextSearcher, with
// small budgets so the full-search comparison stays fast.
func contextSearchers() []ContextSearcher {
	return []ContextSearcher{
		GA{Seed: 7, Generations: 8, Population: 12},
		SAA{Seed: 7, Steps: 120},
		Random{Seed: 7, Trials: 120},
	}
}

func TestSearchContextBackgroundMatchesSearch(t *testing.T) {
	fitness := quadraticFitness(0.7, 0.2, 2)
	for _, s := range contextSearchers() {
		plain := s.Search(4, fitness)
		ctxRes, err := s.SearchContext(context.Background(), 4, fitness)
		if err != nil {
			t.Fatalf("%s: SearchContext(Background) error: %v", s.Name(), err)
		}
		if !reflect.DeepEqual(plain, ctxRes) {
			t.Fatalf("%s: SearchContext(Background) diverged from Search:\n  plain %+v\n  ctx   %+v",
				s.Name(), plain, ctxRes)
		}
	}
}

func TestSearchContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range contextSearchers() {
		var calls int32
		_, err := s.SearchContext(ctx, 4, func(window.Thresholds) float64 {
			atomic.AddInt32(&calls, 1)
			return 0.5
		})
		if err != context.Canceled {
			t.Fatalf("%s: err = %v, want context.Canceled", s.Name(), err)
		}
		// A cancelled context must stop the search before it burns the full
		// evaluation budget (a single in-flight evaluation may still land).
		if n := atomic.LoadInt32(&calls); n > 1 {
			t.Fatalf("%s: %d fitness calls after pre-cancelled context", s.Name(), n)
		}
	}
}

func TestSearchContextCancelledMidSearch(t *testing.T) {
	base := quadraticFitness(0.7, 0.2, 2)
	for _, s := range contextSearchers() {
		ctx, cancel := context.WithCancel(context.Background())
		var calls int32
		res, err := s.SearchContext(ctx, 4, func(th window.Thresholds) float64 {
			if atomic.AddInt32(&calls, 1) == 10 {
				cancel()
			}
			return base(th)
		})
		if err != context.Canceled {
			t.Fatalf("%s: err = %v, want context.Canceled", s.Name(), err)
		}
		full := s.Search(4, base)
		if res.Evaluations >= full.Evaluations {
			t.Fatalf("%s: cancelled search ran %d evaluations, full search runs %d",
				s.Name(), res.Evaluations, full.Evaluations)
		}
	}
}

func TestSearchContextDeadline(t *testing.T) {
	// A fitness slow enough that the deadline expires inside the first
	// handful of evaluations; the search must return promptly with the
	// deadline error rather than finishing its budget.
	for _, s := range contextSearchers() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		start := time.Now()
		_, err := s.SearchContext(ctx, 4, func(window.Thresholds) float64 {
			time.Sleep(2 * time.Millisecond)
			return 0.5
		})
		cancel()
		if err != context.DeadlineExceeded {
			t.Fatalf("%s: err = %v, want context.DeadlineExceeded", s.Name(), err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("%s: deadline-bounded search took %v", s.Name(), el)
		}
	}
}
