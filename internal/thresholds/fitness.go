package thresholds

import (
	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/window"
)

// Sample pairs a matrix source with its ground truth for fitness
// evaluation. Wrap the provider in detect.NewCachedProvider so that every
// genome evaluation after the first reuses the correlation matrices: the
// scores do not depend on the thresholds being searched.
type Sample struct {
	Provider detect.MatrixProvider
	Labels   *anomaly.Labels
}

// DetectorFitness builds the Fitness used by DBCatcher's online feedback
// module: run the detector with the candidate thresholds over the recent
// labelled units and score the F-Measure of the resulting verdicts.
func DetectorFitness(samples []Sample, flex window.FlexConfig) Fitness {
	return func(t window.Thresholds) float64 {
		var c metrics.Confusion
		for _, s := range samples {
			verdicts, _, err := detect.RunProvider(s.Provider, detect.Config{
				Thresholds: t,
				Flex:       flex,
			})
			if err != nil {
				// An invalid genome scores zero rather than aborting the
				// search.
				return 0
			}
			part, err := detect.Evaluate(verdicts, s.Labels)
			if err != nil {
				return 0
			}
			c.Merge(part)
		}
		return c.FMeasure()
	}
}
