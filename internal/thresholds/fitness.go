package thresholds

import (
	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/fleet"
	"dbcatcher/internal/metrics"
	"dbcatcher/internal/window"
)

// Sample pairs a matrix source with its ground truth for fitness
// evaluation. Wrap the provider in detect.NewCachedProvider so that every
// genome evaluation after the first reuses the correlation matrices: the
// scores do not depend on the thresholds being searched.
type Sample struct {
	Provider detect.MatrixProvider
	Labels   *anomaly.Labels
}

// DetectorFitness builds the Fitness used by DBCatcher's online feedback
// module: run the detector with the candidate thresholds over the recent
// labelled units and score the F-Measure of the resulting verdicts.
func DetectorFitness(samples []Sample, flex window.FlexConfig) Fitness {
	return ParallelDetectorFitness(samples, flex, 1)
}

// ParallelDetectorFitness is DetectorFitness fanning one evaluation out
// across the labelled units: each unit's detection pass is independent, and
// the per-unit confusions merge in unit order, so the score is identical to
// the serial walk at any concurrency (<= 0 means GOMAXPROCS). The returned
// Fitness is safe for concurrent use when the sample providers are (a
// CachedProvider over a series provider is). Pick one parallel axis: a
// searcher with Workers > 1 should use concurrency 1 here, and vice versa —
// nesting multiplies goroutines without adding throughput.
func ParallelDetectorFitness(samples []Sample, flex window.FlexConfig, concurrency int) Fitness {
	return func(t window.Thresholds) float64 {
		parts := make([]metrics.Confusion, len(samples))
		err := fleet.Each(len(samples), concurrency, func(i int) error {
			verdicts, _, err := detect.RunProvider(samples[i].Provider, detect.Config{
				Thresholds: t,
				Flex:       flex,
			})
			if err != nil {
				return err
			}
			part, err := detect.Evaluate(verdicts, samples[i].Labels)
			if err != nil {
				return err
			}
			parts[i] = part
			return nil
		})
		if err != nil {
			// An invalid genome scores zero rather than aborting the
			// search.
			return 0
		}
		var c metrics.Confusion
		for _, part := range parts {
			c.Merge(part)
		}
		return c.FMeasure()
	}
}
