package thresholds

import (
	"context"
	"sort"

	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
)

// GA is the genetic algorithm of Algorithm 2.
type GA struct {
	// Population is the number of individuals M (default 20).
	Population int
	// Generations is the iteration count N (default 15).
	Generations int
	// MutationProb is the mutation probability β (default 0.2).
	MutationProb float64
	// EvictFraction of the worst individuals is replaced each generation
	// by offspring (default 0.5).
	EvictFraction float64
	// Ranges bounds the genome; zero value means DefaultRanges.
	Ranges Ranges
	// Seed drives the search's randomness.
	Seed uint64
	// Workers bounds the fitness-evaluation pool: 0 and 1 evaluate
	// serially (the historical behaviour — fitness may then be stateful),
	// AutoWorkers uses GOMAXPROCS, > 1 is taken literally. Parallel
	// evaluation requires a concurrency-safe fitness and returns the same
	// Result as serial: genomes are bred serially from the seeded RNG and
	// only their independent evaluations overlap.
	Workers int
}

func (g GA) withDefaults() GA {
	if g.Population == 0 {
		g.Population = 24
	}
	if g.Generations == 0 {
		g.Generations = 20
	}
	if g.MutationProb == 0 {
		g.MutationProb = 0.2
	}
	if g.EvictFraction == 0 {
		g.EvictFraction = 0.5
	}
	if g.Ranges == (Ranges{}) {
		g.Ranges = DefaultRanges()
	}
	return g
}

// Name implements Searcher.
func (GA) Name() string { return "GA" }

// Search implements Algorithm 2: initialize random individuals, evaluate,
// retain the historical best, evict the poor performers, then breed
// replacements via fitness-proportional selection (Eq. 6), single-point
// crossover, and mutation with learning rate Δ.
func (g GA) Search(q int, fitness Fitness) Result {
	res, _ := g.SearchContext(context.Background(), q, fitness)
	return res
}

// SearchContext implements ContextSearcher: Search with cancellation
// observed before the initial scoring, at each generation boundary, and
// between individual fitness evaluations inside a batch.
func (g GA) SearchContext(ctx context.Context, q int, fitness Fitness) (Result, error) {
	g = g.withDefaults()
	rng := mathx.NewRNG(g.Seed)
	ec := &evalCounter{fn: fitness}
	workers := resolveSearchWorkers(g.Workers)

	// Genome generation always runs serially against the seeded RNG; only
	// the independent fitness evaluations fan out. The RNG call sequence —
	// and therefore every genome — is identical at any worker count.
	genomes := make([]window.Thresholds, g.Population)
	for i := range genomes {
		genomes[i] = g.Ranges.random(q, rng)
	}
	pop, err := scoreAllCtx(ctx, genomes, ec, workers)
	if err != nil {
		return Result{Evaluations: ec.calls}, err
	}
	best := pop[0]
	for _, s := range pop[1:] {
		best = betterOf(best, s)
	}

	for gen := 0; gen < g.Generations; gen++ {
		// Retain the historically best genes (Algorithm 2 lines 5-8).
		for _, s := range pop {
			best = betterOf(best, s)
		}
		if err := ctx.Err(); err != nil {
			return Result{Best: best.t.Clone(), Fitness: best.f, Evaluations: ec.calls}, err
		}
		// Evict poor performers (line 9).
		sort.Slice(pop, func(i, j int) bool { return pop[i].f > pop[j].f })
		survivors := g.Population - int(g.EvictFraction*float64(g.Population))
		if survivors < 2 {
			survivors = 2
		}
		pop = pop[:survivors]
		// Selection probabilities over survivors (Eq. 6).
		weights := make([]float64, len(pop))
		for i, s := range pop {
			weights[i] = s.f
		}
		probs := safeProb(weights)
		// Breed offspring to restore the population size (lines 10-12),
		// then evaluate the brood as one batch. The second child of the
		// final pair is still bred (its mutation draws stay in the RNG
		// stream) but dropped unevaluated when the population is full,
		// exactly as the incremental loop did.
		brood := genomes[:0]
		for len(pop)+len(brood) < g.Population {
			pa := pop[pick(probs, rng)].t
			pb := pop[pick(probs, rng)].t
			ca, cb := g.crossover(pa, pb, rng)
			g.mutate(&ca, rng)
			g.mutate(&cb, rng)
			brood = append(brood, ca)
			if len(pop)+len(brood) < g.Population {
				brood = append(brood, cb)
			}
		}
		broodScored, err := scoreAllCtx(ctx, brood, ec, workers)
		if err != nil {
			return Result{Best: best.t.Clone(), Fitness: best.f, Evaluations: ec.calls}, err
		}
		pop = append(pop, broodScored...)
	}
	for _, s := range pop {
		best = betterOf(best, s)
	}
	return Result{Best: best.t.Clone(), Fitness: best.f, Evaluations: ec.calls}, nil
}

// scoreAllCtx evaluates a batch of genomes over the worker pool and pairs
// each with its fitness, in genome order. On cancellation the partial
// scores are dropped.
func scoreAllCtx(ctx context.Context, genomes []window.Thresholds, ec *evalCounter, workers int) ([]scored, error) {
	fs, err := ec.evalAllCtx(ctx, genomes, workers)
	if err != nil {
		return nil, err
	}
	out := make([]scored, len(genomes))
	for i, t := range genomes {
		out[i] = scored{t: t, f: fs[i]}
	}
	return out, nil
}

// crossover swaps the α tails of two parents at a random cut point M in
// (0, N) and draws θ and the tolerance of each child randomly from the two
// parents (§III-D crossover strategy).
func (g GA) crossover(a, b window.Thresholds, rng *mathx.RNG) (window.Thresholds, window.Thresholds) {
	q := len(a.Alpha)
	ca := a.Clone()
	cb := b.Clone()
	if q > 1 {
		cut := 1 + rng.Intn(q-1)
		for i := cut; i < q; i++ {
			ca.Alpha[i], cb.Alpha[i] = cb.Alpha[i], ca.Alpha[i]
		}
	}
	if rng.Bool(0.5) {
		ca.Theta, cb.Theta = cb.Theta, ca.Theta
	}
	if rng.Bool(0.5) {
		ca.MaxTolerance, cb.MaxTolerance = cb.MaxTolerance, ca.MaxTolerance
	}
	return ca, cb
}

// mutate perturbs an individual with probability β: each α_i randomly
// steps ±Δ, and θ and the tolerance are regenerated within their ranges
// (§III-D mutation strategy).
func (g GA) mutate(t *window.Thresholds, rng *mathx.RNG) {
	if !rng.Bool(g.MutationProb) {
		return
	}
	for i := range t.Alpha {
		if rng.Bool(0.5) {
			step := g.Ranges.LearningRate
			if rng.Bool(0.5) {
				step = -step
			}
			t.Alpha[i] = g.Ranges.clampAlpha(t.Alpha[i] + step)
		}
	}
	t.Theta = rng.Range(g.Ranges.ThetaMin, g.Ranges.ThetaMax)
	t.MaxTolerance = g.Ranges.TolMin + rng.Intn(g.Ranges.TolMax-g.Ranges.TolMin+1)
}
