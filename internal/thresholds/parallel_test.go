package thresholds

import (
	"math"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
)

// smoothFitness is a pure, concurrency-safe fitness with enough structure
// for the searchers to climb.
func smoothFitness(t window.Thresholds) float64 {
	f := 0.0
	for _, a := range t.Alpha {
		f += 1 - math.Abs(a-0.6)
	}
	f /= float64(len(t.Alpha))
	f += 0.5 * (1 - math.Abs(t.Theta-0.2))
	f -= 0.05 * float64(t.MaxTolerance)
	return f
}

func resultsEqual(a, b Result) bool {
	if a.Fitness != b.Fitness || a.Evaluations != b.Evaluations {
		return false
	}
	if a.Best.Theta != b.Best.Theta || a.Best.MaxTolerance != b.Best.MaxTolerance {
		return false
	}
	if len(a.Best.Alpha) != len(b.Best.Alpha) {
		return false
	}
	for i := range a.Best.Alpha {
		if a.Best.Alpha[i] != b.Best.Alpha[i] {
			return false
		}
	}
	return true
}

// TestGAParallelMatchesSerial is the searcher-side determinism guarantee:
// genomes are bred serially from the seeded RNG, so parallel fitness
// evaluation must return a bit-identical Result.
func TestGAParallelMatchesSerial(t *testing.T) {
	serial := GA{Seed: 42}.Search(14, smoothFitness)
	for _, workers := range []int{1, 2, 8, AutoWorkers} {
		got := GA{Seed: 42, Workers: workers}.Search(14, smoothFitness)
		if !resultsEqual(serial, got) {
			t.Fatalf("GA workers=%d diverged: %+v vs %+v", workers, got, serial)
		}
	}
}

func TestRandomParallelMatchesSerial(t *testing.T) {
	serial := Random{Seed: 7, Trials: 100}.Search(14, smoothFitness)
	for _, workers := range []int{2, 8, AutoWorkers} {
		got := Random{Seed: 7, Trials: 100, Workers: workers}.Search(14, smoothFitness)
		if !resultsEqual(serial, got) {
			t.Fatalf("Random workers=%d diverged: %+v vs %+v", workers, got, serial)
		}
	}
}

// TestSerialEvalOrderPreserved pins the backstop for order-dependent
// fitness closures: Workers 0 and 1 call the fitness strictly in genome
// order, exactly like the historical incremental searchers.
func TestSerialEvalOrderPreserved(t *testing.T) {
	calls := 0
	counting := func(window.Thresholds) float64 {
		calls++
		return float64(calls)
	}
	res := Random{Seed: 1, Trials: 25}.Search(3, counting)
	if res.Evaluations != 25 || calls != 25 {
		t.Fatalf("evaluations = %d, calls = %d, want 25", res.Evaluations, calls)
	}
	// Later trials score strictly higher under this closure, so the best
	// must be the last trial's fitness — only true if order is preserved.
	if res.Fitness != 25 {
		t.Fatalf("best fitness = %v, want 25 (order-dependent closure)", res.Fitness)
	}
}

// TestParallelDetectorFitnessMatchesSerial: the per-unit fan-out must score
// every genome exactly like the serial walk.
func TestParallelDetectorFitnessMatchesSerial(t *testing.T) {
	var samples []Sample
	for i := 0; i < 3; i++ {
		u, err := cluster.Simulate(cluster.Config{
			Name: "u", Ticks: 300, Seed: uint64(20 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
			Ticks: 300, Databases: 5, TargetRatio: 0.08,
		}, mathx.NewRNG(uint64(30+i)))
		labels, err := anomaly.Inject(u, events, mathx.NewRNG(uint64(40+i)))
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{
			Provider: detect.NewCachedProvider(detect.NewProvider(u.Series, nil, nil)),
			Labels:   labels,
		})
	}
	flex := window.DefaultFlexConfig()
	serial := DetectorFitness(samples, flex)
	parallel := ParallelDetectorFitness(samples, flex, 4)
	rng := mathx.NewRNG(5)
	r := DefaultRanges()
	for i := 0; i < 5; i++ {
		genome := r.random(14, rng)
		s, p := serial(genome), parallel(genome)
		if s != p {
			t.Fatalf("genome %d: serial %v != parallel %v", i, s, p)
		}
	}
}
