package thresholds

import (
	"math"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// quadraticFitness rewards thresholds near a hidden optimum; a clean
// landscape for testing the searchers.
func quadraticFitness(alphaOpt, thetaOpt float64, tolOpt int) Fitness {
	return func(t window.Thresholds) float64 {
		score := 1.0
		for _, a := range t.Alpha {
			score -= (a - alphaOpt) * (a - alphaOpt)
		}
		score -= 2 * (t.Theta - thetaOpt) * (t.Theta - thetaOpt)
		d := float64(t.MaxTolerance - tolOpt)
		score -= 0.01 * d * d
		if score < 0 {
			score = 0
		}
		return score
	}
}

func TestDefaultRangesMatchPaper(t *testing.T) {
	r := PaperRanges()
	if r.AlphaMin != 0.6 || r.AlphaMax != 0.8 {
		t.Errorf("paper alpha range [%v, %v], want [0.6, 0.8]", r.AlphaMin, r.AlphaMax)
	}
	if d := DefaultRanges(); d.AlphaMin != 0.45 || d.AlphaMax != 0.8 {
		t.Errorf("default alpha range [%v, %v], want [0.45, 0.8]", d.AlphaMin, d.AlphaMax)
	}
	if r.ThetaMin != 0.1 || r.ThetaMax != 0.3 {
		t.Errorf("theta range [%v, %v], want [0.1, 0.3]", r.ThetaMin, r.ThetaMax)
	}
	if r.TolMin != 0 || r.TolMax != 3 {
		t.Errorf("tolerance range [%d, %d], want [0, 3]", r.TolMin, r.TolMax)
	}
	if r.LearningRate != 0.1 {
		t.Errorf("learning rate %v, want 0.1", r.LearningRate)
	}
}

func TestRandomGenomeWithinRanges(t *testing.T) {
	r := DefaultRanges()
	rng := mathx.NewRNG(1)
	for i := 0; i < 200; i++ {
		g := r.random(5, rng)
		for _, a := range g.Alpha {
			if a < r.AlphaMin || a >= r.AlphaMax {
				t.Fatalf("alpha %v out of range", a)
			}
		}
		if g.Theta < r.ThetaMin || g.Theta >= r.ThetaMax {
			t.Fatalf("theta %v out of range", g.Theta)
		}
		if g.MaxTolerance < 0 || g.MaxTolerance > 3 {
			t.Fatalf("tolerance %d out of range", g.MaxTolerance)
		}
	}
}

func TestSearchersFindQuadraticOptimum(t *testing.T) {
	fitness := quadraticFitness(0.7, 0.2, 2)
	searchers := []Searcher{
		GA{Seed: 1, Generations: 25, Population: 24},
		SAA{Seed: 1, Steps: 500},
		Random{Seed: 1, Trials: 500},
	}
	for _, s := range searchers {
		res := s.Search(4, fitness)
		if res.Fitness < 0.95 {
			t.Errorf("%s reached fitness %v, want >= 0.95", s.Name(), res.Fitness)
		}
		if res.Evaluations == 0 {
			t.Errorf("%s reported no evaluations", s.Name())
		}
		for _, a := range res.Best.Alpha {
			if math.Abs(a-0.7) > 0.12 {
				t.Errorf("%s alpha %v far from optimum 0.7", s.Name(), a)
			}
		}
	}
}

func TestGADeterministicGivenSeed(t *testing.T) {
	fitness := quadraticFitness(0.7, 0.2, 2)
	a := GA{Seed: 7}.Search(3, fitness)
	b := GA{Seed: 7}.Search(3, fitness)
	if a.Fitness != b.Fitness {
		t.Fatal("GA not deterministic")
	}
	for i := range a.Best.Alpha {
		if a.Best.Alpha[i] != b.Best.Alpha[i] {
			t.Fatal("GA genomes differ between identical seeds")
		}
	}
}

func TestGAKeepsHistoricalBest(t *testing.T) {
	// A fitness that rewards exactly one rare genome: once seen, the GA
	// must never lose it.
	callCount := 0
	fitness := func(th window.Thresholds) float64 {
		callCount++
		if callCount == 5 {
			return 0.99 // the 5th evaluated genome is a one-off jackpot
		}
		return 0.1
	}
	res := GA{Seed: 3, Population: 10, Generations: 5}.Search(3, fitness)
	if res.Fitness != 0.99 {
		t.Fatalf("GA lost the historical best: %v", res.Fitness)
	}
}

func TestGACrossoverSwapsTails(t *testing.T) {
	g := GA{}.withDefaults()
	rng := mathx.NewRNG(5)
	a := window.Thresholds{Alpha: []float64{1, 1, 1, 1}, Theta: 0.1, MaxTolerance: 0}
	b := window.Thresholds{Alpha: []float64{2, 2, 2, 2}, Theta: 0.3, MaxTolerance: 3}
	ca, cb := g.crossover(a, b, rng)
	// Each child's alpha vector must be a prefix of one parent and a
	// suffix of the other.
	onesThenTwos := 0
	for _, v := range ca.Alpha {
		if v == 2 {
			onesThenTwos++
		}
	}
	if onesThenTwos == 0 || onesThenTwos == 4 {
		t.Fatalf("crossover produced no mix: %v", ca.Alpha)
	}
	// Parents unchanged.
	if a.Alpha[3] != 1 || b.Alpha[3] != 2 {
		t.Fatal("crossover mutated parents")
	}
	_ = cb
}

func TestMutationRespectsBounds(t *testing.T) {
	g := GA{MutationProb: 1}.withDefaults()
	g.MutationProb = 1
	rng := mathx.NewRNG(6)
	for i := 0; i < 200; i++ {
		th := g.Ranges.random(4, rng)
		g.mutate(&th, rng)
		for _, a := range th.Alpha {
			if a < 0 || a > 1 {
				t.Fatalf("mutated alpha %v outside [0,1]", a)
			}
		}
		if th.Theta < g.Ranges.ThetaMin || th.Theta >= g.Ranges.ThetaMax {
			t.Fatalf("mutated theta %v out of range", th.Theta)
		}
		if th.MaxTolerance < 0 || th.MaxTolerance > 3 {
			t.Fatalf("mutated tolerance %d out of range", th.MaxTolerance)
		}
	}
}

func TestSAAAcceptance(t *testing.T) {
	rng := mathx.NewRNG(7)
	// Better candidates always accepted.
	if !accept(0.5, 0.6, 0.1, rng) {
		t.Fatal("better candidate rejected")
	}
	// Much worse candidate at zero temperature: rejected.
	if accept(0.9, 0.1, 0, rng) {
		t.Fatal("worse candidate accepted at zero temperature")
	}
	// At high temperature, worse candidates are sometimes accepted.
	accepts := 0
	for i := 0; i < 1000; i++ {
		if accept(0.6, 0.55, 0.5, rng) {
			accepts++
		}
	}
	if accepts == 0 || accepts == 1000 {
		t.Fatalf("high-temp acceptance should be probabilistic, got %d/1000", accepts)
	}
}

func TestSafeProb(t *testing.T) {
	p := safeProb([]float64{1, 3})
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Fatalf("probs = %v", p)
	}
	// All-zero fitness falls back to uniform.
	p = safeProb([]float64{0, 0, 0, 0})
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("uniform fallback = %v", p)
		}
	}
}

func TestDetectorFitnessImprovesOverBadThresholds(t *testing.T) {
	// Build a small labelled unit, then verify that (a) fitness is
	// computable, (b) the GA finds thresholds at least as good as an
	// intentionally terrible genome.
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 600, Seed: 9, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
		Ticks: 600, Databases: 5, TargetRatio: 0.06,
	}, mathx.NewRNG(10))
	labels, err := anomaly.Inject(u, events, mathx.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	provider := detect.NewCachedProvider(detect.NewProvider(u.Series, nil, nil))
	fitness := DetectorFitness([]Sample{{Provider: provider, Labels: labels}}, window.DefaultFlexConfig())

	// A terrible genome: alpha = 1 makes everything level-1 (all windows
	// abnormal -> precision collapses).
	bad := window.Thresholds{Alpha: make([]float64, 14), Theta: 0.0, MaxTolerance: 0}
	for i := range bad.Alpha {
		bad.Alpha[i] = 1.0
	}
	badF := fitness(bad)

	res := GA{Seed: 12, Population: 10, Generations: 5}.Search(14, fitness)
	if res.Fitness <= badF {
		t.Fatalf("GA fitness %v should beat degenerate %v", res.Fitness, badF)
	}
	if res.Fitness <= 0.3 {
		t.Fatalf("GA fitness %v suspiciously low", res.Fitness)
	}
	// The matrix cache must actually be hit across evaluations.
	if provider.Hits == 0 {
		t.Fatal("cached provider never hit")
	}
}

func TestDetectorFitnessInvalidGenome(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{Name: "u", Ticks: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	labels := anomaly.NewLabels(100)
	fitness := DetectorFitness([]Sample{{
		Provider: detect.NewProvider(u.Series, nil, nil),
		Labels:   labels,
	}}, window.DefaultFlexConfig())
	// Wrong alpha count -> invalid genome -> fitness 0, no panic.
	if got := fitness(window.Thresholds{Alpha: []float64{0.5}}); got != 0 {
		t.Fatalf("invalid genome fitness = %v, want 0", got)
	}
}
