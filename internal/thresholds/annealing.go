package thresholds

import (
	"context"
	"math"

	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
)

// SAA is the simulated annealing baseline of Fig. 11: a single genome
// walks the threshold space, accepting worse neighbours with a
// temperature-controlled probability. The walk is inherently sequential —
// each candidate depends on the previous acceptance — so SAA has no
// evaluation pool of its own; parallelize inside the fitness function
// instead (ParallelDetectorFitness fans one evaluation out across its
// labelled units).
type SAA struct {
	// Steps is the number of annealing steps (default 300).
	Steps int
	// InitialTemp and FinalTemp bound the geometric cooling schedule
	// (defaults 0.2 and 0.005, in fitness units).
	InitialTemp, FinalTemp float64
	// Ranges bounds the genome; zero value means DefaultRanges.
	Ranges Ranges
	// Seed drives the search's randomness.
	Seed uint64
}

func (s SAA) withDefaults() SAA {
	if s.Steps == 0 {
		s.Steps = 300
	}
	if s.InitialTemp == 0 {
		s.InitialTemp = 0.2
	}
	if s.FinalTemp == 0 {
		s.FinalTemp = 0.005
	}
	if s.Ranges == (Ranges{}) {
		s.Ranges = DefaultRanges()
	}
	return s
}

// Name implements Searcher.
func (SAA) Name() string { return "SAA" }

// Search implements Searcher.
func (s SAA) Search(q int, fitness Fitness) Result {
	res, _ := s.SearchContext(context.Background(), q, fitness)
	return res
}

// SearchContext implements ContextSearcher: the annealing walk checks ctx
// before every step and returns the best candidate found so far on
// cancellation.
func (s SAA) SearchContext(ctx context.Context, q int, fitness Fitness) (Result, error) {
	s = s.withDefaults()
	rng := mathx.NewRNG(s.Seed)
	ec := &evalCounter{fn: fitness}

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cur := s.Ranges.random(q, rng)
	curF := ec.eval(cur)
	best := scored{t: cur.Clone(), f: curF}

	cooling := math.Pow(s.FinalTemp/s.InitialTemp, 1/float64(s.Steps))
	temp := s.InitialTemp
	for step := 0; step < s.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return Result{Best: best.t.Clone(), Fitness: best.f, Evaluations: ec.calls}, err
		}
		cand := s.neighbour(cur, rng)
		candF := ec.eval(cand)
		if accept(curF, candF, temp, rng) {
			cur, curF = cand, candF
			best = betterOf(best, scored{t: cand, f: candF})
		}
		temp *= cooling
	}
	return Result{Best: best.t.Clone(), Fitness: best.f, Evaluations: ec.calls}, nil
}

// neighbour perturbs one random gene.
func (s SAA) neighbour(t window.Thresholds, rng *mathx.RNG) window.Thresholds {
	out := t.Clone()
	switch rng.Intn(3) {
	case 0: // step one alpha
		i := rng.Intn(len(out.Alpha))
		step := s.Ranges.LearningRate * rng.Range(0.25, 1)
		if rng.Bool(0.5) {
			step = -step
		}
		out.Alpha[i] = s.Ranges.clampAlpha(out.Alpha[i] + step)
	case 1: // jitter theta
		out.Theta = mathx.Clamp(out.Theta+rng.Range(-0.05, 0.05), s.Ranges.ThetaMin, s.Ranges.ThetaMax)
	default: // bump tolerance
		delta := 1
		if rng.Bool(0.5) {
			delta = -1
		}
		tol := out.MaxTolerance + delta
		if tol < s.Ranges.TolMin {
			tol = s.Ranges.TolMin
		}
		if tol > s.Ranges.TolMax {
			tol = s.Ranges.TolMax
		}
		out.MaxTolerance = tol
	}
	return out
}

// accept applies the Metropolis criterion.
func accept(curF, candF, temp float64, rng *mathx.RNG) bool {
	if candF >= curF {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Bool(math.Exp((candF - curF) / temp))
}

// Random is the random search baseline of Fig. 11 (also the protocol every
// compared method uses for threshold selection in §IV-B).
type Random struct {
	// Trials is the number of random genomes evaluated (default 300).
	Trials int
	// Ranges bounds the genome; zero value means DefaultRanges.
	Ranges Ranges
	// Seed drives the search's randomness.
	Seed uint64
	// Workers bounds the fitness-evaluation pool: 0 and 1 evaluate
	// serially (the historical behaviour), AutoWorkers uses GOMAXPROCS,
	// > 1 is taken literally. Parallel evaluation requires a
	// concurrency-safe fitness; trial genomes are drawn serially from the
	// seeded RNG, so the Result is identical at any worker count.
	Workers int
}

func (r Random) withDefaults() Random {
	if r.Trials == 0 {
		r.Trials = 300
	}
	if r.Ranges == (Ranges{}) {
		r.Ranges = DefaultRanges()
	}
	return r
}

// Name implements Searcher.
func (Random) Name() string { return "Random" }

// Search implements Searcher.
func (r Random) Search(q int, fitness Fitness) Result {
	res, _ := r.SearchContext(context.Background(), q, fitness)
	return res
}

// SearchContext implements ContextSearcher: cancellation is observed
// between trial evaluations; completed trials still compete for the
// returned best.
func (r Random) SearchContext(ctx context.Context, q int, fitness Fitness) (Result, error) {
	r = r.withDefaults()
	rng := mathx.NewRNG(r.Seed)
	ec := &evalCounter{fn: fitness}
	trials := make([]window.Thresholds, r.Trials)
	for i := range trials {
		trials[i] = r.Ranges.random(q, rng)
	}
	fs, err := ec.evalAllCtx(ctx, trials, resolveSearchWorkers(r.Workers))
	if err != nil {
		return Result{Evaluations: ec.calls}, err
	}
	var best scored
	best.f = math.Inf(-1)
	// Reduce in trial order so ties resolve to the earliest trial, exactly
	// as the incremental loop did.
	for i, t := range trials {
		best = betterOf(best, scored{t: t, f: fs[i]})
	}
	return Result{Best: best.t.Clone(), Fitness: best.f, Evaluations: ec.calls}, nil
}
