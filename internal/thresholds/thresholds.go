// Package thresholds implements DBCatcher's adaptive threshold learning
// policy (§III-D): a genetic algorithm (Algorithm 2) over the judgment
// parameters (α_1..α_Q, θ, max tolerance), plus the simulated annealing and
// random search baselines it is compared against in Fig. 11.
//
// A candidate's fitness is its detection performance (F-Measure) over the
// most recent period of DBA-labelled judgment records; DetectorFitness
// builds such a function from labelled units with memoized correlation
// matrices, so that re-evaluating a genome only repeats the cheap
// level-mapping, never the correlation measurement.
package thresholds

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"dbcatcher/internal/fleet"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
)

// Fitness scores a candidate threshold set; higher is better. DBCatcher
// uses the F-Measure on recent labelled judgment records.
type Fitness func(window.Thresholds) float64

// Ranges bounds the searched genome, using the paper's initialization
// ranges by default.
type Ranges struct {
	AlphaMin, AlphaMax float64 // correlation thresholds α_i
	ThetaMin, ThetaMax float64 // tolerance threshold θ
	TolMin, TolMax     int     // maximum tolerance deviation number
	// LearningRate is the mutation step Δ for α_i (paper: 0.1).
	LearningRate float64
}

// DefaultRanges returns the search ranges. The paper initializes α_i in
// [0.6, 0.8] for its production score distribution; the simulator's
// fluctuation regime sits lower on the score scale, so the default α
// floor here is 0.45 — mutation can still walk below it by up to 2Δ. θ,
// tolerance, and Δ match §III-D exactly ([0.1, 0.3], [0, 3], 0.1).
func DefaultRanges() Ranges {
	return Ranges{
		AlphaMin: 0.45, AlphaMax: 0.8,
		ThetaMin: 0.1, ThetaMax: 0.3,
		TolMin: 0, TolMax: 3,
		LearningRate: 0.1,
	}
}

// PaperRanges returns the exact §III-D initialization ranges (α_i in
// [0.6, 0.8]).
func PaperRanges() Ranges {
	r := DefaultRanges()
	r.AlphaMin = 0.6
	return r
}

// random draws a uniform genome within the ranges.
func (r Ranges) random(q int, rng *mathx.RNG) window.Thresholds {
	t := window.Thresholds{Alpha: make([]float64, q)}
	for i := range t.Alpha {
		t.Alpha[i] = rng.Range(r.AlphaMin, r.AlphaMax)
	}
	t.Theta = rng.Range(r.ThetaMin, r.ThetaMax)
	t.MaxTolerance = r.TolMin + rng.Intn(r.TolMax-r.TolMin+1)
	return t
}

// clampAlpha keeps a mutated α within a loosened band around the
// initialization range so mutation can explore past the initial bounds
// without leaving the meaningful correlation-score domain.
func (r Ranges) clampAlpha(a float64) float64 {
	lo := r.AlphaMin - 2*r.LearningRate
	hi := r.AlphaMax + 2*r.LearningRate
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return mathx.Clamp(a, lo, hi)
}

// Result is the outcome of a threshold search.
type Result struct {
	Best    window.Thresholds
	Fitness float64
	// Evaluations counts fitness calls, the dominant cost.
	Evaluations int
}

// Searcher is the common interface of the three policies compared in
// Fig. 11.
type Searcher interface {
	// Search optimizes thresholds for q KPIs under the given fitness.
	Search(q int, fitness Fitness) Result
	// Name labels the policy in experiment tables.
	Name() string
}

// ContextSearcher is a Searcher whose search is cancellable: the online
// relearning supervisor runs searches under a hard deadline, so a runaway
// search must be stoppable. GA, SAA, and Random all implement it.
type ContextSearcher interface {
	Searcher
	// SearchContext is Search honoring ctx: cancellation is observed
	// between fitness evaluations (a single evaluation is never
	// interrupted). With a never-done ctx the Result is identical to
	// Search's. On cancellation it returns the best candidate found so
	// far together with ctx's error; callers enforcing a validity
	// guarantee must discard the Result whenever the error is non-nil
	// (an early cancellation can surface a zero-value genome).
	SearchContext(ctx context.Context, q int, fitness Fitness) (Result, error)
}

// Contains reports whether t lies inside the searchable domain the ranges
// describe: every α within the mutation-reachable band (the initialization
// range loosened by 2Δ and clipped to [0, 1]), θ within [ThetaMin,
// ThetaMax], and the tolerance within [TolMin, TolMax]. Non-finite values
// are rejected. The live API uses this to refuse operator-supplied
// thresholds the search itself could never produce.
func (r Ranges) Contains(t window.Thresholds) error {
	lo := r.AlphaMin - 2*r.LearningRate
	if lo < 0 {
		lo = 0
	}
	hi := r.AlphaMax + 2*r.LearningRate
	if hi > 1 {
		hi = 1
	}
	for i, a := range t.Alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("thresholds: alpha[%d] is not finite", i)
		}
		if a < lo || a > hi {
			return fmt.Errorf("thresholds: alpha[%d]=%v outside [%v, %v]", i, a, lo, hi)
		}
	}
	if math.IsNaN(t.Theta) || math.IsInf(t.Theta, 0) {
		return fmt.Errorf("thresholds: theta is not finite")
	}
	if t.Theta < r.ThetaMin || t.Theta > r.ThetaMax {
		return fmt.Errorf("thresholds: theta=%v outside [%v, %v]", t.Theta, r.ThetaMin, r.ThetaMax)
	}
	if t.MaxTolerance < r.TolMin || t.MaxTolerance > r.TolMax {
		return fmt.Errorf("thresholds: tolerance %d outside [%d, %d]", t.MaxTolerance, r.TolMin, r.TolMax)
	}
	return nil
}

// scored pairs a genome with its fitness.
type scored struct {
	t window.Thresholds
	f float64
}

// AutoWorkers, assigned to a searcher's Workers knob, sizes its evaluation
// pool to GOMAXPROCS.
const AutoWorkers = -1

// resolveSearchWorkers maps a searcher's Workers knob to a pool size.
// Unlike the detection-side knobs, 0 stays serial here: a fitness function
// is allowed to be order-dependent or stateful unless the caller opts into
// parallel evaluation (negative = GOMAXPROCS, > 1 = that many workers).
func resolveSearchWorkers(w int) int {
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// evalCounter wraps a fitness function to count calls.
type evalCounter struct {
	fn    Fitness
	calls int
}

func (e *evalCounter) eval(t window.Thresholds) float64 {
	e.calls++
	return e.fn(t)
}

// evalAll scores a batch of genomes, fanning out over a worker pool when
// workers > 1 (the fitness function must then be safe for concurrent use).
// Results land in genome order, and with workers <= 1 the fitness is called
// strictly in genome order, matching the historical serial searchers.
func (e *evalCounter) evalAll(genomes []window.Thresholds, workers int) []float64 {
	out, _ := e.evalAllCtx(context.Background(), genomes, workers)
	return out
}

// evalAllCtx is evalAll honoring cancellation: ctx is checked before every
// evaluation (a fitness call in flight is never interrupted). On a nil
// error the scores are complete and identical to evalAll's at any worker
// count; on a non-nil error they are partial and must be discarded.
func (e *evalCounter) evalAllCtx(ctx context.Context, genomes []window.Thresholds, workers int) ([]float64, error) {
	out := make([]float64, len(genomes))
	if workers <= 1 {
		for i, t := range genomes {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = e.fn(t)
			e.calls++
		}
		return out, nil
	}
	var evaluated atomic.Int64
	err := fleet.Each(len(genomes), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		out[i] = e.fn(genomes[i])
		evaluated.Add(1)
		return nil
	})
	e.calls += int(evaluated.Load())
	return out, err
}

// betterOf returns the higher-fitness candidate, preferring a over ties.
func betterOf(a, b scored) scored {
	if b.f > a.f {
		return b
	}
	return a
}

// safeProb normalizes possibly all-zero fitness masses into selection
// probabilities (Eq. 6); a uniform fallback avoids division by zero.
func safeProb(weights []float64) []float64 {
	total := 0.0
	for _, w := range weights {
		if w > 0 && !math.IsNaN(w) {
			total += w
		}
	}
	out := make([]float64, len(weights))
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(weights))
		}
		return out
	}
	for i, w := range weights {
		if w > 0 && !math.IsNaN(w) {
			out[i] = w / total
		}
	}
	return out
}

// pick samples an index from the probability vector.
func pick(probs []float64, rng *mathx.RNG) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}
