package window

import (
	"testing"
	"testing/quick"
)

func TestScoreToLevel(t *testing.T) {
	const alpha, theta = 0.7, 0.2
	cases := []struct {
		score float64
		want  Level
	}{
		{0.9, Level3},
		{0.7, Level3}, // boundary: >= alpha
		{0.69, Level2},
		{0.5, Level2}, // boundary: >= alpha-theta
		{0.49, Level1},
		{0.0, Level1},
		{-1, Level1},
	}
	for _, c := range cases {
		if got := ScoreToLevel(c.score, alpha, theta); got != c.want {
			t.Errorf("ScoreToLevel(%v) = %v, want %v", c.score, got, c.want)
		}
	}
}

func TestKPILevelUsesBestPeer(t *testing.T) {
	const alpha, theta = 0.7, 0.2
	// One peer deviated but another is fine: this database is healthy.
	if got := KPILevel([]float64{0.1, 0.95}, alpha, theta); got != Level3 {
		t.Fatalf("best-peer level = %v, want level-3", got)
	}
	// All peers low: this database deviates.
	if got := KPILevel([]float64{0.1, 0.2, 0.3}, alpha, theta); got != Level1 {
		t.Fatalf("all-low level = %v, want level-1", got)
	}
	if got := KPILevel([]float64{0.55, 0.6}, alpha, theta); got != Level2 {
		t.Fatalf("slight deviation = %v, want level-2", got)
	}
	if got := KPILevel(nil, alpha, theta); got != Level3 {
		t.Fatalf("no peers = %v, want level-3", got)
	}
}

func TestDetermineState(t *testing.T) {
	l3 := func(n int) []Level {
		out := make([]Level, n)
		for i := range out {
			out[i] = Level3
		}
		return out
	}
	// All correlated -> healthy.
	if got := DetermineState(l3(14), 2); got != Healthy {
		t.Fatalf("all level-3 = %v", got)
	}
	// Any level-1 -> abnormal.
	ls := l3(14)
	ls[5] = Level1
	if got := DetermineState(ls, 2); got != Abnormal {
		t.Fatalf("level-1 present = %v", got)
	}
	// Level-2 within tolerance -> observable.
	ls = l3(14)
	ls[0], ls[1] = Level2, Level2
	if got := DetermineState(ls, 2); got != Observable {
		t.Fatalf("2x level-2, tol 2 = %v", got)
	}
	// Level-2 beyond tolerance -> abnormal.
	ls[2] = Level2
	if got := DetermineState(ls, 2); got != Abnormal {
		t.Fatalf("3x level-2, tol 2 = %v", got)
	}
	// Zero tolerance: a single level-2 is already abnormal.
	ls = l3(14)
	ls[0] = Level2
	if got := DetermineState(ls, 0); got != Abnormal {
		t.Fatalf("1x level-2, tol 0 = %v", got)
	}
}

func TestThresholds(t *testing.T) {
	th := DefaultThresholds(14)
	if len(th.Alpha) != 14 || th.Theta != 0.25 || th.MaxTolerance != 2 {
		t.Fatalf("defaults = %+v", th)
	}
	if th.Alpha[0] < 0.6 || th.Alpha[0] > 0.8 {
		t.Fatalf("default alpha %v outside paper's initial range", th.Alpha[0])
	}
	if err := th.Validate(14); err != nil {
		t.Fatal(err)
	}
	if err := th.Validate(10); err == nil {
		t.Fatal("wrong KPI count should fail validation")
	}
	bad := th.Clone()
	bad.Theta = -1
	if err := bad.Validate(14); err == nil {
		t.Fatal("negative theta should fail")
	}
	bad = th.Clone()
	bad.MaxTolerance = -1
	if err := bad.Validate(14); err == nil {
		t.Fatal("negative tolerance should fail")
	}
	c := th.Clone()
	c.Alpha[0] = 0.99
	if th.Alpha[0] == 0.99 {
		t.Fatal("Clone shares alpha storage")
	}
}

func TestLevelAndStateStrings(t *testing.T) {
	if Level1.String() != "level-1" || Level3.String() != "level-3" {
		t.Fatal("level names")
	}
	if Healthy.String() != "healthy" || Observable.String() != "observable" || Abnormal.String() != "abnormal" {
		t.Fatal("state names")
	}
}

func TestFlexExpansion(t *testing.T) {
	f, err := NewFlex(FlexConfig{Initial: 20, Max: 60, ExhaustState: Abnormal})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 20 {
		t.Fatalf("initial size %d", f.Size())
	}
	// Observable expands W -> W+Δ with Δ defaulting to W.
	if _, done := f.Resolve(Observable); done {
		t.Fatal("first observable should expand")
	}
	if f.Size() != 40 {
		t.Fatalf("size after expand = %d, want 40", f.Size())
	}
	if _, done := f.Resolve(Observable); done {
		t.Fatal("second observable should expand to max")
	}
	if f.Size() != 60 {
		t.Fatalf("size = %d, want 60", f.Size())
	}
	// Exhausted: terminal state.
	final, done := f.Resolve(Observable)
	if !done || final != Abnormal {
		t.Fatalf("exhaustion = %v done=%v", final, done)
	}
	f.Reset()
	if f.Size() != 20 {
		t.Fatal("Reset failed")
	}
}

func TestFlexImmediateVerdicts(t *testing.T) {
	f, _ := NewFlex(DefaultFlexConfig())
	if final, done := f.Resolve(Healthy); !done || final != Healthy {
		t.Fatal("healthy should end the round")
	}
	if final, done := f.Resolve(Abnormal); !done || final != Abnormal {
		t.Fatal("abnormal should end the round")
	}
}

func TestFlexDisabled(t *testing.T) {
	f, err := NewFlex(FlexConfig{Initial: 20, Max: 60, Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	final, done := f.Resolve(Observable)
	if !done || final != Healthy {
		t.Fatalf("disabled flex on observable = %v done=%v, want healthy/true", final, done)
	}
	if f.Size() != 20 {
		t.Fatal("disabled flex must not expand")
	}
}

func TestFlexConfigValidate(t *testing.T) {
	bad := []FlexConfig{
		{Initial: 1, Max: 60},
		{Initial: 20, Max: 10},
		{Initial: 20, Max: 60, Delta: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := DefaultFlexConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlexCustomDelta(t *testing.T) {
	f, _ := NewFlex(FlexConfig{Initial: 15, Delta: 10, Max: 45})
	f.Resolve(Observable)
	if f.Size() != 25 {
		t.Fatalf("size = %d, want 25", f.Size())
	}
}

// Property: worsening any single KPI level never makes the state less
// severe (healthy < observable < abnormal under the Fig. 7 ordering).
func TestDetermineStateMonotoneProperty(t *testing.T) {
	severity := func(s State) int {
		switch s {
		case Healthy:
			return 0
		case Observable:
			return 1
		default:
			return 2
		}
	}
	f := func(raw []uint8, tol uint8) bool {
		if len(raw) == 0 {
			return true
		}
		levels := make([]Level, len(raw))
		for i, r := range raw {
			levels[i] = Level(int(r%3) + 1)
		}
		tolerance := int(tol % 4)
		base := DetermineState(levels, tolerance)
		for i := range levels {
			if levels[i] == Level1 {
				continue
			}
			worse := append([]Level(nil), levels...)
			worse[i]-- // Level3 -> Level2 or Level2 -> Level1
			if severity(DetermineState(worse, tolerance)) < severity(base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ScoreToLevel is monotone in the score.
func TestScoreToLevelMonotoneProperty(t *testing.T) {
	f := func(a, b float64, alphaRaw, thetaRaw uint8) bool {
		alpha := 0.4 + float64(alphaRaw%40)/100
		theta := float64(thetaRaw%30) / 100
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return ScoreToLevel(lo, alpha, theta) <= ScoreToLevel(hi, alpha, theta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlexConfigMaxWindow(t *testing.T) {
	cases := []struct {
		cfg  FlexConfig
		want int
	}{
		{DefaultFlexConfig(), 60},                          // 20 + 2*20
		{FlexConfig{Initial: 15, Max: 75}, 75},             // delta defaults to 15
		{FlexConfig{Initial: 20, Delta: 15, Max: 60}, 50},  // 20,35,50; 65 > 60
		{FlexConfig{Initial: 25, Delta: 25, Max: 45}, 25},  // first expansion overshoots
		{FlexConfig{Initial: 20, Max: 20}, 20},             // no headroom
		{FlexConfig{Initial: 20, Max: 60, Disabled: true}, 20},
	}
	for _, tc := range cases {
		if got := tc.cfg.MaxWindow(); got != tc.want {
			t.Errorf("MaxWindow(%+v) = %d, want %d", tc.cfg, got, tc.want)
		}
	}
	// MaxWindow must agree with what Flex actually reaches.
	for _, tc := range cases {
		if tc.cfg.Validate() != nil {
			continue
		}
		f, err := NewFlex(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := f.Size()
		for {
			_, done := f.Resolve(Observable)
			if done {
				break
			}
			last = f.Size()
		}
		if last != tc.cfg.MaxWindow() {
			t.Errorf("%+v: flex reached %d, MaxWindow says %d", tc.cfg, last, tc.cfg.MaxWindow())
		}
	}
}
