// Package window implements DBCatcher's flexible time window observation
// mechanism (§III-C): the correlation-level mapping of Algorithm 1, the
// database state determination of Fig. 7, and the window expansion policy
// W -> W+Δ bounded by W_M.
package window

import "fmt"

// Level is the correlation level of Algorithm 1.
type Level int

const (
	// Level1 means extreme deviation (score below α-θ).
	Level1 Level = iota + 1
	// Level2 means slight deviation (score in [α-θ, α)).
	Level2
	// Level3 means correlated (score >= α).
	Level3
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Level1:
		return "level-1"
	case Level2:
		return "level-2"
	case Level3:
		return "level-3"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// State is a database state in the Fig. 7 flow chart.
type State int

const (
	// Healthy: all KPIs correlate with peers.
	Healthy State = iota
	// Observable: slight deviations within tolerance; the window expands
	// and judgment is retried. This is a transitional state only.
	Observable
	// Abnormal: at least one KPI deviates extremely, or slight deviations
	// exceed the tolerance.
	Abnormal
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Observable:
		return "observable"
	case Abnormal:
		return "abnormal"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Thresholds is the judgment parameter set learned by the adaptive
// threshold policy: per-KPI correlation thresholds α_i, the tolerance
// threshold θ, and the maximum tolerance deviation number.
type Thresholds struct {
	// Alpha holds one correlation threshold per KPI (the paper
	// initializes each in [0.6, 0.8]).
	Alpha []float64
	// Theta is the tolerance threshold θ in [0.1, 0.3].
	Theta float64
	// MaxTolerance is the maximum tolerated number of level-2 KPIs
	// (paper range [0, 3]).
	MaxTolerance int
}

// DefaultThresholds returns starting thresholds for q KPIs within the
// paper's initial ranges (α_i in [0.6, 0.8], θ in [0.1, 0.3], tolerance in
// [0, 3]): α=0.65, θ=0.25, tolerance 2. The adaptive threshold policy
// refines these from judgment records.
func DefaultThresholds(q int) Thresholds {
	alpha := make([]float64, q)
	for i := range alpha {
		alpha[i] = 0.65
	}
	return Thresholds{Alpha: alpha, Theta: 0.25, MaxTolerance: 2}
}

// Clone deep-copies the thresholds.
func (t Thresholds) Clone() Thresholds {
	out := t
	out.Alpha = append([]float64(nil), t.Alpha...)
	return out
}

// Validate checks structural sanity for q KPIs.
func (t Thresholds) Validate(q int) error {
	if len(t.Alpha) != q {
		return fmt.Errorf("window: %d alpha thresholds for %d KPIs", len(t.Alpha), q)
	}
	if t.Theta < 0 {
		return fmt.Errorf("window: negative theta %v", t.Theta)
	}
	if t.MaxTolerance < 0 {
		return fmt.Errorf("window: negative tolerance %d", t.MaxTolerance)
	}
	return nil
}

// ScoreToLevel maps one correlation score to a level given α and θ.
//
// The paper's prose overlaps its three brackets; the consistent reading
// (level-2 sits *between* extreme deviation and correlation) is:
//
//	score <  α-θ        -> level-1 (extreme deviation)
//	α-θ <= score < α    -> level-2 (slight deviation)
//	score >= α          -> level-3 (correlated)
func ScoreToLevel(score, alpha, theta float64) Level {
	switch {
	case score >= alpha:
		return Level3
	case score >= alpha-theta:
		return Level2
	default:
		return Level1
	}
}

// KPILevel aggregates one database's correlation scores against all peers
// (the KCDS list of Algorithm 1) into a single level for one KPI. The
// aggregate uses the database's best peer score: when this database is the
// one deviating, every peer score collapses, so even the maximum is low;
// when some *other* database deviates, this database still correlates with
// the remaining peers and the maximum stays high. This isolates the single
// abnormal database (§II-C).
func KPILevel(scores []float64, alpha, theta float64) Level {
	if len(scores) == 0 {
		return Level3
	}
	best := scores[0]
	for _, s := range scores[1:] {
		if s > best {
			best = s
		}
	}
	return ScoreToLevel(best, alpha, theta)
}

// DetermineState implements the Fig. 7 decision: any level-1 KPI makes the
// database abnormal; level-2 KPIs within tolerance make it observable;
// more level-2 KPIs than the tolerance make it abnormal; all level-3 is
// healthy.
func DetermineState(levels []Level, maxTolerance int) State {
	level2 := 0
	for _, l := range levels {
		switch l {
		case Level1:
			return Abnormal
		case Level2:
			level2++
		}
	}
	switch {
	case level2 == 0:
		return Healthy
	case level2 <= maxTolerance:
		return Observable
	default:
		return Abnormal
	}
}
