package window

import "fmt"

// FlexConfig parameterizes the flexible time window (§III-C): the initial
// size W (paper range 15-25 points), the expansion step Δ (generally equal
// to W), and the maximum size W_M (paper range 45-75).
type FlexConfig struct {
	Initial int // W
	Delta   int // Δ; 0 means Initial
	Max     int // W_M
	// ExhaustState is the verdict when the window reaches Max while still
	// observable. A deviation that persists across the maximum window is
	// no longer a temporal fluctuation, so the default is Abnormal.
	ExhaustState State
	// Disabled turns expansion off (the MM-KCD ablation of Table X): an
	// Observable verdict resolves immediately to Healthy within the
	// initial window.
	Disabled bool
}

// DefaultFlexConfig returns the paper's mid-range setting: W=20, Δ=W,
// W_M=60.
func DefaultFlexConfig() FlexConfig {
	return FlexConfig{Initial: 20, Max: 60, ExhaustState: Abnormal}
}

// Validate checks the configuration.
func (c FlexConfig) Validate() error {
	if c.Initial <= 1 {
		return fmt.Errorf("window: initial size %d too small", c.Initial)
	}
	if c.Max < c.Initial {
		return fmt.Errorf("window: max %d below initial %d", c.Max, c.Initial)
	}
	if c.Delta < 0 {
		return fmt.Errorf("window: negative delta %d", c.Delta)
	}
	return nil
}

func (c FlexConfig) delta() int {
	if c.Delta == 0 {
		return c.Initial
	}
	return c.Delta
}

// MaxWindow returns the largest window size a judgment round can actually
// reach under this configuration: the last element of the expansion
// sequence W, W+Δ, W+2Δ, ... that does not exceed Max. Ring buffers sized
// to this value can never evict a live round's window start — Resolve
// refuses to grow past Max, so no round ever needs more than MaxWindow
// retained points.
func (c FlexConfig) MaxWindow() int {
	if c.Disabled {
		return c.Initial
	}
	d := c.delta()
	if d <= 0 {
		return c.Initial
	}
	steps := (c.Max - c.Initial) / d
	if steps < 0 {
		steps = 0
	}
	return c.Initial + steps*d
}

// Flex tracks one in-flight judgment round: the current window size and
// whether another expansion is allowed.
type Flex struct {
	cfg  FlexConfig
	size int
}

// NewFlex starts a judgment round at the initial window size.
func NewFlex(cfg FlexConfig) (*Flex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Flex{cfg: cfg, size: cfg.Initial}, nil
}

// Size returns the current window size in points.
func (f *Flex) Size() int { return f.size }

// Resolve folds a tentative state into the round's outcome:
//
//   - Healthy / Abnormal end the round (done=true, final=state).
//   - Observable expands the window (done=false) unless expansion is
//     disabled or the maximum is reached, in which case done=true with the
//     configured terminal state.
func (f *Flex) Resolve(s State) (final State, done bool) {
	if s != Observable {
		return s, true
	}
	if f.cfg.Disabled {
		// MM variant: no expansion; within-tolerance deviations pass.
		return Healthy, true
	}
	next := f.size + f.cfg.delta()
	if next > f.cfg.Max {
		return f.cfg.ExhaustState, true
	}
	f.size = next
	return Observable, false
}

// Reset begins a new round at the initial size.
func (f *Flex) Reset() { f.size = f.cfg.Initial }

// Restore positions the round at a previously observed window size (used
// when resuming a persisted judgment round). The size must be reachable by
// the configured expansion sequence W, W+Δ, ..., MaxWindow().
func (f *Flex) Restore(size int) error {
	if f.cfg.Disabled {
		if size != f.cfg.Initial {
			return fmt.Errorf("window: size %d invalid with expansion disabled (want %d)", size, f.cfg.Initial)
		}
		f.size = size
		return nil
	}
	if size < f.cfg.Initial || size > f.cfg.MaxWindow() {
		return fmt.Errorf("window: size %d outside [%d, %d]", size, f.cfg.Initial, f.cfg.MaxWindow())
	}
	if (size-f.cfg.Initial)%f.cfg.delta() != 0 {
		return fmt.Errorf("window: size %d not on the expansion sequence (W=%d, delta=%d)", size, f.cfg.Initial, f.cfg.delta())
	}
	f.size = size
	return nil
}
