package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openClean(t *testing.T, dir string, opts Options) (*Store, *Recovered) {
	t.Helper()
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, rec
}

func sampleRecords() []Record {
	return []Record{
		{Type: RecVerdict, Verdict: VerdictRecord{
			Tick: 40, Start: 20, Size: 20, AbnormalDB: 3, Expansions: 1,
			GapCells: 2, Abnormal: true, Health: 1, States: []uint8{0, 0, 0, 2, 0},
		}},
		{Type: RecVerdict, Verdict: VerdictRecord{
			Tick: 60, Start: 40, Size: 20, AbnormalDB: -1, Health: 0,
		}},
		{Type: RecFeedback, Feedback: FeedbackRecord{Start: 20, Size: 20, Predicted: true, Actual: false}},
		{Type: RecCounters, Counters: CountersRecord{
			GapCells: 7, MissedTicks: 1, Deactivations: 2, Reactivations: 1,
			DegradedVerdicts: 3, SkippedRounds: 1,
		}},
		{Type: RecThresholds, Thresholds: ThresholdsRecord{
			Tick: 60, Alpha: []float64{0.65, 0.7, 0.62}, Theta: 0.25, MaxTolerance: 2,
		}},
	}
}

func appendAll(t *testing.T, st *Store, recs []Record) {
	t.Helper()
	for i := range recs {
		var err error
		switch recs[i].Type {
		case RecVerdict:
			_, err = st.AppendVerdict(recs[i].Verdict)
		case RecFeedback:
			_, err = st.AppendFeedback(recs[i].Feedback)
		case RecCounters:
			_, err = st.AppendCounters(recs[i].Counters)
		case RecThresholds:
			_, err = st.AppendThresholds(recs[i].Thresholds)
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestStoreRoundTripAllRecordTypes(t *testing.T) {
	dir := t.TempDir()
	st, rec := openClean(t, dir, Options{Fsync: FsyncAlways})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	want := sampleRecords()
	appendAll(t, st, want)
	if got := st.LastSeq(); got != uint64(len(want)) {
		t.Fatalf("LastSeq = %d, want %d", got, len(want))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendCounters(CountersRecord{}); err == nil {
		t.Fatal("append after Close must fail")
	}

	st2, rec2 := openClean(t, dir, Options{})
	defer st2.Close()
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, sr := range rec2.Records {
		if sr.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, sr.Seq)
		}
		if !reflect.DeepEqual(sr.Record, want[i]) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, sr.Record, want[i])
		}
	}
	// Appends continue the sequence, they don't restart it.
	seq, err := st2.AppendCounters(CountersRecord{GapCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)+1) {
		t.Fatalf("post-recovery seq = %d, want %d", seq, len(want)+1)
	}
}

func TestStoreRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	st, _ := openClean(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 64, RetainSegments: 1})
	for i := 0; i < 40; i++ {
		if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	m := st.Metrics()
	if m.Rotations == 0 {
		t.Fatalf("no rotations with 64-byte segments: %+v", m)
	}
	segsBefore := countSegments(t, dir)
	if segsBefore < 3 {
		t.Fatalf("expected several segments, found %d", segsBefore)
	}
	// A snapshot covering everything compacts all but the retained tail.
	if err := st.WriteSnapshot(SnapshotState{Seq: st.LastSeq()}); err != nil {
		t.Fatal(err)
	}
	m = st.Metrics()
	if m.CompactedSegments == 0 {
		t.Fatal("snapshot did not compact covered segments")
	}
	segsAfter := countSegments(t, dir)
	if segsAfter >= segsBefore {
		t.Fatalf("segments %d -> %d, expected shrink", segsBefore, segsAfter)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery after compaction: snapshot + the retained record suffix.
	st2, rec := openClean(t, dir, Options{})
	defer st2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 40 {
		t.Fatalf("snapshot lost in compaction: %+v", rec.Snapshot)
	}
	if len(rec.Records) == 0 || len(rec.Records) >= 40 {
		t.Fatalf("retained records = %d, want a proper suffix", len(rec.Records))
	}
	last := rec.Records[len(rec.Records)-1]
	if last.Seq != 40 || last.Counters.GapCells != 39 {
		t.Fatalf("suffix ends at %+v", last)
	}
	// The suffix is contiguous.
	for i := 1; i < len(rec.Records); i++ {
		if rec.Records[i].Seq != rec.Records[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d", i)
		}
	}
}

func TestStoreSnapshotReplacedAtomically(t *testing.T) {
	dir := t.TempDir()
	st, _ := openClean(t, dir, Options{})
	if err := st.WriteSnapshot(SnapshotState{Seq: 0, Counters: CountersRecord{GapCells: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(SnapshotState{Seq: 0, Counters: CountersRecord{GapCells: 2}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !os.IsNotExist(err) {
		t.Fatal("temp snapshot left behind")
	}
	_, rec := openCleanAndClose(t, dir)
	if rec.Snapshot == nil || rec.Snapshot.Counters.GapCells != 2 {
		t.Fatalf("latest snapshot not recovered: %+v", rec.Snapshot)
	}
}

func TestStoreFsyncPolicies(t *testing.T) {
	for _, pol := range []Policy{FsyncAlways, FsyncEveryInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openClean(t, dir, Options{Fsync: pol})
			appendAll(t, st, sampleRecords())
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			m := st.Metrics()
			if pol == FsyncAlways && m.Syncs < 5 {
				t.Fatalf("always policy synced %d times for 5 appends", m.Syncs)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec := openCleanAndClose(t, dir)
			if len(rec.Records) != 5 {
				t.Fatalf("recovered %d records under %s", len(rec.Records), pol)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": FsyncAlways, "interval": FsyncEveryInterval, "never": FsyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("unknown policy must fail")
	}
}

func TestStoreOversizedRecordRejected(t *testing.T) {
	st, _ := openClean(t, t.TempDir(), Options{})
	defer st.Close()
	_, err := st.AppendThresholds(ThresholdsRecord{Alpha: make([]float64, maxAlphas+1)})
	if err == nil {
		t.Fatal("oversized record must be rejected")
	}
	// The store is still usable: size rejection is not a write failure.
	if _, err := st.AppendCounters(CountersRecord{}); err != nil {
		t.Fatalf("store poisoned by an oversized record: %v", err)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

func openCleanAndClose(t *testing.T, dir string) (Metrics, *Recovered) {
	t.Helper()
	st, rec := openClean(t, dir, Options{})
	m := st.Metrics()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return m, rec
}
