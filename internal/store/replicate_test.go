package store

import (
	"errors"
	"os"
	"reflect"
	"testing"
)

func TestEpochAdoptionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	st, rec := openClean(t, dir, Options{Fsync: FsyncAlways})
	if e := rec.LatestEpoch(); e != 0 {
		t.Fatalf("fresh dir LatestEpoch = %d", e)
	}
	if err := st.AdoptEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.AdoptEpoch(1, 0); err == nil {
		t.Fatal("re-adopting the same epoch must fail")
	}
	if err := st.AdoptEpoch(3, 42); err != nil {
		t.Fatal(err)
	}
	if e, fenced := st.Epoch(); e != 3 || fenced {
		t.Fatalf("Epoch() = %d, %v", e, fenced)
	}
	appendAll(t, st, sampleRecords())
	st.Close()

	st2, rec2 := openClean(t, dir, Options{})
	if e := rec2.LatestEpoch(); e != 3 {
		t.Fatalf("recovered LatestEpoch = %d, want 3", e)
	}
	if e, _ := st2.Epoch(); e != 3 {
		t.Fatalf("reopened store epoch = %d, want 3", e)
	}
	// The epoch records themselves replay with their adoption ticks intact.
	var epochs []EpochRecord
	for _, r := range rec2.Records {
		if r.Type == RecEpoch {
			epochs = append(epochs, r.Epoch)
		}
	}
	want := []EpochRecord{{Epoch: 1, Tick: 0}, {Epoch: 3, Tick: 42}}
	if !reflect.DeepEqual(epochs, want) {
		t.Fatalf("replayed epochs %+v, want %+v", epochs, want)
	}
	st2.Close()
}

func TestEpochSurvivesCompactionViaSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := openClean(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 64, RetainSegments: 1})
	if err := st.AdoptEpoch(5, 10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction drops the segment holding the RecEpoch record; the
	// snapshot stamp must carry the epoch across.
	if err := st.WriteSnapshot(SnapshotState{Seq: st.LastSeq()}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec := openClean(t, dir, Options{})
	defer st2.Close()
	for _, r := range rec.Records {
		if r.Type == RecEpoch {
			t.Skip("epoch record survived compaction; snapshot path not exercised")
		}
	}
	if e := rec.LatestEpoch(); e != 5 {
		t.Fatalf("LatestEpoch after compaction = %d, want 5", e)
	}
	if e, _ := st2.Epoch(); e != 5 {
		t.Fatalf("store epoch after compaction = %d, want 5", e)
	}
}

func TestFenceRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	st, _ := openClean(t, dir, Options{Fsync: FsyncAlways})
	defer st.Close()
	if err := st.AdoptEpoch(2, 0); err != nil {
		t.Fatal(err)
	}
	// A stale fence (at or below our epoch) is rejected and changes nothing.
	if err := st.Fence(2); err == nil {
		t.Fatal("stale fence must be rejected")
	}
	if _, err := st.AppendCounters(CountersRecord{}); err != nil {
		t.Fatalf("store wrongly fenced by stale epoch: %v", err)
	}
	if err := st.Fence(3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendCounters(CountersRecord{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("append on fenced store: %v, want ErrFenced", err)
	}
	if err := st.WriteSnapshot(SnapshotState{Seq: st.LastSeq()}); !errors.Is(err, ErrFenced) {
		t.Fatalf("snapshot on fenced store: %v, want ErrFenced", err)
	}
	if err := st.AdoptEpoch(9, 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("adopt on fenced store: %v, want ErrFenced", err)
	}
	if e, fenced := st.Epoch(); e != 2 || !fenced {
		t.Fatalf("Epoch() = %d, %v; want 2, fenced", e, fenced)
	}
}

func TestSelfFenceAcceptsEqualEpoch(t *testing.T) {
	dir := t.TempDir()
	st, _ := openClean(t, dir, Options{Fsync: FsyncAlways})
	defer st.Close()
	if err := st.AdoptEpoch(2, 0); err != nil {
		t.Fatal(err)
	}
	// A peer strictly below us is a stale observation: we are the newer
	// primary, and must not demote ourselves.
	if err := st.SelfFence(1); err == nil {
		t.Fatal("self-fence on a lower peer epoch must be rejected")
	}
	if _, err := st.AppendCounters(CountersRecord{}); err != nil {
		t.Fatalf("store wrongly self-fenced: %v", err)
	}
	// Equal epoch is a fork (two primaries adopted the same epoch): unlike
	// the external Fence, first-hand SelfFence accepts it and stops writes.
	if err := st.SelfFence(2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendCounters(CountersRecord{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("append after self-fence: %v, want ErrFenced", err)
	}
	if e, fenced := st.Epoch(); e != 2 || !fenced {
		t.Fatalf("Epoch() = %d, %v; want 2, fenced", e, fenced)
	}
}

func TestReplicationManifestAndReadSegmentAt(t *testing.T) {
	dir := t.TempDir()
	st, _ := openClean(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 128})
	defer st.Close()
	for i := 0; i < 20; i++ {
		if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := st.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.LastSeq != 20 || m.HasSnapshot || len(m.Segments) < 2 {
		t.Fatalf("manifest %+v", m)
	}
	if m.Segments[0].Base != 1 || !m.Segments[0].Sealed {
		t.Fatalf("first segment %+v", m.Segments[0])
	}
	if last := m.Segments[len(m.Segments)-1]; last.Sealed {
		t.Fatalf("active segment advertised sealed: %+v", last)
	}
	// Segment names round-trip through the base parser.
	for _, seg := range m.Segments {
		base, ok := SegmentBase(seg.Name)
		if !ok || base != seg.Base {
			t.Fatalf("SegmentBase(%q) = %d, %v; want %d", seg.Name, base, ok, seg.Base)
		}
		if SegmentName(seg.Base) != seg.Name {
			t.Fatalf("SegmentName(%d) = %q, want %q", seg.Base, SegmentName(seg.Base), seg.Name)
		}
	}

	// Fetch every advertised segment in full and decode: the replicated
	// stream must be the store's own records, contiguous from seq 1.
	var all []SeqRecord
	for _, seg := range m.Segments {
		var off int64
		for off < seg.Size {
			chunk, err := st.ReadSegmentAt(seg.Name, off, 64)
			if err != nil {
				t.Fatalf("ReadSegmentAt(%s, %d): %v", seg.Name, off, err)
			}
			if len(chunk) == 0 {
				t.Fatalf("no progress at %s@%d (size %d)", seg.Name, off, seg.Size)
			}
			recs, consumed, err := DecodeFrames(chunk, uint64(len(all))+1)
			if err != nil || consumed != len(chunk) {
				t.Fatalf("DecodeFrames: consumed %d/%d, %v", consumed, len(chunk), err)
			}
			all = append(all, recs...)
			off += int64(consumed)
		}
	}
	if len(all) != 20 {
		t.Fatalf("replicated %d records, want 20", len(all))
	}
	for i, r := range all {
		if r.Seq != uint64(i+1) || r.Type != RecCounters || r.Counters.GapCells != i {
			t.Fatalf("record %d = %+v", i, r)
		}
	}

	// Reads at or past the committed size return nothing, not an error.
	last := m.Segments[len(m.Segments)-1]
	if b, err := st.ReadSegmentAt(last.Name, last.Size, 64); err != nil || len(b) != 0 {
		t.Fatalf("read at committed end: %d bytes, %v", len(b), err)
	}
	// Unknown segments are a restart-from-snapshot signal.
	if _, err := st.ReadSegmentAt(SegmentName(999), 0, 64); !errors.Is(err, ErrNoSegment) {
		t.Fatalf("unknown segment: %v, want ErrNoSegment", err)
	}
	if _, err := st.ReadSegmentAt("../snapshot.json", 0, 64); !errors.Is(err, ErrNoSegment) {
		t.Fatalf("path traversal name: %v, want ErrNoSegment", err)
	}
}

// TestReadSegmentAtFrameLargerThanMax pins the progress guarantee: when a
// single frame exceeds the chunk cap, the read returns that frame whole
// instead of an empty (stuck) response.
func TestReadSegmentAtFrameLargerThanMax(t *testing.T) {
	st, _ := openClean(t, t.TempDir(), Options{Fsync: FsyncAlways})
	defer st.Close()
	big := ThresholdsRecord{Tick: 1, Alpha: make([]float64, 64), Theta: 0.2, MaxTolerance: 1}
	if _, err := st.AppendThresholds(big); err != nil {
		t.Fatal(err)
	}
	m, err := st.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	seg := m.Segments[0]
	chunk, err := st.ReadSegmentAt(seg.Name, 0, 16) // far below the frame size
	if err != nil {
		t.Fatal(err)
	}
	recs, consumed, err := DecodeFrames(chunk, 1)
	if err != nil || len(recs) != 1 || int64(consumed) != seg.Size {
		t.Fatalf("oversized-frame read: %d recs, %d consumed, %v", len(recs), consumed, err)
	}
	if len(recs[0].Thresholds.Alpha) != 64 {
		t.Fatalf("decoded %d alphas", len(recs[0].Thresholds.Alpha))
	}
}

// TestSlowReaderRetentionBoundaries table-tests what a follower holding an
// offset into an old segment sees across RetainSegments settings after a
// covering snapshot compacts the log: either the segment is retained and
// the read succeeds, or it is gone and the follower gets the clean
// ErrNoSegment restart-from-snapshot signal — never a torn read or a
// false success.
func TestSlowReaderRetentionBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		retain int
	}{
		{"retain-1", 1},
		{"retain-2", 2},
		{"retain-4", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openClean(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 64, RetainSegments: tc.retain})
			defer st.Close()
			for i := 0; i < 40; i++ {
				if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
					t.Fatal(err)
				}
			}
			before, err := st.ReplicationManifest()
			if err != nil {
				t.Fatal(err)
			}
			var sealedBefore []SegmentInfo
			for _, s := range before.Segments {
				if s.Sealed {
					sealedBefore = append(sealedBefore, s)
				}
			}
			if len(sealedBefore) <= tc.retain {
				t.Fatalf("need more than %d sealed segments, have %d", tc.retain, len(sealedBefore))
			}
			// The follower is "holding" an offset into the oldest segment
			// when a covering snapshot compacts.
			if err := st.WriteSnapshot(SnapshotState{Seq: st.LastSeq()}); err != nil {
				t.Fatal(err)
			}
			after, err := st.ReplicationManifest()
			if err != nil {
				t.Fatal(err)
			}
			if !after.HasSnapshot || after.SnapshotSeq != 40 {
				t.Fatalf("manifest after snapshot: %+v", after)
			}
			kept := make(map[string]bool)
			for _, s := range after.Segments {
				kept[s.Name] = true
			}
			sealedKept := 0
			for _, s := range sealedBefore {
				if kept[s.Name] {
					sealedKept++
				}
			}
			if sealedKept != tc.retain {
				t.Fatalf("retained %d sealed segments, want exactly %d", sealedKept, tc.retain)
			}
			for _, s := range sealedBefore {
				chunk, err := st.ReadSegmentAt(s.Name, 0, int(s.Size))
				if kept[s.Name] {
					if err != nil {
						t.Fatalf("read of retained %s: %v", s.Name, err)
					}
					if _, consumed, derr := DecodeFrames(chunk, s.Base); derr != nil || int64(consumed) != s.Size {
						t.Fatalf("retained %s decodes %d/%d bytes: %v", s.Name, consumed, s.Size, derr)
					}
				} else {
					if !errors.Is(err, ErrNoSegment) {
						t.Fatalf("read of compacted %s: %v, want ErrNoSegment", s.Name, err)
					}
				}
			}
			// A misaligned (mid-frame) offset into a retained segment is
			// reported as corruption, never silently returned as data.
			if len(sealedBefore) > 0 && kept[sealedBefore[len(sealedBefore)-1].Name] {
				name := sealedBefore[len(sealedBefore)-1].Name
				if chunk, err := st.ReadSegmentAt(name, 3, 1<<20); err == nil && len(chunk) > 0 {
					if _, _, derr := DecodeFrames(chunk, 1); derr == nil {
						t.Fatalf("mid-frame read of %s decoded cleanly", name)
					}
				}
			}
			// The advertised set stays contiguous and fetchable from the
			// snapshot boundary: every record above SnapshotSeq is present.
			lowest := after.Segments[0].Base
			if lowest > after.SnapshotSeq+1 {
				t.Fatalf("gap: lowest advertised base %d, snapshot seq %d", lowest, after.SnapshotSeq)
			}
		})
	}
}

func TestSnapshotBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _ := openClean(t, dir, Options{Fsync: FsyncAlways})
	if _, err := st.SnapshotBlob(); !os.IsNotExist(err) {
		t.Fatalf("blob before snapshot: %v, want not-exist", err)
	}
	if err := st.AdoptEpoch(4, 7); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(SnapshotState{Seq: 1, Counters: CountersRecord{GapCells: 3}}); err != nil {
		t.Fatal(err)
	}
	blob, err := st.SnapshotBlob()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	follower := t.TempDir()
	snap, err := InstallSnapshotBlob(follower, blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 || snap.Epoch != 4 || snap.Counters.GapCells != 3 {
		t.Fatalf("installed snapshot %+v", snap)
	}
	fst, rec := openClean(t, follower, Options{})
	defer fst.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 1 || rec.LatestEpoch() != 4 {
		t.Fatalf("follower recovery from installed blob: %+v", rec.Snapshot)
	}
	// Garbage blobs are refused before touching the live snapshot.
	if _, err := InstallSnapshotBlob(follower, []byte("{")); err == nil {
		t.Fatal("corrupt blob must be rejected")
	}
	if _, err := InstallSnapshotBlob(follower, []byte(`{"schema":"other/9"}`)); err == nil {
		t.Fatal("wrong-schema blob must be rejected")
	}
}
