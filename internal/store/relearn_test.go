package store

import (
	"math"
	"reflect"
	"testing"

	"dbcatcher/internal/relearn"
)

func TestRelearnRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := []RelearnRecord{
		{Tick: 10, Attempt: 1, Event: 1},
		{Tick: 40, Attempt: 1, TrainRecords: 30, HoldoutRecords: 12, Event: 4, Fitness: 0.91, Baseline: 0.9},
		{Tick: 140, Attempt: 1, Event: 5, Fitness: 0.91, Baseline: 0.9, FlipRate: 0.02},
		{Tick: 200, Attempt: 2, Event: 2, Fitness: -1, Baseline: -1, FlipRate: -1},
	}
	for _, r := range recs {
		if _, err := st.AppendRelearn(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := rec.RelearnEvents()
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("recovered relearn records:\n  got  %+v\n  want %+v", got, recs)
	}
}

func TestRelearnRecordRejectsNonFinite(t *testing.T) {
	st, _, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.AppendRelearn(RelearnRecord{Tick: 1, Attempt: 1, Event: 2, Fitness: math.NaN()}); err == nil {
		t.Fatal("NaN fitness accepted by the WAL")
	}
	if _, err := st.AppendRelearn(RelearnRecord{Tick: 1, Attempt: 1, Event: 2, FlipRate: math.Inf(1)}); err == nil {
		t.Fatal("Inf flip rate accepted by the WAL")
	}
}

// TestPersisterSanitizesRelearnScores: the Recorder bridge maps the
// supervisor's non-finite scores (meaningless for failed attempts) to the
// -1 sentinel, so the strict canonical decoder never sees a NaN.
func TestPersisterSanitizesRelearnScores(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPersister(st, rec, nil, 1)
	p.RecordRelearn(relearn.Event{
		Kind: relearn.EventFailed, Tick: 7, Attempt: 3,
		Fitness: math.NaN(), Baseline: math.Inf(-1), FlipRate: math.Inf(1),
		Reason: "retrain panic: boom",
	})
	p.RecordRelearn(relearn.Event{
		Kind: relearn.EventPromoted, Tick: 9, Attempt: 3,
		Fitness: 0.8, Baseline: 0.79, FlipRate: 0.1,
	})
	if got := p.Status().(Status).RelearnEvents; got != 2 {
		t.Fatalf("RelearnEvents counter = %d, want 2", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	evs := rec2.RelearnEvents()
	if len(evs) != 2 {
		t.Fatalf("recovered %d events, want 2", len(evs))
	}
	failed := evs[0]
	if failed.Event != uint8(relearn.EventFailed) || failed.Fitness != -1 || failed.Baseline != -1 || failed.FlipRate != -1 {
		t.Fatalf("non-finite scores not sanitized: %+v", failed)
	}
	promoted := evs[1]
	if promoted.Event != uint8(relearn.EventPromoted) || promoted.Fitness != 0.8 {
		t.Fatalf("finite scores mangled: %+v", promoted)
	}
}
