package store

import (
	"bytes"
	"reflect"
	"testing"

	"dbcatcher/internal/monitor"
)

func unitVerdict(unit, tick int, abnormal bool) UnitVerdictRecord {
	return UnitVerdictRecord{
		Unit: unit,
		Verdict: VerdictRecord{
			Tick: tick, Start: tick - 19, Size: 20, AbnormalDB: -1,
			Abnormal: abnormal, Health: 0, States: []uint8{0, 0, 0},
		},
	}
}

func TestUnitVerdictPayloadRoundTrip(t *testing.T) {
	rec := Record{Type: RecUnitVerdict, UnitVerdict: unitVerdict(31, 140, true)}
	rec.UnitVerdict.Verdict.AbnormalDB = 2
	rec.UnitVerdict.Verdict.States = []uint8{0, 0, 2}
	if err := rec.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	payload := appendPayload(nil, &rec)
	got, err := decodePayload(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round trip diverged:\n  in  %+v\n  out %+v", rec, got)
	}
	if re := appendPayload(nil, &got); !bytes.Equal(re, payload) {
		t.Fatalf("re-encode mismatch")
	}
}

func TestUnitVerdictStrictDecode(t *testing.T) {
	rec := Record{Type: RecUnitVerdict, UnitVerdict: unitVerdict(3, 40, false)}
	payload := appendPayload(nil, &rec)

	// Trailing garbage after a well-formed payload must be rejected.
	if _, err := decodePayload(append(append([]byte(nil), payload...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Truncation anywhere must be rejected.
	for cut := 1; cut < len(payload); cut++ {
		if _, err := decodePayload(payload[:cut]); err == nil {
			t.Fatalf("truncated payload (%d/%d bytes) accepted", cut, len(payload))
		}
	}
	// A unit index past the bound must be rejected at decode and append time.
	huge := Record{Type: RecUnitVerdict, UnitVerdict: unitVerdict(maxUnits, 1, false)}
	if err := huge.validate(); err == nil {
		t.Fatal("unit out of range passed validation")
	}
	negative := Record{Type: RecUnitVerdict, UnitVerdict: unitVerdict(-1, 1, false)}
	if err := negative.validate(); err == nil {
		t.Fatal("negative unit passed validation")
	}
}

func TestStoreUnitVerdictRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Interleave three units' streams the way a fleet round scheduler does.
	for tick := 20; tick <= 80; tick += 20 {
		for unit := 0; unit < 3; unit++ {
			if _, err := st.AppendUnitVerdict(unitVerdict(unit, tick+unit, unit == 1)); err != nil {
				t.Fatalf("append unit %d tick %d: %v", unit, tick, err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, rec, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	for unit := 0; unit < 3; unit++ {
		hist := rec.UnitVerdictHistory(unit)
		if len(hist) != 4 {
			t.Fatalf("unit %d: recovered %d verdicts, want 4", unit, len(hist))
		}
		for i, v := range hist {
			if want := 20*(i+1) + unit; v.Tick != want {
				t.Fatalf("unit %d verdict %d: tick %d, want %d", unit, i, v.Tick, want)
			}
			if v.Abnormal != (unit == 1) {
				t.Fatalf("unit %d verdict %d: abnormal %v", unit, i, v.Abnormal)
			}
		}
	}
	if hist := rec.UnitVerdictHistory(9); hist != nil {
		t.Fatalf("unknown unit returned %d verdicts", len(hist))
	}
	ticks := rec.UnitDurableTicks()
	for unit := 0; unit < 3; unit++ {
		if ticks[unit] != 80+unit {
			t.Fatalf("unit %d durable tick %d, want %d", unit, ticks[unit], 80+unit)
		}
	}
}

func TestFleetPersisterDedupe(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fp := NewFleetPersister(st, rec)
	push := func(unit, tick int) {
		var v monitor.Verdict
		v.Tick = tick
		v.Start = tick - 19
		v.Size = 20
		v.AbnormalDB = -1
		fp.Unit(unit).PersistVerdict(&v, monitor.PersistContext{})
	}
	push(0, 20)
	push(0, 40)
	push(5, 20)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, rec2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	fp2 := NewFleetPersister(st2, rec2)
	if got := fp2.DurableTick(0); got != 40 {
		t.Fatalf("unit 0 durable tick %d, want 40", got)
	}
	if got := fp2.DurableTick(5); got != 20 {
		t.Fatalf("unit 5 durable tick %d, want 20", got)
	}
	// Regenerated catch-up verdicts at or below the horizon are suppressed;
	// fresh ticks append and advance it.
	push2 := func(unit, tick int) {
		var v monitor.Verdict
		v.Tick = tick
		v.Start = tick - 19
		v.Size = 20
		v.AbnormalDB = -1
		fp2.Unit(unit).PersistVerdict(&v, monitor.PersistContext{})
	}
	push2(0, 20)
	push2(0, 40)
	push2(0, 60)
	push2(5, 40)
	status := fp2.Status().(FleetStatus)
	if status.Suppressed != 2 {
		t.Fatalf("suppressed %d, want 2", status.Suppressed)
	}
	if status.Verdicts != 2 {
		t.Fatalf("verdicts %d, want 2", status.Verdicts)
	}
	if fp2.DurableTick(0) != 60 || fp2.DurableTick(5) != 40 {
		t.Fatalf("horizons did not advance: %d, %d", fp2.DurableTick(0), fp2.DurableTick(5))
	}
	if err := fp2.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}
