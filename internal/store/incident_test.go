package store

import (
	"bytes"
	"reflect"
	"testing"

	"dbcatcher/internal/incident"
)

func incidentRec() Record {
	return Record{Type: RecIncident, Incident: IncidentRecord{
		RoundTick: 120,
		Transitions: []IncidentTransition{
			{Event: 1, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: 1 << 2, FirstTick: 100, LastTick: 120, Count: 1},
			{Event: 2, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: ^uint64(0), FirstTick: 100, LastTick: 140, Count: 2},
			{Event: 3, ID: 2, Cluster: 1, Unit: 31, DB: 0, KPIs: 1, FirstTick: 104, LastTick: 124, Count: 1},
		},
	}}
}

func TestIncidentPayloadRoundTrip(t *testing.T) {
	rec := incidentRec()
	if err := rec.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	payload := appendPayload(nil, &rec)
	got, err := decodePayload(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round trip diverged:\n  in  %+v\n  out %+v", rec, got)
	}
	if re := appendPayload(nil, &got); !bytes.Equal(re, payload) {
		t.Fatal("re-encode mismatch")
	}
}

func TestIncidentStrictDecode(t *testing.T) {
	rec := incidentRec()
	payload := appendPayload(nil, &rec)
	if _, err := decodePayload(append(append([]byte(nil), payload...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 1; cut < len(payload); cut++ {
		if _, err := decodePayload(payload[:cut]); err == nil {
			t.Fatalf("truncated payload (%d/%d bytes) accepted", cut, len(payload))
		}
	}
	// Append-time validation mirrors the decoder on every invariant.
	for name, mut := range map[string]func(*Record){
		"zero event":     func(r *Record) { r.Incident.Transitions[0].Event = 0 },
		"event 4":        func(r *Record) { r.Incident.Transitions[0].Event = 4 },
		"zero id":        func(r *Record) { r.Incident.Transitions[0].ID = 0 },
		"zero cluster":   func(r *Record) { r.Incident.Transitions[0].Cluster = 0 },
		"negative unit":  func(r *Record) { r.Incident.Transitions[0].Unit = -1 },
		"huge unit":      func(r *Record) { r.Incident.Transitions[0].Unit = maxUnits },
		"huge db":        func(r *Record) { r.Incident.Transitions[0].DB = maxStates },
		"empty window":   func(r *Record) { r.Incident.Transitions[0].LastTick = r.Incident.Transitions[0].FirstTick },
		"zero count":     func(r *Record) { r.Incident.Transitions[0].Count = 0 },
		"negative round": func(r *Record) { r.Incident.RoundTick = -1 },
	} {
		bad := incidentRec()
		mut(&bad)
		if err := bad.validate(); err == nil {
			t.Errorf("%s passed validation", name)
		}
	}
}

// incidentRound is one fleet round of the rehydration scenario.
type incidentRound struct {
	tick   int
	events []incident.Event
}

// incidentScenario is a compact correlated-fault stream: unit 0 leads on
// KPI 2, units 1-3 follow on KPI 12, plus an unrelated late incident.
func incidentScenario() []incidentRound {
	byTick := map[int][]incident.Event{
		120: {{Unit: 0, DB: 2, KPIs: incident.KPISet(0).With(2), Start: 100, End: 120}},
		140: {{Unit: 0, DB: 2, KPIs: incident.KPISet(0).With(2), Start: 120, End: 140}},
		220: {{Unit: 9, DB: 1, KPIs: incident.KPISet(0).With(5), Start: 200, End: 220}},
	}
	for u := 1; u <= 3; u++ {
		byTick[124] = append(byTick[124], incident.Event{Unit: u, DB: 2, KPIs: incident.KPISet(0).With(12), Start: 104, End: 124})
		byTick[144] = append(byTick[144], incident.Event{Unit: u, DB: 2, KPIs: incident.KPISet(0).With(12), Start: 124, End: 144})
	}
	var rounds []incidentRound
	for tick := 0; tick <= 300; tick += 4 {
		rounds = append(rounds, incidentRound{tick: tick, events: byTick[tick]})
	}
	return rounds
}

func incidentCfg() incident.Config {
	return incident.Config{ProximityTicks: 16, CloseAfter: 30, MaxLag: 16, MaxHistory: 64}
}

// feedJournaled drives rounds through the aggregator, batching each
// round's transitions into one RecIncident record — the daemon's exact
// journaling shape.
func feedJournaled(a *incident.Aggregator, fp *FleetPersister, rounds []incidentRound) {
	var buf []incident.Transition
	a.SetPersist(func(tr incident.Transition) { buf = append(buf, tr) })
	for _, r := range rounds {
		buf = buf[:0]
		a.ObserveRound(r.tick, r.events)
		fp.RecordIncidentRound(r.tick, buf)
	}
}

// TestIncidentWALRehydration is the acceptance e2e: cut the run at several
// round boundaries, reopen the WAL, Restore, resume the full deterministic
// stream — the final state must match the uninterrupted run bit-for-bit,
// and a fresh Restore of the complete journal must match it too.
func TestIncidentWALRehydration(t *testing.T) {
	rounds := incidentScenario()

	ref := incident.New(incidentCfg())
	for _, r := range rounds {
		ref.ObserveRound(r.tick, r.events)
	}
	want := ref.Fingerprint()

	for _, cut := range []int{0, 10, 32, 37, 45, len(rounds)} {
		dir := t.TempDir()
		st, rec, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		a := incident.New(incidentCfg())
		feedJournaled(a, NewFleetPersister(st, rec), rounds[:cut])
		if err := st.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}

		st2, rec2, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		b := incident.New(incidentCfg())
		if err := b.Restore(rec2.IncidentTransitions()); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		// Resume: the fleet replays its deterministic input from round 0;
		// the aggregator skips everything at or below its horizon.
		feedJournaled(b, NewFleetPersister(st2, rec2), rounds)
		if got := b.Fingerprint(); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: rehydrated run diverged:\n--- want ---\n%s\n--- got ---\n%s", cut, want, got)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("cut %d: close 2: %v", cut, err)
		}

		// The complete journal alone rebuilds the same terminal state.
		st3, rec3, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("cut %d: reopen 3: %v", cut, err)
		}
		c := incident.New(incidentCfg())
		if err := c.Restore(rec3.IncidentTransitions()); err != nil {
			t.Fatalf("cut %d: restore 3: %v", cut, err)
		}
		if got := c.Fingerprint(); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: journal-only restore diverged:\n--- want ---\n%s\n--- got ---\n%s", cut, want, got)
		}
		st3.Close()
	}
}

func TestRecordIncidentRoundCounters(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	fp := NewFleetPersister(st, rec)
	fp.RecordIncidentRound(100, nil) // empty rounds are not journaled
	fp.RecordIncidentRound(120, []incident.Transition{
		{Event: incident.TransOpen, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: 4, FirstTick: 100, LastTick: 120, Count: 1, RoundTick: 120},
		{Event: incident.TransOpen, ID: 2, Cluster: 1, Unit: 1, DB: 2, KPIs: 4, FirstTick: 104, LastTick: 120, Count: 1, RoundTick: 120},
	})
	status := fp.Status().(FleetStatus)
	if status.IncidentRounds != 1 || status.IncidentTransitions != 2 {
		t.Fatalf("status = %+v, want 1 round / 2 transitions", status)
	}
	if status.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", status)
	}
}
