package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ErrNoSegment reports a replication read against a segment the store no
// longer has — compacted away, or never ours. It is the clean "restart
// from snapshot" signal a lagging follower acts on; it is never returned
// for a segment that merely has no bytes past the requested offset.
var ErrNoSegment = errors.New("store: segment not available")

// SegmentInfo describes one WAL segment a follower can fetch. Size is the
// committed byte length: every byte below it is an immutable, fully
// written frame. Sealed segments will never grow again.
type SegmentInfo struct {
	Name   string `json:"name"`
	Base   uint64 `json:"base"`
	Size   int64  `json:"size"`
	Sealed bool   `json:"sealed"`
}

// Manifest is the primary's replication advertisement: its fencing epoch,
// log extent, snapshot coverage, and the fetchable segment set (oldest
// first, contiguous).
type Manifest struct {
	Epoch       uint64        `json:"epoch"`
	Fenced      bool          `json:"fenced"`
	LastSeq     uint64        `json:"lastSeq"`
	SnapshotSeq uint64        `json:"snapshotSeq"`
	HasSnapshot bool          `json:"hasSnapshot"`
	Segments    []SegmentInfo `json:"segments"`
}

// ReplicationManifest snapshots the store's replicable state. Committed
// sizes are captured under the store lock, so a concurrent append never
// makes a follower read a torn frame: bytes below the advertised size are
// immutable by construction.
func (s *Store) ReplicationManifest() (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Manifest{}, fmt.Errorf("store: closed")
	}
	m := Manifest{
		Epoch:       s.epoch,
		Fenced:      s.fenced,
		LastSeq:     s.wal.nextSeq - 1,
		SnapshotSeq: s.snapSeq,
		HasSnapshot: s.hasSnap,
	}
	for _, seg := range s.wal.closed {
		fi, err := os.Stat(seg.path)
		if err != nil {
			return Manifest{}, fmt.Errorf("store: manifest: %w", err)
		}
		m.Segments = append(m.Segments, SegmentInfo{
			Name:   filepath.Base(seg.path),
			Base:   seg.base,
			Size:   fi.Size(),
			Sealed: true,
		})
	}
	if s.wal.f != nil {
		m.Segments = append(m.Segments, SegmentInfo{
			Name: filepath.Base(segmentPath(s.wal.dir, s.wal.segBase)),
			Base: s.wal.segBase,
			Size: s.wal.segSize,
		})
	}
	return m, nil
}

// ReadSegmentAt returns committed frame bytes from the named segment
// starting at off, at most max bytes, always ending on a frame boundary
// (a frame larger than max is returned whole, so progress is guaranteed).
// Every returned frame is CRC-verified server-side before it leaves the
// process. An unknown or compacted segment returns ErrNoSegment; an
// offset at or past the committed size returns no bytes and no error.
func (s *Store) ReadSegmentAt(name string, off int64, max int) ([]byte, error) {
	if off < 0 {
		return nil, fmt.Errorf("store: negative offset %d", off)
	}
	if max <= 0 {
		max = 1 << 20
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: closed")
	}
	var path string
	var committed int64
	found := false
	for _, seg := range s.wal.closed {
		if filepath.Base(seg.path) == name {
			fi, err := os.Stat(seg.path)
			if err != nil {
				s.mu.Unlock()
				return nil, fmt.Errorf("store: %w", err)
			}
			path, committed, found = seg.path, fi.Size(), true
			break
		}
	}
	if !found && s.wal.f != nil {
		active := segmentPath(s.wal.dir, s.wal.segBase)
		if filepath.Base(active) == name {
			path, committed, found = active, s.wal.segSize, true
		}
	}
	s.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("%w: %s", ErrNoSegment, name)
	}
	if off >= committed {
		return nil, nil
	}
	// Lock-free read: everything below committed is immutable.
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	want := committed - off
	if int64(max) < want {
		want = int64(max)
	}
	buf := make([]byte, want)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: read %s@%d: %w", name, off, err)
	}
	consumed, err := verifyFrames(buf)
	if err != nil {
		return nil, fmt.Errorf("store: %s@%d: %w", name, off, err)
	}
	if consumed > 0 {
		return buf[:consumed], nil
	}
	// The first frame alone exceeds max: read it whole so the follower
	// always makes progress.
	if committed-off < frameHeader {
		return nil, fmt.Errorf("store: %s@%d: committed tail shorter than a frame header", name, off)
	}
	head := make([]byte, frameHeader)
	if _, err := f.ReadAt(head, off); err != nil {
		return nil, fmt.Errorf("store: read %s@%d: %w", name, off, err)
	}
	length := int64(binary.LittleEndian.Uint32(head))
	if length == 0 || length > maxRecordBytes || off+frameHeader+length > committed {
		return nil, fmt.Errorf("store: %s@%d: corrupt frame header", name, off)
	}
	frame := make([]byte, frameHeader+length)
	if _, err := f.ReadAt(frame, off); err != nil {
		return nil, fmt.Errorf("store: read %s@%d: %w", name, off, err)
	}
	if n, err := verifyFrames(frame); err != nil || int64(n) != frameHeader+length {
		return nil, fmt.Errorf("store: %s@%d: corrupt committed frame", name, off)
	}
	return frame, nil
}

// verifyFrames walks CRC frames in b and returns how many bytes form
// complete, checksum-valid frames. A partial frame at the end is not an
// error (the window was cut by a size cap); a complete frame with a bad
// CRC or an insane length is.
func verifyFrames(b []byte) (consumed int, err error) {
	off := 0
	for off < len(b) {
		if len(b)-off < frameHeader {
			return off, nil
		}
		length := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if length == 0 || length > maxRecordBytes {
			return off, fmt.Errorf("insane frame length %d at offset %d", length, off)
		}
		if len(b)-off-frameHeader < length {
			return off, nil
		}
		if crc32.ChecksumIEEE(b[off+frameHeader:off+frameHeader+length]) != sum {
			return off, fmt.Errorf("frame CRC mismatch at offset %d", off)
		}
		off += frameHeader + length
	}
	return off, nil
}

// DecodeFrames strictly decodes the complete frames in b, assigning
// sequence numbers from startSeq. It returns the records, how many bytes
// were consumed (a trailing partial frame is left unconsumed, not an
// error), and the first corruption encountered (bad length, CRC, or
// payload), if any.
func DecodeFrames(b []byte, startSeq uint64) ([]SeqRecord, int, error) {
	var recs []SeqRecord
	off, seq := 0, startSeq
	for off < len(b) {
		if len(b)-off < frameHeader {
			return recs, off, nil
		}
		length := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if length == 0 || length > maxRecordBytes {
			return recs, off, fmt.Errorf("store: insane frame length %d at offset %d", length, off)
		}
		if len(b)-off-frameHeader < length {
			return recs, off, nil
		}
		payload := b[off+frameHeader : off+frameHeader+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, fmt.Errorf("store: frame CRC mismatch at offset %d", off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, SeqRecord{Seq: seq, Record: rec})
		seq++
		off += frameHeader + length
	}
	return recs, off, nil
}

// SegmentBase parses a WAL segment file name ("wal-<20 digits>.seg") into
// the sequence number of its first record.
func SegmentBase(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(digits) != 20 {
		return 0, false
	}
	base, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// SegmentName formats the segment file name for a base sequence number —
// the inverse of SegmentBase.
func SegmentName(base uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix)
}

// SnapshotBlob returns the live snapshot's raw bytes for replication, or
// os.ErrNotExist when none has been written yet.
func (s *Store) SnapshotBlob() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	return os.ReadFile(filepath.Join(s.dir, snapshotFile))
}

// LoadSnapshotFile reads dir's live snapshot without opening a store —
// how a follower inspects its local mirror. Missing or invalid files
// return nil.
func LoadSnapshotFile(dir string) *SnapshotState {
	st, _ := loadSnapshot(dir)
	return st
}

// InstallSnapshotBlob validates a fetched snapshot document and writes it
// atomically into dir (tmp + fsync + rename), byte-for-byte as served by
// the primary. The follower calls this when bootstrapping past a
// compaction gap.
func InstallSnapshotBlob(dir string, blob []byte) (*SnapshotState, error) {
	var st SnapshotState
	if err := json.Unmarshal(blob, &st); err != nil {
		return nil, fmt.Errorf("store: snapshot blob: %w", err)
	}
	if st.Schema != SnapshotSchema {
		return nil, fmt.Errorf("store: snapshot blob schema %q", st.Schema)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		return nil, fmt.Errorf("store: snapshot rename: %w", err)
	}
	syncDir(dir)
	return &st, nil
}
