// FleetPersister multiplexes many units' verdict streams into one Store:
// each unit gets a monitor.Persister adapter keyed by its index, appends
// land as RecUnitVerdict records in a single WAL, and recovery hands each
// unit back its own verdict history and dedupe horizon. The fleet WAL is a
// verdict journal, not a full-state resume: per-unit snapshots and
// threshold swaps are deliberately not persisted (a restarted fleet
// re-derives detection state deterministically from the workload replay,
// and the dedupe horizon suppresses re-journaling the catch-up verdicts —
// the same mechanism the single-unit Persister uses).
package store

import (
	"fmt"
	"sync"

	"dbcatcher/internal/incident"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
)

// ----- Recovered interpretation: unit-keyed records -----

// UnitVerdictHistory returns unit's persisted verdicts in sequence order,
// for re-seeding that unit's API verdict buffer. How far back it reaches
// is bounded by segment retention.
func (r *Recovered) UnitVerdictHistory(unit int) []monitor.Verdict {
	if r == nil {
		return nil
	}
	var out []monitor.Verdict
	for _, rec := range r.Records {
		if rec.Type == RecUnitVerdict && rec.UnitVerdict.Unit == unit {
			out = append(out, recordVerdict(rec.UnitVerdict.Verdict))
		}
	}
	return out
}

// UnitDurableTicks returns, per unit, the newest tick any persisted
// unit-keyed verdict covers — the dedupe horizon below which regenerated
// catch-up verdicts are suppressed. Units with no records are absent.
func (r *Recovered) UnitDurableTicks() map[int]int {
	if r == nil {
		return nil
	}
	out := make(map[int]int)
	for _, rec := range r.Records {
		if rec.Type != RecUnitVerdict {
			continue
		}
		u, t := rec.UnitVerdict.Unit, rec.UnitVerdict.Verdict.Tick
		if cur, ok := out[u]; !ok || t > cur {
			out[u] = t
		}
	}
	return out
}

// IncidentTransitions returns every persisted incident transition in
// sequence order, ready for incident.Aggregator.Restore. Each round
// record's RoundTick fans out onto its transitions.
func (r *Recovered) IncidentTransitions() []incident.Transition {
	if r == nil {
		return nil
	}
	var out []incident.Transition
	for _, rec := range r.Records {
		if rec.Type != RecIncident {
			continue
		}
		for i := range rec.Incident.Transitions {
			tr := &rec.Incident.Transitions[i]
			out = append(out, incident.Transition{
				Event: tr.Event, ID: tr.ID, Cluster: tr.Cluster,
				Unit: tr.Unit, DB: tr.DB, KPIs: incident.KPISet(tr.KPIs),
				FirstTick: tr.FirstTick, LastTick: tr.LastTick,
				Count: tr.Count, RoundTick: rec.Incident.RoundTick,
			})
		}
	}
	return out
}

// ----- the fleet bridge -----

// FleetPersister journals a whole fleet's verdict streams into one Store.
// Like Persister, its hooks are durability best-effort: append failures are
// counted and surfaced via Status, never propagated into detection.
type FleetPersister struct {
	mu      sync.Mutex
	st      *Store
	durable map[int]int // per-unit dedupe horizon

	verdicts       uint64
	suppressed     uint64
	incidentRounds uint64
	incidentTrans  uint64
	errors         uint64
	lastErr        string
}

// NewFleetPersister builds the bridge; rec (from Open) seeds each unit's
// regeneration dedupe horizon.
func NewFleetPersister(st *Store, rec *Recovered) *FleetPersister {
	durable := rec.UnitDurableTicks()
	if durable == nil {
		durable = make(map[int]int)
	}
	return &FleetPersister{st: st, durable: durable}
}

// DurableTick returns unit's dedupe horizon (0 when nothing is on disk).
func (p *FleetPersister) DurableTick(unit int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.durable[unit]
}

// Unit returns unit i's monitor.Persister adapter. The adapter journals
// verdicts under the unit key and intentionally drops threshold swaps: the
// fleet WAL records judgment streams, not per-unit tuning state.
func (p *FleetPersister) Unit(i int) monitor.Persister {
	return unitPersister{p: p, unit: i}
}

type unitPersister struct {
	p    *FleetPersister
	unit int
}

func (u unitPersister) PersistVerdict(v *monitor.Verdict, _ monitor.PersistContext) {
	u.p.persistVerdict(u.unit, v)
}

func (u unitPersister) PersistThresholds(window.Thresholds, monitor.PersistContext) {}

func (p *FleetPersister) persistVerdict(unit int, v *monitor.Verdict) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if hor, ok := p.durable[unit]; ok && v.Tick <= hor {
		// Regenerated during post-restart catch-up; already on disk.
		p.suppressed++
		return
	}
	_, err := p.st.AppendUnitVerdict(UnitVerdictRecord{Unit: unit, Verdict: verdictRecord(v)})
	if err != nil {
		p.errors++
		p.lastErr = err.Error()
		return
	}
	p.verdicts++
	p.durable[unit] = v.Tick
}

// RecordIncidentRound journals one fleet round's incident transitions as
// a single RecIncident record — the batch is the atomicity unit the
// aggregator's replay contract needs (a crash loses whole rounds off the
// tail, never part of one). No-op for empty rounds. Best-effort like the
// verdict path: failures are counted, not propagated. Replay dedupe needs
// no horizon here — a restored aggregator skips rounds at or below its
// own horizon, so catch-up rounds emit no transitions to re-journal.
func (p *FleetPersister) RecordIncidentRound(tick int, ts []incident.Transition) {
	if len(ts) == 0 {
		return
	}
	rec := IncidentRecord{RoundTick: tick, Transitions: make([]IncidentTransition, len(ts))}
	for i := range ts {
		t := &ts[i]
		rec.Transitions[i] = IncidentTransition{
			Event: t.Event, ID: t.ID, Cluster: t.Cluster,
			Unit: t.Unit, DB: t.DB, KPIs: uint64(t.KPIs),
			FirstTick: t.FirstTick, LastTick: t.LastTick, Count: t.Count,
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.st.AppendIncident(rec); err != nil {
		p.errors++
		p.lastErr = err.Error()
		return
	}
	p.incidentRounds++
	p.incidentTrans += uint64(len(ts))
}

// Flush syncs the WAL — the fleet daemon's graceful-shutdown path.
func (p *FleetPersister) Flush() error {
	if err := p.st.Sync(); err != nil {
		p.mu.Lock()
		p.errors++
		p.lastErr = err.Error()
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastErr != "" {
		return fmt.Errorf("store: fleet persistence degraded: %s", p.lastErr)
	}
	return nil
}

// FleetStatus summarizes fleet persistence for operator endpoints.
type FleetStatus struct {
	Dir         string `json:"dir"`
	FsyncPolicy string `json:"fsyncPolicy"`
	Units       int    `json:"unitsWithRecords"`
	Verdicts    uint64 `json:"verdicts"`
	Suppressed  uint64 `json:"suppressedReplays"`
	// IncidentRounds / IncidentTransitions count journaled incident-round
	// batches and the transitions inside them.
	IncidentRounds      uint64  `json:"incidentRounds"`
	IncidentTransitions uint64  `json:"incidentTransitions"`
	Errors              uint64  `json:"errors"`
	LastError           string  `json:"lastError,omitempty"`
	Store               Metrics `json:"store"`
}

// Status implements the server's persistence provider.
func (p *FleetPersister) Status() interface{} {
	p.mu.Lock()
	st := FleetStatus{
		Dir:                 p.st.Dir(),
		FsyncPolicy:         p.st.Policy().String(),
		Units:               len(p.durable),
		Verdicts:            p.verdicts,
		Suppressed:          p.suppressed,
		IncidentRounds:      p.incidentRounds,
		IncidentTransitions: p.incidentTrans,
		Errors:              p.errors,
		LastError:           p.lastErr,
	}
	p.mu.Unlock()
	st.Store = p.st.Metrics()
	return st
}
