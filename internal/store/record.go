// Package store is DBCatcher's embedded durable state subsystem: an
// append-only, CRC32-checked, segmented write-ahead log for high-rate
// records (verdicts, DBA feedback, ingestion counters, threshold swaps)
// plus atomic point-in-time snapshots for the online judge's low-rate
// state (learned thresholds, flexible-window position, ring tails).
//
// The subsystem is dependency-free (standard library only) and built for
// crash recovery over refusal: a torn final record, a bad checksum, an
// empty segment, or a corrupt snapshot all recover to the longest valid
// prefix — Open never refuses to start over damage a crash can cause.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RecordType tags a WAL record's payload layout.
type RecordType uint8

const (
	// RecVerdict is one emitted judgment verdict (with Health).
	RecVerdict RecordType = 1
	// RecFeedback is one DBA-marked judgment record.
	RecFeedback RecordType = 2
	// RecCounters is a cumulative ingestion/self-healing counter sample.
	RecCounters RecordType = 3
	// RecThresholds is an applied judgment-threshold swap.
	RecThresholds RecordType = 4
	// RecRelearn is a relearning-supervisor lifecycle transition.
	RecRelearn RecordType = 5
	// RecUnitVerdict is one fleet unit's emitted verdict: the RecVerdict
	// payload prefixed with the unit index, so a single multiplexed WAL
	// persists every unit's verdict stream in one data directory.
	RecUnitVerdict RecordType = 6
	// RecIncident is one fleet round's batch of incident-lifecycle
	// transitions (open/update/close) from the incident aggregator. Batching
	// per round makes the record the atomicity unit replay needs: a crash
	// can lose whole rounds off the tail, never tear one.
	RecIncident RecordType = 7
	// RecEpoch is a primary-role fencing-epoch adoption: a node appends one
	// when it takes (or retakes) the primary role of a replicated pair. The
	// epoch is strictly monotonic across the pair's history, so a record
	// stream always proves which writer was most recently legitimate.
	RecEpoch RecordType = 8
)

// Decoder sanity bounds: a record claiming more than these is corrupt, not
// big. They keep a fuzzed or damaged length prefix from driving huge
// allocations during recovery.
const (
	maxStates      = 1 << 12 // databases per verdict
	maxAlphas      = 1 << 12 // KPIs per threshold set
	maxUnits       = 1 << 20 // fleet units per multiplexed WAL
	maxCount       = 1 << 56 // any persisted counter/tick value
	maxTransitions = 1 << 16 // incident transitions per round record
)

// VerdictRecord mirrors monitor.Verdict with storage-plain fields.
type VerdictRecord struct {
	Tick       int
	Start      int
	Size       int
	AbnormalDB int // -1 when no database is abnormal
	Expansions int
	GapCells   int
	Abnormal   bool
	Health     uint8
	States     []uint8
}

// FeedbackRecord mirrors feedback.Record.
type FeedbackRecord struct {
	Start     int
	Size      int
	Predicted bool
	Actual    bool
}

// CountersRecord is a cumulative sample of the judge's health counters.
type CountersRecord struct {
	GapCells         int
	MissedTicks      int
	Deactivations    int
	Reactivations    int
	DegradedVerdicts int
	SkippedRounds    int
}

// ThresholdsRecord is an applied threshold swap and the tick it took
// effect at.
type ThresholdsRecord struct {
	Tick         int
	Alpha        []float64
	Theta        float64
	MaxTolerance int
}

// RelearnRecord is one relearning-supervisor lifecycle transition
// (started/failed/rejected/shadowing/promoted/rolled back). The persist
// layer stores non-finite scores as -1 (every real score is non-negative);
// the free-text failure reason is not persisted.
type RelearnRecord struct {
	Tick           int
	Attempt        int
	TrainRecords   int
	HoldoutRecords int
	Event          uint8
	Fitness        float64
	Baseline       float64
	FlipRate       float64
}

// UnitVerdictRecord is one fleet unit's verdict in a multiplexed WAL.
type UnitVerdictRecord struct {
	Unit    int
	Verdict VerdictRecord
}

// IncidentTransition is one incident-lifecycle mutation with
// storage-plain fields; Event is incident.TransOpen/Update/Close. KPIs is
// the deviating-KPI bitmask, stored fixed-width (the full 64 bits are
// meaningful, so uvarint's plausibility ceiling would reject high bits).
type IncidentTransition struct {
	Event     uint8
	ID        uint64
	Cluster   uint64
	Unit      int
	DB        int
	KPIs      uint64
	FirstTick int
	LastTick  int
	Count     int
}

// IncidentRecord batches every incident transition one fleet round
// produced, keyed by the round tick — the aggregator's rehydration
// horizon.
type IncidentRecord struct {
	RoundTick   int
	Transitions []IncidentTransition
}

// EpochRecord is one fencing-epoch adoption. Epoch starts at 1 for the
// first primary and increases by at least 1 per promotion; Tick is the
// newest durable collection tick at adoption time (0 on a fresh store).
type EpochRecord struct {
	Epoch uint64
	Tick  int
}

// Record is the tagged union carried by one WAL frame; Type selects which
// member is meaningful.
type Record struct {
	Type        RecordType
	Verdict     VerdictRecord
	Feedback    FeedbackRecord
	Counters    CountersRecord
	Thresholds  ThresholdsRecord
	Relearn     RelearnRecord
	UnitVerdict UnitVerdictRecord
	Incident    IncidentRecord
	Epoch       EpochRecord
}

// SeqRecord is a replayed record with its log sequence number (1-based,
// monotonically increasing across segments).
type SeqRecord struct {
	Seq uint64
	Record
}

// validate rejects records the strict decoder would refuse: appending one
// would poison recovery (replay treats an undecodable payload as corruption
// and truncates the log there), so the append path fails fast instead.
func (r *Record) validate() error {
	checkCount := func(name string, v int) error {
		if v < 0 || uint64(v) >= maxCount {
			return fmt.Errorf("store: %s %d out of range", name, v)
		}
		return nil
	}
	checkFloat := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("store: non-finite %s", name)
		}
		return nil
	}
	validateVerdict := func(v *VerdictRecord) error {
		if len(v.States) > maxStates {
			return fmt.Errorf("store: %d states exceeds the %d limit", len(v.States), maxStates)
		}
		if v.AbnormalDB < -1 || v.AbnormalDB >= maxStates {
			return fmt.Errorf("store: abnormal db %d out of range", v.AbnormalDB)
		}
		for _, f := range []struct {
			name string
			v    int
		}{{"tick", v.Tick}, {"start", v.Start}, {"size", v.Size}, {"expansions", v.Expansions}, {"gap cells", v.GapCells}} {
			if err := checkCount(f.name, f.v); err != nil {
				return err
			}
		}
		return nil
	}
	switch r.Type {
	case RecVerdict:
		return validateVerdict(&r.Verdict)
	case RecUnitVerdict:
		u := &r.UnitVerdict
		if u.Unit < 0 || u.Unit >= maxUnits {
			return fmt.Errorf("store: unit %d out of range", u.Unit)
		}
		return validateVerdict(&u.Verdict)
	case RecFeedback:
		if err := checkCount("start", r.Feedback.Start); err != nil {
			return err
		}
		return checkCount("size", r.Feedback.Size)
	case RecCounters:
		c := &r.Counters
		for _, f := range []struct {
			name string
			v    int
		}{{"gap cells", c.GapCells}, {"missed ticks", c.MissedTicks}, {"deactivations", c.Deactivations},
			{"reactivations", c.Reactivations}, {"degraded verdicts", c.DegradedVerdicts}, {"skipped rounds", c.SkippedRounds}} {
			if err := checkCount(f.name, f.v); err != nil {
				return err
			}
		}
	case RecThresholds:
		t := &r.Thresholds
		if len(t.Alpha) > maxAlphas {
			return fmt.Errorf("store: %d alphas exceeds the %d limit", len(t.Alpha), maxAlphas)
		}
		if err := checkCount("tick", t.Tick); err != nil {
			return err
		}
		if err := checkCount("max tolerance", t.MaxTolerance); err != nil {
			return err
		}
		for _, a := range t.Alpha {
			if err := checkFloat("alpha", a); err != nil {
				return err
			}
		}
		return checkFloat("theta", t.Theta)
	case RecIncident:
		in := &r.Incident
		if len(in.Transitions) > maxTransitions {
			return fmt.Errorf("store: %d transitions exceeds the %d limit", len(in.Transitions), maxTransitions)
		}
		if err := checkCount("round tick", in.RoundTick); err != nil {
			return err
		}
		for i := range in.Transitions {
			tr := &in.Transitions[i]
			if tr.Event < 1 || tr.Event > 3 {
				return fmt.Errorf("store: bad transition event %d", tr.Event)
			}
			if tr.ID == 0 || tr.ID >= maxCount {
				return fmt.Errorf("store: incident id %d out of range", tr.ID)
			}
			if tr.Cluster == 0 || tr.Cluster >= maxCount {
				return fmt.Errorf("store: cluster id %d out of range", tr.Cluster)
			}
			if tr.Unit < 0 || tr.Unit >= maxUnits {
				return fmt.Errorf("store: unit %d out of range", tr.Unit)
			}
			if tr.DB < 0 || tr.DB >= maxStates {
				return fmt.Errorf("store: db %d out of range", tr.DB)
			}
			if err := checkCount("first tick", tr.FirstTick); err != nil {
				return err
			}
			if err := checkCount("last tick", tr.LastTick); err != nil {
				return err
			}
			if tr.LastTick <= tr.FirstTick {
				return fmt.Errorf("store: incident window [%d,%d) is empty", tr.FirstTick, tr.LastTick)
			}
			if tr.Count < 1 || uint64(tr.Count) >= maxCount {
				return fmt.Errorf("store: incident count %d out of range", tr.Count)
			}
		}
	case RecRelearn:
		l := &r.Relearn
		for _, f := range []struct {
			name string
			v    int
		}{{"tick", l.Tick}, {"attempt", l.Attempt}, {"train records", l.TrainRecords}, {"holdout records", l.HoldoutRecords}} {
			if err := checkCount(f.name, f.v); err != nil {
				return err
			}
		}
		for _, f := range []struct {
			name string
			v    float64
		}{{"fitness", l.Fitness}, {"baseline", l.Baseline}, {"flip rate", l.FlipRate}} {
			if err := checkFloat(f.name, f.v); err != nil {
				return err
			}
		}
	case RecEpoch:
		e := &r.Epoch
		if e.Epoch == 0 || e.Epoch >= maxCount {
			return fmt.Errorf("store: epoch %d out of range", e.Epoch)
		}
		return checkCount("epoch tick", e.Tick)
	default:
		return fmt.Errorf("store: unknown record type %d", r.Type)
	}
	return nil
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendVerdictFields serializes the VerdictRecord field block shared by
// RecVerdict and RecUnitVerdict payloads.
func appendVerdictFields(b []byte, v *VerdictRecord) []byte {
	b = appendUvarint(b, uint64(v.Tick))
	b = appendUvarint(b, uint64(v.Start))
	b = appendUvarint(b, uint64(v.Size))
	b = appendVarint(b, int64(v.AbnormalDB))
	b = appendUvarint(b, uint64(v.Expansions))
	b = appendUvarint(b, uint64(v.GapCells))
	b = appendBool(b, v.Abnormal)
	b = append(b, v.Health)
	b = appendUvarint(b, uint64(len(v.States)))
	return append(b, v.States...)
}

// appendPayload serializes a record (type byte + fields) onto b.
func appendPayload(b []byte, r *Record) []byte {
	b = append(b, byte(r.Type))
	switch r.Type {
	case RecVerdict:
		b = appendVerdictFields(b, &r.Verdict)
	case RecUnitVerdict:
		b = appendUvarint(b, uint64(r.UnitVerdict.Unit))
		b = appendVerdictFields(b, &r.UnitVerdict.Verdict)
	case RecFeedback:
		f := &r.Feedback
		b = appendUvarint(b, uint64(f.Start))
		b = appendUvarint(b, uint64(f.Size))
		b = appendBool(b, f.Predicted)
		b = appendBool(b, f.Actual)
	case RecCounters:
		c := &r.Counters
		b = appendUvarint(b, uint64(c.GapCells))
		b = appendUvarint(b, uint64(c.MissedTicks))
		b = appendUvarint(b, uint64(c.Deactivations))
		b = appendUvarint(b, uint64(c.Reactivations))
		b = appendUvarint(b, uint64(c.DegradedVerdicts))
		b = appendUvarint(b, uint64(c.SkippedRounds))
	case RecThresholds:
		t := &r.Thresholds
		b = appendUvarint(b, uint64(t.Tick))
		b = appendUvarint(b, uint64(len(t.Alpha)))
		for _, a := range t.Alpha {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a))
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Theta))
		b = appendUvarint(b, uint64(t.MaxTolerance))
	case RecIncident:
		in := &r.Incident
		b = appendUvarint(b, uint64(in.RoundTick))
		b = appendUvarint(b, uint64(len(in.Transitions)))
		for i := range in.Transitions {
			tr := &in.Transitions[i]
			b = append(b, tr.Event)
			b = appendUvarint(b, tr.ID)
			b = appendUvarint(b, tr.Cluster)
			b = appendUvarint(b, uint64(tr.Unit))
			b = appendUvarint(b, uint64(tr.DB))
			b = binary.LittleEndian.AppendUint64(b, tr.KPIs)
			b = appendUvarint(b, uint64(tr.FirstTick))
			b = appendUvarint(b, uint64(tr.LastTick))
			b = appendUvarint(b, uint64(tr.Count))
		}
	case RecRelearn:
		l := &r.Relearn
		b = appendUvarint(b, uint64(l.Tick))
		b = appendUvarint(b, uint64(l.Attempt))
		b = appendUvarint(b, uint64(l.TrainRecords))
		b = appendUvarint(b, uint64(l.HoldoutRecords))
		b = append(b, l.Event)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(l.Fitness))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(l.Baseline))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(l.FlipRate))
	case RecEpoch:
		b = appendUvarint(b, r.Epoch.Epoch)
		b = appendUvarint(b, uint64(r.Epoch.Tick))
	default:
		panic(fmt.Sprintf("store: unknown record type %d", r.Type))
	}
	return b
}

// payloadReader walks a payload with sticky error state.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *payloadReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("store: payload truncated at offset %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *payloadReader) boolVal() bool {
	v := r.byteVal()
	if r.err == nil && v > 1 {
		r.fail("store: bad bool byte %d", v)
	}
	return v == 1
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	// Reject zero-padded (non-minimal) encodings too: every valid payload
	// must re-encode to identical bytes, or recovery stops being canonical.
	if n <= 0 || (n > 1 && r.b[r.off+n-1] == 0) {
		r.fail("store: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	if v >= maxCount {
		r.fail("store: implausible value %d", v)
		return 0
	}
	return v
}

func (r *payloadReader) count() int { return int(r.uvarint()) }

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 || (n > 1 && r.b[r.off+n-1] == 0) {
		r.fail("store: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// fixed64 reads a fixed-width little-endian uint64 (bitmask fields where
// every bit pattern is legal).
func (r *payloadReader) fixed64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("store: payload truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("store: payload truncated at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	if math.IsNaN(v) || math.IsInf(v, 0) {
		r.fail("store: non-finite float")
		return 0
	}
	return v
}

// decodePayload parses one record payload. It is strict: unknown types,
// implausible lengths, non-canonical booleans, non-finite floats, and
// trailing bytes are all errors, so a decoded record always re-encodes to
// the identical payload.
func decodePayload(b []byte) (Record, error) {
	r := payloadReader{b: b}
	var rec Record
	rec.Type = RecordType(r.byteVal())
	decodeVerdictFields := func(v *VerdictRecord) {
		v.Tick = r.count()
		v.Start = r.count()
		v.Size = r.count()
		db := r.varint()
		if r.err == nil && (db < -1 || db >= maxStates) {
			r.fail("store: bad abnormal db %d", db)
		}
		v.AbnormalDB = int(db)
		v.Expansions = r.count()
		v.GapCells = r.count()
		v.Abnormal = r.boolVal()
		v.Health = r.byteVal()
		n := r.count()
		if r.err == nil && (n > maxStates || n > len(r.b)-r.off) {
			r.fail("store: implausible state count %d", n)
		}
		if r.err == nil && n > 0 {
			v.States = append([]uint8(nil), r.b[r.off:r.off+n]...)
			r.off += n
		}
	}
	switch rec.Type {
	case RecVerdict:
		decodeVerdictFields(&rec.Verdict)
	case RecUnitVerdict:
		u := &rec.UnitVerdict
		u.Unit = r.count()
		if r.err == nil && u.Unit >= maxUnits {
			r.fail("store: unit %d out of range", u.Unit)
		}
		decodeVerdictFields(&u.Verdict)
	case RecFeedback:
		f := &rec.Feedback
		f.Start = r.count()
		f.Size = r.count()
		f.Predicted = r.boolVal()
		f.Actual = r.boolVal()
	case RecCounters:
		c := &rec.Counters
		c.GapCells = r.count()
		c.MissedTicks = r.count()
		c.Deactivations = r.count()
		c.Reactivations = r.count()
		c.DegradedVerdicts = r.count()
		c.SkippedRounds = r.count()
	case RecThresholds:
		t := &rec.Thresholds
		t.Tick = r.count()
		n := r.count()
		if r.err == nil && (n > maxAlphas || n*8 > len(r.b)-r.off) {
			r.fail("store: implausible alpha count %d", n)
		}
		if r.err == nil && n > 0 {
			t.Alpha = make([]float64, n)
			for i := range t.Alpha {
				t.Alpha[i] = r.float()
			}
		}
		t.Theta = r.float()
		t.MaxTolerance = r.count()
	case RecIncident:
		in := &rec.Incident
		in.RoundTick = r.count()
		n := r.count()
		// 16 bytes is the smallest possible encoded transition.
		if r.err == nil && (n > maxTransitions || n*16 > len(r.b)-r.off) {
			r.fail("store: implausible transition count %d", n)
		}
		if r.err == nil && n > 0 {
			in.Transitions = make([]IncidentTransition, n)
			for i := range in.Transitions {
				tr := &in.Transitions[i]
				tr.Event = r.byteVal()
				if r.err == nil && (tr.Event < 1 || tr.Event > 3) {
					r.fail("store: bad transition event %d", tr.Event)
				}
				tr.ID = r.uvarint()
				tr.Cluster = r.uvarint()
				if r.err == nil && (tr.ID == 0 || tr.Cluster == 0) {
					r.fail("store: zero incident/cluster id")
				}
				tr.Unit = r.count()
				if r.err == nil && tr.Unit >= maxUnits {
					r.fail("store: unit %d out of range", tr.Unit)
				}
				tr.DB = r.count()
				if r.err == nil && tr.DB >= maxStates {
					r.fail("store: db %d out of range", tr.DB)
				}
				tr.KPIs = r.fixed64()
				tr.FirstTick = r.count()
				tr.LastTick = r.count()
				if r.err == nil && tr.LastTick <= tr.FirstTick {
					r.fail("store: incident window [%d,%d) is empty", tr.FirstTick, tr.LastTick)
				}
				tr.Count = r.count()
				if r.err == nil && tr.Count < 1 {
					r.fail("store: incident count %d out of range", tr.Count)
				}
			}
		}
	case RecRelearn:
		l := &rec.Relearn
		l.Tick = r.count()
		l.Attempt = r.count()
		l.TrainRecords = r.count()
		l.HoldoutRecords = r.count()
		l.Event = r.byteVal()
		l.Fitness = r.float()
		l.Baseline = r.float()
		l.FlipRate = r.float()
	case RecEpoch:
		e := &rec.Epoch
		e.Epoch = r.uvarint()
		if r.err == nil && e.Epoch == 0 {
			r.fail("store: zero epoch")
		}
		e.Tick = r.count()
	default:
		return rec, fmt.Errorf("store: unknown record type %d", rec.Type)
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.off != len(b) {
		return rec, fmt.Errorf("store: %d trailing payload bytes", len(b)-r.off)
	}
	return rec, nil
}
