package store

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeRecord drives the strict WAL payload decoder with arbitrary
// bytes. Two properties must hold for any input: decoding never panics, and
// any payload that decodes successfully re-encodes to the identical bytes
// (the decoder is strict enough to be canonical — this is what makes
// recovery deterministic).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range []Record{
		{Type: RecVerdict, Verdict: VerdictRecord{
			Tick: 40, Start: 20, Size: 20, AbnormalDB: 3, Expansions: 1,
			GapCells: 2, Abnormal: true, Health: 1, States: []uint8{0, 0, 0, 2, 0},
		}},
		{Type: RecVerdict, Verdict: VerdictRecord{Tick: 1, AbnormalDB: -1}},
		{Type: RecFeedback, Feedback: FeedbackRecord{Start: 20, Size: 20, Predicted: true}},
		{Type: RecCounters, Counters: CountersRecord{GapCells: 7, SkippedRounds: 1}},
		{Type: RecThresholds, Thresholds: ThresholdsRecord{
			Tick: 60, Alpha: []float64{0.65, 0.7}, Theta: 0.25, MaxTolerance: 2,
		}},
		{Type: RecRelearn, Relearn: RelearnRecord{
			Tick: 120, Attempt: 2, TrainRecords: 35, HoldoutRecords: 15,
			Event: 5, Fitness: 0.91, Baseline: 0.88, FlipRate: 0.05,
		}},
		{Type: RecRelearn, Relearn: RelearnRecord{
			Tick: 80, Attempt: 1, Event: 2, Fitness: -1, Baseline: -1, FlipRate: -1,
		}},
		{Type: RecUnitVerdict, UnitVerdict: UnitVerdictRecord{
			Unit: 17, Verdict: VerdictRecord{
				Tick: 40, Start: 20, Size: 20, AbnormalDB: 1, Expansions: 1,
				GapCells: 3, Abnormal: true, Health: 2, States: []uint8{0, 2, 0},
			},
		}},
		{Type: RecUnitVerdict, UnitVerdict: UnitVerdictRecord{Verdict: VerdictRecord{Tick: 1, AbnormalDB: -1}}},
		{Type: RecIncident, Incident: IncidentRecord{RoundTick: 120, Transitions: []IncidentTransition{
			{Event: 1, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: 1 << 2, FirstTick: 100, LastTick: 120, Count: 1},
			{Event: 2, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: 1 << 2, FirstTick: 100, LastTick: 140, Count: 2},
		}}},
		{Type: RecIncident, Incident: IncidentRecord{RoundTick: 172, Transitions: []IncidentTransition{
			// Full-width KPI bitmask: every bit is legal in the fixed64 field.
			{Event: 3, ID: 9, Cluster: 4, Unit: 31, DB: 0, KPIs: ^uint64(0), FirstTick: 0, LastTick: 8, Count: 3},
		}}},
		{Type: RecIncident, Incident: IncidentRecord{RoundTick: 0}},
		{Type: RecEpoch, Epoch: EpochRecord{Epoch: 1, Tick: 0}},
		{Type: RecEpoch, Epoch: EpochRecord{Epoch: 7, Tick: 311}},
	} {
		f.Add(appendPayload(nil, &r))
	}
	// Adversarial seeds: unknown type, truncated varint, huge length claim,
	// unit index past the maxUnits bound, zero epoch.
	f.Add([]byte{})
	f.Add([]byte{9, 1, 2, 3})
	f.Add([]byte{byte(RecEpoch), 0, 0})
	f.Add([]byte{byte(RecEpoch), 1, 1, 9}) // trailing byte
	f.Add([]byte{byte(RecVerdict), 0xff})
	f.Add([]byte{byte(RecThresholds), 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{byte(RecUnitVerdict), 0x80, 0x80, 0x41, 1, 1, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{byte(RecIncident), 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{byte(RecIncident), 120, 1, 0, 1, 1, 0, 2}) // zero event byte

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodePayload(payload)
		if err != nil {
			return
		}
		if err := rec.validate(); err != nil {
			t.Fatalf("decoded record fails append-time validation: %v\npayload %x", err, payload)
		}
		re := appendPayload(nil, &rec)
		if !bytes.Equal(re, payload) {
			t.Fatalf("re-encode mismatch:\n  in  %x\n  out %x", payload, re)
		}
		rec2, err := decodePayload(re)
		if err != nil || !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("second decode diverged: %v", err)
		}
	})
}
