// Persister bridges the detector stack onto the store: it implements
// monitor.Persister (verdict + threshold hooks) and feedback.Journal
// (judgment-record journaling), decides the snapshot cadence, and dedupes
// verdicts the detector regenerates while catching up after a restart.
package store

import (
	"fmt"
	"math"
	"sync"

	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/relearn"
	"dbcatcher/internal/window"
)

// ----- Recovered interpretation helpers -----

func (r *Recovered) snapshotSeq() uint64 {
	if r == nil || r.Snapshot == nil {
		return 0
	}
	return r.Snapshot.Seq
}

// MonitorState assembles the judge state to restore: the snapshot's
// capture with any post-snapshot threshold swaps (replayed from the WAL)
// applied on top. It returns nil when nothing resumable survived.
func (r *Recovered) MonitorState() *monitor.PersistentState {
	if r == nil || r.Snapshot == nil || r.Snapshot.Monitor == nil {
		return nil
	}
	st := *r.Snapshot.Monitor
	for _, rec := range r.Records {
		if rec.Seq > r.snapshotSeq() && rec.Type == RecThresholds {
			st.Thresholds = window.Thresholds{
				Alpha:        append([]float64(nil), rec.Thresholds.Alpha...),
				Theta:        rec.Thresholds.Theta,
				MaxTolerance: rec.Thresholds.MaxTolerance,
			}
		}
	}
	return &st
}

// LatestThresholds returns the newest threshold swap on record (snapshot
// or WAL), for seeding a judge when no full monitor state survived. nil
// when none exists.
func (r *Recovered) LatestThresholds() *window.Thresholds {
	if r == nil {
		return nil
	}
	var out *window.Thresholds
	if r.Snapshot != nil && r.Snapshot.Monitor != nil {
		t := r.Snapshot.Monitor.Thresholds.Clone()
		out = &t
	}
	for _, rec := range r.Records {
		if rec.Seq > r.snapshotSeq() && rec.Type == RecThresholds {
			out = &window.Thresholds{
				Alpha:        append([]float64(nil), rec.Thresholds.Alpha...),
				Theta:        rec.Thresholds.Theta,
				MaxTolerance: rec.Thresholds.MaxTolerance,
			}
		}
	}
	return out
}

// FeedbackRecords returns the recovered judgment-record history: the
// snapshot's feedback ring plus post-snapshot WAL appends, oldest first.
func (r *Recovered) FeedbackRecords() []feedback.Record {
	if r == nil {
		return nil
	}
	var out []feedback.Record
	if r.Snapshot != nil {
		for _, f := range r.Snapshot.Feedback {
			out = append(out, feedback.Record{Start: f.Start, Size: f.Size, Predicted: f.Predicted, Actual: f.Actual})
		}
	}
	for _, rec := range r.Records {
		if rec.Seq > r.snapshotSeq() && rec.Type == RecFeedback {
			f := rec.Feedback
			out = append(out, feedback.Record{Start: f.Start, Size: f.Size, Predicted: f.Predicted, Actual: f.Actual})
		}
	}
	return out
}

// VerdictHistory converts every verdict record still on disk (sequence
// order) back to monitor verdicts, for re-seeding the API's verdict
// buffer. How far back it reaches is bounded by segment retention.
func (r *Recovered) VerdictHistory() []monitor.Verdict {
	if r == nil {
		return nil
	}
	var out []monitor.Verdict
	for _, rec := range r.Records {
		if rec.Type == RecVerdict {
			out = append(out, recordVerdict(rec.Verdict))
		}
	}
	return out
}

// ResumeTick is the collection tick the detector resumes ingesting at (the
// snapshot's position; 0 means start from scratch).
func (r *Recovered) ResumeTick() int {
	if r == nil || r.Snapshot == nil || r.Snapshot.Monitor == nil {
		return 0
	}
	return r.Snapshot.Monitor.Tick
}

// DurableTick is the newest tick any persisted verdict covers. While the
// resumed detector catches up from ResumeTick to DurableTick it regenerates
// verdicts that are already durable; the Persister suppresses re-appending
// them and callers should suppress re-publishing them.
func (r *Recovered) DurableTick() int {
	t := r.ResumeTick()
	if r != nil {
		for _, rec := range r.Records {
			if rec.Type == RecVerdict && rec.Verdict.Tick > t {
				t = rec.Verdict.Tick
			}
		}
	}
	return t
}

// LatestEpoch is the newest durably adopted fencing epoch recoverable from
// disk — the snapshot's stamp or any later RecEpoch record. A promoting
// node adopts LatestEpoch()+1.
func (r *Recovered) LatestEpoch() uint64 {
	if r == nil {
		return 0
	}
	var e uint64
	if r.Snapshot != nil {
		e = r.Snapshot.Epoch
	}
	for _, rec := range r.Records {
		if rec.Type == RecEpoch && rec.Epoch.Epoch > e {
			e = rec.Epoch.Epoch
		}
	}
	return e
}

// RelearnEvents returns every relearn lifecycle record still on disk, in
// sequence order. How far back it reaches is bounded by segment retention.
func (r *Recovered) RelearnEvents() []RelearnRecord {
	if r == nil {
		return nil
	}
	var out []RelearnRecord
	for _, rec := range r.Records {
		if rec.Type == RecRelearn {
			out = append(out, rec.Relearn)
		}
	}
	return out
}

// LastCounters returns the newest persisted health-counter sample.
func (r *Recovered) LastCounters() CountersRecord {
	var c CountersRecord
	if r == nil {
		return c
	}
	if r.Snapshot != nil {
		c = r.Snapshot.Counters
	}
	for _, rec := range r.Records {
		if rec.Seq > r.snapshotSeq() && rec.Type == RecCounters {
			c = rec.Counters
		}
	}
	return c
}

// ----- record <-> domain conversions -----

func verdictRecord(v *monitor.Verdict) VerdictRecord {
	states := make([]uint8, len(v.States))
	for i, s := range v.States {
		states[i] = uint8(s)
	}
	return VerdictRecord{
		Tick:       v.Tick,
		Start:      v.Start,
		Size:       v.Size,
		AbnormalDB: v.AbnormalDB,
		Expansions: v.Expansions,
		GapCells:   v.GapCells,
		Abnormal:   v.Abnormal,
		Health:     uint8(v.Health),
		States:     states,
	}
}

func recordVerdict(r VerdictRecord) monitor.Verdict {
	var v monitor.Verdict
	v.Tick = r.Tick
	v.Start = r.Start
	v.Size = r.Size
	v.AbnormalDB = r.AbnormalDB
	v.Expansions = r.Expansions
	v.GapCells = r.GapCells
	v.Abnormal = r.Abnormal
	v.Health = detect.Health(r.Health)
	if len(r.States) > 0 {
		v.States = make([]window.State, len(r.States))
		for i, s := range r.States {
			v.States[i] = window.State(s)
		}
	}
	return v
}

func countersRecord(h monitor.HealthStats) CountersRecord {
	return CountersRecord{
		GapCells:         h.GapCells,
		MissedTicks:      h.MissedTicks,
		Deactivations:    h.Deactivations,
		Reactivations:    h.Reactivations,
		DegradedVerdicts: h.DegradedVerdicts,
		SkippedRounds:    h.SkippedRounds,
	}
}

// ----- the Persister bridge -----

// Persister wires a Store into the online judge and the feedback ring. Its
// hooks are durability best-effort: append or snapshot failures are
// counted and surfaced via Status, never propagated into the detection
// path (detection keeps running on a full disk; durability degrades).
type Persister struct {
	mu sync.Mutex
	st *Store
	fb *feedback.Store // optional: feedback ring captured into snapshots

	every     int // verdicts between snapshots
	sinceSnap int

	resumeTick  int
	durableTick int

	verdicts         uint64
	suppressed       uint64
	feedbackRecs     uint64
	thresholdUpdates uint64
	relearnEvents    uint64
	errors           uint64
	lastErr          string
}

// NewPersister builds the bridge. rec (from Open) seeds the regeneration
// dedupe horizon; snapshotEvery is the number of verdicts between
// snapshots (minimum 1 — every verdict; threshold swaps always snapshot
// immediately so a catch-up window never spans one). fb may be nil.
func NewPersister(st *Store, rec *Recovered, fb *feedback.Store, snapshotEvery int) *Persister {
	if snapshotEvery < 1 {
		snapshotEvery = 1
	}
	return &Persister{
		st:          st,
		fb:          fb,
		every:       snapshotEvery,
		resumeTick:  rec.ResumeTick(),
		durableTick: rec.DurableTick(),
	}
}

// DurableTick returns the current dedupe horizon: verdicts at or below it
// are already durable (callers suppress re-publishing regenerated ones).
func (p *Persister) DurableTick() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.durableTick
}

func (p *Persister) noteErr(err error) {
	if err == nil {
		return
	}
	p.errors++
	p.lastErr = err.Error()
}

// PersistVerdict implements monitor.Persister.
func (p *Persister) PersistVerdict(v *monitor.Verdict, ctx monitor.PersistContext) {
	p.mu.Lock()
	if v.Tick <= p.durableTick {
		// Regenerated during post-restart catch-up; already on disk.
		p.suppressed++
		p.mu.Unlock()
		return
	}
	_, err := p.st.AppendVerdict(verdictRecord(v))
	p.noteErr(err)
	if err == nil {
		p.verdicts++
		p.durableTick = v.Tick
	}
	_, err = p.st.AppendCounters(countersRecord(ctx.Health()))
	p.noteErr(err)
	p.sinceSnap++
	snap := p.sinceSnap >= p.every
	if snap {
		p.sinceSnap = 0
	}
	p.mu.Unlock()
	if snap {
		p.snapshot(ctx.Export(), ctx.Health())
	}
}

// PersistThresholds implements monitor.Persister. A threshold swap is
// journaled and then immediately snapshotted: thresholds are low-rate
// state, and anchoring a snapshot at every swap guarantees the post-crash
// catch-up window never replays rounds across a threshold change.
func (p *Persister) PersistThresholds(t window.Thresholds, ctx monitor.PersistContext) {
	p.mu.Lock()
	_, err := p.st.AppendThresholds(ThresholdsRecord{
		Tick:         ctx.Tick(),
		Alpha:        append([]float64(nil), t.Alpha...),
		Theta:        t.Theta,
		MaxTolerance: t.MaxTolerance,
	})
	p.noteErr(err)
	if err == nil {
		p.thresholdUpdates++
	}
	p.sinceSnap = 0
	p.mu.Unlock()
	p.snapshot(ctx.Export(), ctx.Health())
}

// RecordRelearn implements relearn.Recorder: lifecycle transitions are
// journaled so a promotion's provenance (trigger, attempt, holdout scores,
// shadow flip rate) survives a crash. Non-finite scores are stored as -1;
// every valid score is non-negative, so the sentinel is unambiguous.
func (p *Persister) RecordRelearn(ev relearn.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.st.AppendRelearn(RelearnRecord{
		Tick:           ev.Tick,
		Attempt:        ev.Attempt,
		TrainRecords:   ev.TrainRecords,
		HoldoutRecords: ev.HoldoutRecords,
		Event:          uint8(ev.Kind),
		Fitness:        sanitizeScore(ev.Fitness),
		Baseline:       sanitizeScore(ev.Baseline),
		FlipRate:       sanitizeScore(ev.FlipRate),
	})
	p.noteErr(err)
	if err == nil {
		p.relearnEvents++
	}
}

func sanitizeScore(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// JournalRecord implements feedback.Journal.
func (p *Persister) JournalRecord(r feedback.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.st.AppendFeedback(FeedbackRecord{Start: r.Start, Size: r.Size, Predicted: r.Predicted, Actual: r.Actual})
	p.noteErr(err)
	if err == nil {
		p.feedbackRecs++
	}
}

// snapshot captures seq before gathering state so a record journaled
// concurrently is never silently dropped from recovery — at worst it is
// both inside the snapshot and replayed on top (at-least-once; the
// feedback ring tolerates a duplicate mark, losing one does real harm).
func (p *Persister) snapshot(st *monitor.PersistentState, h monitor.HealthStats) {
	seq := p.st.LastSeq()
	var fbRecs []FeedbackRecord
	if p.fb != nil {
		for _, r := range p.fb.Snapshot() {
			fbRecs = append(fbRecs, FeedbackRecord{Start: r.Start, Size: r.Size, Predicted: r.Predicted, Actual: r.Actual})
		}
	}
	err := p.st.WriteSnapshot(SnapshotState{
		Seq:      seq,
		Monitor:  st,
		Feedback: fbRecs,
		Counters: countersRecord(h),
	})
	p.mu.Lock()
	p.noteErr(err)
	p.mu.Unlock()
}

// Flush writes a final snapshot of the judge's current state and syncs the
// WAL — the graceful-shutdown path (SIGTERM).
func (p *Persister) Flush(o *monitor.Online) error {
	p.snapshot(o.ExportState(), o.Health())
	if err := p.st.Sync(); err != nil {
		p.mu.Lock()
		p.noteErr(err)
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastErr != "" {
		return fmt.Errorf("store: persistence degraded: %s", p.lastErr)
	}
	return nil
}

// Status summarizes persistence for operator endpoints.
type Status struct {
	Dir              string  `json:"dir"`
	FsyncPolicy      string  `json:"fsyncPolicy"`
	ResumeTick       int     `json:"resumeTick"`
	DurableTick      int     `json:"durableTick"`
	Verdicts         uint64  `json:"verdicts"`
	Suppressed       uint64  `json:"suppressedReplays"`
	FeedbackRecords  uint64  `json:"feedbackRecords"`
	ThresholdUpdates uint64  `json:"thresholdUpdates"`
	RelearnEvents    uint64  `json:"relearnEvents"`
	Errors           uint64  `json:"errors"`
	LastError        string  `json:"lastError,omitempty"`
	Store            Metrics `json:"store"`
}

// Status implements the server's persistence provider.
func (p *Persister) Status() interface{} {
	p.mu.Lock()
	st := Status{
		Dir:              p.st.Dir(),
		FsyncPolicy:      p.st.Policy().String(),
		ResumeTick:       p.resumeTick,
		DurableTick:      p.durableTick,
		Verdicts:         p.verdicts,
		Suppressed:       p.suppressed,
		FeedbackRecords:  p.feedbackRecs,
		ThresholdUpdates: p.thresholdUpdates,
		RelearnEvents:    p.relearnEvents,
		Errors:           p.errors,
		LastError:        p.lastErr,
	}
	p.mu.Unlock()
	st.Store = p.st.Metrics()
	return st
}
