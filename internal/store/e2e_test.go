package store

import (
	"os"
	"reflect"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

const (
	e2eTicks     = 400
	e2eDBs       = 5
	e2eCrashTick = 257 // mid-round for the 10/30 flex config
	e2eFbCap     = 512
)

func e2eFlex() window.FlexConfig {
	return window.FlexConfig{Initial: 10, Max: 30, ExhaustState: window.Abnormal}
}

// e2eSamples builds the deterministic replay stream: a simulated unit with
// an injected stall, delivered with a few wholly-missed ticks.
func e2eSamples(t *testing.T) [][][]float64 {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "e2e", Ticks: e2eTicks, Seed: 1207, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anomaly.Inject(u, []anomaly.Event{
		{Type: anomaly.Stall, DB: 2, Start: 150, Length: 40, Magnitude: 0.9},
	}, mathx.NewRNG(7)); err != nil {
		t.Fatal(err)
	}
	samples := make([][][]float64, e2eTicks)
	for tick := 0; tick < e2eTicks; tick++ {
		if tick%89 == 17 {
			continue // collector outage: a wholly-missed tick (nil sample)
		}
		s := make([][]float64, kpi.Count)
		for k := range s {
			s[k] = make([]float64, e2eDBs)
			for d := 0; d < e2eDBs; d++ {
				s[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		samples[tick] = s
	}
	return samples
}

func e2eOnline(t *testing.T) *monitor.Online {
	t.Helper()
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       e2eFlex(),
		Workers:    1,
	}, kpi.Count, e2eDBs)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// e2eDrive pushes samples[from:to) through o, reproducing the scripted
// operator activity: after the 5th published verdict (counted across the
// whole run via *published) the thresholds are retuned, and every verdict
// with Tick > markAbove gets a DBA feedback mark.
func e2eDrive(t *testing.T, o *monitor.Online, fb *feedback.Store, samples [][][]float64, from, to int, published *int, markAbove int) []*monitor.Verdict {
	t.Helper()
	var out []*monitor.Verdict
	for tick := from; tick < to; tick++ {
		v, err := o.Push(samples[tick])
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if v == nil {
			continue
		}
		out = append(out, v)
		*published++
		if *published == 5 {
			th := o.Thresholds()
			th.Theta = 0.30
			th.Alpha[1] = 0.70
			if err := o.SetThresholds(th); err != nil {
				t.Fatal(err)
			}
		}
		if fb != nil && v.Tick > markAbove {
			fb.Add(feedback.Record{
				Start: v.Start, Size: v.Size,
				Predicted: v.Abnormal,
				Actual:    v.Start%3 == 0,
			})
		}
	}
	return out
}

func verdictValues(vs []*monitor.Verdict) []monitor.Verdict {
	out := make([]monitor.Verdict, len(vs))
	for i, v := range vs {
		out[i] = *v
		// MeanCorr is an ephemeral drift signal, not part of the durable
		// verdict record; clear it so live verdicts compare against
		// recovered history.
		out[i].MeanCorr = 0
	}
	return out
}

// TestCrashRecoveryResumesBitIdentical is the acceptance end-to-end: run a
// persisted detection stream, "crash" mid-stream by abandoning the store
// handle (no Close, no final snapshot), reopen, resume — the union of
// pre-crash and post-resume output must be bit-identical to an
// uninterrupted reference run: same verdict sequence, same thresholds, same
// feedback records.
func TestCrashRecoveryResumesBitIdentical(t *testing.T) {
	samples := e2eSamples(t)

	// Reference: the uninterrupted, non-persisted run.
	refOnline := e2eOnline(t)
	refFb := feedback.NewStore(e2eFbCap)
	refCount := 0
	refVerdicts := e2eDrive(t, refOnline, refFb, samples, 0, e2eTicks, &refCount, -1)
	if refCount < 8 {
		t.Fatalf("reference run published only %d verdicts; test needs a threshold swap plus headroom", refCount)
	}

	for _, tearTail := range []bool{false, true} {
		name := "clean tail"
		if tearTail {
			name = "torn tail"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()

			// ----- phase 1: persisted run up to the crash -----
			st, rec, err := Open(dir, Options{Fsync: FsyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			o1 := e2eOnline(t)
			fb1 := feedback.NewStoreFrom(e2eFbCap, rec.FeedbackRecords())
			p1 := NewPersister(st, rec, fb1, 3)
			o1.SetPersister(p1)
			fb1.SetJournal(p1)
			count := 0
			pre := e2eDrive(t, o1, fb1, samples, 0, e2eCrashTick, &count, -1)
			if count >= refCount || count < 6 {
				t.Fatalf("pre-crash run published %d verdicts (reference %d); crash tick badly placed", count, refCount)
			}
			// Crash: abandon st / o1 / fb1 with no Close and no final
			// snapshot. FsyncAlways means every append already hit disk.

			if tearTail {
				// And the final record was torn mid-write.
				seg := lastSegment(t, dir)
				f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0x55, 0x3, 0x99}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			// ----- phase 2: reopen and resume -----
			st2, rec2, err := Open(dir, Options{Fsync: FsyncAlways})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if tearTail && !st2.Metrics().TornTail {
				t.Fatal("torn tail not detected")
			}
			ms := rec2.MonitorState()
			if ms == nil {
				t.Fatal("no resumable monitor state recovered")
			}
			o2 := e2eOnline(t)
			if err := o2.RestoreState(ms); err != nil {
				t.Fatalf("restore: %v", err)
			}
			fb2 := feedback.NewStoreFrom(e2eFbCap, rec2.FeedbackRecords())
			p2 := NewPersister(st2, rec2, fb2, 3)
			o2.SetPersister(p2)
			fb2.SetJournal(p2)

			resume := rec2.ResumeTick()
			durable := rec2.DurableTick()
			if resume <= 0 || resume > e2eCrashTick {
				t.Fatalf("resume tick %d outside (0, %d]", resume, e2eCrashTick)
			}
			if durable < resume {
				t.Fatalf("durable tick %d below resume tick %d", durable, resume)
			}

			// The resumed run re-ingests from the snapshot position. The
			// scripted threshold swap must not re-fire (it is already in
			// the restored state), so the published counter resumes past 5;
			// regenerated verdicts (Tick <= durable) were already marked
			// pre-crash and must not be re-marked.
			count2 := 6
			post := e2eDrive(t, o2, fb2, samples, resume, e2eTicks, &count2, durable)

			// Regenerated catch-up verdicts must be bit-identical to what
			// the pre-crash run published for those rounds.
			preVals := verdictValues(pre)
			for _, v := range post {
				if v.Tick > durable {
					continue
				}
				found := false
				for _, pv := range preVals {
					if pv.Tick == v.Tick {
						found = true
						got := *v
						got.MeanCorr = 0 // ephemeral, stripped by verdictValues
						if !reflect.DeepEqual(pv, got) {
							t.Fatalf("regenerated verdict at tick %d diverged:\n pre  %+v\n post %+v", v.Tick, pv, *v)
						}
					}
				}
				if !found {
					t.Fatalf("catch-up produced a verdict at tick %d the pre-crash run never published", v.Tick)
				}
			}

			// Flush (graceful shutdown) and reopen once more: the full
			// durable verdict history must equal the reference sequence.
			if err := p2.Flush(o2); err != nil {
				t.Fatalf("flush: %v", err)
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
			st3, rec3, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st3.Close()

			gotVerdicts := rec3.VerdictHistory()
			wantVerdicts := verdictValues(refVerdicts)
			if len(gotVerdicts) != len(wantVerdicts) {
				t.Fatalf("durable history holds %d verdicts, reference published %d", len(gotVerdicts), len(wantVerdicts))
			}
			for i := range wantVerdicts {
				if !reflect.DeepEqual(gotVerdicts[i], wantVerdicts[i]) {
					t.Fatalf("verdict %d mismatch:\n got  %+v\n want %+v", i, gotVerdicts[i], wantVerdicts[i])
				}
			}

			// Thresholds: the resumed judge and the recovered store must
			// both hold the reference's retuned set.
			if got, want := o2.Thresholds(), refOnline.Thresholds(); !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed thresholds %+v, want %+v", got, want)
			}
			if th := rec3.LatestThresholds(); th == nil || !reflect.DeepEqual(*th, refOnline.Thresholds()) {
				t.Fatalf("recovered thresholds %+v, want %+v", th, refOnline.Thresholds())
			}

			// Feedback records: identical sequence, no loss, no duplicates.
			if got, want := fb2.Snapshot(), refFb.Snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("feedback records diverged:\n got  %+v\n want %+v", got, want)
			}
			if got, want := rec3.FeedbackRecords(), refFb.Snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered feedback records diverged:\n got  %+v\n want %+v", got, want)
			}

			// Health counters converge to the reference's.
			gotH, wantH := o2.Health(), refOnline.Health()
			if gotH.GapCells != wantH.GapCells || gotH.MissedTicks != wantH.MissedTicks ||
				gotH.SkippedRounds != wantH.SkippedRounds || gotH.DegradedVerdicts != wantH.DegradedVerdicts {
				t.Fatalf("health diverged:\n got  %+v\n want %+v", gotH, wantH)
			}
		})
	}
}

// TestPersisterSuppressesRegeneratedVerdicts pins the dedupe bookkeeping:
// catch-up replays must be counted as suppressed, not re-appended.
func TestPersisterSuppressesRegeneratedVerdicts(t *testing.T) {
	samples := e2eSamples(t)
	dir := t.TempDir()

	st, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := e2eOnline(t)
	// A lagging snapshot cadence leaves verdicts in the WAL beyond the
	// snapshot position, so the restart has rounds to regenerate.
	p := NewPersister(st, rec, nil, 7)
	o.SetPersister(p)
	count := 0
	pre := e2eDrive(t, o, nil, samples, 0, e2eCrashTick, &count, -1)
	st.Close() // graceful close, but no final Flush snapshot

	st2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	o2 := e2eOnline(t)
	if err := o2.RestoreState(rec2.MonitorState()); err != nil {
		t.Fatal(err)
	}
	p2 := NewPersister(st2, rec2, nil, 1)
	o2.SetPersister(p2)
	count2 := 6
	post := e2eDrive(t, o2, nil, samples, rec2.ResumeTick(), e2eTicks, &count2, 0)

	status, ok := p2.Status().(Status)
	if !ok {
		t.Fatalf("Status returned %T", p2.Status())
	}
	// rec2's horizons are recovery-time constants, so they classify the
	// post-restart stream exactly: at or below DurableTick is a replay.
	regenerated := 0
	for _, v := range post {
		if v.Tick <= rec2.DurableTick() {
			regenerated++
		}
	}
	if regenerated == 0 {
		t.Fatalf("resume produced no catch-up verdicts (resume %d, durable %d)", rec2.ResumeTick(), rec2.DurableTick())
	}
	if got := int(status.Suppressed); got != regenerated {
		t.Fatalf("suppressed replays = %d, want %d", got, regenerated)
	}
	if got := int(status.Verdicts); got != len(post)-regenerated {
		t.Fatalf("fresh appends = %d, want %d (pre-crash run had published %d)", got, len(post)-regenerated, len(pre))
	}
}
