package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// crashCase is one simulated crash signature applied to a healthy data
// directory. Every case must recover to a usable store: Open succeeds, the
// surviving prefix is intact, appends work, and a second Open sees a clean
// directory again.
type crashCase struct {
	name string
	// corrupt damages the directory after the healthy history is written.
	corrupt func(t *testing.T, dir string)
	// wantRecords is the record count recovery must surface (-1 = don't
	// check an exact count, verify returns instead).
	wantRecords int
	// wantSnapshot is whether a snapshot must survive.
	wantSnapshot bool
	// check inspects the post-recovery metrics and recovered state.
	check func(t *testing.T, dir string, m Metrics, rec *Recovered)
}

// seedHealthyDir writes a known history: a snapshot at seq 3, then three
// more counter records (seqs 4..6) in the live segment.
func seedHealthyDir(t *testing.T, dir string) {
	t.Helper()
	st, _ := openClean(t, dir, Options{Fsync: FsyncAlways})
	for i := 1; i <= 3; i++ {
		if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot(SnapshotState{Seq: 3, Counters: CountersRecord{GapCells: 3}}); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 6; i++ {
		if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1].path
}

func truncateFile(t *testing.T, path string, drop int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-drop); err != nil {
		t.Fatal(err)
	}
}

func flipLastPayloadByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMatrix(t *testing.T) {
	cases := []crashCase{
		{
			name: "torn final record",
			corrupt: func(t *testing.T, dir string) {
				// A crash mid-write leaves a partial frame at the tail.
				truncateFile(t, lastSegment(t, dir), 3)
			},
			wantRecords:  5, // seq 6 lost
			wantSnapshot: true,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if !m.TornTail {
					t.Error("torn tail not reported")
				}
				if m.TruncatedBytes == 0 {
					t.Error("no bytes truncated")
				}
			},
		},
		{
			name: "torn frame header",
			corrupt: func(t *testing.T, dir string) {
				seg := lastSegment(t, dir)
				f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				// 4 bytes: less than a frame header.
				if _, err := f.Write([]byte{9, 9, 9, 9}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			wantRecords:  6,
			wantSnapshot: true,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if !m.TornTail || m.TruncatedBytes != 4 {
					t.Errorf("torn header: tail=%v truncated=%d", m.TornTail, m.TruncatedBytes)
				}
			},
		},
		{
			name: "bad CRC on final record",
			corrupt: func(t *testing.T, dir string) {
				flipLastPayloadByte(t, lastSegment(t, dir))
			},
			wantRecords:  5,
			wantSnapshot: true,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if m.CRCErrors != 1 {
					t.Errorf("CRCErrors = %d, want 1", m.CRCErrors)
				}
			},
		},
		{
			name: "corruption mid-log drops later segments",
			corrupt: func(t *testing.T, dir string) {
				// Corrupt the FIRST segment; the second (live) segment's
				// records can no longer be trusted to follow contiguously
				// and must be dropped.
				segs, err := listSegments(dir)
				if err != nil || len(segs) < 2 {
					t.Fatalf("want >= 2 segments, have %d (err=%v)", len(segs), err)
				}
				flipLastPayloadByte(t, segs[0].path)
			},
			wantRecords: -1,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if m.DroppedSegments == 0 {
					t.Error("orphaned segment not dropped")
				}
				for _, r := range rec.Records {
					if r.Counters.GapCells > 2 {
						t.Errorf("record %d survived past the corruption point", r.Seq)
					}
				}
			},
		},
		{
			name: "empty segment removed",
			corrupt: func(t *testing.T, dir string) {
				// A crash between segment creation and the first append.
				if err := os.WriteFile(segmentPath(dir, 7), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords:  6,
			wantSnapshot: true,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if _, err := os.Stat(segmentPath(dir, 7)); !os.IsNotExist(err) {
					t.Error("empty leftover segment not removed")
				}
			},
		},
		{
			name: "stale snapshot with newer WAL",
			corrupt: func(t *testing.T, dir string) {
				// Nothing to damage: the seeded dir already has a snapshot
				// at seq 3 and WAL records through seq 6. Recovery must
				// surface both so the deltas replay on top.
			},
			wantRecords:  6,
			wantSnapshot: true,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if rec.Snapshot.Seq != 3 {
					t.Errorf("snapshot seq = %d, want 3", rec.Snapshot.Seq)
				}
				newer := 0
				for _, r := range rec.Records {
					if r.Seq > rec.Snapshot.Seq {
						newer++
					}
				}
				if newer != 3 {
					t.Errorf("%d post-snapshot records, want 3", newer)
				}
			},
		},
		{
			name: "corrupt snapshot degrades to WAL-only",
			corrupt: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("{half a docu"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords:  6,
			wantSnapshot: false,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if !m.SnapshotCorrupt {
					t.Error("snapshot corruption not reported")
				}
			},
		},
		{
			name: "wrong-schema snapshot ignored",
			corrupt: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte(`{"schema":"somebody-else/9"}`), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords:  6,
			wantSnapshot: false,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if !m.SnapshotCorrupt {
					t.Error("foreign snapshot not reported as corrupt")
				}
			},
		},
		{
			name: "leftover snapshot temp file removed",
			corrupt: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("{torn"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords:  6,
			wantSnapshot: true,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				// The tmp must be gone so a future rename can't resurrect it.
			},
		},
		{
			name: "insane length prefix treated as corruption",
			corrupt: func(t *testing.T, dir string) {
				seg := lastSegment(t, dir)
				f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				var hdr [8]byte
				binary.LittleEndian.PutUint32(hdr[0:], maxRecordBytes+1)
				binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(nil))
				if _, err := f.Write(hdr[:]); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			wantRecords:  6,
			wantSnapshot: true,
			check: func(t *testing.T, dir string, m Metrics, rec *Recovered) {
				if !m.TornTail {
					t.Error("insane length not treated as tail damage")
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// Tiny segments so the healthy history spans multiple files.
			seedSmall := Options{Fsync: FsyncAlways, SegmentBytes: 40, RetainSegments: 100}
			st, _ := openClean(t, dir, seedSmall)
			for i := 1; i <= 3; i++ {
				if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.WriteSnapshot(SnapshotState{Seq: 3, Counters: CountersRecord{GapCells: 3}}); err != nil {
				t.Fatal(err)
			}
			for i := 4; i <= 6; i++ {
				if _, err := st.AppendCounters(CountersRecord{GapCells: i}); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			tc.corrupt(t, dir)

			// Recovery must succeed, whatever the damage.
			st2, rec := openClean(t, dir, Options{Fsync: FsyncAlways})
			m := st2.Metrics()
			if tc.wantRecords >= 0 && len(rec.Records) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(rec.Records), tc.wantRecords)
			}
			if tc.wantRecords >= 0 && (rec.Snapshot != nil) != tc.wantSnapshot {
				t.Fatalf("snapshot survived = %v, want %v", rec.Snapshot != nil, tc.wantSnapshot)
			}
			if tc.check != nil {
				tc.check(t, dir, m, rec)
			}
			// Surviving records form a contiguous 1-based prefix ordering.
			for i := 1; i < len(rec.Records); i++ {
				if rec.Records[i].Seq != rec.Records[i-1].Seq+1 {
					t.Fatalf("non-contiguous recovery at index %d", i)
				}
			}
			if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !os.IsNotExist(err) {
				t.Fatal("snapshot temp file survived recovery")
			}

			// The recovered store accepts appends and a clean reopen sees
			// them: damage never leaves the directory wedged.
			seq, err := st2.AppendCounters(CountersRecord{GapCells: 99})
			if err != nil {
				t.Fatalf("post-recovery append: %v", err)
			}
			if len(rec.Records) > 0 && seq != rec.Records[len(rec.Records)-1].Seq+1 {
				t.Fatalf("post-recovery seq %d does not extend recovered tail %d", seq, rec.Records[len(rec.Records)-1].Seq)
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
			st3, rec3 := openClean(t, dir, Options{})
			m3 := st3.Metrics()
			if m3.TornTail || m3.CRCErrors > 0 || m3.TruncatedBytes > 0 {
				t.Fatalf("second recovery still sees damage: %+v", m3)
			}
			found := false
			for _, r := range rec3.Records {
				if r.Type == RecCounters && r.Counters.GapCells == 99 && r.Seq == seq {
					found = true
				}
			}
			if !found {
				t.Fatal("post-recovery append lost on reopen")
			}
			if err := st3.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// seedHealthyDir is exercised here so the helper stays honest if cases
// change around it.
func TestSeedHealthyDir(t *testing.T) {
	dir := t.TempDir()
	seedHealthyDir(t, dir)
	_, rec := openCleanAndClose(t, dir)
	if rec.Snapshot == nil || len(rec.Records) != 6 {
		t.Fatalf("seed produced snapshot=%v records=%d", rec.Snapshot != nil, len(rec.Records))
	}
}
