package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Frame layout: u32 payload length | u32 CRC32(payload) | payload. The
// payload's first byte is the record type (see record.go).
const (
	frameHeader    = 8
	maxRecordBytes = 1 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

// segment is one closed (no longer appended-to) log file. base is the
// sequence number of its first record.
type segment struct {
	base uint64
	path string
}

func segmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix))
}

// wal is the segmented append-only log. It is not safe for concurrent use;
// Store serializes access.
type wal struct {
	dir  string
	opts Options
	m    *Metrics

	f        *os.File // active segment, created lazily on first append
	segBase  uint64
	segSize  int64
	closed   []segment // closed segments, oldest first
	nextSeq  uint64    // sequence number the next append receives
	lastSync time.Time
	dirty    bool
	buf      []byte // reusable frame scratch
	failed   error  // a write error poisons the log until reopen
}

// openWAL scans dir, replays every retained segment in order, repairs
// crash damage (truncating at the first torn or corrupt record and
// dropping any segments after it), and leaves the log ready to append.
func openWAL(dir string, opts Options, m *Metrics) (*wal, []SeqRecord, error) {
	w := &wal{dir: dir, opts: opts, m: m, nextSeq: 1}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	var recs []SeqRecord
	damaged := false
	for i, seg := range segs {
		if damaged {
			// A valid record can never follow corruption: the log is
			// contiguous, so later segments are orphaned remnants.
			if err := os.Remove(seg.path); err == nil {
				m.DroppedSegments++
			}
			continue
		}
		segRecs, truncAt, bad := replaySegment(seg, m)
		for _, r := range segRecs {
			recs = append(recs, r)
		}
		if len(segRecs) > 0 {
			w.nextSeq = segRecs[len(segRecs)-1].Seq + 1
		}
		if bad {
			damaged = true
			if fi, err := os.Stat(seg.path); err == nil && fi.Size() > truncAt {
				m.TruncatedBytes += fi.Size() - truncAt
				if err := os.Truncate(seg.path, truncAt); err != nil {
					return nil, nil, fmt.Errorf("store: truncate %s: %w", seg.path, err)
				}
			}
			if i == len(segs)-1 {
				m.TornTail = true
			}
		}
		if len(segRecs) == 0 {
			// Nothing valid in it — an empty leftover from a crash between
			// segment creation and first append, or a fully-corrupt file.
			// Remove it so the slot can be reused (the next append would
			// otherwise open an active segment colliding with this base).
			_ = os.Remove(seg.path)
			continue
		}
		w.closed = append(w.closed, seg)
	}
	m.RecoveredRecords = len(recs)
	return w, recs, nil
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segment{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// replaySegment decodes one segment file. It returns the valid records,
// the byte offset the file should be truncated to if damage was found, and
// whether it was damaged. Damage never fails recovery — the log simply
// ends at the last intact record (torn final writes are the expected crash
// signature).
func replaySegment(seg segment, m *Metrics) (recs []SeqRecord, truncAt int64, bad bool) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return nil, 0, true
	}
	off := 0
	seq := seg.base
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, int64(off), true // torn header
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecordBytes {
			return recs, int64(off), true // insane length: corruption
		}
		if len(data)-off-frameHeader < length {
			return recs, int64(off), true // torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if crc32.ChecksumIEEE(payload) != sum {
			m.CRCErrors++
			return recs, int64(off), true
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, int64(off), true
		}
		recs = append(recs, SeqRecord{Seq: seq, Record: rec})
		seq++
		off += frameHeader + length
	}
	return recs, int64(off), false
}

// append frames and writes one record, returning its sequence number.
func (w *wal) append(r *Record) (uint64, error) {
	if w.failed != nil {
		return 0, w.failed
	}
	if err := r.validate(); err != nil {
		return 0, err
	}
	w.buf = append(w.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	w.buf = appendPayload(w.buf, r)
	payload := w.buf[frameHeader:]
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("store: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(w.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:], crc32.ChecksumIEEE(payload))

	if w.f != nil && w.segSize > 0 && w.segSize+int64(len(w.buf)) > w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	if w.f == nil {
		if err := w.openSegment(); err != nil {
			return 0, err
		}
	}
	if _, err := w.f.Write(w.buf); err != nil {
		// A partial frame may be on disk; recovery's torn-record path
		// handles it. Poison the handle so callers stop appending.
		w.failed = fmt.Errorf("store: append: %w", err)
		return 0, w.failed
	}
	seq := w.nextSeq
	w.nextSeq++
	w.segSize += int64(len(w.buf))
	w.dirty = true
	w.m.Appends++

	switch w.opts.Fsync {
	case FsyncAlways:
		if err := w.sync(); err != nil {
			return seq, err
		}
	case FsyncEveryInterval:
		if time.Since(w.lastSync) >= w.opts.SyncEvery {
			if err := w.sync(); err != nil {
				return seq, err
			}
		}
	}
	return seq, nil
}

func (w *wal) openSegment() error {
	w.segBase = w.nextSeq
	// O_TRUNC: a same-base file can only be an empty or fully-corrupt
	// leftover (anything with valid records would have advanced nextSeq
	// past its base during replay).
	f, err := os.OpenFile(segmentPath(w.dir, w.segBase), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.f = f
	w.segSize = 0
	syncDir(w.dir)
	return nil
}

func (w *wal) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.closed = append(w.closed, segment{base: w.segBase, path: segmentPath(w.dir, w.segBase)})
	w.f = nil
	w.m.Rotations++
	return nil
}

func (w *wal) sync() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.failed = fmt.Errorf("store: fsync: %w", err)
		return w.failed
	}
	w.dirty = false
	w.lastSync = time.Now()
	w.m.Syncs++
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.sync()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	w.f = nil
	return err
}

// compact removes closed segments whose every record is covered by a
// snapshot (seq <= covered), always keeping the newest retain closed
// segments so recent history survives replay across restarts.
func (w *wal) compact(covered uint64, retain int) {
	if len(w.closed) <= retain {
		return
	}
	removable := w.closed[:len(w.closed)-retain]
	kept := w.closed[:0]
	for i, seg := range w.closed {
		if i < len(removable) {
			// The segment's last record is one before the next
			// segment's base (the active segment starts at segBase,
			// or nextSeq if none is open yet).
			var nextBase uint64
			if i+1 < len(w.closed) {
				nextBase = w.closed[i+1].base
			} else if w.f != nil {
				nextBase = w.segBase
			} else {
				nextBase = w.nextSeq
			}
			if nextBase > 0 && nextBase-1 <= covered {
				if os.Remove(seg.path) == nil {
					w.m.CompactedSegments++
					continue
				}
			}
		}
		kept = append(kept, seg)
	}
	w.closed = kept
	syncDir(w.dir)
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Errors are ignored: directory fsync is not supported everywhere, and the
// fallback behaviour (data durable, directory entry possibly not) degrades
// to exactly the torn-state recovery already handles.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
