package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrFenced rejects writes on a store that has observed a newer primary
// epoch: some other node has been promoted, and anything this process
// appended after that point would fork the replicated history. Fencing is
// sticky for the process lifetime — the node must restart as a follower.
var ErrFenced = errors.New("store: fenced by a newer primary epoch")

// Policy selects when WAL appends are fsynced.
type Policy int

const (
	// FsyncEveryInterval (the default) syncs at most once per SyncEvery
	// of wall time, amortizing fsync cost over a burst of appends; a
	// crash can lose up to SyncEvery of the newest records.
	FsyncEveryInterval Policy = iota
	// FsyncAlways syncs after every append: nothing acknowledged is ever
	// lost, at one fsync per record.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache (and Close). A
	// crash can lose everything since the last rotation or snapshot.
	FsyncNever
)

// ParsePolicy maps the daemon's -fsync-policy flag values.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncEveryInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncEveryInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options tunes the store. The zero value is usable: interval fsync every
// 100ms, 1MiB segments, 2 retained closed segments.
type Options struct {
	// Fsync is the WAL durability policy.
	Fsync Policy
	// SyncEvery is the FsyncEveryInterval period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes caps a segment before rotation (default 1MiB).
	SegmentBytes int64
	// RetainSegments closed segments are kept even when fully covered by
	// a snapshot, so recent record history survives restarts (default 2).
	RetainSegments int
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.RetainSegments <= 0 {
		o.RetainSegments = 2
	}
	return o
}

// Metrics counts the store's activity and what recovery found. Counters
// are cumulative for the process; recovery fields describe the last Open.
type Metrics struct {
	Appends           uint64 `json:"appends"`
	Syncs             uint64 `json:"syncs"`
	Rotations         uint64 `json:"rotations"`
	Snapshots         uint64 `json:"snapshots"`
	CompactedSegments uint64 `json:"compactedSegments"`

	RecoveredRecords int   `json:"recoveredRecords"`
	DroppedSegments  int   `json:"droppedSegments"`
	TruncatedBytes   int64 `json:"truncatedBytes"`
	CRCErrors        int   `json:"crcErrors"`
	TornTail         bool  `json:"tornTail"`
	SnapshotCorrupt  bool  `json:"snapshotCorrupt"`
}

// Recovered is everything Open could read back from the data directory.
type Recovered struct {
	// Snapshot is the last durable point-in-time capture, nil when none
	// survived.
	Snapshot *SnapshotState
	// Records are all WAL records still on disk in sequence order —
	// including ones at or below Snapshot.Seq (they are history, useful
	// for rebuilding the verdict buffer) and ones above it (state deltas
	// that must be applied on top of the snapshot).
	Records []SeqRecord
}

// Store is the durable state store: a segmented WAL plus an atomically
// replaced snapshot, in one directory. It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	wal     *wal
	metrics Metrics
	closed  bool

	epoch    uint64 // highest durably adopted fencing epoch (0 = never)
	fenced   bool   // a newer epoch exists elsewhere; writes are rejected
	fencedAt uint64 // the epoch that fenced us, for status reporting
	snapSeq  uint64 // WAL position of the live snapshot (0 = none)
	hasSnap  bool
}

// Open recovers whatever a previous process left in dir (creating it if
// needed) and returns the store ready for appends. Crash damage — torn
// final records, bad checksums, empty segments, a corrupt snapshot, a
// leftover snapshot temp file — is repaired, never fatal: Open only fails
// on environmental errors (permissions, I/O).
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	_ = os.Remove(filepath.Join(dir, snapshotTmp)) // interrupted snapshot write
	s := &Store{dir: dir, opts: opts}
	snap, corrupt := loadSnapshot(dir)
	s.metrics.SnapshotCorrupt = corrupt
	w, recs, err := openWAL(dir, opts, &s.metrics)
	if err != nil {
		return nil, nil, err
	}
	s.wal = w
	if snap != nil {
		s.snapSeq, s.hasSnap = snap.Seq, true
		s.epoch = snap.Epoch
	}
	// Epoch records are strictly monotonic, so the last one on disk (or
	// the snapshot's, if compaction dropped them all) is the current epoch.
	for _, r := range recs {
		if r.Type == RecEpoch && r.Epoch.Epoch > s.epoch {
			s.epoch = r.Epoch.Epoch
		}
	}
	return s, &Recovered{Snapshot: snap, Records: recs}, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Policy returns the configured fsync policy.
func (s *Store) Policy() Policy { return s.opts.Fsync }

func (s *Store) append(r *Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	if s.fenced {
		return 0, ErrFenced
	}
	return s.wal.append(r)
}

// AppendVerdict logs one judgment verdict.
func (s *Store) AppendVerdict(v VerdictRecord) (uint64, error) {
	return s.append(&Record{Type: RecVerdict, Verdict: v})
}

// AppendFeedback logs one DBA-marked judgment record.
func (s *Store) AppendFeedback(f FeedbackRecord) (uint64, error) {
	return s.append(&Record{Type: RecFeedback, Feedback: f})
}

// AppendCounters logs a cumulative health-counter sample.
func (s *Store) AppendCounters(c CountersRecord) (uint64, error) {
	return s.append(&Record{Type: RecCounters, Counters: c})
}

// AppendThresholds logs an applied threshold swap.
func (s *Store) AppendThresholds(t ThresholdsRecord) (uint64, error) {
	return s.append(&Record{Type: RecThresholds, Thresholds: t})
}

// AppendUnitVerdict logs one fleet unit's judgment verdict into the
// multiplexed fleet WAL.
func (s *Store) AppendUnitVerdict(u UnitVerdictRecord) (uint64, error) {
	return s.append(&Record{Type: RecUnitVerdict, UnitVerdict: u})
}

// AppendIncident logs one fleet round's incident-transition batch.
func (s *Store) AppendIncident(in IncidentRecord) (uint64, error) {
	return s.append(&Record{Type: RecIncident, Incident: in})
}

// AppendRelearn logs one relearning-supervisor lifecycle transition.
func (s *Store) AppendRelearn(l RelearnRecord) (uint64, error) {
	return s.append(&Record{Type: RecRelearn, Relearn: l})
}

// LastSeq returns the sequence number of the most recent append (0 before
// the first).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.nextSeq - 1
}

// Sync flushes buffered WAL appends to stable storage regardless of
// policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.wal.sync()
}

// WriteSnapshot atomically replaces the snapshot and compacts WAL segments
// it covers. The WAL is synced first (except under FsyncNever) so the
// snapshot never claims coverage of records less durable than itself. The
// store stamps the current fencing epoch into the snapshot so a standby
// bootstrapping from it inherits the epoch even after the RecEpoch record
// itself is compacted away.
func (s *Store) WriteSnapshot(st SnapshotState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.fenced {
		return ErrFenced
	}
	if s.opts.Fsync != FsyncNever {
		if err := s.wal.sync(); err != nil {
			return err
		}
	}
	st.Epoch = s.epoch
	if err := writeSnapshot(s.dir, &st); err != nil {
		return err
	}
	s.metrics.Snapshots++
	s.snapSeq, s.hasSnap = st.Seq, true
	s.wal.compact(st.Seq, s.opts.RetainSegments)
	return nil
}

// AdoptEpoch durably takes a fencing epoch strictly above the current one:
// the caller is about to act as primary, and the epoch record must hit
// stable storage before any write made under it, so the append is synced
// immediately regardless of policy. Tick is the newest durable collection
// tick at adoption (0 on a fresh store).
func (s *Store) AdoptEpoch(epoch uint64, tick int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.fenced {
		return ErrFenced
	}
	if epoch <= s.epoch {
		return fmt.Errorf("store: epoch %d not above current %d", epoch, s.epoch)
	}
	if _, err := s.wal.append(&Record{Type: RecEpoch, Epoch: EpochRecord{Epoch: epoch, Tick: tick}}); err != nil {
		return err
	}
	if err := s.wal.sync(); err != nil {
		return err
	}
	s.epoch = epoch
	return nil
}

// Fence marks the store demoted by a newer epoch adopted elsewhere. All
// further appends and snapshots fail with ErrFenced for the rest of the
// process lifetime. A fence at or below our own epoch is stale (we are the
// newer primary) and rejected.
func (s *Store) Fence(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.epoch {
		return fmt.Errorf("store: stale fence epoch %d (current %d)", epoch, s.epoch)
	}
	s.fenced = true
	if epoch > s.fencedAt {
		s.fencedAt = epoch
	}
	return nil
}

// SelfFence demotes the store on first-hand evidence of a peer serving at
// an epoch equal to or above our own. Unlike Fence — where an external
// poster must hold a strictly newer epoch to demote us — observing a peer
// primary at our *own* epoch already proves a fork (a partitioned double
// boot adopted the same epoch), and the only safe response is to stop
// writing on this side too. An epoch strictly below ours is a stale
// observation and rejected: we are the newer primary.
func (s *Store) SelfFence(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.epoch {
		return fmt.Errorf("store: stale self-fence epoch %d (current %d)", epoch, s.epoch)
	}
	s.fenced = true
	if epoch > s.fencedAt {
		s.fencedAt = epoch
	}
	return nil
}

// Epoch returns the current durably adopted fencing epoch (0 before the
// first adoption) and whether the store has been fenced by a newer one.
func (s *Store) Epoch() (epoch uint64, fenced bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch, s.fenced
}

// Metrics returns a copy of the activity counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// Close flushes and closes the WAL. The store rejects further appends.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.close()
}
