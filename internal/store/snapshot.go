package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dbcatcher/internal/monitor"
)

// SnapshotSchema versions the snapshot document layout.
const SnapshotSchema = "dbcatcher-store/1"

const (
	snapshotFile = "snapshot.json"
	snapshotTmp  = snapshotFile + ".tmp"
)

// SnapshotState is the point-in-time capture written atomically alongside
// the WAL: the judge's full resumable state, the feedback ring, and the
// health counters. Seq marks the WAL position the capture reflects —
// records at or below it are already folded in, records above it must be
// replayed on top.
type SnapshotState struct {
	Schema   string                   `json:"schema"`
	Seq      uint64                   `json:"seq"`
	Epoch    uint64                   `json:"epoch,omitempty"`
	Monitor  *monitor.PersistentState `json:"monitor,omitempty"`
	Feedback []FeedbackRecord         `json:"feedback,omitempty"`
	Counters CountersRecord           `json:"counters"`
}

// writeSnapshot persists st atomically: write to a temp file, fsync,
// rename over the live snapshot, fsync the directory. A crash at any point
// leaves either the old snapshot or the new one, never a torn mix.
func writeSnapshot(dir string, st *SnapshotState) error {
	st.Schema = SnapshotSchema
	buf, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("store: snapshot encode: %w", err)
	}
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// loadSnapshot reads the live snapshot. A missing file returns (nil,
// false); an unreadable or structurally invalid one returns (nil, true) —
// corruption degrades to WAL-only recovery, it never refuses startup.
func loadSnapshot(dir string) (st *SnapshotState, corrupt bool) {
	buf, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, !os.IsNotExist(err)
	}
	var s SnapshotState
	if err := json.Unmarshal(buf, &s); err != nil || s.Schema != SnapshotSchema {
		return nil, true
	}
	return &s, false
}
