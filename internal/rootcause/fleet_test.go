package rootcause

import (
	"strings"
	"testing"

	"dbcatcher/internal/incident"
)

// buildClusterReport drives a real aggregator through a correlated fault
// (unit 0 leads on KPI 2, units 1-5 follow on KPI 12) and returns the
// finalized cluster report.
func buildClusterReport(t *testing.T) *incident.ClusterReport {
	t.Helper()
	a := incident.New(incident.Config{ProximityTicks: 16, CloseAfter: 30, MaxLag: 16})
	a.ObserveRound(120, []incident.Event{
		{Unit: 0, DB: 2, KPIs: incident.KPISet(0).With(2), Start: 100, End: 120},
	})
	events := make([]incident.Event, 0, 5)
	for u := 1; u <= 5; u++ {
		events = append(events, incident.Event{Unit: u, DB: 2, KPIs: incident.KPISet(0).With(12), Start: 104, End: 124})
	}
	a.ObserveRound(124, events)
	a.Flush(400)
	_, reps := a.Page(0, 10)
	if len(reps) != 1 {
		t.Fatalf("expected one cluster report, got %d", len(reps))
	}
	return reps[0]
}

func TestAttributeFleetFindsOrigin(t *testing.T) {
	rep := buildClusterReport(t)
	fr := AttributeFleet(rep)
	if fr.ClusterID != rep.ID {
		t.Fatalf("cluster id %d, want %d", fr.ClusterID, rep.ID)
	}
	if fr.OriginUnit != 0 || fr.OriginDB != 2 || fr.OriginTick != 100 {
		t.Fatalf("origin = unit %d db %d tick %d, want unit 0 db 2 tick 100", fr.OriginUnit, fr.OriginDB, fr.OriginTick)
	}
	if fr.Spread != 6 {
		t.Fatalf("spread = %d, want 6", fr.Spread)
	}
	if len(fr.Cascade) != 1 || fr.Cascade[0].Lead != 2 || fr.Cascade[0].Lag != 12 || fr.Cascade[0].Ticks != 4 {
		t.Fatalf("cascade = %+v, want KPI 2 leads KPI 12 by 4", fr.Cascade)
	}
	for _, frag := range []string{"probable origin unit 0 db 2 at tick 100", "spread to 6 units", "cascade:", "leads"} {
		if !strings.Contains(fr.Summary, frag) {
			t.Fatalf("summary %q missing %q", fr.Summary, frag)
		}
	}
}

func TestAttributeFleetDeterministic(t *testing.T) {
	a := AttributeFleet(buildClusterReport(t))
	b := AttributeFleet(buildClusterReport(t))
	if a.Summary != b.Summary {
		t.Fatalf("attribution diverged:\n%s\n%s", a.Summary, b.Summary)
	}
}

func TestAttributeFleetEmptyCluster(t *testing.T) {
	fr := AttributeFleet(&incident.ClusterReport{ID: 7})
	if fr.OriginUnit != -1 || fr.OriginDB != -1 {
		t.Fatalf("empty cluster origin = %d/%d, want -1/-1", fr.OriginUnit, fr.OriginDB)
	}
	if !strings.Contains(fr.Summary, "no members") {
		t.Fatalf("summary %q", fr.Summary)
	}
}

func TestCascadeOrdering(t *testing.T) {
	rep := &incident.ClusterReport{
		ID: 3,
		Members: []incident.MemberReport{
			{ID: 1, Unit: 4, DB: 0, FirstTick: 50, KPIs: []string{"Com Insert"}},
		},
		Partition: incident.Partition{Units: []int{4}},
		Cascade: []incident.CascadeHint{
			{Lead: 1, Lag: 2, Ticks: 8, Share: 0.5, Samples: 2},  // evidence 1.0
			{Lead: 3, Lag: 4, Ticks: 2, Share: 0.9, Samples: 10}, // evidence 9.0
		},
	}
	fr := AttributeFleet(rep)
	if fr.Cascade[0].Lead != 3 {
		t.Fatalf("strongest hint should lead: %+v", fr.Cascade)
	}
}
