package rootcause

import (
	"strings"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func verdict(start, size int, abnormalDBs ...int) detect.Verdict {
	v := detect.Verdict{Start: start, Size: size, AbnormalDB: -1}
	v.States = make([]window.State, 5)
	for _, db := range abnormalDBs {
		v.States[db] = window.Abnormal
		v.Abnormal = true
		if v.AbnormalDB == -1 {
			v.AbnormalDB = db
		}
	}
	return v
}

func TestAnalyzerMergesAdjacentWindows(t *testing.T) {
	a := NewAnalyzer(0)
	a.Observe(verdict(0, 20), nil)
	a.Observe(verdict(20, 20, 2), nil)
	a.Observe(verdict(40, 20, 2), nil)
	a.Observe(verdict(60, 20), nil)
	incidents := a.Flush()
	if len(incidents) != 1 {
		t.Fatalf("incidents = %d", len(incidents))
	}
	inc := incidents[0]
	if inc.DB != 2 || inc.Start != 20 || inc.End != 60 || inc.Windows != 2 {
		t.Fatalf("incident = %+v", inc)
	}
	if inc.Duration() != 40 {
		t.Fatalf("duration = %d", inc.Duration())
	}
}

func TestAnalyzerSplitsOnGap(t *testing.T) {
	a := NewAnalyzer(0)
	a.Observe(verdict(0, 20, 1), nil)
	a.Observe(verdict(20, 20), nil)
	a.Observe(verdict(40, 20, 1), nil)
	incidents := a.Flush()
	if len(incidents) != 2 {
		t.Fatalf("incidents = %d, want 2 (gap exceeded)", len(incidents))
	}
}

func TestAnalyzerToleratesGapWithin(t *testing.T) {
	a := NewAnalyzer(20)
	a.Observe(verdict(0, 20, 1), nil)
	a.Observe(verdict(20, 20), nil) // healthy, gap 20 <= MaxGap
	a.Observe(verdict(40, 20, 1), nil)
	incidents := a.Flush()
	if len(incidents) != 1 {
		t.Fatalf("incidents = %d, want 1 (gap tolerated)", len(incidents))
	}
	if incidents[0].End != 60 {
		t.Fatalf("end = %d", incidents[0].End)
	}
}

func TestAnalyzerSeparatesDatabases(t *testing.T) {
	a := NewAnalyzer(0)
	a.Observe(verdict(0, 20, 1, 3), nil)
	incidents := a.Flush()
	if len(incidents) != 2 {
		t.Fatalf("incidents = %d, want one per database", len(incidents))
	}
}

func TestAnalyzeEndToEndNamesCulprits(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "rc", Ticks: 300, Seed: 1, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	affected := []kpi.KPI{kpi.RequestsPerSecond, kpi.TotalRequests}
	if _, err := anomaly.Inject(u, []anomaly.Event{{
		Type: anomaly.Stall, DB: 3, Start: 120, Length: 60,
		Magnitude: 0.9, KPIs: affected,
	}}, mathx.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	cfg := detect.Config{Thresholds: window.DefaultThresholds(kpi.Count)}
	verdicts, _, err := detect.Run(u.Series, cfg)
	if err != nil {
		t.Fatal(err)
	}
	provider := detect.NewProvider(u.Series, nil, nil)
	incidents, err := Analyze(provider, cfg, verdicts, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hit *Incident
	for _, inc := range incidents {
		if inc.DB == 3 && inc.Start < 180 && inc.End > 120 {
			hit = inc
		}
	}
	if hit == nil {
		t.Fatalf("no incident on db3: %v", incidents)
	}
	if len(hit.Findings) == 0 {
		t.Fatal("incident has no findings")
	}
	// The top findings must include the affected KPIs.
	top := map[kpi.KPI]bool{}
	for i, f := range hit.Findings {
		if i < 4 {
			top[f.KPI] = true
		}
	}
	for _, k := range affected {
		if !top[k] {
			t.Errorf("top findings %v missing affected KPI %v", hit.Findings, k)
		}
	}
	if !strings.Contains(hit.String(), "db3") {
		t.Fatalf("String() = %q", hit.String())
	}
}
