// Package rootcause aggregates per-window judgments into incidents — the
// operator-facing unit of the paper's future-work direction ("after
// detecting anomalies, how can root cause analysis be performed using
// database KPI time series?"). Consecutive abnormal verdicts on the same
// database merge into one incident carrying the indicators that broke the
// UKPIC phenomenon, ranked by how often and how severely they deviated.
package rootcause

import (
	"fmt"
	"sort"
	"strings"

	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/window"
)

// Incident is a contiguous run of abnormal verdicts on one database.
type Incident struct {
	// DB is the abnormal database.
	DB int
	// Start is the first tick of the first abnormal window; End the tick
	// after the last abnormal window.
	Start, End int
	// Windows is the number of merged abnormal verdicts.
	Windows int
	// Findings ranks the deviating indicators, most implicated first.
	Findings []Finding
}

// Finding summarizes one indicator's role in an incident.
type Finding struct {
	KPI kpi.KPI
	// Level1 and Level2 count windows in which the indicator sat at each
	// deviation level.
	Level1, Level2 int
	// WorstScore is the lowest best-peer correlation observed.
	WorstScore float64
}

// severity orders findings: more level-1 windows, then more level-2, then
// lower worst score.
func (f Finding) severity() (int, int, float64) { return f.Level1, f.Level2, -f.WorstScore }

// Duration returns the incident length in ticks.
func (i *Incident) Duration() int { return i.End - i.Start }

// String renders an operator-facing one-liner.
func (i *Incident) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "db%d abnormal ticks [%d, %d) over %d window(s)", i.DB, i.Start, i.End, i.Windows)
	if len(i.Findings) > 0 {
		b.WriteString("; deviating KPIs:")
		max := 3
		if len(i.Findings) < max {
			max = len(i.Findings)
		}
		for _, f := range i.Findings[:max] {
			fmt.Fprintf(&b, " %s (worst %.2f)", f.KPI, f.WorstScore)
		}
	}
	return b.String()
}

// Analyzer folds verdicts and their explanations into incidents.
type Analyzer struct {
	// MaxGap is the largest tick gap between abnormal windows that still
	// merges into one incident (default 0: windows must be adjacent).
	MaxGap int

	open      map[int]*Incident // by database
	completed []*Incident
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer(maxGap int) *Analyzer {
	return &Analyzer{MaxGap: maxGap, open: make(map[int]*Incident)}
}

// Observe folds one verdict with its per-database explanations (from
// detect.Explain over the same window). Explanations may be nil, in which
// case incidents carry no findings.
func (a *Analyzer) Observe(v detect.Verdict, exps []*detect.Explanation) {
	end := v.Start + v.Size
	// Close incidents whose database is healthy in this verdict or whose
	// gap exceeded MaxGap.
	for db, inc := range a.open {
		stillAbnormal := db < len(v.States) && v.States[db] == window.Abnormal
		if !stillAbnormal && v.Start-inc.End > a.MaxGap {
			a.close(db)
		}
	}
	for db, s := range v.States {
		if s != window.Abnormal {
			continue
		}
		inc, ok := a.open[db]
		if !ok || v.Start-inc.End > a.MaxGap {
			if ok {
				a.close(db)
			}
			inc = &Incident{DB: db, Start: v.Start, End: end}
			a.open[db] = inc
		}
		inc.End = end
		inc.Windows++
		if exps != nil && db < len(exps) && exps[db] != nil {
			mergeFindings(inc, exps[db])
		}
	}
}

func mergeFindings(inc *Incident, e *detect.Explanation) {
	byKPI := make(map[kpi.KPI]*Finding, len(inc.Findings))
	for i := range inc.Findings {
		byKPI[inc.Findings[i].KPI] = &inc.Findings[i]
	}
	for _, kf := range e.KPIs {
		if kf.Level == window.Level3 {
			continue
		}
		f, ok := byKPI[kf.KPI]
		if !ok {
			inc.Findings = append(inc.Findings, Finding{KPI: kf.KPI, WorstScore: kf.BestScore})
			f = &inc.Findings[len(inc.Findings)-1]
			byKPI[kf.KPI] = f
		}
		switch kf.Level {
		case window.Level1:
			f.Level1++
		case window.Level2:
			f.Level2++
		}
		if kf.BestScore < f.WorstScore {
			f.WorstScore = kf.BestScore
		}
	}
}

func (a *Analyzer) close(db int) {
	inc := a.open[db]
	delete(a.open, db)
	rankFindings(inc)
	a.completed = append(a.completed, inc)
}

func rankFindings(inc *Incident) {
	sort.SliceStable(inc.Findings, func(i, j int) bool {
		a1, a2, a3 := inc.Findings[i].severity()
		b1, b2, b3 := inc.Findings[j].severity()
		if a1 != b1 {
			return a1 > b1
		}
		if a2 != b2 {
			return a2 > b2
		}
		return a3 > b3
	})
}

// Flush closes all open incidents and returns the completed list in
// detection order.
func (a *Analyzer) Flush() []*Incident {
	dbs := make([]int, 0, len(a.open))
	for db := range a.open {
		dbs = append(dbs, db)
	}
	sort.Ints(dbs)
	for _, db := range dbs {
		a.close(db)
	}
	sort.SliceStable(a.completed, func(i, j int) bool {
		if a.completed[i].Start != a.completed[j].Start {
			return a.completed[i].Start < a.completed[j].Start
		}
		return a.completed[i].DB < a.completed[j].DB
	})
	out := a.completed
	a.completed = nil
	return out
}

// Analyze runs detection and explanation over a full unit series and
// returns the incident report — the batch entry point.
func Analyze(u detect.MatrixProvider, cfg detect.Config, verdicts []detect.Verdict, maxGap int) ([]*Incident, error) {
	a := NewAnalyzer(maxGap)
	for _, v := range verdicts {
		var exps []*detect.Explanation
		if v.Abnormal {
			var err error
			exps, err = detect.Explain(u, cfg, v.Start, v.Size)
			if err != nil {
				return nil, err
			}
		}
		a.Observe(v, exps)
	}
	return a.Flush(), nil
}
