// Fleet-level attribution: instead of analyzing each unit's raw verdict
// run in isolation, consume the incident aggregator's clustered fleet
// incident and name a probable origin — which unit deviated first, on
// which indicator, and what cascade order the lead-lag histograms support.
package rootcause

import (
	"fmt"
	"strings"

	"dbcatcher/internal/incident"
)

// FleetReport is the operator-facing attribution for one clustered fleet
// incident.
type FleetReport struct {
	ClusterID uint64 `json:"clusterId"`
	// OriginUnit/OriginDB locate the earliest-onset member incident; -1
	// when the cluster is empty.
	OriginUnit int `json:"originUnit"`
	OriginDB   int `json:"originDb"`
	// OriginKPIs is the deviating-KPI set of that earliest member.
	OriginKPIs []string `json:"originKpis"`
	// OriginTick is the first-seen tick of the earliest member.
	OriginTick int `json:"originTick"`
	// Spread is how many distinct units the cluster reached.
	Spread int `json:"spreadUnits"`
	// Cascade is the lead-lag ordering inherited from the cluster report,
	// strongest confidence first.
	Cascade []incident.CascadeHint `json:"cascade,omitempty"`
	// Summary is the rendered one-liner, ready for logs.
	Summary string `json:"summary"`
}

// AttributeFleet derives the origin hypothesis from a finalized cluster
// report. It is a pure function of the report — deterministic given
// deterministic aggregation.
func AttributeFleet(rep *incident.ClusterReport) *FleetReport {
	fr := &FleetReport{ClusterID: rep.ID, OriginUnit: -1, OriginDB: -1}
	if len(rep.Members) == 0 {
		fr.Summary = fmt.Sprintf("cluster %d: no members", rep.ID)
		return fr
	}
	// Origin = earliest first-seen member; ties break toward the lowest
	// incident ID (the open order, itself deterministic).
	origin := &rep.Members[0]
	for i := 1; i < len(rep.Members); i++ {
		m := &rep.Members[i]
		if m.FirstTick < origin.FirstTick || (m.FirstTick == origin.FirstTick && m.ID < origin.ID) {
			origin = m
		}
	}
	fr.OriginUnit = origin.Unit
	fr.OriginDB = origin.DB
	fr.OriginKPIs = origin.KPIs
	fr.OriginTick = origin.FirstTick
	fr.Spread = len(rep.Partition.Units)

	// Keep cascade hints in confidence order, strongest first; stable on
	// ties so the report stays deterministic.
	fr.Cascade = append(fr.Cascade, rep.Cascade...)
	for i := 1; i < len(fr.Cascade); i++ {
		for j := i; j > 0 && better(&fr.Cascade[j], &fr.Cascade[j-1]); j-- {
			fr.Cascade[j], fr.Cascade[j-1] = fr.Cascade[j-1], fr.Cascade[j]
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "cluster %d: probable origin unit %d db %d at tick %d",
		rep.ID, fr.OriginUnit, fr.OriginDB, fr.OriginTick)
	if len(fr.OriginKPIs) > 0 {
		fmt.Fprintf(&b, " on %s", strings.Join(fr.OriginKPIs, "|"))
	}
	if fr.Spread > 1 {
		fmt.Fprintf(&b, ", spread to %d units", fr.Spread)
	}
	if len(fr.Cascade) > 0 {
		fmt.Fprintf(&b, "; cascade: %s", fr.Cascade[0])
	}
	fr.Summary = b.String()
	return fr
}

// better orders cascade hints: higher share x samples evidence first, then
// the tighter lag, then lead KPI index.
func better(a, b *incident.CascadeHint) bool {
	ea, eb := a.Share*float64(a.Samples), b.Share*float64(b.Samples)
	if ea != eb {
		return ea > eb
	}
	if a.Ticks != b.Ticks {
		return a.Ticks < b.Ticks
	}
	return a.Lead < b.Lead
}
