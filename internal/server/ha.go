// High-availability surface: role reporting, readiness probing, and
// manual promotion. The server does not decide any of this itself — the
// daemon wires closures describing its current role (primary serving a
// live feed, or follower tailing a primary), whether it is ready to serve
// (store open, feed live, replication caught up within the staleness
// budget), and how to promote. The probes are what a load balancer or
// orchestrator points at: /healthz answers "is the process alive",
// /readyz answers "should traffic go here right now", and the answer
// flips across a promotion without restarting the listener.
package server

import (
	"net/http"
	"sync"
)

// haState is the shared role/readiness/promotion wiring embedded in both
// the per-unit Server and the Fleet surface.
type haState struct {
	mu      sync.Mutex
	role    func() interface{}
	ready   func() error
	promote func() (uint64, error)
}

// setRole attaches a provider whose value becomes the "role" block of the
// status document (e.g. {"role":"follower","applied":123,...}).
func (h *haState) setRole(fn func() interface{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.role = fn
}

// setReady attaches the readiness check: nil error means ready. With no
// check attached the node reports ready whenever it is alive.
func (h *haState) setReady(fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ready = fn
}

// setPromote attaches the manual-promotion action behind POST
// /api/promote. It returns the newly adopted fencing epoch.
func (h *haState) setPromote(fn func() (uint64, error)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.promote = fn
}

// roleBlock returns the role document, or nil when no provider is wired.
func (h *haState) roleBlock() interface{} {
	h.mu.Lock()
	fn := h.role
	h.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// handleReadyz serves the readiness probe: 200 when the node should
// receive traffic, 503 with a reason when it should not (store closed,
// feed dead, follower stale). Liveness stays on /healthz.
func (h *haState) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	h.mu.Lock()
	check := h.ready
	h.mu.Unlock()
	if check != nil {
		if err := check(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "unready", "reason": err.Error(),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handlePromote serves POST /api/promote: manual failover. 404 when the
// node has no promotion wired (already the primary, or HA disabled), 409
// when the attempt is refused (e.g. the follower is too stale), 200 with
// the adopted epoch on success.
func (h *haState) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	h.mu.Lock()
	promote := h.promote
	h.mu.Unlock()
	if promote == nil {
		http.Error(w, "promotion not available on this node", http.StatusNotFound)
		return
	}
	epoch, err := promote()
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "promoted", "epoch": epoch,
	})
}

// SetRole attaches the "role" block provider for /api/status.
func (s *Server) SetRole(fn func() interface{}) { s.ha.setRole(fn); s.Invalidate() }

// SetReady attaches the /readyz readiness check (nil error = ready).
func (s *Server) SetReady(fn func() error) { s.ha.setReady(fn) }

// SetPromote attaches the POST /api/promote action.
func (s *Server) SetPromote(fn func() (uint64, error)) { s.ha.setPromote(fn) }

// SetRole attaches the "role" block provider for /api/fleet/status.
func (f *Fleet) SetRole(fn func() interface{}) { f.ha.setRole(fn) }

// SetReady attaches the /readyz readiness check (nil error = ready).
func (f *Fleet) SetReady(fn func() error) { f.ha.setReady(fn) }

// SetPromote attaches the POST /api/promote action.
func (f *Fleet) SetPromote(fn func() (uint64, error)) { f.ha.setPromote(fn) }
