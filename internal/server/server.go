// Package server exposes a DBCatcher online detector over HTTP, the
// "bypass monitoring system" integration surface of Fig. 2: operators and
// dashboards read unit status, recent verdicts, and the active thresholds,
// and the online feedback loop can swap thresholds in.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/thresholds"
	"dbcatcher/internal/window"
)

// DefaultRequestTimeout bounds a single API request unless overridden with
// SetRequestTimeout.
const DefaultRequestTimeout = 10 * time.Second

// Server wraps an online detector with a JSON HTTP API. It is safe for
// concurrent use; the feeder goroutine pushes samples while handlers read.
type Server struct {
	mu       sync.Mutex
	online   *monitor.Online
	verdicts []verdictJSON // bounded history, newest last
	maxHist  int
	unitName string
	// restoredThrough is the newest verdict tick loaded via
	// RestoreHistory; Push drops regenerated verdicts at or below it
	// (they are already in the buffer).
	restoredThrough int
	// persistence, when set, contributes a block to /api/status.
	persistence func() interface{}
	// scrape, when set, contributes the network-collection health block to
	// /api/status (e.g. scrape.Scraper.Health via SetScrape).
	scrape func() interface{}
	// replication, when set, contributes the primary's replication block to
	// /api/status (e.g. replicate.Server.StatusBlock): log extent plus
	// every tracked follower's lag.
	replication func() interface{}
	// fb, when set, backs the /api/feedback DBA-marking endpoint.
	fb *feedback.Store
	// relearnStatus and relearnTrigger, when set, back /api/relearn and
	// the relearn block of /api/status (e.g. relearn.Supervisor).
	relearnStatus  func() interface{}
	relearnTrigger func() error
	// reqTimeout bounds each request served through Handler.
	reqTimeout time.Duration
	// panics counts handler panics recovered by the middleware.
	panics atomic.Int64
	// ha holds the role/readiness/promotion wiring (see ha.go).
	ha haState
	// gen is the status generation: every state change bumps it, and the
	// cached /api/status document (statusBody/statusETag, guarded by mu)
	// is rebuilt only when the generation it was built at goes stale.
	gen        atomic.Int64
	statusGen  int64
	statusBody []byte
	statusETag string
}

// New wraps the online detector. maxHistory bounds the verdict buffer
// (default 256).
func New(o *monitor.Online, unitName string, maxHistory int) *Server {
	if maxHistory <= 0 {
		maxHistory = 256
	}
	return &Server{
		online: o, maxHist: maxHistory, unitName: unitName,
		restoredThrough: -1, reqTimeout: DefaultRequestTimeout,
	}
}

// SetPersistence attaches a provider whose value is embedded as the
// "persistence" block of /api/status (e.g. store.Persister.Status).
func (s *Server) SetPersistence(fn func() interface{}) {
	s.gen.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persistence = fn
}

// SetScrape attaches a provider whose value is embedded as the "scrape"
// block of /api/status (e.g. scrape.Scraper.Health wrapped in a closure).
func (s *Server) SetScrape(fn func() interface{}) {
	s.gen.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scrape = fn
}

// SetReplication attaches a provider embedded as the "replication" block
// of /api/status (e.g. replicate.Server.StatusBlock wrapped in a closure).
func (s *Server) SetReplication(fn func() interface{}) {
	s.gen.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replication = fn
}

// SetRequestTimeout overrides the per-request bound applied by Handler
// (call before Handler; 0 disables the bound).
func (s *Server) SetRequestTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqTimeout = d
}

// SetFeedback attaches the DBA judgment-record store behind /api/feedback.
func (s *Server) SetFeedback(fb *feedback.Store) {
	s.gen.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fb = fb
}

// SetRelearn attaches the relearning supervisor's surface: status backs
// GET /api/relearn and the "relearn" block of /api/status, trigger backs
// POST /api/relearn (manual retrain). Either may be nil.
func (s *Server) SetRelearn(status func() interface{}, trigger func() error) {
	s.gen.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.relearnStatus = status
	s.relearnTrigger = trigger
}

// RestoreHistory seeds the verdict buffer from persisted verdicts (oldest
// first), e.g. store.Recovered.VerdictHistory. While the resumed detector
// catches up it regenerates verdicts it already judged before the restart;
// Push recognizes them by tick and skips re-recording.
func (s *Server) RestoreHistory(vs []monitor.Verdict) {
	s.gen.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range vs {
		s.verdicts = append(s.verdicts, toVerdictJSON(&vs[i]))
		if vs[i].Tick > s.restoredThrough {
			s.restoredThrough = vs[i].Tick
		}
	}
	if len(s.verdicts) > s.maxHist {
		s.verdicts = s.verdicts[len(s.verdicts)-s.maxHist:]
	}
}

func toVerdictJSON(v *monitor.Verdict) verdictJSON {
	states := make([]string, len(v.States))
	for i, st := range v.States {
		states[i] = st.String()
	}
	return verdictJSON{
		Tick: v.Tick, Start: v.Start, Size: v.Size,
		Abnormal: v.Abnormal, AbnormalDB: v.AbnormalDB,
		States: states, Expansions: v.Expansions,
		Health: v.Health.String(), GapCells: v.GapCells,
	}
}

type verdictJSON struct {
	Tick       int      `json:"tick"`
	Start      int      `json:"start"`
	Size       int      `json:"size"`
	Abnormal   bool     `json:"abnormal"`
	AbnormalDB int      `json:"abnormalDb"`
	States     []string `json:"states"`
	Expansions int      `json:"expansions"`
	Health     string   `json:"health"`
	GapCells   int      `json:"gapCells"`
}

// Push feeds one sample through the detector and records any verdict. A nil
// sample records a wholly-missed collection tick.
func (s *Server) Push(sample [][]float64) (*monitor.Verdict, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.online.Push(sample)
	if err != nil {
		return nil, err
	}
	s.gen.Add(1) // every tick moves ticksIngested/health in /api/status
	if v != nil && v.Tick > s.restoredThrough {
		s.verdicts = append(s.verdicts, toVerdictJSON(v))
		if len(s.verdicts) > s.maxHist {
			s.verdicts = s.verdicts[len(s.verdicts)-s.maxHist:]
		}
	}
	return v, nil
}

// Handler returns the HTTP routing for the API, hardened for unattended
// serving: every request is bounded by the configured timeout, and a
// handler panic is recovered into a JSON 500 (counted in /api/status)
// instead of tearing down the connection.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.ha.handleReadyz)
	mux.HandleFunc("/api/promote", s.ha.handlePromote)
	mux.HandleFunc("/api/status", s.handleStatus)
	mux.HandleFunc("/api/verdicts", s.handleVerdicts)
	mux.HandleFunc("/api/thresholds", s.handleThresholds)
	mux.HandleFunc("/api/kpis", s.handleKPIs)
	mux.HandleFunc("/api/explain", s.handleExplain)
	mux.HandleFunc("/api/feedback", s.handleFeedback)
	mux.HandleFunc("/api/relearn", s.handleRelearn)
	s.mu.Lock()
	timeout := s.reqTimeout
	s.mu.Unlock()
	return Recover(Timeout(mux, timeout), s.recordPanic)
}

// recordPanic counts a recovered handler panic. The first stack is logged
// in full; repeats log one line so a panicking endpoint under load cannot
// flood the journal.
func (s *Server) recordPanic(v interface{}, stack []byte) {
	// Mutate-then-bump, like every other invalidation site: a
	// statusDocument sampling the new generation must already see the new
	// panic count, or it pins a stale document under a fresh generation.
	n := s.panics.Add(1)
	s.gen.Add(1) // the panic counter is part of /api/status
	if n == 1 {
		log.Printf("server: recovered handler panic: %v\n%s", v, stack)
		return
	}
	log.Printf("server: recovered handler panic: %v (stack logged on first occurrence)", v)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Invalidate marks the cached /api/status document stale. Mutating
// endpoints and Push call it themselves; attach it to external providers
// (scrape rounds, relearn completion) whose state feeds a status block the
// server cannot observe changing.
func (s *Server) Invalidate() { s.gen.Add(1) }

// handleStatus serves the cached status document with a strong ETag: the
// body is rebuilt only when the status generation has moved since the last
// build, and a conditional GET whose If-None-Match matches is answered
// 304 with no body — a dashboard polling an idle unit costs two header
// lines, not a re-serialization.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, etag := s.statusDocument()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// etagMatch evaluates an If-None-Match header against the current entity
// tag per RFC 7232 §3.2: a comma-separated list of entity-tags compared
// with the weak comparison (a W/ prefix is ignored), or the special form
// "*" which matches any current representation. Substring matching would
// be both too loose (a tag embedded in a longer token) and too strict
// ("*" never matching).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" {
			return true
		}
		if strings.TrimPrefix(tok, "W/") == strings.TrimPrefix(etag, "W/") {
			return true
		}
	}
	return false
}

// statusDocument returns the marshaled status body and its ETag,
// rebuilding only on a stale generation. The generation is sampled before
// taking the lock; a bump racing the rebuild merely causes one extra
// rebuild on the next request, never a stale document being pinned.
func (s *Server) statusDocument() ([]byte, string) {
	g := s.gen.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.statusBody != nil && s.statusGen == g {
		return s.statusBody, s.statusETag
	}
	kpis, dbs := s.online.Processor().Shape()
	abnormal := 0
	for _, v := range s.verdicts {
		if v.Abnormal {
			abnormal++
		}
	}
	h := s.online.Health()
	deactivated := make([]int, 0, dbs)
	for d, down := range h.AutoDeactivated {
		if down {
			deactivated = append(deactivated, d)
		}
	}
	body := map[string]interface{}{
		"unit":             s.unitName,
		"kpis":             kpis,
		"databases":        dbs,
		"ticksIngested":    s.online.Processor().Ticks(),
		"verdicts":         len(s.verdicts),
		"abnormalVerdicts": abnormal,
		"health": map[string]interface{}{
			"gapCells":         h.GapCells,
			"missedTicks":      h.MissedTicks,
			"deactivations":    h.Deactivations,
			"reactivations":    h.Reactivations,
			"degradedVerdicts": h.DegradedVerdicts,
			"skippedRounds":    h.SkippedRounds,
			"deactivated":      deactivated,
			"silentRecent":     h.SilentRecent,
		},
	}
	body["server"] = map[string]interface{}{
		"panics":           s.panics.Load(),
		"requestTimeoutMs": s.reqTimeout.Milliseconds(),
	}
	if s.persistence != nil {
		body["persistence"] = s.persistence()
	}
	if s.scrape != nil {
		body["scrape"] = s.scrape()
	}
	if s.replication != nil {
		body["replication"] = s.replication()
	}
	if s.relearnStatus != nil {
		body["relearn"] = s.relearnStatus()
	}
	if role := s.ha.roleBlock(); role != nil {
		body["role"] = role
	}
	b, err := json.Marshal(body)
	if err != nil {
		b = []byte(`{"error":"status marshal failed"}`)
	}
	b = append(b, '\n')
	sum := fnv.New64a()
	sum.Write(b)
	s.statusBody = b
	s.statusETag = fmt.Sprintf("%q", fmt.Sprintf("st-%016x", sum.Sum64()))
	s.statusGen = g
	return s.statusBody, s.statusETag
}

// handleRelearn exposes the relearning supervisor: GET returns its status,
// POST triggers a manual retrain (202 when accepted, 409 when an attempt
// is already in flight or the supervisor refuses).
func (s *Server) handleRelearn(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status, trigger := s.relearnStatus, s.relearnTrigger
	s.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		if status == nil {
			http.Error(w, "relearning not enabled", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, status())
	case http.MethodPost:
		if trigger == nil {
			http.Error(w, "relearning not enabled", http.StatusNotFound)
			return
		}
		if err := trigger(); err != nil {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		s.gen.Add(1)
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "retrain started"})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleFeedback lets a DBA mark judgment records (POST) and inspect
// recent marking performance (GET) — the online feedback module's
// integration surface (§III-D). Records flow through the attached store,
// and with persistence enabled, into the WAL.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	fb := s.fb
	s.mu.Unlock()
	if fb == nil {
		http.Error(w, "no feedback store attached", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		recs := fb.Snapshot()
		type recJSON struct {
			Start     int  `json:"start"`
			Size      int  `json:"size"`
			Predicted bool `json:"predicted"`
			Actual    bool `json:"actual"`
		}
		out := struct {
			Count    int       `json:"count"`
			FMeasure float64   `json:"fMeasure"`
			Records  []recJSON `json:"records"`
		}{Count: len(recs), FMeasure: fb.FMeasure(len(recs))}
		for _, rec := range recs {
			out.Records = append(out.Records, recJSON{rec.Start, rec.Size, rec.Predicted, rec.Actual})
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var body struct {
			Start     int  `json:"start"`
			Size      int  `json:"size"`
			Predicted bool `json:"predicted"`
			Actual    bool `json:"actual"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
			return
		}
		if body.Size <= 0 || body.Start < 0 {
			http.Error(w, "bad window", http.StatusUnprocessableEntity)
			return
		}
		fb.Add(feedback.Record{Start: body.Start, Size: body.Size, Predicted: body.Predicted, Actual: body.Actual})
		s.gen.Add(1)
		writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// queryInt parses the named query parameter as a canonical non-negative
// decimal integer: ASCII digits only. fmt.Sscanf's "%d" (the previous
// parser) accepted trailing garbage ("5abc") and sign prefixes ("+5");
// a fleet dashboard paginating over thousands of units needs malformed
// input rejected hard, not best-effort parsed. An absent or empty
// parameter returns def; the second return is false on malformed or
// overflow-sized input.
func queryInt(r *http.Request, name string, def int) (int, bool) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, true
	}
	if len(q) > 18 { // longer than any plausible value; also bounds overflow
		return 0, false
	}
	for i := 0; i < len(q); i++ {
		if q[i] < '0' || q[i] > '9' {
			return 0, false
		}
	}
	v, err := strconv.Atoi(q)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	limit, ok := queryInt(r, "limit", 50)
	if !ok || limit < 1 {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return
	}
	// since=<tick> narrows to verdicts strictly newer than the given tick,
	// so a dashboard can poll incrementally with the last tick it has seen
	// instead of re-downloading full history. Absent means no filter.
	since, ok := queryInt(r, "since", -1)
	if !ok {
		http.Error(w, "bad since", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit > s.maxHist {
		limit = s.maxHist // the buffer never holds more anyway
	}
	out := filterVerdicts(s.verdicts, limit, since)
	writeJSON(w, http.StatusOK, out)
}

// filterVerdicts copies out the newest limit verdicts with Tick > since.
// vs is tick-ascending, so the filter is a suffix cut.
func filterVerdicts(vs []verdictJSON, limit, since int) []verdictJSON {
	if since >= 0 {
		lo := sort.Search(len(vs), func(i int) bool { return vs[i].Tick > since })
		vs = vs[lo:]
	}
	if len(vs) > limit {
		vs = vs[len(vs)-limit:]
	}
	out := make([]verdictJSON, len(vs))
	copy(out, vs)
	return out
}

type thresholdsJSON struct {
	Alpha        []float64 `json:"alpha"`
	Theta        float64   `json:"theta"`
	MaxTolerance int       `json:"maxTolerance"`
}

func (s *Server) handleThresholds(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		th := s.online.Thresholds()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, thresholdsJSON{
			Alpha: th.Alpha, Theta: th.Theta, MaxTolerance: th.MaxTolerance,
		})
	case http.MethodPost, http.MethodPut:
		var body thresholdsJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
			return
		}
		th := window.Thresholds{
			Alpha: body.Alpha, Theta: body.Theta, MaxTolerance: body.MaxTolerance,
		}
		// Refuse operator-supplied values the threshold search itself could
		// never produce — NaN/Inf or outside the searchable domain — before
		// they reach the live judge (and, with persistence on, the WAL).
		if err := thresholds.DefaultRanges().Contains(th); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		s.mu.Lock()
		err := s.online.SetThresholds(th)
		s.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		s.gen.Add(1)
		writeJSON(w, http.StatusOK, map[string]string{"status": "updated"})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleExplain attributes the most recent completed judgment window to
// indicators (root-cause hints for operators).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.verdicts) == 0 {
		http.Error(w, "no completed judgment windows yet", http.StatusNotFound)
		return
	}
	last := s.verdicts[len(s.verdicts)-1]
	u, err := s.online.Processor().Window(last.Start, last.Size)
	if err != nil {
		http.Error(w, "window evicted: "+err.Error(), http.StatusGone)
		return
	}
	exps, err := detect.Explain(detect.NewProvider(u, nil, nil), detect.Config{
		Thresholds: s.online.Thresholds(),
	}, 0, last.Size)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type findingJSON struct {
		KPI   string  `json:"kpi"`
		Level string  `json:"level"`
		Score float64 `json:"bestScore"`
	}
	type expJSON struct {
		DB       int           `json:"db"`
		State    string        `json:"state"`
		Findings []findingJSON `json:"findings"`
	}
	out := struct {
		Start int       `json:"start"`
		Size  int       `json:"size"`
		DBs   []expJSON `json:"databases"`
	}{Start: last.Start, Size: last.Size}
	for _, e := range exps {
		ej := expJSON{DB: e.DB, State: e.State.String()}
		for _, f := range e.KPIs {
			if f.Level == window.Level3 {
				continue
			}
			ej.Findings = append(ej.Findings, findingJSON{
				KPI: f.KPI.String(), Level: f.Level.String(), Score: f.BestScore,
			})
		}
		out.DBs = append(out.DBs, ej)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleKPIs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	type kpiJSON struct {
		ID          int    `json:"id"`
		Name        string `json:"name"`
		Correlation string `json:"correlation"`
	}
	out := make([]kpiJSON, 0, kpi.Count)
	for _, k := range kpi.All() {
		out = append(out, kpiJSON{ID: int(k), Name: k.String(), Correlation: k.Correlation().String()})
	}
	writeJSON(w, http.StatusOK, out)
}
