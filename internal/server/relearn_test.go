package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"dbcatcher/internal/kpi"
	"dbcatcher/internal/window"
)

func postThresholds(t *testing.T, url string, th window.Thresholds) (int, map[string]interface{}) {
	t.Helper()
	buf, err := json.Marshal(map[string]interface{}{
		"alpha": th.Alpha, "theta": th.Theta, "maxTolerance": th.MaxTolerance,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/thresholds", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}

func TestThresholdsPostRejectsOutOfRange(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		mutate func(*window.Thresholds)
	}{
		{"alpha above domain", func(th *window.Thresholds) { th.Alpha[3] = 2.5 }},
		{"alpha below domain", func(th *window.Thresholds) { th.Alpha[0] = -0.4 }},
		{"theta out of range", func(th *window.Thresholds) { th.Theta = 5 }},
		{"tolerance out of range", func(th *window.Thresholds) { th.MaxTolerance = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			th := window.DefaultThresholds(kpi.Count)
			tc.mutate(&th)
			code, body := postThresholds(t, ts.URL, th)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", code)
			}
			if msg, _ := body["error"].(string); msg == "" {
				t.Fatalf("400 body %v carries no error reason", body)
			}
		})
	}
	// A set inside the searchable domain still lands.
	good := window.DefaultThresholds(kpi.Count)
	good.Theta = 0.22
	if code, _ := postThresholds(t, ts.URL, good); code != http.StatusOK {
		t.Fatalf("in-range thresholds status = %d", code)
	}
}

func TestRelearnEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/relearn")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET without supervisor = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/api/relearn", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST without supervisor = %d, want 404", resp.StatusCode)
	}
}

func TestRelearnEndpointStatusAndTrigger(t *testing.T) {
	s, ts := newTestServer(t)
	triggerErr := error(nil)
	triggers := 0
	s.SetRelearn(
		func() interface{} { return map[string]interface{}{"state": "idle", "attempts": 3} },
		func() error { triggers++; return triggerErr },
	)

	var status map[string]interface{}
	resp := getJSON(t, ts.URL+"/api/relearn", &status)
	if resp.StatusCode != http.StatusOK || status["state"] != "idle" {
		t.Fatalf("GET = %d %v", resp.StatusCode, status)
	}

	resp2, err := http.Post(ts.URL+"/api/relearn", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted || triggers != 1 {
		t.Fatalf("POST = %d (triggers %d), want 202", resp2.StatusCode, triggers)
	}

	triggerErr = errors.New("attempt 2 already in flight")
	resp3, err := http.Post(ts.URL+"/api/relearn", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var conflict map[string]interface{}
	json.NewDecoder(resp3.Body).Decode(&conflict)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("refused POST = %d, want 409", resp3.StatusCode)
	}
	if msg, _ := conflict["error"].(string); msg == "" {
		t.Fatalf("409 body %v carries no error", conflict)
	}

	// Unsupported method.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/relearn", nil)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE = %d, want 405", resp4.StatusCode)
	}

	// The status endpoint embeds the same block.
	var full map[string]interface{}
	getJSON(t, ts.URL+"/api/status", &full)
	if _, ok := full["relearn"]; !ok {
		t.Fatal("/api/status missing relearn block")
	}
}
