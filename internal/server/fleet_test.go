package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// newTestFleet builds a 3-unit fleet with real verdict history: every
// unit's judge is fed the same simulated series through its Server.
func newTestFleet(t *testing.T) (*Fleet, *httptest.Server) {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 120, Seed: 5, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	units := make([]*Server, 3)
	for i := range units {
		o, err := monitor.NewOnline(detect.Config{
			Thresholds: window.DefaultThresholds(kpi.Count),
			Workers:    1,
		}, kpi.Count, 5)
		if err != nil {
			t.Fatal(err)
		}
		units[i] = New(o, []string{"unit-a", "unit-b", "unit-c"}[i], 16)
	}
	for {
		sample, ok := c.Next()
		if !ok {
			break
		}
		for _, s := range units {
			if _, err := s.Push(sample); err != nil {
				t.Fatal(err)
			}
		}
	}
	f := NewFleet(units)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

type fleetStatusJSON struct {
	Units  int `json:"units"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
	Count  int `json:"count"`
	Totals struct {
		TicksIngested int `json:"ticksIngested"`
		Verdicts      int `json:"verdicts"`
	} `json:"totals"`
	Page []fleetUnitJSON `json:"page"`
}

func TestFleetStatusAggregation(t *testing.T) {
	_, ts := newTestFleet(t)
	var body fleetStatusJSON
	resp := getJSON(t, ts.URL+"/api/fleet/status", &body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body.Units != 3 || body.Count != 3 || len(body.Page) != 3 {
		t.Fatalf("units/count/page = %d/%d/%d, want 3/3/3", body.Units, body.Count, len(body.Page))
	}
	if body.Totals.TicksIngested != 3*120 {
		t.Fatalf("total ticks %d, want %d", body.Totals.TicksIngested, 3*120)
	}
	if body.Totals.Verdicts == 0 {
		t.Fatal("no verdicts aggregated")
	}
	perUnit := body.Totals.Verdicts / 3
	for i, row := range body.Page {
		if row.Unit != i {
			t.Fatalf("page[%d].unit = %d", i, row.Unit)
		}
		if row.Verdicts != perUnit {
			t.Fatalf("unit %d verdicts %d, want %d", i, row.Verdicts, perUnit)
		}
		if row.Name == "" || row.LastVerdictTick < 0 {
			t.Fatalf("unit %d summary incomplete: %+v", i, row)
		}
	}
}

func TestFleetStatusPagination(t *testing.T) {
	_, ts := newTestFleet(t)
	get := func(query string) (fleetStatusJSON, int) {
		var body fleetStatusJSON
		resp, err := http.Get(ts.URL + "/api/fleet/status" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
		}
		return body, resp.StatusCode
	}

	// Pages walk the units in order.
	body, code := get("?limit=2")
	if code != 200 || body.Count != 2 || body.Page[0].Unit != 0 || body.Page[1].Unit != 1 {
		t.Fatalf("limit=2 page: code %d, %+v", code, body.Page)
	}
	body, code = get("?offset=2&limit=2")
	if code != 200 || body.Count != 1 || body.Page[0].Unit != 2 {
		t.Fatalf("offset=2 page: code %d, count %d", code, body.Count)
	}
	// Boundary pages are empty, not errors.
	body, code = get("?offset=3")
	if code != 200 || body.Count != 0 || len(body.Page) != 0 {
		t.Fatalf("offset at end: code %d, count %d", code, body.Count)
	}
	body, code = get("?offset=1000000")
	if code != 200 || body.Count != 0 {
		t.Fatalf("offset past end: code %d, count %d", code, body.Count)
	}
	// A huge-but-well-formed limit is clamped, not an error.
	if _, code = get("?limit=999999"); code != 200 {
		t.Fatalf("clampable limit rejected: %d", code)
	}
	// Malformed pagination is rejected exactly like the per-unit API.
	for _, q := range []string{
		"?limit=0", "?limit=-1", "?limit=+5", "?limit=5abc", "?limit=abc",
		"?limit=99999999999999999999", "?offset=-1", "?offset=+2",
		"?offset=1x", "?offset=99999999999999999999",
	} {
		if _, code := get(q); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, code)
		}
	}
	// Wrong method.
	resp, err := http.Post(ts.URL+"/api/fleet/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestFleetVerdicts(t *testing.T) {
	_, ts := newTestFleet(t)
	var body struct {
		Unit     int                      `json:"unit"`
		Name     string                   `json:"name"`
		Count    int                      `json:"count"`
		Verdicts []map[string]interface{} `json:"verdicts"`
	}
	resp := getJSON(t, ts.URL+"/api/fleet/verdicts?unit=1", &body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body.Unit != 1 || body.Name != "unit-b" || body.Count == 0 || len(body.Verdicts) != body.Count {
		t.Fatalf("unit verdicts envelope: %+v", body)
	}
	resp = getJSON(t, ts.URL+"/api/fleet/verdicts?unit=2&limit=3", &body)
	if resp.StatusCode != 200 || body.Count != 3 {
		t.Fatalf("limited page: %d verdicts, status %d", body.Count, resp.StatusCode)
	}

	status := func(query string) int {
		resp, err := http.Get(ts.URL + "/api/fleet/verdicts" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// The unit key is mandatory and strictly parsed; out-of-range is 404.
	for _, q := range []string{"", "?unit=", "?unit=abc", "?unit=+1", "?unit=1x", "?unit=-1"} {
		if code := status(q); code != http.StatusBadRequest {
			t.Fatalf("%q: status %d, want 400", q, code)
		}
	}
	if code := status("?unit=3"); code != http.StatusNotFound {
		t.Fatalf("unit=3: status %d, want 404", code)
	}
	if code := status("?unit=99999999999999999999"); code != http.StatusBadRequest {
		t.Fatalf("overflow unit: status %d, want 400", code)
	}
	// Strict limit parsing, same as the per-unit endpoint.
	for _, q := range []string{"?unit=0&limit=0", "?unit=0&limit=5abc", "?unit=0&limit=+5"} {
		if code := status(q); code != http.StatusBadRequest {
			t.Fatalf("%q: status %d, want 400", q, code)
		}
	}
}

// Satellite regression pin: the per-unit /api/verdicts limit parameter is
// parsed strictly (the old fmt.Sscanf path accepted "5abc" as 5 and "+5"
// as 5) and capped at the history bound.
func TestVerdictsLimitStrictParsing(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"?limit=0", "?limit=+5", "?limit=5abc", "?limit=abc", "?limit=%205",
		"?limit=0x5", "?limit=99999999999999999999", "?limit=-2",
	} {
		resp, err := http.Get(ts.URL + "/api/verdicts" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// Well-formed values — including huge clampable ones — still serve.
	for _, q := range []string{"", "?limit=5", "?limit=007", "?limit=999999"} {
		var out []map[string]interface{}
		if resp := getJSON(t, ts.URL+"/api/verdicts"+q, &out); resp.StatusCode != 200 {
			t.Fatalf("%s: status %d, want 200", q, resp.StatusCode)
		}
	}
}
