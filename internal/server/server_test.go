package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := New(o, "unit-test", 16)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var body map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != 200 || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
}

func TestStatusAndVerdictsFlow(t *testing.T) {
	s, ts := newTestServer(t)
	// Stream a simulated unit with a stall through the server.
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 200, Seed: 1, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anomaly.Inject(u, []anomaly.Event{
		{Type: anomaly.Stall, DB: 2, Start: 80, Length: 40, Magnitude: 0.9},
	}, mathx.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	sample := make([][]float64, kpi.Count)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	for tick := 0; tick < 200; tick++ {
		for k := 0; k < kpi.Count; k++ {
			for d := 0; d < 5; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		if _, err := s.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	var status map[string]interface{}
	getJSON(t, ts.URL+"/api/status", &status)
	if status["ticksIngested"].(float64) != 200 {
		t.Fatalf("ticks = %v", status["ticksIngested"])
	}
	if status["abnormalVerdicts"].(float64) < 1 {
		t.Fatal("no abnormal verdicts recorded")
	}
	var verdicts []map[string]interface{}
	getJSON(t, ts.URL+"/api/verdicts?limit=5", &verdicts)
	if len(verdicts) == 0 || len(verdicts) > 5 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	// Bad limit.
	resp, _ := http.Get(ts.URL + "/api/verdicts?limit=-2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestThresholdsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	var th struct {
		Alpha        []float64 `json:"alpha"`
		Theta        float64   `json:"theta"`
		MaxTolerance int       `json:"maxTolerance"`
	}
	getJSON(t, ts.URL+"/api/thresholds", &th)
	if len(th.Alpha) != kpi.Count {
		t.Fatalf("alpha count = %d", len(th.Alpha))
	}
	// Update.
	th.Theta = 0.19
	buf, _ := json.Marshal(th)
	resp, err := http.Post(ts.URL+"/api/thresholds", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post status = %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/api/thresholds", &th)
	if th.Theta != 0.19 {
		t.Fatalf("theta = %v after update", th.Theta)
	}
	// Invalid thresholds rejected.
	bad := th
	bad.Alpha = bad.Alpha[:2]
	buf, _ = json.Marshal(bad)
	resp, err = http.Post(ts.URL+"/api/thresholds", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid thresholds status = %d", resp.StatusCode)
	}
}

func TestKPIsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var kpis []map[string]interface{}
	getJSON(t, ts.URL+"/api/kpis", &kpis)
	if len(kpis) != kpi.Count {
		t.Fatalf("kpis = %d", len(kpis))
	}
	if kpis[2]["name"] != "CPU Utilization" {
		t.Fatalf("kpi 2 = %v", kpis[2]["name"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	// Before any verdict: 404.
	resp, err := http.Get(ts.URL + "/api/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-verdict status = %d", resp.StatusCode)
	}
	// Stream enough ticks for a verdict.
	u, err := cluster.Simulate(cluster.Config{Name: "u", Ticks: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sample := make([][]float64, kpi.Count)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	for tick := 0; tick < 40; tick++ {
		for k := 0; k < kpi.Count; k++ {
			for d := 0; d < 5; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		if _, err := s.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	var out struct {
		Start int `json:"start"`
		Size  int `json:"size"`
		DBs   []struct {
			DB    int    `json:"db"`
			State string `json:"state"`
		} `json:"databases"`
	}
	getJSON(t, ts.URL+"/api/explain", &out)
	if len(out.DBs) != 5 {
		t.Fatalf("databases = %d", len(out.DBs))
	}
	if out.Size < 20 {
		t.Fatalf("size = %d", out.Size)
	}
}

func TestStatusHealthBlock(t *testing.T) {
	s, ts := newTestServer(t)
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 300, Seed: 7, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{
		Seed:         5,
		DropTickRate: 0.02,
		DropCellRate: 0.01,
		Silences:     []workload.Silence{{DB: 2, Start: 100, Length: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for {
		sample, ok := c.Next()
		if !ok {
			break
		}
		v, err := s.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil && v.Health != detect.HealthOK {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("fault plan produced no degraded/skipped verdicts")
	}

	var status struct {
		Health struct {
			GapCells         int   `json:"gapCells"`
			MissedTicks      int   `json:"missedTicks"`
			Deactivations    int   `json:"deactivations"`
			Reactivations    int   `json:"reactivations"`
			DegradedVerdicts int   `json:"degradedVerdicts"`
			SkippedRounds    int   `json:"skippedRounds"`
			Deactivated      []int `json:"deactivated"`
			SilentRecent     []int `json:"silentRecent"`
		} `json:"health"`
	}
	getJSON(t, ts.URL+"/api/status", &status)
	h := status.Health
	if h.GapCells == 0 || h.MissedTicks == 0 {
		t.Fatalf("health block missing gap accounting: %+v", h)
	}
	if h.Deactivations < 1 || h.Reactivations < 1 {
		t.Fatalf("silent db not benched+recovered in health block: %+v", h)
	}
	if h.DegradedVerdicts == 0 {
		t.Fatalf("degradedVerdicts not surfaced: %+v", h)
	}
	if len(h.Deactivated) != 0 {
		t.Fatalf("recovered unit still lists benched dbs: %v", h.Deactivated)
	}
	if len(h.SilentRecent) != 5 {
		t.Fatalf("silentRecent should have one slot per db: %v", h.SilentRecent)
	}

	// Verdict JSON carries the health fields through the wire format.
	var verdicts []map[string]interface{}
	getJSON(t, ts.URL+"/api/verdicts?limit=500", &verdicts)
	sawHealthField := false
	for _, v := range verdicts {
		hv, ok := v["health"].(string)
		if !ok {
			t.Fatalf("verdict missing health field: %v", v)
		}
		if _, ok := v["gapCells"].(float64); !ok {
			t.Fatalf("verdict missing gapCells field: %v", v)
		}
		if hv == "degraded" || hv == "skipped" {
			sawHealthField = true
		}
	}
	if !sawHealthField {
		t.Fatal("no degraded/skipped verdict crossed the JSON API")
	}
}
