package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := New(o, "unit-test", 16)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var body map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != 200 || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
}

func TestStatusAndVerdictsFlow(t *testing.T) {
	s, ts := newTestServer(t)
	// Stream a simulated unit with a stall through the server.
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 200, Seed: 1, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anomaly.Inject(u, []anomaly.Event{
		{Type: anomaly.Stall, DB: 2, Start: 80, Length: 40, Magnitude: 0.9},
	}, mathx.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	sample := make([][]float64, kpi.Count)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	for tick := 0; tick < 200; tick++ {
		for k := 0; k < kpi.Count; k++ {
			for d := 0; d < 5; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		if _, err := s.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	var status map[string]interface{}
	getJSON(t, ts.URL+"/api/status", &status)
	if status["ticksIngested"].(float64) != 200 {
		t.Fatalf("ticks = %v", status["ticksIngested"])
	}
	if status["abnormalVerdicts"].(float64) < 1 {
		t.Fatal("no abnormal verdicts recorded")
	}
	var verdicts []map[string]interface{}
	getJSON(t, ts.URL+"/api/verdicts?limit=5", &verdicts)
	if len(verdicts) == 0 || len(verdicts) > 5 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	// Bad limit.
	resp, _ := http.Get(ts.URL + "/api/verdicts?limit=-2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestThresholdsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	var th struct {
		Alpha        []float64 `json:"alpha"`
		Theta        float64   `json:"theta"`
		MaxTolerance int       `json:"maxTolerance"`
	}
	getJSON(t, ts.URL+"/api/thresholds", &th)
	if len(th.Alpha) != kpi.Count {
		t.Fatalf("alpha count = %d", len(th.Alpha))
	}
	// Update.
	th.Theta = 0.19
	buf, _ := json.Marshal(th)
	resp, err := http.Post(ts.URL+"/api/thresholds", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post status = %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/api/thresholds", &th)
	if th.Theta != 0.19 {
		t.Fatalf("theta = %v after update", th.Theta)
	}
	// Invalid thresholds rejected.
	bad := th
	bad.Alpha = bad.Alpha[:2]
	buf, _ = json.Marshal(bad)
	resp, err = http.Post(ts.URL+"/api/thresholds", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid thresholds status = %d", resp.StatusCode)
	}
}

func TestKPIsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var kpis []map[string]interface{}
	getJSON(t, ts.URL+"/api/kpis", &kpis)
	if len(kpis) != kpi.Count {
		t.Fatalf("kpis = %d", len(kpis))
	}
	if kpis[2]["name"] != "CPU Utilization" {
		t.Fatalf("kpi 2 = %v", kpis[2]["name"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/status", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	// Before any verdict: 404.
	resp, err := http.Get(ts.URL + "/api/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-verdict status = %d", resp.StatusCode)
	}
	// Stream enough ticks for a verdict.
	u, err := cluster.Simulate(cluster.Config{Name: "u", Ticks: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sample := make([][]float64, kpi.Count)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	for tick := 0; tick < 40; tick++ {
		for k := 0; k < kpi.Count; k++ {
			for d := 0; d < 5; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		if _, err := s.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	var out struct {
		Start int `json:"start"`
		Size  int `json:"size"`
		DBs   []struct {
			DB    int    `json:"db"`
			State string `json:"state"`
		} `json:"databases"`
	}
	getJSON(t, ts.URL+"/api/explain", &out)
	if len(out.DBs) != 5 {
		t.Fatalf("databases = %d", len(out.DBs))
	}
	if out.Size < 20 {
		t.Fatalf("size = %d", out.Size)
	}
}

func TestStatusHealthBlock(t *testing.T) {
	s, ts := newTestServer(t)
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 300, Seed: 7, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{
		Seed:         5,
		DropTickRate: 0.02,
		DropCellRate: 0.01,
		Silences:     []workload.Silence{{DB: 2, Start: 100, Length: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for {
		sample, ok := c.Next()
		if !ok {
			break
		}
		v, err := s.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil && v.Health != detect.HealthOK {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("fault plan produced no degraded/skipped verdicts")
	}

	var status struct {
		Health struct {
			GapCells         int   `json:"gapCells"`
			MissedTicks      int   `json:"missedTicks"`
			Deactivations    int   `json:"deactivations"`
			Reactivations    int   `json:"reactivations"`
			DegradedVerdicts int   `json:"degradedVerdicts"`
			SkippedRounds    int   `json:"skippedRounds"`
			Deactivated      []int `json:"deactivated"`
			SilentRecent     []int `json:"silentRecent"`
		} `json:"health"`
	}
	getJSON(t, ts.URL+"/api/status", &status)
	h := status.Health
	if h.GapCells == 0 || h.MissedTicks == 0 {
		t.Fatalf("health block missing gap accounting: %+v", h)
	}
	if h.Deactivations < 1 || h.Reactivations < 1 {
		t.Fatalf("silent db not benched+recovered in health block: %+v", h)
	}
	if h.DegradedVerdicts == 0 {
		t.Fatalf("degradedVerdicts not surfaced: %+v", h)
	}
	if len(h.Deactivated) != 0 {
		t.Fatalf("recovered unit still lists benched dbs: %v", h.Deactivated)
	}
	if len(h.SilentRecent) != 5 {
		t.Fatalf("silentRecent should have one slot per db: %v", h.SilentRecent)
	}

	// Verdict JSON carries the health fields through the wire format.
	var verdicts []map[string]interface{}
	getJSON(t, ts.URL+"/api/verdicts?limit=500", &verdicts)
	sawHealthField := false
	for _, v := range verdicts {
		hv, ok := v["health"].(string)
		if !ok {
			t.Fatalf("verdict missing health field: %v", v)
		}
		if _, ok := v["gapCells"].(float64); !ok {
			t.Fatalf("verdict missing gapCells field: %v", v)
		}
		if hv == "degraded" || hv == "skipped" {
			sawHealthField = true
		}
	}
	if !sawHealthField {
		t.Fatal("no degraded/skipped verdict crossed the JSON API")
	}
}

// --- Persistence, feedback, and threshold-atomicity tests ---

func TestFeedbackEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	// No store attached: 404.
	resp := getJSON(t, ts.URL+"/api/feedback", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unattached feedback store: %d", resp.StatusCode)
	}

	s.SetFeedback(feedback.NewStore(8))

	// Invalid marks are rejected.
	for _, bad := range []string{
		`{"start": -1, "size": 20}`,
		`{"start": 0, "size": 0}`,
		`{not json`,
	} {
		resp, err := http.Post(ts.URL+"/api/feedback", "application/json", bytes.NewBufferString(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("bad mark %q accepted", bad)
		}
	}

	// Valid marks round-trip.
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(map[string]interface{}{
			"start": i * 20, "size": 20, "predicted": i%2 == 0, "actual": true,
		})
		resp, err := http.Post(ts.URL+"/api/feedback", "application/json", bytes.NewBuffer(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mark %d rejected: %d", i, resp.StatusCode)
		}
	}
	var got struct {
		Count    int     `json:"count"`
		FMeasure float64 `json:"fMeasure"`
		Records  []struct {
			Start     int  `json:"start"`
			Size      int  `json:"size"`
			Predicted bool `json:"predicted"`
			Actual    bool `json:"actual"`
		} `json:"records"`
	}
	if resp := getJSON(t, ts.URL+"/api/feedback", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback GET: %d", resp.StatusCode)
	}
	if got.Count != 3 || len(got.Records) != 3 {
		t.Fatalf("feedback GET = %+v", got)
	}
	if got.Records[1].Start != 20 || !got.Records[1].Actual || got.Records[1].Predicted {
		t.Fatalf("record order/content wrong: %+v", got.Records)
	}
	if got.FMeasure <= 0 {
		t.Fatalf("fMeasure = %v", got.FMeasure)
	}
}

func TestStatusPersistenceBlock(t *testing.T) {
	s, ts := newTestServer(t)
	var body map[string]interface{}
	getJSON(t, ts.URL+"/api/status", &body)
	if _, present := body["persistence"]; present {
		t.Fatal("persistence block present without a provider")
	}
	s.SetPersistence(func() interface{} {
		return map[string]interface{}{"durableTick": 42, "fsyncPolicy": "interval"}
	})
	body = nil
	getJSON(t, ts.URL+"/api/status", &body)
	pers, ok := body["persistence"].(map[string]interface{})
	if !ok {
		t.Fatalf("persistence block = %T", body["persistence"])
	}
	if pers["durableTick"] != float64(42) || pers["fsyncPolicy"] != "interval" {
		t.Fatalf("persistence block content = %v", pers)
	}
}

func TestRestoreHistoryDedupesRegeneratedVerdicts(t *testing.T) {
	s, _ := newTestServer(t)
	mk := func(tick int) monitor.Verdict {
		var v monitor.Verdict
		v.Tick = tick
		v.Start = tick - 20
		v.Size = 20
		v.AbnormalDB = -1
		return v
	}
	s.RestoreHistory([]monitor.Verdict{mk(20), mk(40), mk(60)})

	s.mu.Lock()
	if len(s.verdicts) != 3 || s.restoredThrough != 60 {
		t.Fatalf("restored %d verdicts, through %d", len(s.verdicts), s.restoredThrough)
	}
	s.mu.Unlock()

	// Regenerated verdicts (tick <= restoredThrough) are dropped; fresh
	// ones append. Drive the dedupe path directly.
	for _, tick := range []int{40, 60, 80} {
		v := mk(tick)
		s.mu.Lock()
		if v.Tick > s.restoredThrough {
			s.verdicts = append(s.verdicts, toVerdictJSON(&v))
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.verdicts) != 4 {
		t.Fatalf("verdict buffer holds %d entries, want 4 (3 restored + 1 fresh)", len(s.verdicts))
	}
	if s.verdicts[3].Tick != 80 {
		t.Fatalf("fresh verdict lost: %+v", s.verdicts)
	}
}

func TestRestoreHistoryBoundsBuffer(t *testing.T) {
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
	}, kpi.Count, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := New(o, "bounded", 4)
	vs := make([]monitor.Verdict, 10)
	for i := range vs {
		vs[i].Tick = (i + 1) * 10
	}
	s.RestoreHistory(vs)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.verdicts) != 4 || s.verdicts[0].Tick != 70 || s.restoredThrough != 100 {
		t.Fatalf("bounded restore: %d entries, first tick %d, through %d",
			len(s.verdicts), s.verdicts[0].Tick, s.restoredThrough)
	}
}

// A threshold POST must apply atomically with respect to concurrent pushes
// and concurrent GETs: a reader can never observe a half-applied set (run
// under -race).
func TestThresholdsPostAtomicUnderPush(t *testing.T) {
	s, ts := newTestServer(t)
	u, err := cluster.Simulate(cluster.Config{
		Name: "c", Ticks: 600, Seed: 5, Profile: workload.TencentIrregular,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two coherent sets: either all alphas 0.65/theta 0.25, or all alphas
	// 0.60/theta 0.30. Any mix is a torn read.
	setA := window.DefaultThresholds(kpi.Count)
	setB := setA.Clone()
	for i := range setB.Alpha {
		setB.Alpha[i] = 0.60
	}
	setB.Theta = 0.30

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: alternate POSTs of the two sets
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			set := setA
			if i%2 == 1 {
				set = setB
			}
			body, _ := json.Marshal(thresholdsJSON{Alpha: set.Alpha, Theta: set.Theta, MaxTolerance: set.MaxTolerance})
			resp, err := http.Post(ts.URL+"/api/thresholds", "application/json", bytes.NewBuffer(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("POST thresholds: %d", resp.StatusCode)
				return
			}
		}
	}()
	go func() { // reader: every GET must be wholly one set
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var th thresholdsJSON
			getJSON(t, ts.URL+"/api/thresholds", &th)
			isA := th.Theta == setA.Theta
			want := setA.Alpha[0]
			if !isA {
				if th.Theta != setB.Theta {
					t.Errorf("torn theta %v", th.Theta)
					return
				}
				want = setB.Alpha[0]
			}
			for _, a := range th.Alpha {
				if a != want {
					t.Errorf("torn threshold read: theta=%v alpha=%v", th.Theta, th.Alpha)
					return
				}
			}
		}
	}()

	sample := make([][]float64, u.Series.KPIs)
	for k := range sample {
		sample[k] = make([]float64, u.Series.Databases)
	}
	for tick := 0; tick < 600; tick++ {
		for k := 0; k < u.Series.KPIs; k++ {
			for d := 0; d < u.Series.Databases; d++ {
				sample[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		if _, err := s.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}
