// Fleet aggregation: one HTTP surface over many per-unit Servers. The
// fleet daemon owns N units behind one scheduler; dashboards read
// region-wide totals and page through per-unit summaries instead of
// polling N ports. Pagination is strict — malformed offsets and limits
// are rejected with 400 exactly like the per-unit API's limit parameter.
package server

import (
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dbcatcher/internal/incident"
)

// maxFleetPage bounds one /api/fleet/status page so a single request can
// never serialize an unbounded number of unit summaries.
const maxFleetPage = 256

// defaultFleetPage is the /api/fleet/status page size when no limit is
// given.
const defaultFleetPage = 32

// Fleet serves the aggregated API over a fixed set of per-unit Servers.
// The unit set is immutable after construction; per-unit state is read
// through each Server's own lock, so handlers are safe against the
// scheduler pushing rounds concurrently.
type Fleet struct {
	units []*Server

	mu          sync.Mutex
	persistence func() interface{}
	scrape      func() interface{}
	replication func() interface{}
	incidents   *incident.Aggregator
	reqTimeout  time.Duration
	panics      atomic.Int64
	// ha holds the role/readiness/promotion wiring (see ha.go).
	ha haState
}

// NewFleet builds the aggregation surface. The slice is not copied; it
// must not be mutated afterwards.
func NewFleet(units []*Server) *Fleet {
	return &Fleet{units: units, reqTimeout: DefaultRequestTimeout}
}

// SetPersistence attaches a provider embedded as the "persistence" block
// of /api/fleet/status (e.g. store.FleetPersister.Status).
func (f *Fleet) SetPersistence(fn func() interface{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.persistence = fn
}

// SetScrape attaches a provider embedded as the "scrape" block of
// /api/fleet/status (e.g. every unit's scraper health in fleet scrape
// ingestion mode).
func (f *Fleet) SetScrape(fn func() interface{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scrape = fn
}

// SetReplication attaches a provider embedded as the "replication" block
// of /api/fleet/status (e.g. replicate.Server.StatusBlock: the fleet WAL's
// served extent plus every tracked standby's lag).
func (f *Fleet) SetReplication(fn func() interface{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replication = fn
}

// SetIncidents attaches the incident aggregator: it backs GET
// /api/incidents and the "incidents" block of /api/fleet/status. The
// aggregator is internally locked, so handlers read it while the feeder
// observes rounds.
func (f *Fleet) SetIncidents(a *incident.Aggregator) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.incidents = a
}

// SetRequestTimeout overrides the per-request bound applied by Handler
// (call before Handler; 0 disables the bound).
func (f *Fleet) SetRequestTimeout(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reqTimeout = d
}

// Handler returns the fleet routes, hardened like the per-unit API:
// per-request timeout, panic recovery into a JSON 500.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", f.ha.handleReadyz)
	mux.HandleFunc("/api/promote", f.ha.handlePromote)
	mux.HandleFunc("/api/fleet/status", f.handleStatus)
	mux.HandleFunc("/api/fleet/verdicts", f.handleVerdicts)
	mux.HandleFunc("/api/incidents", f.handleIncidents)
	f.mu.Lock()
	timeout := f.reqTimeout
	f.mu.Unlock()
	return Recover(Timeout(mux, timeout), f.recordPanic)
}

func (f *Fleet) recordPanic(v interface{}, stack []byte) {
	if f.panics.Add(1) == 1 {
		log.Printf("server: recovered fleet handler panic: %v\n%s", v, stack)
		return
	}
	log.Printf("server: recovered fleet handler panic: %v (stack logged on first occurrence)", v)
}

// fleetUnitJSON is one unit's row in a /api/fleet/status page.
type fleetUnitJSON struct {
	Unit             int    `json:"unit"`
	Name             string `json:"name"`
	TicksIngested    int    `json:"ticksIngested"`
	Verdicts         int    `json:"verdicts"`
	AbnormalVerdicts int    `json:"abnormalVerdicts"`
	DegradedVerdicts int    `json:"degradedVerdicts"`
	SkippedRounds    int    `json:"skippedRounds"`
	GapCells         int    `json:"gapCells"`
	Deactivated      []int  `json:"deactivated"`
	LastVerdictTick  int    `json:"lastVerdictTick"` // -1 before the first
}

// fleetSummary snapshots one unit's row under its own lock.
func (s *Server) fleetSummary(unit int) fleetUnitJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	abnormal := 0
	for _, v := range s.verdicts {
		if v.Abnormal {
			abnormal++
		}
	}
	last := -1
	if n := len(s.verdicts); n > 0 {
		last = s.verdicts[n-1].Tick
	}
	h := s.online.Health()
	deactivated := make([]int, 0)
	for d, down := range h.AutoDeactivated {
		if down {
			deactivated = append(deactivated, d)
		}
	}
	return fleetUnitJSON{
		Unit:             unit,
		Name:             s.unitName,
		TicksIngested:    s.online.Processor().Ticks(),
		Verdicts:         len(s.verdicts),
		AbnormalVerdicts: abnormal,
		DegradedVerdicts: h.DegradedVerdicts,
		SkippedRounds:    h.SkippedRounds,
		GapCells:         h.GapCells,
		Deactivated:      deactivated,
		LastVerdictTick:  last,
	}
}

// verdictPage copies out the newest limit verdicts with Tick > since
// under the unit's lock (since < 0 means unfiltered).
func (s *Server) verdictPage(limit, since int) (string, []verdictJSON) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit > s.maxHist {
		limit = s.maxHist
	}
	return s.unitName, filterVerdicts(s.verdicts, limit, since)
}

// handleStatus serves GET /api/fleet/status?offset=&limit=: region-wide
// totals over every unit plus one page of per-unit summaries. A page
// starting past the last unit is an empty page (200), not an error;
// malformed pagination is a 400.
func (f *Fleet) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	offset, ok := queryInt(r, "offset", 0)
	if !ok {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	limit, ok := queryInt(r, "limit", defaultFleetPage)
	if !ok || limit < 1 {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return
	}
	if limit > maxFleetPage {
		limit = maxFleetPage
	}

	totals := struct {
		TicksIngested    int `json:"ticksIngested"`
		Verdicts         int `json:"verdicts"`
		AbnormalVerdicts int `json:"abnormalVerdicts"`
		DegradedVerdicts int `json:"degradedVerdicts"`
		SkippedRounds    int `json:"skippedRounds"`
		GapCells         int `json:"gapCells"`
		DeactivatedDBs   int `json:"deactivatedDbs"`
	}{}
	page := make([]fleetUnitJSON, 0, limit)
	for i := range f.units {
		row := f.units[i].fleetSummary(i)
		totals.TicksIngested += row.TicksIngested
		totals.Verdicts += row.Verdicts
		totals.AbnormalVerdicts += row.AbnormalVerdicts
		totals.DegradedVerdicts += row.DegradedVerdicts
		totals.SkippedRounds += row.SkippedRounds
		totals.GapCells += row.GapCells
		totals.DeactivatedDBs += len(row.Deactivated)
		if i >= offset && len(page) < limit {
			page = append(page, row)
		}
	}

	f.mu.Lock()
	persistence := f.persistence
	scrapeFn := f.scrape
	replication := f.replication
	incidents := f.incidents
	timeout := f.reqTimeout
	f.mu.Unlock()
	body := map[string]interface{}{
		"units":  len(f.units),
		"offset": offset,
		"limit":  limit,
		"count":  len(page),
		"totals": totals,
		"page":   page,
		"server": map[string]interface{}{
			"panics":           f.panics.Load(),
			"requestTimeoutMs": timeout.Milliseconds(),
		},
	}
	if persistence != nil {
		body["persistence"] = persistence()
	}
	if scrapeFn != nil {
		body["scrape"] = scrapeFn()
	}
	if replication != nil {
		body["replication"] = replication()
	}
	if incidents != nil {
		body["incidents"] = incidents.Status()
	}
	if role := f.ha.roleBlock(); role != nil {
		body["role"] = role
	}
	writeJSON(w, http.StatusOK, body)
}

// handleVerdicts serves GET /api/fleet/verdicts?unit=&limit=: one unit's
// recent verdict stream. The unit key is mandatory; an out-of-range unit
// is a 404 and malformed parameters are 400s.
func (f *Fleet) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Query().Get("unit") == "" {
		http.Error(w, "unit required", http.StatusBadRequest)
		return
	}
	unit, ok := queryInt(r, "unit", 0)
	if !ok {
		http.Error(w, "bad unit", http.StatusBadRequest)
		return
	}
	if unit >= len(f.units) {
		http.Error(w, "no such unit", http.StatusNotFound)
		return
	}
	limit, ok := queryInt(r, "limit", 50)
	if !ok || limit < 1 {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return
	}
	since, ok := queryInt(r, "since", -1)
	if !ok {
		http.Error(w, "bad since", http.StatusBadRequest)
		return
	}
	name, verdicts := f.units[unit].verdictPage(limit, since)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"unit":     unit,
		"name":     name,
		"count":    len(verdicts),
		"verdicts": verdicts,
	})
}

// handleIncidents serves GET /api/incidents?offset=&limit=: one page of
// clustered fleet incidents (retained closed clusters plus live snapshots
// of open ones), cluster-ID ascending. 404 when the incident stage is not
// enabled; malformed pagination is a 400 like every fleet endpoint.
func (f *Fleet) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	f.mu.Lock()
	agg := f.incidents
	f.mu.Unlock()
	if agg == nil {
		http.Error(w, "incident aggregation not enabled", http.StatusNotFound)
		return
	}
	offset, ok := queryInt(r, "offset", 0)
	if !ok {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	limit, ok := queryInt(r, "limit", defaultFleetPage)
	if !ok || limit < 1 {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return
	}
	if limit > maxFleetPage {
		limit = maxFleetPage
	}
	total, rows := agg.Page(offset, limit)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"total":     total,
		"offset":    offset,
		"limit":     limit,
		"count":     len(rows),
		"status":    agg.Status(),
		"incidents": rows,
	})
}
