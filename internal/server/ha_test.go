package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"dbcatcher/internal/kpi"
)

func TestReadyzDefaultAndWiredCheck(t *testing.T) {
	s, ts := newTestServer(t)

	// No check wired: alive implies ready.
	var body map[string]string
	if resp := getJSON(t, ts.URL+"/readyz", &body); resp.StatusCode != 200 || body["status"] != "ready" {
		t.Fatalf("default readyz = %d %v", resp.StatusCode, body)
	}

	// A follower still catching up is unready, with the reason surfaced.
	ready := false
	s.SetReady(func() error {
		if !ready {
			return errors.New("follower 42 records behind primary")
		}
		return nil
	})
	resp := getJSON(t, ts.URL+"/readyz", &body)
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "unready" {
		t.Fatalf("unready readyz = %d %v", resp.StatusCode, body)
	}
	if !strings.Contains(body["reason"], "behind primary") {
		t.Fatalf("reason not surfaced: %v", body)
	}

	// Promotion flips the same probe to ready without restarting anything.
	ready = true
	if resp := getJSON(t, ts.URL+"/readyz", &body); resp.StatusCode != 200 || body["status"] != "ready" {
		t.Fatalf("post-promotion readyz = %d %v", resp.StatusCode, body)
	}
}

func TestPromoteEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	// Not wired (already primary / HA off): 404.
	resp, err := http.Post(ts.URL+"/api/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unwired promote = %d", resp.StatusCode)
	}

	// Wired but refused (e.g. follower too stale): 409 with the error.
	s.SetPromote(func() (uint64, error) { return 0, errors.New("mirror is stale") })
	resp, err = http.Post(ts.URL+"/api/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var failBody map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&failBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(failBody["error"], "stale") {
		t.Fatalf("refused promote = %d %v", resp.StatusCode, failBody)
	}

	// Accepted: 200 with the adopted epoch.
	s.SetPromote(func() (uint64, error) { return 7, nil })
	resp, err = http.Post(ts.URL+"/api/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var okBody struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&okBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || okBody.Status != "promoted" || okBody.Epoch != 7 {
		t.Fatalf("promote = %d %+v", resp.StatusCode, okBody)
	}

	// GET is not a promotion.
	getResp, err := http.Get(ts.URL + "/api/promote")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET promote = %d", getResp.StatusCode)
	}
}

func TestStatusETagCachingAndRoleBlock(t *testing.T) {
	s, ts := newTestServer(t)
	role := "follower"
	s.SetRole(func() interface{} { return map[string]string{"role": role} })

	fetch := func(inm string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/status", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, b
	}

	resp1, body1 := fetch("")
	etag := resp1.Header.Get("ETag")
	if resp1.StatusCode != 200 || etag == "" {
		t.Fatalf("status = %d, etag %q", resp1.StatusCode, etag)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(body1, &doc); err != nil {
		t.Fatal(err)
	}
	roleBlock, ok := doc["role"].(map[string]interface{})
	if !ok || roleBlock["role"] != "follower" {
		t.Fatalf("role block = %v", doc["role"])
	}

	// Unchanged state: same ETag, and a conditional GET is a bodyless 304.
	resp2, body2 := fetch("")
	if resp2.Header.Get("ETag") != etag || string(body2) != string(body1) {
		t.Fatal("idle re-fetch rebuilt or changed the document")
	}
	resp3, body3 := fetch(etag)
	if resp3.StatusCode != http.StatusNotModified || len(body3) != 0 {
		t.Fatalf("conditional GET = %d with %d body bytes", resp3.StatusCode, len(body3))
	}

	// A state change (one ingested tick) invalidates the cache: new
	// document, new ETag, and the stale tag no longer matches.
	sample := make([][]float64, kpi.Count)
	for k := range sample {
		sample[k] = make([]float64, 5)
	}
	if _, err := s.Push(sample); err != nil {
		t.Fatal(err)
	}
	resp4, body4 := fetch(etag)
	if resp4.StatusCode != 200 {
		t.Fatalf("post-change conditional GET = %d, want fresh 200", resp4.StatusCode)
	}
	if resp4.Header.Get("ETag") == etag {
		t.Fatal("ETag did not change with the state")
	}
	if string(body4) == string(body1) {
		t.Fatal("document did not change with the state")
	}

	// Role flips (promotion) surface after an Invalidate.
	role = "primary"
	s.Invalidate()
	_, body5 := fetch("")
	if err := json.Unmarshal(body5, &doc); err != nil {
		t.Fatal(err)
	}
	if rb, _ := doc["role"].(map[string]interface{}); rb["role"] != "primary" {
		t.Fatalf("promoted role block = %v", doc["role"])
	}
}

func TestETagMatch(t *testing.T) {
	const etag = `"s17"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{`"s17"`, true},
		{`W/"s17"`, true},         // RFC 7232 §3.2: weak comparison
		{`"s16", "s17"`, true},    // comma-separated list
		{` "s16" , W/"s17" `, true},
		{"*", true},               // any current representation
		{`"s1"`, false},           // must not substring-match "s17"
		{`"s170"`, false},
		{`"s16", "s18"`, false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, etag); got != c.want {
			t.Fatalf("etagMatch(%q, %q) = %v, want %v", c.header, etag, got, c.want)
		}
	}
}

func TestStatusIfNoneMatchForms(t *testing.T) {
	s, ts := newTestServer(t)
	_ = s
	fetch := func(inm string) int {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/status", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	first, err := http.Get(ts.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /api/status")
	}
	if code := fetch("*"); code != http.StatusNotModified {
		t.Fatalf("If-None-Match: * = %d, want 304", code)
	}
	if code := fetch("W/" + etag); code != http.StatusNotModified {
		t.Fatalf("weak tag = %d, want 304", code)
	}
	if code := fetch(`"bogus", ` + etag); code != http.StatusNotModified {
		t.Fatalf("tag in list = %d, want 304", code)
	}
	if code := fetch(`"bogus"`); code != http.StatusOK {
		t.Fatalf("non-matching tag = %d, want 200", code)
	}
}

func TestFleetReadyzAndRole(t *testing.T) {
	f, ts := newTestFleet(t)
	var body map[string]string
	if resp := getJSON(t, ts.URL+"/readyz", &body); resp.StatusCode != 200 {
		t.Fatalf("fleet readyz = %d", resp.StatusCode)
	}
	f.SetReady(func() error { return errors.New("store closed") })
	if resp := getJSON(t, ts.URL+"/readyz", &body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fleet unready readyz = %d", resp.StatusCode)
	}
	f.SetRole(func() interface{} { return map[string]string{"role": "primary"} })
	var doc map[string]interface{}
	if resp := getJSON(t, ts.URL+"/api/fleet/status", &doc); resp.StatusCode != 200 {
		t.Fatalf("fleet status = %d", resp.StatusCode)
	}
	if rb, _ := doc["role"].(map[string]interface{}); rb["role"] != "primary" {
		t.Fatalf("fleet role block = %v", doc["role"])
	}
}
