package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecoverTurnsPanicIntoJSON500(t *testing.T) {
	var gotVal interface{}
	var gotStack []byte
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), func(v interface{}, stack []byte) { gotVal, gotStack = v, stack })

	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "internal server error") {
		t.Fatalf("body = %q", body)
	}
	if gotVal != "kaboom" || len(gotStack) == 0 {
		t.Fatalf("onPanic got (%v, %d bytes of stack)", gotVal, len(gotStack))
	}
}

func TestRecoverRepanicsErrAbortHandler(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), func(v interface{}, stack []byte) {
		t.Error("onPanic must not observe ErrAbortHandler")
	})
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestTimeoutBoundsSlowHandlers(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	ts := httptest.NewServer(Timeout(slow, 30*time.Millisecond))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout middleware did not bound the request")
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Fatalf("body = %q", body)
	}
}

func TestTimeoutPassesFastHandlersThrough(t *testing.T) {
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("ok"))
	})
	ts := httptest.NewServer(Timeout(fast, time.Second))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("fast handler = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain" {
		t.Fatalf("fast handler content type = %q (timeout pre-set must be overwritten)", ct)
	}
	// Disabled bound is the identity.
	if Timeout(fast, 0).(http.HandlerFunc) == nil {
		t.Fatal("zero timeout must return the handler unchanged")
	}
}

func TestStatusServerAndScrapeBlocks(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetScrape(func() interface{} {
		return map[string]int{"rounds": 7}
	})
	s.recordPanic("test-panic", []byte("stack"))
	s.recordPanic("test-panic-2", []byte("stack"))

	var body map[string]interface{}
	if resp := getJSON(t, ts.URL+"/api/status", &body); resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	srv, ok := body["server"].(map[string]interface{})
	if !ok {
		t.Fatalf("no server block: %v", body)
	}
	if srv["panics"].(float64) != 2 {
		t.Fatalf("panics = %v", srv["panics"])
	}
	if srv["requestTimeoutMs"].(float64) != float64(DefaultRequestTimeout.Milliseconds()) {
		t.Fatalf("requestTimeoutMs = %v", srv["requestTimeoutMs"])
	}
	scr, ok := body["scrape"].(map[string]interface{})
	if !ok || scr["rounds"].(float64) != 7 {
		t.Fatalf("scrape block = %v", body["scrape"])
	}
}

// The assembled Handler survives a panicking status provider end to end:
// the request comes back as a JSON 500, the counter increments, and the
// next request is served normally.
func TestHandlerRecoversPanickingProvider(t *testing.T) {
	s, ts := newTestServer(t)
	poisoned := true
	s.SetScrape(func() interface{} {
		if poisoned {
			panic("poisoned provider")
		}
		return map[string]int{"rounds": 1}
	})
	resp, err := http.Get(ts.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned status = %d", resp.StatusCode)
	}
	if s.panics.Load() != 1 {
		t.Fatalf("panics = %d", s.panics.Load())
	}
	poisoned = false
	var body map[string]interface{}
	if resp := getJSON(t, ts.URL+"/api/status", &body); resp.StatusCode != 200 {
		t.Fatalf("recovered status = %d", resp.StatusCode)
	}
	if body["scrape"] == nil {
		t.Fatal("scrape block missing after recovery")
	}
}
