package server

import (
	"net/http"
	"runtime/debug"
	"time"
)

// Recover wraps next so a handler panic produces a JSON 500 instead of
// killing the connection (and, under http.Server's default behaviour, the
// whole request goroutine's response). onPanic, when non-nil, observes the
// recovered value and stack. http.ErrAbortHandler is re-panicked — it is
// the sanctioned way to sever a connection, not a bug.
func Recover(next http.Handler, onPanic func(v interface{}, stack []byte)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if onPanic != nil {
				onPanic(v, debug.Stack())
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"internal server error"}` + "\n"))
		}()
		next.ServeHTTP(w, r)
	})
}

// Timeout bounds every request to d: a handler that has not finished in
// time gets a JSON 503 and its work is abandoned. d <= 0 disables the
// bound. Handler panics propagate through (http.TimeoutHandler re-panics
// them in the serving goroutine), so wrap Timeout inside Recover.
func Timeout(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	th := http.TimeoutHandler(next, d, `{"error":"request timed out"}`+"\n")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Pre-set the type for the timeout body; a handler that finishes in
		// time overwrites it when its headers are copied out.
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}
