package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/fleet"
	"dbcatcher/internal/incident"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

// seedAggregator drives a small correlated fault through a real
// aggregator: one closed two-member cluster plus one still-open incident.
func seedAggregator() *incident.Aggregator {
	a := incident.New(incident.Config{ProximityTicks: 16, CloseAfter: 30, MaxLag: 16})
	a.ObserveRound(120, []incident.Event{
		{Unit: 0, DB: 2, KPIs: incident.KPISet(0).With(2), Start: 100, End: 120},
		{Unit: 1, DB: 2, KPIs: incident.KPISet(0).With(12), Start: 104, End: 120},
	})
	for tick := 124; tick <= 180; tick += 4 {
		a.ObserveRound(tick, nil)
	}
	a.ObserveRound(400, []incident.Event{
		{Unit: 2, DB: 0, KPIs: incident.KPISet(0).With(5), Start: 380, End: 400},
	})
	return a
}

type incidentsPageJSON struct {
	Total     int                       `json:"total"`
	Offset    int                       `json:"offset"`
	Limit     int                       `json:"limit"`
	Count     int                       `json:"count"`
	Status    incident.Status           `json:"status"`
	Incidents []*incident.ClusterReport `json:"incidents"`
}

func TestIncidentsEndpoint(t *testing.T) {
	f, ts := newTestFleet(t)
	f.SetIncidents(seedAggregator())

	var body incidentsPageJSON
	if resp := getJSON(t, ts.URL+"/api/incidents", &body); resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body.Total != 2 || body.Count != 2 {
		t.Fatalf("total/count = %d/%d, want 2/2", body.Total, body.Count)
	}
	closed, open := body.Incidents[0], body.Incidents[1]
	if closed.Open || len(closed.Members) != 2 {
		t.Fatalf("first row should be the closed 2-member cluster: %+v", closed)
	}
	if !open.Open || open.Members[0].Unit != 2 {
		t.Fatalf("second row should be the open unit-2 cluster: %+v", open)
	}
	if len(closed.Cascade) != 1 || closed.Cascade[0].Lead != 2 {
		t.Fatalf("closed cluster cascade = %+v", closed.Cascade)
	}
	if body.Status.OpenIncidents != 1 || body.Status.ClosedClusters != 1 {
		t.Fatalf("status block = %+v", body.Status)
	}

	// Paging and strict parameter handling.
	if resp := getJSON(t, ts.URL+"/api/incidents?offset=1&limit=1", &body); resp.StatusCode != 200 {
		t.Fatalf("paged status = %d", resp.StatusCode)
	}
	if body.Total != 2 || body.Count != 1 || !body.Incidents[0].Open {
		t.Fatalf("paged row: total/count = %d/%d", body.Total, body.Count)
	}
	status := func(query string) int {
		resp, err := http.Get(ts.URL + "/api/incidents" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, q := range []string{"?offset=-1", "?offset=+1", "?offset=1x", "?limit=0", "?limit=5abc", "?limit=99999999999999999999"} {
		if code := status(q); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, code)
		}
	}
	if code := status("?offset=50"); code != 200 {
		t.Fatalf("offset past end: %d, want 200 empty page", code)
	}
	resp, err := http.Post(ts.URL+"/api/incidents", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: %d, want 405", resp.StatusCode)
	}
}

func TestIncidentsEndpointDisabled(t *testing.T) {
	_, ts := newTestFleet(t)
	resp, err := http.Get(ts.URL + "/api/incidents")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("without aggregator: status %d, want 404", resp.StatusCode)
	}
}

func TestFleetStatusIncidentsBlock(t *testing.T) {
	f, ts := newTestFleet(t)
	f.SetIncidents(seedAggregator())
	var body struct {
		Incidents *incident.Status `json:"incidents"`
	}
	if resp := getJSON(t, ts.URL+"/api/fleet/status", &body); resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body.Incidents == nil {
		t.Fatal("no incidents block in fleet status")
	}
	if body.Incidents.ClosedClusters != 1 || body.Incidents.OpenIncidents != 1 {
		t.Fatalf("incidents block = %+v", body.Incidents)
	}
}

// TestVerdictsSinceFilter pins the incremental-polling satellite: strict
// digits-only since= on both the per-unit and fleet verdict endpoints,
// returning only verdicts strictly newer than the given tick.
func TestVerdictsSinceFilter(t *testing.T) {
	_, ts := newTestFleet(t)
	var unitBody struct {
		Count    int           `json:"count"`
		Verdicts []verdictJSON `json:"verdicts"`
	}
	if resp := getJSON(t, ts.URL+"/api/fleet/verdicts?unit=0", &unitBody); resp.StatusCode != 200 {
		t.Fatalf("unit fetch: %d", resp.StatusCode)
	}
	if unitBody.Count < 2 {
		t.Fatalf("need at least 2 verdicts, have %d", unitBody.Count)
	}
	cut := unitBody.Verdicts[unitBody.Count-2].Tick

	var filtered struct {
		Count    int           `json:"count"`
		Verdicts []verdictJSON `json:"verdicts"`
	}
	if resp := getJSON(t, ts.URL+"/api/fleet/verdicts?unit=0&since="+itoa(cut), &filtered); resp.StatusCode != 200 {
		t.Fatalf("since fetch: %d", resp.StatusCode)
	}
	if filtered.Count != 1 || filtered.Verdicts[0].Tick <= cut {
		t.Fatalf("since=%d returned %d verdicts (first tick %d), want exactly the newer one",
			cut, filtered.Count, filtered.Verdicts[0].Tick)
	}
	// since= at the newest tick is an empty page, not an error.
	newest := unitBody.Verdicts[unitBody.Count-1].Tick
	if resp := getJSON(t, ts.URL+"/api/fleet/verdicts?unit=0&since="+itoa(newest), &filtered); resp.StatusCode != 200 || filtered.Count != 0 {
		t.Fatalf("since=newest: status %d count %d, want 200/0", resp.StatusCode, filtered.Count)
	}
	// Malformed since is rejected on both endpoints.
	for _, q := range []string{"?unit=0&since=-1", "?unit=0&since=+5", "?unit=0&since=5abc", "?unit=0&since=99999999999999999999"} {
		resp, err := http.Get(ts.URL + "/api/fleet/verdicts" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestUnitVerdictsSinceFilter(t *testing.T) {
	s, ts := newTestServer(t)
	history := make([]monitor.Verdict, 3)
	for i := range history {
		history[i].Tick = 20 * (i + 1)
		history[i].Start = history[i].Tick - 19
		history[i].Size = 20
		history[i].AbnormalDB = -1
	}
	s.RestoreHistory(history)
	var all []verdictJSON
	if resp := getJSON(t, ts.URL+"/api/verdicts", &all); resp.StatusCode != 200 {
		t.Fatalf("baseline: %d", resp.StatusCode)
	}
	if len(all) < 2 {
		t.Fatalf("need at least 2 verdicts, have %d", len(all))
	}
	cut := all[len(all)-2].Tick
	var filtered []verdictJSON
	if resp := getJSON(t, ts.URL+"/api/verdicts?since="+itoa(cut), &filtered); resp.StatusCode != 200 {
		t.Fatalf("since fetch: %d", resp.StatusCode)
	}
	if len(filtered) != 1 || filtered[0].Tick <= cut {
		t.Fatalf("since=%d returned %d verdicts, want 1 newer", cut, len(filtered))
	}
	for _, q := range []string{"?since=-1", "?since=+5", "?since=5abc", "?since=0x1", "?since=99999999999999999999"} {
		resp, err := http.Get(ts.URL + "/api/verdicts" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestFleetConcurrentServing is the race-enabled coverage satellite:
// readers hammer /api/fleet/status, /api/fleet/verdicts, and
// /api/incidents while fleet.Monitor.Push rounds (feeding the incident
// aggregator) are in flight. Run under -race this proves the serving path
// and the round scheduler share no unsynchronized state.
func TestFleetConcurrentServing(t *testing.T) {
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: 160, Seed: 5, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	const nUnits = 3
	units := make([]*Server, nUnits)
	pushers := make([]fleet.Pusher, nUnits)
	for i := range units {
		o, err := monitor.NewOnline(detect.Config{
			Thresholds: window.DefaultThresholds(kpi.Count),
			Workers:    1,
		}, kpi.Count, 5)
		if err != nil {
			t.Fatal(err)
		}
		units[i] = New(o, "unit", 16)
		pushers[i] = units[i]
	}
	mon, err := fleet.NewMonitor(pushers, 2)
	if err != nil {
		t.Fatal(err)
	}
	agg := incident.New(incident.Config{})
	f := NewFleet(units)
	f.SetIncidents(agg)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/api/fleet/status", "/api/fleet/verdicts?unit=0", "/api/fleet/verdicts?unit=2&since=40", "/api/incidents"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(ts.URL + path)
	}

	c, err := cluster.NewCollector(u.Series, workload.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	samples := make([][][]float64, nUnits)
	tick := 0
	for {
		sample, ok := c.Next()
		if !ok {
			break
		}
		for i := range samples {
			samples[i] = sample
		}
		verdicts, err := mon.Push(samples)
		if err != nil {
			t.Fatal(err)
		}
		tick++
		// Feed abnormal verdicts to the aggregator the way the daemon does
		// (KPI attribution elided — unattributed events are legal).
		var events []incident.Event
		for unit, v := range verdicts {
			if v != nil && v.Abnormal {
				events = append(events, incident.Event{
					Unit: unit, DB: v.AbnormalDB, Start: v.Start, End: v.Start + v.Size,
				})
			}
		}
		agg.ObserveRound(tick, events)
	}
	close(done)
	wg.Wait()
}
