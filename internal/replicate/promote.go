package replicate

import (
	"bytes"
	"context"
	"fmt"
	"net/http"

	"dbcatcher/internal/store"
)

// Promote finalizes a follower's takeover: it opens the mirrored data
// directory as a real store (running standard recovery over the
// byte-identical mirror) and durably adopts the next fencing epoch before
// returning, so every write the new primary makes is provably newer than
// anything the old one can still produce. The caller rehydrates monitors
// from the returned Recovered exactly as a restart would, then resumes
// feeding from its durable horizons.
func Promote(dir string, opts store.Options) (*store.Store, *store.Recovered, uint64, error) {
	st, rec, err := store.Open(dir, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	epoch := rec.LatestEpoch() + 1
	if err := st.AdoptEpoch(epoch, rec.DurableTick()); err != nil {
		st.Close()
		return nil, nil, 0, fmt.Errorf("replicate: adopt epoch %d: %w", epoch, err)
	}
	return st, rec, epoch, nil
}

// FenceOldPrimary posts the newly adopted epoch to the demoted primary's
// fence endpoint. Best-effort by design: promotion usually happens
// because the old primary is unreachable, and a node that rejoins later
// is fenced by the epoch in the replicated log instead.
func FenceOldPrimary(ctx context.Context, client *http.Client, primary string, epoch uint64) error {
	if client == nil {
		client = http.DefaultClient
	}
	body := fmt.Sprintf(`{"epoch":%d}`, epoch)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, primary+"/replicate/fence", bytes.NewReader([]byte(body)))
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("replicate: fence: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate: fence HTTP %d", resp.StatusCode)
	}
	return nil
}
