package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dbcatcher/internal/store"
)

// Promote finalizes a follower's takeover: it opens the mirrored data
// directory as a real store (running standard recovery over the
// byte-identical mirror) and durably adopts the next fencing epoch before
// returning, so every write the new primary makes is provably newer than
// anything the old one can still produce. observed is the highest epoch
// the tailer saw the primary *advertise* (manifest or replicated record);
// the adopted epoch is one above the max of that and the mirror's own
// durable epoch, so a takeover whose tailing lagged behind an epoch bump
// still lands strictly above the old primary. The caller rehydrates
// monitors from the returned Recovered exactly as a restart would, then
// resumes feeding from its durable horizons.
func Promote(dir string, opts store.Options, observed uint64) (*store.Store, *store.Recovered, uint64, error) {
	st, rec, err := store.Open(dir, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	epoch := rec.LatestEpoch()
	if observed > epoch {
		epoch = observed
	}
	epoch++
	if err := st.AdoptEpoch(epoch, rec.DurableTick()); err != nil {
		st.Close()
		return nil, nil, 0, fmt.Errorf("replicate: adopt epoch %d: %w", epoch, err)
	}
	return st, rec, epoch, nil
}

// FenceOldPrimary posts the newly adopted epoch to the demoted primary's
// fence endpoint. Best-effort by design: promotion usually happens
// because the old primary is unreachable, and a node that rejoins later
// is fenced by the epoch in the replicated log instead. The promoted
// daemon's epoch Guard keeps retrying this contact in the background
// until the demotion sticks.
func FenceOldPrimary(ctx context.Context, client *http.Client, primary string, epoch uint64) error {
	if client == nil {
		client = http.DefaultClient
	}
	body := fmt.Sprintf(`{"epoch":%d}`, epoch)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, primary+"/replicate/fence", bytes.NewReader([]byte(body)))
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("replicate: fence: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate: fence HTTP %d", resp.StatusCode)
	}
	return nil
}

// PeerEpoch probes a peer's replication manifest and returns the epoch
// and fenced flag it advertises. serving is false when the peer is
// reachable but not serving replication (a follower, or replication
// disabled) — there is no epoch to compare against. A transport failure
// returns an error: the caller cannot distinguish "down" from
// "partitioned" and must decide how much proof it needs.
func PeerEpoch(ctx context.Context, client *http.Client, peer string) (epoch uint64, fenced, serving bool, err error) {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/replicate/manifest", nil)
	if err != nil {
		return 0, false, false, fmt.Errorf("replicate: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, false, fmt.Errorf("replicate: peer manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		return 0, false, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, false, fmt.Errorf("replicate: peer manifest HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return 0, false, false, fmt.Errorf("replicate: peer manifest: %w", err)
	}
	var m store.Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return 0, false, false, fmt.Errorf("replicate: peer manifest: %w", err)
	}
	return m.Epoch, m.Fenced, true, nil
}

// VerifyBootEpoch guards a primary boot against resurrecting a demoted
// node: before adopting next as its fencing epoch, the booting node
// probes its configured peer. A peer already serving replication at an
// epoch >= next proves this node's log is not the newest history — under
// systemd Restart=always a crashed-and-failed-over primary would
// otherwise recompute LatestEpoch()+1 from its own stale log and come
// back as a second primary at the same epoch. The boot must refuse and
// the operator restart it as a follower. An unreachable peer (nil error)
// does not block the boot: availability would otherwise require both
// nodes up, and the serving-time epoch Guard converges the pair if the
// peer turns out to be alive across a partition.
func VerifyBootEpoch(ctx context.Context, client *http.Client, peer string, next uint64) error {
	peerEpoch, _, serving, err := PeerEpoch(ctx, client, peer)
	if err != nil || !serving {
		return nil
	}
	if peerEpoch >= next {
		return fmt.Errorf("replicate: peer %s already serves epoch %d (our next would be %d); this node's history is stale — restart it with -follow %s", peer, peerEpoch, next, peer)
	}
	return nil
}
