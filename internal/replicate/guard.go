package replicate

import (
	"context"
	"net/http"
	"sync"
	"time"

	"dbcatcher/internal/mathx"
	"dbcatcher/internal/store"
)

// GuardConfig tunes an epoch Guard. Zero values get safe defaults.
type GuardConfig struct {
	// Peer is the counterpart node's base URL (the standby's address on a
	// primary; the demoted primary's address on a freshly promoted one).
	Peer string
	// Client issues the probes (default: 2s-timeout client).
	Client *http.Client
	// Interval is the probe cadence (default 2s, jittered).
	Interval time.Duration
	// Seed keys the probe jitter.
	Seed uint64
	// OnSelfFence fires once when the guard demotes the local store after
	// observing the peer at an equal-or-higher epoch. The daemon uses it
	// to flip readiness and log; the store is already fenced when it runs.
	OnSelfFence func(peerEpoch uint64)
}

// GuardStatus is a point-in-time view of the guard for status reporting.
type GuardStatus struct {
	// Probes counts completed peer manifest fetches (successful contacts).
	Probes uint64
	// PeerEpoch is the epoch the peer advertised at last contact.
	PeerEpoch uint64
	// PeerFenced reports the peer's fenced flag at last contact.
	PeerFenced bool
	// FencesSent counts fence posts delivered to a stale peer.
	FencesSent uint64
	// SelfFenced reports the guard demoted the local store.
	SelfFenced bool
	// LastError is the most recent probe failure, empty after a success.
	LastError string
}

// Guard is the serving-time half of epoch fencing. A one-shot fence post
// at promotion time is not enough: across a partition both nodes can stay
// alive as primaries, the old one never observing the new epoch. The
// guard closes that gap from both directions — every serving primary with
// a known peer probes the peer's manifest on an interval, and
//
//   - a peer at a *lower* epoch is a zombie primary: the guard posts a
//     fence to it, retrying every interval until the peer reports fenced
//     or stops serving replication;
//   - a peer at an *equal or higher* epoch proves our own history is the
//     stale fork: the guard fences the local store (writes fail with
//     ErrFenced from that point on) and reports via OnSelfFence.
//
// Equal epochs can only arise from a partitioned double boot; both sides
// self-fence, which is safe (no fork grows) and loud (both /readyz probes
// flip), leaving the operator to pick the survivor.
type Guard struct {
	cfg GuardConfig
	st  *store.Store
	rng *mathx.RNG

	mu     sync.Mutex
	status GuardStatus
}

// NewGuard wraps an open primary store with an epoch guard against peer.
func NewGuard(st *store.Store, cfg GuardConfig) *Guard {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	return &Guard{cfg: cfg, st: st, rng: mathx.NewRNG(cfg.Seed).Split(0x9a2d)}
}

// Status returns a copy of the guard's current state.
func (g *Guard) Status() GuardStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.status
}

// Step performs one guard pass: probe the peer, self-fence or re-fence as
// the epoch comparison demands. done reports the guard has nothing left
// to do (the local store was fenced — by us or anyone else).
func (g *Guard) Step(ctx context.Context) (done bool, err error) {
	own, fenced := g.st.Epoch()
	if fenced {
		return true, nil
	}
	peerEpoch, peerFenced, serving, err := PeerEpoch(ctx, g.cfg.Client, g.cfg.Peer)
	if err != nil {
		g.mu.Lock()
		g.status.LastError = err.Error()
		g.mu.Unlock()
		return false, err
	}
	g.mu.Lock()
	g.status.Probes++
	g.status.LastError = ""
	if serving {
		g.status.PeerEpoch = peerEpoch
		g.status.PeerFenced = peerFenced
	}
	g.mu.Unlock()
	if !serving {
		// The peer is a follower (or replication is off there): there is
		// no competing history to compare against.
		return false, nil
	}
	if peerEpoch >= own {
		// Our log is the stale fork (or an equal-epoch double boot).
		// Demote ourselves before another durable write lands.
		if err := g.st.SelfFence(peerEpoch); err != nil {
			return false, err
		}
		g.mu.Lock()
		g.status.SelfFenced = true
		g.mu.Unlock()
		if g.cfg.OnSelfFence != nil {
			g.cfg.OnSelfFence(peerEpoch)
		}
		return true, nil
	}
	if peerFenced {
		// The demotion already stuck; keep watching in case the peer
		// reboots un-fenced.
		return false, nil
	}
	// The peer is a zombie at an older epoch: (re-)fence it until the
	// demotion sticks. A conflict answer means it raced past us — the
	// next probe re-reads its epoch and self-fences if so.
	if err := FenceOldPrimary(ctx, g.cfg.Client, g.cfg.Peer, own); err != nil {
		g.mu.Lock()
		g.status.LastError = err.Error()
		g.mu.Unlock()
		return false, err
	}
	g.mu.Lock()
	g.status.FencesSent++
	g.status.PeerFenced = true
	g.mu.Unlock()
	return false, nil
}

// Run loops Step at the configured interval (jittered) until ctx is done
// or the guard has nothing left to watch. Probe failures are absorbed
// into Status — an unreachable peer is the normal case after a clean
// failover, and the loop keeps watching for it to come back.
func (g *Guard) Run(ctx context.Context) {
	for {
		done, _ := g.Step(ctx)
		if done {
			return
		}
		half := g.cfg.Interval / 2
		d := half + time.Duration(g.rng.Float64()*float64(half))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
	}
}
