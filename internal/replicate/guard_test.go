package replicate

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"dbcatcher/internal/store"
)

// listenAt rebinds the host:port of a previously closed test server URL.
func listenAt(rawURL string) (net.Listener, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	return net.Listen("tcp", u.Host)
}

// epochStore opens a store and durably adopts the given epoch (0 = none).
func epochStore(t *testing.T, epoch uint64) *store.Store {
	t.Helper()
	st, _, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if epoch > 0 {
		if err := st.AdoptEpoch(epoch, 0); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func testGuard(st *store.Store, peer string) *Guard {
	return NewGuard(st, GuardConfig{
		Peer:     peer,
		Client:   &http.Client{Timeout: 300 * time.Millisecond},
		Interval: 5 * time.Millisecond,
		Seed:     7,
	})
}

// TestPromoteAdoptsObservedEpoch pins the strict-monotonicity rule: a
// takeover whose tailing lagged behind the primary's last epoch bump must
// still land strictly above it. The mirror's own log says epoch 1, but
// the tailer observed the primary advertise epoch 5 — the promoted node
// adopts 6, never 2.
func TestPromoteAdoptsObservedEpoch(t *testing.T) {
	src := epochStore(t, 1)
	srv := httptest.NewServer(NewServer(src).Handler())
	defer srv.Close()
	dir := t.TempDir()
	tl, err := NewTailer(fastCfg(srv.URL, dir))
	if err != nil {
		t.Fatal(err)
	}
	stepUntilCaughtUp(t, tl, 3)

	st, _, epoch, err := Promote(dir, store.Options{Fsync: store.FsyncAlways}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if epoch != 6 {
		t.Fatalf("promoted epoch = %d, want 6 (observed 5 beats mirror's 1)", epoch)
	}
	// And the adopted epoch is durable: a reopen recovers it.
	_, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := rec.LatestEpoch(); e != 6 {
		t.Fatalf("durable epoch after promotion = %d, want 6", e)
	}
}

// TestGuardRefencesStalePeer is the partition-both-alive case the one-shot
// fence at promotion time cannot cover: the promoted node (epoch 2) keeps
// probing the old primary (epoch 1) and fences it on first contact, so a
// zombie that survived the partition stops accepting durable writes.
func TestGuardRefencesStalePeer(t *testing.T) {
	old := epochStore(t, 1)
	oldSrv := httptest.NewServer(NewServer(old).Handler())
	defer oldSrv.Close()
	promoted := epochStore(t, 2)

	g := testGuard(promoted, oldSrv.URL)
	done, err := g.Step(context.Background())
	if err != nil || done {
		t.Fatalf("guard step: done=%v err=%v", done, err)
	}
	if _, err := old.AppendCounters(store.CountersRecord{}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("stale peer write after guard contact: %v, want ErrFenced", err)
	}
	st := g.Status()
	if st.FencesSent != 1 || !st.PeerFenced || st.PeerEpoch != 1 {
		t.Fatalf("guard status %+v", st)
	}

	// The next pass sees the peer already fenced and does not re-post.
	if _, err := g.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := g.Status(); st.FencesSent != 1 {
		t.Fatalf("re-fenced an already-fenced peer: %+v", st)
	}
	// The promoted node itself stays writable throughout.
	if _, err := promoted.AppendCounters(store.CountersRecord{}); err != nil {
		t.Fatalf("promoted node wrongly affected: %v", err)
	}
}

// TestGuardSelfFencesOnNewerPeer is the rebooted-zombie direction: an old
// primary that came back (e.g. under a process supervisor) probes its
// peer, finds a strictly newer epoch, and demotes itself rather than
// forking durable history.
func TestGuardSelfFencesOnNewerPeer(t *testing.T) {
	newPrimary := epochStore(t, 3)
	srv := httptest.NewServer(NewServer(newPrimary).Handler())
	defer srv.Close()
	zombie := epochStore(t, 1)

	fencedAt := uint64(0)
	g := NewGuard(zombie, GuardConfig{
		Peer:        srv.URL,
		Client:      &http.Client{Timeout: 300 * time.Millisecond},
		Interval:    5 * time.Millisecond,
		OnSelfFence: func(e uint64) { fencedAt = e },
	})
	done, err := g.Step(context.Background())
	if err != nil || !done {
		t.Fatalf("guard step: done=%v err=%v", done, err)
	}
	if fencedAt != 3 {
		t.Fatalf("OnSelfFence epoch = %d, want 3", fencedAt)
	}
	if _, err := zombie.AppendCounters(store.CountersRecord{}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("zombie write after self-fence: %v, want ErrFenced", err)
	}
	if st := g.Status(); !st.SelfFenced || st.PeerEpoch != 3 {
		t.Fatalf("guard status %+v", st)
	}
	// The legitimate primary is untouched.
	if _, err := newPrimary.AppendCounters(store.CountersRecord{}); err != nil {
		t.Fatal(err)
	}
}

// TestGuardSelfFencesOnEqualEpoch pins the double-boot fork case: two
// primaries at the same epoch is already a fork, and the only safe
// response is to stop writing — on both sides if both run guards.
func TestGuardSelfFencesOnEqualEpoch(t *testing.T) {
	a := epochStore(t, 2)
	b := epochStore(t, 2)
	srvB := httptest.NewServer(NewServer(b).Handler())
	defer srvB.Close()

	g := testGuard(a, srvB.URL)
	done, err := g.Step(context.Background())
	if err != nil || !done {
		t.Fatalf("guard step: done=%v err=%v", done, err)
	}
	if _, err := a.AppendCounters(store.CountersRecord{}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("equal-epoch write: %v, want ErrFenced", err)
	}
}

// TestGuardRunLoopFencesPeerThatComesBack drives the background loop: the
// peer is down at first (probe errors absorbed), then appears at a stale
// epoch and is fenced.
func TestGuardRunLoopFencesPeerThatComesBack(t *testing.T) {
	old := epochStore(t, 1)
	handler := NewServer(old).Handler()
	srv := httptest.NewServer(handler)
	srv.Close() // down from the start: probes fail

	promoted := epochStore(t, 2)
	g := testGuard(promoted, srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	go func() { g.Run(ctx); close(loopDone) }()

	time.Sleep(30 * time.Millisecond)
	if st := g.Status(); st.Probes != 0 || st.LastError == "" {
		t.Fatalf("guard should only have failures while the peer is down: %+v", st)
	}

	// The old primary comes back on the same address, still at epoch 1.
	ln, err := listenAt(srv.URL)
	if err != nil {
		t.Skipf("cannot rebind test address: %v", err)
	}
	back := &http.Server{Handler: handler}
	go back.Serve(ln)
	defer back.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := old.AppendCounters(store.CountersRecord{}); errors.Is(err, store.ErrFenced) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined stale peer never fenced: %+v", g.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-loopDone:
	case <-time.After(2 * time.Second):
		t.Fatal("guard loop did not exit on cancel")
	}
}

// TestVerifyBootEpoch pins the boot-time refusal: a peer already serving
// an equal-or-newer epoch blocks the boot; a stale, absent, or
// non-replicating peer does not.
func TestVerifyBootEpoch(t *testing.T) {
	peerStore := epochStore(t, 2)
	srv := httptest.NewServer(NewServer(peerStore).Handler())
	defer srv.Close()
	ctx := context.Background()

	// Equal and lower intended epochs are refused: our history is stale.
	for _, next := range []uint64{1, 2} {
		if err := VerifyBootEpoch(ctx, nil, srv.URL, next); err == nil {
			t.Fatalf("boot at epoch %d allowed against a peer at 2", next)
		}
	}
	// Strictly above the peer: boot proceeds.
	if err := VerifyBootEpoch(ctx, nil, srv.URL, 3); err != nil {
		t.Fatalf("boot at epoch 3 blocked: %v", err)
	}
	// A peer not serving replication (a follower's probe mux) is no
	// evidence either way.
	probes := httptest.NewServer(http.NotFoundHandler())
	defer probes.Close()
	if err := VerifyBootEpoch(ctx, nil, probes.URL, 1); err != nil {
		t.Fatalf("non-replicating peer blocked the boot: %v", err)
	}
	// An unreachable peer must not block the boot (availability), only
	// the serving-time guard can judge it later.
	if err := VerifyBootEpoch(ctx, nil, "http://127.0.0.1:1", 1); err != nil {
		t.Fatalf("unreachable peer blocked the boot: %v", err)
	}
}
