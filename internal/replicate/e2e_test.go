package replicate

import (
	"bytes"
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/detect"
	"dbcatcher/internal/feedback"
	"dbcatcher/internal/incident"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/monitor"
	"dbcatcher/internal/store"
	"dbcatcher/internal/window"
	"dbcatcher/internal/workload"
)

const (
	haTicks    = 400
	haDBs      = 5
	haKillTick = 257
	haFbCap    = 512
)

// haSamples mirrors the store e2e workload: a simulated unit with an
// injected stall and a few wholly-missed collection ticks.
func haSamples(t *testing.T) [][][]float64 {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "ha", Ticks: haTicks, Seed: 1207, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anomaly.Inject(u, []anomaly.Event{
		{Type: anomaly.Stall, DB: 2, Start: 150, Length: 40, Magnitude: 0.9},
	}, mathx.NewRNG(7)); err != nil {
		t.Fatal(err)
	}
	samples := make([][][]float64, haTicks)
	for tick := 0; tick < haTicks; tick++ {
		if tick%89 == 17 {
			continue
		}
		s := make([][]float64, kpi.Count)
		for k := range s {
			s[k] = make([]float64, haDBs)
			for d := 0; d < haDBs; d++ {
				s[k][d] = u.Series.Data[k][d].At(tick)
			}
		}
		samples[tick] = s
	}
	return samples
}

func haOnline(t *testing.T) *monitor.Online {
	t.Helper()
	o, err := monitor.NewOnline(detect.Config{
		Thresholds: window.DefaultThresholds(kpi.Count),
		Flex:       window.FlexConfig{Initial: 10, Max: 30, ExhaustState: window.Abnormal},
		Workers:    1,
	}, kpi.Count, haDBs)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// haDrive pushes samples[from:to) through o with the scripted operator
// activity: a threshold retune after the 5th published verdict and DBA
// marks on every verdict past markAbove.
func haDrive(t *testing.T, o *monitor.Online, fb *feedback.Store, samples [][][]float64, from, to int, published *int, markAbove int) []*monitor.Verdict {
	t.Helper()
	var out []*monitor.Verdict
	for tick := from; tick < to; tick++ {
		v, err := o.Push(samples[tick])
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if v == nil {
			continue
		}
		out = append(out, v)
		*published++
		if *published == 5 {
			th := o.Thresholds()
			th.Theta = 0.30
			th.Alpha[1] = 0.70
			if err := o.SetThresholds(th); err != nil {
				t.Fatal(err)
			}
		}
		if fb != nil && v.Tick > markAbove {
			fb.Add(feedback.Record{
				Start: v.Start, Size: v.Size,
				Predicted: v.Abnormal,
				Actual:    v.Start%3 == 0,
			})
		}
	}
	return out
}

func haVerdictValues(vs []*monitor.Verdict) []monitor.Verdict {
	out := make([]monitor.Verdict, len(vs))
	for i, v := range vs {
		out[i] = *v
		out[i].MeanCorr = 0 // ephemeral drift signal, not durable
	}
	return out
}

// TestKillPrimaryPromoteStandbyBitIdentical is the HA acceptance e2e: a
// primary persists a detection run and serves replication; a warm standby
// tails its WAL. Mid-run the primary is killed (abandoned, no flush, no
// close) and the standby is promoted: it opens its mirror, adopts the next
// epoch, rehydrates, and resumes feeding from its durable horizon. The
// promoted node's durable verdict stream, thresholds, and feedback must be
// bit-identical to an uninterrupted single-daemon reference run — and the
// dead primary, on fencing, must refuse every further write.
func TestKillPrimaryPromoteStandbyBitIdentical(t *testing.T) {
	samples := haSamples(t)

	// Reference: the uninterrupted, non-persisted run.
	refOnline := haOnline(t)
	refFb := feedback.NewStore(haFbCap)
	refCount := 0
	refVerdicts := haDrive(t, refOnline, refFb, samples, 0, haTicks, &refCount, -1)
	if refCount < 8 {
		t.Fatalf("reference run published only %d verdicts", refCount)
	}

	// ----- primary: persisted run with replication serving -----
	dirP := t.TempDir()
	stP, recP, err := store.Open(dirP, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := stP.AdoptEpoch(recP.LatestEpoch()+1, 0); err != nil {
		t.Fatal(err)
	}
	oP := haOnline(t)
	fbP := feedback.NewStoreFrom(haFbCap, recP.FeedbackRecords())
	pP := store.NewPersister(stP, recP, fbP, 3)
	oP.SetPersister(pP)
	fbP.SetJournal(pP)
	srv := httptest.NewServer(NewServer(stP).Handler())

	// ----- standby: tails the primary while it runs -----
	dirF := t.TempDir()
	tl, err := NewTailer(fastCfg(srv.URL, dirF))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	count := 0
	var pre []*monitor.Verdict
	for tick := 0; tick < haKillTick; tick++ {
		pre = append(pre, haDrive(t, oP, fbP, samples, tick, tick+1, &count, -1)...)
		if tick%40 == 13 {
			if err := tl.Step(ctx); err != nil {
				t.Fatalf("tail step at tick %d: %v", tick, err)
			}
		}
	}
	if count >= refCount || count < 6 {
		t.Fatalf("pre-kill run published %d verdicts (reference %d)", count, refCount)
	}
	// Final catch-up, then the primary dies: the process is abandoned
	// mid-run (no flush, no close, no final snapshot) and its endpoint
	// goes away.
	stepUntilCaughtUp(t, tl, 3)
	srv.Close()

	// The follower's failure budget fills — the auto-promotion signal.
	for i := 0; i < 3; i++ {
		if err := tl.Step(ctx); err == nil {
			t.Fatal("step succeeded against a dead primary")
		}
	}
	if f := tl.Status().ConsecutiveFailures; f < 3 {
		t.Fatalf("consecutive failures = %d, want >= 3", f)
	}

	// ----- promotion: the mirror becomes the primary store -----
	stF, recF, epoch, err := Promote(dirF, store.Options{Fsync: store.FsyncAlways}, tl.Status().Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	// Fencing the old primary: it refuses post-demotion writes even
	// though its process is still alive.
	if err := stP.Fence(epoch); err != nil {
		t.Fatal(err)
	}
	if _, err := stP.AppendCounters(store.CountersRecord{}); err == nil {
		t.Fatal("demoted primary accepted a write")
	}

	// Rehydration: the mirror holds the full WAL (no snapshot crossed the
	// wire — no compaction gap opened), so the standby replays from
	// scratch under its durable horizons, exactly like a daemon restart
	// with a WAL-only directory.
	if ms := recF.MonitorState(); ms != nil {
		t.Fatalf("unexpected snapshot state in mirror: %+v", ms)
	}
	durable := recF.DurableTick()
	if durable <= 0 {
		t.Fatal("no durable horizon replicated")
	}
	oF := haOnline(t)
	fbF := feedback.NewStoreFrom(haFbCap, recF.FeedbackRecords())
	pF := store.NewPersister(stF, recF, fbF, 3)
	oF.SetPersister(pF)
	fbF.SetJournal(pF)

	// Resume the feed from tick 0 (deterministic catch-up; the persister
	// suppresses re-appending at or below the horizon, the scripted marks
	// skip replayed verdicts) and run to the end of the workload.
	countF := 0
	post := haDrive(t, oF, fbF, samples, 0, haTicks, &countF, durable)

	// The published stream across the pair equals the reference: the
	// primary's pre-kill verdicts, then the promoted standby's verdicts
	// past the durable horizon.
	var combined []*monitor.Verdict
	combined = append(combined, pre...)
	for _, v := range post {
		if v.Tick > durable {
			combined = append(combined, v)
		}
	}
	if got, want := haVerdictValues(combined), haVerdictValues(refVerdicts); !reflect.DeepEqual(got, want) {
		t.Fatalf("published verdict stream diverged across the failover:\n got  %d verdicts\n want %d", len(got), len(want))
	}

	// Durable state: flush, reopen, compare everything against the
	// reference — verdict history, thresholds, feedback.
	if err := pF.Flush(oF); err != nil {
		t.Fatal(err)
	}
	if err := stF.Close(); err != nil {
		t.Fatal(err)
	}
	st3, rec3, err := store.Open(dirF, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got, want := rec3.VerdictHistory(), haVerdictValues(refVerdicts); !reflect.DeepEqual(got, want) {
		t.Fatalf("durable verdict history diverged: %d vs %d verdicts", len(got), len(want))
	}
	if got, want := oF.Thresholds(), refOnline.Thresholds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("promoted thresholds %+v, want %+v", got, want)
	}
	if got, want := fbF.Snapshot(), refFb.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("feedback diverged:\n got  %+v\n want %+v", got, want)
	}
	if e := rec3.LatestEpoch(); e != 2 {
		t.Fatalf("promoted store epoch = %d, want 2", e)
	}
	stP.Close()
}

// ----- fleet/incident variant -----

type haRound struct {
	tick   int
	events []incident.Event
}

func haIncidentRounds() []haRound {
	byTick := map[int][]incident.Event{
		120: {{Unit: 0, DB: 2, KPIs: incident.KPISet(0).With(2), Start: 100, End: 120}},
		140: {{Unit: 0, DB: 2, KPIs: incident.KPISet(0).With(2), Start: 120, End: 140}},
		220: {{Unit: 9, DB: 1, KPIs: incident.KPISet(0).With(5), Start: 200, End: 220}},
	}
	for u := 1; u <= 3; u++ {
		byTick[124] = append(byTick[124], incident.Event{Unit: u, DB: 2, KPIs: incident.KPISet(0).With(12), Start: 104, End: 124})
		byTick[144] = append(byTick[144], incident.Event{Unit: u, DB: 2, KPIs: incident.KPISet(0).With(12), Start: 124, End: 144})
	}
	var rounds []haRound
	for tick := 0; tick <= 300; tick += 4 {
		rounds = append(rounds, haRound{tick: tick, events: byTick[tick]})
	}
	return rounds
}

func haIncidentCfg() incident.Config {
	return incident.Config{ProximityTicks: 16, CloseAfter: 30, MaxLag: 16, MaxHistory: 64}
}

func haFeedRounds(a *incident.Aggregator, fp *store.FleetPersister, rounds []haRound) {
	var buf []incident.Transition
	a.SetPersist(func(tr incident.Transition) { buf = append(buf, tr) })
	for _, r := range rounds {
		buf = buf[:0]
		a.ObserveRound(r.tick, r.events)
		fp.RecordIncidentRound(r.tick, buf)
	}
}

// TestKillPrimaryPromoteFleetIncidentsBitIdentical pins the fleet-scale
// failover: a primary journals unit verdicts and incident rounds, a
// standby tails the multiplexed WAL, the primary dies mid-stream, and the
// promoted aggregator — restored from the mirrored journal and resuming
// the deterministic round stream — must fingerprint bit-identically to an
// uninterrupted run, with every unit's verdict history intact.
func TestKillPrimaryPromoteFleetIncidentsBitIdentical(t *testing.T) {
	rounds := haIncidentRounds()

	ref := incident.New(haIncidentCfg())
	for _, r := range rounds {
		ref.ObserveRound(r.tick, r.events)
	}
	want := ref.Fingerprint()

	// Primary: journal the first 40 rounds plus a few unit verdicts.
	dirP := t.TempDir()
	stP, recP, err := store.Open(dirP, store.Options{Fsync: store.FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := stP.AdoptEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	fpP := store.NewFleetPersister(stP, recP)
	for u := 0; u < 3; u++ {
		for _, tick := range []int{20, 40, 60} {
			var v monitor.Verdict
			v.Tick = tick
			v.Start = tick - 19
			v.Size = 20
			v.AbnormalDB = -1
			fpP.Unit(u).PersistVerdict(&v, monitor.PersistContext{})
		}
	}
	aP := incident.New(haIncidentCfg())
	haFeedRounds(aP, fpP, rounds[:40])
	srv := httptest.NewServer(NewServer(stP).Handler())

	// Standby tails everything, then the primary dies.
	dirF := t.TempDir()
	tl, err := NewTailer(fastCfg(srv.URL, dirF))
	if err != nil {
		t.Fatal(err)
	}
	stepUntilCaughtUp(t, tl, 5)
	srv.Close()
	if err := tl.Step(context.Background()); err == nil {
		t.Fatal("step succeeded against a dead primary")
	}

	// Promote and rehydrate: aggregator from the mirrored journal, unit
	// verdict histories from the mirrored unit records.
	stF, recF, epoch, err := Promote(dirF, store.Options{Fsync: store.FsyncAlways}, tl.Status().Epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer stF.Close()
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	// The mirrored unit verdict streams equal the primary's durable ones
	// (recP predates the appends, so compare against a fresh recovery).
	stP.Close()
	stP2, recP2, err := store.Open(dirP, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stP2.Close()
	for u := 0; u < 3; u++ {
		if got, want := recF.UnitVerdictHistory(u), recP2.UnitVerdictHistory(u); !reflect.DeepEqual(got, want) {
			t.Fatalf("unit %d verdict history diverged:\n got  %+v\n want %+v", u, got, want)
		}
	}

	aF := incident.New(haIncidentCfg())
	if err := aF.Restore(recF.IncidentTransitions()); err != nil {
		t.Fatal(err)
	}
	// Resume the deterministic round stream from the top; the restored
	// aggregator skips rounds at or below its horizon and continues live.
	haFeedRounds(aF, store.NewFleetPersister(stF, recF), rounds)
	if got := aF.Fingerprint(); !bytes.Equal(got, want) {
		t.Fatalf("promoted incident state diverged:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestTailerRunLoopAndStaleness exercises the background Run loop: it
// tails a live primary continuously, reports caught-up, then goes stale
// once the primary disappears — all within the staleness budget math.
func TestTailerRunLoopAndStaleness(t *testing.T) {
	st := primaryWithRecords(t, store.Options{Fsync: store.FsyncAlways}, 10)
	srv := httptest.NewServer(NewServer(st).Handler())

	cfg := fastCfg(srv.URL, t.TempDir())
	cfg.Poll = 10 * time.Millisecond
	cfg.StalenessBudget = 150 * time.Millisecond
	cfg.Attempts = 1
	tl, err := NewTailer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { tl.Run(ctx); close(done) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := tl.Status()
		if s.CaughtUp && s.Applied == 10 && !s.Stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run loop never caught up: %+v", tl.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	for {
		if tl.Status().Stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("staleness never reported: %+v", tl.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tl.Status().ConsecutiveFailures == 0 {
		t.Fatalf("no failures counted after primary death: %+v", tl.Status())
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}
