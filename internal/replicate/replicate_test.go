package replicate

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dbcatcher/internal/store"
)

// fastCfg returns a tailer config tuned for tests: tiny backoffs, a short
// client timeout so hang faults resolve quickly.
func fastCfg(primary, dir string) Config {
	return Config{
		Primary:     primary,
		Dir:         dir,
		Client:      &http.Client{Timeout: 300 * time.Millisecond},
		Attempts:    5,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Seed:        42,
	}
}

// primaryWithRecords opens a primary store and appends n counter records.
func primaryWithRecords(t *testing.T, opts store.Options, n int) *store.Store {
	t.Helper()
	st, _, err := store.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for i := 0; i < n; i++ {
		if _, err := st.AppendCounters(store.CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// stepUntilCaughtUp drives Step until the tailer reports caught-up, with a
// bounded pass budget so a divergence fails fast instead of hanging.
func stepUntilCaughtUp(t *testing.T, tl *Tailer, passes int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < passes; i++ {
		err := tl.Step(ctx)
		if st := tl.Status(); err == nil && st.CaughtUp {
			return
		}
	}
	t.Fatalf("not caught up after %d passes: %+v", passes, tl.Status())
}

// mirrorEqualsPrimary asserts every advertised segment's committed bytes
// are byte-identical between the primary's directory and the mirror.
func mirrorEqualsPrimary(t *testing.T, st *store.Store, mirror string) {
	t.Helper()
	m, err := st.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range m.Segments {
		want, err := os.ReadFile(filepath.Join(st.Dir(), seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(mirror, seg.Name))
		if err != nil {
			t.Fatalf("mirror missing %s: %v", seg.Name, err)
		}
		if !bytes.Equal(got, want[:seg.Size]) {
			t.Fatalf("mirror %s diverges from primary (%d vs %d committed bytes)", seg.Name, len(got), seg.Size)
		}
	}
}

func TestTailerMirrorsByteIdentical(t *testing.T) {
	// Small segments force several rotations, so the catch-up spans sealed
	// and active segments.
	st := primaryWithRecords(t, store.Options{Fsync: store.FsyncAlways, SegmentBytes: 128}, 30)
	srv := httptest.NewServer(NewServer(st).Handler())
	defer srv.Close()

	var got []store.SeqRecord
	dir := t.TempDir()
	cfg := fastCfg(srv.URL, dir)
	cfg.MaxChunk = 64 // multiple chunks per segment
	cfg.OnRecord = func(r store.SeqRecord) { got = append(got, r) }
	tl, err := NewTailer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepUntilCaughtUp(t, tl, 3)

	if len(got) != 30 {
		t.Fatalf("delivered %d records, want 30", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Counters.GapCells != i {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	mirrorEqualsPrimary(t, st, dir)

	// More appends on the primary: the next pass tails just the delta.
	for i := 30; i < 45; i++ {
		if _, err := st.AppendCounters(store.CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	stepUntilCaughtUp(t, tl, 3)
	if len(got) != 45 {
		t.Fatalf("delivered %d records after delta, want 45", len(got))
	}
	mirrorEqualsPrimary(t, st, dir)

	// A restarted follower resumes from its mirror: the records replay
	// locally (no network), then tailing continues without duplicates.
	var resumed []store.SeqRecord
	cfg2 := fastCfg(srv.URL, dir)
	cfg2.OnRecord = func(r store.SeqRecord) { resumed = append(resumed, r) }
	tl2, err := NewTailer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	stepUntilCaughtUp(t, tl2, 3)
	if !reflect.DeepEqual(resumed, got) {
		t.Fatalf("resumed replay diverged: %d vs %d records", len(resumed), len(got))
	}
}

// faultScript wraps the replication handler with deterministic injected
// faults keyed by request count: 5xx bursts, a truncated segment body, and
// a hang longer than the client timeout.
type faultScript struct {
	inner http.Handler
	mu    sync.Mutex
	n     int
}

func (f *faultScript) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	switch {
	case n%7 == 2:
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	case n == 5:
		// Hang past the client timeout: the tailer must cut the fetch
		// loose and retry rather than wedge.
		time.Sleep(600 * time.Millisecond)
		http.Error(w, "late", http.StatusServiceUnavailable)
		return
	case n == 9 && r.URL.Path != "/replicate/manifest":
		// Truncated body: claim a full response, deliver half. The
		// follower's frame verification must reject the torn tail and
		// refetch — never mirror it.
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(rec.Code)
		_, _ = w.Write(body[:len(body)/2])
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestTailerSurvivesInjectedFaults(t *testing.T) {
	st := primaryWithRecords(t, store.Options{Fsync: store.FsyncAlways, SegmentBytes: 128}, 40)
	srv := httptest.NewServer(&faultScript{inner: NewServer(st).Handler()})
	defer srv.Close()

	var got []store.SeqRecord
	dir := t.TempDir()
	cfg := fastCfg(srv.URL, dir)
	cfg.MaxChunk = 64
	cfg.OnRecord = func(r store.SeqRecord) { got = append(got, r) }
	tl, err := NewTailer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepUntilCaughtUp(t, tl, 20)

	if len(got) != 40 {
		t.Fatalf("delivered %d records through faults, want 40", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Counters.GapCells != i {
			t.Fatalf("record %d diverged under faults: %+v", i, r)
		}
	}
	mirrorEqualsPrimary(t, st, dir)
}

func TestTailerSnapshotRestartAfterCompaction(t *testing.T) {
	dirP := t.TempDir()
	st, _, err := store.Open(dirP, store.Options{Fsync: store.FsyncAlways, SegmentBytes: 64, RetainSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.AdoptEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := st.AppendCounters(store.CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewServer(st).Handler())
	defer srv.Close()

	// The follower catches up fully, then goes dark while the primary
	// writes far ahead and compacts.
	var got []store.SeqRecord
	resets := 0
	dirF := t.TempDir()
	cfg := fastCfg(srv.URL, dirF)
	cfg.OnRecord = func(r store.SeqRecord) { got = append(got, r) }
	cfg.OnReset = func(snap *store.SnapshotState) {
		resets++
		got = nil // in-memory state rebuilds from the snapshot
	}
	tl, err := NewTailer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepUntilCaughtUp(t, tl, 3)
	if len(got) == 0 {
		t.Fatal("no records before the dark period")
	}

	for i := 10; i < 60; i++ {
		if _, err := st.AppendCounters(store.CountersRecord{GapCells: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot(store.SnapshotState{Seq: st.LastSeq(), Counters: store.CountersRecord{GapCells: 59}}); err != nil {
		t.Fatal(err)
	}
	m, err := st.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Segments[0].Base <= tl.Status().Applied+1 {
		t.Fatalf("compaction did not pass the follower (lowest base %d, applied %d)", m.Segments[0].Base, tl.Status().Applied)
	}

	// The next pass must take the clean restart-from-snapshot path.
	stepUntilCaughtUp(t, tl, 3)
	status := tl.Status()
	if resets != 1 || status.SnapshotRestarts != 1 {
		t.Fatalf("resets = %d, status %+v; want exactly one snapshot restart", resets, status)
	}
	if status.Applied != 61 || !status.CaughtUp {
		t.Fatalf("status after restart %+v", status)
	}
	// Everything the snapshot does not cover arrived as records, in order.
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("gap after snapshot restart at %d: %+v -> %+v", i, got[i-1], got[i])
		}
	}

	// The mirror is a valid store: promotion recovers snapshot + suffix
	// and the epoch carried over.
	pst, rec, epoch, err := Promote(dirF, store.Options{Fsync: store.FsyncAlways}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if rec.Snapshot == nil || rec.Snapshot.Seq != 61 {
		t.Fatalf("promoted recovery snapshot %+v", rec.Snapshot)
	}
	if c := rec.LastCounters(); c.GapCells != 59 {
		t.Fatalf("promoted counters %+v", c)
	}
}

func TestTailerRefusesStalePrimary(t *testing.T) {
	// Primary A at epoch 5; the follower mirrors it (including the epoch
	// record).
	dirA := t.TempDir()
	stA, _, err := store.Open(dirA, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	if err := stA.AdoptEpoch(5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := stA.AppendCounters(store.CountersRecord{GapCells: 1}); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(NewServer(stA).Handler())
	defer srvA.Close()

	dirF := t.TempDir()
	tl, err := NewTailer(fastCfg(srvA.URL, dirF))
	if err != nil {
		t.Fatal(err)
	}
	stepUntilCaughtUp(t, tl, 3)
	if e := tl.Status().Epoch; e != 5 {
		t.Fatalf("observed epoch %d, want 5", e)
	}

	// Primary B is a stale node at epoch 3. A restarted follower over the
	// same mirror must refuse it: its own records prove epoch 5 exists.
	stB := primaryWithRecords(t, store.Options{Fsync: store.FsyncAlways}, 1)
	if err := stB.AdoptEpoch(3, 0); err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(NewServer(stB).Handler())
	defer srvB.Close()
	tl2, err := NewTailer(fastCfg(srvB.URL, dirF))
	if err != nil {
		t.Fatal(err)
	}
	err = tl2.Step(context.Background())
	if !errors.Is(err, ErrStalePrimary) {
		t.Fatalf("tailing a stale primary: %v, want ErrStalePrimary", err)
	}
	if tl2.Status().ConsecutiveFailures != 1 {
		t.Fatalf("status %+v", tl2.Status())
	}
}

func TestFenceEndpointAndPromotion(t *testing.T) {
	stOld, _, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer stOld.Close()
	if err := stOld.AdoptEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(stOld).Handler())
	defer srv.Close()
	ctx := context.Background()

	// A stale fence (not above the primary's epoch) is refused: the node
	// stays primary.
	if err := FenceOldPrimary(ctx, nil, srv.URL, 1); err == nil {
		t.Fatal("stale fence accepted")
	}
	if _, err := stOld.AppendCounters(store.CountersRecord{}); err != nil {
		t.Fatalf("primary wrongly fenced: %v", err)
	}

	// Promotion elsewhere adopts epoch 2 and fences the old primary; its
	// post-demotion writes must be rejected.
	if err := FenceOldPrimary(ctx, nil, srv.URL, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := stOld.AppendCounters(store.CountersRecord{}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("post-demotion append: %v, want ErrFenced", err)
	}

	// Malformed fence documents are rejected outright.
	for _, body := range []string{"", "{", `{"epoch":0}`, `{"epoch":-4}`} {
		resp, err := http.Post(srv.URL+"/replicate/fence", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("fence body %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestServerSegmentEndpointValidation(t *testing.T) {
	st := primaryWithRecords(t, store.Options{Fsync: store.FsyncAlways}, 3)
	srv := httptest.NewServer(NewServer(st).Handler())
	defer srv.Close()
	m, err := st.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	seg := m.Segments[0].Name
	for path, want := range map[string]int{
		"/replicate/segment/" + seg:                        http.StatusOK,
		"/replicate/segment/" + seg + "?offset=abc":        http.StatusBadRequest,
		"/replicate/segment/" + seg + "?offset=-1":         http.StatusBadRequest,
		"/replicate/segment/notasegment":                   http.StatusBadRequest,
		"/replicate/segment/" + store.SegmentName(999):     http.StatusGone,
		"/replicate/segment/wal-0000000000000000001.seg":   http.StatusBadRequest, // 19 digits
		"/replicate/snapshot":                              http.StatusNotFound,   // none written yet
		"/replicate/segment/" + seg + "?offset=1000000000": http.StatusOK,         // past end: empty, not an error
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestReplicationLagReporting covers both sides of the lag surface: the
// tailer's BytesBehind/SegmentsBehind against the primary's manifest, and
// the primary's per-peer progress table fed by the fetch pattern.
func TestReplicationLagReporting(t *testing.T) {
	st := primaryWithRecords(t, store.Options{Fsync: store.FsyncAlways, SegmentBytes: 128}, 30)
	rs := NewServer(st)
	srv := httptest.NewServer(rs.Handler())
	defer srv.Close()

	tl, err := NewTailer(fastCfg(srv.URL, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if s := tl.Status(); s.BytesBehind != 0 || s.SegmentsBehind != 0 {
		t.Fatalf("lag before first contact: %+v", s)
	}
	stepUntilCaughtUp(t, tl, 3)
	if s := tl.Status(); s.BytesBehind != 0 || s.SegmentsBehind != 0 || !s.CaughtUp {
		t.Fatalf("caught-up tailer reports lag: %+v", s)
	}

	peers := rs.Peers()
	if len(peers) != 1 {
		t.Fatalf("peers = %+v", peers)
	}
	m, err := st.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	var committed int64
	for _, seg := range m.Segments {
		committed += seg.Size
	}
	p := peers[0]
	if p.BytesBehind != 0 || p.SegmentsBehind != 0 || p.ServedBytes != committed {
		t.Fatalf("caught-up peer = %+v (committed %d)", p, committed)
	}
	if p.LastContactMsAgo < 0 || p.LastContactMsAgo > 60_000 {
		t.Fatalf("last contact age = %d", p.LastContactMsAgo)
	}

	// New appends the follower has not fetched yet: the primary's view of
	// the peer falls behind by exactly the new committed bytes, and the
	// tailer's next manifest poll reports the same gap before catch-up.
	before := committed
	for i := 0; i < 10; i++ {
		if _, err := st.AppendCounters(store.CountersRecord{GapCells: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	m, err = st.ReplicationManifest()
	if err != nil {
		t.Fatal(err)
	}
	committed = 0
	for _, seg := range m.Segments {
		committed += seg.Size
	}
	delta := committed - before
	if delta <= 0 {
		t.Fatalf("appends committed no bytes")
	}
	p = rs.Peers()[0]
	if p.BytesBehind != delta || p.SegmentsBehind == 0 {
		t.Fatalf("stale peer = %+v, want %d bytes behind", p, delta)
	}

	stepUntilCaughtUp(t, tl, 3)
	p = rs.Peers()[0]
	if p.BytesBehind != 0 || p.SegmentsBehind != 0 {
		t.Fatalf("peer after catch-up = %+v", p)
	}

	block, ok := rs.StatusBlock().(map[string]interface{})
	if !ok || block["peers"] == nil || block["lastSeq"] != m.LastSeq {
		t.Fatalf("status block = %#v", block)
	}
}
