// Package replicate turns the durable store into a primary/warm-standby
// pair: the primary serves its WAL segments and snapshot over HTTP, a
// follower tails them into a byte-identical local mirror while replaying
// records into its in-memory state, and a monotonic fencing epoch makes
// promotion safe — a demoted primary's writes are rejected, and a
// rejoining node restarts as follower.
package replicate

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dbcatcher/internal/store"
)

// maxFenceBody bounds the fence request document; anything larger is not a
// fence request.
const maxFenceBody = 1 << 10

// DefaultMaxChunk caps one segment-fetch response (a frame larger than the
// cap is still returned whole, so progress is guaranteed).
const DefaultMaxChunk = 256 << 10

// maxTrackedPeers bounds the per-peer progress table; when a scanner (or a
// fleet of followers) overflows it, the longest-silent peer is evicted.
const maxTrackedPeers = 64

// Server exposes a primary store's replication surface. Mount Handler
// under the daemon's root mux; all routes live below /replicate/.
type Server struct {
	st       *store.Store
	maxChunk int

	mu    sync.Mutex
	peers map[string]*peerProgress
}

// peerProgress is the primary's record of one follower's fetch pattern:
// when it last called, and per segment the byte prefix it has been served
// (the follower only asks for offset X after durably mirroring X bytes, so
// a request at X proves the prefix and the served chunk extends it).
type peerProgress struct {
	lastContact time.Time
	served      map[string]int64
}

// NewServer wraps an open store for replication serving.
func NewServer(st *store.Store) *Server {
	return &Server{st: st, maxChunk: DefaultMaxChunk, peers: make(map[string]*peerProgress)}
}

// PeerStatus is the primary's view of one follower's replication lag,
// measured against the current manifest.
type PeerStatus struct {
	// Peer is the follower's remote host.
	Peer string `json:"peer"`
	// LastContactMsAgo is the age of the peer's last replication fetch.
	LastContactMsAgo int64 `json:"lastContactMsAgo"`
	// ServedBytes is the total committed WAL prefix served to this peer
	// across the manifest's segments.
	ServedBytes int64 `json:"servedBytes"`
	// BytesBehind and SegmentsBehind are the committed bytes and segment
	// count the peer has not fetched yet.
	BytesBehind    int64 `json:"bytesBehind"`
	SegmentsBehind int   `json:"segmentsBehind"`
}

// observePeer records one replication fetch. seg is empty for manifest and
// snapshot calls (contact only); served is the byte prefix of seg the peer
// holds after this response.
func (s *Server) observePeer(r *http.Request, seg string, served int64) {
	host := r.RemoteAddr
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.peers[host]
	if p == nil {
		if len(s.peers) >= maxTrackedPeers {
			oldest, oldestAt := "", time.Time{}
			for k, v := range s.peers {
				if oldest == "" || v.lastContact.Before(oldestAt) {
					oldest, oldestAt = k, v.lastContact
				}
			}
			delete(s.peers, oldest)
		}
		p = &peerProgress{served: make(map[string]int64)}
		s.peers[host] = p
	}
	p.lastContact = time.Now()
	if seg != "" && served > p.served[seg] {
		p.served[seg] = served
	}
}

// Peers reports every tracked follower's lag against the current manifest,
// sorted by peer host.
func (s *Server) Peers() []PeerStatus {
	m, err := s.st.ReplicationManifest()
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PeerStatus, 0, len(s.peers))
	for host, p := range s.peers {
		ps := PeerStatus{
			Peer:             host,
			LastContactMsAgo: time.Since(p.lastContact).Milliseconds(),
		}
		for _, seg := range m.Segments {
			have := p.served[seg.Name]
			if have > seg.Size {
				have = seg.Size // segment shrank only via compaction+rename; clamp
			}
			ps.ServedBytes += have
			if have < seg.Size {
				ps.BytesBehind += seg.Size - have
				ps.SegmentsBehind++
			}
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// StatusBlock summarizes the primary's replication surface for the status
// APIs: the served log extent plus every tracked follower's lag.
func (s *Server) StatusBlock() interface{} {
	block := map[string]interface{}{"peers": s.Peers()}
	if m, err := s.st.ReplicationManifest(); err == nil {
		block["epoch"] = m.Epoch
		block["lastSeq"] = m.LastSeq
		block["segments"] = len(m.Segments)
	}
	return block
}

// Handler routes the replication API:
//
//	GET  /replicate/manifest          — epoch, log extent, segment set
//	GET  /replicate/segment/{name}    — committed frames (?offset=, ?max=)
//	GET  /replicate/snapshot          — raw snapshot document
//	POST /replicate/fence             — demote this node ({"epoch": N})
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/replicate/manifest", s.handleManifest)
	mux.HandleFunc("/replicate/segment/", s.handleSegment)
	mux.HandleFunc("/replicate/snapshot", s.handleSnapshot)
	mux.HandleFunc("/replicate/fence", s.handleFence)
	return mux
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	m, err := s.st.ReplicationManifest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.observePeer(r, "", 0)
	writeJSON(w, m)
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/replicate/segment/")
	if _, ok := store.SegmentBase(name); !ok {
		http.Error(w, "bad segment name", http.StatusBadRequest)
		return
	}
	off, ok := queryUint(r, "offset", 0)
	if !ok {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	max, ok := queryUint(r, "max", uint64(s.maxChunk))
	if !ok || max == 0 || max > uint64(s.maxChunk) {
		max = uint64(s.maxChunk)
	}
	b, err := s.st.ReadSegmentAt(name, int64(off), int(max))
	switch {
	case errors.Is(err, store.ErrNoSegment):
		// The clean restart-from-snapshot signal: the segment was
		// compacted away (or never existed here).
		http.Error(w, err.Error(), http.StatusGone)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.observePeer(r, name, int64(off)+int64(len(b)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(b)))
	_, _ = w.Write(b)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	blob, err := s.st.SnapshotBlob()
	if os.IsNotExist(err) {
		http.Error(w, "no snapshot", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.observePeer(r, "", 0)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(blob)
}

// fenceRequest is the demotion document a newly promoted node posts to the
// old primary.
type fenceRequest struct {
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFenceBody))
	if err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	var req fenceRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Epoch == 0 {
		http.Error(w, "bad fence request", http.StatusBadRequest)
		return
	}
	if err := s.st.Fence(req.Epoch); err != nil {
		// A stale fence: the poster's epoch is not above ours, so we are
		// the legitimate primary and refuse demotion.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]any{"fenced": true, "epoch": req.Epoch})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// queryUint parses a canonical non-negative decimal query parameter:
// digits only, bounded length, no signs, spaces, or trailing garbage.
func queryUint(r *http.Request, name string, def uint64) (uint64, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	if len(raw) > 18 {
		return 0, false
	}
	var v uint64
	for _, c := range raw {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return v, true
}
