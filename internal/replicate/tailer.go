package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dbcatcher/internal/mathx"
	"dbcatcher/internal/store"
)

// Config tunes a follower tailer. Zero values get safe defaults.
type Config struct {
	// Primary is the primary's base URL (scheme://host:port).
	Primary string
	// Dir is the local directory the WAL is mirrored into — byte-identical
	// segment files plus the bootstrap snapshot, so a promotion is just a
	// store.Open over it.
	Dir string
	// Client issues the HTTP fetches (default: 5s-timeout client, so a
	// hung primary can never wedge the tailer).
	Client *http.Client
	// MaxChunk caps one segment fetch (default DefaultMaxChunk).
	MaxChunk int
	// Attempts bounds per-fetch retries before the step fails (default 4).
	Attempts int
	// BackoffBase/BackoffMax shape the jittered exponential retry backoff
	// (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Poll is the Run loop's manifest cadence (default 500ms).
	Poll time.Duration
	// StalenessBudget is how long without primary contact before Status
	// reports the follower stale (default 5s).
	StalenessBudget time.Duration
	// Seed keys the backoff jitter.
	Seed uint64
	// OnRecord receives every replicated record exactly once, in sequence
	// order — the follower's live replay feed.
	OnRecord func(store.SeqRecord)
	// OnReset fires when the tailer (re)starts from a snapshot — at resume
	// over an existing mirror, and whenever the primary compacted past us
	// and the mirror was discarded. The receiver must rebuild its
	// in-memory state from the snapshot; replicated records follow.
	OnReset func(*store.SnapshotState)
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.MaxChunk <= 0 {
		c.MaxChunk = DefaultMaxChunk
	}
	if c.Attempts <= 0 {
		c.Attempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.StalenessBudget <= 0 {
		c.StalenessBudget = 5 * time.Second
	}
	return c
}

// Status is a point-in-time view of the tailer for probes and promotion
// decisions.
type Status struct {
	// Applied is the last record sequence delivered to OnRecord.
	Applied uint64
	// PrimaryLastSeq is the primary's log extent at last contact.
	PrimaryLastSeq uint64
	// Epoch is the highest fencing epoch observed (manifest or records).
	Epoch uint64
	// CaughtUp reports Applied == PrimaryLastSeq as of the last
	// successful step.
	CaughtUp bool
	// BytesBehind and SegmentsBehind measure replication lag against the
	// last fetched manifest: committed WAL bytes not yet mirrored locally,
	// and how many advertised segments are still incomplete here.
	BytesBehind    int64
	SegmentsBehind int
	// Stale reports no successful primary contact within the budget.
	Stale bool
	// LastContact is the last successful manifest fetch.
	LastContact time.Time
	// ConsecutiveFailures counts failed steps since the last success —
	// the auto-promotion trigger.
	ConsecutiveFailures int
	// SnapshotRestarts counts restart-from-snapshot bootstraps.
	SnapshotRestarts uint64
	// LastError is the most recent step failure, empty after a success.
	LastError string
}

// ErrStalePrimary reports a primary advertising an epoch below one this
// follower has already observed: it was demoted, and tailing it would
// fork history.
var ErrStalePrimary = errors.New("replicate: primary epoch below observed epoch")

// segPos is the verified extent of one mirrored segment: byte length and
// frame count (the frame count keys sequence-number assignment — the
// first unmirrored record in a segment is Base + Frames).
type segPos struct {
	bytes  int64
	frames uint64
}

// Tailer mirrors a primary's WAL into a local directory and replays the
// records through OnRecord. Step is single-threaded (one catch-up pass);
// Run loops it. Status is safe to read concurrently.
type Tailer struct {
	cfg Config
	rng *mathx.RNG

	resumed bool
	applied uint64
	pos     map[string]segPos

	mu sync.Mutex
	st Status
}

// NewTailer prepares a tailer over cfg.Dir (created if needed). No network
// traffic happens until Step.
func NewTailer(cfg Config) (*Tailer, error) {
	cfg = cfg.withDefaults()
	if cfg.Primary == "" {
		return nil, errors.New("replicate: no primary URL")
	}
	if cfg.Dir == "" {
		return nil, errors.New("replicate: no mirror directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	return &Tailer{
		cfg: cfg,
		rng: mathx.NewRNG(cfg.Seed).Split(0x7a11),
		pos: make(map[string]segPos),
	}, nil
}

// Status returns a copy of the tailer's current state.
func (t *Tailer) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.Stale = st.LastContact.IsZero() || time.Since(st.LastContact) > t.cfg.StalenessBudget
	return st
}

// StalenessBudget returns the configured budget (for probe wiring).
func (t *Tailer) StalenessBudget() time.Duration { return t.cfg.StalenessBudget }

// Dir returns the local mirror directory a promotion opens.
func (t *Tailer) Dir() string { return t.cfg.Dir }

// Step performs one catch-up pass: resume local state (first call only),
// fetch the manifest, bootstrap from snapshot if the primary compacted
// past us, then tail every segment to its committed size, delivering new
// records in order. It returns the first error; failures are also counted
// in Status for the promotion budget.
func (t *Tailer) Step(ctx context.Context) error {
	err := t.step(ctx)
	t.mu.Lock()
	if err != nil {
		t.st.ConsecutiveFailures++
		t.st.LastError = err.Error()
	} else {
		t.st.ConsecutiveFailures = 0
		t.st.LastError = ""
	}
	t.mu.Unlock()
	return err
}

func (t *Tailer) step(ctx context.Context) error {
	if !t.resumed {
		if err := t.resume(); err != nil {
			return err
		}
		t.resumed = true
	}
	body, code, err := t.get(ctx, "/replicate/manifest", 1<<24)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("replicate: manifest HTTP %d", code)
	}
	var m store.Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return fmt.Errorf("replicate: manifest: %w", err)
	}
	t.mu.Lock()
	if m.Epoch < t.st.Epoch {
		t.mu.Unlock()
		return fmt.Errorf("%w (manifest %d, observed %d)", ErrStalePrimary, m.Epoch, t.st.Epoch)
	}
	t.st.Epoch = m.Epoch
	t.st.PrimaryLastSeq = m.LastSeq
	t.st.LastContact = time.Now()
	t.st.BytesBehind, t.st.SegmentsBehind = t.lag(&m)
	t.mu.Unlock()

	if err := t.catchUp(ctx, &m); err != nil {
		return err
	}
	t.mu.Lock()
	t.st.CaughtUp = t.applied >= m.LastSeq
	t.st.Applied = t.applied
	t.st.BytesBehind, t.st.SegmentsBehind = t.lag(&m)
	t.mu.Unlock()
	return nil
}

// lag measures the mirror against a manifest: advertised committed bytes
// not yet held locally, and how many segments are incomplete. Called from
// the step thread (pos is single-threaded); the caller stores the result
// under mu.
func (t *Tailer) lag(m *store.Manifest) (bytes int64, segments int) {
	for _, s := range m.Segments {
		if have := t.pos[s.Name].bytes; have < s.Size {
			bytes += s.Size - have
			segments++
		}
	}
	return bytes, segments
}

// Run loops Step at the poll cadence (jittered) until ctx is done. Step
// errors are absorbed into Status — the loop itself never gives up.
func (t *Tailer) Run(ctx context.Context) {
	for {
		_ = t.Step(ctx)
		half := t.cfg.Poll / 2
		d := half + time.Duration(t.rng.Float64()*float64(half))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
	}
}

// resume reconstructs the tailer's position from a previous follower
// process: load the mirrored snapshot, verify every local segment
// (truncating torn tails a follower crash can leave), and replay the
// mirrored records through OnRecord so the in-memory state catches up
// before any network traffic.
func (t *Tailer) resume() error {
	if snap := store.LoadSnapshotFile(t.cfg.Dir); snap != nil {
		t.applied = snap.Seq
		t.mu.Lock()
		if snap.Epoch > t.st.Epoch {
			t.st.Epoch = snap.Epoch
		}
		t.mu.Unlock()
		if t.cfg.OnReset != nil {
			t.cfg.OnReset(snap)
		}
	}
	segs, err := t.localSegments()
	if err != nil {
		return err
	}
	for i, s := range segs {
		if s.base > t.applied+1 {
			// A gap (crash between snapshot install and segment fetch):
			// everything from here on must be refetched.
			for _, drop := range segs[i:] {
				_ = os.Remove(drop.path)
			}
			break
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("replicate: %w", err)
		}
		recs, consumed, _ := store.DecodeFrames(data, s.base)
		name := filepath.Base(s.path)
		t.pos[name] = segPos{bytes: int64(consumed), frames: uint64(len(recs))}
		for _, r := range recs {
			t.deliver(r)
		}
		if consumed < len(data) {
			// A torn or corrupt local tail is follower crash damage: keep
			// the valid prefix, drop later files, refetch the rest.
			if err := os.Truncate(s.path, int64(consumed)); err != nil {
				return fmt.Errorf("replicate: %w", err)
			}
			for _, drop := range segs[i+1:] {
				_ = os.Remove(drop.path)
			}
			break
		}
	}
	t.mu.Lock()
	t.st.Applied = t.applied
	t.mu.Unlock()
	return nil
}

type localSeg struct {
	base uint64
	path string
}

func (t *Tailer) localSegments() ([]localSeg, error) {
	names, err := filepath.Glob(filepath.Join(t.cfg.Dir, "wal-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	var segs []localSeg
	for _, p := range names {
		if base, ok := store.SegmentBase(filepath.Base(p)); ok {
			segs = append(segs, localSeg{base, p})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// deliver hands one record to the sink exactly once, in order, and tracks
// observed epochs.
func (t *Tailer) deliver(r store.SeqRecord) {
	if r.Seq <= t.applied {
		return
	}
	if r.Type == store.RecEpoch {
		t.mu.Lock()
		if r.Epoch.Epoch > t.st.Epoch {
			t.st.Epoch = r.Epoch.Epoch
		}
		t.mu.Unlock()
	}
	if t.cfg.OnRecord != nil {
		t.cfg.OnRecord(r)
	}
	t.applied = r.Seq
}

// catchUp tails every advertised segment holding records above applied.
func (t *Tailer) catchUp(ctx context.Context, m *store.Manifest) error {
	if m.LastSeq <= t.applied {
		return nil
	}
	// Find the segment containing applied+1: the largest base at or below
	// it. If the primary compacted past us, bootstrap from its snapshot.
	start := t.startIndex(m)
	if start < 0 {
		if err := t.bootstrap(ctx, m); err != nil {
			return err
		}
		if m.LastSeq <= t.applied {
			return nil
		}
		if start = t.startIndex(m); start < 0 {
			return fmt.Errorf("replicate: no segment covers seq %d after snapshot bootstrap", t.applied+1)
		}
	}
	for _, seg := range m.Segments[start:] {
		restarted, err := t.tailSegment(ctx, m, seg)
		if err != nil {
			return err
		}
		if restarted {
			// The mirror was rebuilt from a snapshot mid-pass; the
			// manifest is stale now. The next step re-polls and resumes.
			return nil
		}
	}
	return nil
}

func (t *Tailer) startIndex(m *store.Manifest) int {
	start := -1
	for i, s := range m.Segments {
		if s.Base <= t.applied+1 {
			start = i
		}
	}
	return start
}

// tailSegment fetches one segment from the local mirror offset up to its
// advertised committed size, verifying, persisting, and delivering each
// chunk. restarted reports that a mid-tail compaction forced a snapshot
// bootstrap (the pass must re-poll).
func (t *Tailer) tailSegment(ctx context.Context, m *store.Manifest, seg store.SegmentInfo) (restarted bool, err error) {
	pos := t.pos[seg.Name]
	for pos.bytes < seg.Size {
		path := fmt.Sprintf("/replicate/segment/%s?offset=%d&max=%d", seg.Name, pos.bytes, t.cfg.MaxChunk)
		body, code, err := t.get(ctx, path, int64(t.cfg.MaxChunk)+chunkOverhead)
		if err != nil {
			return false, err
		}
		switch code {
		case http.StatusOK:
		case http.StatusGone:
			// Compacted under us mid-tail: restart from snapshot.
			return true, t.bootstrap(ctx, m)
		default:
			return false, fmt.Errorf("replicate: segment %s HTTP %d", seg.Name, code)
		}
		if len(body) == 0 {
			return false, fmt.Errorf("replicate: segment %s empty read at %d (size %d)", seg.Name, pos.bytes, seg.Size)
		}
		// Strictly verify before anything touches the mirror: only
		// complete, CRC-valid, decodable frames are ever written locally,
		// so the local log can never hold a torn or corrupt record.
		recs, consumed, err := store.DecodeFrames(body, seg.Base+pos.frames)
		if err != nil {
			return false, fmt.Errorf("replicate: segment %s at %d: %w", seg.Name, pos.bytes, err)
		}
		if consumed == 0 {
			return false, fmt.Errorf("replicate: segment %s at %d: truncated frame from primary", seg.Name, pos.bytes)
		}
		if err := t.appendLocal(seg.Name, pos.bytes, body[:consumed]); err != nil {
			return false, err
		}
		for _, r := range recs {
			t.deliver(r)
		}
		pos.bytes += int64(consumed)
		pos.frames += uint64(len(recs))
		t.pos[seg.Name] = pos
		t.mu.Lock()
		t.st.Applied = t.applied
		t.mu.Unlock()
	}
	return false, nil
}

// appendLocal writes verified frame bytes at the expected offset of the
// mirrored segment file and fsyncs, keeping the mirror byte-identical to
// the primary's committed prefix.
func (t *Tailer) appendLocal(name string, off int64, b []byte) error {
	path := filepath.Join(t.cfg.Dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	if fi.Size() != off {
		return fmt.Errorf("replicate: mirror %s is %d bytes, expected %d", name, fi.Size(), off)
	}
	if _, err := f.WriteAt(b, off); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	return nil
}

// bootstrap discards the local mirror and restarts from the primary's
// snapshot: fetch, install atomically, wipe segments, reset positions,
// and hand the snapshot to OnReset for in-memory rebuild.
func (t *Tailer) bootstrap(ctx context.Context, m *store.Manifest) error {
	if !m.HasSnapshot {
		return errors.New("replicate: lagging past primary's segments and it has no snapshot")
	}
	blob, code, err := t.get(ctx, "/replicate/snapshot", 1<<26)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("replicate: snapshot HTTP %d", code)
	}
	// Wipe the mirror first: a crash between wipe and install recovers as
	// an empty follower; a crash between install and refetch recovers via
	// resume's gap pruning. Neither can yield a seq gap in the mirror.
	segs, err := t.localSegments()
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("replicate: %w", err)
		}
	}
	snap, err := store.InstallSnapshotBlob(t.cfg.Dir, blob)
	if err != nil {
		return err
	}
	t.pos = make(map[string]segPos)
	t.applied = snap.Seq
	t.mu.Lock()
	t.st.Applied = snap.Seq
	t.st.SnapshotRestarts++
	if snap.Epoch > t.st.Epoch {
		t.st.Epoch = snap.Epoch
	}
	t.mu.Unlock()
	if t.cfg.OnReset != nil {
		t.cfg.OnReset(snap)
	}
	return nil
}

// chunkOverhead is response headroom above MaxChunk: a whole-frame
// response can exceed the chunk cap by up to the record size limit.
const chunkOverhead = (1 << 20) + (1 << 10)

// get fetches one replication path with bounded retries and jittered
// exponential backoff. Network errors and 5xx responses retry; semantic
// statuses (404, 410, ...) return immediately for the caller to interpret.
func (t *Tailer) get(ctx context.Context, path string, limit int64) ([]byte, int, error) {
	var lastErr error
	for attempt := 0; attempt < t.cfg.Attempts; attempt++ {
		if attempt > 0 {
			d := t.cfg.BackoffBase << (attempt - 1)
			if d > t.cfg.BackoffMax {
				d = t.cfg.BackoffMax
			}
			d = d/2 + time.Duration(t.rng.Float64()*float64(d/2))
			select {
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			case <-time.After(d):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.cfg.Primary+path, nil)
		if err != nil {
			return nil, 0, fmt.Errorf("replicate: %w", err)
		}
		resp, err := t.cfg.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("replicate: %s HTTP %d", path, resp.StatusCode)
			continue
		}
		return body, resp.StatusCode, nil
	}
	return nil, 0, fmt.Errorf("replicate: %s failed after %d attempts: %w", path, t.cfg.Attempts, lastErr)
}
