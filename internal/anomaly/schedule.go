package anomaly

import (
	"sort"

	"dbcatcher/internal/mathx"
)

// ScheduleConfig controls random event generation.
type ScheduleConfig struct {
	// Ticks is the series length being scheduled against.
	Ticks int
	// Databases is the number of databases in the unit.
	Databases int
	// TargetRatio is the desired fraction of abnormal ticks (Table III
	// reports 3.11-4.21%).
	TargetRatio float64
	// MinLength/MaxLength bound episode durations in ticks. Defaults 6
	// and 40 (30 s to ~3.3 min at 5 s ticks).
	MinLength, MaxLength int
	// Types restricts the drawn anomaly classes; nil means all.
	Types []Type
	// GapTicks keeps episodes separated so each is individually
	// observable. Default 30.
	GapTicks int
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.MinLength == 0 {
		c.MinLength = 6
	}
	if c.MaxLength == 0 {
		c.MaxLength = 40
	}
	if c.GapTicks == 0 {
		c.GapTicks = 30
	}
	if c.Types == nil {
		// The paper's evaluation assumes a single abnormal database per
		// episode (§II-C); UnitOutage is excluded unless requested.
		for i := 0; i < NumTypes; i++ {
			if Type(i) != UnitOutage {
				c.Types = append(c.Types, Type(i))
			}
		}
	}
	return c
}

// GenerateSchedule draws a random non-overlapping set of events reaching
// approximately TargetRatio abnormal ticks. Events never touch the first
// MaxLength ticks so that detectors always have a clean warmup.
func GenerateSchedule(cfg ScheduleConfig, rng *mathx.RNG) []Event {
	cfg = cfg.withDefaults()
	if cfg.Ticks <= 0 || cfg.Databases <= 0 || cfg.TargetRatio <= 0 {
		return nil
	}
	budget := int(cfg.TargetRatio * float64(cfg.Ticks))
	var events []Event
	occupied := make([]bool, cfg.Ticks)
	warmup := cfg.MaxLength
	attempts := 0
	used := 0
	for used < budget && attempts < 50*cfg.Ticks {
		attempts++
		length := cfg.MinLength + rng.Intn(cfg.MaxLength-cfg.MinLength+1)
		if length > budget-used && budget-used >= cfg.MinLength {
			length = budget - used
		}
		if cfg.Ticks-warmup-length <= 0 {
			break
		}
		start := warmup + rng.Intn(cfg.Ticks-warmup-length)
		if overlaps(occupied, start-cfg.GapTicks, start+length+cfg.GapTicks) {
			continue
		}
		e := Event{
			Type:      cfg.Types[rng.Intn(len(cfg.Types))],
			DB:        rng.Intn(cfg.Databases),
			Start:     start,
			Length:    length,
			Magnitude: rng.Range(0.8, 2.5),
		}
		if e.Type == Stall || e.Type == UnitOutage {
			e.Magnitude = rng.Range(0.6, 0.95)
		}
		events = append(events, e)
		markOccupied(occupied, start, start+length)
		used += length
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	return events
}

func overlaps(occ []bool, lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > len(occ) {
		hi = len(occ)
	}
	for i := lo; i < hi; i++ {
		if occ[i] {
			return true
		}
	}
	return false
}

func markOccupied(occ []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		occ[i] = true
	}
}
