// Package anomaly injects labelled abnormal episodes into simulated unit
// series. The taxonomy follows the paper (§II-C, Fig. 4, Fig. 12, Fig. 13,
// and the cited anomaly-type literature [4], [22], [27]): spikes, level
// shifts, concept drift, stalls, defective load balancing, storage
// fragmentation, and resource-hogging queries. Every injected event breaks
// the UKPIC phenomenon on exactly one database, matching the paper's
// single-abnormal-database assumption (§II-C).
package anomaly

import (
	"fmt"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
)

// Type enumerates the injected anomaly classes.
type Type int

const (
	// Spike multiplies a few KPIs by a large factor with a triangular
	// envelope (burst-style anomaly).
	Spike Type = iota
	// LevelShift offsets a few KPIs by a fraction of their local mean for
	// the whole episode.
	LevelShift
	// ConceptDrift gradually scales a few KPIs, ramping from 1x to
	// (1+magnitude)x over the episode.
	ConceptDrift
	// Stall collapses most KPIs toward zero (database hang / lock pileup).
	Stall
	// LoadBalanceDefect reroutes read traffic toward the target database
	// (Fig. 4): its read-side KPIs inflate while the peers' deflate
	// together, so only the target decorrelates.
	LoadBalanceDefect
	// Fragmentation makes the target's Real Capacity grow much faster than
	// its peers' (Fig. 12 case study).
	Fragmentation
	// ResourceHog doubles CPU and rows-read on the target while request
	// counts stay in line with peers (Fig. 13 case study).
	ResourceHog
	// UnitOutage hits EVERY database of the unit simultaneously (e.g. a
	// shared-storage or network incident). The paper notes DBCatcher "
	// appears to be powerless for multiple databases with simultaneous
	// anomalies" (§V) — this type exists to demonstrate that limitation
	// and the ensemble remedy. Event.DB is ignored.
	UnitOutage

	numTypes
)

// NumTypes is the number of anomaly classes.
const NumTypes = int(numTypes)

// String names the anomaly type.
func (t Type) String() string {
	switch t {
	case Spike:
		return "spike"
	case LevelShift:
		return "level-shift"
	case ConceptDrift:
		return "concept-drift"
	case Stall:
		return "stall"
	case LoadBalanceDefect:
		return "lb-defect"
	case Fragmentation:
		return "fragmentation"
	case ResourceHog:
		return "resource-hog"
	case UnitOutage:
		return "unit-outage"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Event is one anomaly episode on one database of a unit.
type Event struct {
	Type   Type
	DB     int // target database index
	Start  int // first affected tick
	Length int // number of affected ticks
	// Magnitude scales the distortion; sensible values are 0.5-3 for
	// multiplicative types and 0.5-0.95 for Stall.
	Magnitude float64
	// KPIs restricts the affected indicators; nil selects the type's
	// default set (possibly randomized at injection time).
	KPIs []kpi.KPI
}

// End returns the first tick after the episode.
func (e Event) End() int { return e.Start + e.Length }

// Labels is the ground truth produced by injection.
type Labels struct {
	// Point[t] reports whether any database of the unit is abnormal at
	// tick t.
	Point []bool
	// DB[t] is the abnormal database at tick t, or -1.
	DB []int
	// Events keeps the injected schedule (with KPI sets resolved).
	Events []Event
}

// NewLabels returns all-healthy labels for n ticks.
func NewLabels(n int) *Labels {
	l := &Labels{Point: make([]bool, n), DB: make([]int, n)}
	for i := range l.DB {
		l.DB[i] = -1
	}
	return l
}

// AbnormalCount returns the number of abnormal ticks.
func (l *Labels) AbnormalCount() int {
	n := 0
	for _, b := range l.Point {
		if b {
			n++
		}
	}
	return n
}

// Ratio returns the fraction of abnormal ticks.
func (l *Labels) Ratio() float64 {
	if len(l.Point) == 0 {
		return 0
	}
	return float64(l.AbnormalCount()) / float64(len(l.Point))
}

// readKPIs are the indicators driven by read routing, used by
// LoadBalanceDefect.
var readKPIs = []kpi.KPI{
	kpi.RequestsPerSecond, kpi.TotalRequests, kpi.BufferPoolReadRequests,
	kpi.InnodbRowsRead, kpi.CPUUtilization,
}

// Inject applies the events to the unit's series in place and returns the
// ground-truth labels. Events must fit within the series and target a
// valid database; overlapping events are allowed (the labels merge).
func Inject(u *cluster.Unit, events []Event, rng *mathx.RNG) (*Labels, error) {
	n := u.Series.Len()
	labels := NewLabels(n)
	for i, e := range events {
		if e.DB < 0 || e.DB >= u.Series.Databases {
			return nil, fmt.Errorf("anomaly: event %d targets database %d of %d", i, e.DB, u.Series.Databases)
		}
		if e.Start < 0 || e.Length <= 0 || e.End() > n {
			return nil, fmt.Errorf("anomaly: event %d range [%d, %d) outside %d ticks", i, e.Start, e.End(), n)
		}
		if e.Magnitude <= 0 {
			return nil, fmt.Errorf("anomaly: event %d has non-positive magnitude", i)
		}
		resolved := apply(u, e, rng)
		labels.Events = append(labels.Events, resolved)
		for t := e.Start; t < e.End(); t++ {
			labels.Point[t] = true
			labels.DB[t] = e.DB
		}
	}
	return labels, nil
}

// apply mutates the series for one event and returns the event with its
// KPI set resolved.
func apply(u *cluster.Unit, e Event, rng *mathx.RNG) Event {
	kpis := e.KPIs
	if kpis == nil {
		kpis = defaultKPIs(e.Type, rng)
	}
	e.KPIs = kpis
	switch e.Type {
	case Spike:
		applySpike(u, e, rng)
	case LevelShift:
		applyLevelShift(u, e, rng)
	case ConceptDrift:
		applyDrift(u, e, rng)
	case Stall:
		applyStall(u, e, rng)
	case LoadBalanceDefect:
		applyLBDefect(u, e, rng)
	case Fragmentation:
		applyFragmentation(u, e)
	case ResourceHog:
		applyResourceHog(u, e, rng)
	case UnitOutage:
		applyUnitOutage(u, e, rng)
	default:
		panic(fmt.Sprintf("anomaly: unknown type %d", int(e.Type)))
	}
	return e
}

// defaultKPIs picks the indicator set a given anomaly class disturbs.
func defaultKPIs(t Type, rng *mathx.RNG) []kpi.KPI {
	switch t {
	case Stall:
		// Everything except the storage level collapses.
		var out []kpi.KPI
		for _, k := range kpi.All() {
			if k != kpi.RealCapacity {
				out = append(out, k)
			}
		}
		return out
	case LoadBalanceDefect:
		out := make([]kpi.KPI, len(readKPIs))
		copy(out, readKPIs)
		return out
	case Fragmentation:
		return []kpi.KPI{kpi.RealCapacity, kpi.InnodbDataWritten}
	case ResourceHog:
		return []kpi.KPI{kpi.CPUUtilization, kpi.InnodbRowsRead}
	case UnitOutage:
		return []kpi.KPI{kpi.RequestsPerSecond, kpi.TotalRequests,
			kpi.TransactionsPerSecond, kpi.CPUUtilization}
	default: // Spike, LevelShift, ConceptDrift: 2-4 random KPIs
		count := 2 + rng.Intn(3)
		idx := rng.Sample(kpi.Count, count)
		out := make([]kpi.KPI, count)
		for i, v := range idx {
			out[i] = kpi.KPI(v)
		}
		return out
	}
}

func forEach(u *cluster.Unit, e Event, f func(vals []float64, k kpi.KPI)) {
	for _, k := range e.KPIs {
		s := u.Series.Data[k][e.DB]
		f(s.Values[e.Start:e.End()], k)
	}
}

// arSeries produces a positive AR(1) distortion envelope, the independent
// process (lock storms, bad plans, fragmentation churn) that makes an
// abnormal database stop tracking the unit demand. Its independence from
// the shared demand is what breaks UKPIC.
func arSeries(n int, phi float64, rng *mathx.RNG) []float64 {
	out := make([]float64, n)
	v := rng.Norm()
	for i := range out {
		v = phi*v + rng.NormMeanStd(0, 1)
		out[i] = absF(v)
	}
	return out
}

// apply mutates with a per-event RNG split so injections stay independent.
func applySpike(u *cluster.Unit, e Event, rng *mathx.RNG) {
	forEach(u, e, func(vals []float64, k kpi.KPI) {
		n := len(vals)
		// An impulse train: sharp bursts on ~1/3 of the ticks, riding on a
		// triangular envelope. Impulse placement is independent of demand,
		// so the trend decorrelates from the peers'.
		for i := range vals {
			pos := float64(i) / float64(n-1+boolToInt(n == 1))
			env := 1 - 2*absF(pos-0.5)
			factor := 1 + 0.3*e.Magnitude*env
			if rng.Bool(0.35) {
				factor += e.Magnitude * (1 + rng.Float64())
			}
			vals[i] *= factor
			clampKPI(vals, i, k)
		}
	})
}

func applyLevelShift(u *cluster.Unit, e Event, rng *mathx.RNG) {
	forEach(u, e, func(vals []float64, k kpi.KPI) {
		base := mathx.Mean(vals)
		if base == 0 {
			base = 1
		}
		shift := e.Magnitude * base
		// The shifted regime also carries its own variability (the shift's
		// cause — e.g. a runaway background job — is not demand-driven).
		jitter := arSeries(len(vals), 0.7, rng)
		for i := range vals {
			vals[i] += shift * (1 + 0.4*jitter[i])
			clampKPI(vals, i, k)
		}
	})
}

func applyDrift(u *cluster.Unit, e Event, rng *mathx.RNG) {
	forEach(u, e, func(vals []float64, k kpi.KPI) {
		n := len(vals)
		jitter := arSeries(n, 0.8, rng)
		base := mathx.Mean(vals)
		for i := range vals {
			progress := float64(i+1) / float64(n)
			// Drift both scales the series and adds an absolute ramp, so
			// the trend bends away from the peers' instead of merely
			// stretching.
			vals[i] = vals[i]*(1+0.5*e.Magnitude*progress) +
				base*e.Magnitude*progress*(0.5+0.2*jitter[i])
			clampKPI(vals, i, k)
		}
	})
}

// applyStall collapses the affected KPIs to a flat residual floor. A hung
// database stops tracking demand entirely, so the series loses its trend
// (not just its level — a pure rescale would be invisible to the
// scale-invariant KCD).
func applyStall(u *cluster.Unit, e Event, rng *mathx.RNG) {
	keep := 1 - e.Magnitude
	if keep < 0 {
		keep = 0
	}
	forEach(u, e, func(vals []float64, k kpi.KPI) {
		floor := keep * mathx.Mean(vals)
		for i := range vals {
			vals[i] = floor * (1 + 0.05*rng.Norm())
			clampKPI(vals, i, k)
		}
	})
}

func applyLBDefect(u *cluster.Unit, e Event, rng *mathx.RNG) {
	// A defective strategy keeps remapping SQL toward the target: the
	// skew ramps up and wanders (hash imbalance follows key popularity,
	// not unit demand), so the target's trend bends away from its peers
	// while the peers deflate together and stay mutually correlated.
	nDB := u.Series.Databases
	n := e.Length
	skew := make([]float64, n)
	jitter := arSeries(n, 0.85, rng)
	for i := range skew {
		progress := float64(i+1) / float64(n)
		// The defect bites immediately and worsens as popular keys pile up.
		skew[i] = e.Magnitude * (0.3 + 0.7*progress) * (0.6 + 0.3*jitter[i])
	}
	loss := func(i int) float64 { return minF(skew[i]/float64(nDB-1)/(1+e.Magnitude), 0.9) }
	for _, k := range e.KPIs {
		for d := 0; d < nDB; d++ {
			vals := u.Series.Data[k][d].Values[e.Start:e.End()]
			for i := range vals {
				if d == e.DB {
					vals[i] *= 1 + skew[i]
				} else {
					vals[i] *= 1 - loss(i)
				}
				clampKPI(vals, i, k)
			}
		}
	}
}

func applyFragmentation(u *cluster.Unit, e Event) {
	forEach(u, e, func(vals []float64, k kpi.KPI) {
		if k != kpi.RealCapacity {
			// Extra write churn from the delete/insert pattern.
			for i := range vals {
				vals[i] *= 1 + 0.5*e.Magnitude
			}
			return
		}
		// Capacity ramps away from the unit trend and stays shifted:
		// fragmentation is not reclaimed when the episode "ends".
		n := len(vals)
		base := vals[0]
		if base == 0 {
			base = 1
		}
		extraPerTick := e.Magnitude * base * 0.002
		for i := range vals {
			vals[i] += extraPerTick * float64(i+1)
		}
		// Propagate the final offset to the rest of the series.
		tail := u.Series.Data[kpi.RealCapacity][e.DB].Values[e.End():]
		offset := extraPerTick * float64(n)
		for i := range tail {
			tail[i] += offset
		}
	})
}

func applyResourceHog(u *cluster.Unit, e Event, rng *mathx.RNG) {
	// Resource-consuming queries arrive on their own schedule: the CPU
	// and rows-read inflation follows an independent bursty envelope
	// (Fig. 13: Total Requests equal, resources diverge).
	env := arSeries(e.Length, 0.8, rng)
	forEach(u, e, func(vals []float64, k kpi.KPI) {
		for i := range vals {
			vals[i] *= 1 + e.Magnitude*(0.4+0.6*env[i])
			clampKPI(vals, i, k)
		}
	})
}

// applyUnitOutage collapses the affected KPIs on every database at once:
// all databases stay mutually correlated (they all flatten together), so
// the UKPIC phenomenon is preserved and correlation measurement is blind
// to it by design.
func applyUnitOutage(u *cluster.Unit, e Event, rng *mathx.RNG) {
	keep := 1 - mathx.Clamp(e.Magnitude, 0, 1)
	// The residual activity during the outage is driven by the same shared
	// cause on every database (retry storms against the broken dependency),
	// so all databases keep tracking one shared envelope: UKPIC holds and
	// correlation measurement stays blind.
	shared := make([]float64, e.Length)
	v := 0.0
	for i := range shared {
		v = 0.8*v + rng.NormMeanStd(0, 0.1)
		shared[i] = 1 + v
		if shared[i] < 0.1 {
			shared[i] = 0.1
		}
	}
	for _, k := range e.KPIs {
		for d := 0; d < u.Series.Databases; d++ {
			vals := u.Series.Data[k][d].Values[e.Start:e.End()]
			floor := keep * mathx.Mean(vals)
			for i := range vals {
				vals[i] = floor * shared[i] * (1 + 0.005*rng.Norm())
				clampKPI(vals, i, k)
			}
		}
	}
}

// clampKPI re-applies physical bounds after distortion.
func clampKPI(vals []float64, i int, k kpi.KPI) {
	if k == kpi.CPUUtilization && vals[i] > 100 {
		vals[i] = 100
	}
	if vals[i] < 0 {
		vals[i] = 0
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
