package anomaly

import (
	"math"
	"testing"
	"testing/quick"

	"dbcatcher/internal/cluster"
	"dbcatcher/internal/correlate"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/workload"
)

func newUnit(t *testing.T, ticks int, seed uint64) *cluster.Unit {
	t.Helper()
	u, err := cluster.Simulate(cluster.Config{
		Name: "u", Ticks: ticks, Seed: seed, Profile: workload.TencentIrregular,
		FluctuationRate: 1e-9, // keep benign noise out of these tests
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestInjectLabels(t *testing.T) {
	u := newUnit(t, 300, 1)
	events := []Event{
		{Type: Spike, DB: 2, Start: 100, Length: 10, Magnitude: 2},
		{Type: Stall, DB: 1, Start: 200, Length: 8, Magnitude: 0.9},
	}
	labels, err := Inject(u, events, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := labels.AbnormalCount(); got != 18 {
		t.Fatalf("abnormal ticks = %d, want 18", got)
	}
	if !labels.Point[105] || labels.DB[105] != 2 {
		t.Fatal("spike range not labelled")
	}
	if !labels.Point[204] || labels.DB[204] != 1 {
		t.Fatal("stall range not labelled")
	}
	if labels.Point[50] || labels.DB[50] != -1 {
		t.Fatal("healthy tick mislabelled")
	}
	if math.Abs(labels.Ratio()-18.0/300) > 1e-12 {
		t.Fatalf("Ratio = %v", labels.Ratio())
	}
}

func TestInjectValidation(t *testing.T) {
	u := newUnit(t, 100, 2)
	rng := mathx.NewRNG(1)
	cases := []Event{
		{Type: Spike, DB: 9, Start: 10, Length: 5, Magnitude: 1}, // bad db
		{Type: Spike, DB: 0, Start: 98, Length: 5, Magnitude: 1}, // past end
		{Type: Spike, DB: 0, Start: -1, Length: 5, Magnitude: 1}, // bad start
		{Type: Spike, DB: 0, Start: 10, Length: 0, Magnitude: 1}, // bad length
		{Type: Spike, DB: 0, Start: 10, Length: 5, Magnitude: 0}, // bad magnitude
	}
	for i, e := range cases {
		if _, err := Inject(u, []Event{e}, rng); err == nil {
			t.Errorf("case %d should have failed", i)
		}
	}
}

// TestSpikeBreaksUKPIC verifies the central mechanism: before injection the
// target correlates with peers; during the episode it does not.
func TestSpikeBreaksUKPIC(t *testing.T) {
	u := newUnit(t, 400, 3)
	k := kpi.RequestsPerSecond
	opts := correlate.DefaultOptions()
	window := func(d, start, n int) []float64 {
		w, err := u.Series.Data[k][d].Window(start, n)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	before := correlate.KCD(window(1, 100, 30), window(2, 100, 30), opts)
	if _, err := Inject(u, []Event{{Type: Spike, DB: 1, Start: 100, Length: 30, Magnitude: 2.5, KPIs: []kpi.KPI{k}}}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	after := correlate.KCD(window(1, 100, 30), window(2, 100, 30), opts)
	if after >= before-0.1 {
		t.Fatalf("spike did not break correlation: before %.3f after %.3f", before, after)
	}
	// Peers stay correlated with each other.
	peers := correlate.KCD(window(2, 100, 30), window(3, 100, 30), opts)
	if peers < 0.7 {
		t.Fatalf("peer correlation collapsed: %.3f", peers)
	}
}

func TestStallCollapsesKPIs(t *testing.T) {
	u := newUnit(t, 200, 4)
	preMean := mathx.Mean(u.Series.Data[kpi.RequestsPerSecond][0].Values[100:120])
	if _, err := Inject(u, []Event{{Type: Stall, DB: 0, Start: 100, Length: 20, Magnitude: 0.9}}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	postMean := mathx.Mean(u.Series.Data[kpi.RequestsPerSecond][0].Values[100:120])
	if postMean > 0.2*preMean {
		t.Fatalf("stall kept %v of %v", postMean, preMean)
	}
	// Real Capacity must be untouched by default.
	cap100 := u.Series.Data[kpi.RealCapacity][0].Values[110]
	if cap100 == 0 {
		t.Fatal("stall should not zero Real Capacity")
	}
}

func TestLBDefectShiftsTraffic(t *testing.T) {
	u := newUnit(t, 300, 5)
	k := kpi.RequestsPerSecond
	pre := make([]float64, 5)
	for d := 0; d < 5; d++ {
		pre[d] = mathx.Mean(u.Series.Data[k][d].Values[150:200])
	}
	if _, err := Inject(u, []Event{{Type: LoadBalanceDefect, DB: 3, Start: 150, Length: 50, Magnitude: 1.5}}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	post := make([]float64, 5)
	for d := 0; d < 5; d++ {
		post[d] = mathx.Mean(u.Series.Data[k][d].Values[150:200])
	}
	if post[3] <= pre[3]*1.5 {
		t.Fatalf("target should gain traffic: %v -> %v", pre[3], post[3])
	}
	for d := 0; d < 5; d++ {
		if d == 3 {
			continue
		}
		if post[d] >= pre[d] {
			t.Fatalf("peer %d should lose traffic: %v -> %v", d, pre[d], post[d])
		}
	}
}

func TestFragmentationDivergesCapacity(t *testing.T) {
	u := newUnit(t, 400, 6)
	target := 2
	if _, err := Inject(u, []Event{{Type: Fragmentation, DB: target, Start: 100, Length: 100, Magnitude: 2}}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	// The target's capacity growth over the episode must exceed a peer's
	// by a clear margin.
	grow := func(d int) float64 {
		v := u.Series.Data[kpi.RealCapacity][d].Values
		return (v[199] - v[100]) / v[100]
	}
	if grow(target) < 2*grow(1) {
		t.Fatalf("fragmentation growth target=%v peer=%v", grow(target), grow(1))
	}
	// Offset persists after the episode (fragmentation is not reclaimed).
	v := u.Series.Data[kpi.RealCapacity][target].Values
	if v[250] <= v[199]*0.99 {
		t.Fatal("capacity offset should persist after the episode")
	}
}

func TestResourceHogKeepsRequestsAligned(t *testing.T) {
	u := newUnit(t, 300, 7)
	preReq := mathx.Mean(u.Series.Data[kpi.TotalRequests][1].Values[100:140])
	preCPU := mathx.Mean(u.Series.Data[kpi.CPUUtilization][1].Values[100:140])
	if _, err := Inject(u, []Event{{Type: ResourceHog, DB: 1, Start: 100, Length: 40, Magnitude: 1}}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	postReq := mathx.Mean(u.Series.Data[kpi.TotalRequests][1].Values[100:140])
	postCPU := mathx.Mean(u.Series.Data[kpi.CPUUtilization][1].Values[100:140])
	if postReq != preReq {
		t.Fatalf("Total Requests should be untouched: %v -> %v", preReq, postReq)
	}
	if postCPU <= preCPU*1.2 {
		t.Fatalf("CPU should inflate: %v -> %v", preCPU, postCPU)
	}
}

func TestLevelShiftAndDrift(t *testing.T) {
	u := newUnit(t, 300, 8)
	k := kpi.InnodbRowsRead
	orig := mathx.Clone(u.Series.Data[k][0].Values)
	if _, err := Inject(u, []Event{
		{Type: LevelShift, DB: 0, Start: 50, Length: 20, Magnitude: 1, KPIs: []kpi.KPI{k}},
		{Type: ConceptDrift, DB: 0, Start: 150, Length: 40, Magnitude: 2, KPIs: []kpi.KPI{k}},
	}, mathx.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	now := u.Series.Data[k][0].Values
	if now[55] <= orig[55] {
		t.Fatal("level shift missing")
	}
	// Drift ramps: distortion at the end of the episode exceeds the start.
	startRatio := now[151] / orig[151]
	endRatio := now[189] / orig[189]
	if endRatio <= startRatio {
		t.Fatalf("drift should ramp: start %v end %v", startRatio, endRatio)
	}
	// Points outside episodes are untouched.
	if now[100] != orig[100] {
		t.Fatal("healthy point modified")
	}
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{
		Spike: "spike", LevelShift: "level-shift", ConceptDrift: "concept-drift",
		Stall: "stall", LoadBalanceDefect: "lb-defect",
		Fragmentation: "fragmentation", ResourceHog: "resource-hog",
	}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(ty), ty.String(), want)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Error("unknown type name")
	}
}

func TestGenerateScheduleRespectsRatio(t *testing.T) {
	rng := mathx.NewRNG(9)
	cfg := ScheduleConfig{Ticks: 5000, Databases: 5, TargetRatio: 0.04}
	events := GenerateSchedule(cfg, rng)
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	total := 0
	for i, e := range events {
		total += e.Length
		if e.Start < 40 {
			t.Fatalf("event %d starts in warmup: %d", i, e.Start)
		}
		if e.DB < 0 || e.DB >= 5 {
			t.Fatalf("event %d bad db", i)
		}
		if i > 0 && e.Start < events[i-1].End() {
			t.Fatalf("events %d and %d overlap", i-1, i)
		}
	}
	ratio := float64(total) / 5000
	if ratio < 0.02 || ratio > 0.05 {
		t.Fatalf("scheduled ratio %v too far from 0.04", ratio)
	}
}

func TestGenerateScheduleDegenerate(t *testing.T) {
	rng := mathx.NewRNG(1)
	if GenerateSchedule(ScheduleConfig{Ticks: 0, Databases: 5, TargetRatio: 0.04}, rng) != nil {
		t.Fatal("zero ticks should produce no events")
	}
	if GenerateSchedule(ScheduleConfig{Ticks: 100, Databases: 5, TargetRatio: 0}, rng) != nil {
		t.Fatal("zero ratio should produce no events")
	}
}

func TestScheduledInjectionEndToEnd(t *testing.T) {
	u := newUnit(t, 2000, 10)
	rng := mathx.NewRNG(11)
	events := GenerateSchedule(ScheduleConfig{Ticks: 2000, Databases: 5, TargetRatio: 0.04}, rng)
	labels, err := Inject(u, events, rng)
	if err != nil {
		t.Fatal(err)
	}
	if labels.Ratio() < 0.02 || labels.Ratio() > 0.05 {
		t.Fatalf("ratio = %v", labels.Ratio())
	}
	if len(labels.Events) != len(events) {
		t.Fatal("resolved events missing")
	}
	for _, e := range labels.Events {
		if e.KPIs == nil {
			t.Fatal("event KPI set should be resolved after injection")
		}
	}
}

// Property: injection never produces NaN/Inf or negative values, never
// pushes CPU above 100, and labels exactly cover the event ranges.
func TestInjectionSanityProperty(t *testing.T) {
	f := func(seed uint32, typRaw, dbRaw, startRaw, lenRaw uint8) bool {
		u, err := cluster.Simulate(cluster.Config{
			Name: "p", Ticks: 300, Seed: uint64(seed),
		})
		if err != nil {
			return false
		}
		e := anomalyEventFor(typRaw, dbRaw, startRaw, lenRaw)
		labels, err := Inject(u, []Event{e}, mathx.NewRNG(uint64(seed)+1))
		if err != nil {
			return false
		}
		for k := 0; k < kpi.Count; k++ {
			for d := 0; d < 5; d++ {
				for _, v := range u.Series.Data[k][d].Values {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						return false
					}
					if k == int(kpi.CPUUtilization) && v > 100 {
						return false
					}
				}
			}
		}
		for tk := 0; tk < 300; tk++ {
			inEvent := tk >= e.Start && tk < e.End()
			if labels.Point[tk] != inEvent {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25} // each case simulates a unit
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// anomalyEventFor maps raw fuzz bytes onto a valid event.
func anomalyEventFor(typRaw, dbRaw, startRaw, lenRaw uint8) Event {
	e := Event{
		Type:      Type(int(typRaw) % NumTypes),
		DB:        int(dbRaw) % 5,
		Start:     40 + int(startRaw)%150,
		Length:    5 + int(lenRaw)%40,
		Magnitude: 1.2,
	}
	if e.Type == Stall || e.Type == UnitOutage {
		e.Magnitude = 0.9
	}
	return e
}
