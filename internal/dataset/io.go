package dataset

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/timeseries"
	"dbcatcher/internal/workload"
)

// The on-disk format is JSON (optionally gzipped when the path ends in
// ".gz"): one document holding all units with their values and labels.
// It is meant for handing datasets to external tooling and for caching
// expensive generations, not as a database.

type fileDoc struct {
	Name   string     `json:"name"`
	Family int        `json:"family"`
	Units  []fileUnit `json:"units"`
}

type fileUnit struct {
	Name      string        `json:"name"`
	Profile   int           `json:"profile"`
	Databases int           `json:"databases"`
	KPIs      int           `json:"kpis"`
	Roles     []int         `json:"roles"`
	Delays    []int         `json:"delays"`
	Values    [][][]float64 `json:"values"` // [kpi][db][tick]
	Points    []bool        `json:"points"`
	DBLabels  []int         `json:"dbLabels"`
}

// Save writes the dataset to path. A ".gz" suffix enables gzip.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := json.NewEncoder(w).Encode(d.toDoc()); err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("dataset: save: %w", err)
		}
	}
	return f.Sync()
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: load: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	var doc fileDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	return fromDoc(&doc)
}

func (d *Dataset) toDoc() *fileDoc {
	doc := &fileDoc{Name: d.Name, Family: int(d.Family)}
	for _, u := range d.Units {
		fu := fileUnit{
			Name:      u.Unit.Config.Name,
			Profile:   int(u.Profile),
			Databases: u.Unit.Series.Databases,
			KPIs:      u.Unit.Series.KPIs,
			Points:    u.Labels.Point,
			DBLabels:  u.Labels.DB,
		}
		for _, r := range u.Unit.Roles {
			fu.Roles = append(fu.Roles, int(r))
		}
		fu.Delays = append(fu.Delays, u.Unit.Delays...)
		fu.Values = make([][][]float64, fu.KPIs)
		for k := 0; k < fu.KPIs; k++ {
			fu.Values[k] = make([][]float64, fu.Databases)
			for db := 0; db < fu.Databases; db++ {
				fu.Values[k][db] = u.Unit.Series.Data[k][db].Values
			}
		}
		doc.Units = append(doc.Units, fu)
	}
	return doc
}

func fromDoc(doc *fileDoc) (*Dataset, error) {
	d := &Dataset{Name: doc.Name, Family: Family(doc.Family)}
	for i, fu := range doc.Units {
		if fu.KPIs != len(fu.Values) {
			return nil, fmt.Errorf("dataset: unit %d: kpis=%d but %d value rows", i, fu.KPIs, len(fu.Values))
		}
		us := timeseries.NewUnitSeries(fu.Name, fu.KPIs, fu.Databases)
		for k := 0; k < fu.KPIs; k++ {
			if len(fu.Values[k]) != fu.Databases {
				return nil, fmt.Errorf("dataset: unit %d kpi %d: %d databases, want %d", i, k, len(fu.Values[k]), fu.Databases)
			}
			for db := 0; db < fu.Databases; db++ {
				us.Data[k][db].Values = fu.Values[k][db]
			}
		}
		if err := us.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: unit %d: %w", i, err)
		}
		n := us.Len()
		if len(fu.Points) != n || len(fu.DBLabels) != n {
			return nil, fmt.Errorf("dataset: unit %d: label length mismatch", i)
		}
		roles := make([]cluster.Role, len(fu.Roles))
		for j, r := range fu.Roles {
			roles[j] = cluster.Role(r)
		}
		labels := &anomaly.Labels{Point: fu.Points, DB: fu.DBLabels}
		unit := &cluster.Unit{
			Config: cluster.Config{Name: fu.Name, Databases: fu.Databases, Ticks: n},
			Series: us,
			Roles:  roles,
			Delays: fu.Delays,
		}
		d.Units = append(d.Units, &UnitData{
			Unit:    unit,
			Labels:  labels,
			Profile: workload.Profile(fu.Profile),
		})
	}
	return d, nil
}
