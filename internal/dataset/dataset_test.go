package dataset

import (
	"math"
	"path/filepath"
	"testing"

	"dbcatcher/internal/kpi"
)

// smallConfig keeps generation fast in tests.
func smallConfig(f Family) Config {
	return Config{Family: f, Units: 6, Ticks: 400, Seed: 1}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(smallConfig(Sysbench))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Units) != 6 {
		t.Fatalf("units = %d", len(ds.Units))
	}
	for _, u := range ds.Units {
		if u.Unit.Series.Len() != 400 {
			t.Fatalf("unit length %d", u.Unit.Series.Len())
		}
		if u.Unit.Series.KPIs != kpi.Count {
			t.Fatalf("kpis = %d", u.Unit.Series.KPIs)
		}
		if err := u.Unit.Series.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateDefaultsMatchTableIII(t *testing.T) {
	cfg := Config{Family: Tencent}.withDefaults()
	if cfg.Units != 100 {
		t.Errorf("Tencent units = %d, want 100", cfg.Units)
	}
	if math.Abs(cfg.AnomalyRatio-0.0311) > 1e-9 {
		t.Errorf("Tencent ratio = %v, want 0.0311", cfg.AnomalyRatio)
	}
	cfg = Config{Family: Sysbench}.withDefaults()
	if cfg.Units != 50 || math.Abs(cfg.AnomalyRatio-0.0421) > 1e-9 {
		t.Errorf("Sysbench defaults wrong: %+v", cfg)
	}
	cfg = Config{Family: TPCC}.withDefaults()
	if cfg.Units != 50 || math.Abs(cfg.AnomalyRatio-0.0406) > 1e-9 {
		t.Errorf("TPCC defaults wrong: %+v", cfg)
	}
	// Table III Sysbench: 50 units x 5 DBs x 2592 ticks = 648000 points.
	if cfg.Units*cfg.Databases*cfg.Ticks != 648000 {
		t.Errorf("default TPCC/Sysbench total points = %d, want 648000",
			cfg.Units*cfg.Databases*cfg.Ticks)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(TPCC))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(TPCC))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Units {
		av := a.Units[i].Unit.Series.Data[0][0].Values
		bv := b.Units[i].Unit.Series.Data[0][0].Values
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("unit %d differs at %d", i, j)
			}
		}
	}
}

func TestStats(t *testing.T) {
	ds, err := Generate(smallConfig(Sysbench))
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Stats()
	if s.Units != 6 || s.Dimensions != 14 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalPoints != 6*5*400 {
		t.Fatalf("TotalPoints = %d", s.TotalPoints)
	}
	if s.AbnormalRatio < 0.015 || s.AbnormalRatio > 0.06 {
		t.Fatalf("AbnormalRatio = %v, want near 4%%", s.AbnormalRatio)
	}
}

func TestSplit(t *testing.T) {
	ds, err := Generate(smallConfig(Sysbench))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Units) != 6 || len(test.Units) != 6 {
		t.Fatal("split unit counts wrong")
	}
	for i := range train.Units {
		tr, te := train.Units[i], test.Units[i]
		if tr.Unit.Series.Len() != 200 || te.Unit.Series.Len() != 200 {
			t.Fatalf("split lengths %d/%d", tr.Unit.Series.Len(), te.Unit.Series.Len())
		}
		// Continuity: test's first point is the original's point 200.
		orig := ds.Units[i].Unit.Series.Data[3][2].Values[200]
		if te.Unit.Series.Data[3][2].Values[0] != orig {
			t.Fatal("test set does not continue where train ends")
		}
		// Labels align.
		if len(tr.Labels.Point) != 200 || len(te.Labels.Point) != 200 {
			t.Fatal("label lengths wrong")
		}
		for k := 0; k < 200; k++ {
			if tr.Labels.Point[k] != ds.Units[i].Labels.Point[k] {
				t.Fatal("train labels shifted")
			}
			if te.Labels.Point[k] != ds.Units[i].Labels.Point[200+k] {
				t.Fatal("test labels shifted")
			}
		}
	}
	if _, _, err := ds.Split(0); err == nil {
		t.Fatal("bad fraction should error")
	}
}

func TestSplitByProfile(t *testing.T) {
	cfg := smallConfig(Sysbench)
	cfg.Units = 10
	cfg.PeriodicFraction = 0.4
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	irr, per := ds.SplitByProfile()
	if len(per.Units) != 4 || len(irr.Units) != 6 {
		t.Fatalf("profile split = %d periodic / %d irregular, want 4/6",
			len(per.Units), len(irr.Units))
	}
}

func TestSplitByPeriodicity(t *testing.T) {
	// Longer series so the detector has signal; Tencent periodic units
	// carry a strong diurnal component.
	ds, err := Generate(Config{Family: Tencent, Units: 6, Ticks: 2000, Seed: 3, PeriodicFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	irr, per := ds.SplitByPeriodicity()
	if len(irr.Units)+len(per.Units) != 6 {
		t.Fatal("split lost units")
	}
	// The detector should find at least some periodic units and not
	// classify everything one way.
	if len(per.Units) == 0 {
		t.Fatal("no periodic units detected")
	}
	// Ground truth agreement: every detected-periodic unit should mostly
	// come from the periodic profile.
	agree := 0
	for _, u := range per.Units {
		if u.Profile.Periodic() {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("periodicity detection disagrees completely with ground truth")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := Generate(smallConfig(TPCC))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		filepath.Join(t.TempDir(), "ds.json"),
		filepath.Join(t.TempDir(), "ds.json.gz"),
	} {
		if err := ds.Save(path); err != nil {
			t.Fatal(err)
		}
		back, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name != ds.Name || len(back.Units) != len(ds.Units) {
			t.Fatal("metadata lost")
		}
		for i := range ds.Units {
			a := ds.Units[i]
			b := back.Units[i]
			if a.Profile != b.Profile {
				t.Fatal("profile lost")
			}
			if a.Labels.AbnormalCount() != b.Labels.AbnormalCount() {
				t.Fatal("labels lost")
			}
			for k := 0; k < a.Unit.Series.KPIs; k++ {
				for d := 0; d < a.Unit.Series.Databases; d++ {
					av := a.Unit.Series.Data[k][d].Values
					bv := b.Unit.Series.Data[k][d].Values
					if len(av) != len(bv) {
						t.Fatal("length lost")
					}
					for j := range av {
						if av[j] != bv[j] {
							t.Fatalf("value drift at kpi %d db %d idx %d", k, d, j)
						}
					}
				}
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestFamilyString(t *testing.T) {
	if Tencent.String() != "Tencent" || Sysbench.String() != "Sysbench" || TPCC.String() != "TPCC" {
		t.Fatal("family names wrong")
	}
}
