// Package dataset assembles multi-unit labelled datasets in the shape of
// the paper's Table III: a Tencent-like mixed dataset plus Sysbench and
// TPCC benchmark datasets, each a mixture of 60% irregular and 40% periodic
// units with a 3-4% abnormal point ratio, split 50/50 into train and test
// by time (§IV-B).
package dataset

import (
	"fmt"

	"dbcatcher/internal/anomaly"
	"dbcatcher/internal/cluster"
	"dbcatcher/internal/fleet"
	"dbcatcher/internal/kpi"
	"dbcatcher/internal/mathx"
	"dbcatcher/internal/period"
	"dbcatcher/internal/workload"
)

// Family selects the dataset family of Table III.
type Family int

const (
	// Tencent is the production-trace-like dataset (100 units in the
	// paper).
	Tencent Family = iota
	// Sysbench is the Sysbench benchmark dataset (50 units).
	Sysbench
	// TPCC is the TPC-C benchmark dataset (50 units).
	TPCC
)

// String names the family as in Table III.
func (f Family) String() string {
	switch f {
	case Tencent:
		return "Tencent"
	case Sysbench:
		return "Sysbench"
	case TPCC:
		return "TPCC"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// profiles returns the (irregular, periodic) workload profiles of the
// family.
func (f Family) profiles() (irregular, periodic workload.Profile) {
	switch f {
	case Tencent:
		return workload.TencentIrregular, workload.TencentPeriodic
	case Sysbench:
		return workload.SysbenchI, workload.SysbenchII
	case TPCC:
		return workload.TPCCI, workload.TPCCII
	default:
		panic(fmt.Sprintf("dataset: unknown family %d", int(f)))
	}
}

// anomalyRatio returns the Table III abnormal-point ratio of the family.
func (f Family) anomalyRatio() float64 {
	switch f {
	case Tencent:
		return 0.0311
	case Sysbench:
		return 0.0421
	case TPCC:
		return 0.0406
	default:
		return 0.04
	}
}

// defaultUnits returns the Table III unit count of the family.
func (f Family) defaultUnits() int {
	if f == Tencent {
		return 100
	}
	return 50
}

// Config describes a dataset to generate.
type Config struct {
	Family Family
	// Units is the number of units; 0 uses the Table III count.
	Units int
	// Ticks is the number of points per series; 0 uses 2592 (3.6 h at
	// 5 s, the per-database point count implied by Table III's Sysbench
	// row: 50 units x 5 DBs x 2592 = 648000).
	Ticks int
	// Databases per unit; 0 means 5 (one primary + four replicas, §IV-A5).
	Databases int
	// PeriodicFraction of units driven by the periodic profile; 0 uses
	// the paper's 40%.
	PeriodicFraction float64
	// AnomalyRatio of abnormal ticks; 0 uses the Table III family ratio.
	AnomalyRatio float64
	// Seed makes the dataset reproducible.
	Seed uint64
	// Concurrency bounds the per-unit generation fan-out: <= 0 uses
	// GOMAXPROCS, 1 forces serial generation. Every unit derives its RNG
	// from the root seed before the fan-out starts, so the dataset is
	// bit-identical at any setting.
	Concurrency int
}

func (c Config) withDefaults() Config {
	if c.Units == 0 {
		c.Units = c.Family.defaultUnits()
	}
	if c.Ticks == 0 {
		c.Ticks = 2592
	}
	if c.Databases == 0 {
		c.Databases = 5
	}
	if c.PeriodicFraction == 0 {
		c.PeriodicFraction = 0.4
	}
	if c.AnomalyRatio == 0 {
		c.AnomalyRatio = c.Family.anomalyRatio()
	}
	return c
}

// UnitData is one generated unit with its ground truth.
type UnitData struct {
	Unit    *cluster.Unit
	Labels  *anomaly.Labels
	Profile workload.Profile
}

// Dataset is a collection of labelled units.
type Dataset struct {
	Name   string
	Family Family
	Units  []*UnitData
}

// Generate builds the dataset described by cfg. Unit i uses the periodic
// profile iff i falls into the leading PeriodicFraction of units; the
// abnormal schedule is drawn per unit.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Units <= 0 || cfg.Ticks <= 0 {
		return nil, fmt.Errorf("dataset: non-positive units/ticks")
	}
	irr, per := cfg.Family.profiles()
	ds := &Dataset{Name: cfg.Family.String(), Family: cfg.Family}
	nPeriodic := int(cfg.PeriodicFraction * float64(cfg.Units))
	// Derive every unit's RNG from the root serially first: Split advances
	// the root state, so the derivation order must not depend on
	// scheduling. After this loop each unit owns an independent stream and
	// the simulations can run in any order.
	root := mathx.NewRNG(cfg.Seed)
	rngs := make([]*mathx.RNG, cfg.Units)
	for i := range rngs {
		rngs[i] = root.Split(uint64(i + 1))
	}
	ds.Units = make([]*UnitData, cfg.Units)
	err := fleet.Each(cfg.Units, cfg.Concurrency, func(i int) error {
		profile := irr
		if i < nPeriodic {
			profile = per
		}
		unitRNG := rngs[i]
		u, err := cluster.Simulate(cluster.Config{
			Name:      fmt.Sprintf("%s-unit%03d", cfg.Family, i),
			Databases: cfg.Databases,
			Ticks:     cfg.Ticks,
			Profile:   profile,
			Seed:      unitRNG.Uint64(),
		})
		if err != nil {
			return err
		}
		events := anomaly.GenerateSchedule(anomaly.ScheduleConfig{
			Ticks:       cfg.Ticks,
			Databases:   cfg.Databases,
			TargetRatio: cfg.AnomalyRatio,
		}, unitRNG)
		labels, err := anomaly.Inject(u, events, unitRNG)
		if err != nil {
			return err
		}
		ds.Units[i] = &UnitData{Unit: u, Labels: labels, Profile: profile}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// Stats reproduces a Table III row.
type Stats struct {
	Name          string
	Units         int
	Dimensions    int
	TotalPoints   int
	AnomalPoints  int
	AbnormalRatio float64
}

// Stats computes the dataset's Table III row. TotalPoints counts every
// stored observation (units x databases x ticks); a tick during which the
// unit is abnormal contributes all of its databases' points to
// AnomalPoints, matching the paper's per-unit labelling.
func (d *Dataset) Stats() Stats {
	s := Stats{Name: d.Name, Units: len(d.Units), Dimensions: kpi.Count}
	for _, u := range d.Units {
		n := u.Unit.Series.Len()
		dbs := u.Unit.Series.Databases
		s.TotalPoints += n * dbs
		s.AnomalPoints += u.Labels.AbnormalCount() * dbs
	}
	if s.TotalPoints > 0 {
		s.AbnormalRatio = float64(s.AnomalPoints) / float64(s.TotalPoints)
	}
	return s
}

// Split divides every unit at frac of its length: the leading part forms
// the training set and the remainder the testing set (§IV-B uses 0.5).
func (d *Dataset) Split(frac float64) (train, test *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v out of (0,1)", frac)
	}
	train = &Dataset{Name: d.Name + "-train", Family: d.Family}
	test = &Dataset{Name: d.Name + "-test", Family: d.Family}
	for _, u := range d.Units {
		n := u.Unit.Series.Len()
		cut := int(frac * float64(n))
		if cut <= 0 || cut >= n {
			return nil, nil, fmt.Errorf("dataset: unit %s too short to split", u.Unit.Config.Name)
		}
		head, err := sliceUnit(u, 0, cut)
		if err != nil {
			return nil, nil, err
		}
		tail, err := sliceUnit(u, cut, n)
		if err != nil {
			return nil, nil, err
		}
		train.Units = append(train.Units, head)
		test.Units = append(test.Units, tail)
	}
	return train, test, nil
}

// sliceUnit produces a view of one unit restricted to [start, end).
func sliceUnit(u *UnitData, start, end int) (*UnitData, error) {
	sub, err := u.Unit.Series.SliceRange(start, end)
	if err != nil {
		return nil, err
	}
	labels := anomaly.NewLabels(end - start)
	for t := start; t < end; t++ {
		labels.Point[t-start] = u.Labels.Point[t]
		labels.DB[t-start] = u.Labels.DB[t]
	}
	for _, e := range u.Labels.Events {
		if e.Start >= start && e.End() <= end {
			shifted := e
			shifted.Start -= start
			labels.Events = append(labels.Events, shifted)
		}
	}
	unit := &cluster.Unit{
		Config: u.Unit.Config,
		Series: sub,
		Roles:  u.Unit.Roles,
		Delays: u.Unit.Delays,
	}
	return &UnitData{Unit: unit, Labels: labels, Profile: u.Profile}, nil
}

// SplitByPeriodicity classifies each unit with the period detector on its
// "Requests Per Second" series (as the paper does with RobustPeriod,
// §IV-A2) and returns the irregular (I) and periodic (II) sub-datasets.
func (d *Dataset) SplitByPeriodicity() (irregular, periodic *Dataset) {
	irregular = &Dataset{Name: d.Name + " I", Family: d.Family}
	periodic = &Dataset{Name: d.Name + " II", Family: d.Family}
	for _, u := range d.Units {
		rps := u.Unit.Series.Data[kpi.RequestsPerSecond][1].Values
		if period.IsPeriodic(rps) {
			periodic.Units = append(periodic.Units, u)
		} else {
			irregular.Units = append(irregular.Units, u)
		}
	}
	return irregular, periodic
}

// SplitByProfile returns the irregular/periodic sub-datasets using the
// generation-time ground truth instead of the detector. Useful when units
// are too short for reliable period detection.
func (d *Dataset) SplitByProfile() (irregular, periodic *Dataset) {
	irregular = &Dataset{Name: d.Name + " I", Family: d.Family}
	periodic = &Dataset{Name: d.Name + " II", Family: d.Family}
	for _, u := range d.Units {
		if u.Profile.Periodic() {
			periodic.Units = append(periodic.Units, u)
		} else {
			irregular.Units = append(irregular.Units, u)
		}
	}
	return irregular, periodic
}

// DefaultUnits exposes the Table III unit count of the family.
func (f Family) DefaultUnits() int { return f.defaultUnits() }
