package incident

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRestore feeds arbitrary transition sequences to Restore: corrupt
// sequences must error (never panic), and any accepted sequence must
// rebuild deterministically — two fresh aggregators restoring the same
// journal land on identical fingerprints.
func FuzzRestore(f *testing.F) {
	f.Add([]byte{})
	// A valid open/update/close run, little-endian packed.
	seed := func(ts []Transition) []byte {
		var b []byte
		for _, t := range ts {
			var rec [61]byte
			rec[0] = t.Event
			binary.LittleEndian.PutUint64(rec[1:], t.ID)
			binary.LittleEndian.PutUint64(rec[9:], t.Cluster)
			binary.LittleEndian.PutUint32(rec[17:], uint32(t.Unit))
			binary.LittleEndian.PutUint32(rec[21:], uint32(t.DB))
			binary.LittleEndian.PutUint64(rec[25:], uint64(t.KPIs))
			binary.LittleEndian.PutUint64(rec[33:], uint64(t.FirstTick))
			binary.LittleEndian.PutUint64(rec[41:], uint64(t.LastTick))
			binary.LittleEndian.PutUint32(rec[49:], uint32(t.Count))
			binary.LittleEndian.PutUint64(rec[53:], uint64(t.RoundTick))
			b = append(b, rec[:]...)
		}
		return b
	}
	f.Add(seed([]Transition{
		{Event: TransOpen, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: 4, FirstTick: 100, LastTick: 120, Count: 1, RoundTick: 120},
		{Event: TransUpdate, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: 4, FirstTick: 100, LastTick: 140, Count: 2, RoundTick: 140},
		{Event: TransClose, ID: 1, Cluster: 1, Unit: 0, DB: 2, KPIs: 4, FirstTick: 100, LastTick: 140, Count: 2, RoundTick: 172},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		var ts []Transition
		for len(data) >= 61 && len(ts) < 256 {
			ts = append(ts, Transition{
				Event:     data[0],
				ID:        binary.LittleEndian.Uint64(data[1:]),
				Cluster:   binary.LittleEndian.Uint64(data[9:]),
				Unit:      int(int32(binary.LittleEndian.Uint32(data[17:]))),
				DB:        int(int32(binary.LittleEndian.Uint32(data[21:]))),
				KPIs:      KPISet(binary.LittleEndian.Uint64(data[25:])),
				FirstTick: int(int64(binary.LittleEndian.Uint64(data[33:]))),
				LastTick:  int(int64(binary.LittleEndian.Uint64(data[41:]))),
				Count:     int(int32(binary.LittleEndian.Uint32(data[49:]))),
				RoundTick: int(int64(binary.LittleEndian.Uint64(data[53:]))),
			})
			data = data[61:]
		}
		cfg := Config{ProximityTicks: 8, CloseAfter: 16, MaxLag: 8, MaxHistory: 32, MaxOpen: 128}
		a := New(cfg)
		if err := a.Restore(ts); err != nil {
			return
		}
		b := New(cfg)
		if err := b.Restore(ts); err != nil {
			t.Fatalf("second Restore of an accepted journal failed: %v", err)
		}
		fa, fb := a.Fingerprint(), b.Fingerprint()
		if !bytes.Equal(fa, fb) {
			t.Fatalf("restore nondeterministic:\n%s\n---\n%s", fa, fb)
		}
	})
}
