// Package incident is the fleet's streaming anomaly-aggregation stage: it
// consumes the per-round verdict stream emitted by the sharded fleet
// monitor and reduces it to operator-facing incidents. At 32+ units one
// correlated fault produces dozens of near-identical abnormal verdicts per
// round; this layer turns that stream back into signal in four steps,
// modeled on production anomaly pipelines (change-point → dedup →
// time-cluster/lead-lag correlators → dimension-partitioned summaries):
//
//  1. Dedup: repeated per-tick abnormal verdicts for the same
//     (unit, database, deviating-KPI-set) fold into one open incident
//     carrying first-seen/last-seen ticks and a reinforcement count.
//  2. Cluster: incidents opening within a temporal-proximity window join
//     one fleet-wide cluster — "these happened together".
//  3. Lead-lag: per-KPI onset ticks feed global pairwise lag histograms,
//     so recurring cascades report "KPI A leads KPI B by ~k ticks".
//  4. Partition: a closed cluster's dimensions split into constant vs
//     varying, so six replicas decorrelating on the same disk KPI render
//     as one summary line instead of six alerts.
//
// The aggregator is a deterministic state machine over (round tick, event
// list) inputs: every mutation is announced as a Transition, and replaying
// a recorded transition sequence (Restore) rebuilds the exact state —
// including open incidents, cluster membership, and the lag histograms —
// bit for bit. That is what makes WAL-backed rehydration after a restart
// indistinguishable from an uninterrupted run.
//
// The dedup hot path (a reinforcing verdict merging into an open incident,
// plus the per-round staleness sweeps) is allocation-free at steady state;
// allocations happen only when incidents open or clusters close, which is
// by construction the rare path.
package incident

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"dbcatcher/internal/kpi"
)

// KPISet is a bitmask of deviating KPI indices (bit k set means KPI k sat
// below its correlation threshold). It is the dedup signature dimension:
// the same database deviating on a different indicator set is a different
// incident.
type KPISet uint64

// MaxKPIs bounds the indicator universe a KPISet can express.
const MaxKPIs = 64

// With returns the set with KPI k added; out-of-range k is ignored.
func (s KPISet) With(k int) KPISet {
	if k < 0 || k >= MaxKPIs {
		return s
	}
	return s | 1<<uint(k)
}

// Has reports whether KPI k is in the set.
func (s KPISet) Has(k int) bool {
	return k >= 0 && k < MaxKPIs && s&(1<<uint(k)) != 0
}

// Count returns the number of KPIs in the set.
func (s KPISet) Count() int { return bits.OnesCount64(uint64(s)) }

// Names renders the set's members, using the paper's Table II names for
// the standard layout and kpi<N> beyond it.
func (s KPISet) Names() []string {
	if s == 0 {
		return nil
	}
	out := make([]string, 0, s.Count())
	for k := 0; k < MaxKPIs; k++ {
		if s.Has(k) {
			out = append(out, kpiName(k))
		}
	}
	return out
}

// String renders the set compactly ("Com Insert|CPU Utilization").
func (s KPISet) String() string {
	if s == 0 {
		return "(unattributed)"
	}
	return strings.Join(s.Names(), "|")
}

func kpiName(k int) string {
	if k < kpi.Count {
		return kpi.KPI(k).String()
	}
	return fmt.Sprintf("kpi%d", k)
}

// Event is one unit-level abnormal observation: a single database inside a
// single unit judged Abnormal over one window, together with the KPI set
// the judgment implicated (KPIs may be zero when attribution was not
// possible, e.g. the window was already evicted).
type Event struct {
	Unit int
	DB   int
	KPIs KPISet
	// Start and End delimit the judged window [Start, End) in collection
	// ticks; End also becomes the incident's last-seen tick.
	Start, End int
}

// Transition event codes, in WAL order.
const (
	// TransOpen records a new incident opening (full initial state).
	TransOpen uint8 = 1
	// TransUpdate records a reinforcing verdict merging into an open
	// incident (the updated last-seen tick and count).
	TransUpdate uint8 = 2
	// TransClose records an incident closing after its staleness budget.
	TransClose uint8 = 3
)

// Transition is one incident-lifecycle mutation, the unit of persistence:
// the aggregator announces every open/update/close through its persist
// hook, and Restore replays a recorded sequence to rebuild the state
// machine exactly. Fields carry the incident's full post-transition state,
// so the record is self-contained.
type Transition struct {
	Event     uint8
	ID        uint64 // incident ID
	Cluster   uint64 // owning fleet-cluster ID
	Unit      int
	DB        int
	KPIs      KPISet
	FirstTick int
	LastTick  int
	Count     int
	// RoundTick is the fleet round tick at which the transition fired; it
	// is the rehydration horizon below which replayed rounds are skipped.
	RoundTick int
}

// Config tunes the aggregation state machine. The zero value selects the
// defaults noted per field.
type Config struct {
	// ProximityTicks is the temporal-proximity window for cross-unit
	// clustering: an incident opening within this many ticks of a
	// cluster's last activity joins it. Also the staleness bound after
	// which a fully-closed cluster is finalized. Default 32.
	ProximityTicks int
	// CloseAfter is the number of round ticks without a reinforcing
	// verdict after which an open incident closes. It must exceed the
	// verdict cadence (one verdict per judged window) or every incident
	// degenerates to a single window. Default 64.
	CloseAfter int
	// MaxLag bounds the lead-lag histograms to ±MaxLag ticks; onsets
	// further apart clamp to the edge bins. Default 16.
	MaxLag int
	// MaxHistory bounds the closed-incident and closed-cluster rings.
	// Default 256.
	MaxHistory int
	// MaxOpen bounds concurrently open incidents; beyond it new anomalies
	// are counted as dropped rather than tracked. Default 4096.
	MaxOpen int
}

func (c Config) withDefaults() Config {
	if c.ProximityTicks <= 0 {
		c.ProximityTicks = 32
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 64
	}
	if c.MaxLag <= 0 {
		c.MaxLag = 16
	}
	if c.MaxHistory <= 0 {
		c.MaxHistory = 256
	}
	if c.MaxOpen <= 0 {
		c.MaxOpen = 4096
	}
	return c
}

// Incident is one deduped run of abnormal verdicts for a single
// (unit, database, KPI-set) signature.
type Incident struct {
	ID      uint64
	Cluster uint64
	Unit    int
	DB      int
	KPIs    KPISet
	// FirstTick is the start of the first abnormal window; LastTick the
	// (exclusive) end of the latest one.
	FirstTick, LastTick int
	// Count is the number of merged abnormal verdicts.
	Count int
	// Open reports whether the incident is still accumulating.
	Open bool
}

// String renders the operator one-liner.
func (i *Incident) String() string {
	state := "closed"
	if i.Open {
		state = "open"
	}
	return fmt.Sprintf("incident %d (%s): unit %d db %d ticks [%d,%d) x%d on %s",
		i.ID, state, i.Unit, i.DB, i.FirstTick, i.LastTick, i.Count, i.KPIs)
}

// key is the dedup signature.
type key struct {
	unit, db int
	kpis     KPISet
}

// cluster is an open fleet incident: unit incidents grouped by temporal
// proximity.
type cluster struct {
	id                  uint64
	firstTick, lastTick int
	members             []*Incident
	openMembers         int
	// memberCloseRound is the latest round tick at which a member closed;
	// with staleness it determines the earliest round the cluster itself
	// may finalize (readyAt), which keeps live sweeps and deferred replay
	// sweeps closing clusters in the same order.
	memberCloseRound int
	// onsets[k] is the earliest first-seen tick of any member deviating on
	// KPI k, or -1; it feeds the lead-lag histograms at close.
	onsets [MaxKPIs]int
}

func (c *cluster) readyAt(proximity int) int {
	t := c.lastTick + proximity + 1
	if c.memberCloseRound > t {
		t = c.memberCloseRound
	}
	return t
}

// Status is the aggregator's counter snapshot for operator endpoints.
type Status struct {
	OpenIncidents   int    `json:"openIncidents"`
	ClosedIncidents uint64 `json:"closedIncidents"`
	OpenClusters    int    `json:"openClusters"`
	ClosedClusters  uint64 `json:"closedClusters"`
	// Merged counts reinforcing verdicts absorbed by dedup — the alerts
	// that did NOT page anyone.
	Merged uint64 `json:"mergedVerdicts"`
	// Dropped counts anomalies discarded at the MaxOpen bound.
	Dropped uint64 `json:"droppedEvents"`
	// Horizon is the newest round tick any transition has covered.
	Horizon int `json:"horizon"`
}

// Aggregator is the streaming incident state machine. It is safe for
// concurrent use: the fleet feeder calls ObserveRound while API handlers
// read pages and status.
type Aggregator struct {
	mu  sync.Mutex
	cfg Config

	open     map[key]*Incident
	openList []*Incident // ID order; the deterministic sweep index
	clusters []*cluster  // open clusters, ID order

	closedInc  ring[*Incident]
	closedClus ring[*ClusterReport]

	leadlag leadLag

	nextID, nextCluster uint64
	horizon             int

	merged, dropped                 uint64
	closedIncTotal, closedClusTotal uint64

	persist        func(Transition)
	onClusterClose func(*ClusterReport)

	// scratch for the cluster sweep; reused so sweeps stay allocation-free
	// once warm.
	sweep []*cluster
}

// New builds an empty aggregator.
func New(cfg Config) *Aggregator {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg:         cfg,
		open:        make(map[key]*Incident),
		nextID:      1,
		nextCluster: 1,
		horizon:     -1,
	}
	a.closedInc.init(cfg.MaxHistory)
	a.closedClus.init(cfg.MaxHistory)
	a.leadlag.init(cfg.MaxLag)
	return a
}

// SetPersist attaches the transition journal hook (e.g. the fleet WAL).
// The hook runs under the aggregator lock, in transition order; it must
// not call back into the aggregator.
func (a *Aggregator) SetPersist(fn func(Transition)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.persist = fn
}

// SetOnClusterClose attaches a hook invoked with each finalized cluster
// report (e.g. root-cause attribution + operator log). It runs under the
// aggregator lock and must not call back into the aggregator.
func (a *Aggregator) SetOnClusterClose(fn func(*ClusterReport)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onClusterClose = fn
}

// Horizon returns the newest round tick any transition has covered
// (-1 before the first).
func (a *Aggregator) Horizon() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.horizon
}

// ObserveRound folds one fleet round into the state machine: tick is the
// fleet round tick, events the round's abnormal observations in ascending
// unit order (the order fleet verdict slices already have). Rounds at or
// below the rehydration horizon are skipped — after a restart the fleet
// replays its deterministic input from tick 0, and every transition those
// rounds produced is already part of the restored state.
func (a *Aggregator) ObserveRound(tick int, events []Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tick <= a.horizon {
		return
	}
	for i := range events {
		a.observe(tick, &events[i])
	}
	a.sweepIncidents(tick)
	a.advanceTo(tick)
}

// observe dedups one event into an open incident (the allocation-free hot
// path) or opens a new one.
func (a *Aggregator) observe(tick int, ev *Event) {
	if ev.Unit < 0 || ev.DB < 0 || ev.End <= ev.Start {
		a.dropped++
		return
	}
	k := key{unit: ev.Unit, db: ev.DB, kpis: ev.KPIs}
	if inc, ok := a.open[k]; ok {
		if ev.End > inc.LastTick {
			inc.LastTick = ev.End
		}
		inc.Count++
		a.merged++
		cl := a.findCluster(inc.Cluster)
		if cl != nil && inc.LastTick > cl.lastTick {
			cl.lastTick = inc.LastTick
		}
		a.emit(TransUpdate, inc, tick)
		return
	}
	if len(a.openList) >= a.cfg.MaxOpen {
		a.dropped++
		return
	}
	inc := &Incident{
		ID: a.nextID, Unit: ev.Unit, DB: ev.DB, KPIs: ev.KPIs,
		FirstTick: ev.Start, LastTick: ev.End, Count: 1, Open: true,
	}
	a.nextID++
	cl := a.attachable(tick)
	if cl == nil {
		cl = &cluster{id: a.nextCluster, firstTick: inc.FirstTick, lastTick: inc.LastTick}
		for i := range cl.onsets {
			cl.onsets[i] = -1
		}
		a.nextCluster++
		a.clusters = append(a.clusters, cl)
	}
	inc.Cluster = cl.id
	a.join(cl, inc)
	a.open[k] = inc
	a.openList = append(a.openList, inc)
	a.emit(TransOpen, inc, tick)
}

// attachable returns the lowest-ID open cluster still within the proximity
// window at tick, or nil.
func (a *Aggregator) attachable(tick int) *cluster {
	for _, cl := range a.clusters {
		if tick-cl.lastTick <= a.cfg.ProximityTicks {
			return cl
		}
	}
	return nil
}

func (a *Aggregator) findCluster(id uint64) *cluster {
	for _, cl := range a.clusters {
		if cl.id == id {
			return cl
		}
	}
	return nil
}

// join attaches an incident to a cluster, folding its window and onsets in.
func (a *Aggregator) join(cl *cluster, inc *Incident) {
	cl.members = append(cl.members, inc)
	cl.openMembers++
	if inc.FirstTick < cl.firstTick {
		cl.firstTick = inc.FirstTick
	}
	if inc.LastTick > cl.lastTick {
		cl.lastTick = inc.LastTick
	}
	for k := 0; k < MaxKPIs; k++ {
		if inc.KPIs.Has(k) && (cl.onsets[k] == -1 || inc.FirstTick < cl.onsets[k]) {
			cl.onsets[k] = inc.FirstTick
		}
	}
}

// sweepIncidents closes open incidents whose staleness budget expired, in
// ID order (openList order), so close sequences are deterministic.
func (a *Aggregator) sweepIncidents(tick int) {
	kept := a.openList[:0]
	for _, inc := range a.openList {
		if tick-inc.LastTick > a.cfg.CloseAfter {
			a.closeIncident(inc, tick)
			continue
		}
		kept = append(kept, inc)
	}
	// Zero the dropped tail so closed incidents do not pin the array.
	for i := len(kept); i < len(a.openList); i++ {
		a.openList[i] = nil
	}
	a.openList = kept
}

func (a *Aggregator) closeIncident(inc *Incident, tick int) {
	delete(a.open, key{unit: inc.Unit, db: inc.DB, kpis: inc.KPIs})
	inc.Open = false
	a.closedInc.push(inc)
	a.closedIncTotal++
	if cl := a.findCluster(inc.Cluster); cl != nil {
		cl.openMembers--
		if tick > cl.memberCloseRound {
			cl.memberCloseRound = tick
		}
	}
	a.emit(TransClose, inc, tick)
}

// advanceTo finalizes clusters whose close condition was met at or before
// tick: every member closed and no activity within the proximity window.
// Ready clusters close in (readyAt, ID) order — the order a live per-tick
// sweep produces — which is what lets deferred replay sweeps land in the
// identical state.
func (a *Aggregator) advanceTo(tick int) {
	a.sweep = a.sweep[:0]
	for _, cl := range a.clusters {
		if cl.openMembers == 0 && cl.readyAt(a.cfg.ProximityTicks) <= tick {
			a.sweep = append(a.sweep, cl)
		}
	}
	if len(a.sweep) == 0 {
		return
	}
	prox := a.cfg.ProximityTicks
	sort.SliceStable(a.sweep, func(i, j int) bool {
		ri, rj := a.sweep[i].readyAt(prox), a.sweep[j].readyAt(prox)
		if ri != rj {
			return ri < rj
		}
		return a.sweep[i].id < a.sweep[j].id
	})
	for _, cl := range a.sweep {
		a.closeCluster(cl)
	}
}

func (a *Aggregator) closeCluster(cl *cluster) {
	for i, c := range a.clusters {
		if c == cl {
			a.clusters = append(a.clusters[:i], a.clusters[i+1:]...)
			break
		}
	}
	a.leadlag.fold(&cl.onsets)
	rep := a.buildReport(cl, false)
	a.closedClus.push(rep)
	a.closedClusTotal++
	if a.onClusterClose != nil {
		a.onClusterClose(rep)
	}
}

func (a *Aggregator) emit(event uint8, inc *Incident, tick int) {
	if a.horizon < tick {
		a.horizon = tick
	}
	if a.persist == nil {
		return
	}
	a.persist(Transition{
		Event: event, ID: inc.ID, Cluster: inc.Cluster,
		Unit: inc.Unit, DB: inc.DB, KPIs: inc.KPIs,
		FirstTick: inc.FirstTick, LastTick: inc.LastTick,
		Count: inc.Count, RoundTick: tick,
	})
}

// Flush closes every open incident and cluster — the end-of-stream path
// for batch analyses and tests. tick should be past the stream's horizon.
func (a *Aggregator) Flush(tick int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tick <= a.horizon {
		tick = a.horizon + 1
	}
	for _, inc := range a.openList {
		a.closeIncident(inc, tick)
	}
	for i := range a.openList {
		a.openList[i] = nil
	}
	a.openList = a.openList[:0]
	// All members are closed now; every cluster becomes ready once the
	// proximity window elapses.
	a.advanceTo(tick + a.cfg.ProximityTicks + 1)
}

// Restore replays a recorded transition sequence through the same state
// machine live observation drives, rebuilding open incidents, cluster
// membership, closed-history rings, and the lead-lag histograms exactly.
// It must be called on a fresh aggregator, before the first ObserveRound.
// A sequence a real WAL cannot produce (an update for an unknown incident,
// a duplicate open) returns an error with the state left best-effort —
// callers treat that as corruption, not a crash.
func (a *Aggregator) Restore(ts []Transition) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.open) != 0 || a.closedIncTotal != 0 {
		return fmt.Errorf("incident: Restore on a non-empty aggregator")
	}
	for i := range ts {
		t := &ts[i]
		a.advanceTo(t.RoundTick)
		if t.RoundTick > a.horizon {
			a.horizon = t.RoundTick
		}
		k := key{unit: t.Unit, db: t.DB, kpis: t.KPIs}
		switch t.Event {
		case TransOpen:
			if _, ok := a.open[k]; ok {
				return fmt.Errorf("incident: duplicate open for %v", k)
			}
			if len(a.openList) >= a.cfg.MaxOpen {
				return fmt.Errorf("incident: restored stream exceeds MaxOpen %d", a.cfg.MaxOpen)
			}
			inc := &Incident{
				ID: t.ID, Cluster: t.Cluster, Unit: t.Unit, DB: t.DB, KPIs: t.KPIs,
				FirstTick: t.FirstTick, LastTick: t.LastTick, Count: t.Count, Open: true,
			}
			if t.ID >= a.nextID {
				a.nextID = t.ID + 1
			}
			cl := a.findCluster(t.Cluster)
			if cl == nil {
				cl = &cluster{id: t.Cluster, firstTick: inc.FirstTick, lastTick: inc.LastTick}
				for j := range cl.onsets {
					cl.onsets[j] = -1
				}
				if t.Cluster >= a.nextCluster {
					a.nextCluster = t.Cluster + 1
				}
				a.clusters = append(a.clusters, cl)
				sort.Slice(a.clusters, func(x, y int) bool { return a.clusters[x].id < a.clusters[y].id })
			}
			a.join(cl, inc)
			a.open[k] = inc
			a.openList = append(a.openList, inc)
		case TransUpdate:
			inc, ok := a.open[k]
			if !ok || inc.ID != t.ID {
				return fmt.Errorf("incident: update for unknown incident %d", t.ID)
			}
			inc.LastTick = t.LastTick
			inc.Count = t.Count
			a.merged++
			if cl := a.findCluster(inc.Cluster); cl != nil && inc.LastTick > cl.lastTick {
				cl.lastTick = inc.LastTick
			}
		case TransClose:
			inc, ok := a.open[k]
			if !ok || inc.ID != t.ID {
				return fmt.Errorf("incident: close for unknown incident %d", t.ID)
			}
			inc.LastTick = t.LastTick
			inc.Count = t.Count
			for j, o := range a.openList {
				if o == inc {
					a.openList = append(a.openList[:j], a.openList[j+1:]...)
					break
				}
			}
			a.closeIncident(inc, t.RoundTick)
		default:
			return fmt.Errorf("incident: unknown transition event %d", t.Event)
		}
	}
	a.advanceTo(a.horizon)
	return nil
}

// Status snapshots the aggregation counters.
func (a *Aggregator) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Status{
		OpenIncidents:   len(a.openList),
		ClosedIncidents: a.closedIncTotal,
		OpenClusters:    len(a.clusters),
		ClosedClusters:  a.closedClusTotal,
		Merged:          a.merged,
		Dropped:         a.dropped,
		Horizon:         a.horizon,
	}
}
