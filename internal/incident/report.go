package incident

import (
	"fmt"
	"sort"
	"strings"
)

// ring is a bounded FIFO over closed history: once full, pushing evicts
// the oldest entry in place, so steady-state retention allocates nothing.
type ring[T any] struct {
	buf     []T
	head, n int
}

func (r *ring[T]) init(capacity int) {
	r.buf = make([]T, capacity)
}

func (r *ring[T]) push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

func (r *ring[T]) each(fn func(T)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.head+i)%len(r.buf)])
	}
}

// MemberReport is one unit incident inside a cluster report (a value
// snapshot — safe to serialize while the live incident keeps moving).
type MemberReport struct {
	ID        uint64   `json:"id"`
	Unit      int      `json:"unit"`
	DB        int      `json:"db"`
	KPIs      []string `json:"kpis"`
	KPIMask   uint64   `json:"kpiMask"`
	FirstTick int      `json:"firstTick"`
	LastTick  int      `json:"lastTick"`
	Count     int      `json:"count"`
	Open      bool     `json:"open"`
}

// KPIOnset is the earliest deviation tick observed for one KPI inside a
// cluster.
type KPIOnset struct {
	KPI  int `json:"kpi"`
	Tick int `json:"tick"`
}

// Partition splits a cluster's dimensions into constant vs varying, the
// compression that turns "six replicas decorrelated on the disk KPI" into
// one line instead of six alerts.
type Partition struct {
	// Units and DBs are the distinct values observed, ascending.
	Units []int `json:"units"`
	DBs   []int `json:"dbs"`
	// ConstantKPIs is the intersection of member KPI sets — the signature
	// every member shares; VaryingKPIs is the union minus the intersection.
	ConstantKPIs KPISet `json:"constantKpiMask"`
	VaryingKPIs  KPISet `json:"varyingKpiMask"`
}

// ClusterReport is the operator-facing fleet incident: one temporal
// cluster of unit incidents with its dimension partition and cascade
// ordering.
type ClusterReport struct {
	ID        uint64         `json:"id"`
	Open      bool           `json:"open"`
	FirstTick int            `json:"firstTick"`
	LastTick  int            `json:"lastTick"`
	Members   []MemberReport `json:"members"`
	Onsets    []KPIOnset     `json:"onsets"`
	Partition Partition      `json:"partition"`
	Cascade   []CascadeHint  `json:"cascade"`
}

// Summary renders the partitioned one-line rollup.
func (r *ClusterReport) Summary() string {
	var b strings.Builder
	state := "closed"
	if r.Open {
		state = "open"
	}
	fmt.Fprintf(&b, "cluster %d (%s): %d incident(s) across unit(s) %s, db(s) %s, ticks [%d,%d)",
		r.ID, state, len(r.Members), intRanges(r.Partition.Units), intRanges(r.Partition.DBs),
		r.FirstTick, r.LastTick)
	if r.Partition.ConstantKPIs != 0 {
		fmt.Fprintf(&b, "; constant KPIs: %s", r.Partition.ConstantKPIs)
	}
	if r.Partition.VaryingKPIs != 0 {
		fmt.Fprintf(&b, "; varying KPIs: %s", r.Partition.VaryingKPIs)
	}
	return b.String()
}

// intRanges compresses a sorted int slice into "0-5" / "0,2,4-6" form.
func intRanges(vals []int) string {
	if len(vals) == 0 {
		return "-"
	}
	var b strings.Builder
	for i := 0; i < len(vals); {
		j := i
		for j+1 < len(vals) && vals[j+1] == vals[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", vals[i], vals[j])
		} else {
			fmt.Fprintf(&b, "%d", vals[i])
		}
		i = j + 1
	}
	return b.String()
}

// buildReport snapshots a cluster. For closed clusters it runs after the
// cluster's onsets folded into the global histograms, so its own cascade
// counts itself. Caller holds the lock.
func (a *Aggregator) buildReport(cl *cluster, open bool) *ClusterReport {
	rep := &ClusterReport{
		ID: cl.id, Open: open,
		FirstTick: cl.firstTick, LastTick: cl.lastTick,
		Members: make([]MemberReport, 0, len(cl.members)),
	}
	units := map[int]struct{}{}
	dbs := map[int]struct{}{}
	var inter, union KPISet
	for i, m := range cl.members {
		rep.Members = append(rep.Members, MemberReport{
			ID: m.ID, Unit: m.Unit, DB: m.DB,
			KPIs: m.KPIs.Names(), KPIMask: uint64(m.KPIs),
			FirstTick: m.FirstTick, LastTick: m.LastTick,
			Count: m.Count, Open: m.Open,
		})
		units[m.Unit] = struct{}{}
		dbs[m.DB] = struct{}{}
		if i == 0 {
			inter = m.KPIs
		} else {
			inter &= m.KPIs
		}
		union |= m.KPIs
	}
	rep.Partition = Partition{
		Units:        sortedKeys(units),
		DBs:          sortedKeys(dbs),
		ConstantKPIs: inter,
		VaryingKPIs:  union &^ inter,
	}
	for k := 0; k < MaxKPIs; k++ {
		if cl.onsets[k] >= 0 {
			rep.Onsets = append(rep.Onsets, KPIOnset{KPI: k, Tick: cl.onsets[k]})
		}
	}
	sort.SliceStable(rep.Onsets, func(i, j int) bool {
		if rep.Onsets[i].Tick != rep.Onsets[j].Tick {
			return rep.Onsets[i].Tick < rep.Onsets[j].Tick
		}
		return rep.Onsets[i].KPI < rep.Onsets[j].KPI
	})
	// Cascade hints: one oriented finding per KPI pair with observed
	// onsets, drawn from the global histograms so confidence accumulates
	// across recurring storms.
	for i := 0; i < len(rep.Onsets); i++ {
		for j := i + 1; j < len(rep.Onsets); j++ {
			x, y := rep.Onsets[i].KPI, rep.Onsets[j].KPI
			la, lb := x, y
			if la > lb {
				la, lb = lb, la
			}
			lag, share, samples := a.leadlag.hint(la, lb)
			if samples == 0 {
				continue
			}
			h := CascadeHint{Share: share, Samples: samples}
			switch {
			case lag > 0:
				h.Lead, h.Lag, h.Ticks = la, lb, lag
			case lag < 0:
				h.Lead, h.Lag, h.Ticks = lb, la, -lag
			default:
				h.Lead, h.Lag, h.Ticks = x, y, 0
			}
			rep.Cascade = append(rep.Cascade, h)
		}
	}
	return rep
}

func sortedKeys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Page returns one page of cluster reports ordered by cluster ID
// ascending — retained closed clusters plus a live snapshot of every open
// one. total is the full row count before paging.
func (a *Aggregator) Page(offset, limit int) (total int, rows []*ClusterReport) {
	a.mu.Lock()
	defer a.mu.Unlock()
	all := make([]*ClusterReport, 0, a.closedClus.n+len(a.clusters))
	a.closedClus.each(func(r *ClusterReport) { all = append(all, r) })
	for _, cl := range a.clusters {
		all = append(all, a.buildReport(cl, true))
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	total = len(all)
	if offset < 0 || offset >= len(all) {
		return total, []*ClusterReport{}
	}
	end := offset + limit
	if limit <= 0 || end > len(all) {
		end = len(all)
	}
	return total, all[offset:end]
}

// Fingerprint serializes the aggregator's complete observable state —
// open incidents, closed-history rings, open clusters with onsets, cluster
// reports, lag histograms, counters — into a canonical byte string. Two
// aggregators that consumed equivalent input (live, or live + WAL replay)
// produce identical fingerprints; the determinism and rehydration tests
// pin on this.
func (a *Aggregator) Fingerprint() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "counters merged=%d dropped=%d closedInc=%d closedClus=%d horizon=%d nextID=%d nextCluster=%d\n",
		a.merged, a.dropped, a.closedIncTotal, a.closedClusTotal, a.horizon, a.nextID, a.nextCluster)
	for _, inc := range a.openList {
		fmt.Fprintf(&b, "open %s\n", inc)
	}
	a.closedInc.each(func(inc *Incident) {
		fmt.Fprintf(&b, "closed %s\n", inc)
	})
	for _, cl := range a.clusters {
		fmt.Fprintf(&b, "cluster %d open first=%d last=%d closeRound=%d members=[", cl.id, cl.firstTick, cl.lastTick, cl.memberCloseRound)
		for i, m := range cl.members {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.ID)
		}
		fmt.Fprintf(&b, "] openMembers=%d onsets=", cl.openMembers)
		for k := 0; k < MaxKPIs; k++ {
			if cl.onsets[k] >= 0 {
				fmt.Fprintf(&b, "%d@%d;", k, cl.onsets[k])
			}
		}
		b.WriteByte('\n')
	}
	a.closedClus.each(func(r *ClusterReport) {
		fmt.Fprintf(&b, "report %s\n", r.Summary())
		for _, h := range r.Cascade {
			fmt.Fprintf(&b, "  cascade %s\n", h)
		}
	})
	pairs := make([]pairKey, 0, len(a.leadlag.hist))
	for k := range a.leadlag.hist {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, k := range pairs {
		fmt.Fprintf(&b, "hist %d/%d %v\n", k.a, k.b, a.leadlag.hist[k])
	}
	return []byte(b.String())
}
